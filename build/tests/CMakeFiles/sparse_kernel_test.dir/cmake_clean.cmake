file(REMOVE_RECURSE
  "CMakeFiles/sparse_kernel_test.dir/sparse_kernel_test.cpp.o"
  "CMakeFiles/sparse_kernel_test.dir/sparse_kernel_test.cpp.o.d"
  "sparse_kernel_test"
  "sparse_kernel_test.pdb"
  "sparse_kernel_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sparse_kernel_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
