file(REMOVE_RECURSE
  "CMakeFiles/sample_attention_test.dir/sample_attention_test.cpp.o"
  "CMakeFiles/sample_attention_test.dir/sample_attention_test.cpp.o.d"
  "sample_attention_test"
  "sample_attention_test.pdb"
  "sample_attention_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sample_attention_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
