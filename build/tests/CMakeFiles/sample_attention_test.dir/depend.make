# Empty dependencies file for sample_attention_test.
# This may be replaced when dependencies are built.
