file(REMOVE_RECURSE
  "CMakeFiles/rope_test.dir/rope_test.cpp.o"
  "CMakeFiles/rope_test.dir/rope_test.cpp.o.d"
  "rope_test"
  "rope_test.pdb"
  "rope_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rope_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
