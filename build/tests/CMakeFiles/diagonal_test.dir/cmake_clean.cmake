file(REMOVE_RECURSE
  "CMakeFiles/diagonal_test.dir/diagonal_test.cpp.o"
  "CMakeFiles/diagonal_test.dir/diagonal_test.cpp.o.d"
  "diagonal_test"
  "diagonal_test.pdb"
  "diagonal_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/diagonal_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
