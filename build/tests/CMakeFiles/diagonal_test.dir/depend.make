# Empty dependencies file for diagonal_test.
# This may be replaced when dependencies are built.
