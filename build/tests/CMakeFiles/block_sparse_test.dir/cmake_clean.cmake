file(REMOVE_RECURSE
  "CMakeFiles/block_sparse_test.dir/block_sparse_test.cpp.o"
  "CMakeFiles/block_sparse_test.dir/block_sparse_test.cpp.o.d"
  "block_sparse_test"
  "block_sparse_test.pdb"
  "block_sparse_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/block_sparse_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
