# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/numerics_test[1]_include.cmake")
include("/root/repo/build/tests/attention_test[1]_include.cmake")
include("/root/repo/build/tests/masks_test[1]_include.cmake")
include("/root/repo/build/tests/sparse_kernel_test[1]_include.cmake")
include("/root/repo/build/tests/sampling_test[1]_include.cmake")
include("/root/repo/build/tests/filtering_test[1]_include.cmake")
include("/root/repo/build/tests/sample_attention_test[1]_include.cmake")
include("/root/repo/build/tests/tuner_test[1]_include.cmake")
include("/root/repo/build/tests/baselines_test[1]_include.cmake")
include("/root/repo/build/tests/model_test[1]_include.cmake")
include("/root/repo/build/tests/rope_test[1]_include.cmake")
include("/root/repo/build/tests/metrics_test[1]_include.cmake")
include("/root/repo/build/tests/tasks_test[1]_include.cmake")
include("/root/repo/build/tests/cost_model_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/diagonal_test[1]_include.cmake")
include("/root/repo/build/tests/runtime_test[1]_include.cmake")
include("/root/repo/build/tests/adaptive_test[1]_include.cmake")
include("/root/repo/build/tests/io_test[1]_include.cmake")
include("/root/repo/build/tests/scheduler_test[1]_include.cmake")
include("/root/repo/build/tests/block_sparse_test[1]_include.cmake")
include("/root/repo/build/tests/config_io_test[1]_include.cmake")
include("/root/repo/build/tests/edge_cases_test[1]_include.cmake")
include("/root/repo/build/tests/scoring_test[1]_include.cmake")
include("/root/repo/build/tests/more_coverage_test[1]_include.cmake")
