file(REMOVE_RECURSE
  "CMakeFiles/needle_demo.dir/needle_demo.cpp.o"
  "CMakeFiles/needle_demo.dir/needle_demo.cpp.o.d"
  "needle_demo"
  "needle_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/needle_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
