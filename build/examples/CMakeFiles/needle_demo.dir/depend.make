# Empty dependencies file for needle_demo.
# This may be replaced when dependencies are built.
