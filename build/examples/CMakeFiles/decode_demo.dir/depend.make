# Empty dependencies file for decode_demo.
# This may be replaced when dependencies are built.
