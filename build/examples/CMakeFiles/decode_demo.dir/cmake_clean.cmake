file(REMOVE_RECURSE
  "CMakeFiles/decode_demo.dir/decode_demo.cpp.o"
  "CMakeFiles/decode_demo.dir/decode_demo.cpp.o.d"
  "decode_demo"
  "decode_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/decode_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
