# Empty compiler generated dependencies file for tuning_demo.
# This may be replaced when dependencies are built.
