file(REMOVE_RECURSE
  "CMakeFiles/tuning_demo.dir/tuning_demo.cpp.o"
  "CMakeFiles/tuning_demo.dir/tuning_demo.cpp.o.d"
  "tuning_demo"
  "tuning_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tuning_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
