# Empty dependencies file for serving_ttft_demo.
# This may be replaced when dependencies are built.
