file(REMOVE_RECURSE
  "CMakeFiles/serving_ttft_demo.dir/serving_ttft_demo.cpp.o"
  "CMakeFiles/serving_ttft_demo.dir/serving_ttft_demo.cpp.o.d"
  "serving_ttft_demo"
  "serving_ttft_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/serving_ttft_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
