file(REMOVE_RECURSE
  "CMakeFiles/sattn_cli.dir/sattn_cli.cpp.o"
  "CMakeFiles/sattn_cli.dir/sattn_cli.cpp.o.d"
  "sattn_cli"
  "sattn_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sattn_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
