# Empty dependencies file for sattn_cli.
# This may be replaced when dependencies are built.
