# Empty dependencies file for bench_fig4_needle.
# This may be replaced when dependencies are built.
