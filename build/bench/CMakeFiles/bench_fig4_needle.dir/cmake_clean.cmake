file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_needle.dir/bench_fig4_needle.cpp.o"
  "CMakeFiles/bench_fig4_needle.dir/bench_fig4_needle.cpp.o.d"
  "bench_fig4_needle"
  "bench_fig4_needle.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_needle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
