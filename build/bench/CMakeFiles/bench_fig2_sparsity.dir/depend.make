# Empty dependencies file for bench_fig2_sparsity.
# This may be replaced when dependencies are built.
