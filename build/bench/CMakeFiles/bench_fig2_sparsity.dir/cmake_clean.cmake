file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_sparsity.dir/bench_fig2_sparsity.cpp.o"
  "CMakeFiles/bench_fig2_sparsity.dir/bench_fig2_sparsity.cpp.o.d"
  "bench_fig2_sparsity"
  "bench_fig2_sparsity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_sparsity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
