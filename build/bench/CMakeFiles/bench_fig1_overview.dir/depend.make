# Empty dependencies file for bench_fig1_overview.
# This may be replaced when dependencies are built.
