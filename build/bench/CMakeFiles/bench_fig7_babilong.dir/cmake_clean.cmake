file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_babilong.dir/bench_fig7_babilong.cpp.o"
  "CMakeFiles/bench_fig7_babilong.dir/bench_fig7_babilong.cpp.o.d"
  "bench_fig7_babilong"
  "bench_fig7_babilong.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_babilong.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
