file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_visualize.dir/bench_fig9_visualize.cpp.o"
  "CMakeFiles/bench_fig9_visualize.dir/bench_fig9_visualize.cpp.o.d"
  "bench_fig9_visualize"
  "bench_fig9_visualize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_visualize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
