# Empty compiler generated dependencies file for bench_appendix_extensions.
# This may be replaced when dependencies are built.
