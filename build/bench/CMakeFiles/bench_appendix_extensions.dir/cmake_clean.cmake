file(REMOVE_RECURSE
  "CMakeFiles/bench_appendix_extensions.dir/bench_appendix_extensions.cpp.o"
  "CMakeFiles/bench_appendix_extensions.dir/bench_appendix_extensions.cpp.o.d"
  "bench_appendix_extensions"
  "bench_appendix_extensions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_appendix_extensions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
