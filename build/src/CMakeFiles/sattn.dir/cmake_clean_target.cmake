file(REMOVE_RECURSE
  "libsattn.a"
)
