# Empty compiler generated dependencies file for sattn.
# This may be replaced when dependencies are built.
