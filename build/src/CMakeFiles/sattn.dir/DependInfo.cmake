
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/attention/block_sparse.cpp" "src/CMakeFiles/sattn.dir/attention/block_sparse.cpp.o" "gcc" "src/CMakeFiles/sattn.dir/attention/block_sparse.cpp.o.d"
  "/root/repo/src/attention/flash_attention.cpp" "src/CMakeFiles/sattn.dir/attention/flash_attention.cpp.o" "gcc" "src/CMakeFiles/sattn.dir/attention/flash_attention.cpp.o.d"
  "/root/repo/src/attention/full_attention.cpp" "src/CMakeFiles/sattn.dir/attention/full_attention.cpp.o" "gcc" "src/CMakeFiles/sattn.dir/attention/full_attention.cpp.o.d"
  "/root/repo/src/attention/masks.cpp" "src/CMakeFiles/sattn.dir/attention/masks.cpp.o" "gcc" "src/CMakeFiles/sattn.dir/attention/masks.cpp.o.d"
  "/root/repo/src/attention/score_utils.cpp" "src/CMakeFiles/sattn.dir/attention/score_utils.cpp.o" "gcc" "src/CMakeFiles/sattn.dir/attention/score_utils.cpp.o.d"
  "/root/repo/src/attention/sparse_flash_attention.cpp" "src/CMakeFiles/sattn.dir/attention/sparse_flash_attention.cpp.o" "gcc" "src/CMakeFiles/sattn.dir/attention/sparse_flash_attention.cpp.o.d"
  "/root/repo/src/baselines/bigbird.cpp" "src/CMakeFiles/sattn.dir/baselines/bigbird.cpp.o" "gcc" "src/CMakeFiles/sattn.dir/baselines/bigbird.cpp.o.d"
  "/root/repo/src/baselines/hash_sparse.cpp" "src/CMakeFiles/sattn.dir/baselines/hash_sparse.cpp.o" "gcc" "src/CMakeFiles/sattn.dir/baselines/hash_sparse.cpp.o.d"
  "/root/repo/src/baselines/hyper_attention.cpp" "src/CMakeFiles/sattn.dir/baselines/hyper_attention.cpp.o" "gcc" "src/CMakeFiles/sattn.dir/baselines/hyper_attention.cpp.o.d"
  "/root/repo/src/baselines/streaming_llm.cpp" "src/CMakeFiles/sattn.dir/baselines/streaming_llm.cpp.o" "gcc" "src/CMakeFiles/sattn.dir/baselines/streaming_llm.cpp.o.d"
  "/root/repo/src/core/numerics.cpp" "src/CMakeFiles/sattn.dir/core/numerics.cpp.o" "gcc" "src/CMakeFiles/sattn.dir/core/numerics.cpp.o.d"
  "/root/repo/src/core/rng.cpp" "src/CMakeFiles/sattn.dir/core/rng.cpp.o" "gcc" "src/CMakeFiles/sattn.dir/core/rng.cpp.o.d"
  "/root/repo/src/core/tensor.cpp" "src/CMakeFiles/sattn.dir/core/tensor.cpp.o" "gcc" "src/CMakeFiles/sattn.dir/core/tensor.cpp.o.d"
  "/root/repo/src/core/thread_pool.cpp" "src/CMakeFiles/sattn.dir/core/thread_pool.cpp.o" "gcc" "src/CMakeFiles/sattn.dir/core/thread_pool.cpp.o.d"
  "/root/repo/src/io/config_io.cpp" "src/CMakeFiles/sattn.dir/io/config_io.cpp.o" "gcc" "src/CMakeFiles/sattn.dir/io/config_io.cpp.o.d"
  "/root/repo/src/io/heatmap.cpp" "src/CMakeFiles/sattn.dir/io/heatmap.cpp.o" "gcc" "src/CMakeFiles/sattn.dir/io/heatmap.cpp.o.d"
  "/root/repo/src/io/report.cpp" "src/CMakeFiles/sattn.dir/io/report.cpp.o" "gcc" "src/CMakeFiles/sattn.dir/io/report.cpp.o.d"
  "/root/repo/src/metrics/cra.cpp" "src/CMakeFiles/sattn.dir/metrics/cra.cpp.o" "gcc" "src/CMakeFiles/sattn.dir/metrics/cra.cpp.o.d"
  "/root/repo/src/metrics/recovery.cpp" "src/CMakeFiles/sattn.dir/metrics/recovery.cpp.o" "gcc" "src/CMakeFiles/sattn.dir/metrics/recovery.cpp.o.d"
  "/root/repo/src/metrics/sparsity.cpp" "src/CMakeFiles/sattn.dir/metrics/sparsity.cpp.o" "gcc" "src/CMakeFiles/sattn.dir/metrics/sparsity.cpp.o.d"
  "/root/repo/src/model/attention_structure.cpp" "src/CMakeFiles/sattn.dir/model/attention_structure.cpp.o" "gcc" "src/CMakeFiles/sattn.dir/model/attention_structure.cpp.o.d"
  "/root/repo/src/model/rope.cpp" "src/CMakeFiles/sattn.dir/model/rope.cpp.o" "gcc" "src/CMakeFiles/sattn.dir/model/rope.cpp.o.d"
  "/root/repo/src/model/synthetic_model.cpp" "src/CMakeFiles/sattn.dir/model/synthetic_model.cpp.o" "gcc" "src/CMakeFiles/sattn.dir/model/synthetic_model.cpp.o.d"
  "/root/repo/src/model/workload.cpp" "src/CMakeFiles/sattn.dir/model/workload.cpp.o" "gcc" "src/CMakeFiles/sattn.dir/model/workload.cpp.o.d"
  "/root/repo/src/perf/cost_model.cpp" "src/CMakeFiles/sattn.dir/perf/cost_model.cpp.o" "gcc" "src/CMakeFiles/sattn.dir/perf/cost_model.cpp.o.d"
  "/root/repo/src/perf/latency_report.cpp" "src/CMakeFiles/sattn.dir/perf/latency_report.cpp.o" "gcc" "src/CMakeFiles/sattn.dir/perf/latency_report.cpp.o.d"
  "/root/repo/src/runtime/chunked_prefill.cpp" "src/CMakeFiles/sattn.dir/runtime/chunked_prefill.cpp.o" "gcc" "src/CMakeFiles/sattn.dir/runtime/chunked_prefill.cpp.o.d"
  "/root/repo/src/runtime/decode.cpp" "src/CMakeFiles/sattn.dir/runtime/decode.cpp.o" "gcc" "src/CMakeFiles/sattn.dir/runtime/decode.cpp.o.d"
  "/root/repo/src/runtime/eviction.cpp" "src/CMakeFiles/sattn.dir/runtime/eviction.cpp.o" "gcc" "src/CMakeFiles/sattn.dir/runtime/eviction.cpp.o.d"
  "/root/repo/src/runtime/kv_cache.cpp" "src/CMakeFiles/sattn.dir/runtime/kv_cache.cpp.o" "gcc" "src/CMakeFiles/sattn.dir/runtime/kv_cache.cpp.o.d"
  "/root/repo/src/runtime/model_runner.cpp" "src/CMakeFiles/sattn.dir/runtime/model_runner.cpp.o" "gcc" "src/CMakeFiles/sattn.dir/runtime/model_runner.cpp.o.d"
  "/root/repo/src/runtime/scheduler.cpp" "src/CMakeFiles/sattn.dir/runtime/scheduler.cpp.o" "gcc" "src/CMakeFiles/sattn.dir/runtime/scheduler.cpp.o.d"
  "/root/repo/src/sample_attention/adaptive.cpp" "src/CMakeFiles/sattn.dir/sample_attention/adaptive.cpp.o" "gcc" "src/CMakeFiles/sattn.dir/sample_attention/adaptive.cpp.o.d"
  "/root/repo/src/sample_attention/filtering.cpp" "src/CMakeFiles/sattn.dir/sample_attention/filtering.cpp.o" "gcc" "src/CMakeFiles/sattn.dir/sample_attention/filtering.cpp.o.d"
  "/root/repo/src/sample_attention/layer_plan.cpp" "src/CMakeFiles/sattn.dir/sample_attention/layer_plan.cpp.o" "gcc" "src/CMakeFiles/sattn.dir/sample_attention/layer_plan.cpp.o.d"
  "/root/repo/src/sample_attention/sample_attention.cpp" "src/CMakeFiles/sattn.dir/sample_attention/sample_attention.cpp.o" "gcc" "src/CMakeFiles/sattn.dir/sample_attention/sample_attention.cpp.o.d"
  "/root/repo/src/sample_attention/sampling.cpp" "src/CMakeFiles/sattn.dir/sample_attention/sampling.cpp.o" "gcc" "src/CMakeFiles/sattn.dir/sample_attention/sampling.cpp.o.d"
  "/root/repo/src/sample_attention/tuner.cpp" "src/CMakeFiles/sattn.dir/sample_attention/tuner.cpp.o" "gcc" "src/CMakeFiles/sattn.dir/sample_attention/tuner.cpp.o.d"
  "/root/repo/src/tasks/babilong.cpp" "src/CMakeFiles/sattn.dir/tasks/babilong.cpp.o" "gcc" "src/CMakeFiles/sattn.dir/tasks/babilong.cpp.o.d"
  "/root/repo/src/tasks/longbench.cpp" "src/CMakeFiles/sattn.dir/tasks/longbench.cpp.o" "gcc" "src/CMakeFiles/sattn.dir/tasks/longbench.cpp.o.d"
  "/root/repo/src/tasks/needle.cpp" "src/CMakeFiles/sattn.dir/tasks/needle.cpp.o" "gcc" "src/CMakeFiles/sattn.dir/tasks/needle.cpp.o.d"
  "/root/repo/src/tasks/scoring.cpp" "src/CMakeFiles/sattn.dir/tasks/scoring.cpp.o" "gcc" "src/CMakeFiles/sattn.dir/tasks/scoring.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
