#!/usr/bin/env bash
# Tier-1 tests under AddressSanitizer + UndefinedBehaviorSanitizer
# (docs/ROBUSTNESS.md). Builds a side tree with -DSATTN_SANITIZE and runs
# the full ctest suite; any ASan/UBSan report fails the run.
#
# Usage: check_sanitizers.sh [repo-root] [build-dir]
# Opt-in ctest entry: configure with -DSATTN_SANITIZER_CTEST=ON.
set -eu

root="${1:-.}"
build="${2:-$root/build-sanitize}"

cmake -B "$build" -S "$root" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DSATTN_SANITIZE=address,undefined >/dev/null
cmake --build "$build" -j "$(nproc)" >/dev/null

# halt_on_error so a UBSan report is a test failure, not a log line.
export ASAN_OPTIONS="detect_leaks=1:abort_on_error=1"
export UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1"

# The sanitizer tree would recurse into this script if the opt-in ctest
# entry is ON there; it never is (fresh configure above), but exclude it
# defensively alongside the docs check, which is sanitizer-independent.
ctest --test-dir "$build" -j "$(nproc)" --output-on-failure \
  -E "^(check_docs|check_sanitizers)$"

echo "sanitizer suite passed: address,undefined"
