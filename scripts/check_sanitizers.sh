#!/usr/bin/env bash
# Sanitizer suites (docs/ROBUSTNESS.md):
#
#   1. ASan+UBSan: builds a side tree with -DSATTN_SANITIZE=address,undefined
#      and runs the full ctest suite; any report fails the run.
#   2. TSan: builds a second side tree with -DSATTN_SANITIZE=thread and runs
#      the concurrency-heavy binaries — obs_test, scheduler_test,
#      accounting_test, engine_test, chaos_engine_test, telemetry_test,
#      audit_test, and kv_page_test — since the span collector, metrics
#      registry, resource accountant, serving-engine intake, telemetry
#      rings/publisher, and the KV page arena are written from concurrent
#      threads.
#
# Usage: check_sanitizers.sh [repo-root] [build-dir] [tsan-build-dir]
# Opt-in ctest entry: configure with -DSATTN_SANITIZER_CTEST=ON.
set -eu

root="${1:-.}"
build="${2:-$root/build-sanitize}"
build_tsan="${3:-$root/build-tsan}"

# ---- 1. ASan + UBSan over the full tier-1 suite ----------------------------

cmake -B "$build" -S "$root" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DSATTN_SANITIZE=address,undefined >/dev/null
cmake --build "$build" -j "$(nproc)" >/dev/null

# halt_on_error so a UBSan report is a test failure, not a log line.
export ASAN_OPTIONS="detect_leaks=1:abort_on_error=1"
export UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1"

# The sanitizer tree would recurse into this script if the opt-in ctest
# entry is ON there; it never is (fresh configure above), but exclude it
# defensively alongside the docs check, which is sanitizer-independent.
ctest --test-dir "$build" -j "$(nproc)" --output-on-failure \
  -E "^(check_docs|check_sanitizers)$"

echo "sanitizer suite passed: address,undefined"

# ---- 1b. Both SIMD backends under ASan+UBSan -------------------------------
#
# The ctest pass above runs whatever backend the host dispatches (AVX2 on
# most x86 machines). Re-run the kernel-heavy suites with the scalar
# backend pinned via SATTN_FORCE_SCALAR, then once more with dispatch
# explicitly enabled, so unaligned loads / tail handling in BOTH tables of
# core/simd.h stay sanitizer-clean (docs/PERFORMANCE.md).
for mode in 1 0; do
  SATTN_FORCE_SCALAR="$mode" "$build/tests/simd_kernel_test"
  SATTN_FORCE_SCALAR="$mode" "$build/tests/attention_test"
  SATTN_FORCE_SCALAR="$mode" "$build/tests/sparse_kernel_test"
  SATTN_FORCE_SCALAR="$mode" "$build/tests/block_sparse_test"
  # Ragged-batch parity must hold bit-exactly on both backends.
  SATTN_FORCE_SCALAR="$mode" "$build/tests/engine_test" --gtest_filter='RaggedBatch.*'
  # Chaos harness: eviction-compacted caches must keep the sweep
  # bit-identical to the direct kernels on either backend, and the storm
  # invariants are backend-independent.
  SATTN_FORCE_SCALAR="$mode" "$build/tests/chaos_engine_test"
  # Paged KV: flat-vs-paged kernel parity and the prefix-attach replay must
  # be bit-exact on both backends (the page table only changes addressing,
  # never arithmetic).
  SATTN_FORCE_SCALAR="$mode" "$build/tests/kv_page_test"
  # Quality auditor: the offline-parity pin (rate 1.0 == metrics/cra.h) must
  # hold on both backends — the audit's ground-truth score rows go through
  # the same dispatched kernels.
  SATTN_FORCE_SCALAR="$mode" "$build/tests/audit_test" --gtest_filter='-*Overhead*'
done

echo "sanitizer suite passed: simd backends (SATTN_FORCE_SCALAR=1 and dispatch)"

# ---- 2. ThreadSanitizer over the thread-hammering tests --------------------

cmake -B "$build_tsan" -S "$root" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DSATTN_SANITIZE=thread >/dev/null
cmake --build "$build_tsan" -j "$(nproc)" \
  --target obs_test --target scheduler_test --target accounting_test \
  --target engine_test --target chaos_engine_test --target telemetry_test \
  --target audit_test --target kv_page_test >/dev/null

export TSAN_OPTIONS="halt_on_error=1:second_deadlock_stack=1"

# The disabled-mode overhead smoke test is a wall-time comparison; it skips
# itself under sanitizers, but filter it anyway so the TSan log stays about
# races, not timing.
"$build_tsan/tests/obs_test"
"$build_tsan/tests/scheduler_test"
"$build_tsan/tests/accounting_test" --gtest_filter='-*Overhead*'
# Serving engine: concurrent submitters against the intake lock, the loop
# thread, and the ragged sweep's pool workers charging per-request acct.*.
"$build_tsan/tests/engine_test"
# Chaos harness: fault storms with racing submitters/cancellers, the
# watchdog's heartbeat atomics, and forced drains (docs/ROBUSTNESS.md,
# "Lifecycle, overload & chaos").
"$build_tsan/tests/chaos_engine_test"
# Telemetry plane: SPSC rings fed by submitters + the engine loop while the
# publisher thread drains, plus the metrics-registry gauges it publishes.
# The enabled-vs-disabled overhead bound itself runs in the plain-build
# ctest suite (TelemetryOverheadTest, RUN_SERIAL) — under TSan it would
# only measure the sanitizer, so it is filtered here like the accounting
# one (and would GTEST_SKIP itself anyway).
"$build_tsan/tests/telemetry_test" --gtest_filter='-*Overhead*'
# Quality auditor: ragged-sweep pool workers call audit_chunk concurrently
# against the shared per-head scorecard mutex while the engine loop records
# decode audits (obs/audit.h, "Thread safety").
"$build_tsan/tests/audit_test" --gtest_filter='-*Overhead*'
# KV page arena: alloc/retain/release/publish/lookup race from many threads
# against the arena mutex; ConcurrentAllocReleaseIsClean is the dedicated
# hammer (src/runtime/kv_page.h, "Thread safety").
"$build_tsan/tests/kv_page_test"

echo "sanitizer suite passed: thread (obs_test, scheduler_test, accounting_test, engine_test, chaos_engine_test, telemetry_test, audit_test, kv_page_test)"
