#!/usr/bin/env bash
# Doc link/target checker, run as a ctest entry (`check_docs`).
#
# Scans README.md and docs/*.md for backticked references and fails when:
#   1. a path-like token (`src/...`, `docs/...`, `tests/...`, `bench/...`,
#      `examples/...`, `scripts/...`, `tools/...`) does not exist in the
#      repo, or
#   2. a build-target-like token (`bench_*`, `*_test`, `*_demo`, `sattn_cli`)
#      is not declared in any CMakeLists.txt, or
#   3. a required doc section is missing (the regression-gate workflow in
#      docs/OBSERVABILITY.md).
#
# Usage: check_docs.sh <repo-root>
set -u

root="${1:-.}"
cd "$root" || exit 2

fail=0

docs=(README.md)
while IFS= read -r f; do docs+=("$f"); done < <(find docs -name '*.md' | sort)

# All backticked tokens across the doc set, one per line.
tokens="$(grep -ho '`[^`]*`' "${docs[@]}" 2>/dev/null | tr -d '\`' | sort -u)"

# --- 1. path-like tokens must exist -----------------------------------------
while IFS= read -r tok; do
  [ -z "$tok" ] && continue
  case "$tok" in
    src/*|docs/*|tests/*|bench/*|examples/*|scripts/*|tools/*)
      # Strip trailing punctuation and any :line suffix.
      path="${tok%%:*}"
      path="${path%/}"
      # Skip tokens with shell/glob metacharacters (command lines, patterns).
      case "$path" in
        *' '*|*'*'*|*'<'*|*'>'*|*'$'*) continue ;;
      esac
      if [ ! -e "$path" ]; then
        echo "check_docs: missing path referenced in docs: $tok" >&2
        fail=1
      fi
      ;;
  esac
done <<< "$tokens"

# --- 2. target-like tokens must be declared in CMake ------------------------
cmake_text="$(cat CMakeLists.txt ./*/CMakeLists.txt 2>/dev/null)"
while IFS= read -r tok; do
  [ -z "$tok" ] && continue
  # Only bare single-word targets, no paths/spaces/flags.
  case "$tok" in
    *' '*|*/*|*-*|*=*|*.*) continue ;;
  esac
  case "$tok" in
    bench_*|*_test|*_demo|sattn_cli|quickstart)
      if ! printf '%s\n' "$cmake_text" | grep -q "(${tok}[ )]"; then
        echo "check_docs: docs mention target '$tok' not declared in any CMakeLists.txt" >&2
        fail=1
      fi
      ;;
  esac
done <<< "$tokens"

# --- 2b. markdown cross-references must resolve ------------------------------
# Relative [text](target) links between docs (and into the tree) must point
# at real files; dangling links rot silently as docs move.
for f in "${docs[@]}"; do
  dir="$(dirname "$f")"
  while IFS= read -r target; do
    [ -z "$target" ] && continue
    case "$target" in
      http://*|https://*|'#'*|mailto:*) continue ;;
    esac
    target="${target%%#*}"
    [ -z "$target" ] && continue
    if [ ! -e "$dir/$target" ] && [ ! -e "$target" ]; then
      echo "check_docs: dangling link in $f: ($target)" >&2
      fail=1
    fi
  done < <(grep -ho '](\([^)]*\))' "$f" 2>/dev/null | sed 's/^](//; s/)$//')
done

# --- 3. required sections ----------------------------------------------------
if ! grep -q '^## Run reports & regression gating' docs/OBSERVABILITY.md; then
  echo "check_docs: docs/OBSERVABILITY.md is missing the 'Run reports & regression gating' section" >&2
  fail=1
fi

if ! grep -q '^## Resource accounting & cost-model validation' docs/OBSERVABILITY.md; then
  echo "check_docs: docs/OBSERVABILITY.md is missing the 'Resource accounting & cost-model validation' section" >&2
  fail=1
fi

# The live telemetry plane (NDJSON stream schema, alert glossary, engine_top)
# must stay documented alongside the metric names it defines.
if ! grep -q '^## Live telemetry & alerts' docs/OBSERVABILITY.md; then
  echo "check_docs: docs/OBSERVABILITY.md is missing the 'Live telemetry & alerts' section" >&2
  fail=1
fi

# The online quality audit (measured CRA, scorecards, the measured_cra_low
# alert, the bench_diff audit gate) must stay documented.
if ! grep -q '^## Online quality audit' docs/OBSERVABILITY.md; then
  echo "check_docs: docs/OBSERVABILITY.md is missing the 'Online quality audit' section" >&2
  fail=1
fi

# --- 3b. metric-name literals must be in the glossary ------------------------
# Every engine./audit./alert. metric name hardcoded in src/ must appear
# backticked somewhere in docs/OBSERVABILITY.md — either verbatim or via a
# documented name family (a backticked prefix like `engine.kv_*`). New
# counters without glossary entries rot the observability contract.
while IFS= read -r name; do
  [ -z "$name" ] && continue
  if grep -qF "\`$name\`" docs/OBSERVABILITY.md; then continue; fi
  # Family fallback: `prefix_*` or `prefix.*` covering the name — but a
  # bare area family (`engine.*`, `audit.*`, ...) is not documentation,
  # only subfamilies like `engine.kv_*` count.
  prefix_ok=0
  while IFS= read -r fam; do
    fam="${fam%\*}"
    case "$fam" in
      engine.|audit.|alert.) continue ;;
    esac
    case "$name" in
      "$fam"*) prefix_ok=1; break ;;
    esac
  done < <(grep -ho '`[a-z_.]*\*`' docs/OBSERVABILITY.md | tr -d '\`*' | sort -u)
  if [ "$prefix_ok" -eq 0 ]; then
    echo "check_docs: metric '$name' (hardcoded in src/) is not in the docs/OBSERVABILITY.md glossary" >&2
    fail=1
  fi
done < <(grep -rhoE '"(engine|audit|alert)\.[a-z0-9_]+[a-z0-9]"' src/ | tr -d '"' | sort -u)

for section in '^## Numeric contract' '^## Dispatch rules' \
               '^## Reproducing the scalar-vs-SIMD comparison'; do
  if ! grep -q "$section" docs/PERFORMANCE.md; then
    echo "check_docs: docs/PERFORMANCE.md is missing the required section matching '$section'" >&2
    fail=1
  fi
done

# The engine lifecycle-hardening contract (cancellation, KV backpressure,
# watchdog/breaker, drain, chaos harness) lives in ROBUSTNESS.md.
if ! grep -q '^## Lifecycle, overload & chaos' docs/ROBUSTNESS.md; then
  echo "check_docs: docs/ROBUSTNESS.md is missing the 'Lifecycle, overload & chaos' section" >&2
  fail=1
fi

# The serving-engine operator guide must keep its load-bearing sections
# (the engine architecture, the ragged kernel contract, the paged-KV /
# prefix-cache contract, the threading model, the metric mapping, and the
# bench walkthrough).
for section in '^## Architecture' '^## The ragged-batch kernel API' \
               '^## Paged KV & prefix cache' \
               '^## Threading and locking model' '^## Metrics' \
               '^## Running the serving bench'; do
  if ! grep -q "$section" docs/SERVING.md; then
    echo "check_docs: docs/SERVING.md is missing the required section matching '$section'" >&2
    fail=1
  fi
done

# The paged-KV storage model (page arena, prefix index, counted-once
# accounting) must stay summarized in the architecture overview.
if ! grep -q '^## Paged KV & prefix cache' docs/ARCHITECTURE.md; then
  echo "check_docs: docs/ARCHITECTURE.md is missing the 'Paged KV & prefix cache' section" >&2
  fail=1
fi

if [ "$fail" -ne 0 ]; then
  echo "check_docs: FAILED" >&2
  exit 1
fi
echo "check_docs: OK (${#docs[@]} files checked)"
