#!/usr/bin/env bash
# Bench regression gate (docs/OBSERVABILITY.md, "Run reports & regression
# gating"). Reruns the bench suite via bench_all, then diffs the merged run
# report against the committed baseline with tools/bench_diff.
#
# By default the gate is quality-only (--ignore-latency): the committed
# baseline was produced on a different machine, so wall-clock numbers are
# not comparable, but CRA / coverage / recovery metrics are deterministic
# on the substrate and must not drop. Pass a third argument to override the
# bench_diff flags, e.g.
#
#   check_bench_regression.sh . build "--latency-threshold=0.5"
#
# for a same-machine latency comparison against a locally refreshed
# baseline.
#
# Usage: check_bench_regression.sh [repo-root] [build-dir] [bench_diff-flags]
# Opt-in ctest entry: configure with -DSATTN_BENCH_REGRESSION_CTEST=ON.
set -eu

root="${1:-.}"
build="${2:-$root/build}"
diff_flags="${3:---ignore-latency}"

baseline="$root/bench/baselines/BENCH_sattn.json"
[ -f "$baseline" ] || { echo "missing baseline: $baseline" >&2; exit 2; }
[ -x "$build/bench/bench_all" ] || { echo "missing $build/bench/bench_all (build first)" >&2; exit 2; }
[ -x "$build/tools/bench_diff" ] || { echo "missing $build/tools/bench_diff (build first)" >&2; exit 2; }

workdir="$build/bench_regression"
mkdir -p "$workdir"
candidate="$workdir/BENCH_sattn.json"

# bench_all writes per-bench artifacts under ./out — keep them in workdir.
(cd "$workdir" && "$build/bench/bench_all" --report-out="$candidate" >/dev/null)

# shellcheck disable=SC2086  # diff_flags is intentionally word-split
"$build/tools/bench_diff" $diff_flags "$baseline" "$candidate"

echo "bench regression gate passed against $baseline"
