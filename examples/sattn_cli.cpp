// sattn_cli — command-line driver for the library.
//
//   sattn_cli plan     [--len N] [--layer L] [--head H] [--alpha A]
//                      [--config FILE] [--save FILE] [--visualize]
//   sattn_cli tune     [--min N] [--max N] [--requests K] [--save FILE]
//   sattn_cli estimate [--len N] [--config FILE]
//   sattn_cli evaluate [--len N] [--depth F] [--config FILE]
//
// Configs use the properties format of io/config_io.h; --save from `tune`
// writes a profile that `plan` / `estimate` / `evaluate` consume, the
// deploy-time loop the paper's Section 4.2 describes.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>

#include "attention/full_attention.h"
#include "attention/score_utils.h"
#include "io/config_io.h"
#include "io/heatmap.h"
#include "metrics/cra.h"
#include "model/workload.h"
#include "perf/cost_model.h"
#include "perf/latency_report.h"
#include "sample_attention/tuner.h"
#include "tasks/needle.h"

using namespace sattn;

namespace {

struct Args {
  std::string command;
  std::map<std::string, std::string> flags;

  Index index(const char* key, Index fallback) const {
    const auto it = flags.find(key);
    return it == flags.end() ? fallback : std::atoll(it->second.c_str());
  }
  double number(const char* key, double fallback) const {
    const auto it = flags.find(key);
    return it == flags.end() ? fallback : std::atof(it->second.c_str());
  }
  const char* str(const char* key) const {
    const auto it = flags.find(key);
    return it == flags.end() ? nullptr : it->second.c_str();
  }
  bool has(const char* key) const { return flags.count(key) > 0; }
};

Args parse_args(int argc, char** argv) {
  Args args;
  if (argc >= 2) args.command = argv[1];
  for (int a = 2; a < argc; ++a) {
    if (std::strncmp(argv[a], "--", 2) != 0) continue;
    const std::string key = argv[a] + 2;
    if (a + 1 < argc && std::strncmp(argv[a + 1], "--", 2) != 0) {
      args.flags[key] = argv[++a];
    } else {
      args.flags[key] = "1";
    }
  }
  return args;
}

SampleAttentionConfig config_from(const Args& args) {
  SampleAttentionConfig cfg;
  if (const char* path = args.str("config")) {
    const auto loaded = load_config(path);
    if (!loaded) {
      std::fprintf(stderr, "warning: could not load config '%s'; using defaults\n", path);
    } else {
      cfg = *loaded;
    }
  }
  if (args.has("alpha")) cfg.alpha = args.number("alpha", cfg.alpha);
  return cfg;
}

int cmd_plan(const Args& args) {
  const ModelConfig model = chatglm2_6b();
  const Index len = args.index("len", 2048);
  const Index layer = args.index("layer", 8);
  const Index head = args.index("head", 3);
  const SampleAttentionConfig cfg = config_from(args);

  const AttentionInput in = generate_attention(model, plain_prompt(1, len), layer, head);
  const SamplePlan plan = plan_sample_attention(in, cfg);
  const auto rows = stride_rows(len, std::min(1.0, 64.0 / static_cast<double>(len)));

  std::printf("plan — %s L%lld H%lld, S=%lld, alpha=%.2f\n", model.name.c_str(),
              static_cast<long long>(layer), static_cast<long long>(head),
              static_cast<long long>(len), cfg.alpha);
  std::printf("  |I_KV| = %zu (%s of keys), window = %lld, density = %s, overhead = %s\n",
              plan.filter.kv_indices.size(), fmt_pct(plan.filter.kv_ratio).c_str(),
              static_cast<long long>(plan.mask.window()), fmt_pct(plan.density).c_str(),
              fmt_pct(plan.overhead_fraction).c_str());
  std::printf("  achieved CRA (probe rows): %.4f\n", cra(in, plan.mask, rows));

  if (args.has("visualize")) {
    HeatmapOptions opts;
    opts.cells = 32;
    std::printf("\nscores:\n%s\nmask:\n%s", render_ascii(downsample_scores(in, opts)).c_str(),
                render_ascii(downsample_mask(plan.mask, opts)).c_str());
  }
  if (const char* path = args.str("save")) {
    if (save_config(cfg, path)) std::printf("config saved to %s\n", path);
  }
  return 0;
}

int cmd_tune(const Args& args) {
  const ModelConfig model = chatglm2_6b();
  const Index min_len = args.index("min", 256);
  const Index max_len = args.index("max", 768);
  const Index count = args.index("requests", 8);
  const auto requests = profiling_set(min_len, max_len, count);
  const auto inputs = profiling_inputs(model, requests, 8, 3);
  const TunerReport report = tune_hyperparameters(inputs);
  std::printf("tuned on %lld requests (%lld-%lld tokens): alpha=%.2f r_row=%s r_w=%s (%s)\n",
              static_cast<long long>(count), static_cast<long long>(min_len),
              static_cast<long long>(max_len), report.best.alpha,
              fmt_pct(report.best.row_ratio, 0).c_str(),
              fmt_pct(report.best.window_ratio, 0).c_str(),
              report.found_feasible ? "near-lossless" : "best effort");
  if (const char* path = args.str("save")) {
    if (save_config(report.best, path)) std::printf("config saved to %s\n", path);
  }
  return 0;
}

int cmd_estimate(const Args& args) {
  const ModelConfig model = chatglm2_6b();
  const GpuSpec gpu = a100_single();
  const Index len = args.index("len", 131072);
  const SampleAttentionConfig cfg = config_from(args);

  // Measure densities at a plannable length and scale.
  const Index s_measured = 2048;
  const AttentionInput in = generate_attention(model, plain_prompt(2, s_measured), 12, 3);
  const SamplePlan plan = plan_sample_attention(in, cfg);
  const double wd_measured = window_band_density(s_measured, cfg.window_ratio);
  const double stripes = std::max(0.0, plan.density - wd_measured);
  const double wd = window_band_density(len, cfg.window_ratio);
  const double kept = wd + extrapolate_kept_fraction(stripes, s_measured, len);

  const double fa2 = flash_attention_seconds(model, len, gpu);
  const double sa =
      sample_attention_seconds(model, len, gpu, kept, plan.overhead_fraction, wd).total_seconds;
  const double linear = linear_parts_seconds(model, len, gpu);
  std::printf("estimate — %lld tokens on one A100 (%s)\n", static_cast<long long>(len),
              model.name.c_str());
  std::printf("  FlashAttention2 : attention %ss, TTFT %ss\n", fmt(fa2, 2).c_str(),
              fmt(fa2 + linear, 2).c_str());
  std::printf("  SampleAttention : attention %ss, TTFT %ss  (attention %s, TTFT %s)\n",
              fmt(sa, 2).c_str(), fmt(sa + linear, 2).c_str(), fmt_speedup(fa2 / sa).c_str(),
              fmt_speedup((fa2 + linear) / (sa + linear)).c_str());
  return 0;
}

int cmd_evaluate(const Args& args) {
  const ModelConfig model = chatglm2_6b();
  const Index len = args.index("len", 1024);
  const double depth = args.number("depth", 0.5);
  const SampleAttentionConfig cfg = config_from(args);
  const TaskInstance inst = make_needle_instance(len, depth, 99);
  const double full = evaluate_instance(model, FullAttention{}, inst);
  const double sample = evaluate_instance(model, SampleAttention{cfg}, inst);
  std::printf("needle at depth %.2f of %lld tokens: full=%.2f sample=%.2f -> %s\n", depth,
              static_cast<long long>(len), full, sample,
              sample >= 0.99 * full ? "near-lossless" : "LOSSY");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const Args args = parse_args(argc, argv);
  if (args.command == "plan") return cmd_plan(args);
  if (args.command == "tune") return cmd_tune(args);
  if (args.command == "estimate") return cmd_estimate(args);
  if (args.command == "evaluate") return cmd_evaluate(args);
  std::fprintf(stderr,
               "usage: sattn_cli <plan|tune|estimate|evaluate> [--flags]\n"
               "  plan     --len N --layer L --head H --alpha A [--config F] [--save F] [--visualize]\n"
               "  tune     --min N --max N --requests K [--save F]\n"
               "  estimate --len N [--config F]\n"
               "  evaluate --len N --depth F [--config F]\n");
  return args.command.empty() ? 1 : 2;
}
