// Quickstart: replace full attention with SampleAttention on one head.
//
// Generates a long-context attention input on the ChatGLM2-6B-like
// substrate, runs full attention and SampleAttention(alpha = 0.95), and
// reports the kept-KV density, Stage-1 sampling overhead, achieved CRA, and
// output error — the near-lossless claim of the paper in one screen of
// output.
#include <cstdio>

#include "attention/full_attention.h"
#include "attention/score_utils.h"
#include "metrics/cra.h"
#include "metrics/recovery.h"
#include "metrics/sparsity.h"
#include "model/workload.h"
#include "sample_attention/sample_attention.h"

int main() {
  using namespace sattn;

  const ModelConfig model = chatglm2_6b();
  const Index seq_len = 4096;
  const ContentSpec content = plain_prompt(/*seed=*/7, seq_len);
  const Index layer = 8, head = 3;
  const AttentionInput input = generate_attention(model, content, layer, head);

  std::printf("SampleAttention quickstart — %s, layer %d head %d, S=%d, d=%d\n\n",
              model.name.c_str(), static_cast<int>(layer), static_cast<int>(head),
              static_cast<int>(seq_len), static_cast<int>(model.head_dim));

  // Gold reference.
  Matrix exact;
  full_attention(input, exact);

  // Oracle sparsity of this head (what SD(alpha=0.95) says is achievable).
  const auto probe_rows = stride_rows(seq_len, 0.05);
  const SparsityStats sd = sd_oracle(input, 0.95, probe_rows);
  std::printf("oracle SD(alpha=0.95): %.1f%% of causal entries can be dropped\n", 100.0 * sd.sd);

  // SampleAttention with the paper's defaults (alpha=0.95, r_row=5%, r_w=8%).
  SampleAttentionConfig cfg;
  Matrix approx;
  SamplePlan plan;
  sample_attention(input, cfg, approx, &plan);

  const double achieved_cra =
      cra(input, plan.mask, probe_rows);
  const RecoveryStats rec = recovery_stats(approx, exact);

  std::printf("SampleAttention plan:  |I_KV| = %zu columns (%.2f%% of keys), window = %d\n",
              plan.filter.kv_indices.size(), 100.0 * plan.filter.kv_ratio,
              static_cast<int>(plan.mask.window()));
  std::printf("  mask density:        %.2f%% of causal entries computed\n", 100.0 * plan.density);
  std::printf("  stage-1 overhead:    %.2f%% of full attention work\n",
              100.0 * plan.overhead_fraction);
  std::printf("  achieved CRA:        %.4f (threshold alpha = %.2f)\n", achieved_cra, cfg.alpha);
  std::printf("  output error:        max|err| = %.2e, rel L1 = %.4f\n", rec.max_abs_err,
              rec.rel_l1);
  std::printf("\nnear-lossless (rel L1 < 5%%): %s\n", rec.rel_l1 < 0.05 ? "YES" : "NO");
  return 0;
}
