// Serving demo: estimate the TTFT of a long-context request on an A100 and
// show how much SampleAttention shaves off — the deployment question the
// paper's Figure 1 and Table 4 motivate.
//
// The pipeline mirrors how a serving stack would integrate the library:
//   1. plan SampleAttention on a few representative heads of the prompt
//      (densities are measured, not assumed);
//   2. feed the measured densities into the A100 cost model;
//   3. report the TTFT breakdown for FlashAttention2 vs SampleAttention.
//
// Usage: serving_ttft_demo [prompt_tokens]
#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "model/workload.h"
#include "perf/cost_model.h"
#include "perf/latency_report.h"
#include "sample_attention/sample_attention.h"

int main(int argc, char** argv) {
  using namespace sattn;

  const Index prompt_tokens = argc > 1 ? std::atoll(argv[1]) : 131072;
  const ModelConfig model = chatglm2_6b();
  const GpuSpec gpu = a100_single();

  // Plan on the substrate at a measurable length, then scale.
  const Index s_measured = 2048;
  double kept = 0.0, overhead = 0.0;
  int n = 0;
  for (Index layer : {4, 12, 20}) {
    const AttentionInput in =
        generate_attention(model, plain_prompt(2025, s_measured), layer, 3);
    const SamplePlan plan = plan_sample_attention(in, SampleAttentionConfig{});
    kept += plan.density;
    overhead += plan.overhead_fraction;
    ++n;
  }
  kept /= n;
  overhead /= n;

  const double wd_measured = window_band_density(s_measured, 0.08);
  const double stripes = std::max(0.0, kept - wd_measured);
  const double wd = window_band_density(prompt_tokens, 0.08);
  const double kept_at_s = wd + extrapolate_kept_fraction(stripes, s_measured, prompt_tokens);

  const double attn_fa2 = flash_attention_seconds(model, prompt_tokens, gpu);
  const SampleAttentionCost sa =
      sample_attention_seconds(model, prompt_tokens, gpu, kept_at_s, overhead, wd);
  const double linear = linear_parts_seconds(model, prompt_tokens, gpu);

  std::printf("Serving TTFT estimate — %s, %lld-token prompt, single A100\n\n",
              model.name.c_str(), static_cast<long long>(prompt_tokens));
  std::printf("measured on substrate: kept density %s (window %s + stripes %s), sampling %s\n\n",
              fmt_pct(kept_at_s).c_str(), fmt_pct(wd).c_str(),
              fmt_pct(kept_at_s - wd).c_str(), fmt_pct(overhead).c_str());

  TextTable t({"component", "FlashAttention2", "SampleAttention(0.95)"});
  t.add_row({"attention (s)", fmt(attn_fa2, 2), fmt(sa.total_seconds, 2)});
  t.add_row({"  stage-1 sampling (s)", "-", fmt(sa.sampling_seconds, 2)});
  t.add_row({"  stage-2 filtering (s)", "-", fmt(sa.filter_seconds, 2)});
  t.add_row({"  sparse kernel (s)", "-", fmt(sa.sparse_seconds, 2)});
  t.add_row({"projections + MLP (s)", fmt(linear, 2), fmt(linear, 2)});
  t.add_row({"TTFT (s)", fmt(attn_fa2 + linear, 2), fmt(sa.total_seconds + linear, 2)});
  t.print();
  std::printf("\nTTFT speedup: %s  (attention alone: %s)\n",
              fmt_speedup((attn_fa2 + linear) / (sa.total_seconds + linear)).c_str(),
              fmt_speedup(attn_fa2 / sa.total_seconds).c_str());
  return 0;
}
