// Decode-phase demo: SampleAttention prefill composed with KV-cache
// eviction — the paper's claim that the two are orthogonal (Section 1).
//
// A needle is planted mid-context; prefill runs with SampleAttention; the
// decode phase then answers repeatedly while an eviction policy shrinks the
// KV cache. H2O (heavy-hitter) keeps the needle because its accumulated
// attention score is high; a StreamingLLM-style sink+recent policy evicts
// it and loses the answer.
#include <cstdio>

#include "model/workload.h"
#include "runtime/chunked_prefill.h"
#include "runtime/decode.h"
#include "runtime/eviction.h"
#include "tasks/needle.h"
#include "tasks/scoring.h"

int main() {
  using namespace sattn;

  const ModelConfig model = chatglm2_6b();
  const Index s = 1024;
  const TaskInstance inst = make_needle_instance(s, 0.45, /*seed=*/4242);
  const Index needle = inst.facts[0];
  const auto heads = retrieval_heads(model, 1);
  const AttentionInput in = generate_attention(model, inst.content, heads[0].first,
                                               heads[0].second);

  std::printf("Decode demo — needle at position %lld of %lld, %s L%lldH%lld\n\n",
              static_cast<long long>(needle), static_cast<long long>(s), model.name.c_str(),
              static_cast<long long>(heads[0].first), static_cast<long long>(heads[0].second));

  EvalOptions opts;
  const auto run_with = [&](const char* label, EvictionPolicy& policy, Index budget_note) {
    // Prefill (chunked SampleAttention) fills the cache.
    KVCache cache(model.head_dim);
    if (!chunked_sample_prefill(in, 256, SampleAttentionConfig{}, &cache).ok()) {
      std::printf("  %-22s prefill failed\n", label);
      return;
    }

    // Decode: the question is re-asked while the policy trims the cache.
    bool answered = true;
    for (int step = 0; step < 6; ++step) {
      std::vector<float> out(static_cast<std::size_t>(model.head_dim)), weights;
      if (!decode_attention(in.q.row(s - 1), cache, out, &weights).ok()) break;
      policy.observe(cache, weights);
      policy.enforce(cache);
      answered = fact_recovered(out, inst.content, needle, opts);
    }
    std::printf("  %-22s cache %4lld/%lld slots   needle kept: %-3s   answer: %s\n", label,
                static_cast<long long>(cache.size()), static_cast<long long>(budget_note),
                cache.slot_of(needle) >= 0 ? "yes" : "NO", answered ? "recovered" : "LOST");
  };

  H2OPolicy h2o(/*budget=*/192, /*recent=*/64);
  run_with("H2O (heavy hitters)", h2o, s);
  SinkRecentPolicy sink(/*sinks=*/4, /*recent=*/188);
  run_with("sink+recent (192)", sink, s);

  std::printf(
      "\nSampleAttention cut the prefill cost; H2O then cut decode memory 5x without\n"
      "losing the needle — the two techniques compose, as the paper argues.\n");
  return 0;
}
