// Offline hyperparameter tuning demo — the paper's Section 4.2 procedure:
// profile a small set of requests (22 in the paper, 25K-96K) over a grid of
// (alpha, r_row, r_w%) and pick the cheapest near-lossless configuration.
//
// Usage: tuning_demo [min_len] [max_len] [num_requests]
#include <cstdio>
#include <cstdlib>

#include "model/workload.h"
#include "perf/latency_report.h"
#include "sample_attention/tuner.h"

int main(int argc, char** argv) {
  using namespace sattn;

  const Index min_len = argc > 1 ? std::atoll(argv[1]) : 256;
  const Index max_len = argc > 2 ? std::atoll(argv[2]) : 768;
  const Index count = argc > 3 ? std::atoll(argv[3]) : 8;

  const ModelConfig model = chatglm2_6b();
  const auto requests = profiling_set(min_len, max_len, count);
  const auto inputs = profiling_inputs(model, requests, /*layer=*/8, /*head=*/3);

  std::printf("Offline tuning — %s, %lld profiling requests, %lld-%lld tokens\n\n",
              model.name.c_str(), static_cast<long long>(count),
              static_cast<long long>(min_len), static_cast<long long>(max_len));

  TunerOptions opts;  // the paper's Table 3 grid
  const TunerReport report = tune_hyperparameters(inputs, opts);

  TextTable t({"alpha", "r_row", "r_w%", "worst rel L1", "mean cost", "feasible"});
  for (const TunerEntry& e : report.entries) {
    t.add_row({fmt(e.cfg.alpha, 2), fmt_pct(e.cfg.row_ratio, 0), fmt_pct(e.cfg.window_ratio, 0),
               fmt(e.worst_rel_l1, 4), fmt_pct(e.mean_cost), e.feasible ? "yes" : "no"});
  }
  t.print();

  std::printf("\nchosen configuration: alpha=%.2f  r_row=%s  r_w=%s  (%s)\n", report.best.alpha,
              fmt_pct(report.best.row_ratio, 0).c_str(),
              fmt_pct(report.best.window_ratio, 0).c_str(),
              report.found_feasible ? "cheapest near-lossless"
                                    : "no feasible entry; most accurate");
  std::printf("paper's profiled defaults: alpha=0.95, r_row=5%%, r_w=8%%\n");
  return 0;
}
