// Needle-in-a-Haystack demo: buries a fact at a chosen depth in a long
// synthetic context and shows which attention methods can still answer the
// question at the end — the scenario from the paper's Figure 4.
//
// Usage: needle_demo [length] [depth in 0..1]
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <vector>

#include "attention/full_attention.h"
#include "baselines/bigbird.h"
#include "baselines/hash_sparse.h"
#include "baselines/hyper_attention.h"
#include "baselines/streaming_llm.h"
#include "sample_attention/sample_attention.h"
#include "tasks/needle.h"

int main(int argc, char** argv) {
  using namespace sattn;

  const Index length = argc > 1 ? std::atoll(argv[1]) : 2048;
  const double depth = argc > 2 ? std::atof(argv[2]) : 0.5;

  const ModelConfig model = chatglm2_6b();
  const TaskInstance inst = make_needle_instance(length, depth, /*seed=*/2024);
  std::printf("Needle demo — %s substrate, context %lld tokens, needle at depth %.0f%%"
              " (position %lld)\n\n",
              model.name.c_str(), static_cast<long long>(length), 100.0 * depth,
              static_cast<long long>(inst.facts[0]));

  std::vector<std::unique_ptr<AttentionMethod>> methods;
  methods.push_back(std::make_unique<FullAttention>());
  methods.push_back(std::make_unique<SampleAttention>());
  methods.push_back(std::make_unique<BigBird>());
  methods.push_back(std::make_unique<StreamingLLM>());
  methods.push_back(std::make_unique<HyperAttention>());
  methods.push_back(std::make_unique<HashSparse>());

  EvalOptions opts;
  opts.num_heads = 3;
  std::printf("%-26s %-10s %-16s\n", "method", "answered?", "attended density");
  for (const auto& m : methods) {
    const double score = evaluate_instance(model, *m, inst, opts);
    // Density of the method on one representative head.
    const auto heads = retrieval_heads(model, 1);
    const AttentionInput in = generate_attention(model, inst.content, heads[0].first,
                                                 heads[0].second);
    const AttentionResult res = m->run(in);
    std::printf("%-26s %-10s %5.1f%%\n", m->name().c_str(), score >= 0.5 ? "YES" : "no",
                100.0 * res.density);
  }

  std::printf("\nfull attention and SampleAttention retrieve the needle at any depth;\n"
              "window/sink masks only answer when the needle falls inside their pattern.\n");
  return 0;
}
