// bench_diff — compares two structured run reports (io/run_report.h) and
// exits non-zero when the candidate regresses against the baseline. The
// CLI behind scripts/check_bench_regression.sh; gate semantics live in
// io/report_diff.h.
//
// Usage:
//   bench_diff [flags] <baseline.json> <candidate.json>
//
// Flags:
//   --latency-threshold=F  relative latency regression threshold (default 0.20)
//   --min-latency-us=F     ignore spans with mean below this (default 500)
//   --quality-threshold=F  absolute CRA/coverage/recovery drop allowed (default 0.005)
//   --model-error-threshold=F  max allowed perf.model_error.* gauge value in
//                          the candidate report (default 0.05)
//   --engine-error-threshold=F max allowed engine.err.* gauge value (the
//                          simulator-vs-real-engine serving prediction
//                          error from bench_serving --engine; default 1.0)
//   --audit-cra-threshold=F max allowed audit.*.cra_gap gauge value (the
//                          planner's predicted-CRA overclaim vs the online
//                          auditor's shadow-measured CRA, from
//                          bench_serving --engine --audit-rate; default 0.05)
//   --prefix-ttft-min=F    min required kv.prefix_ttft_reduction gauge value
//                          in the candidate report (the warm-prefix TTFT cut
//                          from bench_serving --prefix; skipped when the
//                          gauge is absent; default 0.30)
//   --ignore-latency       gate on quality metrics only (for cross-machine
//                          comparisons where wall-clock is not comparable)
//   --verbose              also print within-noise / missing / new entries
//
// Exit codes: 0 = no regression, 1 = regression detected, 2 = usage or
// parse error.
#include <cstdio>
#include <cstdlib>
#include <string>
#include <string_view>
#include <vector>

#include "io/report_diff.h"
#include "io/run_report.h"

using namespace sattn;

namespace {

constexpr int kExitOk = 0;
constexpr int kExitRegression = 1;
constexpr int kExitError = 2;

void usage() {
  std::fprintf(stderr,
               "usage: bench_diff [--latency-threshold=F] [--min-latency-us=F]\n"
               "                  [--quality-threshold=F] [--model-error-threshold=F]\n"
               "                  [--engine-error-threshold=F] [--audit-cra-threshold=F]\n"
               "                  [--prefix-ttft-min=F] [--ignore-latency] [--verbose]\n"
               "                  <baseline.json> <candidate.json>\n");
}

}  // namespace

int main(int argc, char** argv) {
  DiffOptions opts;
  bool verbose = false;
  std::vector<std::string> paths;
  for (int a = 1; a < argc; ++a) {
    const std::string_view arg = argv[a];
    const auto value_of = [&](std::string_view name) -> const char* {
      if (arg.size() > name.size() + 1 && arg.substr(0, name.size()) == name &&
          arg[name.size()] == '=') {
        return argv[a] + name.size() + 1;
      }
      return nullptr;
    };
    if (const char* v = value_of("--latency-threshold")) {
      opts.latency_rel_threshold = std::atof(v);
    } else if (const char* v = value_of("--min-latency-us")) {
      opts.latency_min_us = std::atof(v);
    } else if (const char* v = value_of("--quality-threshold")) {
      opts.quality_abs_threshold = std::atof(v);
    } else if (const char* v = value_of("--model-error-threshold")) {
      opts.model_error_threshold = std::atof(v);
    } else if (const char* v = value_of("--engine-error-threshold")) {
      opts.engine_error_threshold = std::atof(v);
    } else if (const char* v = value_of("--audit-cra-threshold")) {
      opts.audit_cra_threshold = std::atof(v);
    } else if (const char* v = value_of("--prefix-ttft-min")) {
      opts.prefix_ttft_min = std::atof(v);
    } else if (arg == "--ignore-latency") {
      opts.check_latency = false;
    } else if (arg == "--verbose") {
      verbose = true;
    } else if (arg == "--help" || arg == "-h") {
      usage();
      return kExitOk;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "bench_diff: unknown flag %s\n", argv[a]);
      usage();
      return kExitError;
    } else {
      paths.emplace_back(arg);
    }
  }
  if (paths.size() != 2) {
    usage();
    return kExitError;
  }

  auto baseline = load_run_report(paths[0]);
  if (!baseline.ok()) {
    std::fprintf(stderr, "bench_diff: %s: %s\n", paths[0].c_str(),
                 baseline.status().to_string().c_str());
    return kExitError;
  }
  auto candidate = load_run_report(paths[1]);
  if (!candidate.ok()) {
    std::fprintf(stderr, "bench_diff: %s: %s\n", paths[1].c_str(),
                 candidate.status().to_string().c_str());
    return kExitError;
  }

  std::printf("baseline:  %s (git %s)\n", paths[0].c_str(),
              baseline.value().meta.count("git_rev") ? baseline.value().meta.at("git_rev").c_str()
                                                     : "?");
  std::printf("candidate: %s (git %s)\n\n", paths[1].c_str(),
              candidate.value().meta.count("git_rev")
                  ? candidate.value().meta.at("git_rev").c_str()
                  : "?");

  const DiffResult result = diff_reports(baseline.value(), candidate.value(), opts);
  std::fputs(render_diff(result, verbose).c_str(), stdout);
  return result.has_regression() ? kExitRegression : kExitOk;
}
