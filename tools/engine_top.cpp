// engine_top: terminal dashboard for the serving engine's live telemetry
// stream (docs/OBSERVABILITY.md, "Live telemetry & alerts").
//
// Tails the NDJSON file written by a running engine (--telemetry-out on
// bench_serving --engine, or EngineOptions::telemetry.ndjson_path) and
// renders one frame per tick: throughput rates, rolling TTFT/TPOT
// percentiles, KV bytes against the budget, breaker/watchdog state, and the
// active quality-drift alerts.
//
//   engine_top --input=telemetry.ndjson             # live, refresh loop
//   engine_top --input=telemetry.ndjson --once      # one frame, for CI/pipes
//   engine_top --selftest [--keep]                  # in-process engine run
//
// --selftest spins a small sample-mode engine with every plan corrupted
// (forced dense fallbacks) and low drift thresholds, streams telemetry to a
// scratch file, renders it through the same --once path, and exits non-zero
// unless the frame shows rolling percentiles and an active alert. This is
// the ctest smoke test: it proves the whole plane end to end — engine ->
// rings -> publisher -> NDJSON -> dashboard.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "io/json.h"
#include "robust/fault_injection.h"
#include "runtime/engine.h"

namespace {

using sattn::JsonValue;

std::string read_last_line(const std::string& path) {
  std::ifstream in(path);
  if (!in) return {};
  std::string line, last;
  while (std::getline(in, line)) {
    if (!line.empty()) last = line;
  }
  return last;
}

std::string fmt_seconds(double s) {
  char buf[48];
  if (s < 0.0) s = 0.0;
  if (s < 1e-3) {
    std::snprintf(buf, sizeof(buf), "%.0fus", s * 1e6);
  } else if (s < 1.0) {
    std::snprintf(buf, sizeof(buf), "%.2fms", s * 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.2fs", s);
  }
  return buf;
}

std::string fmt_bytes(double b) {
  char buf[48];
  if (b >= 1024.0 * 1024.0) {
    std::snprintf(buf, sizeof(buf), "%.1fMiB", b / (1024.0 * 1024.0));
  } else if (b >= 1024.0) {
    std::snprintf(buf, sizeof(buf), "%.1fKiB", b / 1024.0);
  } else {
    std::snprintf(buf, sizeof(buf), "%.0fB", b);
  }
  return buf;
}

const char* breaker_name(int state) {
  switch (state) {
    case 1: return "OPEN";
    case 2: return "half-open";
    default: return "closed";
  }
}

void render_rolling(std::ostringstream& out, const char* name, const JsonValue& h,
                    double window_s) {
  const std::size_t n = static_cast<std::size_t>(h.get("count").as_number());
  out << "  " << name;
  if (n == 0) {
    out << "   (no samples in window)\n";
    return;
  }
  out << "   n=" << n << "  p50=" << fmt_seconds(h.get("p50").as_number())
      << "  p95=" << fmt_seconds(h.get("p95").as_number())
      << "  p99=" << fmt_seconds(h.get("p99").as_number())
      << "  mean=" << fmt_seconds(h.get("mean").as_number()) << "  (last "
      << window_s << "s)\n";
}

// One dashboard frame from a parsed telemetry line. Pure string-building so
// the selftest can assert on the exact frame the user would see.
std::string render_frame(const JsonValue& o) {
  std::ostringstream out;
  const JsonValue& eng = o.get("engine");
  const JsonValue& totals = o.get("totals");
  const JsonValue& rates = o.get("rates");
  const JsonValue& rolling = o.get("rolling");
  const JsonValue& alerts = o.get("alerts");

  out << "engine_top — label=" << o.get("label").as_string()
      << "  seq=" << static_cast<long long>(o.get("seq").as_number())
      << "  t=" << fmt_seconds(o.get("t").as_number()) << "\n";
  out << "  engine live=" << static_cast<long long>(eng.get("live").as_number())
      << " active=" << static_cast<long long>(eng.get("active").as_number())
      << "  breaker=" << breaker_name(static_cast<int>(eng.get("breaker_state").as_number()))
      << "  heartbeat_age=" << fmt_seconds(eng.get("heartbeat_age_s").as_number())
      << "  watchdog_stalls=" << static_cast<long long>(eng.get("watchdog_stalls").as_number())
      << "\n";

  const double kv = eng.get("kv_bytes").as_number();
  const double budget = eng.get("kv_budget_bytes").as_number();
  out << "  kv     " << fmt_bytes(kv);
  if (budget > 0.0) {
    const double frac = kv / budget;
    out << " / " << fmt_bytes(budget) << " (" << static_cast<int>(frac * 100.0) << "%)  [";
    const int width = 24;
    const int fill = frac >= 1.0 ? width : static_cast<int>(frac * width);
    for (int i = 0; i < width; ++i) out << (i < fill ? '=' : '.');
    out << "]";
  } else {
    out << " (no budget)";
  }
  out << "\n";

  char rate_buf[160];
  std::snprintf(rate_buf, sizeof(rate_buf),
                "  rates  submit=%.1f/s complete=%.1f/s decode=%.0f tok/s shed=%.1f/s\n",
                rates.get("submit_per_s").as_number(), rates.get("complete_per_s").as_number(),
                rates.get("decode_tokens_per_s").as_number(), rates.get("shed_per_s").as_number());
  out << rate_buf;

  const double window_s = rolling.get("window_s").as_number();
  render_rolling(out, "ttft", rolling.get("ttft_s"), window_s);
  render_rolling(out, "tpot", rolling.get("tpot_s"), window_s);
  const JsonValue& retained = rolling.get("retained_kv_frac");
  if (retained.get("count").as_number() > 0.0) {
    char ret_buf[96];
    std::snprintf(ret_buf, sizeof(ret_buf), "  retained_kv mean=%.3f min=%.3f (plans in window)\n",
                  retained.get("mean").as_number(), retained.get("min").as_number());
    out << ret_buf;
  }
  // Shadow-audit scorecard panel: measured chunk CRA from the online
  // quality auditor (obs/audit.h). Presence-guarded so streams from
  // audit-disabled engines render unchanged.
  const JsonValue& audit = rolling.get("audit_cra");
  if (audit.get("count").as_number() > 0.0) {
    char audit_buf[160];
    std::snprintf(audit_buf, sizeof(audit_buf),
                  "  audit_cra mean=%.3f min=%.3f p50=%.3f  audited chunks=%lld rows=%lld\n",
                  audit.get("mean").as_number(), audit.get("min").as_number(),
                  audit.get("p50").as_number(),
                  static_cast<long long>(totals.get("audited_chunks").as_number()),
                  static_cast<long long>(totals.get("audited_rows").as_number()));
    out << audit_buf;
  }

  out << "  totals submitted=" << static_cast<long long>(totals.get("submitted").as_number())
      << " admitted=" << static_cast<long long>(totals.get("admitted").as_number())
      << " completed=" << static_cast<long long>(totals.get("completed").as_number())
      << " shed=" << static_cast<long long>(totals.get("shed").as_number())
      << " cancelled=" << static_cast<long long>(totals.get("cancelled").as_number()) << "\n";
  out << "         prefill_chunks=" << static_cast<long long>(totals.get("prefill_chunks").as_number())
      << " decode_steps=" << static_cast<long long>(totals.get("decode_steps").as_number())
      << " plans=" << static_cast<long long>(totals.get("plans").as_number())
      << " escalations=" << static_cast<long long>(totals.get("escalations").as_number())
      << " dense_fallbacks=" << static_cast<long long>(totals.get("dense_fallbacks").as_number())
      << "\n";

  if (alerts.is_array() && alerts.size() > 0) {
    for (std::size_t i = 0; i < alerts.size(); ++i) {
      const JsonValue& a = alerts.at(i);
      char alert_buf[192];
      std::snprintf(alert_buf, sizeof(alert_buf),
                    "  ALERT  %s value=%.3f threshold=%.3f since=t+%.2fs\n",
                    a.get("name").as_string().c_str(), a.get("value").as_number(),
                    a.get("threshold").as_number(), a.get("since_s").as_number());
      out << alert_buf;
    }
  } else {
    out << "  alerts (none active)\n";
  }

  const long long dropped = static_cast<long long>(o.get("events_dropped").as_number());
  if (dropped > 0) out << "  events_dropped=" << dropped << "\n";
  return out.str();
}

// Returns 0 on success; 2 on unreadable/unparseable input.
int show_once(const std::string& path, std::string* frame_out = nullptr) {
  const std::string line = read_last_line(path);
  if (line.empty()) {
    std::fprintf(stderr, "engine_top: no telemetry lines in %s\n", path.c_str());
    return 2;
  }
  const auto parsed = sattn::parse_json(line);
  if (!parsed.ok()) {
    std::fprintf(stderr, "engine_top: bad telemetry line: %s\n",
                 parsed.status().message().c_str());
    return 2;
  }
  const std::string frame = render_frame(parsed.value());
  std::fputs(frame.c_str(), stdout);
  if (frame_out != nullptr) *frame_out = frame;
  return 0;
}

int watch(const std::string& path, double interval_s) {
  for (;;) {
    const std::string line = read_last_line(path);
    std::fputs("\x1b[2J\x1b[H", stdout);  // clear + home
    if (line.empty()) {
      std::printf("engine_top: waiting for telemetry in %s ...\n", path.c_str());
    } else {
      const auto parsed = sattn::parse_json(line);
      if (parsed.ok()) {
        std::fputs(render_frame(parsed.value()).c_str(), stdout);
      } else {
        std::printf("engine_top: unparseable line (mid-write?), retrying\n");
      }
    }
    std::fflush(stdout);
    std::this_thread::sleep_for(std::chrono::duration<double>(interval_s));
  }
}

// In-process end-to-end check, two scenarios:
//
//   1. Every plan corrupted so the ladder falls back to dense; drift
//      thresholds low enough that the dense-fallback alert must fire.
//      Verifies the frame carries rolling percentiles and the alert.
//   2. Quietly degraded masks: a plan hook shrinks each accepted plan's
//      window to a single diagonal while the Stage-1 bookkeeping still
//      claims full coverage — validation passes, no fallback, no planner-
//      side signal at all. Only the shadow auditor's *measured* CRA can see
//      it; verifies the audit panel renders and measured_cra_low fires.
int selftest(bool keep_file) {
  using namespace sattn;
  const std::string path = "engine_top_selftest.ndjson";

  EngineOptions opts;
  opts.mode = EngineMode::kSampleAttention;
  opts.head_dim = 32;
  opts.chunk_tokens = 128;
  opts.max_batch = 4;
  opts.decode_tokens = 4;
  opts.run_label = "selftest";
  auto injector = std::make_shared<FaultInjector>(
      FaultSpec{FaultClass::kPlanEmptyStripes, 1.0, 0x9ull, /*max_fires=*/-1});
  opts.guard.plan_hook = [injector](SamplePlan& plan) { injector->corrupt_plan(plan); };
  opts.telemetry.enabled = true;
  opts.telemetry.ndjson_path = path;
  opts.telemetry.interval_seconds = 0.005;
  opts.telemetry.drift.min_samples = 2;
  opts.telemetry.drift.window_seconds = 30.0;  // short run: keep every plan in window
  opts.telemetry.drift.max_dense_fallback_rate = 0.5;

  std::vector<ServingRequest> trace;
  for (int i = 0; i < 8; ++i) {
    trace.push_back({"req" + std::to_string(i), 512, 0.0});
  }
  ServingEngine engine(opts);
  const EngineResult res = engine.run_trace(trace);
  if (res.completed.size() != trace.size()) {
    std::fprintf(stderr, "selftest: expected %zu completions, got %zu\n", trace.size(),
                 res.completed.size());
    return 1;
  }

  std::string frame;
  const int rc = show_once(path, &frame);
  if (rc != 0) return rc;

  int failures = 0;
  const auto expect = [&](const char* needle) {
    if (frame.find(needle) == std::string::npos) {
      std::fprintf(stderr, "selftest: frame is missing \"%s\"\n", needle);
      ++failures;
    }
  };
  expect("p99=");                        // rolling percentiles rendered
  expect("ttft");
  expect("tpot");
  expect("ALERT  dense_fallback_rate_high");  // drift monitor fired
  expect("dense_fallbacks=");
  if (!keep_file) std::remove(path.c_str());

  // Scenario 2: measured-quality drift. The hook leaves every plan valid on
  // paper (coverage bookkeeping untouched, window >= 1, density > 0) but
  // strips the executed mask's local window down to the bare diagonal, so
  // the deployed mask silently loses the retained mass the window carried.
  const std::string audit_path = "engine_top_selftest_audit.ndjson";
  EngineOptions aopts;
  aopts.mode = EngineMode::kSampleAttention;
  aopts.head_dim = 32;
  aopts.chunk_tokens = 128;
  aopts.max_batch = 4;
  aopts.decode_tokens = 4;
  aopts.run_label = "selftest_audit";
  aopts.guard.plan_hook = [](SamplePlan& plan) { plan.mask.set_window(1); };
  aopts.audit.enabled = true;
  aopts.audit.sample_rate = 1.0;  // audit every row: the drift must be seen
  aopts.audit.row_budget = 8;
  aopts.telemetry.enabled = true;
  aopts.telemetry.ndjson_path = audit_path;
  aopts.telemetry.interval_seconds = 0.005;
  aopts.telemetry.drift.min_samples = 2;
  aopts.telemetry.drift.window_seconds = 30.0;
  aopts.telemetry.drift.min_measured_cra = 0.90;

  std::vector<ServingRequest> audit_trace;
  for (int i = 0; i < 8; ++i) {
    audit_trace.push_back({"aud" + std::to_string(i), 512, 0.0});
  }
  ServingEngine audit_engine(aopts);
  const EngineResult audit_res = audit_engine.run_trace(audit_trace);
  if (audit_res.completed.size() != audit_trace.size()) {
    std::fprintf(stderr, "selftest: audit scenario expected %zu completions, got %zu\n",
                 audit_trace.size(), audit_res.completed.size());
    return 1;
  }

  std::string audit_frame;
  const int audit_rc = show_once(audit_path, &audit_frame);
  if (audit_rc != 0) return audit_rc;
  const auto expect_audit = [&](const char* needle) {
    if (audit_frame.find(needle) == std::string::npos) {
      std::fprintf(stderr, "selftest: audit frame is missing \"%s\"\n", needle);
      ++failures;
    }
  };
  expect_audit("audit_cra mean=");           // scorecard panel rendered
  expect_audit("audited chunks=");
  expect_audit("ALERT  measured_cra_low");   // measured-quality drift fired
  if (!keep_file) std::remove(audit_path.c_str());

  if (failures == 0) std::printf("selftest: OK\n");
  return failures == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::string input;
  double interval_s = 0.5;
  bool once = false;
  bool run_selftest = false;
  bool keep = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--input=", 0) == 0) {
      input = arg.substr(8);
    } else if (arg.rfind("--interval=", 0) == 0) {
      interval_s = std::atof(arg.c_str() + 11);
    } else if (arg == "--once") {
      once = true;
    } else if (arg == "--selftest") {
      run_selftest = true;
    } else if (arg == "--keep") {
      keep = true;
    } else if (arg == "--help" || arg == "-h") {
      std::printf(
          "usage: engine_top --input=PATH [--once] [--interval=S]\n"
          "       engine_top --selftest [--keep]\n"
          "Tails the NDJSON telemetry stream from a serving-engine run\n"
          "(bench_serving --engine --telemetry-out=PATH) and renders a\n"
          "dashboard frame per tick. --once prints one frame and exits.\n");
      return 0;
    } else {
      std::fprintf(stderr, "engine_top: unknown flag %s (try --help)\n", arg.c_str());
      return 2;
    }
  }

  if (run_selftest) return selftest(keep);
  if (input.empty()) {
    std::fprintf(stderr, "engine_top: --input=PATH or --selftest required (try --help)\n");
    return 2;
  }
  if (once) return show_once(input);
  return watch(input, interval_s);
}
