// Serving-queue extension of the paper's TTFT story: what the prefill
// speedup does to a QUEUE of long-context requests (Appendix A.6 raises
// serving integration; this quantifies the end-to-end effect).
//
// A synthetic arrival trace runs through a single-A100 FCFS queue (and a
// chunk-preemptive round-robin variant) under three engines: SDPA,
// FlashAttention2, and SampleAttention(0.95) with substrate-measured
// densities. Queueing amplifies the per-request gain: mean TTFT improves by
// more than the raw prefill speedup once the queue saturates.
//
// The SLO section (docs/ROBUSTNESS.md) replays an overloaded trace through
// simulate_queue_slo: requests carry a TTFT deadline, transient faults are
// injected at --fault-rate, and the SampleAttention engine degrades its
// density budget to keep p99 TTFT inside --slo-ttft-s, shedding what cannot
// make the deadline. Flags: --fault-rate=F --deadline-s=D --slo-ttft-s=T.
#include <algorithm>
#include <cstdio>
#include <string>
#include <tuple>

#include "bench_common.h"
#include "io/report.h"
#include "model/workload.h"
#include "perf/latency_report.h"
#include "runtime/scheduler.h"

using namespace sattn;

int main(int argc, char** argv) {
  sattn::bench::TraceSession trace_session(argc, argv);
  // SLO-section knobs; defaults sized to the overload trace below, where
  // full-quality FCFS mean TTFT is ~100s.
  const sattn::bench::FlagParser flags(argc, argv);
  const double fault_rate = flags.double_flag("--fault-rate", 0.05);
  const double deadline_s = flags.double_flag("--deadline-s", 150.0);
  const double slo_ttft_s = flags.double_flag("--slo-ttft-s", 120.0);
  const ModelConfig model = chatglm2_6b();

  // Measure SampleAttention densities on the substrate (as bench_fig5).
  double kept = 0.0, overhead = 0.0;
  {
    int n = 0;
    for (Index layer : {4, 12, 20}) {
      const AttentionInput in = generate_attention(model, plain_prompt(140, 4096), layer, 3);
      const SamplePlan plan = plan_sample_attention(in, SampleAttentionConfig{});
      kept += plan.density;
      overhead += plan.overhead_fraction;
      ++n;
    }
    kept /= n;
    overhead /= n;
  }

  Engine sdpa, fa2, sa;
  sdpa.kind = EngineKind::kSdpa;
  fa2.kind = EngineKind::kFlashAttention;
  sa.kind = EngineKind::kSampleAttention;
  sa.kept_density = kept;
  sa.overhead_density = overhead;

  const auto trace = synthetic_trace(/*count=*/24, /*min=*/16 * 1024, /*max=*/256 * 1024,
                                     /*mean interarrival s=*/8.0)
                         .value();

  std::printf("Serving bench — 24 requests, 16K-256K prompts, single A100 cost model\n");
  std::printf("(SampleAttention densities measured on substrate: kept %s, overhead %s)\n\n",
              fmt_pct(kept).c_str(), fmt_pct(overhead).c_str());

  CsvWriter csv({"engine", "scheduler", "mean_ttft_s", "max_ttft_s", "mean_queueing_s",
                 "makespan_s"});
  TextTable t({"engine", "scheduler", "mean TTFT", "max TTFT", "mean queueing", "makespan"});
  double fcfs_fa2_mean = 0.0, fcfs_sa_mean = 0.0;
  for (auto [name, label, engine] :
       {std::tuple<const char*, const char*, const Engine*>{"SDPA", "sdpa", &sdpa},
        {"FlashAttention2", "fa2", &fa2},
        {"SampleAttention(0.95)", "sa", &sa}}) {
    for (auto [sched, sched_label, quantum] :
         {std::tuple<const char*, const char*, Index>{"FCFS", "fcfs", 0},
          {"chunked RR (8K)", "rr8192", 8192}}) {
      // Per-run label namespaces the request.<label>/<id>.* attribution
      // gauges so the six engine x scheduler runs stay distinguishable in
      // the report's per_request view.
      const std::string run_label = std::string(label) + "_" + sched_label;
      const ServingSummary s = summarize(simulate_queue(trace, *engine, quantum, run_label));
      t.add_row({name, sched, fmt(s.mean_ttft, 1) + "s", fmt(s.max_ttft, 1) + "s",
                 fmt(s.mean_queueing, 1) + "s", fmt(s.makespan, 1) + "s"});
      csv.add_row({name, sched, fmt(s.mean_ttft, 3), fmt(s.max_ttft, 3),
                   fmt(s.mean_queueing, 3), fmt(s.makespan, 3)});
      if (quantum == 0 && engine == &fa2) fcfs_fa2_mean = s.mean_ttft;
      if (quantum == 0 && engine == &sa) fcfs_sa_mean = s.mean_ttft;
    }
  }
  t.print();
  const std::string csv_path = sattn::bench::out_path("sattn_serving.csv");
  csv.write(csv_path);

  std::printf("\nqueueing-amplified mean-TTFT gain (FCFS, SampleAttention vs FA2): %s\n",
              fmt_speedup(fcfs_fa2_mean / std::max(1e-9, fcfs_sa_mean)).c_str());

  // --- SLO-aware degraded serving under overload ---------------------------
  std::printf("\nSLO serving — overload trace, deadline %.0fs, SLO TTFT %.0fs, fault rate %.2f\n\n",
              deadline_s, slo_ttft_s, fault_rate);
  const auto overload = synthetic_trace(/*count=*/32, /*min=*/64 * 1024, /*max=*/256 * 1024,
                                        /*mean interarrival s=*/4.0, /*seed=*/0x51ull)
                            .value();
  SloOptions slo;
  slo.deadline_seconds = deadline_s;
  slo.slo_ttft_seconds = slo_ttft_s;
  slo.fault_rate = fault_rate;
  slo.max_retries = 2;
  slo.retry_backoff_seconds = 2.0;

  TextTable slo_table({"engine", "served", "shed", "degraded", "retried", "p50 TTFT", "p99 TTFT"});
  for (auto [name, label, engine] :
       {std::tuple<const char*, const char*, const Engine*>{"FlashAttention2", "slo_fa2", &fa2},
        {"SampleAttention(0.95)", "slo_sa", &sa}}) {
    slo.run_label = label;
    const auto res = simulate_queue_slo(overload, *engine, slo);
    if (!res.ok()) {
      std::printf("simulate_queue_slo failed: %s\n", res.status().to_string().c_str());
      return 1;
    }
    const ServingSummary s = summarize(res.value().completed);
    slo_table.add_row({name, std::to_string(res.value().completed.size()),
                       std::to_string(res.value().shed.size()),
                       std::to_string(res.value().degraded), std::to_string(res.value().retries),
                       fmt(s.p50_ttft, 1) + "s", fmt(s.p99_ttft, 1) + "s"});
  }
  slo_table.print();
  std::printf(
      "\nOnly SampleAttention can trade density for latency: under overload it degrades\n"
      "(lower alpha / window budget per the cost model) instead of shedding, keeping\n"
      "p99 TTFT inside the SLO with more requests served than the exact engine.\n");
  std::printf("results also written to %s\n", csv_path.c_str());
  return 0;
}
