// Serving-queue extension of the paper's TTFT story: what the prefill
// speedup does to a QUEUE of long-context requests (Appendix A.6 raises
// serving integration; this quantifies the end-to-end effect).
//
// A synthetic arrival trace runs through a single-A100 FCFS queue (and a
// chunk-preemptive round-robin variant) under three engines: SDPA,
// FlashAttention2, and SampleAttention(0.95) with substrate-measured
// densities. Queueing amplifies the per-request gain: mean TTFT improves by
// more than the raw prefill speedup once the queue saturates.
#include <algorithm>
#include <cstdio>

#include "bench_common.h"
#include "io/report.h"
#include "model/workload.h"
#include "perf/latency_report.h"
#include "runtime/scheduler.h"

using namespace sattn;

int main(int argc, char** argv) {
  sattn::bench::TraceSession trace_session(argc, argv);
  const ModelConfig model = chatglm2_6b();

  // Measure SampleAttention densities on the substrate (as bench_fig5).
  double kept = 0.0, overhead = 0.0;
  {
    int n = 0;
    for (Index layer : {4, 12, 20}) {
      const AttentionInput in = generate_attention(model, plain_prompt(140, 4096), layer, 3);
      const SamplePlan plan = plan_sample_attention(in, SampleAttentionConfig{});
      kept += plan.density;
      overhead += plan.overhead_fraction;
      ++n;
    }
    kept /= n;
    overhead /= n;
  }

  Engine sdpa, fa2, sa;
  sdpa.kind = EngineKind::kSdpa;
  fa2.kind = EngineKind::kFlashAttention;
  sa.kind = EngineKind::kSampleAttention;
  sa.kept_density = kept;
  sa.overhead_density = overhead;

  const auto trace = synthetic_trace(/*count=*/24, /*min=*/16 * 1024, /*max=*/256 * 1024,
                                     /*mean interarrival s=*/8.0);

  std::printf("Serving bench — 24 requests, 16K-256K prompts, single A100 cost model\n");
  std::printf("(SampleAttention densities measured on substrate: kept %s, overhead %s)\n\n",
              fmt_pct(kept).c_str(), fmt_pct(overhead).c_str());

  CsvWriter csv({"engine", "scheduler", "mean_ttft_s", "max_ttft_s", "mean_queueing_s",
                 "makespan_s"});
  TextTable t({"engine", "scheduler", "mean TTFT", "max TTFT", "mean queueing", "makespan"});
  double fcfs_fa2_mean = 0.0, fcfs_sa_mean = 0.0;
  for (auto [name, engine] : {std::pair<const char*, const Engine*>{"SDPA", &sdpa},
                              {"FlashAttention2", &fa2},
                              {"SampleAttention(0.95)", &sa}}) {
    for (auto [sched, quantum] :
         {std::pair<const char*, Index>{"FCFS", 0}, {"chunked RR (8K)", 8192}}) {
      const ServingSummary s = summarize(simulate_queue(trace, *engine, quantum));
      t.add_row({name, sched, fmt(s.mean_ttft, 1) + "s", fmt(s.max_ttft, 1) + "s",
                 fmt(s.mean_queueing, 1) + "s", fmt(s.makespan, 1) + "s"});
      csv.add_row({name, sched, fmt(s.mean_ttft, 3), fmt(s.max_ttft, 3),
                   fmt(s.mean_queueing, 3), fmt(s.makespan, 3)});
      if (quantum == 0 && engine == &fa2) fcfs_fa2_mean = s.mean_ttft;
      if (quantum == 0 && engine == &sa) fcfs_sa_mean = s.mean_ttft;
    }
  }
  t.print();
  csv.write("sattn_serving.csv");

  std::printf("\nqueueing-amplified mean-TTFT gain (FCFS, SampleAttention vs FA2): %s\n",
              fmt_speedup(fcfs_fa2_mean / std::max(1e-9, fcfs_sa_mean)).c_str());
  std::printf("results also written to sattn_serving.csv\n");
  return 0;
}
