// Serving-queue extension of the paper's TTFT story: what the prefill
// speedup does to a QUEUE of long-context requests (Appendix A.6 raises
// serving integration; this quantifies the end-to-end effect).
//
// A synthetic arrival trace runs through a single-A100 FCFS queue (and a
// chunk-preemptive round-robin variant) under three engines: SDPA,
// FlashAttention2, and SampleAttention(0.95) with substrate-measured
// densities. Queueing amplifies the per-request gain: mean TTFT improves by
// more than the raw prefill speedup once the queue saturates.
//
// The SLO section (docs/ROBUSTNESS.md) replays an overloaded trace through
// simulate_queue_slo: requests carry a TTFT deadline, transient faults are
// injected at --fault-rate, and the SampleAttention engine degrades its
// density budget to keep p99 TTFT inside --slo-ttft-s, shedding what cannot
// make the deadline. Flags: --fault-rate=F --deadline-s=D --slo-ttft-s=T.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include "attention/flash_attention.h"
#include "bench_common.h"
#include "core/rng.h"
#include "io/report.h"
#include "model/workload.h"
#include "obs/metrics.h"
#include "perf/latency_report.h"
#include "runtime/engine.h"
#include "runtime/scheduler.h"

using namespace sattn;

namespace {

double percentile(std::vector<double> v, double p) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const double idx = p * static_cast<double>(v.size() - 1);
  const auto lo = static_cast<std::size_t>(idx);
  const std::size_t hi = std::min(lo + 1, v.size() - 1);
  const double frac = idx - static_cast<double>(lo);
  return v[lo] * (1.0 - frac) + v[hi] * frac;
}

double mean_of(const std::vector<double>& v) {
  if (v.empty()) return 0.0;
  double s = 0.0;
  for (double x : v) s += x;
  return s / static_cast<double>(v.size());
}

// Winsorized percentile: every sample is clamped to 3x the median before
// the percentile is taken. OS scheduling can stretch a single ~30us decode
// step by an order of magnitude; winsorizing bounds that jitter's pull on
// the tail while still moving when the distribution genuinely shifts —
// which is what lets the tpot tail be GATED again (engine.err.tpot_p99w_s)
// instead of report-only.
double winsorized_percentile(std::vector<double> v, double p) {
  if (v.empty()) return 0.0;
  const double cap = 3.0 * percentile(v, 0.5);
  for (double& x : v) x = std::min(x, cap);
  return percentile(std::move(v), p);
}

AttentionInput random_square_input(Index s, Index d, std::uint64_t seed) {
  AttentionInput in;
  Rng rng(seed);
  for (Matrix* m : {&in.q, &in.k, &in.v}) {
    m->resize(s, d);
    for (Index r = 0; r < s; ++r) {
      for (float& x : m->row(r)) x = static_cast<float>(rng.uniform() * 2.0 - 1.0);
    }
  }
  return in;
}

// Measured single-threaded chunked-prefill seconds for a prompt of length
// s — the exact flash_rows chunk pattern the engine's dense route runs,
// without the pool (min of three trials).
double measured_prefill_seconds(Index s, Index d, Index chunk, const FlashConfig& flash) {
  const AttentionInput in = random_square_input(s, d, 0xca11b ^ static_cast<std::uint64_t>(s));
  Matrix out(s, d);
  const mk::KvView kv = mk::KvView::of(in);
  double best = 1e30;
  for (int trial = 0; trial < 3; ++trial) {
    const auto t0 = std::chrono::steady_clock::now();
    for (Index q_lo = 0; q_lo < s; q_lo += chunk) {
      const Index q_hi = std::min(s, q_lo + chunk);
      flash_rows(in.q.row(q_lo).data(), q_hi - q_lo, kv, q_hi, q_lo, out.row(q_lo).data(), d,
                 flash);
    }
    best = std::min(best,
                    std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count());
  }
  return best;
}

// Measured single decode-step seconds against a cache of s keys.
double measured_decode_seconds(Index s, Index d, const FlashConfig& flash) {
  const AttentionInput in = random_square_input(s, d, 0xdec0de ^ static_cast<std::uint64_t>(s));
  std::vector<float> out(static_cast<std::size_t>(d));
  const mk::KvView kv = mk::KvView::of(in);
  constexpr int kReps = 50;
  double best = 1e30;
  for (int trial = 0; trial < 3; ++trial) {
    const auto t0 = std::chrono::steady_clock::now();
    for (int r = 0; r < kReps; ++r) {
      flash_rows(in.q.row(s - 1).data(), 1, kv, s, s - 1, out.data(), d, flash);
    }
    best = std::min(best,
                    std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count());
  }
  return best / kReps;
}

// Predicted-vs-measured serving comparison: the same arrival trace runs
// through simulate_queue_slo with a cost model calibrated from measured
// chunk sweeps, and through the real continuous-batching engine
// (runtime/engine.h). Publishes engine.predicted.* / engine.measured.* /
// engine.err.* gauges (the run report's `engine` view; the err gauges gate
// via tools/bench_diff --engine-error-threshold). With --audit-rate=F > 0 an
// additional sample-mode run arms the online quality auditor and publishes
// the audit.* scorecard gauges (the run report's `quality_audit` view; the
// cra_gap gauges gate via tools/bench_diff --audit-cra-threshold).
int run_engine_mode(const sattn::bench::FlagParser& flags) {
  const Index n_requests = static_cast<Index>(flags.int_flag("--requests", 64));
  const Index d = 64;
  const Index chunk = 256;
  const Index decode_tokens = 8;
  const FlashConfig flash;

  std::printf("Serving engine bench — %lld requests, 256-2048 token prompts, head_dim %lld\n",
              static_cast<long long>(n_requests), static_cast<long long>(d));

  // --- Calibrate a measured cost model: cost(S) = a*S + b*S^2. ---
  const std::vector<Index> cal_sizes = {512, 1024, 2048};
  double sx2 = 0, sx3 = 0, sx4 = 0, sxy = 0, sx2y = 0;
  for (Index s : cal_sizes) {
    const double y = measured_prefill_seconds(s, d, chunk, flash);
    const double x = static_cast<double>(s);
    sx2 += x * x;
    sx3 += x * x * x;
    sx4 += x * x * x * x;
    sxy += x * y;
    sx2y += x * x * y;
    std::printf("  calibration: S=%-5lld prefill %.3f ms\n", static_cast<long long>(s), y * 1e3);
  }
  const double det = sx2 * sx4 - sx3 * sx3;
  const double cal_a = det != 0.0 ? (sxy * sx4 - sx2y * sx3) / det : 0.0;
  const double cal_b = det != 0.0 ? (sx2y * sx2 - sxy * sx3) / det : 0.0;
  const auto prefill_cost = [cal_a, cal_b](Index tokens, double) {
    const double x = static_cast<double>(tokens);
    return std::max(0.0, cal_a * x + cal_b * x * x);
  };
  // Decode: cost(S) = c + e*S from a two-point fit.
  const double dec_lo = measured_decode_seconds(512, d, flash);
  const double dec_hi = measured_decode_seconds(2048, d, flash);
  const double dec_e = (dec_hi - dec_lo) / (2048.0 - 512.0);
  const double dec_c = dec_lo - dec_e * 512.0;
  const auto decode_cost = [dec_c, dec_e](Index tokens) {
    return std::max(0.0, dec_c + dec_e * static_cast<double>(tokens));
  };

  // --- One trace for both paths. ---
  const auto trace_or = synthetic_trace(n_requests, 256, 2048,
                                        /*mean interarrival s=*/0.05, /*seed=*/0x7e1ull);
  if (!trace_or.ok()) {
    std::printf("synthetic_trace failed: %s\n", trace_or.status().to_string().c_str());
    return 1;
  }
  const std::vector<ServingRequest>& trace = trace_or.value();

  // --- Predicted: the SLO simulator on the calibrated cost model. ---
  Engine sim;
  sim.kind = EngineKind::kFlashAttention;
  sim.cost_override = prefill_cost;
  SloOptions sopts;
  sopts.run_label = "sim_engine";
  const auto sim_res = simulate_queue_slo(trace, sim, sopts);
  if (!sim_res.ok()) {
    std::printf("simulate_queue_slo failed: %s\n", sim_res.status().to_string().c_str());
    return 1;
  }
  std::vector<double> pred_ttft, pred_tpot;
  for (const CompletedRequest& c : sim_res.value().completed) {
    pred_ttft.push_back(c.ttft());
    pred_tpot.push_back(decode_cost(c.request.prompt_tokens));
  }

  // --- Measured: the real engine, serial device (max_batch=1) so the
  // simulator's one-request-at-a-time service model applies. ---
  EngineOptions eo;
  eo.mode = EngineMode::kDense;
  eo.head_dim = d;
  eo.chunk_tokens = chunk;
  eo.max_batch = 1;
  eo.decode_tokens = decode_tokens;
  eo.flash = flash;
  eo.run_label = "engine";
  ServingEngine engine(eo);
  const EngineResult res = engine.run_trace(trace);
  std::vector<double> meas_ttft, meas_tpot;
  for (const EngineCompletion& c : res.completed) {
    meas_ttft.push_back(c.base.ttft());
    meas_tpot.push_back(c.tpot_seconds);
  }

  // --- Batched run: same trace, live batch of 8 — the continuous-batching
  // payoff, reported as measured-only gauges. This is the run operators
  // watch live: --telemetry-out=PATH streams NDJSON telemetry from it
  // (tail it with tools/engine_top), --telemetry-prom=PATH adds a
  // Prometheus-style exposition file, --telemetry-interval=S sets the
  // publisher tick (default 50ms).
  EngineOptions eb = eo;
  eb.max_batch = 8;
  eb.run_label = "engine_b8";
  const std::string tele_out = flags.string_flag("--telemetry-out", "");
  const std::string tele_prom = flags.string_flag("--telemetry-prom", "");
  if (!tele_out.empty() || !tele_prom.empty()) {
    eb.telemetry.enabled = true;
    eb.telemetry.ndjson_path = tele_out;
    eb.telemetry.prom_path = tele_prom;
    eb.telemetry.interval_seconds = flags.double_flag("--telemetry-interval", 0.05);
    std::printf("telemetry: streaming to %s%s%s\n", tele_out.c_str(),
                tele_prom.empty() ? "" : " + ", tele_prom.c_str());
  }
  ServingEngine batched(eb);
  const EngineResult bres = batched.run_trace(trace);
  double serial_makespan = 0.0, batched_makespan = 0.0;
  for (const EngineCompletion& c : res.completed)
    serial_makespan = std::max(serial_makespan, c.base.finish_seconds);
  for (const EngineCompletion& c : bres.completed)
    batched_makespan = std::max(batched_makespan, c.base.finish_seconds);
  std::vector<double> bat_ttft;
  for (const EngineCompletion& c : bres.completed) bat_ttft.push_back(c.base.ttft());

  // --- Report. ---
  struct Row {
    const char* metric;
    double predicted;
    double measured;
    // Gated rows emit engine.err.* (bench_diff --engine-error-threshold).
    // The raw tpot_p99 stays report-only — the tail of a ~30us decode step
    // over 64 requests is dominated by OS scheduling jitter, not model
    // fidelity — but its robust versions are gated: p95 ignores the extreme
    // tail, and the winsorized p99 clamps samples to 3x the median first.
    bool gated;
  };
  const std::vector<Row> rows = {
      {"ttft_p50_s", percentile(pred_ttft, 0.50), percentile(meas_ttft, 0.50), true},
      {"ttft_p99_s", percentile(pred_ttft, 0.99), percentile(meas_ttft, 0.99), true},
      {"ttft_mean_s", mean_of(pred_ttft), mean_of(meas_ttft), true},
      {"tpot_p50_s", percentile(pred_tpot, 0.50), percentile(meas_tpot, 0.50), true},
      {"tpot_p95_s", percentile(pred_tpot, 0.95), percentile(meas_tpot, 0.95), true},
      {"tpot_p99w_s", winsorized_percentile(pred_tpot, 0.99), winsorized_percentile(meas_tpot, 0.99),
       true},
      {"tpot_p99_s", percentile(pred_tpot, 0.99), percentile(meas_tpot, 0.99), false},
  };
  TextTable t({"metric", "predicted (simulator)", "measured (engine)", "rel err"});
  for (const Row& r : rows) {
    const double err = std::abs(r.measured - r.predicted) / std::max(r.predicted, 1e-9);
    t.add_row({r.metric, fmt(r.predicted * 1e3, 2) + "ms", fmt(r.measured * 1e3, 2) + "ms",
               fmt(err * 100.0, 1) + "%"});
    SATTN_GAUGE_SET(std::string("engine.predicted.") + r.metric, r.predicted);
    SATTN_GAUGE_SET(std::string("engine.measured.") + r.metric, r.measured);
    if (r.gated) SATTN_GAUGE_SET(std::string("engine.err.") + r.metric, err);
  }
  t.print();
  SATTN_GAUGE_SET("engine.measured.completed", static_cast<double>(res.completed.size()));
  SATTN_GAUGE_SET("engine.measured.shed", static_cast<double>(res.shed.size()));
  SATTN_GAUGE_SET("engine.measured.iterations", static_cast<double>(res.iterations));
  SATTN_GAUGE_SET("engine.measured.batched_ttft_p50_s", percentile(bat_ttft, 0.50));
  SATTN_GAUGE_SET("engine.measured.batched_ttft_p99_s", percentile(bat_ttft, 0.99));
  SATTN_GAUGE_SET("engine.measured.serial_makespan_s", serial_makespan);
  SATTN_GAUGE_SET("engine.measured.batched_makespan_s", batched_makespan);
  SATTN_GAUGE_SET("engine.measured.batched_peak_live", static_cast<double>(bres.peak_live_batch));

  std::printf("\ncompleted %zu/%lld (serial), %zu/%lld (batch=8)\n", res.completed.size(),
              static_cast<long long>(n_requests), bres.completed.size(),
              static_cast<long long>(n_requests));
  std::printf("makespan: serial %.2fs, batch=8 %.2fs (%s from continuous batching)\n",
              serial_makespan, batched_makespan,
              fmt_speedup(serial_makespan / std::max(1e-9, batched_makespan)).c_str());
  std::printf("batched TTFT p50/p99: %.1f/%.1f ms (serial %.1f/%.1f ms)\n",
              percentile(bat_ttft, 0.50) * 1e3, percentile(bat_ttft, 0.99) * 1e3,
              percentile(meas_ttft, 0.50) * 1e3, percentile(meas_ttft, 0.99) * 1e3);

  // --- Audited sample-mode run: --audit-rate=F arms the online quality
  // auditor (obs/audit.h) on a SampleAttention engine over the same trace.
  // The auditor shadow-samples query rows, recomputes ground-truth softmax
  // rows, and scores the deployed masks — the per-head scorecard below is
  // MEASURED CRA vs the planner's predicted CRA, and the published audit.*
  // gauges feed the run report's `quality_audit` view (gated by
  // tools/bench_diff --audit-cra-threshold).
  const double audit_rate = flags.double_flag("--audit-rate", 0.0);
  if (audit_rate > 0.0) {
    EngineOptions ea = eo;
    ea.mode = EngineMode::kSampleAttention;
    ea.max_batch = 8;
    ea.run_label = "engine_audit";
    ea.audit.enabled = true;
    ea.audit.sample_rate = audit_rate;
    std::printf("\naudited sample-mode run — audit rate %.3f\n", audit_rate);
    ServingEngine audited(ea);
    const EngineResult ares = audited.run_trace(trace);
    const obs::QualityAuditor* auditor = audited.auditor();
    if (auditor == nullptr) {
      std::printf("auditor was not armed\n");
      return 1;
    }
    TextTable at({"head", "rows", "measured p5", "measured p50", "measured min", "predicted",
                  "gap (pred-p50)"});
    for (const obs::AuditHeadStats& hs : auditor->head_stats()) {
      at.add_row({"L" + std::to_string(hs.layer) + "H" + std::to_string(hs.head),
                  std::to_string(hs.rows), fmt(hs.cra_p5, 3), fmt(hs.cra_p50, 3),
                  fmt(hs.cra_min, 3), fmt(hs.predicted, 3), fmt(hs.cra_gap, 3)});
    }
    at.print();
    const auto totals = auditor->totals();
    std::printf("audited %llu rows over %llu chunks+steps: measured CRA min %.3f mean %.3f, "
                "overhead %.2f ms (%zu/%lld completed)\n",
                static_cast<unsigned long long>(totals.rows),
                static_cast<unsigned long long>(totals.chunks), totals.cra_min, totals.cra_mean,
                totals.overhead_seconds * 1e3, ares.completed.size(),
                static_cast<long long>(n_requests));
  }
  return 0;
}

// ---------------------------------------------------------------------------
// --prefix: paged-KV prefix-cache replay (docs/SERVING.md, "Paged KV &
// prefix cache"). A multi-turn conversation trace — every request opens
// with one shared system prompt, and each conversation's turns extend a
// growing shared history — runs twice through the live engine:
//
//   1. cold — prefix cache off: every prompt token is prefilled.
//   2. warm — prefix cache on over a fresh page arena: the first request
//      publishes its pages; every later request attaches the shared prefix
//      from the content-hash index and skips those chunks.
//
// Published gauges (the run report's `kv` view): kv.prefix_hit_rate,
// kv.prefix_hit_token_frac, kv.prefix_ttft_reduction (gated by
// tools/bench_diff --prefix-ttft-min), kv.peak_kv_bytes_{cold,warm},
// kv.pages_peak, kv.prefix_entries. A third, sample-mode run with
// kv_sparse_residency measures how many pages the StructuredMask actually
// pins (kv.residency_page_ratio vs the dense full-page count).
int run_prefix_mode(const sattn::bench::FlagParser& flags) {
  const Index n_convs = static_cast<Index>(flags.int_flag("--conversations", 8));
  const Index n_turns = static_cast<Index>(flags.int_flag("--turns", 3));
  const Index sys_tokens = static_cast<Index>(flags.int_flag("--sys-tokens", 2048));
  const Index turn_tokens = 128;  // shared history grows by this much per turn
  const Index tail_tokens = 64;   // request-private suffix (never shareable)

  EngineOptions eo;
  eo.mode = EngineMode::kDense;
  eo.head_dim = 64;
  eo.chunk_tokens = 128;
  eo.max_batch = 1;  // serial: each turn publishes before the next attaches
  eo.decode_tokens = 4;
  eo.run_label.clear();

  // The trace: turn t of conversation c prompts with
  //   [sys | conv/c history through turn t | private tail]
  // Segment content is keyed by (segment key, absolute row), so a turn's
  // history rows are bit-identical to the same rows of the previous turn —
  // exactly the reuse a production prefix cache sees.
  std::vector<ServingRequest> trace;
  for (Index t = 0; t < n_turns; ++t) {
    for (Index c = 0; c < n_convs; ++c) {
      const Index hist = t * turn_tokens;
      ServingRequest r;
      r.id = "c" + std::to_string(c) + "t" + std::to_string(t);
      r.prompt_tokens = sys_tokens + hist + tail_tokens;
      r.arrival_seconds = 0.0;
      r.segments.push_back({"sys", sys_tokens});
      if (hist > 0) r.segments.push_back({"conv/" + std::to_string(c), hist});
      trace.push_back(std::move(r));
    }
  }
  const auto n = static_cast<double>(trace.size());
  std::printf("Prefix-cache bench — %lld conversations x %lld turns, %lld-token shared "
              "system prompt, %lld tokens/turn of shared history\n\n",
              static_cast<long long>(n_convs), static_cast<long long>(n_turns),
              static_cast<long long>(sys_tokens), static_cast<long long>(turn_tokens));

  // --- Cold: prefix cache off. ---
  EngineOptions cold = eo;
  cold.kv_prefix_cache = false;
  EngineResult cres;
  {
    ServingEngine engine(cold);
    cres = engine.run_trace(trace);
  }
  if (cres.completed.size() != trace.size()) {
    std::printf("cold run completed %zu/%zu\n", cres.completed.size(), trace.size());
    return 1;
  }

  // --- Warm: prefix cache on, fresh shared arena. ---
  EngineOptions warm = eo;
  warm.kv_prefix_cache = true;
  warm.kv_arena = std::make_shared<KvPageArena>(eo.head_dim, eo.kv_page_tokens);
  EngineResult wres;
  {
    ServingEngine engine(warm);
    wres = engine.run_trace(trace);
  }
  if (wres.completed.size() != trace.size()) {
    std::printf("warm run completed %zu/%zu\n", wres.completed.size(), trace.size());
    return 1;
  }

  // Per-request cold-vs-warm TTFT, restricted to requests that actually hit
  // the prefix index (everything but the very first request, typically).
  std::map<std::string, double> cold_ttft;
  for (const EngineCompletion& c : cres.completed) cold_ttft[c.base.request.id] = c.base.ttft();
  double hit_requests = 0.0;
  Index prompt_tokens_total = 0;
  double cold_sum = 0.0, warm_sum = 0.0;
  for (const EngineCompletion& c : wres.completed) {
    prompt_tokens_total += c.base.request.prompt_tokens;
    if (c.prefix_hit_tokens <= 0) continue;
    hit_requests += 1.0;
    cold_sum += cold_ttft[c.base.request.id];
    warm_sum += c.base.ttft();
  }
  const double hit_rate = hit_requests / n;
  const double token_frac = static_cast<double>(wres.kv_prefix_hit_tokens) /
                            static_cast<double>(std::max<Index>(1, prompt_tokens_total));
  const double ttft_reduction =
      hit_requests > 0.0 ? 1.0 - warm_sum / std::max(1e-12, cold_sum) : 0.0;

  TextTable t({"metric", "cold", "warm"});
  t.add_row({"completed", std::to_string(cres.completed.size()),
             std::to_string(wres.completed.size())});
  t.add_row({"prefix hits", "0", fmt(static_cast<double>(wres.kv_prefix_hits), 0)});
  t.add_row({"prefix hit tokens", "0", fmt(static_cast<double>(wres.kv_prefix_hit_tokens), 0)});
  t.add_row({"peak KV (KiB)", fmt(cres.peak_kv_bytes / 1024.0, 1),
             fmt(wres.peak_kv_bytes / 1024.0, 1)});
  t.add_row({"pages peak", fmt(static_cast<double>(cres.kv_pages_peak), 0),
             fmt(static_cast<double>(wres.kv_pages_peak), 0)});
  t.add_row({"mean TTFT on hit requests (ms)",
             fmt(1e3 * cold_sum / std::max(1.0, hit_requests), 2),
             fmt(1e3 * warm_sum / std::max(1.0, hit_requests), 2)});
  t.print();
  std::printf("\nprefix hit rate %.2f (%g of %g requests), %.1f%% of prompt tokens served "
              "from shared pages\nwarm-prefix TTFT reduction: %.1f%% (gate: bench_diff "
              "--prefix-ttft-min)\n",
              hit_rate, hit_requests, n, token_frac * 100.0, ttft_reduction * 100.0);

  SATTN_GAUGE_SET("kv.prefix_hit_rate", hit_rate);
  SATTN_GAUGE_SET("kv.prefix_hit_token_frac", token_frac);
  SATTN_GAUGE_SET("kv.prefix_ttft_reduction", ttft_reduction);
  SATTN_GAUGE_SET("kv.prefix_hits", static_cast<double>(wres.kv_prefix_hits));
  SATTN_GAUGE_SET("kv.prefix_hit_tokens", static_cast<double>(wres.kv_prefix_hit_tokens));
  SATTN_GAUGE_SET("kv.peak_kv_bytes_cold", cres.peak_kv_bytes);
  SATTN_GAUGE_SET("kv.peak_kv_bytes_warm", wres.peak_kv_bytes);
  SATTN_GAUGE_SET("kv.pages_peak", static_cast<double>(wres.kv_pages_peak));
  SATTN_GAUGE_SET("kv.prefix_entries",
                  static_cast<double>(warm.kv_arena->prefix_entries()));
  SATTN_GAUGE_SET("kv.prefix_index_bytes",
                  static_cast<double>(warm.kv_arena->prefix_index_bytes()));

  // --- Sparse residency: sample mode drops pages the mask never touches. ---
  // Prefix cache off (published pages would pin the arena) so pages_live
  // tracks the StructuredMask's retained fraction at page granularity.
  EngineOptions sparse = eo;
  sparse.mode = EngineMode::kSampleAttention;
  // One chunk per prompt: the captured plan's stripes/window then span the
  // whole key range, so the residency pass sees the full mask footprint.
  sparse.chunk_tokens = sys_tokens + n_turns * turn_tokens + tail_tokens;
  sparse.kv_prefix_cache = false;
  sparse.kv_sparse_residency = true;
  const auto counter_value = [](const char* name) {
    for (const obs::CounterValue& cv : obs::Collector::global().counters())
      if (cv.name == name) return cv.value;
    return 0.0;
  };
  // The slot-level cross-check reads kv_cache.* counters, which only record
  // while collection is on; enable it for this run (restored after) so the
  // check works without --report-out.
  const bool obs_was_enabled = obs::enabled();
  obs::set_enabled(true);
  const double slots_before = counter_value("kv_cache.evicted_slots");
  EngineResult sres;
  {
    ServingEngine engine(sparse);
    sres = engine.run_trace(trace);
  }
  // Cross-validation against the slot-level acct.* convention: the page
  // ratio must track the mask's retained-slot fraction from above (pages
  // are 64-token quanta, so the page ratio reads slightly higher — a page
  // stays resident if ANY of its slots is a stripe or window member).
  const double slots_evicted = counter_value("kv_cache.evicted_slots") - slots_before;
  if (!obs_was_enabled) obs::set_enabled(false);
  const double slot_ratio =
      1.0 - slots_evicted / static_cast<double>(std::max<Index>(1, prompt_tokens_total));
  const double page_ratio =
      sres.kv_pages_full > 0 ? static_cast<double>(sres.kv_pages_resident) /
                                   static_cast<double>(sres.kv_pages_full)
                             : 1.0;
  std::printf("\nsparse residency (sample mode): %lld of %lld full pages resident after "
              "prefill (page ratio %.2f vs retained-slot ratio %.2f), %lld residency "
              "evictions\n",
              static_cast<long long>(sres.kv_pages_resident),
              static_cast<long long>(sres.kv_pages_full), page_ratio, slot_ratio,
              static_cast<long long>(sres.kv_residency_evictions));
  SATTN_GAUGE_SET("kv.residency_page_ratio", page_ratio);
  SATTN_GAUGE_SET("kv.residency_slot_ratio", slot_ratio);
  SATTN_GAUGE_SET("kv.residency_pages_resident", static_cast<double>(sres.kv_pages_resident));
  SATTN_GAUGE_SET("kv.residency_pages_full", static_cast<double>(sres.kv_pages_full));
  SATTN_GAUGE_SET("kv.residency_evictions", static_cast<double>(sres.kv_residency_evictions));
  return 0;
}

// ---------------------------------------------------------------------------
// --chaos: lifecycle verification on the LIVE engine (docs/ROBUSTNESS.md,
// "Lifecycle, overload & chaos"). Three phases, non-zero exit if any
// lifecycle invariant breaks:
//   1. baseline — the --engine bench trace, unlimited KV, to measure peak
//      KV demand;
//   2. memory pressure — the same trace under a KV budget of 50% of that
//      peak: everyone must still complete (eviction engages before anything
//      sheds) and live KV must stay under budget;
//   3. storm — compressed arrivals (the whole trace at once, far past
//      max_batch capacity), seeded chunk faults, a TTFT deadline storm, and
//      mid-stream cancellation of a quarter of the requests.

bool chaos_ok = true;

void chaos_check(bool ok, const char* what) {
  if (!ok) {
    std::printf("CHAOS INVARIANT VIOLATED: %s\n", what);
    chaos_ok = false;
  }
}

// The lifecycle contract, checked on every phase's result: exactly one
// terminal state per submitted id, and the TTFT attribution identity on
// every completed and cancelled record.
void chaos_check_lifecycle(const EngineResult& res, std::vector<std::string> submitted,
                           const char* phase) {
  std::vector<std::string> terminal;
  for (const auto& [id, state] : res.outcomes()) terminal.push_back(id);
  std::sort(terminal.begin(), terminal.end());
  std::sort(submitted.begin(), submitted.end());
  const bool exact = terminal == submitted;
  std::printf("  [%s] terminal states: %zu completed, %zu shed, %zu cancelled (%zu submitted)\n",
              phase, res.completed.size(), res.shed.size(), res.cancelled.size(),
              submitted.size());
  chaos_check(exact, "every submitted request must reach exactly one terminal state");
  const auto identity = [&](const CompletedRequest& r) {
    const double residual =
        std::abs(r.queue_seconds + r.compute_seconds + r.guard_seconds - r.ttft());
    chaos_check(residual < 1e-9 && r.queue_seconds > -1e-9,
                "queue + compute + guard must equal ttft with a non-negative queue");
  };
  for (const EngineCompletion& c : res.completed) identity(c.base);
  for (const CancelledRequest& c : res.cancelled) identity(c.base);
}

int run_chaos_mode(const sattn::bench::FlagParser& flags) {
  const Index n_requests = static_cast<Index>(flags.int_flag("--requests", 64));
  const double fault_rate = flags.double_flag("--chaos-fault-rate", 0.15);
  const auto trace_or = synthetic_trace(n_requests, 256, 2048,
                                        /*mean interarrival s=*/0.05, /*seed=*/0x7e1ull);
  if (!trace_or.ok()) {
    std::printf("synthetic_trace failed: %s\n", trace_or.status().to_string().c_str());
    return 1;
  }
  const std::vector<ServingRequest>& trace = trace_or.value();
  std::vector<std::string> ids;
  for (const ServingRequest& r : trace) ids.push_back(r.id);

  EngineOptions base;
  base.mode = EngineMode::kDense;
  base.head_dim = 64;
  base.chunk_tokens = 256;
  base.max_batch = 8;
  base.decode_tokens = 8;
  base.run_label.clear();
  std::printf("Chaos bench — %lld requests, 256-2048 token prompts\n\n",
              static_cast<long long>(n_requests));

  // --- Phase 1: baseline, unlimited KV — measure peak demand. ---
  std::printf("phase 1: baseline (unlimited KV)\n");
  EngineResult baseline;
  {
    ServingEngine engine(base);
    baseline = engine.run_trace(trace, /*time_scale=*/0.25);
  }
  chaos_check_lifecycle(baseline, ids, "baseline");
  chaos_check(baseline.completed.size() == static_cast<std::size_t>(n_requests),
              "baseline must complete every request");
  chaos_check(baseline.peak_kv_bytes > 0.0, "baseline must observe peak KV demand");
  std::printf("  peak KV demand: %.1f KiB\n\n", baseline.peak_kv_bytes / 1024.0);

  // --- Phase 2: the same trace under half the peak KV demand. ---
  const double budget = 0.5 * baseline.peak_kv_bytes;
  std::printf("phase 2: KV budget at 50%% of peak (%.1f KiB), sink+recent eviction rung\n",
              budget / 1024.0);
  EngineOptions pressured = base;
  pressured.kv_budget_bytes = budget;
  pressured.kv_eviction = EvictionKind::kSinkRecent;
  pressured.kv_evict_keep = 96;
  pressured.kv_evict_recent = 64;
  EngineResult squeezed;
  {
    ServingEngine engine(pressured);
    squeezed = engine.run_trace(trace, /*time_scale=*/0.25);
  }
  chaos_check_lifecycle(squeezed, ids, "kv_budget");
  chaos_check(squeezed.completed.size() == static_cast<std::size_t>(n_requests),
              "under a 50% KV budget, eviction must engage before anything sheds");
  chaos_check(squeezed.kv_evictions > 0, "the eviction rung must have engaged");
  chaos_check(squeezed.peak_kv_bytes <= budget + 1e-6, "live KV must stay under the budget");
  std::printf("  evictions %lld, pressure waits %lld, peak KV %.1f/%.1f KiB\n\n",
              static_cast<long long>(squeezed.kv_evictions),
              static_cast<long long>(squeezed.kv_pressure_waits),
              squeezed.peak_kv_bytes / 1024.0, budget / 1024.0);

  // --- Phase 3: the storm — burst + faults + deadlines + cancels. ---
  std::printf("phase 3: storm (burst arrivals, fault rate %.2f, 0.2s deadline, 25%% cancels)\n",
              fault_rate);
  EngineOptions storm = base;
  storm.fault = {FaultClass::kTensorNaN, fault_rate, 0xc4a05ull, /*max_fires=*/-1};
  storm.max_retries = 2;
  storm.retry_backoff_seconds = 0.002;
  storm.deadline_seconds = 0.2;
  storm.watchdog_stall_seconds = 0.25;
  EngineResult stormed;
  {
    ServingEngine engine(storm);
    engine.start();
    // A quarter of the ids are cancelled: half of those before their submit
    // (a cancel racing ahead must land), half mid-stream from a sibling
    // thread while the burst is in flight.
    for (std::size_t i = 0; i < ids.size(); i += 8) engine.cancel(ids[i]);
    std::thread canceller([&] {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
      for (std::size_t i = 4; i < ids.size(); i += 8) engine.cancel(ids[i]);
    });
    for (const ServingRequest& r : trace) {
      if (!engine.submit(r).ok()) {
        std::printf("submit failed mid-burst\n");
        return 1;
      }
    }
    canceller.join();
    stormed = engine.finish(/*drain_deadline_seconds=*/30.0);
  }
  chaos_check_lifecycle(stormed, ids, "storm");
  chaos_check(!stormed.cancelled.empty(), "storm cancels must land");
  chaos_check(stormed.retries + static_cast<Index>(stormed.shed.size()) > 0,
              "storm faults must fire");

  // The run report's engine view picks these up (scripts/run_benches.sh).
  SATTN_GAUGE_SET("engine.measured.chaos_baseline_peak_kv_bytes", baseline.peak_kv_bytes);
  SATTN_GAUGE_SET("engine.measured.chaos_kv_budget_bytes", budget);
  SATTN_GAUGE_SET("engine.measured.chaos_squeezed_peak_kv_bytes", squeezed.peak_kv_bytes);
  SATTN_GAUGE_SET("engine.measured.chaos_kv_evictions",
                  static_cast<double>(squeezed.kv_evictions));
  SATTN_GAUGE_SET("engine.measured.chaos_kv_pressure_waits",
                  static_cast<double>(squeezed.kv_pressure_waits));
  SATTN_GAUGE_SET("engine.measured.chaos_storm_completed",
                  static_cast<double>(stormed.completed.size()));
  SATTN_GAUGE_SET("engine.measured.chaos_storm_shed", static_cast<double>(stormed.shed.size()));
  SATTN_GAUGE_SET("engine.measured.chaos_storm_cancelled",
                  static_cast<double>(stormed.cancelled.size()));
  SATTN_GAUGE_SET("engine.measured.chaos_storm_retries", static_cast<double>(stormed.retries));

  std::printf("\n%s\n", chaos_ok ? "all lifecycle invariants held"
                                 : "LIFECYCLE INVARIANT VIOLATIONS — see above");
  return chaos_ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  sattn::bench::TraceSession trace_session(argc, argv);
  // SLO-section knobs; defaults sized to the overload trace below, where
  // full-quality FCFS mean TTFT is ~100s.
  const sattn::bench::FlagParser flags(argc, argv);
  // --engine: measured continuous-batching engine vs simulator prediction
  // on an identical trace (docs/SERVING.md walkthrough).
  if (flags.has_flag("--engine")) return run_engine_mode(flags);
  // --chaos: lifecycle invariants on the live engine under memory pressure
  // and a fault/cancel/deadline storm (non-zero exit on violation).
  if (flags.has_flag("--chaos")) return run_chaos_mode(flags);
  // --prefix: paged-KV prefix-cache replay — warm-vs-cold TTFT on a
  // multi-turn shared-prompt trace, plus the sparse-residency page ratio
  // (gated by tools/bench_diff --prefix-ttft-min).
  if (flags.has_flag("--prefix")) return run_prefix_mode(flags);
  const double fault_rate = flags.double_flag("--fault-rate", 0.05);
  const double deadline_s = flags.double_flag("--deadline-s", 150.0);
  const double slo_ttft_s = flags.double_flag("--slo-ttft-s", 120.0);
  const ModelConfig model = chatglm2_6b();

  // Measure SampleAttention densities on the substrate (as bench_fig5).
  double kept = 0.0, overhead = 0.0;
  {
    int n = 0;
    for (Index layer : {4, 12, 20}) {
      const AttentionInput in = generate_attention(model, plain_prompt(140, 4096), layer, 3);
      const SamplePlan plan = plan_sample_attention(in, SampleAttentionConfig{});
      kept += plan.density;
      overhead += plan.overhead_fraction;
      ++n;
    }
    kept /= n;
    overhead /= n;
  }

  Engine sdpa, fa2, sa;
  sdpa.kind = EngineKind::kSdpa;
  fa2.kind = EngineKind::kFlashAttention;
  sa.kind = EngineKind::kSampleAttention;
  sa.kept_density = kept;
  sa.overhead_density = overhead;

  const auto trace = synthetic_trace(/*count=*/24, /*min=*/16 * 1024, /*max=*/256 * 1024,
                                     /*mean interarrival s=*/8.0)
                         .value();

  std::printf("Serving bench — 24 requests, 16K-256K prompts, single A100 cost model\n");
  std::printf("(SampleAttention densities measured on substrate: kept %s, overhead %s)\n\n",
              fmt_pct(kept).c_str(), fmt_pct(overhead).c_str());

  CsvWriter csv({"engine", "scheduler", "mean_ttft_s", "max_ttft_s", "mean_queueing_s",
                 "makespan_s"});
  TextTable t({"engine", "scheduler", "mean TTFT", "max TTFT", "mean queueing", "makespan"});
  double fcfs_fa2_mean = 0.0, fcfs_sa_mean = 0.0;
  for (auto [name, label, engine] :
       {std::tuple<const char*, const char*, const Engine*>{"SDPA", "sdpa", &sdpa},
        {"FlashAttention2", "fa2", &fa2},
        {"SampleAttention(0.95)", "sa", &sa}}) {
    for (auto [sched, sched_label, quantum] :
         {std::tuple<const char*, const char*, Index>{"FCFS", "fcfs", 0},
          {"chunked RR (8K)", "rr8192", 8192}}) {
      // Per-run label namespaces the request.<label>/<id>.* attribution
      // gauges so the six engine x scheduler runs stay distinguishable in
      // the report's per_request view.
      const std::string run_label = std::string(label) + "_" + sched_label;
      const ServingSummary s = summarize(simulate_queue(trace, *engine, quantum, run_label));
      t.add_row({name, sched, fmt(s.mean_ttft, 1) + "s", fmt(s.max_ttft, 1) + "s",
                 fmt(s.mean_queueing, 1) + "s", fmt(s.makespan, 1) + "s"});
      csv.add_row({name, sched, fmt(s.mean_ttft, 3), fmt(s.max_ttft, 3),
                   fmt(s.mean_queueing, 3), fmt(s.makespan, 3)});
      if (quantum == 0 && engine == &fa2) fcfs_fa2_mean = s.mean_ttft;
      if (quantum == 0 && engine == &sa) fcfs_sa_mean = s.mean_ttft;
    }
  }
  t.print();
  const std::string csv_path = sattn::bench::out_path("sattn_serving.csv");
  csv.write(csv_path);

  std::printf("\nqueueing-amplified mean-TTFT gain (FCFS, SampleAttention vs FA2): %s\n",
              fmt_speedup(fcfs_fa2_mean / std::max(1e-9, fcfs_sa_mean)).c_str());

  // --- SLO-aware degraded serving under overload ---------------------------
  std::printf("\nSLO serving — overload trace, deadline %.0fs, SLO TTFT %.0fs, fault rate %.2f\n\n",
              deadline_s, slo_ttft_s, fault_rate);
  const auto overload = synthetic_trace(/*count=*/32, /*min=*/64 * 1024, /*max=*/256 * 1024,
                                        /*mean interarrival s=*/4.0, /*seed=*/0x51ull)
                            .value();
  SloOptions slo;
  slo.deadline_seconds = deadline_s;
  slo.slo_ttft_seconds = slo_ttft_s;
  slo.fault_rate = fault_rate;
  slo.max_retries = 2;
  slo.retry_backoff_seconds = 2.0;

  TextTable slo_table({"engine", "served", "shed", "degraded", "retried", "p50 TTFT", "p99 TTFT"});
  for (auto [name, label, engine] :
       {std::tuple<const char*, const char*, const Engine*>{"FlashAttention2", "slo_fa2", &fa2},
        {"SampleAttention(0.95)", "slo_sa", &sa}}) {
    slo.run_label = label;
    const auto res = simulate_queue_slo(overload, *engine, slo);
    if (!res.ok()) {
      std::printf("simulate_queue_slo failed: %s\n", res.status().to_string().c_str());
      return 1;
    }
    const ServingSummary s = summarize(res.value().completed);
    slo_table.add_row({name, std::to_string(res.value().completed.size()),
                       std::to_string(res.value().shed.size()),
                       std::to_string(res.value().degraded), std::to_string(res.value().retries),
                       fmt(s.p50_ttft, 1) + "s", fmt(s.p99_ttft, 1) + "s"});
  }
  slo_table.print();
  std::printf(
      "\nOnly SampleAttention can trade density for latency: under overload it degrades\n"
      "(lower alpha / window budget per the cost model) instead of shedding, keeping\n"
      "p99 TTFT inside the SLO with more requests served than the exact engine.\n");
  std::printf("results also written to %s\n", csv_path.c_str());

  // The paged-KV prefix-cache replay runs as part of the default suite so
  // bench_all's merged report (and the committed baseline) always carries
  // the kv.* gauges and the bench_diff --prefix-ttft-min gate stays armed.
  std::printf("\n");
  return run_prefix_mode(flags);
}
