// Reproduces Figure 5: (a) attention-module latency, (b) sampling-overhead
// share, (c) TTFT — SDPA vs FlashAttention2 vs SampleAttention(0.95/0.80).
//
// Two complementary measurements:
//   1. MEASURED CPU wall-clock of this library's kernels (the dense flash
//      kernel vs the planned sparse pipeline) — demonstrating the real
//      algorithmic speedup at the kernel level.
//   2. The analytic A100 cost model driven by densities measured on the
//      substrate, projected over the paper's 8K-96K range (paper headline:
//      2.20x / 5.12x attention speedup at 96K for alpha=0.95 / 0.80, TTFT
//      1.62x / 2.28x).
#include <algorithm>
#include <cstdio>

#include "bench_common.h"
#include "attention/flash_attention.h"
#include "attention/full_attention.h"
#include "attention/sparse_flash_attention.h"
#include "model/workload.h"
#include "perf/cost_model.h"
#include "perf/latency_report.h"
#include "sample_attention/sample_attention.h"

using namespace sattn;

int main(int argc, char** argv) {
  sattn::bench::TraceSession trace_session(argc, argv);
  const ModelConfig model = chatglm2_6b();

  // ---- Part 1: measured CPU kernel wall-clock ----------------------------
  std::printf("Fig 5 (measured, CPU kernels) — per-head attention latency in ms\n");
  {
    TextTable t({"S", "full(SDPA-like)", "flash", "SA(0.95) total", "  plan", "  sparse",
                 "sample share", "speedup vs flash"});
    for (Index s : {1024, 2048, 4096}) {
      const AttentionInput in = generate_attention(model, plain_prompt(50, s), 8, 3);
      Matrix out;

      WallTimer timer;
      full_attention(in, out);
      const double t_full = timer.seconds();

      timer.reset();
      flash_attention(in, out);
      const double t_flash = timer.seconds();

      timer.reset();
      const SamplePlan plan = plan_sample_attention(in, SampleAttentionConfig{});
      const double t_plan = timer.seconds();
      timer.reset();
      sparse_flash_attention(in, plan.mask, out);
      const double t_sparse = timer.seconds();
      const double t_sa = t_plan + t_sparse;

      t.add_row({std::to_string(s), fmt_ms(t_full), fmt_ms(t_flash), fmt_ms(t_sa), fmt_ms(t_plan),
                 fmt_ms(t_sparse), fmt_pct(t_plan / t_sa), fmt_speedup(t_flash / t_sa)});
    }
    t.print();
  }

  // ---- Part 2: A100 cost-model projection over the paper's range ---------
  std::printf("\nFig 5 (projected, single A100) — attention latency (ms), sampling share, TTFT\n");
  std::printf("densities measured on the substrate at 4K and extrapolated (Appendix A.4 law)\n\n");

  // Measure densities for both alphas at 4K.
  const Index s_measured = 4096;
  double kept095 = 0.0, kept080 = 0.0, overhead = 0.0;
  {
    const ContentSpec content = plain_prompt(51, s_measured);
    int n = 0;
    for (Index layer : {4, 12, 20}) {
      const AttentionInput in = generate_attention(model, content, layer, 3);
      SampleAttentionConfig c95, c80;
      c80.alpha = 0.80;
      const SamplePlan p95 = plan_sample_attention(in, c95);
      const SamplePlan p80 = plan_sample_attention(in, c80);
      kept095 += p95.density;
      kept080 += p80.density;
      overhead += p95.overhead_fraction;
      ++n;
    }
    kept095 /= n;
    kept080 /= n;
    overhead /= n;
  }
  const double window_d_measured = window_band_density(s_measured, 0.08);
  const double stripes095 = std::max(0.0, kept095 - window_d_measured);
  const double stripes080 = std::max(0.0, kept080 - window_d_measured);
  std::printf("measured at 4K: kept(0.95)=%s kept(0.80)=%s (window band %s) stage-1 overhead=%s\n\n",
              fmt_pct(kept095).c_str(), fmt_pct(kept080).c_str(),
              fmt_pct(window_d_measured).c_str(), fmt_pct(overhead).c_str());

  const GpuSpec gpu = a100_single();
  TextTable t({"S", "SDPA", "FA2", "SA(0.95)", "vs FA2", "share", "SA(0.80)", "vs FA2",
               "TTFT FA2", "TTFT SA95", "x", "TTFT SA80", "x"});
  for (Index s : {8192, 16384, 32768, 65536, 98304}) {
    const double sdpa = sdpa_seconds(model, s, gpu);
    const double fa2 = flash_attention_seconds(model, s, gpu);
    // Window band stays a fixed fraction of the grid; only stripes shrink.
    const double wd = window_band_density(s, 0.08);
    const double k95 = wd + extrapolate_kept_fraction(stripes095, s_measured, s);
    const double k80 = wd + extrapolate_kept_fraction(stripes080, s_measured, s);
    const SampleAttentionCost sa95 = sample_attention_seconds(model, s, gpu, k95, overhead, wd);
    const SampleAttentionCost sa80 = sample_attention_seconds(model, s, gpu, k80, overhead, wd);
    const double ttft_fa2 = ttft_seconds(model, s, gpu, fa2);
    const double ttft_95 = ttft_seconds(model, s, gpu, sa95.total_seconds);
    const double ttft_80 = ttft_seconds(model, s, gpu, sa80.total_seconds);
    t.add_row({std::to_string(s), fmt_ms(sdpa, 0), fmt_ms(fa2, 0), fmt_ms(sa95.total_seconds, 0),
               fmt_speedup(fa2 / sa95.total_seconds), fmt_pct(sa95.sampling_share),
               fmt_ms(sa80.total_seconds, 0), fmt_speedup(fa2 / sa80.total_seconds),
               fmt_ms(ttft_fa2, 0), fmt_ms(ttft_95, 0), fmt_speedup(ttft_fa2 / ttft_95),
               fmt_ms(ttft_80, 0), fmt_speedup(ttft_fa2 / ttft_80)});
  }
  t.print();
  std::printf("\npaper at 96K: attention 2.20x (a=0.95) / 5.12x (a=0.80); TTFT 1.62x / 2.28x\n");
  return 0;
}
