// Reproduces Table 3: hyperparameter ablation of SampleAttention on the
// ChatGLM2-6B substrate — CRA threshold alpha in {0.80, 0.90, 0.95, 0.98},
// local window ratio r_w in {4%, 8%}, sampling ratio r_row in {2%, 5%, 10%}
// — on LongBench-style, BABILong-style and Needle suites.
//
// Expected shape (paper): alpha=0.95 ~ best and near full attention; lower
// alpha degrades mildly (>= 94.5% of full even at 0.80); halving the window
// ratio costs >6% on LongBench/Needle; r_row=2% loses ~4.5%, r_row >= 5%
// saturates.
#include <cstdio>

#include "bench_common.h"
#include "tasks/babilong.h"
#include "tasks/longbench.h"
#include "tasks/needle.h"

using namespace sattn;

namespace {

SampleAttentionConfig variant(double alpha, double rw, double rrow) {
  SampleAttentionConfig cfg;
  cfg.alpha = alpha;
  cfg.window_ratio = rw;
  cfg.row_ratio = rrow;
  return cfg;
}

}  // namespace

int main(int argc, char** argv) {
  sattn::bench::TraceSession trace_session(argc, argv);
  const ModelConfig model = chatglm2_6b();

  struct Variant {
    std::string label;
    SampleAttentionConfig cfg;
  };
  // Column layout of the paper's Table 3: vary one knob at a time around the
  // default (alpha=0.95, r_w=8%, r_row=5%).
  const std::vector<Variant> variants = {
      {"alpha=0.80", variant(0.80, 0.08, 0.05)}, {"alpha=0.90", variant(0.90, 0.08, 0.05)},
      {"alpha=0.95", variant(0.95, 0.08, 0.05)}, {"alpha=0.98", variant(0.98, 0.08, 0.05)},
      {"r_w=4%", variant(0.95, 0.04, 0.05)},     {"r_w=8%", variant(0.95, 0.08, 0.05)},
      {"r_row=2%", variant(0.95, 0.08, 0.02)},   {"r_row=5%", variant(0.95, 0.08, 0.05)},
      {"r_row=10%", variant(0.95, 0.08, 0.10)},
  };

  std::vector<std::unique_ptr<AttentionMethod>> methods;
  methods.push_back(std::make_unique<FullAttention>());
  for (const Variant& v : variants) methods.push_back(std::make_unique<SampleAttention>(v.cfg));
  const auto ptrs = bench::raw_pointers(methods);

  LongBenchConfig lb_cfg;
  lb_cfg.lengths = {384, 1024};
  lb_cfg.instances_per_family_per_length = 1;
  std::vector<TaskInstance> longbench;
  for (auto& fam : make_longbench_suite(lb_cfg)) {
    for (auto& inst : fam) longbench.push_back(std::move(inst));
  }
  BabiLongConfig bl_cfg;
  bl_cfg.lengths = {384, 1024};
  bl_cfg.instances_per_cell = 1;
  const auto babilong = make_babilong_suite(bl_cfg);
  NeedleConfig n_cfg;
  n_cfg.lengths = {1024};
  n_cfg.depth_intervals = 8;
  const auto needle = make_needle_suite(n_cfg);

  // Local-recall suite: facts just behind the question, carrying NO stripe
  // boost — recoverable only through the local window. This is what the
  // paper's r_w ablation stresses (halving the window ratio costs >6%).
  std::vector<TaskInstance> local_recall;
  for (std::uint64_t k = 0; k < 6; ++k) {
    TaskInstance inst;
    inst.family = "local_recall";
    const Index len = 1024;
    inst.content = plain_prompt(7000 + k, len);
    // Distance ~45-70 tokens: outside a 4% window (41), inside an 8% one (82).
    inst.content.critical_positions = {len - 48 - static_cast<Index>(k) * 6};
    inst.content.critical_span = 4;
    // Weak salience: strong enough for full attention to read it out
    // through the local window, far too weak to surface in the Stage-2
    // stripe selection — so the window ratio is the only retrieval path.
    inst.content.critical_strength = 2.2;
    inst.facts = inst.content.critical_positions;
    inst.mode = ScoreMode::kStrictFacts;
    local_recall.push_back(std::move(inst));
  }

  EvalOptions opts;
  opts.num_heads = 2;

  const auto lb = evaluate_suite_multi(model, ptrs, longbench, opts);
  const auto bl = evaluate_suite_multi(model, ptrs, babilong, opts);
  const auto nd = evaluate_suite_multi(model, ptrs, needle, opts);
  const auto lr = evaluate_suite_multi(model, ptrs, local_recall, opts);

  std::printf("Table 3 — SampleAttention hyperparameter ablation (ChatGLM2-6B substrate)\n\n");
  TextTable t({"Config", "LongBench", "%full", "BABILong", "%full", "Needle", "%full",
               "LocalRecall", "%full"});
  auto pct = [](double v, double full) { return full > 0 ? fmt_pct(v / full) : std::string("-"); };
  t.add_row({"full attention", fmt(lb[0], 3), "100.0%", fmt(bl[0], 3), "100.0%", fmt(nd[0], 3),
             "100.0%", fmt(lr[0], 3), "100.0%"});
  for (std::size_t v = 0; v < variants.size(); ++v) {
    t.add_row({variants[v].label, fmt(lb[v + 1], 3), pct(lb[v + 1], lb[0]), fmt(bl[v + 1], 3),
               pct(bl[v + 1], bl[0]), fmt(nd[v + 1], 3), pct(nd[v + 1], nd[0]), fmt(lr[v + 1], 3),
               pct(lr[v + 1], lr[0])});
  }
  t.print();

  // Cost side of the trade-off: planned density per alpha (lower alpha =>
  // fewer KVs kept => more speedup).
  std::printf("\nkept-density trade-off at S=2048 (layer 8, head 3):\n");
  const AttentionInput in = generate_attention(model, plain_prompt(40, 2048), 8, 3);
  for (double alpha : {0.80, 0.90, 0.95, 0.98}) {
    const SamplePlan plan = plan_sample_attention(in, variant(alpha, 0.08, 0.05));
    std::printf("  alpha=%.2f  kept density %s  |I_KV| ratio %s\n", alpha,
                fmt_pct(plan.density).c_str(), fmt_pct(plan.filter.kv_ratio).c_str());
  }
  return 0;
}
