// Reproduces Figure 4 (and the Appendix Fig 8 details): "Needle in a
// Haystack" scores for every method across sequence lengths and depths.
//
// The paper sweeps 10K-96K with 32 depth intervals; the substrate sweeps
// scaled lengths with 8 depth intervals and prints the per-depth score row
// plus the per-length average for each method. Expected shape: full
// attention and SampleAttention stay at ~1.0 everywhere; StreamingLLM only
// answers at the extremes (sinks / window); BigBird is patchy; the hash
// methods are worst.
#include <cstdio>

#include "bench_common.h"
#include "tasks/needle.h"

using namespace sattn;

int main(int argc, char** argv) {
  sattn::bench::TraceSession trace_session(argc, argv);
  const auto methods = bench::table2_methods();

  NeedleConfig cfg;
  cfg.lengths = {768, 1536, 3072};
  cfg.depth_intervals = 8;
  EvalOptions opts;
  opts.num_heads = 3;  // as in Table 2; 2 heads leave single-cell flukes

  std::printf("Fig 4 — Needle-in-a-Haystack scores per (length, depth)\n");
  std::printf("(depth left=start of context ... right=end; substrate-scaled lengths)\n\n");

  for (const ModelConfig& model : {chatglm2_6b(), internlm2_7b()}) {
    std::printf("=== %s ===\n", model.name.c_str());
    TextTable t({"Method", "Length", "depth 0 -> 1", "avg"});
    std::vector<double> overall(methods.size(), 0.0);
    for (std::size_t m = 0; m < methods.size(); ++m) {
      const auto grid = needle_score_grid(model, *methods[m], cfg, opts);
      for (std::size_t li = 0; li < cfg.lengths.size(); ++li) {
        std::string cells;
        double avg = 0.0;
        for (double v : grid[li]) {
          cells += v >= 0.5 ? "#" : ".";
          avg += v;
        }
        avg /= static_cast<double>(grid[li].size());
        overall[m] += avg / static_cast<double>(cfg.lengths.size());
        t.add_row({methods[m]->name(), std::to_string(cfg.lengths[li]), cells, fmt(avg, 2)});
      }
    }
    t.print();
    std::printf("\noverall averages (paper Table 3 full-attention analogue = 1.00):\n");
    for (std::size_t m = 0; m < methods.size(); ++m) {
      std::printf("  %-24s %s\n", methods[m]->name().c_str(), fmt(overall[m], 3).c_str());
    }
    std::printf("SampleAttention near-lossless vs full: %s\n\n",
                overall[0] > 0 && overall[1] >= 0.99 * overall[0] ? "YES" : "NO");
  }
  return 0;
}
