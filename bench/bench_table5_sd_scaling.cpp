// Reproduces Table 5 (Appendix A.4): average sparsity degree of the
// ChatGLM2-6B substrate on the Needle task as sequence length scales, at
// CRA thresholds 0.90 / 0.95 / 0.98.
//
// Paper: SD grows with length (e.g. SD(0.95): 88.0% at 4K -> 95.8% at 128K;
// each doubling drops the kept fraction by ~20%) and shrinks as alpha
// rises. Lengths here are substrate-scaled.
#include <cstdio>

#include "bench_common.h"
#include "attention/score_utils.h"
#include "metrics/sparsity.h"
#include "perf/latency_report.h"
#include "tasks/needle.h"

using namespace sattn;

int main(int argc, char** argv) {
  sattn::bench::TraceSession trace_session(argc, argv);
  const ModelConfig model = chatglm2_6b();

  std::printf("Table 5 — average SD vs sequence length (Needle task, substrate-scaled)\n\n");
  TextTable t({"Length", "SD(0.90)", "SD(0.95)", "SD(0.98)", "kept(0.95)", "kept ratio vs prev"});
  double prev_kept = -1.0;
  for (Index s : {512, 1024, 2048, 4096, 8192}) {
    const TaskInstance inst = make_needle_instance(s, 0.5, 70);
    const auto rows = stride_rows(s, 48.0 / static_cast<double>(s));
    double sd90 = 0.0, sd95 = 0.0, sd98 = 0.0;
    int n = 0;
    for (Index layer : {4, 10, 16, 22}) {
      for (Index head : {3, 13}) {
        const AttentionInput in = generate_attention(model, inst.content, layer, head);
        sd90 += sd_oracle(in, 0.90, rows).sd;
        sd95 += sd_oracle(in, 0.95, rows).sd;
        sd98 += sd_oracle(in, 0.98, rows).sd;
        ++n;
      }
    }
    sd90 /= n;
    sd95 /= n;
    sd98 /= n;
    const double kept = 1.0 - sd95;
    t.add_row({std::to_string(s), fmt_pct(sd90), fmt_pct(sd95), fmt_pct(sd98), fmt_pct(kept),
               prev_kept > 0 ? fmt(kept / prev_kept, 2) : "-"});
    prev_kept = kept;
  }
  t.print();
  std::printf("\npaper: kept fraction drops ~20%% per doubling (ratio ~0.80); SD(0.90) >= SD(0.95) >= SD(0.98)\n");
  return 0;
}
