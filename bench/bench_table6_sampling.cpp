// Reproduces Table 6 (Appendix A.5): effectiveness of Stage-1 sampling —
// the CRA achieved by selecting different ratios of top-k stripes from the
// FULL column statistic (100% of rows) vs the 5%-sampled statistic, on
// heads of very different sparsity (the paper probes Layer0-Head0,
// Layer13-Head0, Layer13-Head13 at 61K).
//
// Expected shape: the 5%-sampled column ordering achieves nearly the same
// CRA as the exact ordering at every ratio, and sparse heads saturate at
// small ratios while the dense head needs most columns.
//
// Also runs the DESIGN.md ablations: stride vs random vs tail-only row
// sampling, and Algorithm 1's bucketed threshold search vs the exact
// minimal top-k.
#include <cstdio>

#include <algorithm>
#include <cmath>

#include "bench_common.h"
#include "attention/score_utils.h"
#include "core/numerics.h"
#include "metrics/cra.h"
#include "model/workload.h"
#include "perf/latency_report.h"
#include "sample_attention/sample_attention.h"

using namespace sattn;

namespace {

// CRA achieved by the top-`ratio` columns of `colsum`, merged with an 8%
// window, evaluated on probe rows.
double cra_of_topk(const AttentionInput& in, std::span<const float> colsum, double ratio,
                   std::span<const Index> probe_rows) {
  const Index s = in.sk();
  const auto top = topk_indices(colsum, std::max<Index>(1, static_cast<Index>(ratio * s)));
  std::vector<Index> cols(top.begin(), top.end());
  std::sort(cols.begin(), cols.end());
  return cra_columns_window(in, cols, window_width_from_ratio(s, 0.08), probe_rows);
}

}  // namespace

int main(int argc, char** argv) {
  sattn::bench::TraceSession trace_session(argc, argv);
  const ModelConfig model = chatglm2_6b();
  const Index s = 2048;  // substrate-scaled stand-in for the paper's 61K
  const ContentSpec content = plain_prompt(80, s);
  const auto probe_rows = stride_rows(s, 0.05);

  // Dense / standard / retrieval heads, mirroring the paper's three rows.
  struct Probe {
    const char* label;
    Index layer;
    Index head;
  };
  std::vector<Probe> probes;
  for (Index l = 0; l < model.n_layers && probes.size() < 1; ++l)
    for (Index h = 0; h < model.n_heads && probes.size() < 1; ++h)
      if (head_kind(model, l, h) == HeadKind::kDense) probes.push_back({"dense head", l, h});
  probes.push_back({"standard head", 13, 0});
  for (Index h = 0; h < model.n_heads && probes.size() < 3; ++h)
    if (head_kind(model, 13, h) == HeadKind::kRetrieval)
      probes.push_back({"retrieval head", 13, h});

  std::printf("Table 6 — CRA from top-k stripes: exact (100%% rows) vs 5%%-sampled statistic\n");
  std::printf("(S=%lld substrate stand-in for the paper's 61K)\n\n", static_cast<long long>(s));

  TextTable t({"head", "ratio", "100% rows", "5% sample", "gap"});
  for (const Probe& p : probes) {
    const AttentionInput in = generate_attention(model, content, p.layer, p.head);
    const auto exact_rows = all_rows(in.sq());
    const auto exact = column_score_sum(in, exact_rows);
    const SampleStats sampled = sample_column_weights(in, 0.05);
    for (double ratio : {0.025, 0.05, 0.10, 0.20, 0.40, 0.80}) {
      const double c_exact = cra_of_topk(in, exact, ratio, probe_rows);
      const double c_sampled = cra_of_topk(in, sampled.column_weight, ratio, probe_rows);
      char label[64];
      std::snprintf(label, sizeof(label), "%s L%lldH%lld", p.label,
                    static_cast<long long>(p.layer), static_cast<long long>(p.head));
      t.add_row({std::string(label), fmt_pct(ratio, 1), fmt_pct(c_exact), fmt_pct(c_sampled),
                 fmt(std::fabs(c_exact - c_sampled), 4)});
    }
  }
  t.print();

  // --- ablation: sampling policy ------------------------------------------
  std::printf("\nAblation — row-sampling policy (achieved CRA of the resulting plan, L13H0):\n");
  {
    const AttentionInput in = generate_attention(model, content, 13, 0);
    for (auto [label, policy] :
         {std::pair<const char*, SamplingPolicy>{"stride (paper)", SamplingPolicy::kStride},
          {"uniform random", SamplingPolicy::kRandom},
          {"tail-only", SamplingPolicy::kTailOnly}}) {
      SampleAttentionConfig cfg;
      cfg.sampling = policy;
      const SamplePlan plan = plan_sample_attention(in, cfg);
      std::printf("  %-16s kept density %s  achieved CRA %.4f\n", label,
                  fmt_pct(plan.density).c_str(), cra(in, plan.mask, probe_rows));
    }
  }

  // --- ablation: bucketed vs exact Stage-2 --------------------------------
  std::printf("\nAblation — Stage-2 threshold search (L13H0):\n");
  {
    const AttentionInput in = generate_attention(model, content, 13, 0);
    for (auto [label, mode] :
         {std::pair<const char*, FilterMode>{"bucketed (Alg. 1)", FilterMode::kBucketed},
          {"exact minimal", FilterMode::kExact}}) {
      SampleAttentionConfig cfg;
      cfg.filter = mode;
      const SamplePlan plan = plan_sample_attention(in, cfg);
      std::printf("  %-18s |I_KV| ratio %s  kept density %s  achieved CRA %.4f\n", label,
                  fmt_pct(plan.filter.kv_ratio).c_str(), fmt_pct(plan.density).c_str(),
                  cra(in, plan.mask, probe_rows));
    }
  }
  return 0;
}
