// Runs the full paper-reproduction bench suite and merges every binary's
// structured run report into a single BENCH_sattn.json — the per-PR bench
// trajectory file that tools/bench_diff gates against (see
// docs/OBSERVABILITY.md, "Run reports & regression gating").
//
// Each sibling bench binary is invoked as a subprocess with
// --report-out=out/<name>.report.json; its console output goes to
// out/<name>.log. bench_kernels (google-benchmark, by far the slowest) is
// skipped unless --include-kernels is given.
//
// Flags:
//   --report-out=<file>    merged report path (default BENCH_sattn.json)
//   --only=<name>[,...]    run only the named benches
//   --include-kernels      also run bench_kernels
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "io/run_report.h"

namespace fs = std::filesystem;
using namespace sattn;

namespace {

const char* const kBenches[] = {
    "bench_fig1_overview",   "bench_fig2_sparsity",    "bench_table2_accuracy",
    "bench_table3_ablation", "bench_fig4_needle",      "bench_fig5_speedup",
    "bench_fig6_scaling",    "bench_table4_breakdown", "bench_table5_sd_scaling",
    "bench_table6_sampling", "bench_appendix_extensions", "bench_fig9_visualize",
    "bench_serving",         "bench_fig7_babilong",
};

std::vector<std::string> split_csv(const std::string& s) {
  std::vector<std::string> out;
  std::istringstream in(s);
  std::string item;
  while (std::getline(in, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bench::FlagParser flags(argc, argv);
  const std::string merged_path = flags.string_flag("--report-out", "BENCH_sattn.json");
  const std::vector<std::string> only = split_csv(flags.string_flag("--only"));
  const bool include_kernels = flags.has_flag("--include-kernels");

  const fs::path self(argc > 0 ? argv[0] : "bench_all");
  const fs::path bin_dir = self.has_parent_path() ? self.parent_path() : fs::path(".");

  std::vector<std::string> to_run(std::begin(kBenches), std::end(kBenches));
  if (include_kernels) to_run.push_back("bench_kernels");
  if (!only.empty()) to_run = only;

  std::vector<RunReport> reports;
  std::vector<std::string> failed;
  for (const std::string& name : to_run) {
    const fs::path bin = bin_dir / name;
    std::error_code ec;
    if (!fs::exists(bin, ec)) {
      std::fprintf(stderr, "bench_all: %s not found next to bench_all — skipping\n",
                   bin.string().c_str());
      failed.push_back(name);
      continue;
    }
    const std::string report_path = bench::out_path(name + ".report.json");
    const std::string log_path = bench::out_path(name + ".log");
    const std::string cmd = "\"" + bin.string() + "\" --report-out=" + report_path + " > " +
                            log_path + " 2>&1";
    std::printf("bench_all: running %s ...\n", name.c_str());
    std::fflush(stdout);
    const int rc = std::system(cmd.c_str());
    if (rc != 0) {
      std::fprintf(stderr, "bench_all: %s exited with status %d (see %s) — skipping\n",
                   name.c_str(), rc, log_path.c_str());
      failed.push_back(name);
      continue;
    }
    auto report = load_run_report(report_path);
    if (!report.ok()) {
      std::fprintf(stderr, "bench_all: could not load %s: %s\n", report_path.c_str(),
                   report.status().to_string().c_str());
      failed.push_back(name);
      continue;
    }
    reports.push_back(std::move(report).value());
  }

  if (reports.empty()) {
    std::fprintf(stderr, "bench_all: no reports collected — nothing to merge\n");
    return 1;
  }
  auto merged = merge_run_reports(reports);
  if (!merged.ok()) {
    std::fprintf(stderr, "bench_all: merge failed: %s\n", merged.status().to_string().c_str());
    return 1;
  }
  if (!failed.empty()) {
    // Record which benches died in the merged report itself, so a partial
    // BENCH_sattn.json is self-describing (schema v2 meta.failed_benches).
    std::string joined;
    for (const std::string& name : failed) {
      if (!joined.empty()) joined += ',';
      joined += name;
    }
    merged.value().meta["failed_benches"] = joined;
  }
  if (!write_run_report(merged_path, merged.value())) {
    std::fprintf(stderr, "bench_all: could not write %s\n", merged_path.c_str());
    return 1;
  }
  std::printf("bench_all: merged %zu bench report(s) into %s (%zu failure(s))\n",
              reports.size(), merged_path.c_str(), failed.size());
  return failed.empty() ? 0 : 1;
}
