// Shared helpers for the paper-reproduction bench binaries.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "attention/full_attention.h"
#include "baselines/bigbird.h"
#include "baselines/hash_sparse.h"
#include "baselines/hyper_attention.h"
#include "baselines/streaming_llm.h"
#include "perf/latency_report.h"
#include "sample_attention/sample_attention.h"

namespace sattn::bench {

// The method lineup of the paper's Table 2, in table order: full attention
// (gold), SampleAttention(alpha=0.95), BigBird, StreamingLLM,
// HyperAttention, Hash-Sparse. All sparse methods share the paper's
// Section 5.2 settings (8% window ratio, alpha=0.95, r_row=5%).
inline std::vector<std::unique_ptr<AttentionMethod>> table2_methods() {
  std::vector<std::unique_ptr<AttentionMethod>> methods;
  methods.push_back(std::make_unique<FullAttention>());
  methods.push_back(std::make_unique<SampleAttention>());
  methods.push_back(std::make_unique<BigBird>());
  methods.push_back(std::make_unique<StreamingLLM>());
  methods.push_back(std::make_unique<HyperAttention>());
  methods.push_back(std::make_unique<HashSparse>());
  return methods;
}

inline std::vector<const AttentionMethod*> raw_pointers(
    const std::vector<std::unique_ptr<AttentionMethod>>& methods) {
  std::vector<const AttentionMethod*> out;
  out.reserve(methods.size());
  for (const auto& m : methods) out.push_back(m.get());
  return out;
}

}  // namespace sattn::bench
