// Shared helpers for the paper-reproduction bench binaries.
#pragma once

#include <cstdio>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "attention/full_attention.h"
#include "baselines/bigbird.h"
#include "baselines/hash_sparse.h"
#include "baselines/hyper_attention.h"
#include "baselines/streaming_llm.h"
#include "io/trace_export.h"
#include "obs/summary.h"
#include "obs/trace.h"
#include "perf/latency_report.h"
#include "sample_attention/sample_attention.h"

namespace sattn::bench {

// Every bench binary constructs one of these first thing in main(). It
// parses and strips `--trace-out=<file>.json` from argv (so binaries with
// their own flag handling, e.g. google-benchmark, never see it), enables
// span/counter collection when the flag is present or SATTN_TRACE=1, and on
// destruction writes the Chrome trace and prints the hierarchical span
// summary. See docs/OBSERVABILITY.md.
class TraceSession {
 public:
  TraceSession(int& argc, char** argv) {
    int kept = 1;
    for (int a = 1; a < argc; ++a) {
      const std::string_view arg = argv[a];
      if (arg.rfind("--trace-out=", 0) == 0) {
        trace_out_ = std::string(arg.substr(std::string_view("--trace-out=").size()));
      } else {
        argv[kept++] = argv[a];
      }
    }
    argc = kept;
    if (!trace_out_.empty()) {
      if (!obs::set_enabled(true)) {
        std::fprintf(stderr,
                     "warning: --trace-out given but SATTN_TRACE=0 is set; "
                     "the trace will be empty\n");
      }
    }
  }

  ~TraceSession() {
    const obs::Collector& col = obs::Collector::global();
    if (obs::enabled()) {
      const auto spans = col.spans();
      const auto counters = col.counters();
      if (!spans.empty() || !counters.empty()) {
        std::printf("\n--- trace summary ---\n%s",
                    obs::render_summary(spans, counters).c_str());
      }
    }
    if (!trace_out_.empty()) {
      if (write_chrome_trace(trace_out_)) {
        std::printf("chrome trace written to %s (open in chrome://tracing)\n",
                    trace_out_.c_str());
      } else {
        std::fprintf(stderr, "error: could not write trace to %s\n", trace_out_.c_str());
      }
    }
  }

  TraceSession(const TraceSession&) = delete;
  TraceSession& operator=(const TraceSession&) = delete;

  const std::string& trace_out() const { return trace_out_; }

 private:
  std::string trace_out_;
};

// The method lineup of the paper's Table 2, in table order: full attention
// (gold), SampleAttention(alpha=0.95), BigBird, StreamingLLM,
// HyperAttention, Hash-Sparse. All sparse methods share the paper's
// Section 5.2 settings (8% window ratio, alpha=0.95, r_row=5%).
inline std::vector<std::unique_ptr<AttentionMethod>> table2_methods() {
  std::vector<std::unique_ptr<AttentionMethod>> methods;
  methods.push_back(std::make_unique<FullAttention>());
  methods.push_back(std::make_unique<SampleAttention>());
  methods.push_back(std::make_unique<BigBird>());
  methods.push_back(std::make_unique<StreamingLLM>());
  methods.push_back(std::make_unique<HyperAttention>());
  methods.push_back(std::make_unique<HashSparse>());
  return methods;
}

inline std::vector<const AttentionMethod*> raw_pointers(
    const std::vector<std::unique_ptr<AttentionMethod>>& methods) {
  std::vector<const AttentionMethod*> out;
  out.reserve(methods.size());
  for (const auto& m : methods) out.push_back(m.get());
  return out;
}

}  // namespace sattn::bench
