// Shared helpers for the paper-reproduction bench binaries.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "attention/full_attention.h"
#include "baselines/bigbird.h"
#include "baselines/hash_sparse.h"
#include "baselines/hyper_attention.h"
#include "baselines/streaming_llm.h"
#include "io/run_report.h"
#include "io/trace_export.h"
#include "obs/accounting.h"
#include "obs/metrics.h"
#include "obs/summary.h"
#include "obs/trace.h"
#include "perf/latency_report.h"
#include "perf/model_validation.h"
#include "sample_attention/sample_attention.h"

namespace sattn::bench {

// Tiny shared `--name=value` flag parser, so bench binaries stop
// hand-rolling argv scans next to TraceSession's stripping. Construction
// records argc/argv; accessors look a flag up by its full `--name` and
// consume() removes recognized flags from argv (so binaries with their own
// flag handling, e.g. google-benchmark, never see them).
class FlagParser {
 public:
  FlagParser(int& argc, char** argv) : argc_(argc), argv_(argv) {}

  // Value of `--name=...`, or the fallback when absent.
  std::string string_flag(std::string_view name, std::string fallback = "") const {
    const std::string* v = find(name);
    return v != nullptr ? *v : fallback;
  }
  double double_flag(std::string_view name, double fallback) const {
    const std::string* v = find(name);
    return v != nullptr ? std::atof(v->c_str()) : fallback;
  }
  long long int_flag(std::string_view name, long long fallback) const {
    const std::string* v = find(name);
    return v != nullptr ? std::atoll(v->c_str()) : fallback;
  }
  bool has_flag(std::string_view name) const {
    for (int a = 1; a < argc_; ++a) {
      if (std::string_view(argv_[a]) == name || find_in(argv_[a], name) != nullptr) return true;
    }
    return false;
  }

  // Strips every `--name` / `--name=...` occurrence from argv.
  void consume(std::string_view name) {
    int kept = 1;
    for (int a = 1; a < argc_; ++a) {
      const std::string_view arg = argv_[a];
      if (arg == name || find_in(argv_[a], name) != nullptr) continue;
      argv_[kept++] = argv_[a];
    }
    argc_ = kept;
  }

 private:
  // Returns the value part when `arg` is exactly `--name=<value>`.
  static const char* find_in(const char* arg, std::string_view name) {
    const std::string_view a = arg;
    if (a.size() > name.size() + 1 && a.substr(0, name.size()) == name &&
        a[name.size()] == '=') {
      return arg + name.size() + 1;
    }
    return nullptr;
  }
  const std::string* find(std::string_view name) const {
    static thread_local std::string value;
    for (int a = argc_ - 1; a >= 1; --a) {  // last occurrence wins
      const char* v = find_in(argv_[a], name);
      if (v != nullptr) {
        value = v;
        return &value;
      }
    }
    return nullptr;
  }

  int& argc_;
  char** argv_;
};

// Default artifact directory: bench outputs (PGM heatmaps, CSVs, per-bench
// run reports) land under out/ instead of littering the CWD — out/ is
// git-ignored. Returns "out/<filename>", creating the directory on first
// use.
inline std::string out_path(const std::string& filename) {
  std::error_code ec;
  std::filesystem::create_directories("out", ec);  // best-effort
  return "out/" + filename;
}

// Every bench binary constructs one of these first thing in main(). It
// parses and strips `--trace-out=<file>.json` and `--report-out=<file>.json`
// from argv, enables span/counter collection when either flag is present or
// SATTN_TRACE=1, and on destruction prints the hierarchical span summary,
// writes the Chrome trace (--trace-out) and the structured JSON run report
// (--report-out, schema in io/run_report.h). See docs/OBSERVABILITY.md.
class TraceSession {
 public:
  TraceSession(int& argc, char** argv) {
    bench_name_ = argc > 0 ? std::filesystem::path(argv[0]).filename().string() : "bench";
    FlagParser flags(argc, argv);
    trace_out_ = flags.string_flag("--trace-out");
    report_out_ = flags.string_flag("--report-out");
    flags.consume("--trace-out");
    flags.consume("--report-out");
    if (!trace_out_.empty() || !report_out_.empty()) {
      if (!obs::set_enabled(true)) {
        std::fprintf(stderr,
                     "warning: --trace-out/--report-out given but SATTN_TRACE=0 is set; "
                     "the output will be empty\n");
      }
    }
  }

  ~TraceSession() {
    // Fold the resource accountant into `acct.*` gauges and cross-validate
    // it against the analytic cost model (`perf.model_error.*`) before the
    // report snapshot, so every --report-out JSON carries both.
    obs::publish_accounting();
    perf::publish_model_error();
    const obs::Collector& col = obs::Collector::global();
    if (obs::enabled()) {
      const auto spans = col.spans();
      const auto counters = col.counters();
      if (!spans.empty() || !counters.empty()) {
        std::printf("\n--- trace summary ---\n%s",
                    obs::render_summary(spans, counters).c_str());
      }
    }
    if (!trace_out_.empty()) {
      if (write_chrome_trace(trace_out_)) {
        std::printf("chrome trace written to %s (open in chrome://tracing)\n",
                    trace_out_.c_str());
      } else {
        std::fprintf(stderr, "error: could not write trace to %s\n", trace_out_.c_str());
      }
    }
    if (!report_out_.empty()) {
      if (write_run_report(report_out_, collect_run_report(bench_name_))) {
        std::printf("run report written to %s\n", report_out_.c_str());
      } else {
        std::fprintf(stderr, "error: could not write run report to %s\n", report_out_.c_str());
      }
    }
  }

  TraceSession(const TraceSession&) = delete;
  TraceSession& operator=(const TraceSession&) = delete;

  const std::string& trace_out() const { return trace_out_; }
  const std::string& report_out() const { return report_out_; }
  const std::string& bench_name() const { return bench_name_; }

 private:
  std::string bench_name_;
  std::string trace_out_;
  std::string report_out_;
};

// The method lineup of the paper's Table 2, in table order: full attention
// (gold), SampleAttention(alpha=0.95), BigBird, StreamingLLM,
// HyperAttention, Hash-Sparse. All sparse methods share the paper's
// Section 5.2 settings (8% window ratio, alpha=0.95, r_row=5%).
inline std::vector<std::unique_ptr<AttentionMethod>> table2_methods() {
  std::vector<std::unique_ptr<AttentionMethod>> methods;
  methods.push_back(std::make_unique<FullAttention>());
  methods.push_back(std::make_unique<SampleAttention>());
  methods.push_back(std::make_unique<BigBird>());
  methods.push_back(std::make_unique<StreamingLLM>());
  methods.push_back(std::make_unique<HyperAttention>());
  methods.push_back(std::make_unique<HashSparse>());
  return methods;
}

inline std::vector<const AttentionMethod*> raw_pointers(
    const std::vector<std::unique_ptr<AttentionMethod>>& methods) {
  std::vector<const AttentionMethod*> out;
  out.reserve(methods.size());
  for (const auto& m : methods) out.push_back(m.get());
  return out;
}

}  // namespace sattn::bench
