// Reproduces Appendix A.3's attention visualizations (Figures 9-10: sparse
// patterns of randomly chosen heads across layers) as ASCII heatmaps, plus
// Figure 11's frequency statistics of retained KV elements along the Sk
// dimension (Appendix A.4).
//
// Also writes PGM images under out/ (out/sattn_fig9_L<layer>H<head>.pgm)
// for pixel-accurate inspection, and records per-head retained-KV fraction
// and CRA gauges so --report-out captures the quality map.
#include <cstdio>

#include "bench_common.h"
#include "attention/score_utils.h"
#include "core/numerics.h"
#include "io/heatmap.h"
#include "metrics/sparsity.h"
#include "model/workload.h"
#include "sample_attention/sample_attention.h"

using namespace sattn;

int main(int argc, char** argv) {
  sattn::bench::TraceSession trace_session(argc, argv);
  const ModelConfig model = chatglm2_6b();
  const ContentSpec content = plain_prompt(130, 1024);  // stand-in for the paper's 61K

  std::printf("Fig 9/10 — per-head sparse patterns (ASCII, darker = more mass)\n");
  HeatmapOptions opts;
  opts.cells = 40;
  for (auto [layer, head] : {std::pair<Index, Index>{0, 8}, {4, 3}, {12, 5}, {20, 11}}) {
    const AttentionInput in = generate_attention(model, content, layer, head);
    const Matrix hm = downsample_scores(in, opts);
    const auto rows = stride_rows(1024, 0.05);
    const double sd = sd_oracle(in, 0.95, rows).sd;
    std::printf("\nlayer %lld head %lld   SD(0.95) = %.1f%%\n", static_cast<long long>(layer),
                static_cast<long long>(head), 100.0 * sd);
    std::fputs(render_ascii(hm).c_str(), stdout);
    const SamplePlan plan = plan_sample_attention(in, SampleAttentionConfig{});
    obs::record_head_quality(layer, head, plan.density, plan.filter.coverage);
    char name[64];
    std::snprintf(name, sizeof(name), "sattn_fig9_L%lldH%lld.pgm", static_cast<long long>(layer),
                  static_cast<long long>(head));
    write_pgm(hm, sattn::bench::out_path(name));
  }

  // Fig 11: frequency of retained KV columns along Sk for a sparse and a
  // dense head (how often each column survives the per-row top-k filter).
  std::printf("\nFig 11 — retained-KV frequency along Sk (16 buckets, %% of rows retaining)\n");
  for (auto [label, layer, head] :
       {std::tuple<const char*, Index, Index>{"sparse head L12H5", 12, 5},
        {"dense head L0H8", 0, 8}}) {
    const AttentionInput in = generate_attention(model, content, layer, head);
    const auto rows = stride_rows(1024, 0.1);
    std::vector<double> freq(16, 0.0);
    Index n_rows = 0;
    for_each_score_row(in, rows, [&](Index i, std::span<const float> p) {
      const Index lim = causal_limit(i, 1024, 1024);
      // Per-row minimal top-k set reaching alpha=0.95 (the oracle mask row).
      std::vector<float> vals(p.begin(), p.begin() + lim + 1);
      const auto order = argsort_desc(vals);
      double acc = 0.0;
      for (Index r = 0; r <= lim; ++r) {
        const Index j = order[static_cast<std::size_t>(r)];
        acc += vals[static_cast<std::size_t>(j)];
        freq[static_cast<std::size_t>(std::min<Index>(15, j * 16 / 1024))] += 1.0;
        if (acc >= 0.95) break;
      }
      ++n_rows;
    });
    std::printf("  %-18s", label);
    for (double f : freq) std::printf(" %5.1f", f / n_rows);
    std::printf("\n");
  }
  std::printf("(sparse heads concentrate retention near the diagonal + a few stripe buckets;\n"
              " dense heads retain broadly — the paper's Fig 11 contrast)\n");
  return 0;
}
