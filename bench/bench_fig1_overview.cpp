// Reproduces Figure 1's headline: attention dominates TTFT at long context,
// and SampleAttention cuts TTFT with near-lossless accuracy. One compact
// summary combining the cost model (latency side) with a quick needle
// evaluation (accuracy side).
#include <algorithm>
#include <cstdio>

#include "bench_common.h"
#include "attention/full_attention.h"
#include "model/workload.h"
#include "perf/cost_model.h"
#include "perf/latency_report.h"
#include "sample_attention/sample_attention.h"
#include "tasks/needle.h"

using namespace sattn;

int main(int argc, char** argv) {
  sattn::bench::TraceSession trace_session(argc, argv);
  const ModelConfig model = chatglm2_6b();
  const GpuSpec gpu = a100_single();

  // Accuracy side: needle suite, full vs SampleAttention.
  NeedleConfig n_cfg;
  n_cfg.lengths = {1024, 2048};
  n_cfg.depth_intervals = 6;
  EvalOptions opts;
  opts.num_heads = 2;
  const auto needle = make_needle_suite(n_cfg);
  const double acc_full = evaluate_suite(model, FullAttention{}, needle, opts);
  const double acc_sample = evaluate_suite(model, SampleAttention{}, needle, opts);

  // Latency side: measured density at 4K (averaged over layers), projected
  // to 96K and 1M.
  double kept = 0.0, overhead = 0.0;
  {
    int n = 0;
    for (Index layer : {4, 12, 20}) {
      const AttentionInput in = generate_attention(model, plain_prompt(90, 4096), layer, 3);
      const SamplePlan plan = plan_sample_attention(in, SampleAttentionConfig{});
      kept += plan.density;
      overhead += plan.overhead_fraction;
      ++n;
    }
    kept /= n;
    overhead /= n;
  }
  const double stripes = std::max(0.0, kept - window_band_density(4096, 0.08));

  std::printf("Fig 1 — SampleAttention overview (%s substrate)\n\n", model.name.c_str());
  std::printf("accuracy  : needle score %.3f (full) vs %.3f (SampleAttention) -> %s\n", acc_full,
              acc_sample, acc_sample >= 0.99 * acc_full ? "near-lossless" : "LOSSY");
  std::printf("sparsity  : kept density %s at 4K, stage-1 overhead %s\n\n",
              fmt_pct(kept).c_str(), fmt_pct(overhead).c_str());

  TextTable t({"S", "attention share of TTFT", "TTFT speedup vs FA2"});
  for (Index s : {8192, 98304, 1048576}) {
    const double fa2 = flash_attention_seconds(model, s, gpu);
    const double wd = window_band_density(s, 0.08);
    const double k = wd + extrapolate_kept_fraction(stripes, 4096, s);
    const double sa = sample_attention_seconds(model, s, gpu, k, overhead, wd).total_seconds;
    const double ttft_fa2 = ttft_seconds(model, s, gpu, fa2);
    const double ttft_sa = ttft_seconds(model, s, gpu, sa);
    t.add_row({std::to_string(s), fmt_pct(fa2 / ttft_fa2), fmt_speedup(ttft_fa2 / ttft_sa)});
  }
  t.print();
  std::printf("\npaper: TTFT reduced by up to 2.42x vs FlashAttention2 at the longest contexts\n");
  return 0;
}
