// Reproduces Figure 2: the empirical foundation of adaptive sparsity.
//   (a) SD(alpha=0.95) per layer at several prompt lengths
//   (b) SD vs sequence length on the Needle task
//   (c) per-head SD spread at a long sequence
//   (d) content-awareness: top stripe columns of one head under two contents
//   (e) CRA coverage vs ratio of selected top-k stripes
// Lengths are substrate-scaled (paper: up to 90K+).
#include <cstdio>

#include <algorithm>

#include "bench_common.h"
#include "attention/score_utils.h"
#include "core/numerics.h"
#include "metrics/cra.h"
#include "metrics/sparsity.h"
#include "model/workload.h"
#include "perf/latency_report.h"
#include "tasks/needle.h"

using namespace sattn;

namespace {

double layer_sd(const ModelConfig& model, const ContentSpec& content, Index layer,
                std::initializer_list<Index> heads, double alpha, Index probe_rows) {
  double acc = 0.0;
  const auto rows = stride_rows(content.length,
                                static_cast<double>(probe_rows) / static_cast<double>(content.length));
  for (Index head : heads) {
    acc += sd_oracle(generate_attention(model, content, layer, head), alpha, rows).sd;
  }
  return acc / static_cast<double>(heads.size());
}

}  // namespace

int main(int argc, char** argv) {
  sattn::bench::TraceSession trace_session(argc, argv);
  const ModelConfig model = chatglm2_6b();
  const ModelConfig model2 = internlm2_7b();

  // --- (a) SD across layers, two lengths, both models ---------------------
  std::printf("Fig 2(a) — average SD(alpha=0.95) per layer (paper: >90%% except layer 0)\n");
  {
    TextTable t({"Layer", "Model1 S=1K", "Model1 S=4K", "Model2 S=1K", "Model2 S=4K"});
    for (Index layer : {0, 4, 8, 12, 16, 20, 24, 27}) {
      t.add_row({std::to_string(layer),
                 fmt_pct(layer_sd(model, plain_prompt(31, 1024), layer, {1, 9, 17}, 0.95, 48)),
                 fmt_pct(layer_sd(model, plain_prompt(31, 4096), layer, {1, 9, 17}, 0.95, 48)),
                 fmt_pct(layer_sd(model2, plain_prompt(31, 1024), layer, {1, 9, 17}, 0.95, 48)),
                 fmt_pct(layer_sd(model2, plain_prompt(31, 4096), layer, {1, 9, 17}, 0.95, 48))});
    }
    t.print();
  }

  // --- (b) SD vs length on the needle task --------------------------------
  std::printf("\nFig 2(b) — SD(alpha=0.95) grows with sequence length (Needle task)\n");
  {
    TextTable t({"Length", "avg SD(0.95)"});
    for (Index s : {512, 1024, 2048, 4096, 8192}) {
      const TaskInstance inst = make_needle_instance(s, 0.5, 32);
      double acc = 0.0;
      const auto rows = stride_rows(s, 48.0 / static_cast<double>(s));
      int n = 0;
      for (Index layer : {4, 12, 20}) {
        for (Index head : {3, 11}) {
          acc += sd_oracle(generate_attention(model, inst.content, layer, head), 0.95, rows).sd;
          ++n;
        }
      }
      t.add_row({std::to_string(s), fmt_pct(acc / n)});
    }
    t.print();
  }

  // --- (c) per-head SD spread ---------------------------------------------
  std::printf("\nFig 2(c) — head-specific sparsity at S=4K (paper at 90K: 27.4%% .. 99.8%%)\n");
  {
    const ContentSpec content = plain_prompt(33, 4096);
    const auto rows = stride_rows(4096, 48.0 / 4096.0);
    double lo = 1.0, hi = 0.0, mean = 0.0;
    int n = 0;
    for (Index layer : {1, 8, 15, 22}) {
      for (Index head = 0; head < model.n_heads; head += 4) {
        const double sd = sd_oracle(generate_attention(model, content, layer, head), 0.95, rows).sd;
        lo = std::min(lo, sd);
        hi = std::max(hi, sd);
        mean += sd;
        ++n;
      }
    }
    std::printf("  heads probed: %d   min SD = %s   max SD = %s   mean = %s\n", n, fmt_pct(lo).c_str(),
                fmt_pct(hi).c_str(), fmt_pct(mean / n).c_str());
  }

  // --- (d) content-aware stripes ------------------------------------------
  std::printf("\nFig 2(d) — same head, different contents => different stripe columns\n");
  {
    for (std::uint64_t seed : {101ull, 202ull}) {
      const AttentionInput in = generate_attention(model, plain_prompt(seed, 1024), 8, 3);
      const auto colsum = column_score_sum(in, stride_rows(1024, 0.05));
      const auto top = topk_indices(colsum, 8);
      std::printf("  content %llu top stripe columns:", static_cast<unsigned long long>(seed));
      auto sorted = top;
      std::sort(sorted.begin(), sorted.end());
      for (Index c : sorted) std::printf(" %lld", static_cast<long long>(c));
      std::printf("\n");
    }
  }

  // --- (e) top-k stripe ratio vs CRA --------------------------------------
  std::printf("\nFig 2(e) — CRA coverage from top-k column stripes (with 8%% window)\n");
  {
    TextTable t({"top-k ratio", "L4H3", "L12H5", "L20H11"});
    const ContentSpec content = plain_prompt(34, 2048);
    const Index window = window_width_from_ratio(2048, 0.08);
    const auto rows = stride_rows(2048, 0.05);
    for (double ratio : {0.025, 0.05, 0.10, 0.20, 0.40, 0.80}) {
      std::vector<std::string> row = {fmt_pct(ratio, 1)};
      for (auto [layer, head] : {std::pair<Index, Index>{4, 3}, {12, 5}, {20, 11}}) {
        const AttentionInput in = generate_attention(model, content, layer, head);
        const auto colsum = column_score_sum(in, rows);
        const auto top = topk_indices(colsum, static_cast<Index>(ratio * 2048));
        std::vector<Index> cols(top.begin(), top.end());
        std::sort(cols.begin(), cols.end());
        row.push_back(fmt_pct(cra_columns_window(in, cols, window, rows)));
      }
      t.add_row(std::move(row));
    }
    t.print();
  }
  return 0;
}
