// Reproduces Table 4: prefill latency breakdown on the paper's serving
// setup (ChatGLM2-6B, 8x A100, TP=4 x PP=2) — TTFT, full-attention time and
// the attention share of TTFT, 32K to 1M.
//
// Paper row at 1M: TTFT 169.7s, attention 148.8s (87.7%).
#include <cstdio>

#include "perf/cost_model.h"
#include "perf/latency_report.h"

using namespace sattn;

int main() {
  const ModelConfig model = chatglm2_6b();
  const GpuSpec gpu = a100_cluster();

  std::printf("Table 4 — prefill latency breakdown (%s, 8xA100 TP=4 PP=2 cost model)\n\n",
              model.name.c_str());
  TextTable t({"Sequence Length", "TTFT (ms)", "Full Attention (ms)", "Percent (%)"});
  for (Index s : {32768, 65536, 131072, 262144, 524288, 1048576}) {
    const double attn = flash_attention_seconds(model, s, gpu);
    const double ttft = ttft_seconds(model, s, gpu, attn);
    t.add_row({std::to_string(s / 1024) + "K", fmt_ms(ttft, 1), fmt_ms(attn, 1),
               fmt(100.0 * attn / ttft, 1)});
  }
  t.print();
  std::printf(
      "\npaper: 32K 1273/410 (32.2%%) ... 1M 169653/148774 (87.7%%); the model matches the\n"
      "long-sequence regime and the dominance trend (short lengths omit the paper's\n"
      "chunked-prefill fixed costs, so the 32K share lands lower).\n");
  return 0;
}
