// Reproduces Table 4: prefill latency breakdown on the paper's serving
// setup (ChatGLM2-6B, 8x A100, TP=4 x PP=2) — TTFT, full-attention time and
// the attention share of TTFT, 32K to 1M.
//
// Paper row at 1M: TTFT 169.7s, attention 148.8s (87.7%).
//
// Besides the analytic cost model, this bench *measures* the paper's
// Stage-1 / Stage-2 / attention breakdown with real wall-clock time on the
// CPU substrate via the obs tracing layer, so the overhead claim is
// reproducible from observed time rather than only predicted. Run with
// --trace-out=trace.json to also capture the full Chrome trace.
#include <cstdio>

#include "bench_common.h"
#include "model/workload.h"
#include "perf/cost_model.h"
#include "perf/latency_report.h"
#include "sample_attention/sample_attention.h"

using namespace sattn;

namespace {

// Measured wall-clock Stage-1 / Stage-2 / sparse-attention breakdown for
// one substrate length, aggregated over a few heads from obs span totals.
void measured_breakdown_rows(TextTable& t, const ModelConfig& model, Index s) {
  const obs::Collector& col = obs::Collector::global();
  const auto before = col.spans();
  const double b_s1 = obs::total_seconds(before, "sattn/stage1_sampling");
  const double b_s2 = obs::total_seconds(before, "sattn/stage2_filtering");
  const double b_mg = obs::total_seconds(before, "sattn/merge");
  const double b_kn = obs::total_seconds(before, "kernel/sparse_flash");

  const SampleAttention method;
  double pred_overhead = 0.0, pred_density = 0.0;
  const Index heads_to_run = 4;
  for (Index h = 0; h < heads_to_run; ++h) {
    const AttentionInput in =
        generate_attention(model, plain_prompt(7 + h, s), /*layer=*/8, /*head=*/3 + h);
    const AttentionResult res = method.run(in);
    pred_overhead += res.overhead_density;
    pred_density += res.density;
  }
  pred_overhead /= static_cast<double>(heads_to_run);
  pred_density /= static_cast<double>(heads_to_run);

  const auto after = col.spans();
  const double s1 = obs::total_seconds(after, "sattn/stage1_sampling") - b_s1;
  const double s2 = obs::total_seconds(after, "sattn/stage2_filtering") - b_s2 +
                    obs::total_seconds(after, "sattn/merge") - b_mg;
  const double kn = obs::total_seconds(after, "kernel/sparse_flash") - b_kn;
  const double total = s1 + s2 + kn;
  const double measured_share = total > 0.0 ? (s1 + s2) / total : 0.0;
  // The cost model charges planning as overhead_density and attention as
  // density, both in units of full-attention work.
  const double predicted_share = pred_overhead / (pred_overhead + pred_density);

  // Feed the run report's "breakdown" section (io/run_report.h): predicted
  // vs measured Stage-1/Stage-2 overhead at this substrate length.
  const std::string prefix = "breakdown.S" + std::to_string(s) + ".";
  SATTN_GAUGE_SET(prefix + "stage1_us", s1 * 1e6);
  SATTN_GAUGE_SET(prefix + "stage2_us", s2 * 1e6);
  SATTN_GAUGE_SET(prefix + "kernel_us", kn * 1e6);
  SATTN_GAUGE_SET(prefix + "measured_overhead_share", measured_share);
  SATTN_GAUGE_SET(prefix + "predicted_overhead_share", predicted_share);

  t.add_row({std::to_string(s / 1024) + "K", fmt_ms(s1, 2), fmt_ms(s2, 2), fmt_ms(kn, 2),
             fmt_pct(measured_share, 1), fmt_pct(predicted_share, 1)});
}

}  // namespace

int main(int argc, char** argv) {
  sattn::bench::TraceSession trace_session(argc, argv);

  const ModelConfig model = chatglm2_6b();
  const GpuSpec gpu = a100_cluster();

  std::printf("Table 4 — prefill latency breakdown (%s, 8xA100 TP=4 PP=2 cost model)\n\n",
              model.name.c_str());
  TextTable t({"Sequence Length", "TTFT (ms)", "Full Attention (ms)", "Percent (%)"});
  for (Index s : {32768, 65536, 131072, 262144, 524288, 1048576}) {
    const double attn = flash_attention_seconds(model, s, gpu);
    const double ttft = ttft_seconds(model, s, gpu, attn);
    t.add_row({std::to_string(s / 1024) + "K", fmt_ms(ttft, 1), fmt_ms(attn, 1),
               fmt(100.0 * attn / ttft, 1)});
  }
  t.print();
  std::printf(
      "\npaper: 32K 1273/410 (32.2%%) ... 1M 169653/148774 (87.7%%); the model matches the\n"
      "long-sequence regime and the dominance trend (short lengths omit the paper's\n"
      "chunked-prefill fixed costs, so the 32K share lands lower).\n");

  // Measured SampleAttention breakdown (wall-clock, CPU substrate): the
  // paper's claim that Stage-1 + Stage-2 overhead is small relative to the
  // attention it saves, from observed time instead of the analytic model.
  std::printf(
      "\nMeasured Stage-1/Stage-2/attention wall-clock breakdown "
      "(SampleAttention, CPU substrate, 4 heads per length):\n\n");
  const bool was_enabled = obs::enabled();
  if (!obs::set_enabled(true)) {
    std::printf("(tracing hard-disabled via SATTN_TRACE=0 — measured breakdown skipped)\n");
  } else {
    TextTable m({"Sequence Length", "Stage-1 (ms)", "Stage-2 (ms)", "Sparse Attn (ms)",
                 "Measured Overhead Share", "Cost-Model Share"});
    for (Index s : {1024, 2048, 4096}) measured_breakdown_rows(m, model, s);
    m.print();
    std::printf(
        "\nthe measured share is (Stage-1 + Stage-2) / total wall-clock; the cost-model\n"
        "share is overhead_density / (overhead_density + density) from the same plans.\n"
        "Both shrink with length — Table 4 / Fig 5(b)'s overhead story, now measured.\n");
    if (!was_enabled) obs::set_enabled(trace_session.trace_out().empty() ? false : true);
  }
  return 0;
}
