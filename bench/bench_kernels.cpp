// google-benchmark microbenchmarks of the attention kernels and the
// SampleAttention pipeline stages, plus the run-compression kernel ablation
// called out in DESIGN.md (contiguous stripe runs vs scattered columns at
// equal density).
#include <benchmark/benchmark.h>

#include <optional>

#include "bench_common.h"
#include "core/simd.h"
#include "attention/block_sparse.h"
#include "attention/flash_attention.h"
#include "attention/full_attention.h"
#include "attention/sparse_flash_attention.h"
#include "baselines/bigbird.h"
#include "baselines/streaming_llm.h"
#include "model/workload.h"
#include "runtime/batch.h"
#include "sample_attention/sample_attention.h"

namespace sattn {
namespace {

AttentionInput bench_input(Index s) {
  static const ModelConfig model = chatglm2_6b();
  return generate_attention(model, plain_prompt(7, s), 8, 3);
}

void BM_FullAttention(benchmark::State& state) {
  const AttentionInput in = bench_input(state.range(0));
  Matrix out;
  for (auto _ : state) {
    full_attention(in, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * in.sq() * in.sk() / 2);
}
BENCHMARK(BM_FullAttention)->Arg(512)->Arg(1024)->Arg(2048);

void BM_FlashAttention(benchmark::State& state) {
  const AttentionInput in = bench_input(state.range(0));
  Matrix out;
  for (auto _ : state) {
    flash_attention(in, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * in.sq() * in.sk() / 2);
}
BENCHMARK(BM_FlashAttention)->Arg(512)->Arg(1024)->Arg(2048);

void BM_SampleAttentionPlan(benchmark::State& state) {
  const AttentionInput in = bench_input(state.range(0));
  for (auto _ : state) {
    const SamplePlan plan = plan_sample_attention(in, SampleAttentionConfig{});
    benchmark::DoNotOptimize(plan.density);
  }
}
BENCHMARK(BM_SampleAttentionPlan)->Arg(512)->Arg(1024)->Arg(2048);

void BM_SampleAttentionEndToEnd(benchmark::State& state) {
  const AttentionInput in = bench_input(state.range(0));
  Matrix out;
  for (auto _ : state) {
    sample_attention(in, SampleAttentionConfig{}, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * in.sq() * in.sk() / 2);
}
BENCHMARK(BM_SampleAttentionEndToEnd)->Arg(512)->Arg(1024)->Arg(2048);

// Sparse kernel throughput as a function of kept density (window-only
// masks of increasing width). Arg = window per-mille of S.
void BM_SparseKernelDensity(benchmark::State& state) {
  const Index s = 2048;
  const AttentionInput in = bench_input(s);
  StructuredMask mask(s, s);
  mask.set_window(std::max<Index>(1, s * state.range(0) / 1000));
  Matrix out;
  for (auto _ : state) {
    sparse_flash_attention(in, mask, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.counters["density"] = mask.density();
}
BENCHMARK(BM_SparseKernelDensity)->Arg(50)->Arg(125)->Arg(250)->Arg(500)->Arg(1000);

// Ablation: contiguous stripe runs vs scattered single columns at equal
// column count — run compression lets the kernel absorb whole runs with one
// rescale.
void BM_StripesContiguous(benchmark::State& state) {
  const Index s = 2048;
  const AttentionInput in = bench_input(s);
  StructuredMask mask(s, s);
  mask.set_window(4);
  std::vector<Index> cols;
  for (Index c = 256; c < 256 + 256; ++c) cols.push_back(c);  // one 256-run
  mask.set_stripe_columns(cols);
  Matrix out;
  for (auto _ : state) {
    sparse_flash_attention(in, mask, out);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_StripesContiguous);

void BM_StripesScattered(benchmark::State& state) {
  const Index s = 2048;
  const AttentionInput in = bench_input(s);
  StructuredMask mask(s, s);
  mask.set_window(4);
  std::vector<Index> cols;
  for (Index c = 0; c < 256; ++c) cols.push_back(c * 7 % s);  // 256 isolated columns
  mask.set_stripe_columns(cols);
  Matrix out;
  for (auto _ : state) {
    sparse_flash_attention(in, mask, out);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_StripesScattered);

// Row-run kernel vs block-granular kernel on the same SampleAttention plan
// (the hardware-shaped execution ablation).
void BM_SamplePlanRowRunKernel(benchmark::State& state) {
  const AttentionInput in = bench_input(2048);
  const SamplePlan plan = plan_sample_attention(in, SampleAttentionConfig{});
  Matrix out;
  for (auto _ : state) {
    sparse_flash_attention(in, plan.mask, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.counters["density"] = plan.density;
}
BENCHMARK(BM_SamplePlanRowRunKernel);

void BM_SamplePlanBlockKernel(benchmark::State& state) {
  const AttentionInput in = bench_input(2048);
  const SamplePlan plan = plan_sample_attention(in, SampleAttentionConfig{});
  const BlockSparseLayout layout = BlockSparseLayout::from_mask(plan.mask, state.range(0));
  Matrix out;
  for (auto _ : state) {
    block_sparse_attention(in, layout, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.counters["density"] = layout.density();
  state.counters["rounding"] = layout.rounding_overhead(plan.mask);
}
BENCHMARK(BM_SamplePlanBlockKernel)->Arg(16)->Arg(64)->Arg(128);

// ---- scalar-vs-simd comparison mode ----------------------------------------
// Paired benchmarks for the SIMD micro-kernel dispatch (core/simd.h): the
// *Dispatched variant runs whatever the CPU supports, the *Scalar variant
// pins the portable backend via ScopedForceScalar. Run with
//   bench_kernels --benchmark_filter=BM_SimdCompare
// and read the label column for the backend each side actually used (on a
// non-AVX2 host both sides report "scalar" and the pair is a null
// comparison). docs/PERFORMANCE.md records the reference numbers.
template <bool kForceScalar, typename Kernel>
void simd_compare_run(benchmark::State& state, const Kernel& kernel, Index s) {
  const AttentionInput in = bench_input(s);
  std::optional<simd::ScopedForceScalar> guard;
  if (kForceScalar) guard.emplace();
  state.SetLabel(simd::active_level_name());
  Matrix out;
  for (auto _ : state) {
    kernel(in, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * in.sq() * in.sk() / 2);
}

template <bool kForceScalar>
void BM_SimdCompareFlash(benchmark::State& state) {
  simd_compare_run<kForceScalar>(
      state, [](const AttentionInput& in, Matrix& out) { flash_attention(in, out); },
      state.range(0));
}
BENCHMARK_TEMPLATE(BM_SimdCompareFlash, false)->Arg(1024)->Arg(2048);
BENCHMARK_TEMPLATE(BM_SimdCompareFlash, true)->Arg(1024)->Arg(2048);

template <bool kForceScalar>
void BM_SimdCompareFull(benchmark::State& state) {
  simd_compare_run<kForceScalar>(
      state, [](const AttentionInput& in, Matrix& out) { full_attention(in, out); },
      state.range(0));
}
BENCHMARK_TEMPLATE(BM_SimdCompareFull, false)->Arg(1024)->Arg(2048);
BENCHMARK_TEMPLATE(BM_SimdCompareFull, true)->Arg(1024)->Arg(2048);

template <bool kForceScalar>
void BM_SimdCompareSparseFlash(benchmark::State& state) {
  const Index s = state.range(0);
  StructuredMask mask(s, s);
  mask.set_window(std::max<Index>(1, s / 8));
  simd_compare_run<kForceScalar>(
      state,
      [&mask](const AttentionInput& in, Matrix& out) { sparse_flash_attention(in, mask, out); },
      s);
}
BENCHMARK_TEMPLATE(BM_SimdCompareSparseFlash, false)->Arg(2048);
BENCHMARK_TEMPLATE(BM_SimdCompareSparseFlash, true)->Arg(2048);

template <bool kForceScalar>
void BM_SimdCompareSampleEndToEnd(benchmark::State& state) {
  simd_compare_run<kForceScalar>(
      state,
      [](const AttentionInput& in, Matrix& out) {
        sample_attention(in, SampleAttentionConfig{}, out);
      },
      state.range(0));
}
BENCHMARK_TEMPLATE(BM_SimdCompareSampleEndToEnd, false)->Arg(2048);
BENCHMARK_TEMPLATE(BM_SimdCompareSampleEndToEnd, true)->Arg(2048);

// ---------------------------------------------------------------------------
// Ragged-batch sweep vs a per-request kernel loop (docs/PERFORMANCE.md
// "Batched kernels"). Same total work — `batch` sequences of 1K tokens —
// but the per-request loop parallelizes inside one sequence at a time
// (q-tile granularity) while the ragged sweep runs whole sequences
// concurrently, which is how the serving engine amortizes a live batch.

void BM_PerRequestLoopDense(benchmark::State& state) {
  const Index batch = state.range(0);
  std::vector<AttentionInput> ins;
  for (Index i = 0; i < batch; ++i) ins.push_back(bench_input(1024));
  std::vector<Matrix> outs(static_cast<std::size_t>(batch));
  for (auto _ : state) {
    for (Index i = 0; i < batch; ++i)
      flash_attention(ins[static_cast<std::size_t>(i)], outs[static_cast<std::size_t>(i)]);
    benchmark::DoNotOptimize(outs.front().data());
  }
  state.SetItemsProcessed(state.iterations() * batch * 1024 * 1024 / 2);
}
BENCHMARK(BM_PerRequestLoopDense)->Arg(2)->Arg(8);

void BM_RaggedBatchDense(benchmark::State& state) {
  const Index batch = state.range(0);
  std::vector<AttentionInput> ins;
  for (Index i = 0; i < batch; ++i) ins.push_back(bench_input(1024));
  std::vector<Matrix> outs(static_cast<std::size_t>(batch));
  RaggedBatchView view;
  for (Index i = 0; i < batch; ++i) {
    AttentionInput& in = ins[static_cast<std::size_t>(i)];
    Matrix& out = outs[static_cast<std::size_t>(i)];
    out.resize(in.sq(), in.head_dim());
    RaggedSeq seq;
    seq.route = SeqRoute::kDense;
    seq.q = in.q.data();
    seq.rows = in.sq();
    seq.kv = mk::KvView::of(in);
    seq.k_hi = in.sk();
    seq.causal_off = in.sk() - in.sq();
    seq.out = out.data();
    view.seqs.push_back(seq);
  }
  for (auto _ : state) {
    const std::vector<SeqCost> costs = ragged_attention_sweep(view);
    benchmark::DoNotOptimize(costs.data());
  }
  state.SetItemsProcessed(state.iterations() * batch * 1024 * 1024 / 2);
}
BENCHMARK(BM_RaggedBatchDense)->Arg(2)->Arg(8);

// Decode-heavy step: one fresh token against a 4K KV prefix per sequence —
// the regime where per-request dispatch overhead dominates and batching
// pays the most.
void BM_PerRequestLoopDecode(benchmark::State& state) {
  const Index batch = state.range(0), s = 4096;
  const AttentionInput in = bench_input(s);
  const mk::KvView kv = mk::KvView::of(in);
  std::vector<std::vector<float>> outs(static_cast<std::size_t>(batch),
                                       std::vector<float>(static_cast<std::size_t>(in.head_dim())));
  for (auto _ : state) {
    for (Index i = 0; i < batch; ++i)
      flash_rows(in.q.row(0).data(), 1, kv, s, s - 1, outs[static_cast<std::size_t>(i)].data(),
                 in.head_dim());
    benchmark::DoNotOptimize(outs.front().data());
  }
  state.SetItemsProcessed(state.iterations() * batch * s);
}
BENCHMARK(BM_PerRequestLoopDecode)->Arg(8)->Arg(32);

void BM_RaggedBatchDecode(benchmark::State& state) {
  const Index batch = state.range(0), s = 4096;
  const AttentionInput in = bench_input(s);
  std::vector<std::vector<float>> outs(static_cast<std::size_t>(batch),
                                       std::vector<float>(static_cast<std::size_t>(in.head_dim())));
  RaggedBatchView view;
  for (Index i = 0; i < batch; ++i) {
    RaggedSeq seq;
    seq.route = SeqRoute::kDense;
    seq.q = in.q.row(0).data();
    seq.rows = 1;
    seq.kv = mk::KvView::of(in);
    seq.k_hi = s;
    seq.causal_off = s - 1;
    seq.out = outs[static_cast<std::size_t>(i)].data();
    view.seqs.push_back(seq);
  }
  for (auto _ : state) {
    const std::vector<SeqCost> costs = ragged_attention_sweep(view);
    benchmark::DoNotOptimize(costs.data());
  }
  state.SetItemsProcessed(state.iterations() * batch * s);
}
BENCHMARK(BM_RaggedBatchDecode)->Arg(8)->Arg(32);

void BM_BigBird(benchmark::State& state) {
  const AttentionInput in = bench_input(state.range(0));
  const BigBird method;
  for (auto _ : state) {
    const AttentionResult res = method.run(in);
    benchmark::DoNotOptimize(res.density);
  }
}
BENCHMARK(BM_BigBird)->Arg(1024);

void BM_StreamingLLM(benchmark::State& state) {
  const AttentionInput in = bench_input(state.range(0));
  const StreamingLLM method;
  for (auto _ : state) {
    const AttentionResult res = method.run(in);
    benchmark::DoNotOptimize(res.density);
  }
}
BENCHMARK(BM_StreamingLLM)->Arg(1024);

}  // namespace
}  // namespace sattn

int main(int argc, char** argv) {
  // TraceSession strips --trace-out/--report-out before google-benchmark
  // parses flags.
  sattn::bench::TraceSession trace_session(argc, argv);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
