// Reproduces Figure 6: attention latency and TTFT scaling from 8K to 1M on
// a single A100 (cost model driven by substrate-measured densities, scaled
// with the paper's own Appendix A.4 methodology).
//
// Paper headline: at 1M tokens, TTFT reduced 2.27x (alpha=0.95) and 4.62x
// (alpha=0.80) vs FlashAttention2.
#include <algorithm>
#include <cstdio>

#include "bench_common.h"
#include "model/workload.h"
#include "perf/cost_model.h"
#include "perf/latency_report.h"
#include "sample_attention/sample_attention.h"

using namespace sattn;

int main(int argc, char** argv) {
  sattn::bench::TraceSession trace_session(argc, argv);
  const ModelConfig model = chatglm2_6b();
  const GpuSpec gpu = a100_single();

  // Measure densities at 4K on a few layers, as in bench_fig5.
  const Index s_measured = 4096;
  double kept095 = 0.0, kept080 = 0.0, overhead = 0.0;
  {
    const ContentSpec content = plain_prompt(60, s_measured);
    int n = 0;
    for (Index layer : {4, 12, 20}) {
      const AttentionInput in = generate_attention(model, content, layer, 3);
      SampleAttentionConfig c95, c80;
      c80.alpha = 0.80;
      kept095 += plan_sample_attention(in, c95).density;
      kept080 += plan_sample_attention(in, c80).density;
      overhead += plan_sample_attention(in, c95).overhead_fraction;
      ++n;
    }
    kept095 /= n;
    kept080 /= n;
    overhead /= n;
  }

  const double window_d_measured = window_band_density(s_measured, 0.08);
  const double stripes095 = std::max(0.0, kept095 - window_d_measured);
  const double stripes080 = std::max(0.0, kept080 - window_d_measured);

  std::printf("Fig 6 — attention latency (s) and TTFT (s) scaling to 1M, single A100\n\n");
  TextTable t({"S", "attn FA2", "attn SA95", "x", "attn SA80", "x", "TTFT FA2", "TTFT SA95", "x",
               "TTFT SA80", "x"});
  double x_attn95_1m = 0.0, x_attn80_1m = 0.0, x_ttft95_1m = 0.0, x_ttft80_1m = 0.0;
  for (Index s : {8192, 16384, 32768, 65536, 131072, 262144, 524288, 1048576}) {
    const double fa2 = flash_attention_seconds(model, s, gpu);
    const double wd = window_band_density(s, 0.08);
    const double k95 = wd + extrapolate_kept_fraction(stripes095, s_measured, s);
    const double k80 = wd + extrapolate_kept_fraction(stripes080, s_measured, s);
    const double sa95 = sample_attention_seconds(model, s, gpu, k95, overhead, wd).total_seconds;
    const double sa80 = sample_attention_seconds(model, s, gpu, k80, overhead, wd).total_seconds;
    const double ttft_fa2 = ttft_seconds(model, s, gpu, fa2);
    const double ttft_95 = ttft_seconds(model, s, gpu, sa95);
    const double ttft_80 = ttft_seconds(model, s, gpu, sa80);
    t.add_row({std::to_string(s), fmt(fa2, 2), fmt(sa95, 2), fmt_speedup(fa2 / sa95), fmt(sa80, 2),
               fmt_speedup(fa2 / sa80), fmt(ttft_fa2, 2), fmt(ttft_95, 2),
               fmt_speedup(ttft_fa2 / ttft_95), fmt(ttft_80, 2), fmt_speedup(ttft_fa2 / ttft_80)});
    if (s == 1048576) {
      x_attn95_1m = fa2 / sa95;
      x_attn80_1m = fa2 / sa80;
      x_ttft95_1m = ttft_fa2 / ttft_95;
      x_ttft80_1m = ttft_fa2 / ttft_80;
    }
  }
  t.print();
  std::printf("\nat 1M: attention %s / %s, TTFT %s / %s  (paper TTFT: 2.27x / 4.62x)\n",
              fmt_speedup(x_attn95_1m).c_str(), fmt_speedup(x_attn80_1m).c_str(),
              fmt_speedup(x_ttft95_1m).c_str(), fmt_speedup(x_ttft80_1m).c_str());
  return 0;
}
