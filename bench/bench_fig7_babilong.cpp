// Reproduces Figure 7 (Appendix A.2): detailed BABILong results per
// sequence length for both models and all methods. The paper's panels show
// per-length score curves; here each row is a (model, method) series over
// the substrate-scaled lengths, strict all-facts scoring.
#include <cstdio>

#include "bench_common.h"
#include "tasks/babilong.h"

using namespace sattn;

int main(int argc, char** argv) {
  sattn::bench::TraceSession trace_session(argc, argv);
  const auto methods = bench::table2_methods();
  const auto ptrs = bench::raw_pointers(methods);

  const std::vector<Index> lengths = {384, 768, 1536, 3072};
  EvalOptions opts;
  opts.num_heads = 2;

  std::printf("Fig 7 — BABILong scores per sequence length (strict all-facts scoring)\n\n");
  for (const ModelConfig& model : {chatglm2_6b(), internlm2_7b()}) {
    std::printf("=== %s ===\n", model.name.c_str());
    std::vector<std::string> header = {"Method"};
    for (Index s : lengths) header.push_back(std::to_string(s));
    header.push_back("mean");
    TextTable t(header);

    std::vector<std::vector<double>> per_length;  // [length][method]
    for (Index s : lengths) {
      BabiLongConfig cfg;
      cfg.lengths = {s};
      cfg.instances_per_cell = 1;
      const auto suite = make_babilong_suite(cfg);
      per_length.push_back(evaluate_suite_multi(model, ptrs, suite, opts));
    }
    for (std::size_t m = 0; m < methods.size(); ++m) {
      std::vector<std::string> row = {methods[m]->name()};
      double mean = 0.0;
      for (std::size_t li = 0; li < lengths.size(); ++li) {
        row.push_back(fmt(per_length[li][m], 2));
        mean += per_length[li][m];
      }
      row.push_back(fmt(mean / static_cast<double>(lengths.size()), 3));
      t.add_row(std::move(row));
    }
    t.print();
    std::printf("\n");
  }
  std::printf("paper shape: SampleAttention tracks full attention at every length; the\n"
              "static/hash baselines fall off and degrade further as length grows.\n");
  return 0;
}
