// Appendix A.6 extensions, quantified:
//   1. diagonal-pattern detection — accuracy/density effect on heads that
//      carry secondary diagonal structure vs heads that do not;
//   2. chunked prefill — exactness and per-chunk density under serving-style
//      sequence chunking;
//   3. runtime alpha autotuning — controller trajectory on a mixed workload.
#include <cstdio>

#include "bench_common.h"
#include "attention/full_attention.h"
#include "attention/score_utils.h"
#include "metrics/cra.h"
#include "metrics/recovery.h"
#include "model/workload.h"
#include "perf/latency_report.h"
#include "runtime/chunked_prefill.h"
#include "sample_attention/adaptive.h"

using namespace sattn;

int main(int argc, char** argv) {
  sattn::bench::TraceSession trace_session(argc, argv);
  const ModelConfig model = chatglm2_6b();

  // --- 1. diagonal detection ----------------------------------------------
  std::printf("A.6 extension — diagonal-pattern detection (alpha=0.95 plans)\n\n");
  {
    TextTable t({"head", "detect", "density", "CRA", "rel L1 err"});
    const ContentSpec content = plain_prompt(120, 1024);
    const auto rows = stride_rows(1024, 0.05);

    // One synthetic diagonal-heavy head and one ordinary model head.
    HeadProfile diag_prof;
    diag_prof.diag_strength = 4.5;
    diag_prof.diag_offset_frac = 0.3;
    diag_prof.diag_decay_tokens = 30.0;
    const AttentionInput diag_in = generate_head_input(content, diag_prof, model.head_dim, 11);
    const AttentionInput plain_in = generate_attention(model, content, 8, 3);

    for (const auto& [label, in] :
         {std::pair<const char*, const AttentionInput*>{"diagonal-heavy", &diag_in},
          {"ordinary (L8H3)", &plain_in}}) {
      Matrix exact;
      full_attention(*in, exact);
      for (bool detect : {false, true}) {
        SampleAttentionConfig cfg;
        cfg.detect_diagonals = detect;
        Matrix out;
        SamplePlan plan;
        sample_attention(*in, cfg, out, &plan);
        t.add_row({label, detect ? "on" : "off", fmt_pct(plan.density),
                   fmt(cra(*in, plan.mask, rows), 3),
                   fmt(recovery_stats(out, exact).rel_l1, 4)});
      }
    }
    t.print();
  }

  // --- 2. chunked prefill --------------------------------------------------
  std::printf("\nA.6 serving — chunked prefill (S=1024)\n\n");
  {
    const AttentionInput in = generate_attention(model, plain_prompt(121, 1024), 12, 5);
    Matrix exact;
    full_attention(in, exact);
    TextTable t({"chunk size", "chunks", "exact max err", "SampleAttention mean density",
                 "SA rel L1"});
    for (Index chunk : {128, 256, 512, 1024}) {
      const ChunkedPrefillResult dense = chunked_flash_prefill(in, chunk).value();
      const ChunkedPrefillResult sparse = chunked_sample_prefill(in, chunk, {}).value();
      t.add_row({std::to_string(chunk), std::to_string(dense.chunks),
                 fmt(max_abs_diff(dense.out, exact), 6), fmt_pct(sparse.mean_density),
                 fmt(recovery_stats(sparse.out, exact).rel_l1, 4)});
    }
    t.print();
  }

  // --- 3. runtime autotuning ----------------------------------------------
  std::printf("\nA.6 autotuning — alpha trajectory on a mixed workload (target CRA 0.92)\n\n");
  {
    AdaptiveConfig cfg;
    cfg.base.alpha = 0.80;
    cfg.target_cra = 0.92;
    AdaptiveAlphaController ctrl(cfg);
    TextTable t({"request", "length", "alpha before", "est. CRA", "alpha after"});
    Rng rng(2026);
    for (int r = 0; r < 12; ++r) {
      const Index s = 256 + 128 * rng.uniform_index(6);
      const AttentionInput in =
          generate_attention(model, plain_prompt(200 + static_cast<std::uint64_t>(r), s), 8, 3);
      const double before = ctrl.config().alpha;
      const SamplePlan plan = plan_sample_attention(in, ctrl.config());
      ctrl.feedback(plan);
      t.add_row({std::to_string(r), std::to_string(s), fmt(before, 3),
                 fmt(AdaptiveAlphaController::estimated_cra(plan), 3),
                 fmt(ctrl.config().alpha, 3)});
    }
    t.print();
  }
  return 0;
}
