// Reproduces Table 2: accuracy of all sparse methods vs full attention on
// the LongBench-style six families and the BABILong-style suite, for both
// model configurations.
//
// The paper reports absolute benchmark scores (e.g. 837.40 for ChatGLM2
// full attention on LongBench); the substrate reports per-family scores in
// [0, 1] plus each method's percentage of the full-attention score — the
// quantity the paper's near-lossless claim (>= 99%) is stated in.
// Sequence lengths are substrate-scaled (the paper's tasks are 4K-88K).
#include <cstdio>

#include "bench_common.h"
#include "tasks/babilong.h"
#include "tasks/longbench.h"

using namespace sattn;

int main(int argc, char** argv) {
  sattn::bench::TraceSession trace_session(argc, argv);
  const auto methods = bench::table2_methods();
  const auto ptrs = bench::raw_pointers(methods);

  LongBenchConfig lb_cfg;
  lb_cfg.lengths = {384, 768, 1536};
  lb_cfg.instances_per_family_per_length = 2;
  BabiLongConfig bl_cfg;
  bl_cfg.lengths = {384, 768, 1536};
  bl_cfg.instances_per_cell = 1;

  EvalOptions opts;
  opts.num_heads = 3;

  std::printf("Table 2 — accuracy across sparse methods (substrate-scaled)\n");
  std::printf("Paper: SampleAttention >= 99%% of full attention on every total;\n");
  std::printf("BigBird ~91%%, StreamingLLM/HyperAttention/Hash-Sparse degrade sharply.\n\n");

  for (const ModelConfig& model : {chatglm2_6b(), internlm2_7b()}) {
    std::printf("=== %s ===\n", model.name.c_str());

    // Per-family LongBench scores.
    const auto suite = make_longbench_suite(lb_cfg);
    std::vector<std::vector<double>> family_scores;  // [family][method]
    for (const auto& family : suite) {
      family_scores.push_back(evaluate_suite_multi(model, ptrs, family, opts));
    }
    const auto babilong = make_babilong_suite(bl_cfg);
    const std::vector<double> bl_scores = evaluate_suite_multi(model, ptrs, babilong, opts);

    std::vector<std::string> header = {"Method"};
    for (const auto& fam : longbench_families()) header.push_back(fam);
    header.push_back("LB-Total");
    header.push_back("LB-%full");
    header.push_back("BABILong");
    header.push_back("BL-%full");
    TextTable table(header);

    std::vector<double> totals(methods.size(), 0.0);
    for (std::size_t m = 0; m < methods.size(); ++m) {
      for (const auto& fs : family_scores) totals[m] += fs[m];
    }
    for (std::size_t m = 0; m < methods.size(); ++m) {
      std::vector<std::string> row = {methods[m]->name()};
      for (const auto& fs : family_scores) row.push_back(fmt(fs[m], 3));
      row.push_back(fmt(totals[m], 3));
      row.push_back(totals[0] > 0 ? fmt_pct(totals[m] / totals[0]) : "-");
      row.push_back(fmt(bl_scores[m], 3));
      row.push_back(bl_scores[0] > 0 ? fmt_pct(bl_scores[m] / bl_scores[0]) : "-");
      table.add_row(std::move(row));
    }
    table.print();

    const bool near_lossless = totals[0] > 0 && totals[1] >= 0.99 * totals[0] &&
                               bl_scores[0] > 0 && bl_scores[1] >= 0.99 * bl_scores[0];
    std::printf("\nSampleAttention near-lossless (>= 99%% of full on both totals): %s\n\n",
                near_lossless ? "YES" : "NO");
  }
  return 0;
}
