#include "tasks/longbench.h"

#include <algorithm>
#include <cassert>

namespace sattn {
namespace {

TaskInstance base_instance(const std::string& family, Index length, std::uint64_t seed) {
  TaskInstance inst;
  inst.family = family;
  inst.content = plain_prompt(seed, length);
  inst.content.critical_span = std::clamp<Index>(length / 96, 4, 24);
  return inst;
}

TaskInstance single_doc_qa(Index length, std::uint64_t seed, Rng& rng) {
  TaskInstance inst = base_instance("single_doc_qa", length, seed);
  // One fact anywhere in the body of the document.
  const Index pos = 8 + rng.uniform_index(std::max<Index>(1, length - 16));
  inst.content.critical_positions = {pos};
  inst.facts = inst.content.critical_positions;
  inst.mode = ScoreMode::kFractionalFacts;
  return inst;
}

TaskInstance multi_doc_qa(Index length, std::uint64_t seed, Rng& rng) {
  TaskInstance inst = base_instance("multi_doc_qa", length, seed);
  // Three facts, one per "document" third.
  for (Index doc = 0; doc < 3; ++doc) {
    const Index lo = doc * length / 3;
    const Index span = std::max<Index>(1, length / 3 - 8);
    inst.content.critical_positions.push_back(std::min(length - 2, lo + 4 + rng.uniform_index(span)));
  }
  inst.facts = inst.content.critical_positions;
  inst.mode = ScoreMode::kFractionalFacts;
  return inst;
}

TaskInstance summarization(Index length, std::uint64_t seed, Rng& rng) {
  TaskInstance inst = base_instance("summarization", length, seed);
  // Importance is diffuse: many moderately weighted positions, no needles.
  const Index n = std::max<Index>(8, length / 24);
  inst.content.diffuse_positions = rng.sample_without_replacement(length, std::min(n, length));
  inst.content.diffuse_strength = 1.6;
  inst.mode = ScoreMode::kFidelity;
  return inst;
}

TaskInstance few_shot(Index length, std::uint64_t seed, Rng& rng) {
  TaskInstance inst = base_instance("few_shot", length, seed);
  // Four in-context examples at evenly spaced anchors, jittered slightly.
  constexpr Index kShots = 4;
  for (Index t = 0; t < kShots; ++t) {
    const Index anchor = (2 * t + 1) * length / (2 * kShots);
    const Index jitter = rng.uniform_index(std::max<Index>(1, length / 64)) -
                         length / 128;
    inst.content.critical_positions.push_back(std::clamp<Index>(anchor + jitter, 0, length - 2));
  }
  inst.facts = inst.content.critical_positions;
  inst.mode = ScoreMode::kFractionalFacts;
  return inst;
}

TaskInstance synthetic(Index length, std::uint64_t seed, Rng& rng) {
  TaskInstance inst = base_instance("synthetic", length, seed);
  // Strict retrieval of one mid-context token (depth 20%-80%): the stress
  // case that separates content-aware from static sparse methods.
  const Index lo = length / 5;
  const Index hi = 4 * length / 5;
  inst.content.critical_positions = {lo + rng.uniform_index(std::max<Index>(1, hi - lo))};
  inst.facts = inst.content.critical_positions;
  inst.mode = ScoreMode::kStrictFacts;
  return inst;
}

TaskInstance code_completion(Index length, std::uint64_t seed, Rng& rng) {
  TaskInstance inst = base_instance("code_completion", length, seed);
  // The import block at the top (inside the sink region) and a recently
  // defined symbol (inside any reasonable local window).
  const Index import_pos = rng.uniform_index(4);
  const Index recent_span = std::max<Index>(2, length / 32);
  const Index recent_pos = length - 2 - rng.uniform_index(recent_span);
  inst.content.critical_positions = {import_pos, recent_pos};
  inst.facts = inst.content.critical_positions;
  inst.mode = ScoreMode::kFractionalFacts;
  return inst;
}

}  // namespace

std::vector<TaskInstance> make_longbench_family(const std::string& family,
                                                const LongBenchConfig& cfg) {
  std::vector<TaskInstance> out;
  std::uint64_t salt = 0;
  for (char c : family) salt = salt * 131 + static_cast<unsigned char>(c);
  for (std::size_t li = 0; li < cfg.lengths.size(); ++li) {
    for (Index k = 0; k < cfg.instances_per_family_per_length; ++k) {
      const std::uint64_t seed =
          cfg.seed ^ (salt * 0x9e3779b97f4a7c15ull) ^ (static_cast<std::uint64_t>(li) << 32) ^
          static_cast<std::uint64_t>(k);
      Rng rng(seed);
      const Index length = cfg.lengths[li];
      if (family == "single_doc_qa") out.push_back(single_doc_qa(length, seed, rng));
      else if (family == "multi_doc_qa") out.push_back(multi_doc_qa(length, seed, rng));
      else if (family == "summarization") out.push_back(summarization(length, seed, rng));
      else if (family == "few_shot") out.push_back(few_shot(length, seed, rng));
      else if (family == "synthetic") out.push_back(synthetic(length, seed, rng));
      else if (family == "code_completion") out.push_back(code_completion(length, seed, rng));
      else assert(false && "unknown LongBench family");
    }
  }
  return out;
}

std::vector<std::vector<TaskInstance>> make_longbench_suite(const LongBenchConfig& cfg) {
  std::vector<std::vector<TaskInstance>> suite;
  for (const std::string& family : longbench_families()) {
    suite.push_back(make_longbench_family(family, cfg));
  }
  return suite;
}

}  // namespace sattn
