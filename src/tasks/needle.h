// "Needle in a Haystack" stress test (Kamradt 2023; paper Section 5.1).
//
// A single fact is buried at one of `depth_intervals` evenly spaced depths
// inside an otherwise plain prompt; the model must retrieve it from the
// question at the end. The paper uses 32 depth intervals and lengths
// 10K–96K; the builders here are parameterized so tests run at small
// lengths and benches at larger ones.
#pragma once

#include <vector>

#include "tasks/scoring.h"

namespace sattn {

struct NeedleConfig {
  std::vector<Index> lengths = {512, 1024, 2048};
  Index depth_intervals = 32;
  std::uint64_t seed = 0x6e65656cull;
};

// One instance per (length, depth) cell, strict scoring.
std::vector<TaskInstance> make_needle_suite(const NeedleConfig& cfg = {});

// One instance at an explicit (length, depth fraction in [0,1]).
TaskInstance make_needle_instance(Index length, double depth_fraction, std::uint64_t seed);

// Score grid for one method: result[l][d] in {0,1} per (length, depth).
std::vector<std::vector<double>> needle_score_grid(const ModelConfig& model,
                                                   const AttentionMethod& method,
                                                   const NeedleConfig& cfg = {},
                                                   const EvalOptions& opts = {});

}  // namespace sattn
