#include "tasks/babilong.h"

#include <algorithm>

namespace sattn {

std::vector<TaskInstance> make_babilong_suite(const BabiLongConfig& cfg) {
  std::vector<TaskInstance> out;
  for (std::size_t li = 0; li < cfg.lengths.size(); ++li) {
    const Index length = cfg.lengths[li];
    for (Index facts = 1; facts <= cfg.max_facts; ++facts) {
      for (Index k = 0; k < cfg.instances_per_cell; ++k) {
        const std::uint64_t seed = cfg.seed ^ (static_cast<std::uint64_t>(li) << 40) ^
                                   (static_cast<std::uint64_t>(facts) << 20) ^
                                   static_cast<std::uint64_t>(k);
        Rng rng(seed);
        TaskInstance inst;
        inst.family = "babilong-qa" + std::to_string(facts);
        inst.content = plain_prompt(seed, length);
        inst.content.critical_span = std::clamp<Index>(length / 96, 4, 24);
        for (Index f = 0; f < facts; ++f) {
          inst.content.critical_positions.push_back(
              std::min(length - 2, 4 + rng.uniform_index(std::max<Index>(1, length - 8))));
        }
        // Facts must be distinct positions.
        auto& pos = inst.content.critical_positions;
        std::sort(pos.begin(), pos.end());
        pos.erase(std::unique(pos.begin(), pos.end()), pos.end());
        inst.facts = pos;
        inst.mode = ScoreMode::kStrictFacts;
        out.push_back(std::move(inst));
      }
    }
  }
  return out;
}

}  // namespace sattn
