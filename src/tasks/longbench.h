// LongBench-style multi-task suite (Bai et al., 2023; paper Section 5.1).
//
// Six task families mirroring LongBench's categories, each built so its
// difficulty profile under sparse attention matches the mechanism that
// drives the paper's Table 2 spread:
//
//   single_doc_qa    — one buried fact; pure retrieval.
//   multi_doc_qa     — several facts at independent depths; partial credit.
//   summarization    — no facts, diffuse importance; fidelity-scored, so
//                      methods keeping most attention mass score high.
//   few_shot         — facts at evenly spaced "example" positions; static
//                      evenly-spaced globals (BigBird) catch many of them.
//   synthetic        — strict mid-context retrieval; the family that
//                      collapses for window-only and hash methods.
//   code_completion  — one fact among the sink tokens (the import block) and
//                      one recent fact inside the local window, so
//                      sink+window methods stay competitive.
#pragma once

#include <vector>

#include "tasks/scoring.h"

namespace sattn {

struct LongBenchConfig {
  std::vector<Index> lengths = {512, 1024, 2048};  // paper: 4K-35K
  Index instances_per_family_per_length = 2;
  std::uint64_t seed = 0x10b6ull;
};

inline const std::vector<std::string>& longbench_families() {
  static const std::vector<std::string> kFamilies = {
      "single_doc_qa", "multi_doc_qa", "summarization",
      "few_shot",      "synthetic",    "code_completion"};
  return kFamilies;
}

// All instances of one family.
std::vector<TaskInstance> make_longbench_family(const std::string& family,
                                                const LongBenchConfig& cfg = {});

// The full suite, grouped per family (same order as longbench_families()).
std::vector<std::vector<TaskInstance>> make_longbench_suite(const LongBenchConfig& cfg = {});

}  // namespace sattn
