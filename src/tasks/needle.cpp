#include "tasks/needle.h"

#include <algorithm>
#include <cmath>

namespace sattn {

TaskInstance make_needle_instance(Index length, double depth_fraction, std::uint64_t seed) {
  depth_fraction = std::clamp(depth_fraction, 0.0, 1.0);
  TaskInstance inst;
  inst.family = "needle";
  inst.content = plain_prompt(seed, length);
  // The needle is a short sentence, ~1-2% of the context.
  inst.content.critical_span = std::clamp<Index>(length / 96, 4, 32);
  // Keep the whole needle span clear of the question rows at the very end
  // (it must be *retrieved*, not simply read from the diagonal).
  const Index usable = std::max<Index>(1, length - 8 - inst.content.critical_span);
  const auto pos = static_cast<Index>(depth_fraction * static_cast<double>(usable));
  inst.content.critical_positions = {std::max<Index>(0, pos)};
  inst.facts = inst.content.critical_positions;
  inst.mode = ScoreMode::kStrictFacts;
  return inst;
}

std::vector<TaskInstance> make_needle_suite(const NeedleConfig& cfg) {
  std::vector<TaskInstance> out;
  for (std::size_t li = 0; li < cfg.lengths.size(); ++li) {
    for (Index d = 0; d < cfg.depth_intervals; ++d) {
      const double frac = cfg.depth_intervals == 1
                              ? 0.5
                              : static_cast<double>(d) / static_cast<double>(cfg.depth_intervals - 1);
      out.push_back(make_needle_instance(cfg.lengths[li], frac,
                                         cfg.seed + static_cast<std::uint64_t>(li) * 1000003ull +
                                             static_cast<std::uint64_t>(d) * 101ull));
    }
  }
  return out;
}

std::vector<std::vector<double>> needle_score_grid(const ModelConfig& model,
                                                   const AttentionMethod& method,
                                                   const NeedleConfig& cfg,
                                                   const EvalOptions& opts) {
  std::vector<std::vector<double>> grid;
  for (std::size_t li = 0; li < cfg.lengths.size(); ++li) {
    std::vector<double> row;
    for (Index d = 0; d < cfg.depth_intervals; ++d) {
      const double frac = cfg.depth_intervals == 1
                              ? 0.5
                              : static_cast<double>(d) / static_cast<double>(cfg.depth_intervals - 1);
      const TaskInstance inst =
          make_needle_instance(cfg.lengths[li], frac,
                               cfg.seed + static_cast<std::uint64_t>(li) * 1000003ull +
                                   static_cast<std::uint64_t>(d) * 101ull);
      row.push_back(evaluate_instance(model, method, inst, opts));
    }
    grid.push_back(std::move(row));
  }
  return grid;
}

}  // namespace sattn
