#include "tasks/scoring.h"

#include <algorithm>
#include <cmath>

#include "attention/full_attention.h"

namespace sattn {
namespace {

double correlation(std::span<const float> a, std::span<const float> b) {
  assert(a.size() == b.size());
  double num = 0.0;
  for (std::size_t t = 0; t < a.size(); ++t) num += static_cast<double>(a[t]) * b[t];
  return num;
}

double cosine(std::span<const float> a, std::span<const float> b) {
  double num = 0.0, na = 0.0, nb = 0.0;
  for (std::size_t t = 0; t < a.size(); ++t) {
    num += static_cast<double>(a[t]) * b[t];
    na += static_cast<double>(a[t]) * a[t];
    nb += static_cast<double>(b[t]) * b[t];
  }
  const double denom = std::sqrt(na * nb);
  return denom > 0.0 ? num / denom : 0.0;
}

}  // namespace

bool fact_recovered(std::span<const float> out_row, const ContentSpec& content, Index fact_pos,
                    const EvalOptions& opts) {
  const auto d = static_cast<Index>(out_row.size());
  const std::vector<float> sig =
      signature_vector(d, content.seed, static_cast<std::uint64_t>(fact_pos));
  const double true_corr = correlation(out_row, sig);
  if (true_corr < opts.abs_threshold) return false;
  for (Index t = 0; t < opts.num_distractors; ++t) {
    const std::vector<float> distractor =
        signature_vector(d, content.seed, 0xD157000ull + static_cast<std::uint64_t>(t));
    if (correlation(out_row, distractor) >= true_corr) return false;
  }
  return true;
}

double evaluate_instance(const ModelConfig& model, const AttentionMethod& method,
                         const TaskInstance& instance, const EvalOptions& opts) {
  const auto heads = retrieval_heads(model, opts.num_heads);
  assert(!heads.empty());
  const Index s = instance.content.length;
  const Index first_q = std::max<Index>(0, s - opts.question_rows);

  if (instance.mode == ScoreMode::kFidelity) {
    double total = 0.0;
    for (const auto& [layer, head] : heads) {
      const AttentionInput in = generate_attention(model, instance.content, layer, head);
      const AttentionResult res = method.run(in);
      Matrix exact;
      full_attention(in, exact);
      double head_score = 0.0;
      Index n = 0;
      for (Index i = first_q; i < s; ++i, ++n) {
        head_score += std::clamp(cosine(res.out.row(i), exact.row(i)), 0.0, 1.0);
      }
      total += n > 0 ? head_score / static_cast<double>(n) : 0.0;
    }
    return total / static_cast<double>(heads.size());
  }

  // Fact modes: per head, a fact counts as recovered if any question row
  // recovers it AND the head's question-row outputs pass the fidelity gate.
  // Across heads, ONE recovering head suffices: different retrieval heads
  // fetch different facts, and any of them writes the fact into the
  // residual stream (the fidelity gate already suppresses lucky recoveries
  // by methods that corrupt the outputs).
  if (instance.facts.empty()) return 1.0;
  std::vector<Index> votes(instance.facts.size(), 0);
  double fidelity_mean = 0.0;
  for (const auto& [layer, head] : heads) {
    const AttentionInput in = generate_attention(model, instance.content, layer, head);
    const AttentionResult res = method.run(in);
    Matrix exact;
    full_attention(in, exact);
    double fidelity = 0.0;
    Index n = 0;
    for (Index i = first_q; i < s; ++i, ++n) fidelity += cosine(res.out.row(i), exact.row(i));
    if (n > 0) fidelity /= static_cast<double>(n);
    fidelity_mean += std::clamp(fidelity, 0.0, 1.0);
    if (fidelity < opts.fidelity_floor) continue;
    for (std::size_t f = 0; f < instance.facts.size(); ++f) {
      for (Index i = first_q; i < s; ++i) {
        if (fact_recovered(res.out.row(i), instance.content, instance.facts[f], opts)) {
          ++votes[f];
          break;
        }
      }
    }
  }
  fidelity_mean /= static_cast<double>(heads.size());
  Index recovered = 0;
  for (Index v : votes) {
    if (v >= 1) ++recovered;
  }
  if (instance.mode == ScoreMode::kStrictFacts) {
    return recovered == static_cast<Index>(instance.facts.size()) ? 1.0 : 0.0;
  }
  const double frac =
      static_cast<double>(recovered) / static_cast<double>(instance.facts.size());
  // F1-style partial credit for the unrecovered fraction (see EvalOptions).
  return frac + (1.0 - frac) * opts.partial_credit * fidelity_mean;
}

double evaluate_suite(const ModelConfig& model, const AttentionMethod& method,
                      std::span<const TaskInstance> instances, const EvalOptions& opts) {
  if (instances.empty()) return 0.0;
  double total = 0.0;
  for (const TaskInstance& inst : instances) {
    total += evaluate_instance(model, method, inst, opts);
  }
  return total / static_cast<double>(instances.size());
}

std::vector<double> evaluate_suite_multi(const ModelConfig& model,
                                         std::span<const AttentionMethod* const> methods,
                                         std::span<const TaskInstance> instances,
                                         const EvalOptions& opts) {
  std::vector<double> totals(methods.size(), 0.0);
  if (instances.empty()) return totals;
  const auto heads = retrieval_heads(model, opts.num_heads);
  assert(!heads.empty());

  for (const TaskInstance& inst : instances) {
    const Index s = inst.content.length;
    const Index first_q = std::max<Index>(0, s - opts.question_rows);
    // votes[m][f]: heads that recovered fact f under method m.
    std::vector<std::vector<Index>> votes(methods.size(),
                                          std::vector<Index>(inst.facts.size(), 0));
    std::vector<double> fidelity_sum(methods.size(), 0.0);

    for (const auto& [layer, head] : heads) {
      const AttentionInput in = generate_attention(model, inst.content, layer, head);
      Matrix exact;
      full_attention(in, exact);

      for (std::size_t m = 0; m < methods.size(); ++m) {
        const AttentionResult res = methods[m]->run(in);
        double fidelity = 0.0;
        Index n = 0;
        for (Index i = first_q; i < s; ++i, ++n) fidelity += cosine(res.out.row(i), exact.row(i));
        if (n > 0) fidelity /= static_cast<double>(n);
        fidelity_sum[m] += std::clamp(fidelity, 0.0, 1.0);

        if (inst.mode == ScoreMode::kFidelity) continue;
        if (fidelity < opts.fidelity_floor) continue;
        for (std::size_t f = 0; f < inst.facts.size(); ++f) {
          for (Index i = first_q; i < s; ++i) {
            if (fact_recovered(res.out.row(i), inst.content, inst.facts[f], opts)) {
              ++votes[m][f];
              break;
            }
          }
        }
      }
    }

    for (std::size_t m = 0; m < methods.size(); ++m) {
      const double fidelity_mean = fidelity_sum[m] / static_cast<double>(heads.size());
      if (inst.mode == ScoreMode::kFidelity) {
        totals[m] += fidelity_mean;
        continue;
      }
      if (inst.facts.empty()) {
        totals[m] += 1.0;
        continue;
      }
      Index recovered = 0;
      for (Index v : votes[m]) {
        if (v >= 1) ++recovered;  // any passing-fidelity head suffices
      }
      if (inst.mode == ScoreMode::kStrictFacts) {
        totals[m] += recovered == static_cast<Index>(inst.facts.size()) ? 1.0 : 0.0;
      } else {
        const double frac =
            static_cast<double>(recovered) / static_cast<double>(inst.facts.size());
        totals[m] += frac + (1.0 - frac) * opts.partial_credit * fidelity_mean;
      }
    }
  }
  for (double& t : totals) t /= static_cast<double>(instances.size());
  return totals;
}

}  // namespace sattn
