// BABILong-style generative benchmark (Kuratov et al., 2024; paper §5.1).
//
// BABILong embeds bAbI-style reasoning tasks (single / two / three
// supporting facts, counting, etc.) in long filler text. The substrate
// mirrors the property that matters for sparse attention: an instance needs
// ALL of its supporting facts retrieved to be answered, and facts sit at
// independent random depths. Scoring is strict (all-or-nothing), which is
// why weak sparse methods crater on this benchmark in Table 2.
#pragma once

#include <vector>

#include "tasks/scoring.h"

namespace sattn {

struct BabiLongConfig {
  std::vector<Index> lengths = {512, 1024, 2048};  // paper: 4K-88K
  // Instances per (length, fact-count); fact counts are 1..3, mirroring
  // qa1 (single supporting fact) through qa3 (three supporting facts).
  Index instances_per_cell = 2;
  Index max_facts = 3;
  std::uint64_t seed = 0xbab1ull;
};

std::vector<TaskInstance> make_babilong_suite(const BabiLongConfig& cfg = {});

}  // namespace sattn
