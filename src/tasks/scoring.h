// Deterministic answer-recovery scoring — the stand-in for the paper's
// GPT-4 / exact-match judging of generative outputs (DESIGN.md §1).
//
// Every task instance plants "facts" at known positions: the generator makes
// those columns attention stripes (scaled by each head's retrieval affinity)
// and writes a per-fact signature vector into V at the same position. If an
// attention method's mask retains the fact column, the question rows' output
// contains the signature and it wins a nearest-signature test against
// distractors; if the mask drops the column, the signature is absent and
// recovery fails. This makes task accuracy exactly the quantity the paper's
// evaluation probes: does the sparse mask keep the content-critical KVs?
#pragma once

#include <span>
#include <vector>

#include "attention/attention_method.h"
#include "model/synthetic_model.h"
#include "model/workload.h"

namespace sattn {

enum class ScoreMode {
  kFractionalFacts,  // fraction of facts recovered (QA-style partial credit)
  kStrictFacts,      // 1.0 iff every fact is recovered (BABILong / Needle)
  kFidelity          // mean cosine similarity to the full-attention output
};

struct TaskInstance {
  std::string family;
  ContentSpec content;
  std::vector<Index> facts;  // positions that must be recoverable
  ScoreMode mode = ScoreMode::kFractionalFacts;
};

struct EvalOptions {
  Index num_heads = 3;        // retrieval heads consulted for answers
  Index question_rows = 2;    // trailing query rows read as "the answer"
  Index num_distractors = 8;  // competing signatures in the match test
  double abs_threshold = 0.05;  // minimum signature correlation to count
  // LongBench-style QA metrics (F1 / ROUGE) award token-overlap credit even
  // when the key fact is missed; kFractionalFacts instances therefore earn
  // partial_credit * fidelity for the unrecovered fraction. Strict modes
  // (BABILong / Needle exact-match) stay all-or-nothing.
  double partial_credit = 0.45;
  // A head only contributes recoveries if its question-row outputs stay
  // close to the full-attention outputs (mean cosine >= this floor). This
  // stands in for multi-layer compounding: in a real model, a method that
  // corrupts every layer's attention output garbles the residual stream, and
  // no amount of luck at one head lets the model decode an answer from it.
  double fidelity_floor = 0.62;
};

// Does this output row contain fact `fact_pos`'s signature? (nearest-
// signature test against distractors + absolute threshold).
bool fact_recovered(std::span<const float> out_row, const ContentSpec& content, Index fact_pos,
                    const EvalOptions& opts);

// Score of one method on one instance, in [0, 1]. Facts are recovered per
// head and combined by majority vote across heads.
double evaluate_instance(const ModelConfig& model, const AttentionMethod& method,
                         const TaskInstance& instance, const EvalOptions& opts = {});

// Mean score over a set of instances.
double evaluate_suite(const ModelConfig& model, const AttentionMethod& method,
                      std::span<const TaskInstance> instances, const EvalOptions& opts = {});

// Batch evaluation of many methods over a suite: generates each (instance,
// head) input and its full-attention reference ONCE and reuses them across
// methods — the benches' workhorse. Returns one mean score per method, in
// input order.
std::vector<double> evaluate_suite_multi(const ModelConfig& model,
                                         std::span<const AttentionMethod* const> methods,
                                         std::span<const TaskInstance> instances,
                                         const EvalOptions& opts = {});

}  // namespace sattn
