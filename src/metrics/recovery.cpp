#include "metrics/recovery.h"

#include <algorithm>
#include <cmath>

namespace sattn {

RecoveryStats recovery_stats(const Matrix& approx, const Matrix& exact) {
  assert(approx.rows() == exact.rows() && approx.cols() == exact.cols());
  RecoveryStats s;
  double total = 0.0, denom = 0.0;
  for (Index i = 0; i < exact.rows(); ++i) {
    double row_l1 = 0.0;
    auto a = approx.row(i), e = exact.row(i);
    for (std::size_t t = 0; t < e.size(); ++t) {
      const double diff = std::fabs(static_cast<double>(a[t]) - e[t]);
      row_l1 += diff;
      s.max_abs_err = std::max(s.max_abs_err, diff);
      denom += std::fabs(static_cast<double>(e[t]));
    }
    total += row_l1;
    s.max_row_l1 = std::max(s.max_row_l1, row_l1);
  }
  const double n = static_cast<double>(exact.size());
  s.mean_abs_err = n > 0 ? total / n : 0.0;
  s.rel_l1 = denom > 0 ? total / denom : 0.0;
  return s;
}

double value_l1_bound(const Matrix& v) {
  double r = 0.0;
  for (Index j = 0; j < v.rows(); ++j) {
    double l1 = 0.0;
    for (float x : v.row(j)) l1 += std::fabs(x);
    r = std::max(r, l1);
  }
  return r;
}

bool near_lossless(double score, double baseline_score, double ratio) {
  if (baseline_score <= 0.0) return score >= baseline_score;
  return score >= ratio * baseline_score;
}

}  // namespace sattn
