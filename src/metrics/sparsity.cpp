#include "metrics/sparsity.h"

#include <algorithm>
#include <vector>

#include "attention/attention_method.h"
#include "attention/score_utils.h"

namespace sattn {

Index row_min_kept(std::span<const float> p_row, Index causal_len, double alpha) {
  assert(causal_len >= 0 && static_cast<std::size_t>(causal_len) <= p_row.size());
  if (causal_len == 0) return 0;
  std::vector<float> sorted(p_row.begin(), p_row.begin() + causal_len);
  std::sort(sorted.begin(), sorted.end(), std::greater<>());
  double acc = 0.0;
  for (Index k = 0; k < causal_len; ++k) {
    acc += sorted[static_cast<std::size_t>(k)];
    if (acc >= alpha) return k + 1;
  }
  return causal_len;
}

SparsityStats sd_oracle(const AttentionInput& in, double alpha, std::span<const Index> rows) {
  const Index sq = in.sq(), sk = in.sk();
  double kept = 0.0, total = 0.0;
  Index measured = 0;
  for_each_score_row(in, rows, [&](Index i, std::span<const float> p) {
    const Index len = causal_limit(i, sq, sk) + 1;
    kept += static_cast<double>(row_min_kept(p, len, alpha));
    total += static_cast<double>(len);
    ++measured;
  });
  SparsityStats s;
  s.rows_measured = measured;
  if (total > 0.0) {
    s.kept_fraction = kept / total;
    s.sd = 1.0 - s.kept_fraction;
  }
  return s;
}

}  // namespace sattn
