#include "metrics/cra.h"

#include <algorithm>
#include <limits>

#include "attention/score_utils.h"

namespace sattn {
namespace {

bool runs_contain(const std::vector<ColumnRun>& runs, Index j) {
  for (const ColumnRun& r : runs) {
    if (j < r.lo) return false;
    if (j < r.hi) return true;
  }
  return false;
}

}  // namespace

double row_retained_mass(std::span<const float> p_row, const StructuredMask& mask, Index i) {
  double kept = 0.0;
  const Index lim = causal_limit(i, mask.sq(), mask.sk());
  if (lim < 0) return 0.0;
  const std::vector<ColumnRun> bands = mask.band_runs_for_row(i);
  for (const ColumnRun& r : bands) {
    for (Index j = r.lo; j < r.hi; ++j) kept += p_row[static_cast<std::size_t>(j)];
  }
  // Stripes outside the bands.
  for (const ColumnRun& run : mask.stripe_runs()) {
    const Index hi = std::min(run.hi, lim + 1);
    for (Index j = run.lo; j < hi; ++j) {
      if (!runs_contain(bands, j)) kept += p_row[static_cast<std::size_t>(j)];
    }
  }
  // Blocks, skipping cells already counted.
  for (const Block& b : mask.blocks()) {
    if (i < b.q_lo || i >= b.q_hi) continue;
    const Index hi = std::min(b.k_hi, lim + 1);
    for (Index j = b.k_lo; j < hi; ++j) {
      if (runs_contain(bands, j)) continue;
      if (std::binary_search(mask.stripe_columns().begin(), mask.stripe_columns().end(), j)) {
        continue;
      }
      kept += p_row[static_cast<std::size_t>(j)];
    }
  }
  return kept;
}

double cra(const AttentionInput& in, const StructuredMask& mask, std::span<const Index> rows) {
  double worst = std::numeric_limits<double>::infinity();
  for_each_score_row(in, rows, [&](Index i, std::span<const float> p) {
    worst = std::min(worst, row_retained_mass(p, mask, i));
  });
  return rows.empty() ? 1.0 : std::min(worst, 1.0);
}

double cra_columns_window(const AttentionInput& in, std::span<const Index> columns, Index window,
                          std::span<const Index> rows) {
  StructuredMask m(in.sq(), in.sk());
  m.set_window(window);
  m.set_stripe_columns(std::vector<Index>(columns.begin(), columns.end()));
  return cra(in, m, rows);
}

}  // namespace sattn
