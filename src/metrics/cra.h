// Cumulative Residual Attention (Definition 2).
//
//   CRA(M) = min_i  sum_j (M * P)_{ij}
//
// i.e. the worst-case row mass retained after sparsification. Lemma 1 ties
// it to the near-lossless bound: ||O~ - O||_1 <= R * (1 - CRA). The helpers
// here evaluate CRA either from structured masks or from raw column sets,
// streaming one score row at a time.
#pragma once

#include <span>
#include <vector>

#include "attention/masks.h"
#include "core/tensor.h"

namespace sattn {

// CRA of a structured mask over the given query rows (use all_rows(sq) for
// the exact Definition 2 value). Rows whose causal prefix is fully inside
// the mask contribute 1.0.
double cra(const AttentionInput& in, const StructuredMask& mask, std::span<const Index> rows);

// CRA of "keep these key columns plus a local window of width w", the shape
// SampleAttention produces. Columns must be sorted ascending.
double cra_columns_window(const AttentionInput& in, std::span<const Index> columns, Index window,
                          std::span<const Index> rows);

// Retained mass of one already-softmaxed score row under a mask row.
double row_retained_mass(std::span<const float> p_row, const StructuredMask& mask, Index i);

}  // namespace sattn
