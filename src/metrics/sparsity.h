// Sparsity Degree oracle (Definition 1).
//
//   SD(alpha) = max over masks M of the dropped fraction of the causal score
//               grid, subject to CRA(M) >= alpha.
//
// Because CRA is a per-row min of kept mass and entries are independent, the
// optimal mask keeps, in every row, the smallest set of highest-probability
// entries whose sum reaches alpha — i.e. per-row descending sort + prefix
// cut. That is exactly how the paper measures the statistics in Fig 2 and
// Tables 5. Rows are streamed so this works at long sequence lengths, and a
// row subset can be passed to trade accuracy for time.
#pragma once

#include <span>
#include <vector>

#include "core/tensor.h"

namespace sattn {

struct SparsityStats {
  double sd = 0.0;            // dropped fraction of the causal grid
  double kept_fraction = 0.0; // 1 - sd, over the causal grid
  Index rows_measured = 0;
};

// Oracle SD(alpha) over the given query rows. The causal grid size is
// estimated from the same rows, so a uniform row subsample yields an
// unbiased estimate of the full-matrix SD.
SparsityStats sd_oracle(const AttentionInput& in, double alpha, std::span<const Index> rows);

// Minimum number of entries of an already-softmaxed row needed to reach
// cumulative mass alpha (row restricted to its causal prefix length).
Index row_min_kept(std::span<const float> p_row, Index causal_len, double alpha);

}  // namespace sattn
