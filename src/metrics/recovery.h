// Output-recovery metrics: how close a sparse attention output is to the
// full-attention output, and the MLPerf-style near-lossless criterion the
// paper adopts (accuracy >= 99% of the dense baseline).
#pragma once

#include "core/tensor.h"

namespace sattn {

struct RecoveryStats {
  double max_abs_err = 0.0;   // max_i,t |O~ - O|
  double mean_abs_err = 0.0;  // mean over all entries
  double max_row_l1 = 0.0;    // max_i ||O~_i - O_i||_1 (Theorem 1's epsilon)
  double rel_l1 = 0.0;        // sum|O~ - O| / sum|O|
};

RecoveryStats recovery_stats(const Matrix& approx, const Matrix& exact);

// Theorem 1's value bound R = max_j ||V_j||_1; with CRA >= alpha the output
// error satisfies max_row_l1 <= (1 - alpha) * 2R (softmax-renormalized
// kernels can redistribute up to the dropped mass, hence the factor 2).
double value_l1_bound(const Matrix& v);

// MLPerf-style near-lossless check on task scores (>= 99% of baseline).
// Baseline <= 0 degenerates to requiring score >= baseline.
bool near_lossless(double score, double baseline_score, double ratio = 0.99);

}  // namespace sattn
