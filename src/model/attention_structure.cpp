#include "model/attention_structure.h"

#include <algorithm>
#include <cmath>
#include <numbers>

namespace sattn {
namespace {

// Number of trailing channels reserved for the positional (local-window)
// random-Fourier features.
Index positional_dims(Index d) { return std::clamp<Index>(d / 4, 2, 32); }

void normalize(std::span<float> v) {
  double n2 = 0.0;
  for (float x : v) n2 += static_cast<double>(x) * x;
  const double inv = n2 > 0.0 ? 1.0 / std::sqrt(n2) : 0.0;
  for (float& x : v) x = static_cast<float>(x * inv);
}

}  // namespace

std::vector<float> signature_vector(Index d, std::uint64_t content_seed, std::uint64_t tag) {
  Rng rng(content_seed ^ (tag * 0x9e3779b97f4a7c15ull) ^ 0x5163u);
  std::vector<float> sig(static_cast<std::size_t>(d));
  for (float& x : sig) x = static_cast<float>(rng.normal());
  normalize(sig);
  return sig;
}

AttentionInput generate_head_input(const ContentSpec& content, const HeadProfile& profile,
                                   Index head_dim, std::uint64_t head_seed) {
  const Index s = content.length;
  const Index d = head_dim;
  const Index dp = positional_dims(d);
  const Index dc = d - dp;
  assert(s > 0 && dc > 0);

  AttentionInput in;
  in.q.resize(s, d);
  in.k.resize(s, d);
  in.v.resize(s, d);

  Rng base(content.seed ^ (head_seed * 0xda942042e4dd58b5ull));
  Rng noise_rng = base.fork(0);
  Rng topic_rng = base.fork(1);
  Rng stripe_rng = base.fork(2);
  Rng pos_rng = base.fork(3);
  Rng pull_rng = base.fork(4);
  Rng v_rng = base.fork(5);

  // The logit scale in the kernels is 1/sqrt(d); giving each side of a
  // structured component a d^{1/4} factor makes the strength parameters
  // read directly in logit units.
  const auto side = static_cast<float>(std::pow(static_cast<double>(d), 0.25));

  // Shared "topic" direction carried by all queries (content dims only).
  std::vector<float> topic(static_cast<std::size_t>(dc));
  for (float& x : topic) x = static_cast<float>(topic_rng.normal());
  normalize(topic);

  // Base noise.
  const auto nstd = static_cast<float>(profile.noise);
  for (Index i = 0; i < s; ++i) {
    auto qi = in.q.row(i);
    auto ki = in.k.row(i);
    for (Index t = 0; t < dc; ++t) {
      qi[static_cast<std::size_t>(t)] = static_cast<float>(noise_rng.normal()) * nstd;
      ki[static_cast<std::size_t>(t)] = static_cast<float>(noise_rng.normal()) * nstd;
    }
  }

  // Queries: positive pull along the topic direction. The pull varies by
  // row (rows are similar but not identical — Fig 2(e)'s "high row-wise
  // distribution similarity").
  for (Index i = 0; i < s; ++i) {
    const auto pull = static_cast<float>((0.9 + 0.35 * std::fabs(pull_rng.normal())) * side);
    auto qi = in.q.row(i);
    for (Index t = 0; t < dc; ++t) qi[static_cast<std::size_t>(t)] += pull * topic[static_cast<std::size_t>(t)];
  }

  // Tokens of one critical span belong to one sentence: they share a content
  // vector (plus small per-token variation). Without this, every span token
  // would hash/cluster independently, handing content-oblivious baselines
  // span-many independent chances to stumble onto the fact.
  {
    const Index crit_span = std::max<Index>(1, content.critical_span);
    Rng span_rng = base.fork(7);
    for (Index p : content.critical_positions) {
      std::vector<float> shared(static_cast<std::size_t>(dc));
      for (float& x : shared) x = static_cast<float>(span_rng.normal()) * nstd;
      for (Index r = std::max<Index>(0, p); r < std::min<Index>(s, p + crit_span); ++r) {
        auto kr = in.k.row(r);
        for (Index t = 0; t < dc; ++t) {
          kr[static_cast<std::size_t>(t)] =
              shared[static_cast<std::size_t>(t)] + 0.3f * kr[static_cast<std::size_t>(t)];
        }
      }
    }
  }

  // Length sharpening: the max of S background logits grows like
  // sigma * sqrt(2 ln S), so salient tokens' logits must outgrow it for the
  // observed sparsity scaling (SD grows with length — Fig 2(b), Table 5,
  // ~20% fewer kept KVs per doubling) to hold. Salient boosts gain ~0.9
  // logits per doubling beyond the 1K reference.
  const double sharpen =
      0.9 * std::log2(std::max(1.0, static_cast<double>(s) / 1024.0));

  // Key-side stripe boosts, in logit units (x side; the query pull carries
  // the other side factor with mean ~1).
  auto boost_column = [&](Index col, double strength) {
    if (col < 0 || col >= s || strength == 0.0) return;
    auto kc = in.k.row(col);
    const auto b = static_cast<float>(strength * side);
    for (Index t = 0; t < dc; ++t) kc[static_cast<std::size_t>(t)] += b * topic[static_cast<std::size_t>(t)];
  };

  // Column-correlated background: every key gets a signed importance along
  // the topic direction, shared by all queries (the "similar distribution of
  // large numerical values across rows" of Section 3.2). Task-critical span
  // tokens are exempt — their salience is set by the content, and random
  // jitter there would make one fact's column dominate the others under
  // softmax (winner-take-all), which real multi-fact retrieval does not do.
  if (profile.key_variation > 0.0) {
    std::vector<bool> is_critical(static_cast<std::size_t>(s), false);
    const Index crit_span = std::max<Index>(1, content.critical_span);
    for (Index p : content.critical_positions) {
      for (Index t = std::max<Index>(0, p); t < std::min<Index>(s, p + crit_span); ++t) {
        is_critical[static_cast<std::size_t>(t)] = true;
      }
    }
    Rng kv_rng = base.fork(6);
    for (Index j = 0; j < s; ++j) {
      const double iota = profile.key_variation * kv_rng.normal();
      if (!is_critical[static_cast<std::size_t>(j)]) boost_column(j, iota);
    }
  }

  // Content stripes: positions drawn from the (content, head) stream —
  // different contents light up different columns of the same head.
  for (Index n = 0; n < profile.num_content_stripes; ++n) {
    boost_column(stripe_rng.uniform_index(s),
                 profile.stripe_strength * (0.7 + 0.6 * stripe_rng.uniform()) + sharpen);
  }
  // Attention sinks.
  for (Index c = 0; c < std::min(profile.num_sinks, s); ++c) {
    boost_column(c, profile.sink_strength * (0.8 + 0.4 * stripe_rng.uniform()) + sharpen);
  }
  // Task-critical spans (needles): every token of the span is boosted;
  // strength scales with the head's retrieval affinity.
  const Index span = std::max<Index>(1, content.critical_span);
  for (Index p : content.critical_positions) {
    for (Index t = p; t < std::min<Index>(s, p + span); ++t) {
      boost_column(t, content.critical_strength * profile.retrieval_affinity + sharpen);
    }
  }
  // Diffuse positions (summarization-like mass).
  for (Index p : content.diffuse_positions) {
    boost_column(p, content.diffuse_strength * profile.diffuse_gain *
                            (0.6 + 0.8 * stripe_rng.uniform()) +
                        0.5 * sharpen);
  }

  // Local window (and optional secondary diagonal): random-Fourier features
  // of an RBF kernel over positions. For a bank with offset o,
  // E[phi_q(i) . phi_k(j)] = exp(-((i - j - o)/L)^2 / 2): the query side is
  // evaluated at position i - o, the key side at j. The window is the
  // offset-0 bank; a diagonal head splits the positional channels between
  // the two banks.
  {
    struct Bank {
      double strength;
      double offset;
      double len;
    };
    std::vector<Bank> banks;
    if (profile.window_strength > 0.0) {
      banks.push_back({profile.window_strength + sharpen,
                       0.0,
                       std::clamp(profile.window_decay_tokens, 1.0, 0.5 * static_cast<double>(s))});
    }
    if (profile.diag_strength > 0.0) {
      banks.push_back({profile.diag_strength + sharpen,
                       profile.diag_offset_frac * static_cast<double>(s),
                       std::clamp(profile.diag_decay_tokens, 1.0, 0.5 * static_cast<double>(s))});
    }
    if (!banks.empty() && dp > 0) {
      const Index per_bank = dp / static_cast<Index>(banks.size());
      for (std::size_t bi = 0; bi < banks.size() && per_bank > 0; ++bi) {
        const Bank& bank = banks[bi];
        const Index base_t = dc + static_cast<Index>(bi) * per_bank;
        const double amp_side = std::sqrt(bank.strength) * side;
        std::vector<double> freq(static_cast<std::size_t>(per_bank));
        std::vector<double> phase(static_cast<std::size_t>(per_bank));
        for (Index t = 0; t < per_bank; ++t) {
          freq[static_cast<std::size_t>(t)] = pos_rng.normal() / bank.len;
          phase[static_cast<std::size_t>(t)] = pos_rng.uniform(0.0, 2.0 * std::numbers::pi);
        }
        const double feat_scale = std::sqrt(2.0 / static_cast<double>(per_bank));
        for (Index i = 0; i < s; ++i) {
          auto qi = in.q.row(i);
          auto ki = in.k.row(i);
          for (Index t = 0; t < per_bank; ++t) {
            const double w = freq[static_cast<std::size_t>(t)];
            const double ph = phase[static_cast<std::size_t>(t)];
            qi[static_cast<std::size_t>(base_t + t)] = static_cast<float>(
                amp_side * feat_scale * std::cos(w * (static_cast<double>(i) - bank.offset) + ph));
            ki[static_cast<std::size_t>(base_t + t)] = static_cast<float>(
                amp_side * feat_scale * std::cos(w * static_cast<double>(i) + ph));
          }
        }
      }
    }
  }

  // Values: noise rows of ~unit L2 norm (std 1/sqrt(d)), with task
  // signatures injected at critical positions so answer recovery is
  // measurable from outputs against that noise floor.
  v_rng.fill_normal(in.v, static_cast<float>(1.0 / std::sqrt(static_cast<double>(d))));
  for (Index p : content.critical_positions) {
    const std::vector<float> sig =
        signature_vector(d, content.seed, static_cast<std::uint64_t>(p));
    for (Index r = p; r < std::min<Index>(s, p + span); ++r) {
      if (r < 0) continue;
      auto vp = in.v.row(r);
      for (Index t = 0; t < d; ++t) {
        vp[static_cast<std::size_t>(t)] =
            static_cast<float>(content.signature_gain) * sig[static_cast<std::size_t>(t)] +
            0.1f * vp[static_cast<std::size_t>(t)];
      }
    }
  }
  return in;
}

}  // namespace sattn
