// Rotary positional embedding (Su et al., 2024), used by both backbone
// models the paper evaluates (ChatGLM2 via continued long-context training,
// InternLM2 via rope scaling / length extrapolation).
//
// Pairs of channels (2t, 2t+1) are rotated by angle pos * theta^{-2t/d}.
// RoPE is norm-preserving and gives attention logits that depend on the
// *relative* position i - j — properties the tests assert.
#pragma once

#include "core/tensor.h"

namespace sattn {

struct RopeConfig {
  double theta = 10000.0;
  // Linear position interpolation factor (>1 compresses positions — the
  // "rope scaling" long-context trick InternLM2 uses). 1.0 = vanilla.
  double scaling = 1.0;
};

// Applies RoPE in place to every row of m; row r gets position
// positions_offset + r. Requires an even number of columns.
void apply_rope(Matrix& m, Index position_offset = 0, const RopeConfig& cfg = {});

// Rotates a single vector at the given position (helper for tests).
void apply_rope_row(std::span<float> row, Index position, const RopeConfig& cfg = {});

}  // namespace sattn
