// Model-level substrate: configurations mirroring the paper's two backbones
// and deterministic per-(layer, head) structure profiles.
//
// ChatGLM2-6B ("Model1" in Fig 2): 28 layers x 32 heads, d=128, multi-query
// style GQA with 2 KV groups, 96K context window. InternLM2-7B ("Model2"):
// 32 layers x 32 heads, d=128, 8 KV groups, 200K window. The profile
// distribution is what realizes the paper's head-specific sparsity findings:
// layer 0 is markedly less sparse (Fig 2(a)), a small fraction of heads in
// every layer stays dense (Fig 2(c): SD as low as 27% next to 99.8%), and
// "retrieval" heads lock onto content-critical columns.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "model/attention_structure.h"

namespace sattn {

struct ModelConfig {
  std::string name;
  Index n_layers = 28;
  Index n_heads = 32;
  Index n_kv_heads = 2;   // GQA groups (affects KV I/O in the cost model)
  Index head_dim = 128;
  Index hidden_dim = 4096;
  Index ffn_dim = 13696;
  Index context_window = 96 * 1024;
  std::uint64_t seed = 0x61747467ull;
  // Global multiplier on structured-pattern strength; tuned so measured SD
  // statistics land in the paper's reported ranges.
  double base_structure = 1.0;
};

ModelConfig chatglm2_6b();
ModelConfig internlm2_7b();

enum class HeadKind { kDense, kStandard, kRetrieval };

// Deterministic structural profile of one attention head.
HeadProfile head_profile(const ModelConfig& model, Index layer, Index head);
HeadKind head_kind(const ModelConfig& model, Index layer, Index head);

// Seed used by the Q/K/V generator for this head.
std::uint64_t head_seed(const ModelConfig& model, Index layer, Index head);

// Generates the (layer, head) attention input for a given content.
AttentionInput generate_attention(const ModelConfig& model, const ContentSpec& content,
                                  Index layer, Index head);

// Up to `count` retrieval-class heads spread over the depth of the model —
// the heads the task scorers read answers from.
std::vector<std::pair<Index, Index>> retrieval_heads(const ModelConfig& model, Index count);

// A spread of (layer, head) pairs for sparsity statistics benches.
std::vector<std::pair<Index, Index>> representative_heads(const ModelConfig& model, Index count);

}  // namespace sattn
