#include "model/workload.h"

#include <cmath>

namespace sattn {

ContentSpec plain_prompt(std::uint64_t seed, Index length) {
  ContentSpec c;
  c.seed = seed;
  c.length = length;
  // A handful of diffuse positions, as ordinary prose has mildly important
  // tokens spread through it.
  Rng rng(seed ^ 0x70726f6dull);
  const Index n_diffuse = std::max<Index>(4, length / 96);
  c.diffuse_positions = rng.sample_without_replacement(length, std::min(n_diffuse, length));
  c.diffuse_strength = 2.0;
  return c;
}

std::vector<Request> profiling_set(Index min_len, Index max_len, Index count, std::uint64_t seed) {
  assert(min_len > 0 && max_len >= min_len && count > 0);
  std::vector<Request> out;
  out.reserve(static_cast<std::size_t>(count));
  const double lo = std::log(static_cast<double>(min_len));
  const double hi = std::log(static_cast<double>(max_len));
  for (Index r = 0; r < count; ++r) {
    const double f = count == 1 ? 0.0 : static_cast<double>(r) / static_cast<double>(count - 1);
    const auto len = static_cast<Index>(std::llround(std::exp(lo + f * (hi - lo))));
    Request req;
    req.label = "profile-" + std::to_string(r) + "-len" + std::to_string(len);
    req.content = plain_prompt(seed + static_cast<std::uint64_t>(r) * 7919ull, len);
    out.push_back(std::move(req));
  }
  return out;
}

std::vector<AttentionInput> profiling_inputs(const ModelConfig& model,
                                             std::vector<Request> const& requests, Index layer,
                                             Index head) {
  std::vector<AttentionInput> inputs;
  inputs.reserve(requests.size());
  for (const Request& r : requests) {
    inputs.push_back(generate_attention(model, r.content, layer, head));
  }
  return inputs;
}

}  // namespace sattn
