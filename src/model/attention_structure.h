// Structured Q/K/V generator — the substrate standing in for real LLM
// attention tensors (see DESIGN.md §1).
//
// The paper's empirical foundation (Section 3.2) characterizes long-context
// score matrices as: inherently highly sparse, head-specific, content-aware,
// and dominated by two patterns — local windows and column stripes, plus
// attention sinks at the sequence start. This module synthesizes Q and K so
// the resulting softmax(QK^T/sqrt(d)) exhibits exactly those patterns with
// controllable strengths:
//
//   * column stripes  — stripe columns' keys gain a component along a shared
//     "topic" direction u that every query also carries; their logits are
//     elevated for all rows, producing the vertical stripes of Fig 2(d).
//   * local window    — the last dp channels hold random-Fourier features
//     phi(pos) of an RBF kernel, so q_i . k_j has a bump that decays with
//     |i - j| at a controllable length scale.
//   * sinks           — the first few columns get a smaller stripe boost.
//   * content-awareness — stripe positions are drawn from the content seed,
//     and task-critical positions (needles) become stripes whose strength
//     scales with the head's retrieval affinity.
//
// V carries task "signatures" at critical positions so that answer recovery
// can be scored from attention outputs alone (tasks/scoring.h).
#pragma once

#include <vector>

#include "core/rng.h"
#include "core/tensor.h"

namespace sattn {

// Per-head structural parameters (head-specific sparsity, Fig 2(c)).
struct HeadProfile {
  double stripe_strength = 6.0;   // logit scale of content stripes
  Index num_content_stripes = 12; // stripes drawn from the content seed
  double window_strength = 5.5;   // amplitude of the local positional bump
  // Decay length of the local window in TOKENS (clamped to Sk/2 at
  // generation). Real heads attend locally over a roughly fixed number of
  // recent tokens regardless of context length, which is what makes the
  // sparsity degree GROW with sequence length (Fig 2(b), Table 5).
  double window_decay_tokens = 80.0;
  double sink_strength = 4.0;     // boost for the first `num_sinks` columns
  Index num_sinks = 4;
  double noise = 0.45;            // iid (row-specific) logit noise floor
  // Std of the per-key importance along the shared topic direction. This is
  // the column-correlated background that gives score matrices their
  // "row-wise numerical distribution similarity" (Fig 2(e)): every query
  // agrees on which background keys matter, so a small set of top columns
  // covers most of the non-window mass.
  double key_variation = 1.3;
  double retrieval_affinity = 0.8;// how strongly critical positions become stripes
  double diffuse_gain = 1.0;      // gain on content's diffuse positions
  // Secondary diagonal band (Appendix A.6: "additional diagonal structures"
  // in low-sparsity heads): a bump at relative distance ~diag_offset_frac*Sk
  // with the given strength. 0 disables it.
  double diag_strength = 0.0;
  double diag_offset_frac = 0.25;
  double diag_decay_tokens = 60.0;
};

// What the "prompt" contains, shared by all heads of a request.
struct ContentSpec {
  std::uint64_t seed = 1;
  Index length = 1024;                    // Sk (= Sq at prefill)
  std::vector<Index> critical_positions;  // task needle span *starts*
  // Needles are short spans (a sentence), not single tokens: every token in
  // [p, p + critical_span) is boosted and carries fact p's signature. The
  // span width matters for the baselines — a static mask (BigBird's random
  // blocks / globals) intersects a multi-token span with realistic
  // probability, while a window-only mask still misses it deterministically.
  Index critical_span = 1;
  double critical_strength = 10.0;        // logit boost scale at needles
  std::vector<Index> diffuse_positions;   // many mildly-important positions
  double diffuse_strength = 2.2;
  double signature_gain = 3.0;            // magnitude of V signatures
};

// Deterministic unit "signature" vector associated with (content seed, tag).
// Tasks use tag = the critical position so every fact has its own signature.
std::vector<float> signature_vector(Index d, std::uint64_t content_seed, std::uint64_t tag);

// Generates one head's AttentionInput (Sq = Sk = content.length) with the
// given profile. Deterministic in (content.seed, head_seed).
AttentionInput generate_head_input(const ContentSpec& content, const HeadProfile& profile,
                                   Index head_dim, std::uint64_t head_seed);

}  // namespace sattn
