#include "model/rope.h"

#include <cassert>
#include <cmath>

namespace sattn {

void apply_rope_row(std::span<float> row, Index position, const RopeConfig& cfg) {
  const auto d = static_cast<Index>(row.size());
  assert(d % 2 == 0);
  const double pos = static_cast<double>(position) / cfg.scaling;
  for (Index t = 0; t < d / 2; ++t) {
    const double freq = std::pow(cfg.theta, -2.0 * static_cast<double>(t) / static_cast<double>(d));
    const double angle = pos * freq;
    const double c = std::cos(angle), s = std::sin(angle);
    const float x = row[static_cast<std::size_t>(2 * t)];
    const float y = row[static_cast<std::size_t>(2 * t + 1)];
    row[static_cast<std::size_t>(2 * t)] = static_cast<float>(c * x - s * y);
    row[static_cast<std::size_t>(2 * t + 1)] = static_cast<float>(s * x + c * y);
  }
}

void apply_rope(Matrix& m, Index position_offset, const RopeConfig& cfg) {
  for (Index r = 0; r < m.rows(); ++r) apply_rope_row(m.row(r), position_offset + r, cfg);
}

}  // namespace sattn
