#include "model/synthetic_model.h"

#include <algorithm>
#include <cmath>

namespace sattn {

ModelConfig chatglm2_6b() {
  ModelConfig m;
  m.name = "ChatGLM2-6B";
  m.n_layers = 28;
  m.n_heads = 32;
  m.n_kv_heads = 2;
  m.head_dim = 128;
  m.hidden_dim = 4096;
  m.ffn_dim = 13696;
  m.context_window = 96 * 1024;
  m.seed = 0xc4a7611ull;
  m.base_structure = 1.0;
  return m;
}

ModelConfig internlm2_7b() {
  ModelConfig m;
  m.name = "InternLM2-7B";
  m.n_layers = 32;
  m.n_heads = 32;
  m.n_kv_heads = 8;
  m.head_dim = 128;
  m.hidden_dim = 4096;
  m.ffn_dim = 14336;
  m.context_window = 200 * 1024;
  m.seed = 0x1e7e41ull;
  m.base_structure = 1.08;  // slightly crisper stripes than ChatGLM2
  return m;
}

std::uint64_t head_seed(const ModelConfig& model, Index layer, Index head) {
  return model.seed ^ (static_cast<std::uint64_t>(layer) * 0x100000001b3ull) ^
         (static_cast<std::uint64_t>(head) * 0x9e3779b97f4a7c15ull);
}

HeadKind head_kind(const ModelConfig& model, Index layer, Index head) {
  Rng rng(head_seed(model, layer, head) ^ 0x4b494e44ull);
  const double u = rng.uniform();
  if (u < 0.08) return HeadKind::kDense;      // ~8% of heads stay dense
  if (u < 0.30) return HeadKind::kRetrieval;  // ~22% strong retrieval heads
  return HeadKind::kStandard;
}

HeadProfile head_profile(const ModelConfig& model, Index layer, Index head) {
  Rng rng(head_seed(model, layer, head) ^ 0x50524f46ull);
  const HeadKind kind = head_kind(model, layer, head);

  // Layer 0 carries much weaker structure (Fig 2(a): lowest SD); structure
  // sharpens and then saturates with depth.
  double layer_gain = 1.0;
  if (layer == 0) {
    layer_gain = 0.35;
  } else {
    layer_gain = std::min(1.15, 0.80 + 0.03 * static_cast<double>(layer)) *
                 (0.9 + 0.2 * rng.uniform());
  }
  const double g = model.base_structure * layer_gain;

  HeadProfile p;
  p.noise = 0.35;
  p.key_variation = (1.7 + 0.6 * rng.uniform()) * g;
  p.num_sinks = 4;
  p.sink_strength = (3.4 + 1.2 * rng.uniform()) * g;
  p.num_content_stripes = static_cast<Index>(6 + rng.uniform_index(18));
  p.stripe_strength = (5.2 + 1.8 * rng.uniform()) * g;
  p.window_strength = (4.6 + 1.8 * rng.uniform()) * g;
  p.window_decay_tokens = 25.0 + 110.0 * rng.uniform();
  p.diffuse_gain = 0.7 + 0.6 * rng.uniform();

  // A minority of heads carries a secondary diagonal structure
  // (Appendix A.6), most often the less-sparse ones.
  if (rng.uniform() < (kind == HeadKind::kDense ? 0.5 : 0.08)) {
    p.diag_strength = (2.2 + 1.2 * rng.uniform()) * g;
    p.diag_offset_frac = 0.1 + 0.3 * rng.uniform();
    p.diag_decay_tokens = 30.0 + 60.0 * rng.uniform();
  }

  switch (kind) {
    case HeadKind::kDense:
      // Flat score distribution: weak structure, broad window, higher noise.
      p.stripe_strength *= 0.3;
      p.window_strength *= 0.4;
      p.window_decay_tokens = 1200.0 + 2000.0 * rng.uniform();
      p.sink_strength *= 0.5;
      p.noise = 0.95;
      p.key_variation *= 0.4;
      p.retrieval_affinity = 0.35;
      break;
    case HeadKind::kRetrieval:
      p.retrieval_affinity = 1.0;
      p.stripe_strength *= 1.15;
      break;
    case HeadKind::kStandard:
      p.retrieval_affinity = 0.55 + 0.25 * rng.uniform();
      break;
  }
  return p;
}

AttentionInput generate_attention(const ModelConfig& model, const ContentSpec& content,
                                  Index layer, Index head) {
  return generate_head_input(content, head_profile(model, layer, head), model.head_dim,
                             head_seed(model, layer, head));
}

std::vector<std::pair<Index, Index>> retrieval_heads(const ModelConfig& model, Index count) {
  std::vector<std::pair<Index, Index>> out;
  // Walk layers (skipping layer 0, whose structure is weak) in a fixed
  // pattern, keeping retrieval-class heads until `count` are found.
  for (Index layer = 1; layer < model.n_layers && static_cast<Index>(out.size()) < count; ++layer) {
    for (Index head = 0; head < model.n_heads && static_cast<Index>(out.size()) < count; ++head) {
      if (head_kind(model, layer, head) == HeadKind::kRetrieval) {
        out.emplace_back(layer, head);
        break;  // at most one head per layer => answers come from spread depths
      }
    }
  }
  return out;
}

std::vector<std::pair<Index, Index>> representative_heads(const ModelConfig& model, Index count) {
  std::vector<std::pair<Index, Index>> out;
  if (count <= 0) return out;
  for (Index t = 0; t < count; ++t) {
    const Index layer = std::min<Index>(model.n_layers - 1, t * model.n_layers / count);
    const Index head = (t * 7) % model.n_heads;
    out.emplace_back(layer, head);
  }
  return out;
}

}  // namespace sattn
