// Request workloads: plain prompts and the offline-profiling set.
//
// The paper tunes SampleAttention's hyperparameters with "a small dataset
// that contains 22 requests ranging from 25K-96K context length"
// (Section 4.2). The substrate mirrors that procedure at configurable
// lengths: 22 requests geometrically spread over [min_len, max_len], each a
// plain prompt (content-seeded stripes and diffuse mass, no task needles).
#pragma once

#include <string>
#include <vector>

#include "model/synthetic_model.h"

namespace sattn {

struct Request {
  std::string label;
  ContentSpec content;
};

// Plain prompt of the given length: content stripes + a sprinkling of
// diffuse positions, no task-critical needles.
ContentSpec plain_prompt(std::uint64_t seed, Index length);

// The profiling workload (defaults follow the paper's 22 requests).
std::vector<Request> profiling_set(Index min_len, Index max_len, Index count = 22,
                                   std::uint64_t seed = 0x22ull);

// Materializes per-request attention inputs on a fixed head of the model —
// the tensors the tuner profiles against.
std::vector<AttentionInput> profiling_inputs(const ModelConfig& model,
                                             std::vector<Request> const& requests, Index layer,
                                             Index head);

}  // namespace sattn
