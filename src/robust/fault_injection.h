// Deterministic, seedable fault injection — the test harness for the
// robustness subsystem (docs/ROBUSTNESS.md).
//
// Guards that are never exercised rot. The injector corrupts the three
// payload kinds the guarded paths defend against, each reproducibly from a
// seed:
//
//   * tensors  — NaN / Inf elements, zeroed rows in Q/K/V;
//   * plans    — emptied stripe sets, truncated masks (window removed),
//                NaN-poisoned Stage-1 statistics;
//   * traces   — oversized arrivals and arrival bursts for the serving
//                simulator (scheduler-level transient failures and chunk
//                stalls are injected by SloOptions::fault_rate/stall_rate,
//                which share this determinism contract).
//
// The property test (tests/robust_test.cpp) iterates every FaultClass and
// asserts the guarded pipeline either returns a clean Status or recovers to
// within the recovery-metric tolerance of dense attention.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "core/rng.h"
#include "core/tensor.h"
#include "sample_attention/sample_attention.h"

namespace sattn {

struct ServingRequest;  // runtime/scheduler.h

enum class FaultClass {
  kNone = 0,
  // Tensor corruption.
  kTensorNaN,        // NaN elements scattered into one row
  kTensorInf,        // +/-Inf elements scattered into one row
  kTensorZeroRows,   // whole rows zeroed (degenerate but finite)
  // Plan corruption.
  kPlanEmptyStripes,    // I_KV emptied; mask keeps only the window
  kPlanTruncatedMask,   // window removed and stripes halved
  kPlanPoisonedStats,   // Stage-1 column statistic NaN-poisoned
  // Serving-trace corruption.
  kTraceOversizedArrival,  // prompt lengths inflated past any budget
  kTraceBurstArrival,      // a run of arrivals collapsed onto one instant
};

const char* fault_class_name(FaultClass kind);

// Enumerations for "for every fault class" test loops.
const std::vector<FaultClass>& tensor_fault_classes();
const std::vector<FaultClass>& plan_fault_classes();
const std::vector<FaultClass>& trace_fault_classes();

struct FaultSpec {
  FaultClass kind = FaultClass::kNone;
  double rate = 1.0;         // P(fire) per opportunity, in [0, 1]
  std::uint64_t seed = 0x0f417ull;
  Index max_fires = -1;      // stop firing after this many; -1 = unlimited

  // The same spec re-seeded for one request: `seed` is mixed with a stable
  // hash of `request_id`, so a per-request injector's fault decisions depend
  // only on (spec, request id, per-request opportunity sequence) — never on
  // the interleaving of concurrent requests. The serving engine forks one
  // injector per admitted request from this, which is what makes chaos runs
  // reproducible under concurrent submit order (tests/chaos_engine_test.cpp
  // pins two same-seed runs to identical outcome multisets).
  FaultSpec for_request(std::string_view request_id) const;
};

// Deterministic injector: identical (spec, call sequence) always produces
// identical corruption. Each corrupt_* call is one "opportunity" — it draws
// from the RNG and fires with probability `rate` until `max_fires` is
// reached.
class FaultInjector {
 public:
  explicit FaultInjector(FaultSpec spec);

  const FaultSpec& spec() const { return spec_; }
  Index fires() const { return fires_; }

  // One Bernoulli(rate) opportunity; counts and caps fires.
  bool should_fire();

  // Tensor faults (kTensor*): corrupts one deterministic row of `m`.
  // No-op unless this opportunity fires and the spec is a tensor fault.
  void corrupt_matrix(Matrix& m);

  // Picks Q, K, or V deterministically and corrupts it.
  void corrupt_input(AttentionInput& in);

  // Plan faults (kPlan*). No-op unless fired and the spec is a plan fault.
  void corrupt_plan(SamplePlan& plan);

  // Trace faults (kTrace*): mutates arrivals in place. `oversize_to` is the
  // prompt length oversized arrivals are inflated to.
  void corrupt_trace(std::vector<ServingRequest>& trace, Index oversize_to);

 private:
  FaultSpec spec_;
  Rng rng_;
  Index fires_ = 0;
};

}  // namespace sattn
