#include "robust/validate.h"

#include <cmath>

namespace sattn {

bool all_finite(std::span<const float> x) {
  for (float v : x) {
    if (!std::isfinite(v)) return false;
  }
  return true;
}

Status validate_matrix_finite(const Matrix& m, const char* name) {
  // Scan row-wise so the error can name the offending row.
  for (Index r = 0; r < m.rows(); ++r) {
    const auto row = m.row(r);
    for (Index c = 0; c < m.cols(); ++c) {
      const float v = row[static_cast<std::size_t>(c)];
      if (!std::isfinite(v)) {
        const char* kind = std::isnan(v) ? "NaN" : "Inf";
        return Status(StatusCode::kDataCorruption,
                      detail::status_msg(kind, " in ", name, " at [", r, ",", c, "]"));
      }
    }
  }
  return Status::Ok();
}

Status validate_attention_input(const AttentionInput& in) {
  SATTN_CHECK(in.sq() > 0 && in.sk() > 0, kInvalidArgument,
              "empty attention input: Sq=", in.sq(), " Sk=", in.sk());
  SATTN_CHECK(in.head_dim() > 0, kInvalidArgument, "head_dim must be > 0, got ", in.head_dim());
  SATTN_CHECK(in.k.cols() == in.head_dim() && in.v.cols() == in.head_dim(), kInvalidArgument,
              "head_dim mismatch: Q has ", in.head_dim(), ", K has ", in.k.cols(), ", V has ",
              in.v.cols());
  SATTN_CHECK(in.k.rows() == in.v.rows(), kInvalidArgument,
              "K has ", in.k.rows(), " rows but V has ", in.v.rows());
  SATTN_RETURN_IF_ERROR(validate_matrix_finite(in.q, "Q"));
  SATTN_RETURN_IF_ERROR(validate_matrix_finite(in.k, "K"));
  SATTN_RETURN_IF_ERROR(validate_matrix_finite(in.v, "V"));
  return Status::Ok();
}

}  // namespace sattn
