// Payload validation: the checks the guarded attention path and the runtime
// run on untrusted data (tensors from upstream layers, cached KV rows).
//
// Shape violations are kInvalidArgument; NaN/Inf payloads are
// kDataCorruption. Both are recoverable upstream (reject the request, fall
// back), which is why they are Status and not assert — see
// docs/ROBUSTNESS.md.
#pragma once

#include <span>

#include "core/status.h"
#include "core/tensor.h"

namespace sattn {

// True when every element is finite (no NaN, no +/-Inf).
bool all_finite(std::span<const float> x);

// kDataCorruption naming the first bad element, e.g. "NaN in K at row 3".
// `name` labels the tensor in the message ("Q", "K", ...).
Status validate_matrix_finite(const Matrix& m, const char* name);

// Full input contract for one attention head: non-empty Q/K/V, consistent
// head_dim, K/V row counts equal, all payloads finite.
Status validate_attention_input(const AttentionInput& in);

}  // namespace sattn
