#include "robust/fault_injection.h"

#include <algorithm>
#include <limits>

#include "obs/trace.h"
#include "runtime/scheduler.h"

namespace sattn {

const char* fault_class_name(FaultClass kind) {
  switch (kind) {
    case FaultClass::kNone: return "none";
    case FaultClass::kTensorNaN: return "tensor_nan";
    case FaultClass::kTensorInf: return "tensor_inf";
    case FaultClass::kTensorZeroRows: return "tensor_zero_rows";
    case FaultClass::kPlanEmptyStripes: return "plan_empty_stripes";
    case FaultClass::kPlanTruncatedMask: return "plan_truncated_mask";
    case FaultClass::kPlanPoisonedStats: return "plan_poisoned_stats";
    case FaultClass::kTraceOversizedArrival: return "trace_oversized_arrival";
    case FaultClass::kTraceBurstArrival: return "trace_burst_arrival";
  }
  return "unknown";
}

const std::vector<FaultClass>& tensor_fault_classes() {
  static const std::vector<FaultClass> kClasses = {
      FaultClass::kTensorNaN, FaultClass::kTensorInf, FaultClass::kTensorZeroRows};
  return kClasses;
}

const std::vector<FaultClass>& plan_fault_classes() {
  static const std::vector<FaultClass> kClasses = {
      FaultClass::kPlanEmptyStripes, FaultClass::kPlanTruncatedMask,
      FaultClass::kPlanPoisonedStats};
  return kClasses;
}

const std::vector<FaultClass>& trace_fault_classes() {
  static const std::vector<FaultClass> kClasses = {
      FaultClass::kTraceOversizedArrival, FaultClass::kTraceBurstArrival};
  return kClasses;
}

FaultSpec FaultSpec::for_request(std::string_view request_id) const {
  // FNV-1a over the id, xor-folded into the base seed. Any stable hash
  // works; what matters is that equal (seed, id) pairs always collide and
  // distinct ids practically never do.
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (const char ch : request_id) {
    h ^= static_cast<std::uint64_t>(static_cast<unsigned char>(ch));
    h *= 0x100000001b3ull;
  }
  FaultSpec forked = *this;
  forked.seed = seed ^ (h | 1ull);  // | 1 so an empty id still perturbs
  return forked;
}

FaultInjector::FaultInjector(FaultSpec spec) : spec_(spec), rng_(spec.seed) {
  spec_.rate = std::clamp(spec_.rate, 0.0, 1.0);
}

bool FaultInjector::should_fire() {
  if (spec_.kind == FaultClass::kNone) return false;
  if (spec_.max_fires >= 0 && fires_ >= spec_.max_fires) return false;
  // Draw unconditionally so the stream stays aligned across rate changes.
  const bool fire = rng_.uniform() < spec_.rate;
  if (fire) {
    ++fires_;
    SATTN_COUNTER_ADD("fault.injected", 1);
  }
  return fire;
}

void FaultInjector::corrupt_matrix(Matrix& m) {
  if (m.rows() == 0 || m.cols() == 0) return;
  if (!should_fire()) return;
  const Index r = rng_.uniform_index(m.rows());
  switch (spec_.kind) {
    case FaultClass::kTensorNaN: {
      const Index hits = std::max<Index>(1, m.cols() / 8);
      for (Index h = 0; h < hits; ++h) {
        m(r, rng_.uniform_index(m.cols())) = std::numeric_limits<float>::quiet_NaN();
      }
      break;
    }
    case FaultClass::kTensorInf: {
      const Index hits = std::max<Index>(1, m.cols() / 8);
      for (Index h = 0; h < hits; ++h) {
        const float sign = rng_.uniform() < 0.5 ? 1.0f : -1.0f;
        m(r, rng_.uniform_index(m.cols())) = sign * std::numeric_limits<float>::infinity();
      }
      break;
    }
    case FaultClass::kTensorZeroRows: {
      const Index rows = std::max<Index>(1, m.rows() / 4);
      for (Index h = 0; h < rows; ++h) {
        auto row = m.row(rng_.uniform_index(m.rows()));
        std::fill(row.begin(), row.end(), 0.0f);
      }
      break;
    }
    default:
      break;  // not a tensor fault
  }
}

void FaultInjector::corrupt_input(AttentionInput& in) {
  switch (rng_.uniform_index(3)) {
    case 0: corrupt_matrix(in.q); break;
    case 1: corrupt_matrix(in.k); break;
    default: corrupt_matrix(in.v); break;
  }
}

void FaultInjector::corrupt_plan(SamplePlan& plan) {
  if (!should_fire()) return;
  switch (spec_.kind) {
    case FaultClass::kPlanEmptyStripes:
      plan.mask.set_stripe_columns({});
      plan.filter.kv_indices.clear();
      plan.filter.kv_ratio = 0.0;
      break;
    case FaultClass::kPlanTruncatedMask: {
      plan.mask.set_window(0);
      std::vector<Index> cols = plan.mask.stripe_columns();
      cols.resize(cols.size() / 2);
      plan.mask.set_stripe_columns(std::move(cols));
      break;
    }
    case FaultClass::kPlanPoisonedStats: {
      const float nan = std::numeric_limits<float>::quiet_NaN();
      if (!plan.stage1.column_weight.empty()) {
        plan.stage1.column_weight[static_cast<std::size_t>(
            rng_.uniform_index(static_cast<Index>(plan.stage1.column_weight.size())))] = nan;
      }
      plan.stage1.total_mass = std::numeric_limits<double>::quiet_NaN();
      break;
    }
    default:
      break;  // not a plan fault
  }
  plan.density = plan.mask.density();
}

void FaultInjector::corrupt_trace(std::vector<ServingRequest>& trace, Index oversize_to) {
  if (trace.empty()) return;
  switch (spec_.kind) {
    case FaultClass::kTraceOversizedArrival:
      for (ServingRequest& req : trace) {
        if (should_fire()) req.prompt_tokens = std::max(req.prompt_tokens, oversize_to);
      }
      break;
    case FaultClass::kTraceBurstArrival: {
      if (!should_fire()) return;
      // Collapse a contiguous run of arrivals onto the earliest instant.
      const Index n = static_cast<Index>(trace.size());
      const Index lo = rng_.uniform_index(n);
      const Index hi = std::min<Index>(n, lo + std::max<Index>(2, n / 4));
      for (Index r = lo; r < hi; ++r) {
        trace[static_cast<std::size_t>(r)].arrival_seconds =
            trace[static_cast<std::size_t>(lo)].arrival_seconds;
      }
      break;
    }
    default:
      break;  // not a trace fault
  }
}

}  // namespace sattn
