// Analytic A100 performance model (DESIGN.md §1 substitution for the
// paper's GPU testbed).
//
// Latency is modeled with a roofline: time = max(flops / effective_compute,
// bytes / effective_bandwidth), with per-kernel efficiency factors. The
// model reproduces, at the paper's scales:
//   * Table 4  — TTFT breakdown (attention share 32% at 32K → ~88% at 1M)
//     on the paper's 8xA100 TP=4/PP=2 serving setup;
//   * Fig 5/6  — attention latency and TTFT for SDPA / FlashAttention2 /
//     SampleAttention on a single A100, 8K → 1M, where SampleAttention's
//     time is (Stage-1 sampling) + (filtering) + (sparse kernel ∝ density).
//
// Densities are not assumed: benches measure them with the real
// SampleAttention planner on the synthetic substrate and feed them in. For
// lengths too long to plan directly, extrapolate_kept_fraction applies the
// paper's observed scaling law (each doubling of length drops the kept
// fraction by ~20%, Appendix A.4) — the same methodology the paper itself
// uses to scale Fig 6 to 1M.
#pragma once

#include "core/tensor.h"
#include "model/synthetic_model.h"

namespace sattn {

struct GpuSpec {
  double peak_flops = 312e12;  // A100 fp16 tensor core peak
  double hbm_bw = 2.0e12;      // bytes/s
  int device_count = 1;        // effective parallel devices
  double attn_efficiency = 0.62;    // fraction of peak for fused attention
  double sparse_efficiency = 0.45;  // sparse/gather kernels run less efficiently
  double gemm_efficiency = 0.70;    // projection / MLP GEMMs
  // Multiplier on non-attention time covering framework, communication and
  // kernel-launch overheads (calibrated against the paper's Table 4).
  double framework_overhead = 3.2;
  double bytes_per_element = 2.0;   // fp16
  // Small-operator utilization: Stage-1/2's bmm+sort kernels run far below
  // peak at short sequence lengths (the paper's explanation for
  // SampleAttention losing to FlashAttention2 below ~16K). Utilization is
  // modeled as S / (S + small_op_halfpoint).
  double small_op_halfpoint = 24576.0;
  // Fixed launch/setup cost per (layer, head) for the Stage-2 filtering ops.
  double launch_overhead = 10e-6;
};

// Single A100-80GB, the paper's Section 5.4 microbenchmark device.
GpuSpec a100_single();

// The paper's Table 4 serving setup: 8xA100, TP=4 x PP=2.
GpuSpec a100_cluster();

// ---- attention kernels (whole model: all layers and heads, batch 1) ----

// Causal attention FLOPs for the full model at sequence length s
// (QK^T + PV over the causal half of the grid, all heads and layers).
double attention_flops(const ModelConfig& model, Index s);

// FlashAttention2: compute-bound, no quadratic memory traffic.
double flash_attention_seconds(const ModelConfig& model, Index s, const GpuSpec& gpu);

// PyTorch SDPA (materializes the score matrix): pays quadratic HBM traffic,
// so it is bandwidth-bound at long sequence lengths.
double sdpa_seconds(const ModelConfig& model, Index s, const GpuSpec& gpu);

// Fraction of the causal grid covered by a local-window band of width
// ceil(window_ratio * s) — the irreducible dense part of SampleAttention's
// mask. Constant in s for a fixed ratio (~2 * ratio), so it caps the
// achievable speedup; only the stripe part of the density shrinks with
// length.
double window_band_density(Index s, double window_ratio);

struct SampleAttentionCost {
  double sampling_seconds = 0.0;  // Stage-1 fused bmm+softmax+reduction
  double filter_seconds = 0.0;    // Stage-2 sort + searchsorted + gather
  double sparse_seconds = 0.0;    // sparse flash kernel
  double total_seconds = 0.0;
  double sampling_share = 0.0;    // Fig 5(b)
};

// kept_density: fraction of causal score entries retained by the merged
// mask; overhead_density: Stage-1 sampled fraction (both measured from
// SamplePlan on the substrate). window_density (<= kept_density) is the
// contiguous window-band part, which runs at dense-kernel efficiency; the
// remaining stripe part pays the gather penalty. Pass 0 to treat the whole
// mask as scattered (conservative).
SampleAttentionCost sample_attention_seconds(const ModelConfig& model, Index s, const GpuSpec& gpu,
                                             double kept_density, double overhead_density,
                                             double window_density = 0.0);

// ---- whole-model TTFT ----

// Non-attention prefill time: QKV/out projections + gated MLP GEMMs.
double linear_parts_seconds(const ModelConfig& model, Index s, const GpuSpec& gpu);

double ttft_seconds(const ModelConfig& model, Index s, const GpuSpec& gpu,
                    double attention_seconds);

// ---- memory accounting (Appendix A.6: ">=128K requests cause memory
// issues ... chunking along the sequence dimension") ----

// Peak prefill memory in bytes for one request: weights are excluded
// (constant); counts KV cache, activations for one chunk of queries, and —
// for the SDPA-style path — the materialized score block. chunk = 0 means
// unchunked (chunk = s).
double peak_prefill_bytes(const ModelConfig& model, Index s, Index chunk, bool materialize_scores,
                          double bytes_per_element = 2.0);

// ---- sparsity scaling (Appendix A.4) ----

// Extrapolates a kept fraction measured at s_measured to length s_target
// using the paper's ~20%-per-doubling reduction; never below `floor`.
double extrapolate_kept_fraction(double kept_at_measured, Index s_measured, Index s_target,
                                 double per_doubling = 0.80, double floor = 0.005);

}  // namespace sattn
