#include "perf/model_validation.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "obs/accounting.h"
#include "obs/metrics.h"

namespace sattn::perf {
namespace {

bool is_validated_kernel(const std::string& kernel) {
  return kernel == "full" || kernel == "flash";
}

double rel_error(double accounted, double model) {
  if (model <= 0.0) return accounted > 0.0 ? 1.0 : 0.0;
  return std::abs(accounted - model) / model;
}

}  // namespace

double model_causal_pairs(long long sq, long long sk) {
  const double q = static_cast<double>(sq), k = static_cast<double>(sk);
  if (q <= 0.0 || k <= 0.0) return 0.0;
  return q * (k - q) + 0.5 * q * q;
}

double model_attention_flops(long long sq, long long sk, long long head_dim) {
  return 4.0 * static_cast<double>(head_dim) * model_causal_pairs(sq, sk);
}

double model_attention_bytes(const std::string& kernel, long long sq, long long sk,
                             long long head_dim) {
  const double d = static_cast<double>(head_dim);
  const double pairs = model_causal_pairs(sq, sk);
  double bytes =
      obs::kAcctBytesPerElement * (2.0 * static_cast<double>(sq) * d + 2.0 * d * pairs);
  if (kernel == "full") {
    // Materialized score buffer: one [sq x sk] write pass plus the causal
    // prefix read back (matches the accounting in full_attention.cpp).
    bytes += obs::kAcctBytesPerElement *
             (static_cast<double>(sq) * static_cast<double>(sk) + pairs);
  }
  return bytes;
}

ModelErrorReport validate_cost_model() {
  std::map<std::string, KernelModelError> by_kernel;
  for (const auto& [shape, usage] : obs::ResourceAccountant::global().shapes()) {
    if (!is_validated_kernel(shape.kernel)) continue;
    KernelModelError& e = by_kernel[shape.kernel];
    e.kernel = shape.kernel;
    e.accounted_flops += usage.flops;
    e.accounted_bytes += usage.bytes;
    e.model_flops += usage.calls * model_attention_flops(shape.sq, shape.sk, shape.head_dim);
    e.model_bytes +=
        usage.calls * model_attention_bytes(shape.kernel, shape.sq, shape.sk, shape.head_dim);
  }
  ModelErrorReport report;
  for (auto& [kernel, e] : by_kernel) {
    e.flops_rel = rel_error(e.accounted_flops, e.model_flops);
    e.bytes_rel = rel_error(e.accounted_bytes, e.model_bytes);
    report.max_rel = std::max({report.max_rel, e.flops_rel, e.bytes_rel});
    report.kernels.push_back(std::move(e));
  }
  return report;
}

void publish_model_error() {
  if (!obs::enabled()) return;
  const ModelErrorReport report = validate_cost_model();
  auto& reg = obs::MetricsRegistry::global();
  for (const KernelModelError& e : report.kernels) {
    const std::string prefix = "perf.model_error." + e.kernel + ".";
    reg.gauge(prefix + "flops_rel").set(e.flops_rel);
    reg.gauge(prefix + "bytes_rel").set(e.bytes_rel);
  }
  // Always present so the regression gate has something to check even when
  // a bench ran no dense kernel.
  reg.gauge("perf.model_error.max_rel").set(report.max_rel);
}

}  // namespace sattn::perf
