#include "perf/cost_model.h"

#include <algorithm>
#include <cmath>

namespace sattn {

GpuSpec a100_single() {
  GpuSpec g;
  // Single-device microbenchmark setup (Section 5.4): no TP/PP communication,
  // far less framework overhead than the Table 4 serving stack.
  g.framework_overhead = 1.35;
  return g;
}

GpuSpec a100_cluster() {
  GpuSpec g;
  g.device_count = 8;  // TP=4 x PP=2; sequence-chunked prefill keeps all busy
  g.attn_efficiency = 0.60;
  g.gemm_efficiency = 0.65;
  g.framework_overhead = 3.6;
  return g;
}

namespace {

double compute_rate(const GpuSpec& g, double eff) {
  return g.peak_flops * eff * static_cast<double>(g.device_count);
}

double bw_rate(const GpuSpec& g) { return g.hbm_bw * static_cast<double>(g.device_count); }

}  // namespace

double attention_flops(const ModelConfig& model, Index s) {
  // Per (layer, head): QK^T and PV each cost 2*d flops per causal pair,
  // and there are s^2/2 causal pairs.
  const double pairs = 0.5 * static_cast<double>(s) * static_cast<double>(s);
  return static_cast<double>(model.n_layers) * static_cast<double>(model.n_heads) * pairs * 4.0 *
         static_cast<double>(model.head_dim);
}

double flash_attention_seconds(const ModelConfig& model, Index s, const GpuSpec& gpu) {
  const double flops = attention_flops(model, s);
  // I/O: Q,K,V read + O write per layer; KV shared across GQA groups.
  const double qo = 2.0 * static_cast<double>(s) * static_cast<double>(model.n_heads) *
                    static_cast<double>(model.head_dim);
  const double kv = 2.0 * static_cast<double>(s) * static_cast<double>(model.n_kv_heads) *
                    static_cast<double>(model.head_dim);
  const double bytes = static_cast<double>(model.n_layers) * (qo + kv) * gpu.bytes_per_element;
  return std::max(flops / compute_rate(gpu, gpu.attn_efficiency), bytes / bw_rate(gpu));
}

double sdpa_seconds(const ModelConfig& model, Index s, const GpuSpec& gpu) {
  const double flops = attention_flops(model, s);
  // SDPA materializes the [s x s] score matrix per head: written once after
  // QK^T, read again by softmax (read+write), read by PV — ~4 passes.
  const double score_bytes = static_cast<double>(model.n_layers) *
                             static_cast<double>(model.n_heads) * 0.5 * static_cast<double>(s) *
                             static_cast<double>(s) * gpu.bytes_per_element * 4.0;
  return std::max(flops / compute_rate(gpu, gpu.attn_efficiency), score_bytes / bw_rate(gpu));
}

double window_band_density(Index s, double window_ratio) {
  const double w = std::ceil(window_ratio * static_cast<double>(s));
  const double sd = static_cast<double>(s);
  if (w >= sd) return 1.0;
  const double kept = 0.5 * w * (w + 1.0) + (sd - w) * w;
  return kept / (0.5 * sd * (sd + 1.0));
}

SampleAttentionCost sample_attention_seconds(const ModelConfig& model, Index s, const GpuSpec& gpu,
                                             double kept_density, double overhead_density,
                                             double window_density) {
  kept_density = std::clamp(kept_density, 0.0, 1.0);
  overhead_density = std::clamp(overhead_density, 0.0, 1.0);
  window_density = std::clamp(window_density, 0.0, kept_density);
  const double flops = attention_flops(model, s);
  // Stage-1/2 run as a chain of small operators; their utilization climbs
  // with sequence length (the reason sampling overhead dominates at short
  // lengths, Section 5.4).
  const double util =
      static_cast<double>(s) / (static_cast<double>(s) + gpu.small_op_halfpoint);
  SampleAttentionCost c;
  // Stage-1 is a dense (sampled-rows x keys) fused kernel.
  c.sampling_seconds =
      overhead_density * flops / (compute_rate(gpu, gpu.attn_efficiency) * util);
  // Stage-2: sort + prefix + searchsorted over Sk per head per layer —
  // bandwidth-bound streaming of O(Sk) elements a few (~6) times, plus a
  // fixed launch cost per (layer, head).
  const double filter_bytes = static_cast<double>(model.n_layers) *
                              static_cast<double>(model.n_heads) * static_cast<double>(s) * 4.0 *
                              6.0;
  c.filter_seconds = filter_bytes / (bw_rate(gpu) * util) +
                     gpu.launch_overhead * static_cast<double>(model.n_layers) *
                         static_cast<double>(model.n_heads) /
                         static_cast<double>(gpu.device_count);
  // Sparse kernel: the contiguous window band runs at dense efficiency;
  // the scattered stripe remainder pays the gather penalty.
  c.sparse_seconds = window_density * flops / compute_rate(gpu, gpu.attn_efficiency) +
                     (kept_density - window_density) * flops /
                         compute_rate(gpu, gpu.sparse_efficiency);
  c.total_seconds = c.sampling_seconds + c.filter_seconds + c.sparse_seconds;
  c.sampling_share =
      c.total_seconds > 0.0 ? (c.sampling_seconds + c.filter_seconds) / c.total_seconds : 0.0;
  return c;
}

double linear_parts_seconds(const ModelConfig& model, Index s, const GpuSpec& gpu) {
  const double h = static_cast<double>(model.hidden_dim);
  const double f = static_cast<double>(model.ffn_dim);
  const double kv = static_cast<double>(model.n_kv_heads) * static_cast<double>(model.head_dim);
  const double sd = static_cast<double>(s);
  // Per layer: QKV projection, attention output projection, gated MLP
  // (gate + up + down).
  const double qkv = 2.0 * sd * h * (h + 2.0 * kv);
  const double out = 2.0 * sd * h * h;
  const double mlp = 3.0 * 2.0 * sd * h * f;
  const double flops = static_cast<double>(model.n_layers) * (qkv + out + mlp);
  return gpu.framework_overhead * flops / compute_rate(gpu, gpu.gemm_efficiency);
}

double ttft_seconds(const ModelConfig& model, Index s, const GpuSpec& gpu,
                    double attention_seconds) {
  return attention_seconds + linear_parts_seconds(model, s, gpu);
}

double peak_prefill_bytes(const ModelConfig& model, Index s, Index chunk, bool materialize_scores,
                          double bytes_per_element) {
  if (chunk <= 0 || chunk > s) chunk = s;
  const double sd = static_cast<double>(s);
  const double cd = static_cast<double>(chunk);
  const double h = static_cast<double>(model.hidden_dim);
  const double kv_dim =
      static_cast<double>(model.n_kv_heads) * static_cast<double>(model.head_dim);
  // KV cache: all layers, full sequence (this is what cannot be chunked away).
  const double kv_cache = static_cast<double>(model.n_layers) * 2.0 * sd * kv_dim;
  // Activations: one chunk's hidden states through a layer (x few buffers).
  const double activations = 4.0 * cd * h;
  // SDPA materializes a [chunk x s] score block per head of one layer.
  const double scores = materialize_scores
                            ? static_cast<double>(model.n_heads) * cd * sd
                            : 0.0;
  return (kv_cache + activations + scores) * bytes_per_element;
}

double extrapolate_kept_fraction(double kept_at_measured, Index s_measured, Index s_target,
                                 double per_doubling, double floor) {
  if (s_target <= s_measured) return kept_at_measured;
  const double doublings = std::log2(static_cast<double>(s_target) / static_cast<double>(s_measured));
  return std::max(floor, kept_at_measured * std::pow(per_doubling, doublings));
}

}  // namespace sattn
