#include "perf/latency_report.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace sattn {

TextTable::TextTable(std::vector<std::string> header) { rows_.push_back(std::move(header)); }

void TextTable::add_row(std::vector<std::string> cells) { rows_.push_back(std::move(cells)); }

std::string TextTable::to_string() const {
  std::vector<std::size_t> widths;
  for (const auto& row : rows_) {
    if (widths.size() < row.size()) widths.resize(row.size(), 0);
    for (std::size_t c = 0; c < row.size(); ++c) widths[c] = std::max(widths[c], row[c].size());
  }
  std::ostringstream out;
  for (std::size_t r = 0; r < rows_.size(); ++r) {
    for (std::size_t c = 0; c < rows_[r].size(); ++c) {
      out << rows_[r][c];
      if (c + 1 < rows_[r].size()) {
        out << std::string(widths[c] - rows_[r][c].size() + 2, ' ');
      }
    }
    out << '\n';
    if (r == 0) {
      std::size_t total = 0;
      for (std::size_t c = 0; c < widths.size(); ++c) total += widths[c] + (c + 1 < widths.size() ? 2 : 0);
      out << std::string(total, '-') << '\n';
    }
  }
  return out.str();
}

void TextTable::print() const { std::fputs(to_string().c_str(), stdout); }

std::string fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string fmt_pct(double fraction, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f%%", precision, 100.0 * fraction);
  return buf;
}

std::string fmt_ms(double seconds, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, 1000.0 * seconds);
  return buf;
}

std::string fmt_speedup(double x, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*fx", precision, x);
  return buf;
}

}  // namespace sattn
