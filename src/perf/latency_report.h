// Text-table reporting shared by the bench binaries, plus a wall-clock
// timer for the CPU-kernel measurements.
#pragma once

#include <chrono>
#include <string>
#include <vector>

namespace sattn {

class WallTimer {
 public:
  WallTimer() : start_(clock::now()) {}
  void reset() { start_ = clock::now(); }
  double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

// Fixed-width table printer: benches print the same rows/series the paper's
// tables and figures report.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);
  void add_row(std::vector<std::string> cells);
  std::string to_string() const;
  void print() const;

 private:
  std::vector<std::vector<std::string>> rows_;
};

// Number formatting helpers.
std::string fmt(double v, int precision = 2);
std::string fmt_pct(double fraction, int precision = 1);   // 0.957 -> "95.7%"
std::string fmt_ms(double seconds, int precision = 1);     // 0.0123 -> "12.3"
std::string fmt_speedup(double x, int precision = 2);      // 2.2 -> "2.20x"

}  // namespace sattn
