// Cross-validation of the analytic A100 cost model against the resource
// accountant: for every dense-kernel shape a bench actually ran, re-derive
// the cost model's FLOP/byte prediction and compare it with what the kernel
// accounted (obs/accounting.h), publishing the relative error as
// `perf.model_error.*` gauges. tools/bench_diff gates on those gauges, so
// a kernel drifting away from the model the Table 4 / Fig 5 reproduction is
// built on fails the regression gate instead of silently invalidating the
// headline numbers.
//
// Only the dense kernels (`full`, `flash`) are validated: their analytic
// work is a pure function of shape (the continuum causal count sq*(sk-sq) +
// sq^2/2 that perf::attention_flops uses). Sparse kernels' predictions take
// the *measured* density as input, so a sparse accounted-vs-model check
// would be circular; sparse-vs-dense consistency is covered by the
// accounting property tests instead.
#pragma once

#include <string>
#include <vector>

namespace sattn::perf {

// Continuum causal-pair count for a [sq x sk] dense causal call — exactly
// attention_flops' per-(layer, head) pair count at sq == sk == s. Differs
// from the exact integer count by sq/2 pairs (~1/sk relative), which is why
// dense accounted FLOPs match within 1% for S >= 1K.
double model_causal_pairs(long long sq, long long sk);

// Analytic per-call counts under the accounting conventions of
// obs/accounting.h (fp32 substrate, 4*d flops per pair, Q/O + K/V element
// streams; `full` adds the materialized-score traffic).
double model_attention_flops(long long sq, long long sk, long long head_dim);
double model_attention_bytes(const std::string& kernel, long long sq, long long sk,
                             long long head_dim);

struct KernelModelError {
  std::string kernel;
  double accounted_flops = 0.0;
  double model_flops = 0.0;
  double accounted_bytes = 0.0;
  double model_bytes = 0.0;
  double flops_rel = 0.0;  // |accounted - model| / model
  double bytes_rel = 0.0;
};

struct ModelErrorReport {
  std::vector<KernelModelError> kernels;
  double max_rel = 0.0;  // max over every flops_rel/bytes_rel; 0 when empty
};

// Sweeps the accountant's per-shape entries for the dense kernels and
// aggregates accounted vs. model totals per kernel.
ModelErrorReport validate_cost_model();

// Runs validate_cost_model() and publishes the result as gauges:
// `perf.model_error.<kernel>.flops_rel` / `.bytes_rel` per validated
// kernel, and `perf.model_error.max_rel` ALWAYS (0 when nothing dense ran),
// so every bench report carries the gauge the regression gate checks.
// No-op when collection is disabled.
void publish_model_error();

}  // namespace sattn::perf
