#include "io/config_io.h"

#include <cstdio>
#include <fstream>
#include <sstream>

namespace sattn {
namespace {

std::string trim(const std::string& s) {
  const auto b = s.find_first_not_of(" \t\r\n");
  if (b == std::string::npos) return "";
  const auto e = s.find_last_not_of(" \t\r\n");
  return s.substr(b, e - b + 1);
}

}  // namespace

void Properties::set(const std::string& key, const std::string& value) { values_[key] = value; }

void Properties::set(const std::string& key, double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.12g", value);
  values_[key] = buf;
}

void Properties::set(const std::string& key, Index value) {
  values_[key] = std::to_string(value);
}

void Properties::set(const std::string& key, bool value) {
  values_[key] = value ? "true" : "false";
}

std::optional<std::string> Properties::get(const std::string& key) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return std::nullopt;
  return it->second;
}

std::optional<double> Properties::get_double(const std::string& key) const {
  const auto s = get(key);
  if (!s) return std::nullopt;
  char* end = nullptr;
  const double v = std::strtod(s->c_str(), &end);
  if (end == s->c_str() || *end != '\0') return std::nullopt;
  return v;
}

std::optional<Index> Properties::get_index(const std::string& key) const {
  const auto s = get(key);
  if (!s) return std::nullopt;
  char* end = nullptr;
  const long long v = std::strtoll(s->c_str(), &end, 10);
  if (end == s->c_str() || *end != '\0') return std::nullopt;
  return static_cast<Index>(v);
}

std::optional<bool> Properties::get_bool(const std::string& key) const {
  const auto s = get(key);
  if (!s) return std::nullopt;
  if (*s == "true" || *s == "1") return true;
  if (*s == "false" || *s == "0") return false;
  return std::nullopt;
}

std::string Properties::serialize() const {
  std::ostringstream out;
  out << "# sattn properties\n";
  for (const auto& [k, v] : values_) out << k << " = " << v << "\n";
  return out.str();
}

bool Properties::parse(const std::string& text) {
  std::istringstream in(text);
  std::string line;
  bool ok = true;
  while (std::getline(in, line)) {
    const std::string t = trim(line);
    if (t.empty() || t[0] == '#') continue;
    const auto eq = t.find('=');
    if (eq == std::string::npos) {
      ok = false;
      continue;
    }
    const std::string key = trim(t.substr(0, eq));
    const std::string value = trim(t.substr(eq + 1));
    if (key.empty()) {
      ok = false;
      continue;
    }
    values_[key] = value;
  }
  return ok;
}

bool Properties::save(const std::string& path) const {
  std::ofstream f(path, std::ios::binary);
  if (!f) return false;
  f << serialize();
  return static_cast<bool>(f);
}

bool Properties::load(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f) return false;
  std::ostringstream ss;
  ss << f.rdbuf();
  return parse(ss.str());
}

Properties to_properties(const SampleAttentionConfig& cfg) {
  Properties p;
  p.set("alpha", cfg.alpha);
  p.set("row_ratio", cfg.row_ratio);
  p.set("window_ratio", cfg.window_ratio);
  p.set("sampling", cfg.sampling == SamplingPolicy::kStride   ? std::string("stride")
                    : cfg.sampling == SamplingPolicy::kRandom ? std::string("random")
                                                              : std::string("tail"));
  p.set("filter", cfg.filter == FilterMode::kBucketed ? std::string("bucketed")
                                                      : std::string("exact"));
  p.set("detect_diagonals", cfg.detect_diagonals);
  p.set("diag_min_mass", cfg.diag_min_mass);
  p.set("seed", static_cast<Index>(cfg.seed));
  return p;
}

std::optional<SampleAttentionConfig> config_from_properties(const Properties& props) {
  SampleAttentionConfig cfg;
  const auto apply_double = [&](const char* key, double* out) {
    if (const auto raw = props.get(key)) {
      const auto v = props.get_double(key);
      if (!v) return false;
      *out = *v;
    }
    return true;
  };
  if (!apply_double("alpha", &cfg.alpha)) return std::nullopt;
  if (!apply_double("row_ratio", &cfg.row_ratio)) return std::nullopt;
  if (!apply_double("window_ratio", &cfg.window_ratio)) return std::nullopt;
  if (!apply_double("diag_min_mass", &cfg.diag_min_mass)) return std::nullopt;
  if (const auto s = props.get("sampling")) {
    if (*s == "stride") cfg.sampling = SamplingPolicy::kStride;
    else if (*s == "random") cfg.sampling = SamplingPolicy::kRandom;
    else if (*s == "tail") cfg.sampling = SamplingPolicy::kTailOnly;
    else return std::nullopt;
  }
  if (const auto s = props.get("filter")) {
    if (*s == "bucketed") cfg.filter = FilterMode::kBucketed;
    else if (*s == "exact") cfg.filter = FilterMode::kExact;
    else return std::nullopt;
  }
  if (props.get("detect_diagonals")) {
    const auto b = props.get_bool("detect_diagonals");
    if (!b) return std::nullopt;
    cfg.detect_diagonals = *b;
  }
  if (props.get("seed")) {
    const auto v = props.get_index("seed");
    if (!v) return std::nullopt;
    cfg.seed = static_cast<std::uint64_t>(*v);
  }
  if (cfg.alpha <= 0.0 || cfg.alpha > 1.0 || cfg.row_ratio <= 0.0 || cfg.row_ratio > 1.0 ||
      cfg.window_ratio < 0.0 || cfg.window_ratio > 1.0) {
    return std::nullopt;
  }
  return cfg;
}

bool save_config(const SampleAttentionConfig& cfg, const std::string& path) {
  return to_properties(cfg).save(path);
}

std::optional<SampleAttentionConfig> load_config(const std::string& path) {
  Properties p;
  if (!p.load(path)) return std::nullopt;
  return config_from_properties(p);
}

}  // namespace sattn
