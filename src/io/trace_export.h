// Chrome trace-event export (the `chrome://tracing` / Perfetto "JSON Array
// with metadata" format): spans become "ph":"X" complete events, counters
// become a final "ph":"C" counter sample. Load the written file in
// chrome://tracing or https://ui.perfetto.dev to see the per-thread span
// timeline of a bench run.
#pragma once

#include <span>
#include <string>

#include "obs/trace.h"

namespace sattn {

// Serializes the given spans/counters as a Chrome trace-events JSON object.
std::string chrome_trace_json(std::span<const obs::SpanRecord> spans,
                              std::span<const obs::CounterValue> counters);

// Snapshots the global obs::Collector and writes it to `path`. Returns false
// if the file could not be written. The file is valid JSON even when no
// spans were recorded.
bool write_chrome_trace(const std::string& path);

}  // namespace sattn
