#include "io/json.h"

#include <charconv>
#include <cmath>
#include <cstdlib>

namespace sattn {
namespace {

const JsonValue& null_sentinel() {
  static const JsonValue* v = new JsonValue();
  return *v;
}

}  // namespace

JsonValue& JsonValue::push_back(JsonValue v) {
  kind_ = Kind::kArray;
  items_.push_back(std::move(v));
  return items_.back();
}

const JsonValue& JsonValue::at(std::size_t i) const {
  if (!is_array() || i >= items_.size()) return null_sentinel();
  return items_[i];
}

JsonValue& JsonValue::set(const std::string& key, JsonValue v) {
  kind_ = Kind::kObject;
  for (auto& [k, existing] : members_) {
    if (k == key) {
      existing = std::move(v);
      return existing;
    }
  }
  members_.emplace_back(key, std::move(v));
  return members_.back().second;
}

const JsonValue& JsonValue::get(const std::string& key) const {
  for (const auto& [k, v] : members_) {
    if (k == key) return v;
  }
  return null_sentinel();
}

bool JsonValue::has(const std::string& key) const {
  for (const auto& [k, v] : members_) {
    if (k == key) return true;
  }
  return false;
}

std::string json_escape_string(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (unsigned char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(static_cast<char>(c));
        }
    }
  }
  return out;
}

std::string json_number(double v) {
  if (!std::isfinite(v)) v = 0.0;
  if (v == 0.0) return "0";  // also canonicalizes -0
  char buf[32];
  const auto res = std::to_chars(buf, buf + sizeof(buf), v);
  return std::string(buf, res.ptr);
}

void JsonValue::write(std::string& out, int indent, int depth) const {
  const bool pretty = indent >= 0;
  const auto newline_pad = [&](int d) {
    if (!pretty) return;
    out.push_back('\n');
    out.append(static_cast<std::size_t>(indent * d), ' ');
  };
  switch (kind_) {
    case Kind::kNull: out += "null"; break;
    case Kind::kBool: out += bool_ ? "true" : "false"; break;
    case Kind::kNumber: out += json_number(num_); break;
    case Kind::kString:
      out.push_back('"');
      out += json_escape_string(str_);
      out.push_back('"');
      break;
    case Kind::kArray:
      out.push_back('[');
      for (std::size_t i = 0; i < items_.size(); ++i) {
        if (i > 0) out.push_back(',');
        newline_pad(depth + 1);
        items_[i].write(out, indent, depth + 1);
      }
      if (!items_.empty()) newline_pad(depth);
      out.push_back(']');
      break;
    case Kind::kObject:
      out.push_back('{');
      for (std::size_t i = 0; i < members_.size(); ++i) {
        if (i > 0) out.push_back(',');
        newline_pad(depth + 1);
        out.push_back('"');
        out += json_escape_string(members_[i].first);
        out += pretty ? "\": " : "\":";
        members_[i].second.write(out, indent, depth + 1);
      }
      if (!members_.empty()) newline_pad(depth);
      out.push_back('}');
      break;
  }
}

std::string JsonValue::to_string(int indent) const {
  std::string out;
  write(out, indent, 0);
  if (indent >= 0) out.push_back('\n');
  return out;
}

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : s_(text) {}

  StatusOr<JsonValue> parse() {
    skip_ws();
    auto v = parse_value();
    if (!v.ok()) return v;
    skip_ws();
    if (pos_ != s_.size()) return fail("trailing characters after JSON value");
    return v;
  }

 private:
  Status fail(const std::string& what) const {
    return Status(StatusCode::kInvalidArgument,
                  detail::status_msg("json parse error at byte ", pos_, ": ", what));
  }

  void skip_ws() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' || s_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool consume(char c) {
    if (pos_ < s_.size() && s_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool literal(const char* lit) {
    std::size_t n = 0;
    while (lit[n] != '\0') ++n;
    if (s_.compare(pos_, n, lit) != 0) return false;
    pos_ += n;
    return true;
  }

  StatusOr<JsonValue> parse_value() {
    if (pos_ >= s_.size()) return fail("unexpected end of input");
    switch (s_[pos_]) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': {
        auto str = parse_string();
        if (!str.ok()) return str.status();
        return JsonValue(std::move(str).value());
      }
      case 't':
        if (literal("true")) return JsonValue(true);
        return fail("bad literal");
      case 'f':
        if (literal("false")) return JsonValue(false);
        return fail("bad literal");
      case 'n':
        if (literal("null")) return JsonValue();
        return fail("bad literal");
      default: return parse_number();
    }
  }

  StatusOr<std::string> parse_string() {
    if (!consume('"')) return fail("expected '\"'");
    std::string out;
    while (pos_ < s_.size()) {
      const char c = s_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= s_.size()) break;
      const char esc = s_[pos_++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > s_.size()) return fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = s_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code += static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code += static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code += static_cast<unsigned>(h - 'A' + 10);
            else return fail("bad hex digit in \\u escape");
          }
          // UTF-8 encode (BMP only; surrogate pairs unsupported by design).
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default: return fail("bad escape character");
      }
    }
    return fail("unterminated string");
  }

  StatusOr<JsonValue> parse_number() {
    const std::size_t start = pos_;
    if (pos_ < s_.size() && (s_[pos_] == '-' || s_[pos_] == '+')) ++pos_;
    while (pos_ < s_.size() &&
           ((s_[pos_] >= '0' && s_[pos_] <= '9') || s_[pos_] == '.' || s_[pos_] == 'e' ||
            s_[pos_] == 'E' || s_[pos_] == '-' || s_[pos_] == '+')) {
      ++pos_;
    }
    if (pos_ == start) return fail("expected a value");
    const std::string tok = s_.substr(start, pos_ - start);
    char* end = nullptr;
    const double v = std::strtod(tok.c_str(), &end);
    if (end == nullptr || *end != '\0') return fail("bad number '" + tok + "'");
    return JsonValue(v);
  }

  StatusOr<JsonValue> parse_array() {
    consume('[');
    JsonValue arr = JsonValue::array();
    skip_ws();
    if (consume(']')) return arr;
    while (true) {
      skip_ws();
      auto v = parse_value();
      if (!v.ok()) return v;
      arr.push_back(std::move(v).value());
      skip_ws();
      if (consume(']')) return arr;
      if (!consume(',')) return fail("expected ',' or ']'");
    }
  }

  StatusOr<JsonValue> parse_object() {
    consume('{');
    JsonValue obj = JsonValue::object();
    skip_ws();
    if (consume('}')) return obj;
    while (true) {
      skip_ws();
      auto key = parse_string();
      if (!key.ok()) return key.status();
      skip_ws();
      if (!consume(':')) return fail("expected ':'");
      skip_ws();
      auto v = parse_value();
      if (!v.ok()) return v;
      obj.set(std::move(key).value(), std::move(v).value());
      skip_ws();
      if (consume('}')) return obj;
      if (!consume(',')) return fail("expected ',' or '}'");
    }
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

}  // namespace

StatusOr<JsonValue> parse_json(const std::string& text) { return Parser(text).parse(); }

}  // namespace sattn
