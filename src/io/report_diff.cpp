#include "io/report_diff.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>
#include <sstream>

namespace sattn {
namespace {

void count_verdict(DiffResult& result, const DiffEntry& e) {
  switch (e.verdict) {
    case DiffVerdict::kRegression: ++result.regressions; break;
    case DiffVerdict::kImprovement: ++result.improvements; break;
    case DiffVerdict::kWithinNoise: ++result.within_noise; break;
    default: break;
  }
}

// Lower-is-better comparison under a relative threshold with an absolute
// noise floor.
DiffVerdict latency_verdict(double base, double cand, const DiffOptions& opts) {
  if (std::max(base, cand) < opts.latency_min_us) return DiffVerdict::kWithinNoise;
  if (base <= 0.0) return DiffVerdict::kWithinNoise;
  const double rel = cand / base - 1.0;
  if (rel > opts.latency_rel_threshold) return DiffVerdict::kRegression;
  if (rel < -opts.latency_rel_threshold) return DiffVerdict::kImprovement;
  return DiffVerdict::kWithinNoise;
}

// Higher-is-better comparison under an absolute threshold.
DiffVerdict quality_verdict(double base, double cand, const DiffOptions& opts) {
  const double delta = cand - base;
  if (delta < -opts.quality_abs_threshold) return DiffVerdict::kRegression;
  if (delta > opts.quality_abs_threshold) return DiffVerdict::kImprovement;
  return DiffVerdict::kWithinNoise;
}

void diff_bench(const BenchReport& base, const BenchReport& cand, const DiffOptions& opts,
                DiffResult& result) {
  // Latency per span path.
  if (opts.check_latency) {
    std::map<std::string, const obs::SpanStat*> base_by_path;
    for (const obs::SpanStat& s : base.latency) base_by_path[s.path] = &s;
    for (const obs::SpanStat& s : cand.latency) {
      const auto it = base_by_path.find(s.path);
      DiffEntry e;
      e.bench = base.name;
      e.metric = "latency:" + s.path;
      e.candidate = s.mean_us;
      if (it == base_by_path.end()) {
        e.verdict = DiffVerdict::kNew;
      } else {
        e.baseline = it->second->mean_us;
        e.verdict = latency_verdict(e.baseline, e.candidate, opts);
        base_by_path.erase(it);
      }
      count_verdict(result, e);
      result.entries.push_back(std::move(e));
    }
    for (const auto& [path, s] : base_by_path) {
      DiffEntry e;
      e.bench = base.name;
      e.metric = "latency:" + path;
      e.baseline = s->mean_us;
      e.verdict = DiffVerdict::kMissing;
      result.entries.push_back(std::move(e));
    }
  }

  // Gauges: quality metrics gate; everything else is informational.
  // perf.model_error.* gauges are handled by the candidate-side loop below
  // (they gate on the candidate's absolute value, not the delta).
  for (const auto& [name, base_v] : base.gauges) {
    // Audit gaps contain ".cra" but are lower-is-better deltas, not quality
    // gauges — they get their own candidate-side absolute gate below.
    if (is_model_error_metric(name) || is_engine_error_metric(name) ||
        is_audit_gap_metric(name) || is_prefix_ttft_metric(name)) {
      continue;
    }
    const auto it = cand.gauges.find(name);
    DiffEntry e;
    e.bench = base.name;
    e.metric = "gauge:" + name;
    e.baseline = base_v;
    e.quality = is_quality_metric(name);
    if (it == cand.gauges.end()) {
      e.verdict = DiffVerdict::kMissing;
    } else {
      e.candidate = it->second;
      e.verdict = e.quality ? quality_verdict(base_v, it->second, opts)
                            : DiffVerdict::kWithinNoise;
    }
    count_verdict(result, e);
    result.entries.push_back(std::move(e));
  }

  // Cost-model error: candidate-side absolute gate. Driven by the CANDIDATE
  // report so a freshly-instrumented kernel (no baseline gauge yet) is still
  // checked; the baseline value is attached when present, for the rendered
  // table.
  for (const auto& [name, cand_v] : cand.gauges) {
    if (!is_model_error_metric(name)) continue;
    DiffEntry e;
    e.bench = base.name;
    e.metric = "gauge:" + name;
    e.candidate = cand_v;
    const auto it = base.gauges.find(name);
    if (it != base.gauges.end()) e.baseline = it->second;
    e.verdict = cand_v > opts.model_error_threshold ? DiffVerdict::kRegression
                                                    : DiffVerdict::kWithinNoise;
    count_verdict(result, e);
    result.entries.push_back(std::move(e));
  }

  // Simulator-vs-engine prediction error: same candidate-side absolute
  // gate, looser threshold (engine measurements carry real scheduler
  // jitter).
  for (const auto& [name, cand_v] : cand.gauges) {
    if (!is_engine_error_metric(name)) continue;
    DiffEntry e;
    e.bench = base.name;
    e.metric = "gauge:" + name;
    e.candidate = cand_v;
    const auto it = base.gauges.find(name);
    if (it != base.gauges.end()) e.baseline = it->second;
    e.verdict = std::abs(cand_v) > opts.engine_error_threshold ? DiffVerdict::kRegression
                                                               : DiffVerdict::kWithinNoise;
    count_verdict(result, e);
    result.entries.push_back(std::move(e));
  }

  // Online-audit CRA gap: candidate-side absolute gate on the planner's
  // predicted - measured overclaim. Only positive gaps gate — a planner
  // that undersells its quality is conservative, not broken.
  for (const auto& [name, cand_v] : cand.gauges) {
    if (!is_audit_gap_metric(name)) continue;
    DiffEntry e;
    e.bench = base.name;
    e.metric = "gauge:" + name;
    e.candidate = cand_v;
    const auto it = base.gauges.find(name);
    if (it != base.gauges.end()) e.baseline = it->second;
    e.verdict = cand_v > opts.audit_cra_threshold ? DiffVerdict::kRegression
                                                  : DiffVerdict::kWithinNoise;
    count_verdict(result, e);
    result.entries.push_back(std::move(e));
  }

  // Warm-prefix TTFT win: candidate-side MIN FLOOR. The prefix cache's whole
  // value proposition is the TTFT cut on shared-prefix replays; a candidate
  // below the floor regresses even if the baseline was also low. Candidate
  // reports without the gauge (prefix bench not run) are simply not gated.
  for (const auto& [name, cand_v] : cand.gauges) {
    if (!is_prefix_ttft_metric(name)) continue;
    DiffEntry e;
    e.bench = base.name;
    e.metric = "gauge:" + name;
    e.candidate = cand_v;
    e.quality = true;
    const auto it = base.gauges.find(name);
    if (it != base.gauges.end()) e.baseline = it->second;
    e.verdict = cand_v < opts.prefix_ttft_min ? DiffVerdict::kRegression
                                              : DiffVerdict::kWithinNoise;
    count_verdict(result, e);
    result.entries.push_back(std::move(e));
  }

  // Quality histograms: gate on the p50 of coverage-style distributions.
  for (const auto& [name, base_h] : base.histograms) {
    if (!is_quality_metric(name)) continue;
    const auto it = cand.histograms.find(name);
    if (it == cand.histograms.end()) continue;
    DiffEntry e;
    e.bench = base.name;
    e.metric = "hist:" + name + ".p50";
    e.baseline = base_h.p50;
    e.candidate = it->second.p50;
    e.quality = true;
    e.verdict = quality_verdict(e.baseline, e.candidate, opts);
    count_verdict(result, e);
    result.entries.push_back(std::move(e));
  }
}

}  // namespace

const char* diff_verdict_name(DiffVerdict v) {
  switch (v) {
    case DiffVerdict::kRegression: return "REGRESSION";
    case DiffVerdict::kImprovement: return "improvement";
    case DiffVerdict::kWithinNoise: return "within-noise";
    case DiffVerdict::kMissing: return "missing";
    case DiffVerdict::kNew: return "new";
  }
  return "unknown";
}

bool is_quality_metric(const std::string& name) {
  return name.find(".cra") != std::string::npos ||
         name.find("coverage") != std::string::npos ||
         name.find("recovery") != std::string::npos;
}

bool is_model_error_metric(const std::string& name) {
  return name.rfind("perf.model_error.", 0) == 0;
}

bool is_engine_error_metric(const std::string& name) {
  return name.rfind("engine.err.", 0) == 0;
}

bool is_audit_gap_metric(const std::string& name) {
  const std::string suffix = ".cra_gap";
  return name.rfind("audit.", 0) == 0 && name.size() > suffix.size() &&
         name.compare(name.size() - suffix.size(), suffix.size(), suffix) == 0;
}

bool is_prefix_ttft_metric(const std::string& name) {
  return name == "kv.prefix_ttft_reduction";
}

DiffResult diff_reports(const RunReport& baseline, const RunReport& candidate,
                        const DiffOptions& opts) {
  DiffResult result;
  for (const BenchReport& base : baseline.benches) {
    const BenchReport* cand = candidate.find_bench(base.name);
    if (cand == nullptr) {
      DiffEntry e;
      e.bench = base.name;
      e.metric = "bench";
      e.verdict = DiffVerdict::kMissing;
      result.entries.push_back(std::move(e));
      continue;
    }
    diff_bench(base, *cand, opts, result);
  }
  for (const BenchReport& cand : candidate.benches) {
    if (baseline.find_bench(cand.name) == nullptr) {
      DiffEntry e;
      e.bench = cand.name;
      e.metric = "bench";
      e.verdict = DiffVerdict::kNew;
      result.entries.push_back(std::move(e));
    }
  }
  return result;
}

std::string render_diff(const DiffResult& result, bool verbose) {
  std::ostringstream out;
  char buf[320];
  const auto print_entry = [&](const DiffEntry& e) {
    const double rel = e.baseline != 0.0 ? 100.0 * (e.candidate / e.baseline - 1.0) : 0.0;
    std::snprintf(buf, sizeof(buf), "  %-12s %-24s %-48s %14.4g %14.4g %+8.1f%%\n",
                  diff_verdict_name(e.verdict), e.bench.c_str(), e.metric.c_str(), e.baseline,
                  e.candidate, rel);
    out << buf;
  };
  const auto print_matching = [&](DiffVerdict v) {
    for (const DiffEntry& e : result.entries) {
      if (e.verdict == v) print_entry(e);
    }
  };
  out << "bench_diff — verdict / bench / metric / baseline / candidate / delta\n";
  print_matching(DiffVerdict::kRegression);
  print_matching(DiffVerdict::kImprovement);
  if (verbose) {
    print_matching(DiffVerdict::kWithinNoise);
    print_matching(DiffVerdict::kMissing);
    print_matching(DiffVerdict::kNew);
  }
  std::snprintf(buf, sizeof(buf),
                "summary: %zu regression(s), %zu improvement(s), %zu within noise, %zu entries\n",
                result.regressions, result.improvements, result.within_noise,
                result.entries.size());
  out << buf;
  return out.str();
}

}  // namespace sattn
