// Run-report comparator: the regression-gate logic behind tools/bench_diff
// and scripts/check_bench_regression.sh. Compares two RunReports
// bench-by-bench and classifies every shared metric as regression /
// improvement / within-noise, so perf PRs are judged against a committed
// baseline instead of eyeballed console tables.
//
// Two metric families with different rules:
//
//   * Latency (span mean_us per (bench, span path)): relative noise gate.
//     A regression needs BOTH the candidate to exceed baseline by more than
//     `latency_rel_threshold` AND both sides to be above `latency_min_us`
//     (tiny spans are pure noise). Improvements are symmetric.
//   * Quality (gauges whose name contains ".cra" or "recovery", plus
//     histogram p50s of "sattn.plan.coverage"-style coverage metrics):
//     higher is better, and ANY drop beyond `quality_abs_threshold` is a
//     regression regardless of latency settings — the paper's near-lossless
//     contract is not allowed to decay quietly.
//   * Cost-model error (`perf.model_error.*` gauges, published by
//     perf/model_validation.h): gated on the CANDIDATE value alone — a
//     kernel whose accounted FLOPs/bytes drift more than
//     `model_error_threshold` relative from the analytic A100 model is a
//     regression even when the baseline already drifted, because the
//     speedup-projection benches depend on the model staying truthful.
//   * Online-audit CRA gap (`audit.*.cra_gap` gauges, published by the
//     serving engine's QualityAuditor): gated on the candidate value alone —
//     a planner whose predicted CRA overclaims the shadow-measured CRA by
//     more than `audit_cra_threshold` is a regression, baseline or not.
//   * Prefix-cache TTFT win (`kv.prefix_ttft_reduction` gauge, published by
//     bench_serving --prefix): min-floor gate on the candidate value alone —
//     the warm-prefix replay must keep cutting TTFT by at least
//     `prefix_ttft_min` (fraction, default 0.30) vs the cold run. Absent
//     gauge (the bench didn't run) skips the gate entirely.
//
// Other metrics present on only one side are reported as missing/new but
// never gate (bench subsets and new instrumentation must not break the
// gate).
#pragma once

#include <string>
#include <vector>

#include "io/run_report.h"

namespace sattn {

enum class DiffVerdict { kRegression, kImprovement, kWithinNoise, kMissing, kNew };

const char* diff_verdict_name(DiffVerdict v);

struct DiffOptions {
  double latency_rel_threshold = 0.20;  // 20% slower == regression
  double latency_min_us = 500.0;        // ignore spans faster than this
  double quality_abs_threshold = 0.005; // absolute CRA/recovery drop allowed
  double model_error_threshold = 0.05;  // max perf.model_error.* gauge value
  double engine_error_threshold = 1.0;  // max engine.err.* gauge value
  double audit_cra_threshold = 0.05;    // max audit.*.cra_gap (predicted - measured)
  double prefix_ttft_min = 0.30;        // min kv.prefix_ttft_reduction fraction
  bool check_latency = true;            // false: gate on quality only
};

struct DiffEntry {
  std::string bench;
  std::string metric;      // "latency:<path>" | "gauge:<name>" | "hist:<name>.p50"
  double baseline = 0.0;
  double candidate = 0.0;
  DiffVerdict verdict = DiffVerdict::kWithinNoise;
  bool quality = false;    // true for higher-is-better quality metrics
};

struct DiffResult {
  std::vector<DiffEntry> entries;
  std::size_t regressions = 0;
  std::size_t improvements = 0;
  std::size_t within_noise = 0;

  bool has_regression() const { return regressions > 0; }
};

// True when the metric name is gated as a quality (higher-is-better)
// metric: contains ".cra", "coverage", or "recovery".
bool is_quality_metric(const std::string& name);

// True when the gauge is a cost-model validation error (name starts with
// "perf.model_error."): gated on the candidate's absolute value against
// DiffOptions::model_error_threshold.
bool is_model_error_metric(const std::string& name);

// True when the gauge is a simulator-vs-engine prediction error (name
// starts with "engine.err.", published by bench_serving --engine): gated on
// the candidate's absolute value against DiffOptions::engine_error_threshold.
// The default tolerance is loose — the real engine's measured tails carry
// scheduler jitter the simulator cannot model — but a blown-out gauge still
// means the simulator no longer predicts the engine.
bool is_engine_error_metric(const std::string& name);

// True when the gauge is an online-audit predicted-vs-measured CRA gap
// (name starts with "audit." and ends with ".cra_gap", published by the
// QualityAuditor's scorecard — obs/audit.h). Despite containing ".cra",
// these are NOT higher-is-better quality gauges: the gap is
// predicted - measured p50, so a POSITIVE value means the planner
// overclaims quality. Gated on the candidate's value alone against
// DiffOptions::audit_cra_threshold (tools/bench_diff --audit-cra-threshold);
// negative gaps (planner conservative) never gate.
bool is_audit_gap_metric(const std::string& name);

// True for the warm-prefix TTFT-reduction gauge ("kv.prefix_ttft_reduction",
// published by bench_serving --prefix). Higher is better, but unlike the
// quality family it is gated as a candidate-side MIN FLOOR: a candidate below
// DiffOptions::prefix_ttft_min regresses even if the baseline was also low.
// Reports without the gauge never gate (the prefix bench simply didn't run).
bool is_prefix_ttft_metric(const std::string& name);

DiffResult diff_reports(const RunReport& baseline, const RunReport& candidate,
                        const DiffOptions& opts = {});

// Human-readable verdict table: regressions first, then improvements; the
// within-noise bulk is summarized as a count unless `verbose`.
std::string render_diff(const DiffResult& result, bool verbose = false);

}  // namespace sattn
