#include "io/run_report.h"

#include <algorithm>
#include <cstdio>

#ifndef _WIN32
#include <unistd.h>
#endif

#include "core/simd.h"
#include "core/thread_pool.h"
#include "io/json.h"
#include "obs/telemetry.h"
#include "obs/trace.h"

// Build/environment stamps, provided by src/CMakeLists.txt at configure
// time; fall back to "unknown" when building outside the repo's cmake.
#ifndef SATTN_GIT_REV
#define SATTN_GIT_REV "unknown"
#endif
#ifndef SATTN_BUILD_TYPE
#define SATTN_BUILD_TYPE "unknown"
#endif
#ifndef SATTN_COMPILER
#define SATTN_COMPILER "unknown"
#endif
#ifndef SATTN_CXX_FLAGS
#define SATTN_CXX_FLAGS ""
#endif

namespace sattn {
namespace {

bool write_file(const std::string& path, const std::string& content) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  const std::size_t n = std::fwrite(content.data(), 1, content.size(), f);
  const bool ok = n == content.size();
  return (std::fclose(f) == 0) && ok;
}

JsonValue hist_json(const obs::HistogramStats& h) {
  JsonValue o = JsonValue::object();
  o.set("count", h.count);
  o.set("sum", h.sum);
  o.set("min", h.min);
  o.set("max", h.max);
  o.set("p50", h.p50);
  o.set("p90", h.p90);
  o.set("p99", h.p99);
  // v2: exemplar ids linking the tail to a specific observation. Emitted
  // only when the histogram was actually tagged, so untagged histograms
  // serialize byte-identically to schema v1.
  if (!h.max_exemplar.empty()) o.set("max_exemplar", h.max_exemplar);
  if (!h.p99_exemplar.empty()) o.set("p99_exemplar", h.p99_exemplar);
  return o;
}

obs::HistogramStats hist_from_json(const JsonValue& o) {
  obs::HistogramStats h;
  h.count = static_cast<std::size_t>(o.get("count").as_number());
  h.sum = o.get("sum").as_number();
  h.min = o.get("min").as_number();
  h.max = o.get("max").as_number();
  h.p50 = o.get("p50").as_number();
  h.p90 = o.get("p90").as_number();
  h.p99 = o.get("p99").as_number();
  if (o.get("max_exemplar").is_string()) h.max_exemplar = o.get("max_exemplar").as_string();
  if (o.get("p99_exemplar").is_string()) h.p99_exemplar = o.get("p99_exemplar").as_string();
  return h;
}

// Parses "<prefix><layer>H<head>.<metric>" (prefix like "quality.L" or
// "audit.L"); returns false when the gauge name is not in the per-head
// convention.
bool parse_head_metric_name(const std::string& name, const std::string& prefix,
                            long long& layer, long long& head, std::string& metric) {
  if (name.rfind(prefix, 0) != 0) return false;
  const std::size_t h_at = name.find('H', prefix.size());
  const std::size_t dot_at = name.find('.', prefix.size());
  if (h_at == std::string::npos || dot_at == std::string::npos || h_at > dot_at) return false;
  try {
    layer = std::stoll(name.substr(prefix.size(), h_at - prefix.size()));
    head = std::stoll(name.substr(h_at + 1, dot_at - h_at - 1));
  } catch (...) {
    return false;
  }
  metric = name.substr(dot_at + 1);
  return true;
}

// Groups `<prefix><l>H<h>.<metric>` gauges into per-head records.
JsonValue per_head_json(const BenchReport& b, const std::string& prefix) {
  std::map<std::pair<long long, long long>, std::map<std::string, double>> heads;
  for (const auto& [name, v] : b.gauges) {
    long long layer = 0, head = 0;
    std::string metric;
    if (parse_head_metric_name(name, prefix, layer, head, metric)) {
      heads[{layer, head}][metric] = v;
    }
  }
  JsonValue per_head = JsonValue::array();
  for (const auto& [lh, metrics] : heads) {
    JsonValue rec = JsonValue::object();
    rec.set("layer", lh.first);
    rec.set("head", lh.second);
    for (const auto& [metric, v] : metrics) rec.set(metric, v);
    per_head.push_back(std::move(rec));
  }
  return per_head;
}

// Derived view: gauges `quality.L<l>H<h>.*` grouped into per-head records.
JsonValue quality_json(const BenchReport& b) {
  JsonValue q = JsonValue::object();
  q.set("per_head", per_head_json(b, "quality.L"));
  return q;
}

// Derived view: the online quality audit's scorecard (obs/audit.h) —
// per-head *measured* CRA percentiles with the planner's predicted CRA and
// the predicted-vs-measured gap, from the `audit.L<l>H<h>.*` gauges the
// QualityAuditor publishes, plus the run totals (`audit.rows_audited` etc).
// Distinct from the `quality` view: that one is planner-side bookkeeping,
// this one is ground-truth shadow measurement.
JsonValue quality_audit_json(const BenchReport& b, bool& present) {
  JsonValue per_head = per_head_json(b, "audit.L");
  const auto gauge = [&](const char* name, double& out) {
    const auto it = b.gauges.find(name);
    if (it == b.gauges.end()) return false;
    out = it->second;
    return true;
  };
  double rows = 0.0;
  const bool has_totals = gauge("audit.rows_audited", rows);
  present = per_head.size() > 0 || has_totals;
  JsonValue q = JsonValue::object();
  if (!present) return q;
  q.set("per_head", std::move(per_head));
  q.set("rows_audited", rows);
  double v = 0.0;
  if (gauge("audit.chunks_audited", v)) q.set("chunks_audited", v);
  if (gauge("audit.cra_min", v)) q.set("cra_min", v);
  if (gauge("audit.cra_mean", v)) q.set("cra_mean", v);
  if (gauge("audit.overhead_seconds", v)) q.set("overhead_seconds", v);
  return q;
}

// Derived view: gauges `breakdown.S<len>.<field>` grouped per length —
// the measured vs cost-model-predicted Stage-1/2 split (Table 4).
JsonValue breakdown_json(const BenchReport& b) {
  std::map<long long, std::map<std::string, double>> by_len;
  const std::string prefix = "breakdown.S";
  for (const auto& [name, v] : b.gauges) {
    if (name.rfind(prefix, 0) != 0) continue;
    const std::size_t dot_at = name.find('.', prefix.size());
    if (dot_at == std::string::npos) continue;
    try {
      by_len[std::stoll(name.substr(prefix.size(), dot_at - prefix.size()))]
            [name.substr(dot_at + 1)] = v;
    } catch (...) {
    }
  }
  JsonValue arr = JsonValue::array();
  for (const auto& [len, fields] : by_len) {
    JsonValue rec = JsonValue::object();
    rec.set("seq_len", len);
    for (const auto& [field, v] : fields) rec.set(field, v);
    arr.push_back(std::move(rec));
  }
  return arr;
}

// Derived view: the serving SLO section, from sched.* counters plus the
// TTFT histogram. Present only when the bench exercised the scheduler.
JsonValue serving_json(const BenchReport& b, bool& present) {
  const auto counter = [&](const char* name) {
    const auto it = b.counters.find(name);
    return it == b.counters.end() ? 0.0 : it->second;
  };
  const auto ttft = b.histograms.find("sched.ttft_seconds");
  present = counter("sched.requests_enqueued") > 0.0 || ttft != b.histograms.end();
  JsonValue s = JsonValue::object();
  if (!present) return s;
  s.set("completed", counter("sched.requests_completed"));
  s.set("shed", counter("sched.requests_shed"));
  s.set("degraded", counter("sched.requests_degraded"));
  s.set("retries", counter("sched.request_retries"));
  s.set("queue_depth_peak", counter("sched.queue_depth_peak"));
  if (ttft != b.histograms.end()) s.set("ttft", hist_json(ttft->second));
  return s;
}

// Derived view (v2): per-request TTFT attribution records, grouped from the
// `request.<id>.<field>` gauges the scheduler and model runner emit. The id
// may itself contain dots or slashes (run labels like "sa_rr8192/req-003"),
// so the field is everything after the LAST dot.
JsonValue per_request_json(const BenchReport& b) {
  std::map<std::string, std::map<std::string, double>> requests;
  const std::string prefix = "request.";
  for (const auto& [name, v] : b.gauges) {
    if (name.rfind(prefix, 0) != 0) continue;
    const std::size_t dot_at = name.rfind('.');
    if (dot_at == std::string::npos || dot_at <= prefix.size()) continue;
    const std::string id = name.substr(prefix.size(), dot_at - prefix.size());
    if (id.empty()) continue;
    requests[id][name.substr(dot_at + 1)] = v;
  }
  JsonValue arr = JsonValue::array();
  for (const auto& [id, fields] : requests) {
    JsonValue rec = JsonValue::object();
    rec.set("id", id);
    for (const auto& [field, v] : fields) rec.set(field, v);
    arr.push_back(std::move(rec));
  }
  return arr;
}

// Derived view: simulator-predicted vs engine-measured serving metrics,
// grouped from the engine.predicted.<metric> / engine.measured.<metric> /
// engine.err.<metric> gauges that bench_serving --engine publishes (the
// err gauges also gate via tools/bench_diff, see io/report_diff.h).
JsonValue engine_json(const BenchReport& b) {
  std::map<std::string, std::map<std::string, double>> metrics;
  for (const auto& [name, v] : b.gauges) {
    for (const char* kind : {"predicted", "measured", "err"}) {
      const std::string prefix = std::string("engine.") + kind + ".";
      if (name.rfind(prefix, 0) == 0) {
        metrics[name.substr(prefix.size())][kind] = v;
        break;
      }
    }
  }
  JsonValue arr = JsonValue::array();
  for (const auto& [metric, kinds] : metrics) {
    JsonValue rec = JsonValue::object();
    rec.set("metric", metric);
    for (const auto& [kind, v] : kinds) rec.set(kind, v);
    // Tail-metric labeling: a metric with an err gauge is gated by
    // tools/bench_diff --engine-error-threshold; one without (the raw
    // tpot_p99_s, whose ~30µs decode steps are OS-jitter-dominated) is
    // report-only. The flag makes bench_diff output unambiguous about
    // which tails can fail a run.
    rec.set("gated", kinds.count("err") > 0);
    arr.push_back(std::move(rec));
  }
  return arr;
}

// Derived view: engine lifecycle-hardening telemetry — cancellation, KV
// memory pressure, watchdog, and circuit-breaker events published by the
// live ServingEngine (docs/ROBUSTNESS.md, "Lifecycle, overload & chaos").
// Counter names keep their engine.-stripped suffix; emitted only when the
// bench actually drove a hardening path.
JsonValue lifecycle_json(const BenchReport& b) {
  JsonValue o = JsonValue::object();
  static constexpr const char* kLifecycleCounters[] = {
      "engine.requests_cancelled",   "engine.kv_evictions",
      "engine.kv_pressure_waits",    "engine.kv_budget_sheds",
      "engine.watchdog_stalls",      "engine.watchdog_sheds",
      "engine.breaker_trips",        "engine.breaker_closes",
      "engine.breaker_short_circuits", "engine.breaker_pretrips"};
  for (const char* name : kLifecycleCounters) {
    const auto it = b.counters.find(name);
    if (it != b.counters.end()) o.set(std::string(name).substr(7), it->second);
  }
  const auto state = b.gauges.find("engine.breaker_state");
  if (state != b.gauges.end()) o.set("breaker_state", state->second);
  const auto heartbeat = b.gauges.find("engine.heartbeat_age_s");
  if (heartbeat != b.gauges.end()) o.set("heartbeat_age_s", heartbeat->second);
  const auto dropped = b.gauges.find("telemetry.events_dropped");
  if (dropped != b.gauges.end()) o.set("telemetry_events_dropped", dropped->second);
  // Quality-drift alerts raised by the telemetry plane: `alert.<name>`
  // counters count rising edges over the run.
  JsonValue alerts = JsonValue::object();
  const std::string alert_prefix = "alert.";
  for (const auto& [name, v] : b.counters) {
    if (name.rfind(alert_prefix, 0) == 0) alerts.set(name.substr(alert_prefix.size()), v);
  }
  if (alerts.size() > 0) o.set("alerts", std::move(alerts));
  return o;
}

// Derived view: paged-KV / prefix-cache metrics, grouped from the `kv.*`
// gauges bench_serving --prefix publishes (hit rates, warm-vs-cold TTFT
// reduction, page residency ratios). The TTFT-reduction gauge also gates via
// tools/bench_diff --prefix-ttft-min (io/report_diff.h).
JsonValue kv_json(const BenchReport& b) {
  JsonValue o = JsonValue::object();
  const std::string prefix = "kv.";
  for (const auto& [name, v] : b.gauges) {
    if (name.rfind(prefix, 0) == 0) o.set(name.substr(prefix.size()), v);
  }
  return o;
}

// Derived view (v2): per-request timelines from the `timeline.<request>`
// series the engine emits — phase-coded (obs::RequestPhase) lifecycle
// events, submit through terminal state, rendered with their names so the
// report is readable without the enum.
JsonValue timelines_json(const BenchReport& b) {
  JsonValue arr = JsonValue::array();
  const std::string prefix = "timeline.";
  for (const auto& [name, samples] : b.series) {
    if (name.rfind(prefix, 0) != 0) continue;
    JsonValue rec = JsonValue::object();
    rec.set("request", name.substr(prefix.size()));
    JsonValue events = JsonValue::array();
    for (const auto& [t, v] : samples) {
      JsonValue ev = JsonValue::object();
      ev.set("t", t);
      ev.set("phase", v);
      ev.set("name", obs::request_phase_name(static_cast<obs::RequestPhase>(
                         static_cast<int>(v))));
      events.push_back(std::move(ev));
    }
    rec.set("events", std::move(events));
    arr.push_back(std::move(rec));
  }
  return arr;
}

JsonValue bench_json(const BenchReport& b) {
  JsonValue o = JsonValue::object();
  o.set("name", b.name);

  JsonValue latency = JsonValue::array();
  for (const obs::SpanStat& s : b.latency) {
    JsonValue rec = JsonValue::object();
    rec.set("path", s.path);
    rec.set("name", s.name);
    rec.set("depth", s.depth);
    rec.set("count", s.count);
    rec.set("total_us", s.total_us);
    rec.set("mean_us", s.mean_us);
    rec.set("p50_us", s.p50_us);
    rec.set("p99_us", s.p99_us);
    latency.push_back(std::move(rec));
  }
  o.set("latency", std::move(latency));

  JsonValue counters = JsonValue::object();
  for (const auto& [name, v] : b.counters) counters.set(name, v);
  o.set("counters", std::move(counters));

  JsonValue gauges = JsonValue::object();
  for (const auto& [name, v] : b.gauges) gauges.set(name, v);
  o.set("gauges", std::move(gauges));

  JsonValue hists = JsonValue::object();
  for (const auto& [name, h] : b.histograms) hists.set(name, hist_json(h));
  o.set("histograms", std::move(hists));

  JsonValue series = JsonValue::object();
  for (const auto& [name, samples] : b.series) {
    JsonValue arr = JsonValue::array();
    for (const auto& [t, v] : samples) {
      JsonValue pt = JsonValue::array();
      pt.push_back(t);
      pt.push_back(v);
      arr.push_back(std::move(pt));
    }
    series.set(name, std::move(arr));
  }
  o.set("series", std::move(series));

  // Derived views are emitted only when their source gauges/counters exist,
  // so benches that never touched a subsystem stay compact.
  JsonValue quality = quality_json(b);
  if (quality.get("per_head").size() > 0) o.set("quality", std::move(quality));
  bool audit_present = false;
  JsonValue quality_audit = quality_audit_json(b, audit_present);
  if (audit_present) o.set("quality_audit", std::move(quality_audit));
  JsonValue breakdown = breakdown_json(b);
  if (breakdown.size() > 0) o.set("breakdown", std::move(breakdown));
  bool serving_present = false;
  JsonValue serving = serving_json(b, serving_present);
  if (serving_present) o.set("serving", std::move(serving));
  JsonValue per_request = per_request_json(b);
  if (per_request.size() > 0) o.set("per_request", std::move(per_request));
  JsonValue engine = engine_json(b);
  if (engine.size() > 0) o.set("engine", std::move(engine));
  JsonValue lifecycle = lifecycle_json(b);
  if (lifecycle.size() > 0) o.set("lifecycle", std::move(lifecycle));
  JsonValue kv = kv_json(b);
  if (kv.size() > 0) o.set("kv", std::move(kv));
  JsonValue timelines = timelines_json(b);
  if (timelines.size() > 0) o.set("timelines", std::move(timelines));
  return o;
}

BenchReport bench_from_json(const JsonValue& o) {
  BenchReport b;
  b.name = o.get("name").as_string();
  const JsonValue& latency = o.get("latency");
  for (std::size_t i = 0; i < latency.size(); ++i) {
    const JsonValue& rec = latency.at(i);
    obs::SpanStat s;
    s.path = rec.get("path").as_string();
    s.name = rec.get("name").as_string();
    s.depth = static_cast<int>(rec.get("depth").as_number());
    s.count = static_cast<std::size_t>(rec.get("count").as_number());
    s.total_us = rec.get("total_us").as_number();
    s.mean_us = rec.get("mean_us").as_number();
    s.p50_us = rec.get("p50_us").as_number();
    s.p99_us = rec.get("p99_us").as_number();
    b.latency.push_back(std::move(s));
  }
  for (const auto& [name, v] : o.get("counters").members()) b.counters[name] = v.as_number();
  for (const auto& [name, v] : o.get("gauges").members()) b.gauges[name] = v.as_number();
  for (const auto& [name, v] : o.get("histograms").members()) {
    b.histograms[name] = hist_from_json(v);
  }
  for (const auto& [name, arr] : o.get("series").members()) {
    auto& samples = b.series[name];
    for (std::size_t i = 0; i < arr.size(); ++i) {
      samples.emplace_back(arr.at(i).at(0).as_number(), arr.at(i).at(1).as_number());
    }
  }
  return b;
}

}  // namespace

const BenchReport* RunReport::find_bench(const std::string& name) const {
  for (const BenchReport& b : benches) {
    if (b.name == name) return &b;
  }
  return nullptr;
}

RunReport collect_run_report(const std::string& bench_name) {
  RunReport report;
  report.meta["created_by"] = bench_name;
  report.meta["git_rev"] = SATTN_GIT_REV;
  report.meta["build_type"] = SATTN_BUILD_TYPE;
  report.meta["compiler"] = SATTN_COMPILER;
  report.meta["cxx_flags"] = SATTN_CXX_FLAGS;
  // The pool size the kernels actually ran with (SATTN_THREADS-aware), not
  // the host's hardware_concurrency — wall-clock numbers are only
  // comparable between reports that used the same worker count. A pool with
  // zero workers runs everything inline on the caller, i.e. one thread.
  report.meta["threads"] = std::to_string(std::max(1u, ThreadPool::global().size()));
  // The SIMD backend the micro-kernels actually dispatched to on this host
  // (docs/PERFORMANCE.md) — wall-clock numbers are only comparable between
  // reports that ran the same backend.
  report.meta["simd"] = simd::active_level_name();
#ifndef _WIN32
  {
    char host[256] = {0};
    if (gethostname(host, sizeof(host) - 1) == 0 && host[0] != '\0') {
      report.meta["hostname"] = host;
    }
  }
#endif

  BenchReport bench;
  bench.name = bench_name;
  const obs::Collector& col = obs::Collector::global();
  bench.latency = obs::summarize_spans(col.spans());
  for (const obs::CounterValue& c : col.counters()) bench.counters[c.name] = c.value;
  const obs::MetricsSnapshot snap = obs::MetricsRegistry::global().snapshot();
  for (const auto& [name, v] : snap.gauges) bench.gauges[name] = v;
  for (const auto& [name, h] : snap.histograms) bench.histograms[name] = h;
  for (const auto& [name, s] : snap.series) bench.series[name] = s;
  report.benches.push_back(std::move(bench));
  return report;
}

std::string run_report_json(const RunReport& report) {
  JsonValue root = JsonValue::object();
  root.set("schema", kRunReportSchema);
  root.set("version", report.version);

  JsonValue meta = JsonValue::object();
  for (const auto& [k, v] : report.meta) meta.set(k, v);
  JsonValue bench_names = JsonValue::array();
  for (const BenchReport& b : report.benches) bench_names.push_back(b.name);
  meta.set("benches", std::move(bench_names));
  root.set("meta", std::move(meta));

  JsonValue benches = JsonValue::array();
  for (const BenchReport& b : report.benches) benches.push_back(bench_json(b));
  root.set("benches", std::move(benches));
  return root.to_string();
}

bool write_run_report(const std::string& path, const RunReport& report) {
  return write_file(path, run_report_json(report));
}

StatusOr<RunReport> parse_run_report(const std::string& json_text) {
  auto parsed = parse_json(json_text);
  if (!parsed.ok()) return parsed.status();
  const JsonValue& root = parsed.value();
  SATTN_CHECK(root.is_object(), kInvalidArgument, "run report is not a JSON object");
  SATTN_CHECK(root.get("schema").as_string() == kRunReportSchema, kInvalidArgument,
              "not a ", kRunReportSchema, " document (schema='",
              root.get("schema").as_string(), "')");
  const int version = static_cast<int>(root.get("version").as_number());
  SATTN_CHECK(version >= 1 && version <= kRunReportVersion, kInvalidArgument,
              "run report version ", version, " not supported (max ", kRunReportVersion, ")");

  RunReport report;
  report.version = version;
  for (const auto& [k, v] : root.get("meta").members()) {
    if (v.is_string()) report.meta[k] = v.as_string();
  }
  const JsonValue& benches = root.get("benches");
  for (std::size_t i = 0; i < benches.size(); ++i) {
    report.benches.push_back(bench_from_json(benches.at(i)));
  }
  return report;
}

StatusOr<RunReport> load_run_report(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  SATTN_CHECK(f != nullptr, kUnavailable, "cannot open run report '", path, "'");
  std::string text;
  char buf[65536];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) text.append(buf, n);
  std::fclose(f);
  return parse_run_report(text);
}

StatusOr<RunReport> merge_run_reports(const std::vector<RunReport>& reports) {
  SATTN_CHECK(!reports.empty(), kInvalidArgument, "nothing to merge");
  RunReport merged;
  merged.meta = reports.front().meta;
  merged.meta["created_by"] = "bench_all";
  for (const RunReport& r : reports) {
    for (const BenchReport& b : r.benches) {
      SATTN_CHECK(merged.find_bench(b.name) == nullptr, kInvalidArgument,
                  "duplicate bench '", b.name, "' while merging run reports");
      merged.benches.push_back(b);
    }
  }
  return merged;
}

}  // namespace sattn
