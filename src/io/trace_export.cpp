#include "io/trace_export.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace sattn {
namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

std::string fmt_number(double v) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.6f", v);
  return buf;
}

}  // namespace

std::string chrome_trace_json(std::span<const obs::SpanRecord> spans,
                              std::span<const obs::CounterValue> counters) {
  std::ostringstream out;
  out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  const auto emit = [&](const std::string& event) {
    out << (first ? "\n" : ",\n") << event;
    first = false;
  };

  emit(R"({"name":"process_name","ph":"M","pid":1,"tid":0,"args":{"name":"sattn"}})");

  double end_ts = 0.0;
  for (const obs::SpanRecord& s : spans) {
    std::ostringstream ev;
    ev << "{\"name\":\"" << json_escape(s.name) << "\",\"cat\":\"sattn\",\"ph\":\"X\""
       << ",\"pid\":1,\"tid\":" << s.tid << ",\"ts\":" << fmt_number(s.start_us)
       << ",\"dur\":" << fmt_number(s.dur_us) << "}";
    emit(ev.str());
    end_ts = std::max(end_ts, s.start_us + s.dur_us);
  }

  // Counter totals as one trailing counter sample per counter; Chrome draws
  // them as a track each.
  for (const obs::CounterValue& c : counters) {
    std::ostringstream ev;
    ev << "{\"name\":\"" << json_escape(c.name) << "\",\"cat\":\"sattn\",\"ph\":\"C\""
       << ",\"pid\":1,\"tid\":0,\"ts\":" << fmt_number(end_ts) << ",\"args\":{\"value\":"
       << fmt_number(c.value) << "}}";
    emit(ev.str());
  }

  out << "\n]}\n";
  return out.str();
}

bool write_chrome_trace(const std::string& path) {
  const obs::Collector& col = obs::Collector::global();
  const std::string json = chrome_trace_json(col.spans(), col.counters());
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  const std::size_t n = std::fwrite(json.data(), 1, json.size(), f);
  const bool ok = n == json.size();
  return (std::fclose(f) == 0) && ok;
}

}  // namespace sattn
