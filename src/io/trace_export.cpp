#include "io/trace_export.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace sattn {
namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

std::string fmt_number(double v) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.6f", v);
  return buf;
}

}  // namespace

std::string chrome_trace_json(std::span<const obs::SpanRecord> spans,
                              std::span<const obs::CounterValue> counters) {
  std::ostringstream out;
  out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  const auto emit = [&](const std::string& event) {
    out << (first ? "\n" : ",\n") << event;
    first = false;
  };

  emit(R"({"name":"process_name","ph":"M","pid":1,"tid":0,"args":{"name":"sattn"}})");

  // Request lanes: spans tagged with a RequestContext id render in a second
  // "requests" process, one named lane per request, so a serving run reads
  // as submit -> prefill chunks -> decode steps per request instead of
  // interleaved worker threads. Untagged spans keep the per-thread lanes.
  std::vector<std::string> request_ids;
  for (const obs::SpanRecord& s : spans) {
    if (!s.request_id.empty()) request_ids.push_back(s.request_id);
  }
  std::sort(request_ids.begin(), request_ids.end());
  request_ids.erase(std::unique(request_ids.begin(), request_ids.end()), request_ids.end());
  if (!request_ids.empty()) {
    emit(R"({"name":"process_name","ph":"M","pid":2,"tid":0,"args":{"name":"requests"}})");
    for (std::size_t i = 0; i < request_ids.size(); ++i) {
      std::ostringstream ev;
      ev << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":2,\"tid\":" << (i + 1)
         << ",\"args\":{\"name\":\"" << json_escape(request_ids[i]) << "\"}}";
      emit(ev.str());
    }
  }
  const auto lane_of = [&](const std::string& id) {
    const auto it = std::lower_bound(request_ids.begin(), request_ids.end(), id);
    return static_cast<std::size_t>(it - request_ids.begin()) + 1;
  };

  double end_ts = 0.0;
  for (const obs::SpanRecord& s : spans) {
    const bool tagged = !s.request_id.empty();
    std::ostringstream ev;
    ev << "{\"name\":\"" << json_escape(s.name) << "\",\"cat\":\"sattn\",\"ph\":\"X\""
       << ",\"pid\":" << (tagged ? 2 : 1)
       << ",\"tid\":" << (tagged ? lane_of(s.request_id) : static_cast<std::size_t>(s.tid))
       << ",\"ts\":" << fmt_number(s.start_us) << ",\"dur\":" << fmt_number(s.dur_us);
    if (tagged) ev << ",\"args\":{\"request\":\"" << json_escape(s.request_id) << "\"}";
    ev << "}";
    emit(ev.str());
    end_ts = std::max(end_ts, s.start_us + s.dur_us);
  }

  // Counter totals as one trailing counter sample per counter; Chrome draws
  // them as a track each.
  for (const obs::CounterValue& c : counters) {
    std::ostringstream ev;
    ev << "{\"name\":\"" << json_escape(c.name) << "\",\"cat\":\"sattn\",\"ph\":\"C\""
       << ",\"pid\":1,\"tid\":0,\"ts\":" << fmt_number(end_ts) << ",\"args\":{\"value\":"
       << fmt_number(c.value) << "}}";
    emit(ev.str());
  }

  out << "\n]}\n";
  return out.str();
}

bool write_chrome_trace(const std::string& path) {
  const obs::Collector& col = obs::Collector::global();
  const std::string json = chrome_trace_json(col.spans(), col.counters());
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  const std::size_t n = std::fwrite(json.data(), 1, json.size(), f);
  const bool ok = n == json.size();
  return (std::fclose(f) == 0) && ok;
}

}  // namespace sattn
