// Structured, versioned JSON run reports: the machine-checkable record of a
// bench run that the per-PR bench trajectory (BENCH_sattn.json) and the
// regression gate (io/report_diff.h, tools/bench_diff) are built on.
//
// Schema (version 2; pinned by tests/golden/run_report_v2.json — version 1
// documents, pinned by tests/golden/run_report_v1.json, still parse):
//
//   {
//     "schema": "sattn.run_report",
//     "version": 2,
//     "meta": { "created_by", "git_rev", "build_type", "compiler",
//               "cxx_flags", "threads", "benches": [...],
//               // v2, bench_all only, comma-separated (absent when clean):
//               "failed_benches": "bench_a,bench_b" },
//     "benches": [
//       {
//         "name": "bench_serving",
//         "latency":    [ { "path", "name", "depth", "count", "total_us",
//                           "mean_us", "p50_us", "p99_us" }, ... ],
//         "counters":   { "sched.requests_completed": 24, ... },
//         "gauges":     { "quality.L4H3.cra": 0.97, ... },
//         "histograms": { "sched.ttft_seconds":
//                           { "count","sum","min","max","p50","p90","p99",
//                             // v2, present only when exemplars were tagged:
//                             "max_exemplar","p99_exemplar" } },
//         "series":     { "sched.queue_depth": [[t, v], ...] },
//         // Derived views, re-assembled from the raw maps at write time
//         // (each omitted when its source metrics are absent):
//         "quality":    { "per_head": [ { "layer","head",
//                                         "retained_kv_frac","cra" } ] },
//         "breakdown":  [ { "seq_len","stage1_us","stage2_us","kernel_us",
//                           "measured_overhead_share",
//                           "predicted_overhead_share" } ],
//         "serving":    { "completed","shed","degraded","retries",
//                         "queue_depth_peak","ttft": {histogram stats} },
//         // v2: per-request TTFT attribution, from request.<id>.* gauges
//         // (see docs/OBSERVABILITY.md "Resource accounting"):
//         "per_request": [ { "id","queue_s","compute_s","guard_s",
//                            "ttft_s", ... } ],
//         // Paged-KV / prefix-cache metrics, from the kv.* gauges that
//         // bench_serving --prefix publishes:
//         "kv":         { "prefix_hit_rate","prefix_ttft_reduction",
//                         "residency_page_ratio", ... }
//       }, ...
//     ]
//   }
//
// `latency` comes from the span summaries (obs/summary.h), `counters` from
// the obs::Collector, and `gauges`/`histograms`/`series` from the
// MetricsRegistry (obs/metrics.h). The derived sections are views over the
// raw maps under the naming conventions of docs/OBSERVABILITY.md:
// `quality.L<l>H<h>.*` gauges, `breakdown.S<len>.*` gauges, `sched.*`
// counters/metrics, and `request.<id>.*` gauges. Parsing keeps only the
// raw maps; writing re-derives the views, so write -> parse -> write is
// byte-identical (for v1 documents too: the v2 additions are emitted only
// when their source metrics exist, which v1 documents never carry).
#pragma once

#include <map>
#include <string>
#include <utility>
#include <vector>

#include "core/status.h"
#include "obs/metrics.h"
#include "obs/summary.h"

namespace sattn {

inline constexpr int kRunReportVersion = 2;
inline constexpr const char* kRunReportSchema = "sattn.run_report";

// One bench binary's worth of metrics.
struct BenchReport {
  std::string name;
  std::vector<obs::SpanStat> latency;
  std::map<std::string, double> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, obs::HistogramStats> histograms;
  std::map<std::string, std::vector<std::pair<double, double>>> series;
};

struct RunReport {
  int version = kRunReportVersion;
  // Environment metadata, stamped at collection time (git rev and build
  // flags are baked in at configure time — see src/CMakeLists.txt).
  std::map<std::string, std::string> meta;
  std::vector<BenchReport> benches;

  const BenchReport* find_bench(const std::string& name) const;
};

// Snapshots the global obs::Collector + MetricsRegistry into a single-bench
// report named `bench_name`, with environment metadata filled in.
RunReport collect_run_report(const std::string& bench_name);

// Serialization.
std::string run_report_json(const RunReport& report);
bool write_run_report(const std::string& path, const RunReport& report);

// Parsing. Rejects documents whose "schema" is not sattn.run_report or
// whose "version" is newer than this library understands.
StatusOr<RunReport> parse_run_report(const std::string& json_text);
StatusOr<RunReport> load_run_report(const std::string& path);

// Merges per-bench reports into one: bench entries concatenate in argument
// order, meta comes from the first report with `benches` re-listed. Bench
// names must be unique across inputs (kInvalidArgument otherwise).
StatusOr<RunReport> merge_run_reports(const std::vector<RunReport>& reports);

}  // namespace sattn
