#include "io/report.h"

#include <cassert>
#include <cstdio>
#include <sstream>

namespace sattn {
namespace {

bool needs_quoting(const std::string& s) {
  return s.find_first_of(",\"\n\r") != std::string::npos;
}

std::string csv_escape(const std::string& s) {
  if (!needs_quoting(s)) return s;
  std::string out = "\"";
  for (char c : s) {
    if (c == '"') out += "\"\"";
    else out.push_back(c);
  }
  out.push_back('"');
  return out;
}

std::string json_escape(const std::string& s) {
  std::string out;
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out.push_back(c);
    }
  }
  return out;
}

bool write_file(const std::string& path, const std::string& content) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  const std::size_t n = std::fwrite(content.data(), 1, content.size(), f);
  const bool ok = n == content.size();
  return (std::fclose(f) == 0) && ok;
}

}  // namespace

CsvWriter::CsvWriter(std::vector<std::string> header) : header_(std::move(header)) {}

void CsvWriter::add_row(std::vector<std::string> cells) {
  assert(cells.size() == header_.size());
  rows_.push_back(std::move(cells));
}

std::string CsvWriter::to_string() const {
  std::ostringstream out;
  for (std::size_t c = 0; c < header_.size(); ++c) {
    out << csv_escape(header_[c]) << (c + 1 < header_.size() ? "," : "");
  }
  out << '\n';
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << csv_escape(row[c]) << (c + 1 < row.size() ? "," : "");
    }
    out << '\n';
  }
  return out.str();
}

bool CsvWriter::write(const std::string& path) const { return write_file(path, to_string()); }

void JsonReport::set(const std::string& key, double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.10g", value);
  entries_.emplace_back(key, buf);
}

void JsonReport::set(const std::string& key, const std::string& value) {
  entries_.emplace_back(key, "\"" + json_escape(value) + "\"");
}

std::string JsonReport::to_string() const {
  std::ostringstream out;
  out << "{\n";
  for (std::size_t e = 0; e < entries_.size(); ++e) {
    out << "  \"" << json_escape(entries_[e].first) << "\": " << entries_[e].second;
    out << (e + 1 < entries_.size() ? ",\n" : "\n");
  }
  out << "}\n";
  return out.str();
}

bool JsonReport::write(const std::string& path) const { return write_file(path, to_string()); }

}  // namespace sattn
