// Attention visualization: downsampled heatmaps of score matrices and
// masks, rendered as ASCII (for terminals / logs) or PGM (portable graymap,
// viewable anywhere). Reproduces the paper's Appendix A.3 visualizations
// (Figs 9-10: per-head sparse patterns) without a plotting stack.
#pragma once

#include <string>

#include "attention/masks.h"
#include "core/tensor.h"

namespace sattn {

struct HeatmapOptions {
  Index cells = 48;        // output is cells x cells
  // Gamma < 1 lifts small attention probabilities so stripes are visible
  // next to the dominant diagonal.
  double gamma = 0.35;
};

// Downsamples the causal score matrix of `in` to cells x cells by averaging
// each tile's probabilities (rows are exact softmax rows). Upper-triangular
// (non-causal) tiles are zero.
Matrix downsample_scores(const AttentionInput& in, const HeatmapOptions& opts = {});

// Downsamples a structured mask (fraction of each tile covered).
Matrix downsample_mask(const StructuredMask& mask, const HeatmapOptions& opts = {});

// Renders a [cells x cells] intensity matrix (values >= 0, any scale) as
// ASCII art, one output row per matrix row.
std::string render_ascii(const Matrix& intensity, double gamma = 0.35);

// Writes an 8-bit PGM image of the intensity matrix. Returns false on I/O
// failure.
bool write_pgm(const Matrix& intensity, const std::string& path, double gamma = 0.35);

}  // namespace sattn
