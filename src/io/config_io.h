// Persistence for tuned configurations.
//
// The offline tuner (Section 4.2) produces per-model hyperparameters that a
// deployment wants to pin; this module stores them in a line-oriented
// `key = value` properties format (comments with '#', whitespace-tolerant)
// chosen over JSON to keep parsing dependency-free and diff-friendly.
#pragma once

#include <map>
#include <optional>
#include <string>

#include "sample_attention/sample_attention.h"

namespace sattn {

// Ordered key/value store with typed accessors.
class Properties {
 public:
  void set(const std::string& key, const std::string& value);
  void set(const std::string& key, double value);
  void set(const std::string& key, Index value);
  void set(const std::string& key, bool value);

  std::optional<std::string> get(const std::string& key) const;
  std::optional<double> get_double(const std::string& key) const;
  std::optional<Index> get_index(const std::string& key) const;
  std::optional<bool> get_bool(const std::string& key) const;

  std::size_t size() const { return values_.size(); }

  // Serialization. parse() returns false on a malformed line (no '='
  // outside comments/blank lines) and leaves previously parsed keys set.
  std::string serialize() const;
  bool parse(const std::string& text);

  bool save(const std::string& path) const;
  bool load(const std::string& path);

 private:
  std::map<std::string, std::string> values_;
};

// SampleAttentionConfig <-> Properties.
Properties to_properties(const SampleAttentionConfig& cfg);
// Missing keys keep the default value; malformed values return nullopt.
std::optional<SampleAttentionConfig> config_from_properties(const Properties& props);

// Round-trip convenience.
bool save_config(const SampleAttentionConfig& cfg, const std::string& path);
std::optional<SampleAttentionConfig> load_config(const std::string& path);

}  // namespace sattn
