#include "io/heatmap.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "attention/score_utils.h"

namespace sattn {
namespace {

// Normalizes intensities to [0,1] with gamma correction.
Matrix normalized(const Matrix& intensity, double gamma) {
  float mx = 0.0f;
  for (float v : intensity.flat()) mx = std::max(mx, v);
  Matrix out(intensity.rows(), intensity.cols());
  if (mx <= 0.0f) return out;
  for (Index r = 0; r < intensity.rows(); ++r) {
    for (Index c = 0; c < intensity.cols(); ++c) {
      out(r, c) = static_cast<float>(
          std::pow(static_cast<double>(intensity(r, c)) / mx, gamma));
    }
  }
  return out;
}

}  // namespace

Matrix downsample_scores(const AttentionInput& in, const HeatmapOptions& opts) {
  const Index s = in.sq();
  const Index cells = std::min(opts.cells, s);
  Matrix acc(cells, cells);
  // Sample up to 4 rows per row-tile and average their probabilities into
  // column tiles — cheap and faithful enough for visualization.
  std::vector<Index> rows;
  for (Index rt = 0; rt < cells; ++rt) {
    const Index lo = rt * s / cells;
    const Index hi = std::max(lo + 1, (rt + 1) * s / cells);
    const Index step = std::max<Index>(1, (hi - lo) / 4);
    for (Index i = lo; i < hi; i += step) rows.push_back(i);
  }
  for_each_score_row(in, rows, [&](Index i, std::span<const float> p) {
    const Index rt = std::min(cells - 1, i * cells / s);
    for (Index j = 0; j <= causal_limit(i, s, in.sk()); ++j) {
      const Index ct = std::min(cells - 1, j * cells / in.sk());
      acc(rt, ct) += p[static_cast<std::size_t>(j)];
    }
  });
  return acc;
}

Matrix downsample_mask(const StructuredMask& mask, const HeatmapOptions& opts) {
  const Index s = mask.sq();
  const Index cells = std::min(opts.cells, s);
  Matrix acc(cells, cells);
  const Index row_step = std::max<Index>(1, s / (cells * 2));
  for (Index i = 0; i < s; i += row_step) {
    const Index rt = std::min(cells - 1, i * cells / s);
    for (Index j = 0; j < mask.sk(); ++j) {
      if (mask.contains(i, j)) {
        acc(rt, std::min(cells - 1, j * cells / mask.sk())) += 1.0f;
      }
    }
  }
  return acc;
}

std::string render_ascii(const Matrix& intensity, double gamma) {
  static const char* kRamp = " .:-=+*#%@";
  const Matrix n = normalized(intensity, gamma);
  std::string out;
  out.reserve(static_cast<std::size_t>((n.cols() + 1) * n.rows()));
  for (Index r = 0; r < n.rows(); ++r) {
    for (Index c = 0; c < n.cols(); ++c) {
      const int level = std::clamp(static_cast<int>(n(r, c) * 9.999f), 0, 9);
      out.push_back(kRamp[level]);
    }
    out.push_back('\n');
  }
  return out;
}

bool write_pgm(const Matrix& intensity, const std::string& path, double gamma) {
  const Matrix n = normalized(intensity, gamma);
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  std::fprintf(f, "P5\n%lld %lld\n255\n", static_cast<long long>(n.cols()),
               static_cast<long long>(n.rows()));
  for (Index r = 0; r < n.rows(); ++r) {
    for (Index c = 0; c < n.cols(); ++c) {
      const auto byte = static_cast<unsigned char>(std::clamp(n(r, c) * 255.0f, 0.0f, 255.0f));
      std::fputc(byte, f);
    }
  }
  return std::fclose(f) == 0;
}

}  // namespace sattn
