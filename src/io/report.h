// Machine-readable bench output: CSV writing and a tiny JSON emitter, so
// bench results can be plotted or diffed across runs without scraping the
// console tables.
#pragma once

#include <initializer_list>
#include <string>
#include <vector>

namespace sattn {

class CsvWriter {
 public:
  explicit CsvWriter(std::vector<std::string> header);

  void add_row(std::vector<std::string> cells);

  // RFC-4180-ish: quotes fields containing commas/quotes/newlines.
  std::string to_string() const;
  bool write(const std::string& path) const;

  std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

// Minimal JSON object builder for flat key/value reports (numbers and
// strings). Intentionally not a general JSON library.
class JsonReport {
 public:
  void set(const std::string& key, double value);
  void set(const std::string& key, const std::string& value);
  std::string to_string() const;
  bool write(const std::string& path) const;

 private:
  std::vector<std::pair<std::string, std::string>> entries_;  // pre-encoded
};

}  // namespace sattn
