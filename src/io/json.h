// Minimal JSON document model: parse + serialize for the run-report and
// bench-diff tooling (io/run_report.h, tools/bench_diff). Deliberately
// small — no SAX interface, no streaming, objects keep insertion order so
// serialization is deterministic and golden-file-testable.
//
// Numbers are doubles serialized with std::to_chars (shortest round-trip
// form), so write -> parse -> write is byte-identical.
#pragma once

#include <initializer_list>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/status.h"

namespace sattn {

class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() : kind_(Kind::kNull) {}
  JsonValue(bool b) : kind_(Kind::kBool), bool_(b) {}                       // NOLINT
  JsonValue(double n) : kind_(Kind::kNumber), num_(n) {}                    // NOLINT
  JsonValue(int n) : kind_(Kind::kNumber), num_(n) {}                      // NOLINT
  JsonValue(long long n) : kind_(Kind::kNumber), num_(static_cast<double>(n)) {}  // NOLINT
  JsonValue(std::size_t n) : kind_(Kind::kNumber), num_(static_cast<double>(n)) {}  // NOLINT
  JsonValue(const char* s) : kind_(Kind::kString), str_(s) {}               // NOLINT
  JsonValue(std::string s) : kind_(Kind::kString), str_(std::move(s)) {}    // NOLINT

  static JsonValue array() {
    JsonValue v;
    v.kind_ = Kind::kArray;
    return v;
  }
  static JsonValue object() {
    JsonValue v;
    v.kind_ = Kind::kObject;
    return v;
  }

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  bool as_bool(bool fallback = false) const { return is_bool() ? bool_ : fallback; }
  double as_number(double fallback = 0.0) const { return is_number() ? num_ : fallback; }
  const std::string& as_string() const { return str_; }

  // Array access.
  std::size_t size() const { return is_array() ? items_.size() : members_.size(); }
  JsonValue& push_back(JsonValue v);
  const JsonValue& at(std::size_t i) const;  // kNull sentinel when out of range

  // Object access: get() returns a kNull sentinel for missing keys, so
  // chained lookups over partial documents are safe.
  JsonValue& set(const std::string& key, JsonValue v);
  const JsonValue& get(const std::string& key) const;
  bool has(const std::string& key) const;
  const std::vector<std::pair<std::string, JsonValue>>& members() const { return members_; }

  // Serialization. `indent` < 0 gives compact single-line output.
  std::string to_string(int indent = 2) const;

 private:
  void write(std::string& out, int indent, int depth) const;

  Kind kind_;
  bool bool_ = false;
  double num_ = 0.0;
  std::string str_;
  std::vector<JsonValue> items_;                             // kArray
  std::vector<std::pair<std::string, JsonValue>> members_;   // kObject, insertion order
};

// Strict-enough parser for the documents this repo writes: objects, arrays,
// strings with \" \\ \/ \b \f \n \r \t and \uXXXX (BMP only) escapes,
// numbers, true/false/null. Trailing garbage after the top-level value is
// an error.
StatusOr<JsonValue> parse_json(const std::string& text);

// JSON string escaping shared with the serializer.
std::string json_escape_string(const std::string& s);

// Shortest round-trip decimal form of a double (std::to_chars); "0" for
// negative zero, and "null" is never produced (NaN/inf clamp to 0).
std::string json_number(double v);

}  // namespace sattn
