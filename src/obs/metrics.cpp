#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace sattn::obs {
namespace {

// Geometric bucket growth factor: 2^(1/8).
const double kLogGrowth = std::log(2.0) / 8.0;

int bucket_index(double v) {
  if (!(v > Histogram::kFloor)) return 0;
  return 1 + static_cast<int>(std::floor(std::log(v / Histogram::kFloor) / kLogGrowth));
}

// Geometric midpoint of bucket b's [lo, hi) value range.
double bucket_mid(int b) {
  if (b <= 0) return Histogram::kFloor;
  const double lo = Histogram::kFloor * std::exp(kLogGrowth * static_cast<double>(b - 1));
  return lo * std::exp(0.5 * kLogGrowth);
}

}  // namespace

double percentile_nearest_rank(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const double n = static_cast<double>(sorted.size());
  auto rank = static_cast<std::size_t>(std::ceil(std::clamp(q, 0.0, 1.0) * n));
  rank = std::clamp<std::size_t>(rank, 1, sorted.size());
  return sorted[rank - 1];
}

void Histogram::observe(double v, std::string_view exemplar) {
  if (std::isnan(v)) return;
  std::lock_guard<std::mutex> lock(mu_);
  if (count_ == 0) {
    min_ = max_ = v;
    if (!exemplar.empty()) max_exemplar_ = exemplar;
  } else {
    min_ = std::min(min_, v);
    if (v >= max_) {
      max_ = v;
      if (!exemplar.empty()) max_exemplar_ = exemplar;
    }
  }
  ++count_;
  sum_ += v;
  const int b = bucket_index(v);
  ++buckets_[b];
  if (!exemplar.empty()) exemplars_[b] = exemplar;
}

double Histogram::percentile_locked(double q) const {
  if (count_ == 0) return 0.0;
  const int b = percentile_bucket_locked(q);
  if (b < 0) return max_;
  return std::clamp(bucket_mid(b), min_, max_);
}

int Histogram::percentile_bucket_locked(double q) const {
  if (count_ == 0) return -1;
  auto rank = static_cast<std::size_t>(
      std::ceil(std::clamp(q, 0.0, 1.0) * static_cast<double>(count_)));
  rank = std::clamp<std::size_t>(rank, 1, count_);
  std::size_t seen = 0;
  for (const auto& [b, c] : buckets_) {
    seen += c;
    if (seen >= rank) return b;
  }
  return buckets_.empty() ? -1 : buckets_.rbegin()->first;
}

HistogramStats Histogram::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  HistogramStats s;
  s.count = count_;
  s.sum = sum_;
  s.min = min_;
  s.max = max_;
  s.p50 = percentile_locked(0.50);
  s.p90 = percentile_locked(0.90);
  s.p99 = percentile_locked(0.99);
  s.max_exemplar = max_exemplar_;
  const int p99_bucket = percentile_bucket_locked(0.99);
  if (p99_bucket >= 0) {
    // Nearest tagged bucket at or above the p99 bucket (the selected bucket
    // itself may hold only untagged observations).
    for (auto it = exemplars_.lower_bound(p99_bucket); it != exemplars_.end(); ++it) {
      s.p99_exemplar = it->second;
      break;
    }
    if (s.p99_exemplar.empty() && !max_exemplar_.empty()) s.p99_exemplar = max_exemplar_;
  }
  return s;
}

void Histogram::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  buckets_.clear();
  exemplars_.clear();
  max_exemplar_.clear();
  count_ = 0;
  sum_ = min_ = max_ = 0.0;
}

void Series::append(double t, double v) {
  std::lock_guard<std::mutex> lock(mu_);
  if (seen_++ % stride_ != 0) return;
  samples_.emplace_back(t, v);
  if (samples_.size() >= capacity_ && capacity_ >= 2) {
    // Decimate in place: keep every other sample, double the stride.
    std::size_t w = 0;
    for (std::size_t r = 0; r < samples_.size(); r += 2) samples_[w++] = samples_[r];
    samples_.resize(w);
    stride_ *= 2;
  }
}

std::vector<std::pair<double, double>> Series::samples() const {
  std::lock_guard<std::mutex> lock(mu_);
  return samples_;
}

void Series::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  samples_.clear();
  stride_ = 1;
  seen_ = 0;
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return *slot;
}

Series& MetricsRegistry::series(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = series_[name];
  if (!slot) slot = std::make_unique<Series>();
  return *slot;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot snap;
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) snap.gauges.emplace_back(name, g->value());
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) snap.histograms.emplace_back(name, h->stats());
  snap.series.reserve(series_.size());
  for (const auto& [name, s] : series_) snap.series.emplace_back(name, s->samples());
  return snap;
}

void MetricsRegistry::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, g] : gauges_) g->set(0.0);
  for (auto& [name, h] : histograms_) h->reset();
  for (auto& [name, s] : series_) s->reset();
}

void record_head_quality(long long layer, long long head, double retained_kv_frac, double cra) {
  if (!enabled()) return;
  char prefix[64];
  std::snprintf(prefix, sizeof(prefix), "quality.L%lldH%lld.", layer, head);
  MetricsRegistry& reg = MetricsRegistry::global();
  reg.gauge(std::string(prefix) + "retained_kv_frac").set(retained_kv_frac);
  reg.gauge(std::string(prefix) + "cra").set(cra);
}

}  // namespace sattn::obs
