// Lightweight, thread-safe tracing and counters for the whole library.
//
// The paper's central quantitative claim (Table 4, Fig 1) is a *time
// breakdown*: Stage-1 sampling + Stage-2 filtering overhead must stay small
// relative to the attention they save. This subsystem makes that breakdown
// measurable on the CPU substrate instead of only predicted by the analytic
// cost model:
//
//   * RAII scoped spans (SATTN_SPAN) with per-thread nesting, collected into
//     a global, never-destroyed Collector;
//   * named monotonic counters (SATTN_COUNTER_ADD / SATTN_COUNTER_MAX) for
//     quantities like score evaluations, bytes touched, retained KV columns,
//     sampled rows and scheduler queue depth;
//   * exporters: a hierarchical human-readable summary (obs/summary.h) and
//     Chrome `chrome://tracing` JSON (io/trace_export.h).
//
// Cost contract: collection is off by default. Every instrumentation site
// first does one relaxed atomic load (obs::enabled()); when disabled that is
// the entire cost — no allocation, no locking, no clock reads. Defining
// SATTN_TRACE_DISABLED at compile time removes the sites entirely.
//
// Enable/disable contract (see docs/OBSERVABILITY.md):
//   SATTN_TRACE=1   collect from process start
//   SATTN_TRACE=0   hard off: set_enabled(true) is ignored
//   unset           off until code calls obs::set_enabled(true)
//                   (the bench binaries do this when --trace-out= is given)
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace sattn::obs {

// True when spans/counters are being recorded. One relaxed load; safe to
// call from any thread at any time.
bool enabled();

// Turns collection on/off at runtime. A request to enable is ignored when
// the SATTN_TRACE=0 environment hard-off is in effect; returns the resulting
// state.
bool set_enabled(bool on);

// True when SATTN_TRACE=0 was set in the environment.
bool hard_disabled();

// Monotonic named counter. add() accumulates; record_max() keeps a running
// maximum (still monotone non-decreasing). Both are lock-free.
class Counter {
 public:
  void add(double v) { v_.fetch_add(v, std::memory_order_relaxed); }
  void record_max(double v) {
    double cur = v_.load(std::memory_order_relaxed);
    while (v > cur && !v_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }
  double value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

// One completed span. Timestamps are microseconds since the Collector's
// epoch (process start, effectively), matching Chrome trace-event units.
// request_id is the obs::RequestContext in effect when the span opened
// ("" when none): the Chrome exporter groups request-tagged spans into one
// lane per request, so serving runs get a per-request timeline for free.
struct SpanRecord {
  std::string name;
  std::string request_id;
  std::uint32_t tid = 0;  // dense thread id assigned by the collector
  double start_us = 0.0;
  double dur_us = 0.0;
};

struct CounterValue {
  std::string name;
  double value = 0.0;
};

// Global collector: per-thread span logs (each guarded by its own mutex, so
// writers never contend with each other) plus the counter registry. The
// singleton is heap-allocated and intentionally never destroyed, so worker
// threads may record during process teardown.
class Collector {
 public:
  static Collector& global();

  // Named counter handle; valid for the process lifetime.
  Counter& counter(const std::string& name);

  // Snapshot of all completed spans across threads (open spans are not
  // included until their ScopedSpan destructs).
  std::vector<SpanRecord> spans() const;

  // Snapshot of all counters, sorted by name.
  std::vector<CounterValue> counters() const;

  // Clears completed spans and zeroes counters. Spans currently open keep
  // recording and will appear in later snapshots.
  void reset();

  // Microseconds since the collector epoch.
  double now_us() const;

  // --- used by ScopedSpan; not part of the public API ---
  void begin_span(const char* name);
  void begin_span(std::string name);
  void end_span();

 private:
  Collector();

  struct ThreadLog;
  ThreadLog& this_thread_log();

  std::int64_t epoch_ns_ = 0;
  mutable std::mutex registry_mu_;
  std::vector<std::unique_ptr<ThreadLog>> logs_;
  mutable std::mutex counters_mu_;
  // Deque-like stable storage: handles returned by counter() stay valid.
  std::vector<std::pair<std::string, std::unique_ptr<Counter>>> counters_;
};

// RAII span. When collection is disabled at construction time this is a
// single relaxed load; otherwise it pushes onto the calling thread's span
// stack and records a SpanRecord on destruction.
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name) : active_(enabled()) {
    if (active_) Collector::global().begin_span(name);
  }
  explicit ScopedSpan(std::string name) : active_(enabled()) {
    if (active_) Collector::global().begin_span(std::move(name));
  }
  ~ScopedSpan() {
    if (active_) Collector::global().end_span();
  }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  bool active_ = false;
};

}  // namespace sattn::obs

// Instrumentation macros. `name` should be a stable literal like
// "kernel/sparse_flash"; see docs/OBSERVABILITY.md for the glossary of
// span and counter names used across the library.
#if defined(SATTN_TRACE_DISABLED)

#define SATTN_SPAN(name) \
  do {                   \
  } while (0)
#define SATTN_COUNTER_ADD(name, v) \
  do {                             \
    (void)sizeof(name);            \
    (void)sizeof(v);               \
  } while (0)
#define SATTN_COUNTER_MAX(name, v) \
  do {                             \
    (void)sizeof(name);            \
    (void)sizeof(v);               \
  } while (0)

#else

#define SATTN_OBS_CONCAT_INNER(a, b) a##b
#define SATTN_OBS_CONCAT(a, b) SATTN_OBS_CONCAT_INNER(a, b)

// Opens a span covering the rest of the enclosing scope.
#define SATTN_SPAN(name) \
  ::sattn::obs::ScopedSpan SATTN_OBS_CONCAT(sattn_span_, __LINE__)(name)

// Adds `v` to the named counter. `v` is evaluated only when collection is
// enabled, so it may be moderately expensive to compute.
#define SATTN_COUNTER_ADD(name, v)                            \
  do {                                                        \
    if (::sattn::obs::enabled()) {                            \
      ::sattn::obs::Collector::global().counter(name).add(    \
          static_cast<double>(v));                            \
    }                                                         \
  } while (0)

// Raises the named counter to at least `v` (running maximum).
#define SATTN_COUNTER_MAX(name, v)                                  \
  do {                                                              \
    if (::sattn::obs::enabled()) {                                  \
      ::sattn::obs::Collector::global().counter(name).record_max(   \
          static_cast<double>(v));                                  \
    }                                                               \
  } while (0)

#endif  // SATTN_TRACE_DISABLED
