// Structured metrics registry on top of the span/counter tracing layer
// (obs/trace.h): the quantities the paper states its claims in — retained-KV
// fraction, CRA, Stage-1/2 overhead share, serving TTFT — recorded as typed
// metrics instead of free-form bench text, so run reports (io/run_report.h)
// are machine-checkable across PRs.
//
// Three metric kinds, all named with the `area.metric` convention of the
// counter glossary (docs/OBSERVABILITY.md):
//
//   * Gauge      — last-write-wins value ("quality.L4H3.cra = 0.97").
//   * Histogram  — log-bucketed distribution with count/sum/min/max and
//                  nearest-rank p50/p90/p99 ("sched.ttft_seconds").
//   * Series     — bounded (timestamp, value) samples for time-series such
//                  as scheduler queue depth over simulated time.
//
// Monotonic counters stay in obs::Collector (the single counter namespace);
// MetricsRegistry::counter() delegates there so call sites need only one
// registry handle. The same enable contract applies: every macro is a
// relaxed obs::enabled() load when collection is off, and
// SATTN_TRACE_DISABLED compiles the sites away.
#pragma once

#include <cstddef>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/trace.h"

namespace sattn::obs {

// Nearest-rank percentile over an ascending-sorted sample: the value at
// 1-indexed rank ceil(q * n), clamped to [1, n]. By definition this always
// returns an observed sample (never an interpolated point): for n == 1 every
// quantile is the sample itself; for n == 2, p50 is the lower sample and p99
// the upper. Empty input returns 0.0. Shared by the span summaries, the
// serving summary, and histogram percentile estimation.
double percentile_nearest_rank(const std::vector<double>& sorted, double q);

// Last-write-wins metric value.
class Gauge {
 public:
  void set(double v) { v_.store(v, std::memory_order_relaxed); }
  double value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

struct HistogramStats {
  std::size_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
  double p50 = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;
  // Exemplar ids (e.g. request ids) linking the distribution's tail back to
  // concrete observations; empty when the caller never supplied any.
  std::string max_exemplar;
  std::string p99_exemplar;
};

// Log-bucketed histogram: buckets grow geometrically (factor 2^(1/8), about
// 9% relative resolution) from kFloor. Values at or below kFloor share the
// lowest bucket; percentiles are the geometric midpoint of the selected
// bucket under the nearest-rank rule, clamped to the exact observed
// [min, max]. Thread-safe; observe() takes a mutex (metric sites are not
// kernel-inner-loop hot).
//
// observe() optionally tags the observation with an exemplar id (a request
// id, a trace id). The histogram keeps the last exemplar per bucket plus
// the exemplar of the running maximum, so stats() can answer "which request
// is the p99 / the max" without storing every sample.
class Histogram {
 public:
  void observe(double v) { observe(v, std::string_view()); }
  void observe(double v, std::string_view exemplar);
  HistogramStats stats() const;
  void reset();

  static constexpr double kFloor = 1e-9;

 private:
  double percentile_locked(double q) const;
  int percentile_bucket_locked(double q) const;  // -1 when empty

  mutable std::mutex mu_;
  std::map<int, std::size_t> buckets_;  // bucket index -> count
  std::map<int, std::string> exemplars_;  // bucket index -> last exemplar
  std::string max_exemplar_;
  std::size_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

// Bounded time-series of (timestamp, value) samples. Timestamps are caller
// units (the scheduler records simulated seconds). When the buffer reaches
// capacity it is decimated: every other sample is dropped and the effective
// sampling stride doubles, so long simulations keep a uniform, bounded
// sketch of the full run rather than only its head.
class Series {
 public:
  explicit Series(std::size_t capacity = kDefaultCapacity) : capacity_(capacity) {}

  void append(double t, double v);
  std::vector<std::pair<double, double>> samples() const;
  void reset();

  static constexpr std::size_t kDefaultCapacity = 2048;

 private:
  mutable std::mutex mu_;
  std::size_t capacity_;
  std::size_t stride_ = 1;  // keep every stride-th append
  std::size_t seen_ = 0;    // appends observed since reset
  std::vector<std::pair<double, double>> samples_;
};

struct MetricsSnapshot {
  std::vector<std::pair<std::string, double>> gauges;                       // sorted by name
  std::vector<std::pair<std::string, HistogramStats>> histograms;           // sorted by name
  std::vector<std::pair<std::string, std::vector<std::pair<double, double>>>> series;  // sorted
};

// Process-wide registry, heap-allocated and never destroyed (same lifetime
// contract as obs::Collector). Handles returned by gauge()/histogram()/
// series() stay valid for the process lifetime.
class MetricsRegistry {
 public:
  static MetricsRegistry& global();

  // Monotonic counters live in the Collector; this is a convenience
  // passthrough so one registry handle reaches all four metric kinds.
  Counter& counter(const std::string& name) { return Collector::global().counter(name); }

  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);
  Series& series(const std::string& name);

  // Snapshot of every registered metric, each kind sorted by name.
  MetricsSnapshot snapshot() const;

  // Zeroes gauges and clears histogram/series contents. Counter reset is
  // Collector::reset(), as before.
  void reset();

 private:
  MetricsRegistry() = default;

  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
  std::map<std::string, std::unique_ptr<Series>> series_;
};

// Records the per-head plan quality the run report's `quality.per_head`
// section is assembled from: gauges `quality.L<layer>H<head>.retained_kv_frac`
// and `quality.L<layer>H<head>.cra`. No-op when collection is disabled.
void record_head_quality(long long layer, long long head, double retained_kv_frac, double cra);

}  // namespace sattn::obs

#if defined(SATTN_TRACE_DISABLED)

#define SATTN_GAUGE_SET(name, v) \
  do {                           \
    (void)sizeof(name);          \
    (void)sizeof(v);             \
  } while (0)
#define SATTN_HISTOGRAM(name, v) \
  do {                           \
    (void)sizeof(name);          \
    (void)sizeof(v);             \
  } while (0)
#define SATTN_HISTOGRAM_EX(name, v, exemplar) \
  do {                                        \
    (void)sizeof(name);                       \
    (void)sizeof(v);                          \
    (void)sizeof(exemplar);                   \
  } while (0)
#define SATTN_SERIES(name, t, v) \
  do {                           \
    (void)sizeof(name);          \
    (void)sizeof(t);             \
    (void)sizeof(v);             \
  } while (0)

#else

// Sets the named gauge. `v` is evaluated only when collection is enabled.
#define SATTN_GAUGE_SET(name, v)                                   \
  do {                                                             \
    if (::sattn::obs::enabled()) {                                 \
      ::sattn::obs::MetricsRegistry::global().gauge(name).set(     \
          static_cast<double>(v));                                 \
    }                                                              \
  } while (0)

// Observes `v` into the named log-bucketed histogram.
#define SATTN_HISTOGRAM(name, v)                                     \
  do {                                                               \
    if (::sattn::obs::enabled()) {                                   \
      ::sattn::obs::MetricsRegistry::global().histogram(name).observe( \
          static_cast<double>(v));                                   \
    }                                                                \
  } while (0)

// Observes `v` tagged with an exemplar id (e.g. the request id behind a
// TTFT sample), so histogram tails stay traceable to concrete requests.
#define SATTN_HISTOGRAM_EX(name, v, exemplar)                          \
  do {                                                                 \
    if (::sattn::obs::enabled()) {                                     \
      ::sattn::obs::MetricsRegistry::global().histogram(name).observe( \
          static_cast<double>(v), exemplar);                           \
    }                                                                  \
  } while (0)

// Appends (t, v) to the named bounded time-series.
#define SATTN_SERIES(name, t, v)                                   \
  do {                                                             \
    if (::sattn::obs::enabled()) {                                 \
      ::sattn::obs::MetricsRegistry::global().series(name).append( \
          static_cast<double>(t), static_cast<double>(v));         \
    }                                                              \
  } while (0)

#endif  // SATTN_TRACE_DISABLED
