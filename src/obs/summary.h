// Hierarchical span summaries: aggregates completed SpanRecords into
// per-path statistics (count / total / mean / p50 / p99) where a span's path
// is its chain of enclosing spans on the same thread, e.g.
// "method/SampleAttention(a=0.95)/sattn/plan/sattn/stage1_sampling" renders
// as the nested tree the bench binaries print next to the cost model.
#pragma once

#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "obs/trace.h"

namespace sattn::obs {

// Percentiles use the nearest-rank definition (obs/metrics.h's
// percentile_nearest_rank): p(q) is the sample at 1-indexed rank
// ceil(q * count), so every reported percentile is an actually observed
// duration. Small-sample behaviour is therefore exact, never interpolated:
// with one sample p50 == p99 == that sample; with two samples p50 is the
// faster one and p99 the slower one.
struct SpanStat {
  std::string path;   // parent names joined with " > ", leaf last
  std::string name;   // leaf span name
  int depth = 0;      // nesting depth (0 = root)
  std::size_t count = 0;
  double total_us = 0.0;
  double mean_us = 0.0;
  double p50_us = 0.0;
  double p99_us = 0.0;
};

// Groups spans by nesting path (derived per thread from interval enclosure)
// and aggregates. Result is ordered as a preorder walk of the path tree,
// siblings sorted by descending total time.
std::vector<SpanStat> summarize_spans(std::span<const SpanRecord> spans);

// Total time (seconds) spent in spans with the given leaf name. Nested
// same-name spans would double count; the library's span names never
// self-nest.
double total_seconds(std::span<const SpanRecord> spans, std::string_view name);

// Number of spans with the given leaf name.
std::size_t span_count(std::span<const SpanRecord> spans, std::string_view name);

// Human-readable report: the span tree with count/total/mean/p50/p99 plus a
// table of counter values. Used by the bench binaries' trace sessions.
// Stable for empty collectors: with no spans and no counters it returns the
// single line "(no spans or counters recorded)".
std::string render_summary(std::span<const SpanRecord> spans,
                           std::span<const CounterValue> counters);

}  // namespace sattn::obs
