#include "obs/audit.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <string>

#include "attention/attention_method.h"
#include "attention/score_utils.h"
#include "metrics/cra.h"
#include "obs/accounting.h"
#include "obs/metrics.h"

namespace sattn::obs {

namespace {

// FNV-1a-style mix of (seed, request id, absolute row). The same shape as
// the engine's request-content seeding, so audited sets depend only on
// request identity — never on batch interleaving, retries, or wall time.
std::uint64_t mix_audit(std::uint64_t seed, std::string_view id, Index abs_row) {
  std::uint64_t h = seed ^ 0x9e3779b97f4a7c15ull;
  for (const char ch : id) {
    h ^= static_cast<std::uint64_t>(static_cast<unsigned char>(ch));
    h *= 0x100000001b3ull;
  }
  std::uint64_t r = static_cast<std::uint64_t>(abs_row);
  for (int i = 0; i < 8; ++i) {
    h ^= r & 0xffull;
    h *= 0x100000001b3ull;
    r >>= 8;
  }
  return h;
}

// Top 53 bits as a uniform double in [0, 1).
double unit_hash(std::uint64_t h) {
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

}  // namespace

QualityAuditor::QualityAuditor(const AuditOptions& opts) : opts_(opts) {
  opts_.sample_rate = std::clamp(opts_.sample_rate, 0.0, 1.0);
}

bool QualityAuditor::selects_row(std::string_view request_id, Index abs_row) const {
  if (opts_.sample_rate <= 0.0) return false;
  if (opts_.sample_rate >= 1.0) return true;
  return unit_hash(mix_audit(opts_.seed, request_id, abs_row)) < opts_.sample_rate;
}

AuditResult QualityAuditor::audit_chunk(std::string_view request_id, const AttentionInput& chunk,
                                        const StructuredMask& mask, Index q_lo, long long layer,
                                        long long head, double predicted) {
  AuditResult res;
  if (opts_.sample_rate <= 0.0 || chunk.sq() <= 0) return res;

  // Threshold-hash selection over the chunk's rows. The budget keeps the
  // lowest-hash rows, which preserves nesting across sample rates: the
  // budgeted set at rate r1 is always a subset of the budgeted set at any
  // r2 > r1, so the min-estimate stays monotone in the rate.
  std::vector<std::pair<double, Index>> picked;  // (hash, chunk-local row)
  for (Index i = 0; i < chunk.sq(); ++i) {
    const double u = unit_hash(mix_audit(opts_.seed, request_id, q_lo + i));
    if (u < opts_.sample_rate) picked.emplace_back(u, i);
  }
  if (picked.empty()) return res;
  if (opts_.row_budget > 0 && static_cast<Index>(picked.size()) > opts_.row_budget) {
    std::nth_element(picked.begin(), picked.begin() + (opts_.row_budget - 1), picked.end());
    picked.resize(static_cast<std::size_t>(opts_.row_budget));
  }
  std::vector<Index> rows;
  rows.reserve(picked.size());
  for (const auto& [u, i] : picked) rows.push_back(i);
  std::sort(rows.begin(), rows.end());

  const auto t0 = std::chrono::steady_clock::now();
  std::vector<double> mass;
  mass.reserve(rows.size());
  double evals = 0.0;
  for_each_score_row(chunk, rows, [&](Index i, std::span<const float> p) {
    mass.push_back(row_retained_mass(p, mask, i));
    evals += static_cast<double>(causal_limit(i, chunk.sq(), chunk.sk()) + 1);
  });
  res.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();

  // Ground truth is one dense score row per audited row: bill it like the
  // dense kernels so acct.audit.* carries the measured audit cost.
  charge_attention_kernel("audit", static_cast<long long>(rows.size()), chunk.sk(),
                          chunk.head_dim(), evals);

  res.rows = static_cast<Index>(mass.size());
  res.cra_min = 1.0;
  double sum = 0.0;
  for (const double m : mass) {
    res.cra_min = std::min(res.cra_min, m);
    sum += m;
  }
  res.cra_mean = mass.empty() ? 1.0 : sum / static_cast<double>(mass.size());

  std::lock_guard<std::mutex> lock(mu_);
  accumulate_locked(layer, head, mass, predicted, res.seconds);
  return res;
}

void QualityAuditor::record_decode(long long layer, long long head, double retained,
                                   double predicted, double seconds) {
  const double mass[1] = {retained};
  std::lock_guard<std::mutex> lock(mu_);
  accumulate_locked(layer, head, mass, predicted, seconds);
}

void QualityAuditor::accumulate_locked(long long layer, long long head,
                                       std::span<const double> row_mass, double predicted,
                                       double seconds) {
  if (row_mass.empty()) return;
  HeadAgg& agg = heads_[{layer, head}];
  for (const double m : row_mass) {
    // Bounded raw samples: on overflow decimate by stride doubling (keep
    // every other sample), as the Series sketch does, so long runs keep a
    // representative spread instead of only their head.
    if (agg.samples.size() >= kMaxHeadSamples) {
      std::vector<double> kept;
      kept.reserve(agg.samples.size() / 2 + 1);
      for (std::size_t s = 0; s < agg.samples.size(); s += 2) kept.push_back(agg.samples[s]);
      agg.samples = std::move(kept);
    }
    agg.samples.push_back(m);
    agg.min = std::min(agg.min, m);
    agg.sum += m;
    ++agg.n;
    totals_.cra_min = std::min(totals_.cra_min, m);
  }
  agg.predicted_sum += predicted;
  ++agg.predicted_n;
  totals_.rows += row_mass.size();
  ++totals_.chunks;
  totals_.overhead_seconds += seconds;
}

std::vector<AuditHeadStats> QualityAuditor::head_stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<AuditHeadStats> out;
  out.reserve(heads_.size());
  for (const auto& [key, agg] : heads_) {
    if (agg.n == 0) continue;
    AuditHeadStats hs;
    hs.layer = key.first;
    hs.head = key.second;
    hs.rows = agg.n;
    std::vector<double> sorted = agg.samples;
    std::sort(sorted.begin(), sorted.end());
    hs.cra_p5 = percentile_nearest_rank(sorted, 0.05);
    hs.cra_p50 = percentile_nearest_rank(sorted, 0.50);
    hs.cra_min = agg.min;
    hs.cra_mean = agg.sum / static_cast<double>(agg.n);
    hs.predicted =
        agg.predicted_n == 0 ? 0.0 : agg.predicted_sum / static_cast<double>(agg.predicted_n);
    hs.cra_gap = hs.predicted - hs.cra_p50;
    out.push_back(hs);
  }
  return out;
}

QualityAuditor::Totals QualityAuditor::totals() const {
  std::lock_guard<std::mutex> lock(mu_);
  Totals t = totals_;
  if (t.rows > 0) {
    double sum = 0.0;
    std::uint64_t n = 0;
    for (const auto& [key, agg] : heads_) {
      sum += agg.sum;
      n += agg.n;
    }
    t.cra_mean = n == 0 ? 1.0 : sum / static_cast<double>(n);
  }
  return t;
}

void QualityAuditor::publish() const {
  if (!enabled()) return;
  for (const AuditHeadStats& hs : head_stats()) {
    const std::string base =
        "audit.L" + std::to_string(hs.layer) + "H" + std::to_string(hs.head) + ".";
    SATTN_GAUGE_SET(base + "cra_p5", hs.cra_p5);
    SATTN_GAUGE_SET(base + "cra_p50", hs.cra_p50);
    SATTN_GAUGE_SET(base + "cra_min", hs.cra_min);
    SATTN_GAUGE_SET(base + "cra_mean", hs.cra_mean);
    SATTN_GAUGE_SET(base + "predicted", hs.predicted);
    SATTN_GAUGE_SET(base + "cra_gap", hs.cra_gap);
    SATTN_GAUGE_SET(base + "rows", static_cast<double>(hs.rows));
  }
  const Totals t = totals();
  if (t.chunks == 0) return;
  SATTN_GAUGE_SET("audit.rows_audited", static_cast<double>(t.rows));
  SATTN_GAUGE_SET("audit.chunks_audited", static_cast<double>(t.chunks));
  SATTN_GAUGE_SET("audit.cra_min", t.cra_min);
  SATTN_GAUGE_SET("audit.cra_mean", t.cra_mean);
  SATTN_GAUGE_SET("audit.overhead_seconds", t.overhead_seconds);
}

}  // namespace sattn::obs
