// Deterministic resource accounting: every attention kernel and
// SampleAttention stage reports the FLOPs and logical bytes it actually
// executed (measured loop trip counts, not closed-form guesses) into a
// global ResourceAccountant, keyed by kernel and the (layer, head) /
// request the call was attributed to.
//
// This is the measurement half of the cost-model story: src/perf/cost_model
// predicts A100 seconds from analytic FLOP/byte formulas, and
// src/perf/model_validation.h compares those formulas against what the
// kernels accounted here, so the Table 4 / Fig 5 reproduction is
// continuously cross-validated instead of asserted.
//
// Conventions (substrate is fp32, kAcctBytesPerElement = 4):
//
//   * One "score eval" is one causal (query, key) pair the kernel actually
//     evaluated. flops = 4 * head_dim * evals (2d for the QK^T dot plus 2d
//     for the PV accumulate, matching perf::attention_flops).
//   * Logical bytes = Q read + O write (2 * sq * d elements) + the K/V
//     element streams (2 * d elements per eval) + score traffic (kernels
//     that materialize an [sq x sk] score buffer, i.e. full attention) +
//     mask/index metadata (8 bytes per run / stripe / block / tile for
//     sparse layouts). "Logical" means the traffic the algorithm requests;
//     caches may serve part of it, which is exactly the distinction the
//     roofline model cares about.
//
// Attribution: AcctScope (thread-local, RAII) tags charges with a
// (layer, head); RequestContext (thread-local, RAII) additionally
// accumulates per-request totals so serving paths can answer "where did
// this request's FLOPs go". Kernels tally trip counts inside parallel_for
// workers into call-local accumulators and charge once on the calling
// thread, where the scopes are visible.
//
// Enable contract: same as obs/trace.h — charges are dropped after one
// relaxed obs::enabled() load when collection is off, and the accountant
// itself holds a mutex only on the (per kernel call, not per element)
// charge path.
#pragma once

#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/trace.h"

namespace sattn::obs {

// Bytes per logical element on this substrate (fp32).
inline constexpr double kAcctBytesPerElement = 4.0;

struct ResourceUsage {
  double flops = 0.0;
  double bytes = 0.0;
  double calls = 0.0;

  // Measured arithmetic intensity (FLOPs per logical byte); 0 when no bytes
  // were accounted.
  double intensity() const { return bytes > 0.0 ? flops / bytes : 0.0; }

  ResourceUsage& operator+=(const ResourceUsage& o) {
    flops += o.flops;
    bytes += o.bytes;
    calls += o.calls;
    return *this;
  }
};

// Attribution key: kernel (or stage) name plus the (layer, head) in effect
// when the charge was made; -1 means unattributed.
struct AcctKey {
  std::string kernel;
  long long layer = -1;
  long long head = -1;

  friend bool operator<(const AcctKey& a, const AcctKey& b) {
    if (a.kernel != b.kernel) return a.kernel < b.kernel;
    if (a.layer != b.layer) return a.layer < b.layer;
    return a.head < b.head;
  }
  friend bool operator==(const AcctKey& a, const AcctKey& b) {
    return a.kernel == b.kernel && a.layer == b.layer && a.head == b.head;
  }
};

// Shape key for the cost-model cross-validation: the accountant also
// aggregates per (kernel, sq, sk, head_dim) so perf/model_validation can
// re-derive the analytic prediction for every shape that actually ran.
struct AcctShape {
  std::string kernel;
  long long sq = 0;
  long long sk = 0;
  long long head_dim = 0;

  friend bool operator<(const AcctShape& a, const AcctShape& b) {
    if (a.kernel != b.kernel) return a.kernel < b.kernel;
    if (a.sq != b.sq) return a.sq < b.sq;
    if (a.sk != b.sk) return a.sk < b.sk;
    return a.head_dim < b.head_dim;
  }
  friend bool operator==(const AcctShape& a, const AcctShape& b) {
    return a.kernel == b.kernel && a.sq == b.sq && a.sk == b.sk && a.head_dim == b.head_dim;
  }
};

// Global accountant; heap-allocated and never destroyed (same lifetime
// contract as obs::Collector).
class ResourceAccountant {
 public:
  static ResourceAccountant& global();

  // Adds `u` under (kernel, current AcctScope layer/head) and, when the
  // shape is meaningful (sq > 0), under (kernel, sq, sk, head_dim). Also
  // feeds the current RequestContext, if any. No-op when obs::enabled() is
  // false.
  void charge(std::string_view kernel, long long sq, long long sk, long long head_dim,
              const ResourceUsage& u);

  // Per-(kernel, layer, head) entries, sorted by key.
  std::vector<std::pair<AcctKey, ResourceUsage>> snapshot() const;

  // Per-(kernel, shape) entries, sorted by key.
  std::vector<std::pair<AcctShape, ResourceUsage>> shapes() const;

  // Sum over every (layer, head) entry of one kernel / of everything.
  ResourceUsage kernel_total(std::string_view kernel) const;
  ResourceUsage total() const;

  void reset();

 private:
  ResourceAccountant() = default;

  mutable std::mutex mu_;
  std::map<AcctKey, ResourceUsage> entries_;
  std::map<AcctShape, ResourceUsage> shapes_;
};

// RAII (layer, head) attribution for the calling thread. Nests; the
// enclosing scope is restored on destruction.
class AcctScope {
 public:
  AcctScope(long long layer, long long head);
  ~AcctScope();

  AcctScope(const AcctScope&) = delete;
  AcctScope& operator=(const AcctScope&) = delete;

  // Scope in effect on this thread; {-1, -1} when none.
  static std::pair<long long, long long> current();

 private:
  long long prev_layer_;
  long long prev_head_;
};

// RAII per-request attribution for the calling thread: while alive, every
// accountant charge made on this thread is also accumulated into this
// request's ResourceUsage. Nests (inner context shadows the outer).
class RequestContext {
 public:
  explicit RequestContext(std::string request_id);
  ~RequestContext();

  RequestContext(const RequestContext&) = delete;
  RequestContext& operator=(const RequestContext&) = delete;

  static RequestContext* current();

  const std::string& id() const { return id_; }
  const ResourceUsage& usage() const { return usage_; }
  void add(const ResourceUsage& u) { usage_ += u; }

 private:
  std::string id_;
  ResourceUsage usage_;
  RequestContext* prev_;
};

// Measured charge for one attention-kernel call: `evals` causal score
// evaluations over a [sq x sk] call with the given head_dim. Applies the
// flops/bytes conventions above, feeds the legacy `attn.kernel_*`
// counters, and records the call in the accountant. `score_bytes` is the
// materialized-score traffic (full attention), `meta_bytes` the mask/index
// metadata traffic (sparse layouts).
void charge_attention_kernel(const char* kernel, long long sq, long long sk, long long head_dim,
                             double evals, double score_bytes = 0.0, double meta_bytes = 0.0);

// Generic charge for non-kernel stages (sampling, filtering, layer_plan).
void charge_stage(const char* stage, double flops, double bytes);

// Publishes accountant totals as metrics for the run report: gauges
// `acct.<kernel>.flops/.bytes/.calls/.intensity` per kernel plus
// `acct.total.flops/.bytes`. Benches call this once before collecting the
// report. No-op when collection is disabled or nothing was accounted.
void publish_accounting();

}  // namespace sattn::obs
