#include "obs/trace.h"

#include "obs/accounting.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <cstring>

namespace sattn::obs {
namespace {

using clock = std::chrono::steady_clock;

std::int64_t now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(clock::now().time_since_epoch())
      .count();
}

struct TraceEnv {
  bool hard_off = false;
  bool start_enabled = false;
};

TraceEnv read_env() {
  TraceEnv env;
  const char* v = std::getenv("SATTN_TRACE");
  if (v == nullptr) return env;
  if (std::strcmp(v, "0") == 0) {
    env.hard_off = true;
  } else if (*v != '\0') {
    env.start_enabled = true;
  }
  return env;
}

const TraceEnv g_env = read_env();
std::atomic<bool> g_enabled{g_env.start_enabled};

}  // namespace

bool enabled() { return g_enabled.load(std::memory_order_relaxed); }

bool hard_disabled() { return g_env.hard_off; }

bool set_enabled(bool on) {
  if (on && g_env.hard_off) on = false;
  g_enabled.store(on, std::memory_order_relaxed);
  return on;
}

struct Collector::ThreadLog {
  std::uint32_t tid = 0;

  // The stack is touched only by the owning thread; `done` is shared with
  // snapshot readers and guarded by `mu`.
  struct OpenSpan {
    std::string name;
    std::string request_id;
    double start_us = 0.0;
  };
  std::vector<OpenSpan> stack;

  std::mutex mu;
  std::vector<SpanRecord> done;
};

Collector::Collector() : epoch_ns_(now_ns()) {}

Collector& Collector::global() {
  // Heap-allocated and never freed: worker threads (e.g. ThreadPool::global)
  // may still end spans while static destructors run.
  static Collector* g = new Collector();
  return *g;
}

double Collector::now_us() const {
  return static_cast<double>(now_ns() - epoch_ns_) * 1e-3;
}

Collector::ThreadLog& Collector::this_thread_log() {
  thread_local ThreadLog* log = nullptr;
  if (log == nullptr) {
    std::lock_guard<std::mutex> lock(registry_mu_);
    logs_.push_back(std::make_unique<ThreadLog>());
    log = logs_.back().get();
    log->tid = static_cast<std::uint32_t>(logs_.size());
  }
  return *log;
}

void Collector::begin_span(const char* name) { begin_span(std::string(name)); }

void Collector::begin_span(std::string name) {
  ThreadLog& log = this_thread_log();
  // Capture the request attribution at open time: the RequestContext is a
  // thread-local RAII scope, so it is still the right one even if the span
  // outlives an inner context.
  const RequestContext* ctx = RequestContext::current();
  log.stack.push_back({std::move(name), ctx != nullptr ? ctx->id() : std::string(), now_us()});
}

void Collector::end_span() {
  ThreadLog& log = this_thread_log();
  if (log.stack.empty()) return;  // defensive: unbalanced end
  ThreadLog::OpenSpan open = std::move(log.stack.back());
  log.stack.pop_back();
  SpanRecord rec;
  rec.name = std::move(open.name);
  rec.request_id = std::move(open.request_id);
  rec.tid = log.tid;
  rec.start_us = open.start_us;
  rec.dur_us = std::max(0.0, now_us() - open.start_us);
  std::lock_guard<std::mutex> lock(log.mu);
  log.done.push_back(std::move(rec));
}

std::vector<SpanRecord> Collector::spans() const {
  std::vector<SpanRecord> out;
  std::lock_guard<std::mutex> reg(registry_mu_);
  for (const auto& log : logs_) {
    std::lock_guard<std::mutex> lock(log->mu);
    out.insert(out.end(), log->done.begin(), log->done.end());
  }
  return out;
}

Counter& Collector::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(counters_mu_);
  for (auto& [n, c] : counters_) {
    if (n == name) return *c;
  }
  counters_.emplace_back(name, std::make_unique<Counter>());
  return *counters_.back().second;
}

std::vector<CounterValue> Collector::counters() const {
  std::vector<CounterValue> out;
  {
    std::lock_guard<std::mutex> lock(counters_mu_);
    out.reserve(counters_.size());
    for (const auto& [n, c] : counters_) out.push_back({n, c->value()});
  }
  std::sort(out.begin(), out.end(),
            [](const CounterValue& a, const CounterValue& b) { return a.name < b.name; });
  return out;
}

void Collector::reset() {
  {
    std::lock_guard<std::mutex> reg(registry_mu_);
    for (const auto& log : logs_) {
      std::lock_guard<std::mutex> lock(log->mu);
      log->done.clear();
    }
  }
  std::lock_guard<std::mutex> lock(counters_mu_);
  for (auto& [n, c] : counters_) c->reset();
}

}  // namespace sattn::obs
