// Live telemetry plane for the serving engine (docs/OBSERVABILITY.md,
// "Live telemetry & alerts").
//
// The run report answers questions post-mortem; this subsystem answers them
// *while the engine runs*. Three pieces:
//
//   * Lock-free per-thread event rings (TelemetryRing / TelemetryHub):
//     producer threads — the engine loop, submitters — push fixed-size
//     TelemetryEvents with one release store each; a single consumer (the
//     publisher thread) drains all rings and merges by timestamp. A full
//     ring drops the newest event and counts it (`events_dropped` in the
//     stream) instead of ever blocking a producer.
//
//   * Rolling time-windowed aggregators: RollingHistogram keeps the raw
//     samples of the last `window_seconds` and answers nearest-rank
//     p50/p95/p99 over *now*, not the whole run; EwmaRate is an
//     exponentially-decayed event rate (tokens/s, completions/s).
//
//   * TelemetryPublisher: a thread that periodically drains the hub,
//     folds events into the rolling windows, evaluates the quality-drift
//     monitors, and emits one NDJSON line per tick (plus an optional
//     Prometheus-style text exposition file, rewritten atomically). The
//     publisher never touches engine request state — it sees only the
//     event stream and a snapshot callback that reads engine atomics, so
//     the whole plane is TSan-clean by construction.
//
// Quality-drift monitors (DriftMonitor): rolling windows over retained-KV
// fraction, dense-fallback rate, escalation rate, and TTFT/TPOT tails.
// Crossing a configured threshold raises an `alert.<name>` counter on the
// rising edge (surfaced in the run report's lifecycle view) and, when
// `pretrip_breaker` is set, asks the engine to pre-trip the PR 7 planning
// circuit breaker before the fault streak alone would.
//
// Cost contract: when TelemetryOptions.enabled is false the engine creates
// no hub and no publisher — every emission site is one pointer test. The
// enabled-vs-disabled overhead on bench_serving --engine is pinned < 2%
// (telemetry_test, check_sanitizers.sh).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <cstring>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

namespace sattn::obs {

// ---------------------------------------------------------------------------
// Events
// ---------------------------------------------------------------------------

enum class TelemetryEventKind : std::uint8_t {
  kSubmit = 0,        // submitter thread; t = arrival instant
  kAdmit,             // request admitted to the live set
  kPrefillChunk,      // value = measured chunk seconds, aux = chunk tokens
  kPrefillDone,       // value = measured TTFT seconds
  kDecodeStep,        // value = measured step seconds
  kComplete,          // value = mean TPOT seconds, aux = decoded tokens
  kShed,              // aux = shed-reason hash (informational)
  kCancel,
  kPlan,              // value = retained-KV fraction; aux bit0 = escalated,
                      // bit1 = dense fallback
  kAudit,             // value = measured chunk CRA (worst audited row),
                      // aux = audited row count (obs/audit.h)
};

// Request lifecycle phases, shared by the `timeline.<request>` series values
// and the run report's timeline view so both decode the same numeric coding.
enum class RequestPhase : int {
  kSubmitted = 0,
  kAdmitted = 1,
  kPrefillChunk = 2,
  kPrefillDone = 3,
  kDecodeStep = 4,
  kCompleted = 5,
  kShed = 6,
  kCancelled = 7,
};

const char* request_phase_name(RequestPhase p);

// Fixed-size POD so ring slots need no allocation and drains are memcpys.
struct TelemetryEvent {
  double t = 0.0;       // engine seconds
  float value = 0.0f;   // kind-specific payload (seconds, fraction)
  std::uint32_t aux = 0;
  TelemetryEventKind kind = TelemetryEventKind::kSubmit;
  char id[31] = {};  // NUL-terminated request id, truncated to fit

  void set_id(std::string_view s) {
    const std::size_t n = s.size() < sizeof(id) - 1 ? s.size() : sizeof(id) - 1;
    std::memcpy(id, s.data(), n);
    id[n] = '\0';
  }
  std::string_view id_view() const { return std::string_view(id); }
};
static_assert(sizeof(TelemetryEvent) == 48, "keep ring slots compact");

// ---------------------------------------------------------------------------
// Lock-free SPSC ring
// ---------------------------------------------------------------------------

// Single-producer single-consumer bounded ring. The producer is the thread
// the ring was registered for; the consumer is the publisher. A push into a
// full ring drops the event (newest-dropped) and bumps dropped() — telemetry
// must never apply backpressure to the engine.
class TelemetryRing {
 public:
  // Capacity is rounded up to a power of two, minimum 8.
  explicit TelemetryRing(std::size_t capacity);

  // Producer thread only.
  bool try_push(const TelemetryEvent& ev);

  // Consumer thread only: appends every pending event to `out` in push
  // order; returns how many were drained.
  std::size_t drain(std::vector<TelemetryEvent>& out);

  std::uint64_t dropped() const { return dropped_.load(std::memory_order_relaxed); }
  std::size_t capacity() const { return slots_.size(); }

 private:
  std::vector<TelemetryEvent> slots_;
  std::uint64_t mask_ = 0;
  std::atomic<std::uint64_t> head_{0};  // next write index (producer-owned)
  std::atomic<std::uint64_t> tail_{0};  // next read index (consumer-owned)
  std::atomic<std::uint64_t> dropped_{0};
};

// Per-thread ring registry: push() finds (or lazily registers) the calling
// thread's ring through a thread-local cache, so after the first push a
// thread never takes the registry mutex again. Hub ids are globally unique
// and never reused, so a stale cache entry from a destroyed hub can never
// alias a new one (the cached shared_ptr keeps the orphan ring alive and
// writes to it are simply never drained).
class TelemetryHub {
 public:
  explicit TelemetryHub(std::size_t ring_capacity = 4096);

  // Any thread. Lock-free after the calling thread's first push.
  void push(const TelemetryEvent& ev);

  // Single consumer: drains every ring and appends the union to `out`
  // sorted by event time. Returns how many events were drained.
  std::size_t drain(std::vector<TelemetryEvent>& out);

  // Total events dropped across all rings (monotonic).
  std::uint64_t dropped() const;

  std::uint64_t id() const { return id_; }
  std::size_t ring_count() const;

 private:
  std::shared_ptr<TelemetryRing> ring_for_this_thread();

  const std::uint64_t id_;
  const std::size_t ring_capacity_;
  mutable std::mutex mu_;
  std::vector<std::shared_ptr<TelemetryRing>> rings_;
};

// ---------------------------------------------------------------------------
// Rolling aggregators
// ---------------------------------------------------------------------------

struct RollingStats {
  std::size_t count = 0;
  double mean = 0.0;
  double min = 0.0;
  double max = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
};

// Sliding-window sample buffer: keeps (t, v) for the last window_seconds
// (bounded by max_samples, oldest evicted first) and computes nearest-rank
// percentiles over exactly that window. Owned by one thread (the publisher);
// not internally synchronized.
class RollingHistogram {
 public:
  explicit RollingHistogram(double window_seconds = 10.0, std::size_t max_samples = 4096);

  void observe(double t, double v);
  RollingStats stats(double now);
  std::size_t size() const { return samples_.size(); }
  double window_seconds() const { return window_s_; }

 private:
  void evict(double now);

  double window_s_;
  std::size_t max_samples_;
  std::deque<std::pair<double, double>> samples_;
};

// Exponentially-decayed event rate: add(t, n) decays the accumulator with
// time constant tau and adds n; rate(now) returns events/second. For a
// steady stream of r events/s the estimate converges to r within ~2 tau.
class EwmaRate {
 public:
  explicit EwmaRate(double tau_seconds = 2.0);

  void add(double t, double n = 1.0);
  double rate(double now) const;

 private:
  double tau_;
  double acc_ = 0.0;
  double last_t_ = 0.0;
};

// ---------------------------------------------------------------------------
// Quality-drift monitors
// ---------------------------------------------------------------------------

// Thresholds; a negative value disables that monitor. Rates are fractions
// of planning episodes inside the rolling window (0..1). A monitor only
// fires once its window holds at least min_samples observations, so a
// single early dense fallback cannot trip an alert.
struct DriftThresholds {
  double window_seconds = 5.0;
  std::size_t min_samples = 8;
  double min_retained_kv_frac = -1.0;   // alert when rolling mean falls below
  double max_dense_fallback_rate = -1.0;
  double max_escalation_rate = -1.0;
  double max_ttft_p99_seconds = -1.0;
  double max_tpot_p99_seconds = -1.0;
  // Alert when the rolling mean of *measured* chunk CRA (shadow-sampled by
  // the quality auditor, obs/audit.h) falls below this floor. Unlike the
  // proxies above, this monitor fires on the paper's own quality metric.
  double min_measured_cra = -1.0;
  // Ask the engine to pre-trip its planning circuit breaker while a
  // quality alert (retained-KV / dense-fallback / escalation / measured
  // CRA) is active.
  bool pretrip_breaker = false;
};

struct AlertState {
  std::string name;        // e.g. "dense_fallback_rate_high"
  double value = 0.0;      // monitored value at evaluation time
  double threshold = 0.0;
  bool active = false;
  double since_s = 0.0;    // engine time the alert last became active
};

// Rolling-window drift evaluation. evaluate() recomputes every configured
// monitor and bumps `alert.<name>` counters on rising edges (through the
// obs counter registry, so the lifecycle view picks them up). Owned by the
// publisher thread; not internally synchronized.
class DriftMonitor {
 public:
  explicit DriftMonitor(DriftThresholds th);

  void observe_plan(double t, double retained_frac, bool escalated, bool dense_fallback);
  void observe_ttft(double t, double seconds);
  void observe_tpot(double t, double seconds);
  void observe_audit(double t, double measured_cra);

  const std::vector<AlertState>& evaluate(double now);
  const std::vector<AlertState>& alerts() const { return alerts_; }

  // True when a *quality* alert (retained-KV fraction, dense-fallback rate,
  // escalation rate) is active — the pretrip_breaker trigger set.
  bool quality_alert_active() const;

 private:
  struct PlanSample {
    double t;
    float retained;
    bool escalated;
    bool dense_fallback;
  };

  DriftThresholds th_;
  std::deque<PlanSample> plans_;
  RollingHistogram ttft_;
  RollingHistogram tpot_;
  RollingHistogram audit_;
  std::vector<AlertState> alerts_;
};

// ---------------------------------------------------------------------------
// Publisher
// ---------------------------------------------------------------------------

struct TelemetryOptions {
  bool enabled = false;
  double interval_seconds = 0.05;  // publisher tick period
  std::string ndjson_path;         // "" = no NDJSON stream file
  std::string prom_path;           // "" = no Prometheus exposition file
  double window_seconds = 10.0;    // rolling percentile window
  double rate_tau_seconds = 2.0;   // EWMA rate time constant
  std::size_t ring_capacity = 4096;
  DriftThresholds drift;
};

// What the engine exposes to the publisher each tick: atomics only, read by
// the snapshot callback on the publisher thread.
struct EngineTelemetrySnapshot {
  double t = 0.0;  // engine seconds now
  std::size_t live = 0;    // requests in flight (any state)
  std::size_t active = 0;  // requests past the KV-budget gate
  double kv_bytes = 0.0;
  double kv_budget_bytes = 0.0;
  int breaker_state = 0;  // 0 closed / 1 open / 2 half-open
  double heartbeat_age_s = 0.0;
  long long watchdog_stalls = 0;
};

// Cumulative event totals folded by the publisher from the drained stream.
struct TelemetryTotals {
  std::uint64_t submitted = 0;
  std::uint64_t admitted = 0;
  std::uint64_t completed = 0;
  std::uint64_t shed = 0;
  std::uint64_t cancelled = 0;
  std::uint64_t prefill_chunks = 0;
  std::uint64_t decode_steps = 0;
  std::uint64_t plans = 0;
  std::uint64_t escalations = 0;
  std::uint64_t dense_fallbacks = 0;
  std::uint64_t audited_chunks = 0;
  std::uint64_t audited_rows = 0;
};

// The publisher thread: drains the hub every interval, folds events into
// the rolling windows and the drift monitor, and emits one NDJSON line per
// tick (schema "sattn.telemetry" v1) plus an optional Prometheus text file
// (written to <path>.tmp then renamed, so readers never see a torn file).
// stop() performs one final flush tick and joins; it is idempotent and also
// runs from the destructor. tick() is public so tests can drive the
// pipeline deterministically without the thread.
class TelemetryPublisher {
 public:
  TelemetryPublisher(TelemetryOptions opts, std::string label, TelemetryHub* hub,
                     std::function<EngineTelemetrySnapshot()> snapshot_fn);
  ~TelemetryPublisher();

  TelemetryPublisher(const TelemetryPublisher&) = delete;
  TelemetryPublisher& operator=(const TelemetryPublisher&) = delete;

  void start();
  void stop();
  void tick();

  // True once while a quality alert is active and drift.pretrip_breaker is
  // set; consuming resets the flag until the publisher re-arms it. Called
  // by the engine loop (any thread).
  bool consume_breaker_pretrip();

  // Most recent NDJSON line (also produced when ndjson_path is empty, so
  // in-process consumers can read the stream without a file).
  std::string last_line() const;

  std::vector<AlertState> alerts() const;
  TelemetryTotals totals() const;
  std::uint64_t ticks() const { return ticks_.load(std::memory_order_relaxed); }
  std::uint64_t events_seen() const { return events_seen_.load(std::memory_order_relaxed); }

 private:
  void run();
  void fold(const TelemetryEvent& ev);
  std::string render_line(const EngineTelemetrySnapshot& snap);
  void write_prometheus(const EngineTelemetrySnapshot& snap);
  void publish_gauges(const EngineTelemetrySnapshot& snap);

  TelemetryOptions opts_;
  std::string label_;
  TelemetryHub* hub_;
  std::function<EngineTelemetrySnapshot()> snapshot_fn_;

  // Publisher-thread-owned aggregation state.
  TelemetryTotals totals_;
  RollingHistogram ttft_;
  RollingHistogram tpot_;
  RollingHistogram retained_;
  RollingHistogram audit_cra_;
  EwmaRate submit_rate_;
  EwmaRate complete_rate_;
  EwmaRate decode_tok_rate_;
  EwmaRate shed_rate_;
  DriftMonitor drift_;
  std::vector<TelemetryEvent> scratch_;
  std::uint64_t seq_ = 0;

  std::atomic<std::uint64_t> ticks_{0};
  std::atomic<std::uint64_t> events_seen_{0};
  std::atomic<bool> pretrip_{false};

  mutable std::mutex state_mu_;  // guards last_line_/alerts/totals copies
  std::string last_line_;
  std::vector<AlertState> alerts_copy_;
  TelemetryTotals totals_copy_;

  std::mutex run_mu_;
  std::condition_variable run_cv_;
  bool stop_requested_ = false;
  bool stopped_ = false;
  std::thread thread_;
};

}  // namespace sattn::obs
