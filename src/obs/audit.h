// Online attention-quality auditor: shadow-sampled measured CRA.
//
// The paper's whole claim is *near-lossless*: Lemma 1 bounds output error by
// R * (1 - CRA), and the two-stage planner targets CRA >= alpha — but a
// planner target is a prediction, not a measurement. The QualityAuditor
// closes that loop in the serving engine: for a deterministic pseudo-random
// fraction of (request, query-row) work items it recomputes the ground-truth
// softmax row via the existing dense score path (attention/score_utils.h)
// and scores the *deployed* StructuredMask with row_retained_mass
// (metrics/cra.h), producing measured per-head CRA estimates and
// predicted-vs-measured deltas as `audit.*` gauges.
//
// Sampling design (docs/OBSERVABILITY.md, "Online quality audit"):
//
//   * Row selection is threshold hashing: a row is audited iff
//     hash(seed, request_id, absolute_row) maps below `sample_rate` in
//     [0, 1). Selection therefore depends only on (seed, id, row) — never on
//     batch interleaving or wall time — so audited sets are reproducible
//     across runs, and the sets are *nested*: every row audited at rate r1
//     is also audited at any rate r2 > r1. Because the CRA estimate is a
//     min over audited rows, nesting makes the estimate monotonically
//     non-increasing in the sample rate and exactly equal to the offline
//     cra() at rate 1.0 (pinned in tests/audit_test.cpp).
//   * `row_budget` caps audited rows per chunk so one pathological chunk
//     cannot blow the overhead budget; the cap keeps the lowest-hash rows
//     so budgeted selection stays deterministic too.
//   * Audit cost is charged to the ResourceAccountant under the "audit"
//     kernel and billed to *guard* time by the engine, preserving the
//     queue + compute + guard == ttft attribution identity.
//
// Thread safety: audit_chunk / record_decode are called from ragged-sweep
// pool workers; per-head accumulation takes a mutex (audit sites are
// sampled, never kernel-inner-loop hot). publish() snapshots under the same
// mutex.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <mutex>
#include <span>
#include <string_view>
#include <utility>
#include <vector>

#include "attention/masks.h"
#include "core/tensor.h"

namespace sattn::obs {

struct AuditOptions {
  bool enabled = false;
  // Fraction of query rows shadow-audited, in [0, 1]. The default keeps the
  // measured overhead of an audited engine run within the 2% telemetry-style
  // bound (tests/audit_test.cpp, AuditOverheadTest).
  double sample_rate = 0.02;
  // Hard cap on audited rows per prefill chunk (0 disables the cap).
  Index row_budget = 4;
  // Seed for the threshold hash; two runs with the same seed audit the same
  // (request, row) set regardless of batching.
  std::uint64_t seed = 0xa0d17ull;
  // Scorecard slots: serving requests are single-head synthetic workloads,
  // so the engine attributes each request to a stable pseudo-head bucket
  // hash(id) % head_buckets at layer 0. Real multi-head integrations pass
  // their own (layer, head) instead.
  Index head_buckets = 4;
};

// Result of auditing one chunk (or one decode row).
struct AuditResult {
  Index rows = 0;         // rows actually audited (0: nothing selected)
  double cra_min = 1.0;   // worst retained mass over audited rows
  double cra_mean = 1.0;  // mean retained mass over audited rows
  double seconds = 0.0;   // wall time spent auditing (engine bills to guard)
};

// Per-head scorecard snapshot, as published to `audit.L<l>H<h>.*` gauges.
struct AuditHeadStats {
  long long layer = 0;
  long long head = 0;
  std::uint64_t rows = 0;
  double cra_p5 = 0.0;
  double cra_p50 = 0.0;
  double cra_min = 0.0;
  double cra_mean = 0.0;
  double predicted = 0.0;  // mean planner-predicted CRA over audited chunks
  double cra_gap = 0.0;    // predicted - measured p50 (positive: overclaim)
};

class QualityAuditor {
 public:
  explicit QualityAuditor(const AuditOptions& opts);

  const AuditOptions& options() const { return opts_; }

  // Deterministic threshold-hash selection for one absolute query row of one
  // request. Pure: depends only on (seed, request_id, abs_row, sample_rate).
  bool selects_row(std::string_view request_id, Index abs_row) const;

  // Audits the deployed mask of one prefill chunk. `chunk` holds query rows
  // [q_lo, q_lo + chunk.sq()) of the request (k/v prefix [0, chunk.sk())),
  // exactly as handed to the sparse kernel; `mask` is the plan actually
  // executed; `predicted` is the planner's own CRA claim for this chunk
  // (SamplePlan.filter.coverage). Recomputes ground-truth softmax rows for
  // the selected subset and scores row_retained_mass against the mask.
  // Returns rows = 0 without touching Q/K when nothing is selected.
  AuditResult audit_chunk(std::string_view request_id, const AttentionInput& chunk,
                          const StructuredMask& mask, Index q_lo, long long layer,
                          long long head, double predicted);

  // Records one already-scored decode row (the engine computes retained mass
  // from the exact decode weights via audited_decode_retained_mass in
  // runtime/decode.cpp, since decode ground truth is free there).
  void record_decode(long long layer, long long head, double retained, double predicted,
                     double seconds);

  // Scorecard snapshot, sorted by (layer, head).
  std::vector<AuditHeadStats> head_stats() const;

  struct Totals {
    std::uint64_t rows = 0;
    std::uint64_t chunks = 0;  // audited chunks + audited decode rows
    double cra_min = 1.0;
    double cra_mean = 1.0;
    double overhead_seconds = 0.0;
  };
  Totals totals() const;

  // Publishes the scorecard as gauges: per head
  // `audit.L<l>H<h>.{cra_p5,cra_p50,cra_min,cra_mean,predicted,cra_gap,rows}`
  // plus run totals `audit.{rows_audited,chunks_audited,cra_min,cra_mean,
  // overhead_seconds}`. No-op when obs collection is disabled.
  void publish() const;

  // Per-head raw-sample bound; on overflow the sample vector is decimated
  // by stride doubling (Series-style), keeping a representative spread.
  static constexpr std::size_t kMaxHeadSamples = 8192;

 private:
  struct HeadAgg {
    std::vector<double> samples;  // per-row retained mass
    double min = 1.0;
    double sum = 0.0;
    std::uint64_t n = 0;
    double predicted_sum = 0.0;
    std::uint64_t predicted_n = 0;
  };

  void accumulate_locked(long long layer, long long head, std::span<const double> row_mass,
                         double predicted, double seconds);

  AuditOptions opts_;
  mutable std::mutex mu_;
  std::map<std::pair<long long, long long>, HeadAgg> heads_;
  Totals totals_;
};

}  // namespace sattn::obs
