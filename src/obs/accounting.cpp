#include "obs/accounting.h"

#include <string>

#include "obs/metrics.h"

namespace sattn::obs {
namespace {

struct ScopeState {
  long long layer = -1;
  long long head = -1;
};

thread_local ScopeState t_scope;
thread_local RequestContext* t_request = nullptr;

}  // namespace

ResourceAccountant& ResourceAccountant::global() {
  static ResourceAccountant* instance = new ResourceAccountant();
  return *instance;
}

void ResourceAccountant::charge(std::string_view kernel, long long sq, long long sk,
                                long long head_dim, const ResourceUsage& u) {
  if (!enabled()) return;
  if (t_request != nullptr) t_request->add(u);
  AcctKey key{std::string(kernel), t_scope.layer, t_scope.head};
  std::lock_guard<std::mutex> lock(mu_);
  entries_[std::move(key)] += u;
  if (sq > 0) {
    shapes_[AcctShape{std::string(kernel), sq, sk, head_dim}] += u;
  }
}

std::vector<std::pair<AcctKey, ResourceUsage>> ResourceAccountant::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return {entries_.begin(), entries_.end()};
}

std::vector<std::pair<AcctShape, ResourceUsage>> ResourceAccountant::shapes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return {shapes_.begin(), shapes_.end()};
}

ResourceUsage ResourceAccountant::kernel_total(std::string_view kernel) const {
  ResourceUsage total;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [key, usage] : entries_) {
    if (key.kernel == kernel) total += usage;
  }
  return total;
}

ResourceUsage ResourceAccountant::total() const {
  ResourceUsage total;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [key, usage] : entries_) total += usage;
  return total;
}

void ResourceAccountant::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.clear();
  shapes_.clear();
}

AcctScope::AcctScope(long long layer, long long head)
    : prev_layer_(t_scope.layer), prev_head_(t_scope.head) {
  t_scope.layer = layer;
  t_scope.head = head;
}

AcctScope::~AcctScope() {
  t_scope.layer = prev_layer_;
  t_scope.head = prev_head_;
}

std::pair<long long, long long> AcctScope::current() { return {t_scope.layer, t_scope.head}; }

RequestContext::RequestContext(std::string request_id)
    : id_(std::move(request_id)), prev_(t_request) {
  t_request = this;
}

RequestContext::~RequestContext() { t_request = prev_; }

RequestContext* RequestContext::current() { return t_request; }

void charge_attention_kernel(const char* kernel, long long sq, long long sk, long long head_dim,
                             double evals, double score_bytes, double meta_bytes) {
  if (!enabled()) return;
  const double d = static_cast<double>(head_dim);
  ResourceUsage u;
  u.flops = 4.0 * d * evals;
  u.bytes = kAcctBytesPerElement * (2.0 * static_cast<double>(sq) * d + 2.0 * d * evals) +
            score_bytes + meta_bytes;
  u.calls = 1.0;
  SATTN_COUNTER_ADD("attn.kernel_score_evals", evals);
  SATTN_COUNTER_ADD("attn.kernel_flops", u.flops);
  SATTN_COUNTER_ADD("attn.kernel_bytes", u.bytes);
  ResourceAccountant::global().charge(kernel, sq, sk, head_dim, u);
}

void charge_stage(const char* stage, double flops, double bytes) {
  if (!enabled()) return;
  ResourceUsage u;
  u.flops = flops;
  u.bytes = bytes;
  u.calls = 1.0;
  ResourceAccountant::global().charge(stage, 0, 0, 0, u);
}

void publish_accounting() {
  if (!enabled()) return;
  std::map<std::string, ResourceUsage> per_kernel;
  ResourceUsage grand;
  for (const auto& [key, usage] : ResourceAccountant::global().snapshot()) {
    per_kernel[key.kernel] += usage;
    grand += usage;
  }
  if (per_kernel.empty()) return;
  auto& reg = MetricsRegistry::global();
  for (const auto& [kernel, usage] : per_kernel) {
    const std::string prefix = "acct." + kernel + ".";
    reg.gauge(prefix + "flops").set(usage.flops);
    reg.gauge(prefix + "bytes").set(usage.bytes);
    reg.gauge(prefix + "calls").set(usage.calls);
    reg.gauge(prefix + "intensity").set(usage.intensity());
  }
  reg.gauge("acct.total.flops").set(grand.flops);
  reg.gauge("acct.total.bytes").set(grand.bytes);
}

}  // namespace sattn::obs
