#include "obs/summary.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>
#include <sstream>

#include "obs/metrics.h"

namespace sattn::obs {
namespace {

struct PathAgg {
  std::vector<double> durations_us;
  int depth = 0;
  std::string name;
};

// Reconstructs each span's nesting path from per-thread interval enclosure:
// spans were recorded with strict stack discipline per thread, so sorting a
// thread's records by (start asc, dur desc) and sweeping with a stack
// recovers parent/child relations.
std::map<std::string, PathAgg> aggregate(std::span<const SpanRecord> spans) {
  std::map<std::uint32_t, std::vector<const SpanRecord*>> by_tid;
  for (const SpanRecord& r : spans) by_tid[r.tid].push_back(&r);

  std::map<std::string, PathAgg> agg;
  for (auto& [tid, recs] : by_tid) {
    std::sort(recs.begin(), recs.end(), [](const SpanRecord* a, const SpanRecord* b) {
      if (a->start_us != b->start_us) return a->start_us < b->start_us;
      return a->dur_us > b->dur_us;
    });
    struct Frame {
      double end_us;
      std::string path;
    };
    std::vector<Frame> stack;
    for (const SpanRecord* r : recs) {
      while (!stack.empty() && stack.back().end_us <= r->start_us) stack.pop_back();
      std::string path = stack.empty() ? r->name : stack.back().path + " > " + r->name;
      PathAgg& a = agg[path];
      a.durations_us.push_back(r->dur_us);
      a.depth = static_cast<int>(stack.size());
      a.name = r->name;
      stack.push_back({r->start_us + r->dur_us, std::move(path)});
    }
  }
  return agg;
}

}  // namespace

std::vector<SpanStat> summarize_spans(std::span<const SpanRecord> spans) {
  std::map<std::string, PathAgg> agg = aggregate(spans);

  std::vector<SpanStat> stats;
  stats.reserve(agg.size());
  for (auto& [path, a] : agg) {
    SpanStat s;
    s.path = path;
    s.name = a.name;
    s.depth = a.depth;
    s.count = a.durations_us.size();
    std::sort(a.durations_us.begin(), a.durations_us.end());
    for (double d : a.durations_us) s.total_us += d;
    s.mean_us = s.total_us / static_cast<double>(s.count);
    s.p50_us = percentile_nearest_rank(a.durations_us, 0.50);
    s.p99_us = percentile_nearest_rank(a.durations_us, 0.99);
    stats.push_back(std::move(s));
  }

  // Preorder walk with siblings by descending total: sort by path prefix
  // chains. Build a sort key of each ancestor's (negative total) so children
  // stay under their parent.
  std::map<std::string, double> total_by_path;
  for (const SpanStat& s : stats) total_by_path[s.path] = s.total_us;
  std::sort(stats.begin(), stats.end(), [&](const SpanStat& a, const SpanStat& b) {
    // Compare the two paths component-wise on (total desc, path asc).
    std::string_view pa = a.path, pb = b.path;
    std::string prefix_a, prefix_b;
    std::size_t ia = 0, ib = 0;
    while (true) {
      const std::size_t na = pa.find(" > ", ia);
      const std::size_t nb = pb.find(" > ", ib);
      prefix_a = std::string(pa.substr(0, na));
      prefix_b = std::string(pb.substr(0, nb));
      if (prefix_a != prefix_b) {
        const double ta = total_by_path.count(prefix_a) ? total_by_path[prefix_a] : 0.0;
        const double tb = total_by_path.count(prefix_b) ? total_by_path[prefix_b] : 0.0;
        if (ta != tb) return ta > tb;
        return prefix_a < prefix_b;
      }
      if (na == std::string_view::npos || nb == std::string_view::npos) {
        // One path is a prefix of the other: the parent sorts first.
        return na == std::string_view::npos && nb != std::string_view::npos;
      }
      ia = na + 3;
      ib = nb + 3;
    }
  });
  return stats;
}

double total_seconds(std::span<const SpanRecord> spans, std::string_view name) {
  double total_us = 0.0;
  for (const SpanRecord& r : spans) {
    if (r.name == name) total_us += r.dur_us;
  }
  return total_us * 1e-6;
}

std::size_t span_count(std::span<const SpanRecord> spans, std::string_view name) {
  std::size_t n = 0;
  for (const SpanRecord& r : spans) {
    if (r.name == name) ++n;
  }
  return n;
}

std::string render_summary(std::span<const SpanRecord> spans,
                           std::span<const CounterValue> counters) {
  std::ostringstream out;
  const std::vector<SpanStat> stats = summarize_spans(spans);
  if (!stats.empty()) {
    out << "spans (count / total ms / mean ms / p50 ms / p99 ms):\n";
    char buf[192];
    for (const SpanStat& s : stats) {
      std::snprintf(buf, sizeof(buf), "  %*s%-40s %8zu %10.3f %10.4f %10.4f %10.4f\n",
                    2 * s.depth, "", s.name.c_str(), s.count, s.total_us * 1e-3,
                    s.mean_us * 1e-3, s.p50_us * 1e-3, s.p99_us * 1e-3);
      out << buf;
    }
  }
  if (!counters.empty()) {
    out << "counters:\n";
    char buf[160];
    for (const CounterValue& c : counters) {
      std::snprintf(buf, sizeof(buf), "  %-40s %18.6g\n", c.name.c_str(), c.value);
      out << buf;
    }
  }
  if (stats.empty() && counters.empty()) out << "(no spans or counters recorded)\n";
  return out.str();
}

}  // namespace sattn::obs
