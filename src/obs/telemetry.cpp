#include "obs/telemetry.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <iterator>

#include "io/json.h"
#include "obs/metrics.h"

namespace sattn::obs {

namespace {

std::size_t round_up_pow2(std::size_t n) {
  std::size_t p = 8;
  while (p < n) p <<= 1;
  return p;
}

std::uint64_t next_hub_id() {
  static std::atomic<std::uint64_t> g{1};
  return g.fetch_add(1, std::memory_order_relaxed);
}

// Prometheus exposition escaping: inside label values `\` -> `\\`,
// `"` -> `\"`, and a literal newline -> `\n`; HELP text escapes only the
// backslash and newline (the exposition format's escaping rules).
std::string prom_escape(std::string_view s, bool label_value) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == '\n') {
      out += "\\n";
    } else if (label_value && c == '"') {
      out += "\\\"";
    } else {
      out += c;
    }
  }
  return out;
}

JsonValue stats_json(const RollingStats& s) {
  JsonValue o = JsonValue::object();
  o.set("count", s.count);
  o.set("mean", s.mean);
  o.set("min", s.min);
  o.set("max", s.max);
  o.set("p50", s.p50);
  o.set("p95", s.p95);
  o.set("p99", s.p99);
  return o;
}

}  // namespace

const char* request_phase_name(RequestPhase p) {
  switch (p) {
    case RequestPhase::kSubmitted: return "submitted";
    case RequestPhase::kAdmitted: return "admitted";
    case RequestPhase::kPrefillChunk: return "prefill_chunk";
    case RequestPhase::kPrefillDone: return "prefill_done";
    case RequestPhase::kDecodeStep: return "decode_step";
    case RequestPhase::kCompleted: return "completed";
    case RequestPhase::kShed: return "shed";
    case RequestPhase::kCancelled: return "cancelled";
  }
  return "unknown";
}

// ---------------------------------------------------------------------------
// TelemetryRing
// ---------------------------------------------------------------------------

TelemetryRing::TelemetryRing(std::size_t capacity)
    : slots_(round_up_pow2(capacity)), mask_(slots_.size() - 1) {}

bool TelemetryRing::try_push(const TelemetryEvent& ev) {
  const std::uint64_t head = head_.load(std::memory_order_relaxed);
  const std::uint64_t tail = tail_.load(std::memory_order_acquire);
  if (head - tail >= slots_.size()) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  slots_[head & mask_] = ev;
  head_.store(head + 1, std::memory_order_release);
  return true;
}

std::size_t TelemetryRing::drain(std::vector<TelemetryEvent>& out) {
  const std::uint64_t head = head_.load(std::memory_order_acquire);
  std::uint64_t tail = tail_.load(std::memory_order_relaxed);
  const std::size_t n = static_cast<std::size_t>(head - tail);
  out.reserve(out.size() + n);
  while (tail != head) {
    out.push_back(slots_[tail & mask_]);
    ++tail;
  }
  tail_.store(tail, std::memory_order_release);
  return n;
}

// ---------------------------------------------------------------------------
// TelemetryHub
// ---------------------------------------------------------------------------

TelemetryHub::TelemetryHub(std::size_t ring_capacity)
    : id_(next_hub_id()), ring_capacity_(ring_capacity) {}

std::shared_ptr<TelemetryRing> TelemetryHub::ring_for_this_thread() {
  // Per-thread cache of (hub id, ring). Hub ids are never reused, so an
  // entry can never resolve to the wrong hub; the shared_ptr keeps a ring
  // from a destroyed hub alive (writes to it are just never drained).
  struct CacheEntry {
    std::uint64_t hub_id;
    std::shared_ptr<TelemetryRing> ring;
  };
  thread_local std::vector<CacheEntry> cache;
  for (const CacheEntry& e : cache) {
    if (e.hub_id == id_) return e.ring;
  }
  auto ring = std::make_shared<TelemetryRing>(ring_capacity_);
  {
    std::lock_guard<std::mutex> lk(mu_);
    rings_.push_back(ring);
  }
  if (cache.size() >= 16) cache.erase(cache.begin());  // bound stale entries
  cache.push_back({id_, ring});
  return ring;
}

void TelemetryHub::push(const TelemetryEvent& ev) { ring_for_this_thread()->try_push(ev); }

std::size_t TelemetryHub::drain(std::vector<TelemetryEvent>& out) {
  std::vector<std::shared_ptr<TelemetryRing>> rings;
  {
    std::lock_guard<std::mutex> lk(mu_);
    rings = rings_;
  }
  const std::size_t before = out.size();
  for (const auto& r : rings) r->drain(out);
  std::stable_sort(out.begin() + static_cast<std::ptrdiff_t>(before), out.end(),
                   [](const TelemetryEvent& a, const TelemetryEvent& b) { return a.t < b.t; });
  return out.size() - before;
}

std::uint64_t TelemetryHub::dropped() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::uint64_t total = 0;
  for (const auto& r : rings_) total += r->dropped();
  return total;
}

std::size_t TelemetryHub::ring_count() const {
  std::lock_guard<std::mutex> lk(mu_);
  return rings_.size();
}

// ---------------------------------------------------------------------------
// RollingHistogram / EwmaRate
// ---------------------------------------------------------------------------

RollingHistogram::RollingHistogram(double window_seconds, std::size_t max_samples)
    : window_s_(window_seconds > 0.0 ? window_seconds : 1.0),
      max_samples_(max_samples > 0 ? max_samples : 1) {}

void RollingHistogram::evict(double now) {
  const double cutoff = now - window_s_;
  while (!samples_.empty() && samples_.front().first < cutoff) samples_.pop_front();
  while (samples_.size() > max_samples_) samples_.pop_front();
}

void RollingHistogram::observe(double t, double v) {
  samples_.emplace_back(t, v);
  evict(t);
}

RollingStats RollingHistogram::stats(double now) {
  evict(now);
  RollingStats s;
  s.count = samples_.size();
  if (samples_.empty()) return s;
  std::vector<double> vals;
  vals.reserve(samples_.size());
  double sum = 0.0;
  for (const auto& [t, v] : samples_) {
    vals.push_back(v);
    sum += v;
  }
  std::sort(vals.begin(), vals.end());
  s.mean = sum / static_cast<double>(vals.size());
  s.min = vals.front();
  s.max = vals.back();
  s.p50 = percentile_nearest_rank(vals, 0.50);
  s.p95 = percentile_nearest_rank(vals, 0.95);
  s.p99 = percentile_nearest_rank(vals, 0.99);
  return s;
}

EwmaRate::EwmaRate(double tau_seconds) : tau_(tau_seconds > 0.0 ? tau_seconds : 1.0) {}

void EwmaRate::add(double t, double n) {
  if (t > last_t_) {
    acc_ *= std::exp(-(t - last_t_) / tau_);
    last_t_ = t;
  }
  acc_ += n;
}

double EwmaRate::rate(double now) const {
  double acc = acc_;
  if (now > last_t_) acc *= std::exp(-(now - last_t_) / tau_);
  return acc / tau_;
}

// ---------------------------------------------------------------------------
// DriftMonitor
// ---------------------------------------------------------------------------

DriftMonitor::DriftMonitor(DriftThresholds th)
    : th_(th),
      ttft_(th.window_seconds > 0.0 ? th.window_seconds : 5.0),
      tpot_(th.window_seconds > 0.0 ? th.window_seconds : 5.0),
      audit_(th.window_seconds > 0.0 ? th.window_seconds : 5.0) {}

void DriftMonitor::observe_plan(double t, double retained_frac, bool escalated,
                                bool dense_fallback) {
  plans_.push_back({t, static_cast<float>(retained_frac), escalated, dense_fallback});
  const double cutoff = t - th_.window_seconds;
  while (!plans_.empty() && plans_.front().t < cutoff) plans_.pop_front();
}

void DriftMonitor::observe_ttft(double t, double seconds) { ttft_.observe(t, seconds); }
void DriftMonitor::observe_tpot(double t, double seconds) { tpot_.observe(t, seconds); }
void DriftMonitor::observe_audit(double t, double measured_cra) {
  audit_.observe(t, measured_cra);
}

const std::vector<AlertState>& DriftMonitor::evaluate(double now) {
  const double cutoff = now - th_.window_seconds;
  while (!plans_.empty() && plans_.front().t < cutoff) plans_.pop_front();

  std::size_t plan_n = plans_.size();
  double retained_sum = 0.0, escalated_n = 0.0, fallback_n = 0.0;
  for (const PlanSample& p : plans_) {
    retained_sum += p.retained;
    if (p.escalated) escalated_n += 1.0;
    if (p.dense_fallback) fallback_n += 1.0;
  }
  const RollingStats ttft = ttft_.stats(now);
  const RollingStats tpot = tpot_.stats(now);
  const RollingStats audit = audit_.stats(now);

  struct Spec {
    const char* name;
    double threshold;
    double value;
    std::size_t count;
    bool below;  // alert when value < threshold (vs > threshold)
  };
  const Spec specs[] = {
      {"retained_kv_frac_low", th_.min_retained_kv_frac,
       plan_n > 0 ? retained_sum / static_cast<double>(plan_n) : 0.0, plan_n, true},
      {"dense_fallback_rate_high", th_.max_dense_fallback_rate,
       plan_n > 0 ? fallback_n / static_cast<double>(plan_n) : 0.0, plan_n, false},
      {"escalation_rate_high", th_.max_escalation_rate,
       plan_n > 0 ? escalated_n / static_cast<double>(plan_n) : 0.0, plan_n, false},
      {"ttft_p99_high", th_.max_ttft_p99_seconds, ttft.p99, ttft.count, false},
      {"tpot_p99_high", th_.max_tpot_p99_seconds, tpot.p99, tpot.count, false},
      // Measured quality: rolling mean of shadow-audited chunk CRA minima
      // (obs/audit.h). The one monitor fed by ground truth, not proxies.
      {"measured_cra_low", th_.min_measured_cra, audit.mean, audit.count, true},
  };

  if (alerts_.empty()) {
    alerts_.reserve(std::size(specs));
    for (const Spec& sp : specs) alerts_.push_back({sp.name, 0.0, sp.threshold, false, 0.0});
  }
  for (std::size_t i = 0; i < std::size(specs); ++i) {
    const Spec& sp = specs[i];
    AlertState& a = alerts_[i];
    a.value = sp.value;
    a.threshold = sp.threshold;
    const bool configured = sp.threshold >= 0.0;
    const bool crossed = sp.below ? sp.value < sp.threshold : sp.value > sp.threshold;
    const bool active = configured && sp.count >= th_.min_samples && crossed;
    if (active && !a.active) {
      a.since_s = now;
      SATTN_COUNTER_ADD("alert." + a.name, 1);
    }
    a.active = active;
  }
  return alerts_;
}

bool DriftMonitor::quality_alert_active() const {
  for (const AlertState& a : alerts_) {
    if (!a.active) continue;
    if (a.name == "retained_kv_frac_low" || a.name == "dense_fallback_rate_high" ||
        a.name == "escalation_rate_high" || a.name == "measured_cra_low") {
      return true;
    }
  }
  return false;
}

// ---------------------------------------------------------------------------
// TelemetryPublisher
// ---------------------------------------------------------------------------

TelemetryPublisher::TelemetryPublisher(TelemetryOptions opts, std::string label,
                                       TelemetryHub* hub,
                                       std::function<EngineTelemetrySnapshot()> snapshot_fn)
    : opts_(std::move(opts)),
      label_(std::move(label)),
      hub_(hub),
      snapshot_fn_(std::move(snapshot_fn)),
      ttft_(opts_.window_seconds),
      tpot_(opts_.window_seconds),
      retained_(opts_.window_seconds),
      audit_cra_(opts_.window_seconds),
      submit_rate_(opts_.rate_tau_seconds),
      complete_rate_(opts_.rate_tau_seconds),
      decode_tok_rate_(opts_.rate_tau_seconds),
      shed_rate_(opts_.rate_tau_seconds),
      drift_(opts_.drift) {
  if (!opts_.ndjson_path.empty()) {
    // Truncate the stream at publisher creation so every run starts fresh.
    std::ofstream(opts_.ndjson_path, std::ios::trunc);
  }
}

TelemetryPublisher::~TelemetryPublisher() { stop(); }

void TelemetryPublisher::start() {
  thread_ = std::thread([this] { run(); });
}

void TelemetryPublisher::stop() {
  {
    std::lock_guard<std::mutex> lk(run_mu_);
    if (stopped_) return;
    stop_requested_ = true;
  }
  run_cv_.notify_all();
  if (thread_.joinable()) thread_.join();
  tick();  // final flush: producers are quiesced by the time stop() is called
  {
    std::lock_guard<std::mutex> lk(run_mu_);
    stopped_ = true;
  }
}

void TelemetryPublisher::run() {
  for (;;) {
    std::unique_lock<std::mutex> lk(run_mu_);
    const bool stopping = run_cv_.wait_for(lk, std::chrono::duration<double>(opts_.interval_seconds),
                                           [this] { return stop_requested_; });
    lk.unlock();
    if (stopping) return;  // stop() runs the final tick after the join
    tick();
  }
}

void TelemetryPublisher::fold(const TelemetryEvent& ev) {
  switch (ev.kind) {
    case TelemetryEventKind::kSubmit:
      ++totals_.submitted;
      submit_rate_.add(ev.t);
      break;
    case TelemetryEventKind::kAdmit:
      ++totals_.admitted;
      break;
    case TelemetryEventKind::kPrefillChunk:
      ++totals_.prefill_chunks;
      break;
    case TelemetryEventKind::kPrefillDone:
      ttft_.observe(ev.t, ev.value);
      drift_.observe_ttft(ev.t, ev.value);
      break;
    case TelemetryEventKind::kDecodeStep:
      ++totals_.decode_steps;
      tpot_.observe(ev.t, ev.value);
      drift_.observe_tpot(ev.t, ev.value);
      decode_tok_rate_.add(ev.t);
      break;
    case TelemetryEventKind::kComplete:
      ++totals_.completed;
      complete_rate_.add(ev.t);
      break;
    case TelemetryEventKind::kShed:
      ++totals_.shed;
      shed_rate_.add(ev.t);
      break;
    case TelemetryEventKind::kCancel:
      ++totals_.cancelled;
      break;
    case TelemetryEventKind::kPlan: {
      ++totals_.plans;
      const bool escalated = (ev.aux & 1u) != 0;
      const bool fallback = (ev.aux & 2u) != 0;
      if (escalated) ++totals_.escalations;
      if (fallback) ++totals_.dense_fallbacks;
      retained_.observe(ev.t, ev.value);
      drift_.observe_plan(ev.t, ev.value, escalated, fallback);
      break;
    }
    case TelemetryEventKind::kAudit:
      ++totals_.audited_chunks;
      totals_.audited_rows += ev.aux;
      audit_cra_.observe(ev.t, ev.value);
      drift_.observe_audit(ev.t, ev.value);
      break;
  }
}

void TelemetryPublisher::tick() {
  scratch_.clear();
  const std::size_t n = hub_ != nullptr ? hub_->drain(scratch_) : 0;
  events_seen_.fetch_add(n, std::memory_order_relaxed);
  for (const TelemetryEvent& ev : scratch_) fold(ev);

  const EngineTelemetrySnapshot snap = snapshot_fn_ ? snapshot_fn_() : EngineTelemetrySnapshot{};
  drift_.evaluate(snap.t);
  if (opts_.drift.pretrip_breaker && drift_.quality_alert_active()) {
    pretrip_.store(true, std::memory_order_relaxed);
  }

  const std::string line = render_line(snap);
  if (!opts_.ndjson_path.empty()) {
    std::ofstream out(opts_.ndjson_path, std::ios::app);
    out << line << '\n';
  }
  if (!opts_.prom_path.empty()) write_prometheus(snap);
  publish_gauges(snap);

  {
    std::lock_guard<std::mutex> lk(state_mu_);
    last_line_ = line;
    alerts_copy_ = drift_.alerts();
    totals_copy_ = totals_;
  }
  ticks_.fetch_add(1, std::memory_order_relaxed);
}

std::string TelemetryPublisher::render_line(const EngineTelemetrySnapshot& snap) {
  JsonValue root = JsonValue::object();
  root.set("schema", "sattn.telemetry");
  root.set("version", 1);
  root.set("seq", seq_++);
  root.set("t", snap.t);
  root.set("label", label_);

  JsonValue engine = JsonValue::object();
  engine.set("live", snap.live);
  engine.set("active", snap.active);
  engine.set("kv_bytes", snap.kv_bytes);
  engine.set("kv_budget_bytes", snap.kv_budget_bytes);
  engine.set("breaker_state", snap.breaker_state);
  engine.set("heartbeat_age_s", snap.heartbeat_age_s);
  engine.set("watchdog_stalls", snap.watchdog_stalls);
  root.set("engine", std::move(engine));

  JsonValue totals = JsonValue::object();
  totals.set("submitted", totals_.submitted);
  totals.set("admitted", totals_.admitted);
  totals.set("completed", totals_.completed);
  totals.set("shed", totals_.shed);
  totals.set("cancelled", totals_.cancelled);
  totals.set("prefill_chunks", totals_.prefill_chunks);
  totals.set("decode_steps", totals_.decode_steps);
  totals.set("plans", totals_.plans);
  totals.set("escalations", totals_.escalations);
  totals.set("dense_fallbacks", totals_.dense_fallbacks);
  totals.set("audited_chunks", totals_.audited_chunks);
  totals.set("audited_rows", totals_.audited_rows);
  root.set("totals", std::move(totals));

  JsonValue rates = JsonValue::object();
  rates.set("submit_per_s", submit_rate_.rate(snap.t));
  rates.set("complete_per_s", complete_rate_.rate(snap.t));
  rates.set("decode_tokens_per_s", decode_tok_rate_.rate(snap.t));
  rates.set("shed_per_s", shed_rate_.rate(snap.t));
  root.set("rates", std::move(rates));

  JsonValue rolling = JsonValue::object();
  rolling.set("window_s", opts_.window_seconds);
  rolling.set("ttft_s", stats_json(ttft_.stats(snap.t)));
  rolling.set("tpot_s", stats_json(tpot_.stats(snap.t)));
  rolling.set("retained_kv_frac", stats_json(retained_.stats(snap.t)));
  rolling.set("audit_cra", stats_json(audit_cra_.stats(snap.t)));
  root.set("rolling", std::move(rolling));

  JsonValue alerts = JsonValue::array();
  for (const AlertState& a : drift_.alerts()) {
    if (!a.active) continue;
    JsonValue o = JsonValue::object();
    o.set("name", a.name);
    o.set("value", a.value);
    o.set("threshold", a.threshold);
    o.set("since_s", a.since_s);
    alerts.push_back(std::move(o));
  }
  root.set("alerts", std::move(alerts));
  root.set("events_dropped", hub_ != nullptr ? hub_->dropped() : 0);
  return root.to_string(-1);
}

void TelemetryPublisher::write_prometheus(const EngineTelemetrySnapshot& snap) {
  const RollingStats ttft = ttft_.stats(snap.t);
  const RollingStats tpot = tpot_.stats(snap.t);
  const RollingStats retained = retained_.stats(snap.t);
  const RollingStats audit = audit_cra_.stats(snap.t);
  std::string body;
  body.reserve(4096);
  // Label values are escaped per the exposition format (`\` -> `\\`,
  // `"` -> `\"`, newline -> `\n`); run labels are caller-supplied strings.
  const std::string tag = "{label=\"" + prom_escape(label_, /*label_value=*/true) + "\"}";
  const auto emit = [&](const char* name, const char* type, const char* help, double v) {
    body += "# HELP ";
    body += name;
    body += ' ';
    body += prom_escape(help, /*label_value=*/false);
    body += '\n';
    body += "# TYPE ";
    body += name;
    body += ' ';
    body += type;
    body += '\n';
    body += name;
    body += tag;
    char buf[64];
    std::snprintf(buf, sizeof(buf), " %.9g\n", v);
    body += buf;
  };
  emit("sattn_engine_live_requests", "gauge", "Requests in flight (any state).",
       static_cast<double>(snap.live));
  emit("sattn_engine_active_requests", "gauge", "Requests past the KV-budget gate.",
       static_cast<double>(snap.active));
  emit("sattn_engine_kv_bytes", "gauge", "Live KV cache bytes.", snap.kv_bytes);
  emit("sattn_engine_kv_budget_bytes", "gauge", "Configured KV byte budget (0 = unlimited).",
       snap.kv_budget_bytes);
  emit("sattn_engine_breaker_state", "gauge",
       "Planning breaker state: 0 closed, 1 open, 2 half-open.",
       static_cast<double>(snap.breaker_state));
  emit("sattn_engine_heartbeat_age_seconds", "gauge",
       "Seconds since the engine loop last made progress.", snap.heartbeat_age_s);
  emit("sattn_engine_watchdog_stalls_total", "counter", "Watchdog stall detections.",
       static_cast<double>(snap.watchdog_stalls));
  emit("sattn_requests_submitted_total", "counter", "Requests submitted.",
       static_cast<double>(totals_.submitted));
  emit("sattn_requests_completed_total", "counter", "Requests completed.",
       static_cast<double>(totals_.completed));
  emit("sattn_requests_shed_total", "counter", "Requests shed.",
       static_cast<double>(totals_.shed));
  emit("sattn_requests_cancelled_total", "counter", "Requests cancelled.",
       static_cast<double>(totals_.cancelled));
  emit("sattn_plan_dense_fallbacks_total", "counter",
       "Sample-mode plans that fell back to dense.",
       static_cast<double>(totals_.dense_fallbacks));
  emit("sattn_ttft_p50_seconds", "gauge", "Rolling-window TTFT p50.", ttft.p50);
  emit("sattn_ttft_p99_seconds", "gauge", "Rolling-window TTFT p99.", ttft.p99);
  emit("sattn_tpot_p50_seconds", "gauge", "Rolling-window decode-step p50.", tpot.p50);
  emit("sattn_tpot_p99_seconds", "gauge", "Rolling-window decode-step p99.", tpot.p99);
  emit("sattn_retained_kv_frac_mean", "gauge", "Rolling mean retained-KV fraction.",
       retained.mean);
  emit("sattn_decode_tokens_per_second", "gauge", "EWMA decode token rate.",
       decode_tok_rate_.rate(snap.t));
  emit("sattn_audit_rows_total", "counter", "Shadow-audited query rows.",
       static_cast<double>(totals_.audited_rows));
  emit("sattn_audit_cra_mean", "gauge", "Rolling mean measured chunk CRA (audited).",
       audit.mean);
  emit("sattn_audit_cra_min", "gauge", "Rolling min measured chunk CRA (audited).", audit.min);
  emit("sattn_telemetry_events_dropped_total", "counter",
       "Telemetry events dropped by full rings.",
       static_cast<double>(hub_ != nullptr ? hub_->dropped() : 0));

  const std::string tmp = opts_.prom_path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    out << body;
  }
  std::rename(tmp.c_str(), opts_.prom_path.c_str());
}

void TelemetryPublisher::publish_gauges(const EngineTelemetrySnapshot& snap) {
  if (!enabled()) return;
  auto& reg = MetricsRegistry::global();
  reg.gauge("engine.heartbeat_age_s").set(snap.heartbeat_age_s);
  reg.gauge("telemetry.live_requests").set(static_cast<double>(snap.live));
  reg.gauge("telemetry.kv_bytes").set(snap.kv_bytes);
  reg.gauge("telemetry.ttft_p99_s").set(ttft_.stats(snap.t).p99);
  reg.gauge("telemetry.tpot_p99_s").set(tpot_.stats(snap.t).p99);
  reg.gauge("telemetry.retained_kv_frac_mean").set(retained_.stats(snap.t).mean);
  reg.gauge("telemetry.decode_tokens_per_s").set(decode_tok_rate_.rate(snap.t));
  if (totals_.audited_chunks > 0) {
    reg.gauge("telemetry.audit_cra_mean").set(audit_cra_.stats(snap.t).mean);
    reg.gauge("telemetry.audit_rows").set(static_cast<double>(totals_.audited_rows));
  }
  reg.gauge("telemetry.events_dropped").set(
      static_cast<double>(hub_ != nullptr ? hub_->dropped() : 0));
  SATTN_COUNTER_ADD("telemetry.ticks", 1);
}

bool TelemetryPublisher::consume_breaker_pretrip() {
  return pretrip_.exchange(false, std::memory_order_relaxed);
}

std::string TelemetryPublisher::last_line() const {
  std::lock_guard<std::mutex> lk(state_mu_);
  return last_line_;
}

std::vector<AlertState> TelemetryPublisher::alerts() const {
  std::lock_guard<std::mutex> lk(state_mu_);
  return alerts_copy_;
}

TelemetryTotals TelemetryPublisher::totals() const {
  std::lock_guard<std::mutex> lk(state_mu_);
  return totals_copy_;
}

}  // namespace sattn::obs
