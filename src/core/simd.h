// SIMD micro-kernel primitives with runtime CPU dispatch.
//
// Every hot inner loop in the library funnels through the small primitive
// set below: dot products (accumulated in double, matching the numeric
// contract of core/tensor.cpp), multi-row dots that share one key stream,
// axpy accumulates, multi-row axpy that shares one value stream, and an
// in-place rescale. Each primitive has a portable scalar implementation and,
// on x86 hosts whose compiler and CPU both support it, an AVX2/FMA
// implementation (src/core/simd_avx2.cpp, compiled with -mavx2 -mfma and
// only ever called after a CPUID check).
//
// Dispatch contract:
//   * detected_level()  — what the CPU supports (CPUID), ignoring overrides.
//   * dispatched_ops()  — detected level filtered through the
//     SATTN_FORCE_SCALAR environment variable (any value other than "0"
//     forces the scalar table); resolved once per process.
//   * ops()             — the active table: dispatched_ops() unless a
//     ScopedForceScalar is alive. This is what kernels call.
//
// The scalar table reproduces the pre-SIMD loops bit-for-bit (double
// accumulation for dots, float fused multiply-add for axpy), so
// SATTN_FORCE_SCALAR=1 recovers the original kernel numerics exactly and
// the parity suite (tests/simd_kernel_test.cpp) can compare the two tables
// in one process.
#pragma once

#include <atomic>
#include <cstddef>

#include "core/tensor.h"

namespace sattn::simd {

enum class Level { kScalar = 0, kAvx2 = 1 };

// Number of query rows the multi-row primitives (dotn/axpyn) accept at once.
inline constexpr Index kMaxRows = 4;

// One backend's primitive table. All pointers are non-null in a valid table.
struct Ops {
  const char* name;  // "scalar" or "avx2"
  Level level;

  // out = sum_i a[i] * b[i], accumulated in double.
  float (*dot)(const float* a, const float* b, Index n);

  // out[r] = dot(q[r], k) for r in [0, rows); rows in [1, kMaxRows]. The
  // shared k stream is loaded once per vector of lanes for all rows — the
  // register-blocking primitive of the attention micro-kernels.
  void (*dotn)(const float* const* q, Index rows, const float* k, Index n, float* out);

  // y[i] += a * x[i].
  void (*axpy)(float a, const float* x, float* y, Index n);

  // acc[r][i] += w[r] * v[i] for r in [0, rows); the shared v stream is
  // loaded once for all rows.
  void (*axpyn)(const float* w, Index rows, const float* v, float* const* acc, Index n);

  // x[i] *= s (the online-softmax rescale step).
  void (*scale_inplace)(float* x, Index n, float s);
};

// The portable fallback; always available.
const Ops& scalar_ops();

// CPU capability, ignoring SATTN_FORCE_SCALAR and scoped overrides.
Level detected_level();

// detected_level() filtered through SATTN_FORCE_SCALAR; cached after the
// first call (set the environment variable before any SIMD use).
const Ops& dispatched_ops();

const char* level_name(Level level);

namespace detail {
std::atomic<const Ops*>& active_slot();
const Ops& init_active();
}  // namespace detail

// The active table. One relaxed atomic load; kernels that loop over many
// rows should hoist `const Ops& o = simd::ops();` out of the loop.
inline const Ops& ops() {
  const Ops* p = detail::active_slot().load(std::memory_order_relaxed);
  return p != nullptr ? *p : detail::init_active();
}

inline Level active_level() { return ops().level; }
inline const char* active_level_name() { return ops().name; }

// Forces the scalar table while alive (benchmark comparison mode and the
// parity tests). The override is process-global: pool workers dispatched
// while the scope is alive also see the scalar table. Not meant to be
// nested from concurrent threads.
class ScopedForceScalar {
 public:
  ScopedForceScalar();
  ~ScopedForceScalar();

  ScopedForceScalar(const ScopedForceScalar&) = delete;
  ScopedForceScalar& operator=(const ScopedForceScalar&) = delete;

 private:
  const Ops* prev_;
};

// Convenience wrappers over the active table.
inline float dot(const float* a, const float* b, Index n) { return ops().dot(a, b, n); }
inline void dotn(const float* const* q, Index rows, const float* k, Index n, float* out) {
  ops().dotn(q, rows, k, n, out);
}
inline void axpy(float a, const float* x, float* y, Index n) { ops().axpy(a, x, y, n); }
inline void axpyn(const float* w, Index rows, const float* v, float* const* acc, Index n) {
  ops().axpyn(w, rows, v, acc, n);
}
inline void scale_inplace(float* x, Index n, float s) { ops().scale_inplace(x, n, s); }

}  // namespace sattn::simd
