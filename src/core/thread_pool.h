// Minimal fixed-size thread pool with a parallel_for front end.
//
// Attention is embarrassingly parallel over (layer, head) and over query
// blocks; the kernels route their outer loops through parallel_for so the
// same code runs single-threaded (pool size 1, the default on 1-core CI
// machines) or multi-threaded without branching at call sites.
#pragma once

#include <condition_variable>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

#include "core/tensor.h"

namespace sattn {

class ThreadPool {
 public:
  // n_threads == 0 picks hardware_concurrency (min 1).
  explicit ThreadPool(unsigned n_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  unsigned size() const { return static_cast<unsigned>(workers_.size()); }

  // Runs fn(i) for i in [0, n). Blocks until all iterations complete.
  // Iterations are distributed in contiguous chunks. With an empty pool
  // (size 1 and n small) work runs inline on the calling thread. Re-entrant:
  // a nested call from inside a pool task runs inline rather than blocking
  // on workers that may all be busy in the same situation (the ragged batch
  // sweep parallelizes over sequences whose kernels parallelize internally).
  void parallel_for(Index n, const std::function<void(Index)>& fn);

  // Process-wide pool, sized from SATTN_THREADS env var if set.
  static ThreadPool& global();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
};

// Convenience wrapper over the global pool.
void parallel_for(Index n, const std::function<void(Index)>& fn);

}  // namespace sattn
