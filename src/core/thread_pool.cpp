#include "core/thread_pool.h"

#include <atomic>
#include <cstdlib>

namespace sattn {

ThreadPool::ThreadPool(unsigned n_threads) {
  if (n_threads == 0) {
    n_threads = std::max(1u, std::thread::hardware_concurrency());
  }
  // With one thread the pool runs everything inline; spawn no workers.
  if (n_threads <= 1) return;
  workers_.reserve(n_threads);
  for (unsigned i = 0; i < n_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lk(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

namespace {
// Set while a pool worker is running a task. A nested parallel_for from
// inside a task must not block on done_cv — the worker it would be waiting
// for is itself, so it would deadlock once every worker is inside a nested
// call. Nested loops run inline instead; the outer loop already owns the
// pool's parallelism.
thread_local bool in_pool_worker = false;
}  // namespace

void ThreadPool::worker_loop() {
  in_pool_worker = true;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lk(mu_);
      cv_.wait(lk, [this] { return stop_ || !tasks_.empty(); });
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

void ThreadPool::parallel_for(Index n, const std::function<void(Index)>& fn) {
  if (n <= 0) return;
  const Index n_workers = static_cast<Index>(workers_.size());
  if (n_workers == 0 || n == 1 || in_pool_worker) {
    for (Index i = 0; i < n; ++i) fn(i);
    return;
  }
  const Index chunks = std::min(n, n_workers);
  const Index per = (n + chunks - 1) / chunks;
  std::atomic<Index> remaining{chunks};
  std::mutex done_mu;
  std::condition_variable done_cv;
  {
    std::lock_guard lk(mu_);
    for (Index c = 0; c < chunks; ++c) {
      const Index lo = c * per;
      const Index hi = std::min(n, lo + per);
      tasks_.emplace([&, lo, hi] {
        for (Index i = lo; i < hi; ++i) fn(i);
        if (remaining.fetch_sub(1) == 1) {
          std::lock_guard dlk(done_mu);
          done_cv.notify_one();
        }
      });
    }
  }
  cv_.notify_all();
  std::unique_lock dlk(done_mu);
  done_cv.wait(dlk, [&] { return remaining.load() == 0; });
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool([] {
    if (const char* env = std::getenv("SATTN_THREADS")) {
      const long v = std::strtol(env, nullptr, 10);
      if (v > 0) return static_cast<unsigned>(v);
    }
    return 0u;
  }());
  return pool;
}

void parallel_for(Index n, const std::function<void(Index)>& fn) {
  ThreadPool::global().parallel_for(n, fn);
}

}  // namespace sattn
