#include "core/numerics.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

namespace sattn {

double softmax_inplace(std::span<float> x) { return softmax_prefix_inplace(x, static_cast<Index>(x.size())); }

double softmax_prefix_inplace(std::span<float> x, Index valid) {
  assert(valid >= 0 && static_cast<std::size_t>(valid) <= x.size());
  if (valid == 0) {
    std::fill(x.begin(), x.end(), 0.0f);
    return -std::numeric_limits<double>::infinity();
  }
  float mx = x[0];
  for (Index i = 1; i < valid; ++i) mx = std::max(mx, x[i]);
  double denom = 0.0;
  for (Index i = 0; i < valid; ++i) {
    const float e = std::exp(x[i] - mx);
    x[i] = e;
    denom += e;
  }
  const auto inv = static_cast<float>(1.0 / denom);
  for (Index i = 0; i < valid; ++i) x[i] *= inv;
  for (std::size_t i = static_cast<std::size_t>(valid); i < x.size(); ++i) x[i] = 0.0f;
  return static_cast<double>(mx) + std::log(denom);
}

std::vector<Index> topk_indices(std::span<const float> x, Index k) {
  const auto n = static_cast<Index>(x.size());
  k = std::clamp<Index>(k, 0, n);
  std::vector<Index> idx(static_cast<std::size_t>(n));
  std::iota(idx.begin(), idx.end(), Index{0});
  auto cmp = [&x](Index a, Index b) {
    if (x[static_cast<std::size_t>(a)] != x[static_cast<std::size_t>(b)])
      return x[static_cast<std::size_t>(a)] > x[static_cast<std::size_t>(b)];
    return a < b;
  };
  std::partial_sort(idx.begin(), idx.begin() + k, idx.end(), cmp);
  idx.resize(static_cast<std::size_t>(k));
  return idx;
}

std::vector<Index> argsort_desc(std::span<const float> x) {
  std::vector<Index> idx(x.size());
  std::iota(idx.begin(), idx.end(), Index{0});
  std::stable_sort(idx.begin(), idx.end(), [&x](Index a, Index b) {
    return x[static_cast<std::size_t>(a)] > x[static_cast<std::size_t>(b)];
  });
  return idx;
}

std::vector<double> prefix_sum(std::span<const float> x) {
  std::vector<double> out(x.size());
  double acc = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    acc += x[i];
    out[i] = acc;
  }
  return out;
}

Index searchsorted(std::span<const double> sorted_ascending, double value) {
  const auto it = std::lower_bound(sorted_ascending.begin(), sorted_ascending.end(), value);
  return static_cast<Index>(it - sorted_ascending.begin());
}

double dsum(std::span<const float> x) {
  double acc = 0.0;
  for (float v : x) acc += v;
  return acc;
}

}  // namespace sattn
