// AVX2/FMA backend for the SIMD primitive table (core/simd.h).
//
// This translation unit is the only one compiled with -mavx2 -mfma (see
// src/CMakeLists.txt), and its functions are only reachable through
// dispatched_ops() after a CPUID check, so the binary stays runnable on
// SSE-only hosts.
//
// Numerics: dots convert the float lanes to double and accumulate with
// 4-wide double FMAs (two independent accumulator chains per row), honoring
// the double-accumulation contract of the scalar backend — the summation
// *order* differs, so results agree to ~1e-13 relative rather than
// bit-for-bit. axpy/axpyn/scale stay in float, like the scalar loops.
// Remainder elements (n % 8) are handled by scalar tails; no vector load
// ever touches memory past `n` elements, which keeps ASan clean on exactly
// sized buffers.
#include "core/simd.h"

#if defined(SATTN_HAVE_AVX2)

#include <immintrin.h>

namespace sattn::simd {
namespace {

inline double hsum_pd(__m256d v) {
  __m128d lo = _mm256_castpd256_pd128(v);
  const __m128d hi = _mm256_extractf128_pd(v, 1);
  lo = _mm_add_pd(lo, hi);
  const __m128d swap = _mm_unpackhi_pd(lo, lo);
  return _mm_cvtsd_f64(_mm_add_sd(lo, swap));
}

float dot_avx2(const float* a, const float* b, Index n) {
  __m256d acc0 = _mm256_setzero_pd();
  __m256d acc1 = _mm256_setzero_pd();
  Index i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 av = _mm256_loadu_ps(a + i);
    const __m256 bv = _mm256_loadu_ps(b + i);
    acc0 = _mm256_fmadd_pd(_mm256_cvtps_pd(_mm256_castps256_ps128(av)),
                           _mm256_cvtps_pd(_mm256_castps256_ps128(bv)), acc0);
    acc1 = _mm256_fmadd_pd(_mm256_cvtps_pd(_mm256_extractf128_ps(av, 1)),
                           _mm256_cvtps_pd(_mm256_extractf128_ps(bv, 1)), acc1);
  }
  double acc = hsum_pd(_mm256_add_pd(acc0, acc1));
  for (; i < n; ++i) acc += static_cast<double>(a[i]) * b[i];
  return static_cast<float>(acc);
}

// R query rows against one shared key stream: the key lanes are loaded and
// widened once per 8 elements, then FMA'd into each row's accumulators.
template <int R>
void dotr_avx2(const float* const* q, const float* k, Index n, float* out) {
  __m256d acc0[R];
  __m256d acc1[R];
  for (int r = 0; r < R; ++r) {
    acc0[r] = _mm256_setzero_pd();
    acc1[r] = _mm256_setzero_pd();
  }
  Index i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 kv = _mm256_loadu_ps(k + i);
    const __m256d klo = _mm256_cvtps_pd(_mm256_castps256_ps128(kv));
    const __m256d khi = _mm256_cvtps_pd(_mm256_extractf128_ps(kv, 1));
    for (int r = 0; r < R; ++r) {
      const __m256 qv = _mm256_loadu_ps(q[r] + i);
      acc0[r] = _mm256_fmadd_pd(_mm256_cvtps_pd(_mm256_castps256_ps128(qv)), klo, acc0[r]);
      acc1[r] = _mm256_fmadd_pd(_mm256_cvtps_pd(_mm256_extractf128_ps(qv, 1)), khi, acc1[r]);
    }
  }
  for (int r = 0; r < R; ++r) {
    double acc = hsum_pd(_mm256_add_pd(acc0[r], acc1[r]));
    for (Index t = i; t < n; ++t) acc += static_cast<double>(q[r][t]) * k[t];
    out[r] = static_cast<float>(acc);
  }
}

void dotn_avx2(const float* const* q, Index rows, const float* k, Index n, float* out) {
  switch (rows) {
    case 1: dotr_avx2<1>(q, k, n, out); return;
    case 2: dotr_avx2<2>(q, k, n, out); return;
    case 3: dotr_avx2<3>(q, k, n, out); return;
    case 4: dotr_avx2<4>(q, k, n, out); return;
    default:
      for (Index r = 0; r < rows; ++r) out[r] = dot_avx2(q[r], k, n);
      return;
  }
}

void axpy_avx2(float a, const float* x, float* y, Index n) {
  const __m256 av = _mm256_set1_ps(a);
  Index i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 yv = _mm256_fmadd_ps(av, _mm256_loadu_ps(x + i), _mm256_loadu_ps(y + i));
    _mm256_storeu_ps(y + i, yv);
  }
  for (; i < n; ++i) y[i] += a * x[i];
}

// R accumulator rows fed from one shared value stream.
template <int R>
void axpyr_avx2(const float* w, const float* v, float* const* acc, Index n) {
  __m256 wv[R];
  for (int r = 0; r < R; ++r) wv[r] = _mm256_set1_ps(w[r]);
  Index i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 vv = _mm256_loadu_ps(v + i);
    for (int r = 0; r < R; ++r) {
      _mm256_storeu_ps(acc[r] + i, _mm256_fmadd_ps(wv[r], vv, _mm256_loadu_ps(acc[r] + i)));
    }
  }
  for (; i < n; ++i) {
    for (int r = 0; r < R; ++r) acc[r][i] += w[r] * v[i];
  }
}

void axpyn_avx2(const float* w, Index rows, const float* v, float* const* acc, Index n) {
  switch (rows) {
    case 1: axpyr_avx2<1>(w, v, acc, n); return;
    case 2: axpyr_avx2<2>(w, v, acc, n); return;
    case 3: axpyr_avx2<3>(w, v, acc, n); return;
    case 4: axpyr_avx2<4>(w, v, acc, n); return;
    default:
      for (Index r = 0; r < rows; ++r) axpy_avx2(w[r], v, acc[r], n);
      return;
  }
}

void scale_avx2(float* x, Index n, float s) {
  const __m256 sv = _mm256_set1_ps(s);
  Index i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(x + i, _mm256_mul_ps(sv, _mm256_loadu_ps(x + i)));
  }
  for (; i < n; ++i) x[i] *= s;
}

}  // namespace

const Ops& avx2_ops() {
  static const Ops table = {"avx2", Level::kAvx2, dot_avx2,  dotn_avx2,
                            axpy_avx2, axpyn_avx2, scale_avx2};
  return table;
}

}  // namespace sattn::simd

#endif  // SATTN_HAVE_AVX2
