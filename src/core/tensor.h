// Row-major dense float tensors used throughout the library.
//
// The attention kernels operate on 2-D matrices (sequence x head_dim) and
// occasionally on 3-D stacks (heads x sequence x head_dim). We deliberately
// keep the abstraction concrete and small: an owning, contiguous, row-major
// buffer with bounds-checked accessors in debug builds and raw spans for the
// hot loops. No expression templates, no reference counting — kernels take
// `const Matrix&` in and write into caller-provided outputs so allocation
// behaviour is explicit and measurable.
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace sattn {

using Index = std::int64_t;

// Owning 2-D row-major float matrix.
class Matrix {
 public:
  Matrix() = default;
  Matrix(Index rows, Index cols, float fill = 0.0f)
      : rows_(rows), cols_(cols), data_(static_cast<std::size_t>(rows * cols), fill) {
    assert(rows >= 0 && cols >= 0);
  }

  Index rows() const { return rows_; }
  Index cols() const { return cols_; }
  Index size() const { return rows_ * cols_; }
  bool empty() const { return data_.empty(); }

  float& operator()(Index r, Index c) {
    assert(r >= 0 && r < rows_ && c >= 0 && c < cols_);
    return data_[static_cast<std::size_t>(r * cols_ + c)];
  }
  float operator()(Index r, Index c) const {
    assert(r >= 0 && r < rows_ && c >= 0 && c < cols_);
    return data_[static_cast<std::size_t>(r * cols_ + c)];
  }

  // Contiguous view of one row.
  std::span<float> row(Index r) {
    assert(r >= 0 && r < rows_);
    return {data_.data() + r * cols_, static_cast<std::size_t>(cols_)};
  }
  std::span<const float> row(Index r) const {
    assert(r >= 0 && r < rows_);
    return {data_.data() + r * cols_, static_cast<std::size_t>(cols_)};
  }

  std::span<float> flat() { return {data_.data(), data_.size()}; }
  std::span<const float> flat() const { return {data_.data(), data_.size()}; }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }

  void fill(float v) { std::fill(data_.begin(), data_.end(), v); }
  void resize(Index rows, Index cols, float fill = 0.0f) {
    rows_ = rows;
    cols_ = cols;
    data_.assign(static_cast<std::size_t>(rows * cols), fill);
  }

 private:
  Index rows_ = 0;
  Index cols_ = 0;
  std::vector<float> data_;
};

// The per-head inputs to every attention algorithm in this library.
// Shapes follow the paper's notation: Q is [Sq x d], K and V are [Sk x d].
struct AttentionInput {
  Matrix q;  // [Sq x d]
  Matrix k;  // [Sk x d]
  Matrix v;  // [Sk x d]

  Index sq() const { return q.rows(); }
  Index sk() const { return k.rows(); }
  Index head_dim() const { return q.cols(); }
};

// Basic dense ops shared by the reference paths and baselines. These route
// through the runtime-dispatched SIMD primitives (core/simd.h), so every
// caller — decode, score rows, hash baselines — picks up the vectorized
// backends; SATTN_FORCE_SCALAR=1 restores the portable scalar loops.
float dot(std::span<const float> a, std::span<const float> b);

// out[r,:] += scale * m[r,:] for a single row r of m, accumulated into out_row.
void axpy(float scale, std::span<const float> x, std::span<float> y);

// C = A * B^T where A is [m x d] and B is [n x d]; C must be [m x n].
void matmul_nt(const Matrix& a, const Matrix& b, Matrix& c);

// Maximum absolute elementwise difference.
float max_abs_diff(const Matrix& a, const Matrix& b);

// Mean absolute elementwise difference.
float mean_abs_diff(const Matrix& a, const Matrix& b);

}  // namespace sattn
