#include "core/rng.h"

#include <cassert>
#include <cmath>
#include <numbers>

namespace sattn {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

void Rng::reseed(std::uint64_t seed) {
  seed_ = seed;
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
  has_spare_ = false;
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 random mantissa bits.
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

Index Rng::uniform_index(Index n) {
  assert(n > 0);
  // Rejection-free modulo bias is negligible for the index ranges used here
  // (n << 2^64), but use Lemire's multiply-shift for cleanliness.
  const auto un = static_cast<std::uint64_t>(n);
  return static_cast<Index>((static_cast<unsigned __int128>(next_u64()) * un) >> 64);
}

double Rng::normal() {
  if (has_spare_) {
    has_spare_ = false;
    return spare_;
  }
  double u1 = 0.0;
  do {
    u1 = uniform();
  } while (u1 <= 1e-300);
  const double u2 = uniform();
  const double mag = std::sqrt(-2.0 * std::log(u1));
  spare_ = mag * std::sin(2.0 * std::numbers::pi * u2);
  has_spare_ = true;
  return mag * std::cos(2.0 * std::numbers::pi * u2);
}

void Rng::fill_normal(Matrix& m, float stddev) {
  for (float& x : m.flat()) x = static_cast<float>(normal()) * stddev;
}

std::vector<Index> Rng::sample_without_replacement(Index n, Index k) {
  assert(k >= 0 && k <= n);
  // Floyd's algorithm: O(k) expected, no O(n) scratch.
  std::vector<Index> out;
  out.reserve(static_cast<std::size_t>(k));
  for (Index j = n - k; j < n; ++j) {
    const Index t = uniform_index(j + 1);
    bool seen = false;
    for (Index chosen : out) {
      if (chosen == t) {
        seen = true;
        break;
      }
    }
    out.push_back(seen ? j : t);
  }
  return out;
}

Rng Rng::fork(std::uint64_t stream_id) const {
  std::uint64_t mix = seed_ ^ (stream_id * 0xd1342543de82ef95ull + 0x2545f4914f6cdd1dull);
  return Rng(splitmix64(mix));
}

}  // namespace sattn
