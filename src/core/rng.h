// Deterministic random number generation.
//
// Every stochastic component in the library (synthetic model generation,
// BigBird's random blocks, HyperAttention's hashes, workload construction)
// draws from a seeded Rng so that all tests and benches are reproducible.
// The generator is SplitMix64-seeded xoshiro256**, which is cheap enough to
// instantiate per head without a shared mutable global.
#pragma once

#include <cstdint>
#include <vector>

#include "core/tensor.h"

namespace sattn {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull) { reseed(seed); }

  void reseed(std::uint64_t seed);

  // Uniform in [0, 2^64).
  std::uint64_t next_u64();

  // Uniform in [0, 1).
  double uniform();

  // Uniform in [lo, hi).
  double uniform(double lo, double hi);

  // Uniform integer in [0, n). n must be > 0.
  Index uniform_index(Index n);

  // Standard normal via Box-Muller (cached spare).
  double normal();

  // Fill a matrix with iid N(0, stddev^2).
  void fill_normal(Matrix& m, float stddev = 1.0f);

  // k distinct indices sampled uniformly without replacement from [0, n).
  std::vector<Index> sample_without_replacement(Index n, Index k);

  // Derive an independent stream; deterministic in (seed, stream_id).
  Rng fork(std::uint64_t stream_id) const;

 private:
  std::uint64_t s_[4] = {};
  std::uint64_t seed_ = 0;
  bool has_spare_ = false;
  double spare_ = 0.0;
};

}  // namespace sattn
