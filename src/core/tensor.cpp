#include "core/tensor.h"

#include <algorithm>
#include <cmath>

namespace sattn {

float dot(std::span<const float> a, std::span<const float> b) {
  assert(a.size() == b.size());
  // Accumulate in double: head dims are small (<=256) but the reference
  // paths compare against kernels at 1e-5 tolerances.
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) acc += static_cast<double>(a[i]) * b[i];
  return static_cast<float>(acc);
}

void axpy(float scale, std::span<const float> x, std::span<float> y) {
  assert(x.size() == y.size());
  for (std::size_t i = 0; i < x.size(); ++i) y[i] += scale * x[i];
}

void matmul_nt(const Matrix& a, const Matrix& b, Matrix& c) {
  assert(a.cols() == b.cols());
  assert(c.rows() == a.rows() && c.cols() == b.rows());
  const Index m = a.rows(), n = b.rows();
  for (Index i = 0; i < m; ++i) {
    auto ai = a.row(i);
    for (Index j = 0; j < n; ++j) {
      c(i, j) = dot(ai, b.row(j));
    }
  }
}

float max_abs_diff(const Matrix& a, const Matrix& b) {
  assert(a.rows() == b.rows() && a.cols() == b.cols());
  float m = 0.0f;
  auto fa = a.flat(), fb = b.flat();
  for (std::size_t i = 0; i < fa.size(); ++i) m = std::max(m, std::fabs(fa[i] - fb[i]));
  return m;
}

float mean_abs_diff(const Matrix& a, const Matrix& b) {
  assert(a.rows() == b.rows() && a.cols() == b.cols());
  if (a.size() == 0) return 0.0f;
  double s = 0.0;
  auto fa = a.flat(), fb = b.flat();
  for (std::size_t i = 0; i < fa.size(); ++i) s += std::fabs(fa[i] - fb[i]);
  return static_cast<float>(s / static_cast<double>(fa.size()));
}

}  // namespace sattn
