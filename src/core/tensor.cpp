#include "core/tensor.h"

#include <algorithm>
#include <cmath>

#include "core/simd.h"

namespace sattn {

float dot(std::span<const float> a, std::span<const float> b) {
  assert(a.size() == b.size());
  // Accumulates in double (both SIMD backends honor this contract): head
  // dims are small (<=256) but the reference paths compare against kernels
  // at 1e-5 tolerances.
  return simd::dot(a.data(), b.data(), static_cast<Index>(a.size()));
}

void axpy(float scale, std::span<const float> x, std::span<float> y) {
  assert(x.size() == y.size());
  simd::axpy(scale, x.data(), y.data(), static_cast<Index>(x.size()));
}

void matmul_nt(const Matrix& a, const Matrix& b, Matrix& c) {
  assert(a.cols() == b.cols());
  assert(c.rows() == a.rows() && c.cols() == b.rows());
  const Index m = a.rows(), n = b.rows(), d = a.cols();
  const simd::Ops& ops = simd::ops();
  // Register-blocked: groups of rows of A share each row of B.
  for (Index i0 = 0; i0 < m; i0 += simd::kMaxRows) {
    const Index nr = std::min<Index>(simd::kMaxRows, m - i0);
    const float* rows[simd::kMaxRows];
    for (Index r = 0; r < nr; ++r) rows[r] = a.row(i0 + r).data();
    float s[simd::kMaxRows];
    for (Index j = 0; j < n; ++j) {
      ops.dotn(rows, nr, b.row(j).data(), d, s);
      for (Index r = 0; r < nr; ++r) c(i0 + r, j) = s[r];
    }
  }
}

float max_abs_diff(const Matrix& a, const Matrix& b) {
  assert(a.rows() == b.rows() && a.cols() == b.cols());
  float m = 0.0f;
  auto fa = a.flat(), fb = b.flat();
  for (std::size_t i = 0; i < fa.size(); ++i) m = std::max(m, std::fabs(fa[i] - fb[i]));
  return m;
}

float mean_abs_diff(const Matrix& a, const Matrix& b) {
  assert(a.rows() == b.rows() && a.cols() == b.cols());
  if (a.size() == 0) return 0.0f;
  double s = 0.0;
  auto fa = a.flat(), fb = b.flat();
  for (std::size_t i = 0; i < fa.size(); ++i) s += std::fabs(fa[i] - fb[i]);
  return static_cast<float>(s / static_cast<double>(fa.size()));
}

}  // namespace sattn
