// Shared numeric primitives: stable softmax, top-k selection, searchsorted,
// prefix sums. These mirror the torch ops named in the paper's Algorithm 1
// (sort, sum, searchsorted, gather) so the SampleAttention implementation
// reads like the published pseudo-code.
#pragma once

#include <span>
#include <vector>

#include "core/tensor.h"

namespace sattn {

// In-place numerically stable softmax over `x`. Returns the log-sum-exp
// normalizer (useful for tests). Empty input is a no-op returning -inf.
double softmax_inplace(std::span<float> x);

// Softmax over only the first `valid` entries; the tail is zeroed.
// Used for causal rows where keys beyond the query position are masked.
double softmax_prefix_inplace(std::span<float> x, Index valid);

// Indices of the k largest values (ties broken by lower index first).
// k is clamped to x.size(). Result is ordered by descending value.
std::vector<Index> topk_indices(std::span<const float> x, Index k);

// Argsort descending (stable).
std::vector<Index> argsort_desc(std::span<const float> x);

// Inclusive prefix sum in double precision.
std::vector<double> prefix_sum(std::span<const float> x);

// Smallest i such that sorted_ascending[i] >= value, i.e. torch.searchsorted
// with right=false on an ascending array. Returns sorted.size() if none.
Index searchsorted(std::span<const double> sorted_ascending, double value);

// Sum in double precision.
double dsum(std::span<const float> x);

}  // namespace sattn
