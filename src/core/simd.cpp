#include "core/simd.h"

#include <cstdlib>

namespace sattn::simd {
namespace {

// ---- Scalar backend --------------------------------------------------------
//
// These loops are the pre-SIMD kernels verbatim: dots accumulate in double
// (head dims are small but the reference paths compare at 1e-5 tolerances),
// axpy stays in float. The parity suite pins the dispatched backend against
// this table, and SATTN_FORCE_SCALAR=1 routes everything through it.

float dot_scalar(const float* a, const float* b, Index n) {
  double acc = 0.0;
  for (Index i = 0; i < n; ++i) acc += static_cast<double>(a[i]) * b[i];
  return static_cast<float>(acc);
}

void dotn_scalar(const float* const* q, Index rows, const float* k, Index n, float* out) {
  for (Index r = 0; r < rows; ++r) out[r] = dot_scalar(q[r], k, n);
}

void axpy_scalar(float a, const float* x, float* y, Index n) {
  for (Index i = 0; i < n; ++i) y[i] += a * x[i];
}

void axpyn_scalar(const float* w, Index rows, const float* v, float* const* acc, Index n) {
  for (Index r = 0; r < rows; ++r) axpy_scalar(w[r], v, acc[r], n);
}

void scale_scalar(float* x, Index n, float s) {
  for (Index i = 0; i < n; ++i) x[i] *= s;
}

bool force_scalar_from_env() {
  const char* env = std::getenv("SATTN_FORCE_SCALAR");
  return env != nullptr && env[0] != '\0' && !(env[0] == '0' && env[1] == '\0');
}

}  // namespace

const Ops& scalar_ops() {
  static const Ops table = {"scalar", Level::kScalar, dot_scalar,  dotn_scalar,
                            axpy_scalar, axpyn_scalar, scale_scalar};
  return table;
}

#if defined(SATTN_HAVE_AVX2)
// Defined in src/core/simd_avx2.cpp (compiled with -mavx2 -mfma); only
// dereferenced after detected_level() confirms hardware support.
const Ops& avx2_ops();
#endif

Level detected_level() {
#if defined(SATTN_HAVE_AVX2) && defined(__GNUC__) && (defined(__x86_64__) || defined(__i386__))
  static const bool has_avx2 =
      __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
  return has_avx2 ? Level::kAvx2 : Level::kScalar;
#else
  return Level::kScalar;
#endif
}

const Ops& dispatched_ops() {
  static const Ops* table = [] {
    if (force_scalar_from_env()) return &scalar_ops();
#if defined(SATTN_HAVE_AVX2)
    if (detected_level() == Level::kAvx2) return &avx2_ops();
#endif
    return &scalar_ops();
  }();
  return *table;
}

const char* level_name(Level level) {
  switch (level) {
    case Level::kScalar: return "scalar";
    case Level::kAvx2: return "avx2";
  }
  return "unknown";
}

namespace detail {

std::atomic<const Ops*>& active_slot() {
  static std::atomic<const Ops*> slot{nullptr};
  return slot;
}

const Ops& init_active() {
  const Ops& d = dispatched_ops();
  const Ops* expected = nullptr;
  active_slot().compare_exchange_strong(expected, &d, std::memory_order_relaxed);
  return *active_slot().load(std::memory_order_relaxed);
}

}  // namespace detail

ScopedForceScalar::ScopedForceScalar()
    : prev_(detail::active_slot().exchange(&scalar_ops(), std::memory_order_relaxed)) {}

ScopedForceScalar::~ScopedForceScalar() {
  detail::active_slot().store(prev_, std::memory_order_relaxed);
}

}  // namespace sattn::simd
