// Error taxonomy for recoverable failures: sattn::Status / sattn::StatusOr.
//
// The library distinguishes two failure families:
//
//   * Programmer invariants on hot paths (matrix element access, span
//     indexing) stay `assert` — they are unreachable given correct code and
//     must cost nothing in release builds.
//   * Data-dependent, *recoverable* conditions (a non-monotone KV append, a
//     corrupted tensor, an invalid scheduler option, a degenerate sparse
//     plan) return a message-carrying Status that propagates to a layer
//     that can recover — retry, fall back to dense attention, or shed the
//     request. These checks are ALWAYS ON: SATTN_CHECK is a plain branch,
//     never compiled out by NDEBUG, so release servers fail loudly instead
//     of silently running past a vanished assert.
//
// See docs/ROBUSTNESS.md for the taxonomy and which layer handles what.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <optional>
#include <sstream>
#include <string>
#include <utility>

namespace sattn {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,     // caller passed a malformed value (bad shape, ratio)
  kFailedPrecondition,  // object state forbids the call (non-monotone append)
  kOutOfRange,          // index/slot outside the valid range
  kDataCorruption,      // NaN/Inf or otherwise poisoned payload data
  kResourceExhausted,   // budget/queue/capacity exceeded (admission control)
  kDeadlineExceeded,    // SLO/deadline missed
  kUnavailable,         // transient failure; retry may succeed
  kInternal,            // invariant violated inside the library
};

// Stable upper-case name ("INVALID_ARGUMENT") for logs and tests.
const char* status_code_name(StatusCode code);

// Value-type status: OK or (code, message). [[nodiscard]] so dropped errors
// are compile-time warnings at every call site.
class [[nodiscard]] Status {
 public:
  Status() = default;  // OK
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {
    if (code_ == StatusCode::kOk) message_.clear();
  }

  static Status Ok() { return {}; }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "DATA_CORRUPTION: NaN at K[3,7]" (or "OK").
  std::string to_string() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

namespace detail {

template <typename... Args>
std::string status_msg(Args&&... args) {
  std::ostringstream os;
  (os << ... << args);
  return os.str();
}

[[noreturn]] inline void die_on_bad_access(const Status& s) {
  std::fprintf(stderr, "StatusOr::value() on error status: %s\n", s.to_string().c_str());
  std::abort();
}

}  // namespace detail

// Status-or-value. Construction from a T yields OK; construction from a
// non-OK Status yields the error. value()/operator* on an error status
// aborts with the message (tests should gate on ok() first).
template <typename T>
class [[nodiscard]] StatusOr {
 public:
  StatusOr(Status status) : status_(std::move(status)) {
    if (status_.ok()) {
      status_ = Status(StatusCode::kInternal, "StatusOr constructed from OK status without value");
    }
  }
  StatusOr(T value) : value_(std::move(value)) {}

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    if (!ok()) detail::die_on_bad_access(status_);
    return *value_;
  }
  T& value() & {
    if (!ok()) detail::die_on_bad_access(status_);
    return *value_;
  }
  T&& value() && {
    if (!ok()) detail::die_on_bad_access(status_);
    return *std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace sattn

// Returns an error Status from the enclosing function when `cond` is false.
// Always on — this is a plain branch, not an assert; the message arguments
// are streamed only on failure. `code` is a bare StatusCode member name.
//
//   SATTN_CHECK(pos > last, kFailedPrecondition,
//               "append position ", pos, " <= last position ", last);
#define SATTN_CHECK(cond, code, ...)                                     \
  do {                                                                   \
    if (!(cond)) [[unlikely]] {                                          \
      return ::sattn::Status(::sattn::StatusCode::code,                  \
                             ::sattn::detail::status_msg(__VA_ARGS__));  \
    }                                                                    \
  } while (0)

// Propagates a non-OK Status from the enclosing function.
#define SATTN_RETURN_IF_ERROR(expr)             \
  do {                                          \
    ::sattn::Status sattn_status_ = (expr);     \
    if (!sattn_status_.ok()) [[unlikely]] {     \
      return sattn_status_;                     \
    }                                           \
  } while (0)

// Unwraps a StatusOr into `lhs`, propagating the error otherwise.
//   SATTN_ASSIGN_OR_RETURN(const auto trace, synthetic_trace(...));
#define SATTN_ASSIGN_OR_RETURN(lhs, rexpr)                              \
  SATTN_ASSIGN_OR_RETURN_IMPL_(                                         \
      SATTN_STATUS_CONCAT_(sattn_statusor_, __LINE__), lhs, rexpr)

#define SATTN_ASSIGN_OR_RETURN_IMPL_(statusor, lhs, rexpr) \
  auto statusor = (rexpr);                                 \
  if (!statusor.ok()) [[unlikely]] {                       \
    return statusor.status();                              \
  }                                                        \
  lhs = std::move(statusor).value()

#define SATTN_STATUS_CONCAT_INNER_(a, b) a##b
#define SATTN_STATUS_CONCAT_(a, b) SATTN_STATUS_CONCAT_INNER_(a, b)
