// Stage-2: Score-Based Key-Value Filtering (Section 4.2, Figure 3 step 2).
//
// Given the column-accumulated sampled scores from Stage-1, select the
// minimum set of key columns I_KV whose retained mass meets the CRA
// threshold alpha (Eq. 6, relaxed to the column statistic). The paper's
// Algorithm 1 does this with a coarse bucket list: sort descending, compute
// the coverage at a fixed list of prefix ratios, `searchsorted` the list for
// alpha, and keep the corresponding top-k indices. We implement that
// faithfully (kBucketed) and also the exact minimal prefix (kExact), which
// DESIGN.md calls out as an ablation.
#pragma once

#include <span>
#include <vector>

#include "core/tensor.h"

namespace sattn {

enum class FilterMode {
  kBucketed,  // Algorithm 1's prefixsum_sample_list + searchsorted
  kExact      // minimal k with coverage >= alpha
};

struct FilterConfig {
  double alpha = 0.95;
  // Fraction of each row's mass already guaranteed by the merged window
  // mask (Stage-1's window_mass / total_mass). The effective coverage
  // target on the residual column statistic becomes
  // (alpha - pre_covered) / (1 - pre_covered), clamped to [0, 1].
  double pre_covered = 0.0;
  FilterMode mode = FilterMode::kBucketed;
  // Algorithm 1's example list; fractions of Sk, ascending, last must be 1.
  std::vector<double> bucket_ratios = {0.0125, 0.025, 0.05, 0.1, 0.2, 0.4, 0.8, 1.0};
};

struct FilterResult {
  std::vector<Index> kv_indices;  // I_KV, sorted ascending
  double kv_ratio = 0.0;          // |I_KV| / Sk
  double coverage = 0.0;          // retained fraction of total column mass
};

// Selects I_KV from the Stage-1 column weights.
FilterResult filter_kv_indices(std::span<const float> column_weight, const FilterConfig& cfg);

}  // namespace sattn
