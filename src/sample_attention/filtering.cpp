#include "sample_attention/filtering.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "core/numerics.h"
#include "obs/accounting.h"
#include "obs/trace.h"

namespace sattn {

FilterResult filter_kv_indices(std::span<const float> column_weight, const FilterConfig& cfg) {
  SATTN_SPAN("sattn/stage2_filtering");
  FilterResult res;
  const auto sk = static_cast<Index>(column_weight.size());
  if (sk == 0) return res;
  assert(cfg.alpha > 0.0 && cfg.alpha <= 1.0);
  assert(cfg.pre_covered >= 0.0 && cfg.pre_covered <= 1.0);

  // Residual coverage target after accounting for window-guaranteed mass.
  double target = cfg.alpha;
  if (cfg.pre_covered > 0.0) {
    target = cfg.pre_covered >= 1.0
                 ? 0.0
                 : std::clamp((cfg.alpha - cfg.pre_covered) / (1.0 - cfg.pre_covered), 0.0, 1.0);
  }
  if (target <= 0.0) return res;  // window alone already meets alpha

  // SortedWeight = SampleWeight.sort(descending); WeightSum = sum.
  const std::vector<Index> order = argsort_desc(column_weight);
  std::vector<float> sorted(static_cast<std::size_t>(sk));
  for (Index r = 0; r < sk; ++r)
    sorted[static_cast<std::size_t>(r)] = column_weight[static_cast<std::size_t>(order[static_cast<std::size_t>(r)])];
  const std::vector<double> prefix = prefix_sum(sorted);
  const double total = prefix.back();
  if (total <= 0.0) {
    // Degenerate (no mass sampled): keep nothing; the window mask still
    // guarantees a non-empty row downstream.
    return res;
  }

  Index keep = 0;
  if (cfg.mode == FilterMode::kExact) {
    // Minimal prefix whose coverage reaches alpha.
    const double need = target * total;
    const auto it = std::lower_bound(prefix.begin(), prefix.end(), need);
    keep = static_cast<Index>(it - prefix.begin()) + 1;
    keep = std::min(keep, sk);
  } else {
    // Algorithm 1: coverage at each bucket cut, then searchsorted(alpha).
    assert(!cfg.bucket_ratios.empty());
    std::vector<double> sd_sample_list;
    sd_sample_list.reserve(cfg.bucket_ratios.size());
    std::vector<Index> cuts;
    cuts.reserve(cfg.bucket_ratios.size());
    for (double ratio : cfg.bucket_ratios) {
      Index cut = static_cast<Index>(std::llround(ratio * static_cast<double>(sk)));
      cut = std::clamp<Index>(cut, 1, sk);
      cuts.push_back(cut);
      sd_sample_list.push_back(prefix[static_cast<std::size_t>(cut - 1)] / total);
    }
    const Index bucket = searchsorted(sd_sample_list, target);
    keep = cuts[static_cast<std::size_t>(std::min<Index>(bucket, static_cast<Index>(cuts.size()) - 1))];
  }

  res.kv_indices.assign(order.begin(), order.begin() + keep);
  std::sort(res.kv_indices.begin(), res.kv_indices.end());
  res.kv_ratio = static_cast<double>(keep) / static_cast<double>(sk);
  res.coverage = prefix[static_cast<std::size_t>(keep - 1)] / total;
  SATTN_COUNTER_ADD("sattn.retained_kv_columns", keep);
  // Stage-2 work: the descending sort dominates (~sk log2 sk compares);
  // bytes match the cost model's six passes over the sk-length statistic
  // (read, sort copy, prefix sum in/out, cut search, index write-back).
  obs::charge_stage("filtering",
                    static_cast<double>(sk) *
                        std::max(1.0, std::log2(static_cast<double>(sk))),
                    6.0 * obs::kAcctBytesPerElement * static_cast<double>(sk));
  return res;
}

}  // namespace sattn
