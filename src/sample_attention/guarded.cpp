#include "sample_attention/guarded.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <utility>
#include <vector>

#include "attention/flash_attention.h"
#include "attention/sparse_flash_attention.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "robust/validate.h"

namespace sattn {
namespace {

// Achieved coverage is re-derived from the plan's own contents instead of
// trusting FilterResult::coverage, so corruption that edits the mask but
// leaves the bookkeeping intact is still caught.
double achieved_coverage(const SamplePlan& plan) {
  const double total = plan.stage1.total_mass;
  if (!(total > 0.0)) return std::numeric_limits<double>::quiet_NaN();
  double retained = plan.stage1.window_mass;
  const auto& w = plan.stage1.column_weight;
  for (Index j : plan.mask.stripe_columns()) {
    if (j >= 0 && j < static_cast<Index>(w.size())) retained += w[static_cast<std::size_t>(j)];
  }
  return retained / total;
}

}  // namespace

const char* guard_outcome_name(GuardOutcome outcome) {
  switch (outcome) {
    case GuardOutcome::kPrimary: return "primary";
    case GuardOutcome::kResampled: return "resampled";
    case GuardOutcome::kWidened: return "widened";
    case GuardOutcome::kDenseFallback: return "dense_fallback";
  }
  return "unknown";
}

Status validate_sample_plan(const SamplePlan& plan, const AttentionInput& in,
                            const SampleAttentionConfig& cfg, const GuardConfig& guard) {
  SATTN_CHECK(plan.mask.sq() == in.sq() && plan.mask.sk() == in.sk(), kInvalidArgument,
              "plan mask is ", plan.mask.sq(), "x", plan.mask.sk(), " but input is ", in.sq(),
              "x", in.sk());
  SATTN_CHECK(std::isfinite(plan.stage1.total_mass) && plan.stage1.total_mass > 0.0,
              kDataCorruption, "Stage-1 total mass is ", plan.stage1.total_mass);
  SATTN_CHECK(plan.mask.window() >= 1, kFailedPrecondition,
              "plan mask lost its local window (window=", plan.mask.window(),
              "); diagonal coverage is not guaranteed");
  const double density = plan.mask.density();
  SATTN_CHECK(density > 0.0, kFailedPrecondition, "plan mask is empty (density 0)");
  SATTN_CHECK(density <= guard.max_density, kFailedPrecondition,
              "plan density ", density, " exceeds the guard budget ", guard.max_density);
  // Coverage check. NaN-poisoned statistics fail the comparison and land in
  // the second message branch.
  const double covered = achieved_coverage(plan);
  const double needed = cfg.alpha * guard.coverage_slack;
  SATTN_CHECK(covered >= needed, kFailedPrecondition,
              "plan coverage ", covered, " below required ", needed, " (alpha=", cfg.alpha,
              ", slack=", guard.coverage_slack, ")");
  return Status::Ok();
}

Status guarded_sample_attention(const AttentionInput& in, const SampleAttentionConfig& cfg,
                                const GuardConfig& guard, Matrix& out, GuardReport* report) {
  SATTN_SPAN("sattn/guarded");
  GuardReport rep;
  if (guard.validate_inputs) {
    const Status input_status = validate_attention_input(in);
    if (!input_status.ok()) {
      SATTN_COUNTER_ADD("guard.input_rejects", 1);
      if (report != nullptr) *report = std::move(rep);
      return input_status;
    }
  }

  // The escalation ladder, as (config, outcome) rungs. Each rung strictly
  // raises the retained mass: more sampled rows sharpen the statistic, a
  // wider window raises the guaranteed diagonal coverage.
  struct Rung {
    SampleAttentionConfig cfg;
    GuardOutcome outcome;
  };
  std::vector<Rung> ladder;
  ladder.push_back({cfg, GuardOutcome::kPrimary});
  SampleAttentionConfig stepped = cfg;
  for (Index r = 0; r < guard.max_resamples; ++r) {
    stepped.row_ratio = std::min(1.0, stepped.row_ratio * guard.resample_factor);
    stepped.seed += 1;  // a fresh sample, not a replay, under kRandom
    ladder.push_back({stepped, GuardOutcome::kResampled});
  }
  for (Index w = 0; w < guard.max_widens; ++w) {
    stepped.window_ratio = std::min(1.0, stepped.window_ratio * guard.widen_factor);
    ladder.push_back({stepped, GuardOutcome::kWidened});
  }

  for (const Rung& rung : ladder) {
    SamplePlan plan = plan_sample_attention(in, rung.cfg);
    if (guard.plan_hook) guard.plan_hook(plan);
    const Status verdict = validate_sample_plan(plan, in, rung.cfg, guard);
    if (!verdict.ok()) {
      ++rep.plan_rejects;
      rep.last_reject = verdict.to_string();
      rep.overhead += plan.overhead_fraction;  // wasted planning work
      SATTN_COUNTER_ADD("guard.plan_rejects", 1);
      switch (rung.outcome) {
        case GuardOutcome::kResampled: ++rep.resamples; break;
        case GuardOutcome::kWidened: ++rep.widens; break;
        default: break;
      }
      continue;
    }
    sparse_flash_attention(in, plan.mask, out);
    if (!all_finite(out.flat())) {
      // Finite inputs should yield finite output; treat anything else as a
      // kernel-level corruption and keep escalating.
      ++rep.plan_rejects;
      rep.last_reject = "non-finite output from sparse kernel";
      SATTN_COUNTER_ADD("guard.output_rejects", 1);
      continue;
    }
    rep.outcome = rung.outcome;
    switch (rung.outcome) {
      case GuardOutcome::kResampled:
        ++rep.resamples;
        SATTN_COUNTER_ADD("guard.resamples", 1);
        break;
      case GuardOutcome::kWidened:
        ++rep.widens;
        SATTN_COUNTER_ADD("guard.window_widens", 1);
        break;
      default:
        break;
    }
    if (rep.plan_rejects > 0) SATTN_COUNTER_ADD("guard.recovered", 1);
    rep.coverage = achieved_coverage(plan);
    rep.density = plan.density;
    rep.overhead += plan.overhead_fraction;
    // Ladder-depth and achieved-coverage distributions for the run report.
    SATTN_HISTOGRAM("guard.ladder_rungs", rep.plan_rejects);
    SATTN_HISTOGRAM("guard.coverage", rep.coverage);
    if (report != nullptr) *report = std::move(rep);
    return Status::Ok();
  }

  if (guard.allow_dense_fallback) {
    flash_attention(in, out);
    rep.outcome = GuardOutcome::kDenseFallback;
    rep.coverage = 1.0;
    rep.density = 1.0;
    SATTN_COUNTER_ADD("guard.dense_fallbacks", 1);
    SATTN_COUNTER_ADD("guard.recovered", 1);
    if (report != nullptr) *report = std::move(rep);
    return Status::Ok();
  }

  const std::string why = rep.last_reject;
  if (report != nullptr) *report = std::move(rep);
  return Status(StatusCode::kUnavailable,
                detail::status_msg("no valid sparse plan and dense fallback disabled; last "
                                   "rejection: ",
                                   why));
}

std::string GuardedSampleAttention::name() const {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "GuardedSampleAttention(a=%.2f)", cfg_.alpha);
  return buf;
}

AttentionResult GuardedSampleAttention::run_impl(const AttentionInput& in) const {
  AttentionResult r;
  r.out.resize(in.sq(), in.head_dim());
  last_status_ = guarded_sample_attention(in, cfg_, guard_, r.out, &last_report_);
  if (!last_status_.ok()) {
    // Unrecoverable input: surface a well-defined zero output rather than
    // NaN soup; callers that need the Status use guarded_sample_attention
    // directly or read last_status().
    r.out.fill(0.0f);
    r.density = 0.0;
    r.overhead_density = 0.0;
    SATTN_COUNTER_ADD("guard.unrecoverable", 1);
    return r;
  }
  r.density = last_report_.density;
  r.overhead_density = last_report_.overhead;
  return r;
}

}  // namespace sattn
