// SampleAttention: adaptive structured sparse attention (Section 4).
//
// End-to-end pipeline per attention head, following the paper's Algorithm 1:
//
//   1. Stage-1  — stride-sample query rows (ratio r_row), compute exact
//                 softmax scores for them, accumulate along columns.
//   2. Stage-2  — sort the column statistic, pick the minimum top-k key set
//                 I_KV whose coverage reaches the CRA threshold alpha
//                 (bucketed searchsorted, per Algorithm 1).
//   3. Merge    — union I_KV's column stripes with the tuned local window
//                 (width = ceil(r_w% * Sk)) into a structured mask.
//   4. Kernel   — run the sparse flash-attention kernel over the mask.
//
// The method is tuning-free at run time: the three hyperparameters
// (alpha, r_row, r_w%) are fixed per model by offline profiling (tuner.h).
#pragma once

#include <string>

#include "attention/attention_method.h"
#include "attention/masks.h"
#include "sample_attention/filtering.h"
#include "sample_attention/sampling.h"

namespace sattn {

struct SampleAttentionConfig {
  double alpha = 0.95;        // CRA threshold (Table 1)
  double row_ratio = 0.05;    // r_row, Stage-1 sampling ratio
  double window_ratio = 0.08; // r_w%, local-window fraction of Sk
  SamplingPolicy sampling = SamplingPolicy::kStride;
  FilterMode filter = FilterMode::kBucketed;
  std::uint64_t seed = 0;     // only used by SamplingPolicy::kRandom

  // Extension (paper Appendix A.6 future work): detect secondary diagonal
  // structures from the Stage-1 distance histogram and add matching
  // diagonal bands to the merged mask. A distance bucket beyond the window
  // whose mass fraction exceeds diag_min_mass becomes a band.
  bool detect_diagonals = false;
  double diag_min_mass = 0.04;
};

// Everything the planner decided for one head, exposed for analysis benches
// (Fig 2(e), Table 6) and for the cost model.
struct SamplePlan {
  StructuredMask mask;                 // merged window + stripe mask
  FilterResult filter;                 // I_KV and its coverage
  SampleStats stage1;                  // sampled rows + column statistic
  double overhead_fraction = 0.0;      // Stage-1 work / full attention work
  double density = 0.0;                // mask density over the causal grid
};

// Runs Stage-1 + Stage-2 + merge, without executing the kernel.
SamplePlan plan_sample_attention(const AttentionInput& in, const SampleAttentionConfig& cfg);

// Full pipeline: plan + sparse kernel.
void sample_attention(const AttentionInput& in, const SampleAttentionConfig& cfg, Matrix& out,
                      SamplePlan* plan_out = nullptr);

class SampleAttention final : public AttentionMethod {
 public:
  explicit SampleAttention(SampleAttentionConfig cfg = {}) : cfg_(cfg) {}

  std::string name() const override;

  const SampleAttentionConfig& config() const { return cfg_; }

 protected:
  AttentionResult run_impl(const AttentionInput& in) const override;

 private:
  SampleAttentionConfig cfg_;
};

}  // namespace sattn
