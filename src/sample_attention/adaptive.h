// Runtime hyperparameter autotuning — the paper's Appendix A.6 future-work
// item ("implement autotuning of these hyperparameters during task runtime,
// enabling SampleAttention to consistently achieve high accuracy and low
// latency across diverse sequence lengths and scenarios").
//
// The controller closes the loop on alpha: after every request it estimates
// the CRA its plan actually achieved (window mass measured in Stage-1 plus
// the selected stripes' residual coverage) and nudges alpha so the estimate
// tracks a target band — raising alpha when requests come in under target
// (accuracy risk) and lowering it when the plan overshoots (latency waste).
#pragma once

#include "sample_attention/sample_attention.h"

namespace sattn {

struct AdaptiveConfig {
  SampleAttentionConfig base;   // starting point (alpha is the tuned knob)
  double target_cra = 0.95;     // coverage the controller steers toward
  double band = 0.02;           // dead band around the target
  double step = 0.01;           // alpha adjustment per request
  double alpha_min = 0.70;
  double alpha_max = 0.99;
};

class AdaptiveAlphaController {
 public:
  explicit AdaptiveAlphaController(AdaptiveConfig cfg = {});

  // Current operating configuration.
  const SampleAttentionConfig& config() const { return current_; }

  // Estimated CRA of a plan from its own Stage-1 statistics: the measured
  // window mass fraction plus the selected columns' share of the residual.
  static double estimated_cra(const SamplePlan& plan);

  // Runs SampleAttention with the current config and adapts alpha from the
  // plan's estimated CRA. Returns the attention result.
  AttentionResult run(const AttentionInput& in);

  // Feedback path without running (e.g. when the caller executed the plan
  // itself): adapts alpha from an externally produced plan.
  void feedback(const SamplePlan& plan);

  Index requests_seen() const { return requests_; }

 private:
  AdaptiveConfig cfg_;
  SampleAttentionConfig current_;
  Index requests_ = 0;
};

}  // namespace sattn
