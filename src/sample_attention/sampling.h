// Stage-1: Query-Guided Attention Sampling (Section 4.2, Figure 3 step 1).
//
// SampleAttention exploits the column-stripe structure of long-context score
// matrices: a high P[i,k] strongly predicts high P[j,k] for other rows j.
// It therefore computes *exact* softmax scores for only a strided subset of
// query rows (sampling ratio r_row = l / Sq) and accumulates them along the
// column axis. The column sums are the sufficient statistic Stage-2 filters
// on. The paper fuses the bmm + softmax + reduction into one kernel to avoid
// materializing the sampled score block; we mirror that by streaming one row
// at a time (O(Sk) scratch) and counting the work performed.
//
// Because the selected I_KV is later *merged with the local-window mask*
// (Figure 3), the statistic can exclude each sampled row's window region:
// that mass is guaranteed by the window mask regardless of which columns
// are picked, so Stage-2 only needs to cover the residual. Pass
// exclude_window = 0 to get the raw Algorithm-1 statistic.
#pragma once

#include <vector>

#include "core/tensor.h"

namespace sattn {

enum class SamplingPolicy {
  kStride,   // evenly spaced rows — the paper's scheme
  kRandom,   // uniform random rows — ablation alternative
  kTailOnly  // only the last l rows — ablation showing why spread matters
};

struct SampleStats {
  std::vector<float> column_weight;  // accumulated softmax mass per key column
  std::vector<Index> sampled_rows;
  double total_mass = 0.0;   // total sampled mass (= number of sampled rows)
  double window_mass = 0.0;  // portion that fell inside the excluded window
  double score_evals = 0.0;  // number of (q,k) logit evaluations performed

  // Mass histogram over relative distance (causal_limit - j), in
  // kDistanceBuckets equal buckets of the key range. Diagonal structures
  // concentrate in one bucket (at their offset) while column stripes smear
  // across buckets — which is what the optional diagonal detector keys on.
  static constexpr Index kDistanceBuckets = 32;
  std::vector<double> distance_hist;  // size kDistanceBuckets, sums to total_mass
  Index distance_bucket_width = 1;
};

// Computes the Stage-1 column statistic with the given policy and ratio.
// Entries within `exclude_window` keys of each sampled row's causal limit
// are tallied into window_mass instead of column_weight. `rng_seed` is only
// used by kRandom.
SampleStats sample_column_weights(const AttentionInput& in, double row_ratio,
                                  SamplingPolicy policy = SamplingPolicy::kStride,
                                  Index exclude_window = 0, std::uint64_t rng_seed = 0);

// Overhead of Stage-1 expressed as a fraction of full causal attention work
// (feeds Fig 5(b)'s sampling-share breakdown and AttentionResult).
double sampling_overhead_fraction(const SampleStats& stats, Index sq, Index sk);

}  // namespace sattn
