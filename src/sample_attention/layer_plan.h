// Layer-level planning: SampleAttention across all heads of one layer.
//
// The paper selects I_KV per head ("separately select top-k key-value
// indices ... for each head"). Both evaluated models use grouped-query
// attention, which enables a cheaper variant this module exposes as an
// ablation: plan Stage-1/2 once per KV group (the group's query heads share
// keys, so their column statistics are strongly correlated) and reuse the
// selected I_KV across the group — cutting planning overhead by the group
// size at a measurable accuracy cost.
#pragma once

#include <vector>

#include "model/synthetic_model.h"
#include "sample_attention/sample_attention.h"

namespace sattn {

struct LayerPlanOptions {
  SampleAttentionConfig cfg;
  // Plan once per KV group and share I_KV within the group.
  bool share_within_kv_group = false;
};

struct LayerPlan {
  std::vector<SamplePlan> head_plans;  // indexed by query head
  double mean_density = 0.0;
  double mean_overhead = 0.0;  // planning work per head, averaged
  Index planned_heads = 0;     // heads that ran Stage-1/2 themselves
};

// Plans every head of `layer` for the given content.
LayerPlan plan_layer(const ModelConfig& model, const ContentSpec& content, Index layer,
                     const LayerPlanOptions& opts = {});

// Executes the plan: sparse attention per head. outputs[h] is [S x d].
std::vector<Matrix> run_layer(const ModelConfig& model, const ContentSpec& content, Index layer,
                              const LayerPlan& plan);

// Query heads per KV group for a model config.
inline Index gqa_group_size(const ModelConfig& model) {
  return model.n_kv_heads > 0 ? std::max<Index>(1, model.n_heads / model.n_kv_heads) : 1;
}

}  // namespace sattn
