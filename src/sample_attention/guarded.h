// Guarded SampleAttention: the near-lossless claim, defended at runtime.
//
// Adaptivity can go wrong — a degenerate head whose Stage-1 sample misses
// the stripes, a corrupted tensor, a plan whose mask no longer covers the
// CRA threshold. The guarded pipeline wraps plan_sample_attention with
//
//   1. input validation  — shape + NaN/Inf checks on Q/K/V (robust/validate.h);
//      corrupted inputs are NOT recoverable (dense attention would be NaN
//      too) and return kDataCorruption;
//   2. plan validation   — achieved coverage >= alpha * coverage_slack,
//      non-degenerate mask (window present, density in (0, max_density]),
//      finite Stage-1 statistics;
//   3. an escalation ladder on plan rejection:
//         re-sample at higher row_ratio  (x resample_factor, max_resamples)
//      -> widen the local window         (x widen_factor, max_widens)
//      -> dense FlashAttention fallback  (exact, always valid)
//      with every step counted via src/obs (guard.* counters).
//
// Theorem 1 is what makes the ladder sound: each rung strictly raises the
// retained attention mass, and the last rung is exact.
#pragma once

#include <functional>
#include <string>

#include "attention/attention_method.h"
#include "core/status.h"
#include "sample_attention/sample_attention.h"

namespace sattn {

struct GuardConfig {
  bool validate_inputs = true;

  // A plan is accepted when its achieved coverage (window mass + retained
  // stripe mass, re-derived from the plan's own Stage-1 statistic) reaches
  // alpha * coverage_slack. Slack < 1 tolerates the sampling estimate's
  // noise; 1.0 demands the full CRA threshold.
  double coverage_slack = 0.9;

  // Plans denser than this are rejected (a near-dense "sparse" plan is
  // strictly worse than the dense kernel). 1.0 never trips.
  double max_density = 1.0;

  Index max_resamples = 1;        // ladder rung 1: re-sample Stage-1
  double resample_factor = 2.0;   // row_ratio multiplier per resample
  Index max_widens = 1;           // ladder rung 2: widen the window
  double widen_factor = 2.0;      // window_ratio multiplier per widen
  bool allow_dense_fallback = true;  // ladder rung 3: exact FlashAttention

  // Test hook: runs on every freshly produced plan before validation.
  // Fault injection (robust/fault_injection.h) uses it to corrupt plans on
  // the live path; leave empty in production.
  std::function<void(SamplePlan&)> plan_hook;
};

enum class GuardOutcome {
  kPrimary,       // first plan accepted
  kResampled,     // accepted after Stage-1 re-sampling
  kWidened,       // accepted after window widening
  kDenseFallback  // exact dense attention ran
};

const char* guard_outcome_name(GuardOutcome outcome);

struct GuardReport {
  GuardOutcome outcome = GuardOutcome::kPrimary;
  Index plan_rejects = 0;    // plans that failed validation
  Index resamples = 0;       // re-sample rungs taken
  Index widens = 0;          // widen rungs taken
  double coverage = 0.0;     // achieved coverage of the accepted plan (1 for dense)
  double density = 0.0;      // executed mask density (1 for dense)
  double overhead = 0.0;     // planning overhead incl. rejected attempts
  std::string last_reject;   // why the most recent plan was rejected
};

// Validates one plan against the guard policy. Exposed for tests and for
// callers that plan once and execute many times.
Status validate_sample_plan(const SamplePlan& plan, const AttentionInput& in,
                            const SampleAttentionConfig& cfg, const GuardConfig& guard);

// Guarded pipeline: validate -> plan -> escalate -> execute. On success
// `out` holds the attention output and `report` (if given) says which rung
// served it. Returns a non-OK Status only for unrecoverable conditions
// (corrupted/malformed input, or every rung exhausted with dense fallback
// disabled).
Status guarded_sample_attention(const AttentionInput& in, const SampleAttentionConfig& cfg,
                                const GuardConfig& guard, Matrix& out,
                                GuardReport* report = nullptr);

// AttentionMethod adapter so the guarded pipeline drops into model_runner
// and the bench lineups. Unrecoverable inputs zero the output and record
// the error (last_status); recoverable ones resolve per the ladder.
class GuardedSampleAttention final : public AttentionMethod {
 public:
  explicit GuardedSampleAttention(SampleAttentionConfig cfg = {}, GuardConfig guard = {})
      : cfg_(cfg), guard_(std::move(guard)) {}

  std::string name() const override;

  const SampleAttentionConfig& config() const { return cfg_; }
  const GuardConfig& guard() const { return guard_; }
  const GuardReport& last_report() const { return last_report_; }
  const Status& last_status() const { return last_status_; }

 protected:
  AttentionResult run_impl(const AttentionInput& in) const override;

 private:
  SampleAttentionConfig cfg_;
  GuardConfig guard_;
  mutable GuardReport last_report_;
  mutable Status last_status_;
};

}  // namespace sattn
