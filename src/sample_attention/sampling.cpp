#include "sample_attention/sampling.h"

#include <algorithm>
#include <cmath>

#include "attention/attention_method.h"
#include "attention/score_utils.h"
#include "core/rng.h"
#include "obs/accounting.h"
#include "obs/trace.h"

namespace sattn {
namespace {

std::vector<Index> pick_rows(Index sq, double row_ratio, SamplingPolicy policy,
                             std::uint64_t rng_seed) {
  row_ratio = std::clamp(row_ratio, 0.0, 1.0);
  const Index l =
      std::max<Index>(1, static_cast<Index>(std::llround(row_ratio * static_cast<double>(sq))));
  switch (policy) {
    case SamplingPolicy::kStride:
      return stride_rows(sq, row_ratio);
    case SamplingPolicy::kRandom: {
      Rng rng(rng_seed ^ 0x53414d504c45ull);
      auto rows = rng.sample_without_replacement(sq, std::min(l, sq));
      std::sort(rows.begin(), rows.end());
      return rows;
    }
    case SamplingPolicy::kTailOnly: {
      std::vector<Index> rows;
      for (Index i = std::max<Index>(0, sq - l); i < sq; ++i) rows.push_back(i);
      return rows;
    }
  }
  return stride_rows(sq, row_ratio);
}

}  // namespace

SampleStats sample_column_weights(const AttentionInput& in, double row_ratio,
                                  SamplingPolicy policy, Index exclude_window,
                                  std::uint64_t rng_seed) {
  SATTN_SPAN("sattn/stage1_sampling");
  const Index sq = in.sq(), sk = in.sk();
  SampleStats st;
  st.sampled_rows = pick_rows(sq, row_ratio, policy, rng_seed);
  SATTN_COUNTER_ADD("sattn.sampled_rows", st.sampled_rows.size());

  std::vector<double> acc(static_cast<std::size_t>(sk), 0.0);
  st.distance_bucket_width = std::max<Index>(1, (sk + SampleStats::kDistanceBuckets - 1) /
                                                    SampleStats::kDistanceBuckets);
  st.distance_hist.assign(SampleStats::kDistanceBuckets, 0.0);
  for_each_score_row(in, st.sampled_rows, [&](Index i, std::span<const float> p) {
    const Index lim = causal_limit(i, sq, sk);
    const Index win_lo =
        exclude_window > 0 ? std::max<Index>(0, lim - exclude_window + 1) : lim + 1;
    // One fused pass over the sampled row: column accumulate (outside the
    // excluded window), distance histogram, and window mass together, so
    // the row is streamed once instead of three times. Accumulation order
    // per destination matches the old three-pass form (ascending j), so
    // the sums are bit-identical.
    double row_total = 0.0, row_window = 0.0;
    for (Index j = 0; j <= lim; ++j) {
      const float pj = p[static_cast<std::size_t>(j)];
      row_total += pj;
      st.distance_hist[static_cast<std::size_t>(
          std::min<Index>(SampleStats::kDistanceBuckets - 1, (lim - j) / st.distance_bucket_width))] +=
          pj;
      if (j < win_lo) {
        acc[static_cast<std::size_t>(j)] += pj;
      } else {
        row_window += pj;
      }
    }
    st.total_mass += row_total;
    st.window_mass += row_window;
    st.score_evals += static_cast<double>(lim + 1);
  });

  st.column_weight.resize(acc.size());
  std::transform(acc.begin(), acc.end(), st.column_weight.begin(),
                 [](double v) { return static_cast<float>(v); });
  // Stage-1 work: score rows only (2d flops per eval, no PV). Bytes: the
  // sampled Q rows, the K stream, and the column-weight accumulator.
  obs::charge_stage(
      "sampling", 2.0 * static_cast<double>(in.head_dim()) * st.score_evals,
      obs::kAcctBytesPerElement *
          (static_cast<double>(st.sampled_rows.size()) * static_cast<double>(in.head_dim()) +
           static_cast<double>(in.head_dim()) * st.score_evals + static_cast<double>(sk)));
  return st;
}

double sampling_overhead_fraction(const SampleStats& stats, Index sq, Index sk) {
  const double denom = causal_pairs(sq, sk);
  return denom > 0.0 ? stats.score_evals / denom : 0.0;
}

}  // namespace sattn
