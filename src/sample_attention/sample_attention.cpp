#include "sample_attention/sample_attention.h"

#include <cmath>
#include <utility>

#include "attention/sparse_flash_attention.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace sattn {

SamplePlan plan_sample_attention(const AttentionInput& in, const SampleAttentionConfig& cfg) {
  SATTN_SPAN("sattn/plan");
  const Index sq = in.sq(), sk = in.sk();

  const Index window = window_width_from_ratio(sk, cfg.window_ratio);

  // Stage-1: query-guided attention sampling. The window region is tallied
  // separately — it is guaranteed by the merged window mask.
  SampleStats stage1 = sample_column_weights(in, cfg.row_ratio, cfg.sampling, window, cfg.seed);

  // Stage-2: score-based key-value filtering over the residual statistic.
  FilterConfig fcfg;
  fcfg.alpha = cfg.alpha;
  fcfg.pre_covered = stage1.total_mass > 0.0 ? stage1.window_mass / stage1.total_mass : 0.0;
  fcfg.mode = cfg.filter;
  FilterResult filtered = filter_kv_indices(stage1.column_weight, fcfg);

  // Merge: I_KV stripes ∪ tuned local window (Figure 3, "M_Merged").
  SATTN_SPAN("sattn/merge");
  StructuredMask mask(sq, sk);
  mask.set_window(window);
  mask.set_stripe_columns(filtered.kv_indices);

  // Optional diagonal extension: distance buckets past the window with
  // outsized mass become diagonal bands.
  if (cfg.detect_diagonals && stage1.total_mass > 0.0) {
    const Index bw = stage1.distance_bucket_width;
    for (std::size_t b = 0; b < stage1.distance_hist.size(); ++b) {
      const Index bucket_lo = static_cast<Index>(b) * bw;
      if (bucket_lo + bw <= window) continue;  // inside the window anyway
      if (stage1.distance_hist[b] / stage1.total_mass >= cfg.diag_min_mass) {
        mask.add_diagonal_band({bucket_lo, bw});
      }
    }
  }

  SamplePlan plan{std::move(mask), std::move(filtered), std::move(stage1), 0.0, 0.0};
  plan.overhead_fraction = sampling_overhead_fraction(plan.stage1, sq, sk);
  plan.density = plan.mask.density();
  // Retained-KV fraction and achieved Stage-2 coverage distributions for
  // the run report (io/run_report.h): the paper's Table 1 / Fig 5 trade-off
  // quantities, recorded per planned head.
  SATTN_HISTOGRAM("sattn.plan.density", plan.density);
  SATTN_HISTOGRAM("sattn.plan.coverage", plan.filter.coverage);
  SATTN_HISTOGRAM("sattn.plan.overhead_frac", plan.overhead_fraction);
  return plan;
}

void sample_attention(const AttentionInput& in, const SampleAttentionConfig& cfg, Matrix& out,
                      SamplePlan* plan_out) {
  SamplePlan plan = plan_sample_attention(in, cfg);
  sparse_flash_attention(in, plan.mask, out);
  if (plan_out != nullptr) *plan_out = std::move(plan);
}

std::string SampleAttention::name() const {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "SampleAttention(a=%.2f)", cfg_.alpha);
  return buf;
}

AttentionResult SampleAttention::run_impl(const AttentionInput& in) const {
  AttentionResult r;
  SamplePlan plan;
  sample_attention(in, cfg_, r.out, &plan);
  r.density = plan.density;
  r.overhead_density = plan.overhead_fraction;
  return r;
}

}  // namespace sattn
