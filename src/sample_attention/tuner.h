// Offline hyperparameter profiling (Section 4.2, Table 1).
//
// The paper fixes (alpha, r_row, r_w%) per model via lightweight offline
// profiling over a small set of long-context requests (22 requests,
// 25K–96K in the paper; the substrate's scaled-down profiling set lives in
// model/workload.h). The tuner evaluates a grid of configurations against
// the full-attention output on each profiling request, keeps those that are
// near-lossless (relative L1 output error under a tolerance on every
// request), and returns the cheapest — cost being the attention work
// fraction: mask density + Stage-1 sampling overhead.
#pragma once

#include <span>
#include <vector>

#include "sample_attention/sample_attention.h"

namespace sattn {

struct TunerOptions {
  std::vector<double> alphas = {0.80, 0.90, 0.95, 0.98};
  std::vector<double> row_ratios = {0.02, 0.05, 0.10};
  std::vector<double> window_ratios = {0.04, 0.08};
  // Near-lossless criterion: worst-case relative L1 output error across the
  // profiling requests must stay below this.
  double max_rel_l1 = 0.05;
};

struct TunerEntry {
  SampleAttentionConfig cfg;
  double worst_rel_l1 = 0.0;  // max over requests
  double mean_cost = 0.0;     // mean(density + overhead) over requests
  bool feasible = false;
};

struct TunerReport {
  SampleAttentionConfig best;   // cheapest feasible entry
  bool found_feasible = false;  // false => best is the most accurate entry
  std::vector<TunerEntry> entries;
};

TunerReport tune_hyperparameters(std::span<const AttentionInput> profiling_requests,
                                 const TunerOptions& opts = {});

}  // namespace sattn
