#include "sample_attention/adaptive.h"

#include <algorithm>

#include "attention/sparse_flash_attention.h"
#include "obs/trace.h"

namespace sattn {

AdaptiveAlphaController::AdaptiveAlphaController(AdaptiveConfig cfg)
    : cfg_(cfg), current_(cfg.base) {
  assert(cfg_.alpha_min < cfg_.alpha_max);
  current_.alpha = std::clamp(current_.alpha, cfg_.alpha_min, cfg_.alpha_max);
}

double AdaptiveAlphaController::estimated_cra(const SamplePlan& plan) {
  const SampleStats& s = plan.stage1;
  if (s.total_mass <= 0.0) return 1.0;
  const double window_frac = s.window_mass / s.total_mass;
  // filter.coverage is the selected columns' share of the residual (non-
  // window) statistic; an empty selection means the window alone was enough.
  const double stripe_frac = plan.filter.kv_indices.empty()
                                 ? 0.0
                                 : plan.filter.coverage * (1.0 - window_frac);
  return std::min(1.0, window_frac + stripe_frac);
}

void AdaptiveAlphaController::feedback(const SamplePlan& plan) {
  ++requests_;
  const double est = estimated_cra(plan);
  if (est < cfg_.target_cra - cfg_.band) {
    current_.alpha = std::min(cfg_.alpha_max, current_.alpha + cfg_.step);
    SATTN_COUNTER_ADD("sattn.adaptive_alpha_steps", 1);
  } else if (est > cfg_.target_cra + cfg_.band) {
    current_.alpha = std::max(cfg_.alpha_min, current_.alpha - cfg_.step);
    SATTN_COUNTER_ADD("sattn.adaptive_alpha_steps", 1);
  }
}

AttentionResult AdaptiveAlphaController::run(const AttentionInput& in) {
  SATTN_SPAN("sattn/adaptive");
  SamplePlan plan;
  AttentionResult res;
  sample_attention(in, current_, res.out, &plan);
  res.density = plan.density;
  res.overhead_density = plan.overhead_fraction;
  feedback(plan);
  return res;
}

}  // namespace sattn
