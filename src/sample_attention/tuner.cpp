#include "sample_attention/tuner.h"

#include <algorithm>
#include <limits>

#include "attention/full_attention.h"
#include "metrics/recovery.h"
#include "obs/trace.h"

namespace sattn {

TunerReport tune_hyperparameters(std::span<const AttentionInput> profiling_requests,
                                 const TunerOptions& opts) {
  SATTN_SPAN("sattn/tuner");
  TunerReport report;

  // Full-attention references, computed once per request.
  std::vector<Matrix> references(profiling_requests.size());
  for (std::size_t r = 0; r < profiling_requests.size(); ++r) {
    full_attention(profiling_requests[r], references[r]);
  }

  for (double alpha : opts.alphas) {
    for (double row_ratio : opts.row_ratios) {
      for (double window_ratio : opts.window_ratios) {
        SATTN_SPAN("sattn/tuner_config");
        SATTN_COUNTER_ADD("sattn.tuner_configs_evaluated", 1);
        TunerEntry entry;
        entry.cfg.alpha = alpha;
        entry.cfg.row_ratio = row_ratio;
        entry.cfg.window_ratio = window_ratio;

        double cost_sum = 0.0;
        for (std::size_t r = 0; r < profiling_requests.size(); ++r) {
          Matrix out;
          SamplePlan plan;
          sample_attention(profiling_requests[r], entry.cfg, out, &plan);
          const RecoveryStats rec = recovery_stats(out, references[r]);
          entry.worst_rel_l1 = std::max(entry.worst_rel_l1, rec.rel_l1);
          cost_sum += plan.density + plan.overhead_fraction;
        }
        entry.mean_cost = profiling_requests.empty()
                              ? 1.0
                              : cost_sum / static_cast<double>(profiling_requests.size());
        entry.feasible = entry.worst_rel_l1 <= opts.max_rel_l1;
        report.entries.push_back(entry);
      }
    }
  }

  // Cheapest feasible; fall back to the most accurate if nothing qualifies.
  double best_cost = std::numeric_limits<double>::infinity();
  double best_err = std::numeric_limits<double>::infinity();
  for (const TunerEntry& e : report.entries) {
    if (e.feasible && e.mean_cost < best_cost) {
      best_cost = e.mean_cost;
      report.best = e.cfg;
      report.found_feasible = true;
    }
    if (!report.found_feasible && e.worst_rel_l1 < best_err) {
      best_err = e.worst_rel_l1;
      report.best = e.cfg;
    }
  }
  return report;
}

}  // namespace sattn
