#include "sample_attention/layer_plan.h"

#include "attention/sparse_flash_attention.h"
#include "obs/accounting.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace sattn {

LayerPlan plan_layer(const ModelConfig& model, const ContentSpec& content, Index layer,
                     const LayerPlanOptions& opts) {
  SATTN_SPAN("sattn/layer_plan");
  LayerPlan plan;
  plan.head_plans.reserve(static_cast<std::size_t>(model.n_heads));
  const Index group = gqa_group_size(model);

  for (Index head = 0; head < model.n_heads; ++head) {
    const bool is_group_leader = !opts.share_within_kv_group || head % group == 0;
    if (is_group_leader) {
      const obs::AcctScope acct(layer, head);
      const AttentionInput in = generate_attention(model, content, layer, head);
      plan.head_plans.push_back(plan_sample_attention(in, opts.cfg));
      plan.mean_overhead += plan.head_plans.back().overhead_fraction;
      ++plan.planned_heads;
      obs::record_head_quality(layer, head, plan.head_plans.back().density,
                               plan.head_plans.back().filter.coverage);
      // Plan-merge metadata: the stripe columns and bands the merged mask
      // carries for this head.
      const SamplePlan& planned = plan.head_plans.back();
      obs::charge_stage("layer_plan", 0.0,
                        8.0 * static_cast<double>(planned.mask.stripe_columns().size() + 1));
    } else {
      // Reuse the group leader's selection; the window is identical by
      // construction and the leader's I_KV stands in for the group.
      SamplePlan shared = plan.head_plans[static_cast<std::size_t>(head - head % group)];
      shared.overhead_fraction = 0.0;  // amortized into the leader's stage-1
      plan.head_plans.push_back(std::move(shared));
    }
    plan.mean_density += plan.head_plans.back().density;
  }
  plan.mean_density /= static_cast<double>(model.n_heads);
  plan.mean_overhead /= static_cast<double>(model.n_heads);
  SATTN_COUNTER_ADD("sattn.planned_heads", plan.planned_heads);
  SATTN_COUNTER_ADD("sattn.shared_heads", model.n_heads - plan.planned_heads);
  return plan;
}

std::vector<Matrix> run_layer(const ModelConfig& model, const ContentSpec& content, Index layer,
                              const LayerPlan& plan) {
  SATTN_SPAN("sattn/layer_run");
  assert(static_cast<Index>(plan.head_plans.size()) == model.n_heads);
  std::vector<Matrix> outputs(static_cast<std::size_t>(model.n_heads));
  for (Index head = 0; head < model.n_heads; ++head) {
    const obs::AcctScope acct(layer, head);
    const AttentionInput in = generate_attention(model, content, layer, head);
    sparse_flash_attention(in, plan.head_plans[static_cast<std::size_t>(head)].mask,
                           outputs[static_cast<std::size_t>(head)]);
  }
  return outputs;
}

}  // namespace sattn
