// Register-blocked attention micro-kernels over the SIMD primitive layer.
//
// The tiled kernels (flash_attention, block_sparse) and the row-granular
// sparse kernels all reduce to the same two inner steps: score a run of
// keys against one or more query rows, then fold the run into each row's
// online-softmax state with a single rescale (Dao et al., 2022, Alg. 1).
// This header owns that machinery:
//
//   * OnlineSoftmaxRow — the single-row accumulator (moved here from
//     flash_attention.h; that header re-exports it, so existing includes
//     keep working).
//   * mk::KvView — a raw, non-owning view of one K/V stream (base pointers
//     + head_dim). The absorb paths take this instead of an AttentionInput,
//     so the same tile sweep serves a request's prefill matrices, a KV
//     cache's contiguous storage, or one sequence of a ragged batch
//     (src/runtime/batch.h) without materializing per-call tensors.
//   * absorb_key_run — single-row run absorb, the workhorse of the
//     row-granular sparse kernels.
//   * mk::QBlock / mk::absorb_key_tile — the register-blocked core: up to
//     mk::kQRows query rows advance through one K/V stream together, so
//     each K row is scored with one simd::dotn (K lanes loaded once for
//     all rows) and each V row accumulated with one simd::axpyn. Rows may
//     have ragged causal limits; the shared prefix is blocked and the
//     tails fall back to the single-row path, so masked (never-visited)
//     K/V entries are never read.
//   * mk::logits_rows — the blocked score path used by for_each_score_row
//     (Stage-1 sampling): up to kQRows sampled rows share one pass over K.
//
// All paths call simd::ops() — AVX2/FMA where the CPU supports it, the
// portable scalar table under SATTN_FORCE_SCALAR=1 or simd::ScopedForceScalar.
#pragma once

#include <cassert>
#include <limits>
#include <span>
#include <vector>

#include "core/simd.h"
#include "core/tensor.h"

namespace sattn {

// Online-softmax accumulator for one query row. Public so the sparse kernel
// and SampleAttention's fused Stage-1 share the exact same update rule. The
// normalizer `l` accumulates in double, matching the tiled kernels (see the
// long-row drift tests in tests/simd_kernel_test.cpp).
struct OnlineSoftmaxRow {
  std::vector<float> acc;  // unnormalized output accumulator, length d
  float m = -std::numeric_limits<float>::infinity();  // running max
  double l = 0.0;                                     // running normalizer

  explicit OnlineSoftmaxRow(Index d) : acc(static_cast<std::size_t>(d), 0.0f) {}

  // Absorb one (logit, value-row) pair.
  void absorb(float logit, std::span<const float> v_row);

  // Write normalized output; zero if nothing was absorbed.
  void finalize(std::span<float> out_row) const;
};

namespace mk {

// Non-owning view of one K/V stream. This is the seam that makes the
// micro-kernels request-agnostic — callers point it at an AttentionInput's
// matrices, at a paged KVCache's page table, or at any sequence of a ragged
// batch, and the same absorb sweep services all of them. Two layouts:
//
//   * flat  — row j of either stream starts at base + j*d (k/v set,
//     k_pages/v_pages null);
//   * paged — row j lives in page j >> page_shift at row j & page_mask
//     (runtime/kv_page.h): k_pages/v_pages are per-page row bases, so the
//     kernels read straight through a KVCache's page table with no copies
//     and — because every access goes through k_row/v_row — bit-identical
//     results to flat storage (pinned in tests/engine_test.cpp).
struct KvView {
  const float* k = nullptr;
  const float* v = nullptr;
  Index d = 0;
  const float* const* k_pages = nullptr;  // paged layout: per-page row bases
  const float* const* v_pages = nullptr;
  Index page_shift = 0;
  Index page_mask = 0;

  bool paged() const { return k_pages != nullptr; }

  const float* k_row(Index j) const {
    if (k_pages != nullptr) {
      return k_pages[j >> page_shift] + static_cast<std::size_t>(j & page_mask) * d;
    }
    return k + static_cast<std::size_t>(j * d);
  }
  const float* v_row(Index j) const {
    if (v_pages != nullptr) {
      return v_pages[j >> page_shift] + static_cast<std::size_t>(j & page_mask) * d;
    }
    return v + static_cast<std::size_t>(j * d);
  }

  // End of the contiguous row run containing j, clipped to hi: the whole
  // range for flat views, the end of j's page for paged ones. The hot
  // absorb loops iterate run-at-a-time — resolve k_row/v_row once per run,
  // then march the pointer by d — so the flat path keeps the seed's
  // branch-free per-key codegen and the paged path pays one layout branch
  // per page instead of per key.
  Index run_end(Index j, Index hi) const {
    if (k_pages == nullptr) return hi;
    const Index page_end = ((j >> page_shift) + 1) << page_shift;
    return page_end < hi ? page_end : hi;
  }

  static KvView of(const AttentionInput& in) { return {in.k.data(), in.v.data(), in.head_dim()}; }
};

}  // namespace mk

// Absorbs the key run [lo, hi) of `kv` into a row's online-softmax state
// with a single rescale for the whole run (tile-level update). `scale` is
// 1/sqrt(d); `logits` is caller-owned scratch. Shared by the row-run and
// block-sparse kernels.
void absorb_key_run(OnlineSoftmaxRow& st, const mk::KvView& kv, std::span<const float> qi,
                    float scale, Index lo, Index hi, std::vector<float>& logits);

namespace mk {

// Query rows processed per register block. Matches simd::kMaxRows: the
// AVX2 dotn/axpyn keep one pair of double accumulators per row in ymm
// registers, and four rows is the deepest block that still fits.
inline constexpr Index kQRows = simd::kMaxRows;

// A view over up to kQRows query rows' online-softmax state. The pointers
// alias caller-owned storage (flash_attention's per-tile m/l/acc arrays, or
// individual OnlineSoftmaxRow structs in block_sparse), so the blocked core
// composes with either layout without copying state.
struct QBlock {
  Index rows = 0;  // active rows, 1..kQRows
  Index d = 0;     // head dim
  const float* q[kQRows] = {};  // query rows
  float* m[kQRows] = {};        // running max per row
  double* l[kQRows] = {};       // running normalizer per row
  float* acc[kQRows] = {};      // unnormalized accumulator rows, length d
};

// Absorbs keys [lo, hi[r]) into each row r of the block. The shared prefix
// [lo, min_r hi[r]) is processed register-blocked — each K/V row is loaded
// once for all rows — with one rescale per row for the whole prefix; the
// ragged tails [min_r hi[r], hi[r]) run through the single-row path. Rows
// with hi[r] <= lo must not be placed in the block (their state would still
// be correct, but they would force an empty shared prefix).
// `logits` is caller-owned scratch, grown as needed.
void absorb_key_tile(const QBlock& b, const KvView& kv, float scale, Index lo,
                     const Index* hi, std::vector<float>& logits);

// Blocked score path: fills out[r][0..sk) with the causal logits row of
// query q_rows[r] (same semantics as logits_row in full_attention.h: the
// causal prefix holds scale * q·k, the masked tail is -inf), sharing each K
// row across all block rows whose causal limit reaches it. Rows need not be
// sorted; each out[r] must hold at least sk floats. rows is 1..kQRows.
void logits_rows(const AttentionInput& in, const Index* q_rows, Index rows, float* const* out);

}  // namespace mk
}  // namespace sattn
