#include "attention/score_utils.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "attention/full_attention.h"
#include "attention/microkernel.h"
#include "core/numerics.h"

namespace sattn {

void for_each_score_row(const AttentionInput& in, std::span<const Index> rows,
                        const std::function<void(Index, std::span<const float>)>& visit) {
  const Index sq = in.sq(), sk = in.sk();
  // Blocked score path: chunks of up to mk::kQRows sampled rows share one
  // pass over K (mk::logits_rows), then each row is softmaxed and visited
  // in the caller's original order.
  std::vector<float> buf(static_cast<std::size_t>(mk::kQRows) * static_cast<std::size_t>(sk));
  const auto n = static_cast<Index>(rows.size());
  for (Index c = 0; c < n; c += mk::kQRows) {
    const Index nr = std::min<Index>(mk::kQRows, n - c);
    Index q_rows[mk::kQRows];
    float* out[mk::kQRows];
    for (Index r = 0; r < nr; ++r) {
      const Index i = rows[static_cast<std::size_t>(c + r)];
      assert(i >= 0 && i < sq);
      q_rows[r] = i;
      out[r] = buf.data() + static_cast<std::size_t>(r) * static_cast<std::size_t>(sk);
    }
    mk::logits_rows(in, q_rows, nr, out);
    for (Index r = 0; r < nr; ++r) {
      std::span<float> row(out[r], static_cast<std::size_t>(sk));
      softmax_prefix_inplace(row, causal_limit(q_rows[r], sq, sk) + 1);
      visit(q_rows[r], row);
    }
  }
}

std::vector<float> column_score_sum(const AttentionInput& in, std::span<const Index> rows) {
  std::vector<double> acc(static_cast<std::size_t>(in.sk()), 0.0);
  for_each_score_row(in, rows, [&acc](Index, std::span<const float> p) {
    for (std::size_t j = 0; j < p.size(); ++j) acc[j] += p[j];
  });
  std::vector<float> out(acc.size());
  std::transform(acc.begin(), acc.end(), out.begin(),
                 [](double v) { return static_cast<float>(v); });
  return out;
}

std::vector<Index> stride_rows(Index sq, double row_ratio) {
  assert(sq > 0);
  row_ratio = std::clamp(row_ratio, 0.0, 1.0);
  const Index l = std::max<Index>(1, static_cast<Index>(std::llround(row_ratio * static_cast<double>(sq))));
  std::vector<Index> rows;
  rows.reserve(static_cast<std::size_t>(l));
  // Place samples at the centers of l equal strides so both early and late
  // queries are represented; always include the last row, whose causal
  // horizon covers every key.
  for (Index t = 0; t < l; ++t) {
    const Index i = std::min<Index>(sq - 1, (2 * t + 1) * sq / (2 * l));
    if (rows.empty() || rows.back() != i) rows.push_back(i);
  }
  if (rows.back() != sq - 1) rows.push_back(sq - 1);
  return rows;
}

std::vector<Index> all_rows(Index sq) {
  std::vector<Index> rows(static_cast<std::size_t>(sq));
  std::iota(rows.begin(), rows.end(), Index{0});
  return rows;
}

}  // namespace sattn
