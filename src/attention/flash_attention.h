// FlashAttention2-style exact attention with tiling and online softmax.
//
// This is the CPU analogue of the paper's FlashAttention2 baseline: the
// kernel walks KV tiles of TILE_K keys per query tile, maintaining a running
// row max m_i and normalizer l_i, and rescales the partial output when the
// max shifts (Dao et al., 2022, Alg. 1). The inner machinery — the
// OnlineSoftmaxRow state, the single-row run absorb, and the
// register-blocked multi-row tile absorb — lives in attention/microkernel.h
// (re-exported here) on top of the runtime-dispatched SIMD primitives of
// core/simd.h. The same machinery is reused by the sparse kernel in
// sparse_flash_attention.h, which simply visits fewer KV tiles.
#pragma once

#include <limits>
#include <span>
#include <vector>

#include "attention/attention_method.h"
#include "attention/microkernel.h"
#include "core/tensor.h"

namespace sattn {

struct FlashConfig {
  Index tile_q = 64;  // query rows per tile (outer parallel loop)
  Index tile_k = 64;  // keys per inner tile
};

void flash_attention(const AttentionInput& in, Matrix& out, const FlashConfig& cfg = {});

// The tiled sweep itself, decoupled from AttentionInput: exact attention of
// `rows` query rows starting at `q` (contiguous, row stride kv.d) against
// keys/values [0, k_hi) of `kv`. Row r attends keys [0, min(k_hi,
// r + causal_off + 1)) — for a full square input causal_off is 0; for a
// prefill chunk whose queries start at global row q_lo it is q_lo plus the
// input's key/query offset. Normalized outputs land at out + r*out_stride.
// Single-threaded by design: flash_attention parallelizes over q-tiles, the
// ragged batch sweep (runtime/batch.h) over sequences. Returns the number
// of score evaluations (for acct.* charging by the caller).
double flash_rows(const float* q, Index rows, const mk::KvView& kv, Index k_hi, Index causal_off,
                  float* out, Index out_stride, const FlashConfig& cfg = {});

class FlashAttention final : public AttentionMethod {
 public:
  explicit FlashAttention(FlashConfig cfg = {}) : cfg_(cfg) {}
  std::string name() const override { return "FlashAttention2"; }

 protected:
  AttentionResult run_impl(const AttentionInput& in) const override;

 private:
  FlashConfig cfg_;
};

}  // namespace sattn
