// FlashAttention2-style exact attention with tiling and online softmax.
//
// This is the CPU analogue of the paper's FlashAttention2 baseline: the
// kernel walks KV tiles of TILE_K keys per query tile, maintaining a running
// row max m_i and normalizer l_i, and rescales the partial output when the
// max shifts (Dao et al., 2022, Alg. 1). The same inner machinery is reused
// by the sparse kernel in sparse_flash_attention.h, which simply visits
// fewer KV tiles.
#pragma once

#include <limits>
#include <span>
#include <vector>

#include "attention/attention_method.h"
#include "core/tensor.h"

namespace sattn {

struct FlashConfig {
  Index tile_q = 64;  // query rows per tile (outer parallel loop)
  Index tile_k = 64;  // keys per inner tile
};

void flash_attention(const AttentionInput& in, Matrix& out, const FlashConfig& cfg = {});

class FlashAttention final : public AttentionMethod {
 public:
  explicit FlashAttention(FlashConfig cfg = {}) : cfg_(cfg) {}
  std::string name() const override { return "FlashAttention2"; }

 protected:
  AttentionResult run_impl(const AttentionInput& in) const override;

 private:
  FlashConfig cfg_;
};

// Absorbs the key run [lo, hi) of `in` into a row's online-softmax state
// with a single rescale for the whole run (tile-level update). `scale` is
// 1/sqrt(d); `logits` is caller-owned scratch. Shared by the row-run and
// block-sparse kernels.
struct OnlineSoftmaxRow;
void absorb_key_run(OnlineSoftmaxRow& st, const AttentionInput& in, std::span<const float> qi,
                    float scale, Index lo, Index hi, std::vector<float>& logits);

// Online-softmax accumulator for one query row. Public so the sparse kernel
// and SampleAttention's fused Stage-1 share the exact same update rule.
struct OnlineSoftmaxRow {
  std::vector<float> acc;  // unnormalized output accumulator, length d
  float m = -std::numeric_limits<float>::infinity();  // running max
  double l = 0.0;                                     // running normalizer

  explicit OnlineSoftmaxRow(Index d) : acc(static_cast<std::size_t>(d), 0.0f) {}

  // Absorb one (logit, value-row) pair.
  void absorb(float logit, std::span<const float> v_row);

  // Write normalized output; zero if nothing was absorbed.
  void finalize(std::span<float> out_row) const;
};

}  // namespace sattn
