#include "attention/sparse_flash_attention.h"

#include <algorithm>
#include <atomic>
#include <cmath>

#include "attention/microkernel.h"
#include "core/thread_pool.h"
#include "obs/accounting.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace sattn {
namespace {

bool runs_contain(const std::vector<ColumnRun>& runs, Index j) {
  for (const ColumnRun& r : runs) {
    if (j < r.lo) return false;
    if (j < r.hi) return true;
  }
  return false;
}

}  // namespace

void sparse_flash_attention(const AttentionInput& in, const StructuredMask& mask, Matrix& out) {
  sparse_flash_attention(in.q.data(), in.sq(), mk::KvView::of(in), in.sk(), mask, out);
}

void sparse_flash_attention(const float* q, Index sq, const mk::KvView& kv, Index sk,
                            const StructuredMask& mask, Matrix& out) {
  const Index d = kv.d;
  assert(mask.sq() == sq && mask.sk() == sk);
  SATTN_SPAN("kernel/sparse_flash");
  SATTN_COUNTER_ADD("sattn.mask_stripe_columns", mask.stripe_columns().size());
  out.resize(sq, d);
  // Measured work: actual absorbed run lengths and block cells, plus the
  // mask metadata the kernel walks (8 bytes per band run / stripe run /
  // block descriptor read per row).
  std::atomic<double> evals_total{0.0};
  std::atomic<double> meta_reads{0.0};
  const float scale = 1.0f / std::sqrt(static_cast<float>(d));
  const auto& stripe_runs = mask.stripe_runs();
  const auto& blocks = mask.blocks();
  const auto& stripe_cols = mask.stripe_columns();

  parallel_for(sq, [&](Index i) {
    const Index lim = causal_limit(i, sq, sk);
    auto orow = out.row(i);
    if (lim < 0) {
      std::fill(orow.begin(), orow.end(), 0.0f);
      return;
    }
    OnlineSoftmaxRow st(d);
    std::vector<float> logits;
    const std::span<const float> qi{q + static_cast<std::size_t>(i) * static_cast<std::size_t>(d),
                                    static_cast<std::size_t>(d)};
    double row_evals = 0.0;

    // 1. Diagonal bands (the local window plus any extra bands), as
    //    disjoint runs.
    const std::vector<ColumnRun> bands = mask.band_runs_for_row(i);
    for (const ColumnRun& run : bands) {
      absorb_key_run(st, kv, qi, scale, run.lo, run.hi, logits);
      row_evals += static_cast<double>(std::max<Index>(0, run.hi - run.lo));
    }

    // 2. Stripe runs, minus the parts already covered by a band.
    for (const ColumnRun& run : stripe_runs) {
      Index lo = run.lo;
      const Index hi = std::min(run.hi, lim + 1);
      for (const ColumnRun& band : bands) {
        if (band.hi <= lo) continue;
        if (band.lo >= hi) break;
        if (band.lo > lo) {
          const Index seg_hi = std::min(band.lo, hi);
          absorb_key_run(st, kv, qi, scale, lo, seg_hi, logits);
          row_evals += static_cast<double>(std::max<Index>(0, seg_hi - lo));
        }
        lo = std::max(lo, band.hi);
        if (lo >= hi) break;
      }
      if (lo < hi) {
        absorb_key_run(st, kv, qi, scale, lo, hi, logits);
        row_evals += static_cast<double>(hi - lo);
      }
    }

    // 3. Extra blocks (BigBird): cells not already covered.
    for (const Block& b : blocks) {
      if (i < b.q_lo || i >= b.q_hi) continue;
      const Index hi = std::min(b.k_hi, lim + 1);
      for (Index j = b.k_lo; j < hi; ++j) {
        if (runs_contain(bands, j)) continue;
        if (std::binary_search(stripe_cols.begin(), stripe_cols.end(), j)) continue;
        const std::span<const float> kj{kv.k_row(j), static_cast<std::size_t>(d)};
        const std::span<const float> vj{kv.v_row(j), static_cast<std::size_t>(d)};
        const float s = scale * dot(qi, kj);
        st.absorb(s, vj);
        row_evals += 1.0;
      }
    }
    st.finalize(orow);
    evals_total.fetch_add(row_evals, std::memory_order_relaxed);
    meta_reads.fetch_add(
        static_cast<double>(bands.size() + stripe_runs.size() + blocks.size()),
        std::memory_order_relaxed);
  });
  const double evals = evals_total.load();
  SATTN_HISTOGRAM("kernel.sparse_flash.score_evals", evals);
  obs::charge_attention_kernel("sparse_flash", sq, sk, d, evals,
                               /*score_bytes=*/0.0,
                               /*meta_bytes=*/8.0 * meta_reads.load());
}

double sparse_flash_work(const StructuredMask& mask) {
  // The kernel evaluates exactly the masked-in causal cells (stripe runs are
  // clipped against the bands and blocks against both), so work equals
  // density * causal_pairs.
  return mask.density() * causal_pairs(mask.sq(), mask.sk());
}

AttentionResult MaskedAttention::run_impl(const AttentionInput& in) const {
  const StructuredMask mask = builder_(in);
  AttentionResult r;
  sparse_flash_attention(in, mask, r.out);
  r.density = mask.density();
  return r;
}

}  // namespace sattn
