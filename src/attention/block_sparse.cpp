#include "attention/block_sparse.h"

#include <algorithm>
#include <atomic>
#include <cmath>

#include "attention/flash_attention.h"
#include "core/thread_pool.h"
#include "obs/accounting.h"
#include "obs/trace.h"

namespace sattn {

BlockSparseLayout BlockSparseLayout::from_mask(const StructuredMask& mask, Index block) {
  assert(block > 0);
  BlockSparseLayout layout;
  layout.sq_ = mask.sq();
  layout.sk_ = mask.sk();
  layout.block_ = block;
  layout.n_qblocks_ = (layout.sq_ + block - 1) / block;
  layout.n_kblocks_ = (layout.sk_ + block - 1) / block;
  std::vector<std::vector<bool>> active(
      static_cast<std::size_t>(layout.n_qblocks_),
      std::vector<bool>(static_cast<std::size_t>(layout.n_kblocks_), false));

  const auto mark_range = [&](Index qb, Index lo, Index hi) {
    for (Index kb = lo / block; kb * block < hi; ++kb) {
      active[static_cast<std::size_t>(qb)][static_cast<std::size_t>(kb)] = true;
    }
  };

  for (Index i = 0; i < layout.sq_; ++i) {
    const Index lim = causal_limit(i, layout.sq_, layout.sk_);
    if (lim < 0) continue;
    const Index qb = i / block;
    for (const ColumnRun& run : mask.band_runs_for_row(i)) mark_range(qb, run.lo, run.hi);
    for (const ColumnRun& run : mask.stripe_runs()) {
      const Index hi = std::min(run.hi, lim + 1);
      if (hi > run.lo) mark_range(qb, run.lo, hi);
    }
    for (const Block& b : mask.blocks()) {
      if (i < b.q_lo || i >= b.q_hi) continue;
      const Index hi = std::min(b.k_hi, lim + 1);
      if (hi > b.k_lo) mark_range(qb, b.k_lo, hi);
    }
  }

  layout.active_.resize(static_cast<std::size_t>(layout.n_qblocks_));
  for (Index qb = 0; qb < layout.n_qblocks_; ++qb) {
    for (Index kb = 0; kb < layout.n_kblocks_; ++kb) {
      if (active[static_cast<std::size_t>(qb)][static_cast<std::size_t>(kb)]) {
        layout.active_[static_cast<std::size_t>(qb)].push_back(kb);
      }
    }
  }
  return layout;
}

double BlockSparseLayout::density() const {
  const double denom = causal_pairs(sq_, sk_);
  if (denom <= 0.0) return 0.0;
  double kept = 0.0;
  for (Index qb = 0; qb < n_qblocks_; ++qb) {
    const Index q_lo = qb * block_;
    const Index q_hi = std::min(sq_, q_lo + block_);
    for (Index kb : active_[static_cast<std::size_t>(qb)]) {
      const Index k_lo = kb * block_;
      const Index k_hi = std::min(sk_, k_lo + block_);
      // Causal cells of this tile.
      for (Index i = q_lo; i < q_hi; ++i) {
        const Index lim = causal_limit(i, sq_, sk_);
        const Index hi = std::min(k_hi, lim + 1);
        if (hi > k_lo) kept += static_cast<double>(hi - k_lo);
      }
    }
  }
  return kept / denom;
}

double BlockSparseLayout::rounding_overhead(const StructuredMask& mask) const {
  return density() - mask.density();
}

Index BlockSparseLayout::active_tiles() const {
  Index total = 0;
  for (const auto& row : active_) total += static_cast<Index>(row.size());
  return total;
}

void block_sparse_attention(const AttentionInput& in, const BlockSparseLayout& layout,
                            Matrix& out) {
  block_sparse_attention(in.q.data(), in.sq(), mk::KvView::of(in), in.sk(), layout, out);
}

void block_sparse_attention(const float* q, Index sq, const mk::KvView& kv, Index sk,
                            const BlockSparseLayout& layout, Matrix& out) {
  const Index d = kv.d;
  assert(layout.sq() == sq && layout.sk() == sk);
  SATTN_SPAN("kernel/block_sparse");
  SATTN_COUNTER_ADD("attn.block_sparse_tiles", layout.active_tiles());
  out.resize(sq, d);
  const float scale = 1.0f / std::sqrt(static_cast<float>(d));
  const Index block = layout.block();
  std::atomic<double> evals_total{0.0};

  parallel_for(layout.n_qblocks(), [&](Index qb) {
    const Index q_lo = qb * block;
    const Index q_hi = std::min(sq, q_lo + block);
    const Index rows = q_hi - q_lo;
    std::vector<OnlineSoftmaxRow> state;
    state.reserve(static_cast<std::size_t>(rows));
    for (Index r = 0; r < rows; ++r) state.emplace_back(d);
    std::vector<float> logits;
    double tile_evals = 0.0;

    for (Index kb : layout.active_kblocks(qb)) {
      const Index k_lo = kb * block;
      const Index k_hi = std::min(sk, k_lo + block);
      // Register-blocked: groups of mk::kQRows rows of this q-block share
      // each K/V row of the tile (attention/microkernel.h).
      for (Index r0 = 0; r0 < rows; r0 += mk::kQRows) {
        mk::QBlock b;
        b.d = d;
        Index his[mk::kQRows];
        const Index r1 = std::min(rows, r0 + mk::kQRows);
        for (Index r = r0; r < r1; ++r) {
          const Index i = q_lo + r;
          const Index lim = causal_limit(i, sq, sk);
          const Index hi = std::min(k_hi, lim + 1);
          if (hi <= k_lo) continue;
          OnlineSoftmaxRow& st = state[static_cast<std::size_t>(r)];
          b.q[b.rows] = q + static_cast<std::size_t>(i) * static_cast<std::size_t>(d);
          b.m[b.rows] = &st.m;
          b.l[b.rows] = &st.l;
          b.acc[b.rows] = st.acc.data();
          his[b.rows] = hi;
          ++b.rows;
          tile_evals += static_cast<double>(hi - k_lo);
        }
        if (b.rows > 0) mk::absorb_key_tile(b, kv, scale, k_lo, his, logits);
      }
    }
    for (Index r = 0; r < rows; ++r) {
      state[static_cast<std::size_t>(r)].finalize(out.row(q_lo + r));
    }
    evals_total.fetch_add(tile_evals, std::memory_order_relaxed);
  });
  // Metadata: 8 bytes per active (qb, kb) tile descriptor.
  obs::charge_attention_kernel("block_sparse", sq, sk, d, evals_total.load(),
                               /*score_bytes=*/0.0,
                               /*meta_bytes=*/8.0 * static_cast<double>(layout.active_tiles()));
}

}  // namespace sattn
