#include "attention/microkernel.h"

#include <algorithm>
#include <cmath>

#include "attention/attention_method.h"

namespace sattn {
namespace {

// Single-row run absorb over raw state: two passes (score + max, then
// weight + accumulate) with one rescale for the whole run. The tiled and
// row-granular kernels both bottom out here for ragged work.
void absorb_run_row(const simd::Ops& ops, const float* qi, float& m, double& l, float* acc,
                    Index d, const mk::KvView& kv, float scale, Index lo, Index hi,
                    std::vector<float>& logits) {
  if (hi <= lo) return;
  const auto n = static_cast<std::size_t>(hi - lo);
  if (logits.size() < n) logits.resize(n);
  float run_max = -std::numeric_limits<float>::infinity();
  for (Index j = lo; j < hi;) {
    const Index re = kv.run_end(j, hi);
    const float* krow = kv.k_row(j);
    for (; j < re; ++j, krow += d) {
      const float s = scale * ops.dot(qi, krow, d);
      logits[static_cast<std::size_t>(j - lo)] = s;
      run_max = std::max(run_max, s);
    }
  }
  if (run_max > m) {
    const float rescale = std::exp(m - run_max);
    ops.scale_inplace(acc, d, rescale);
    l *= rescale;
    m = run_max;
  }
  for (Index j = lo; j < hi;) {
    const Index re = kv.run_end(j, hi);
    const float* vrow = kv.v_row(j);
    for (; j < re; ++j, vrow += d) {
      const float w = std::exp(logits[static_cast<std::size_t>(j - lo)] - m);
      l += w;
      ops.axpy(w, vrow, acc, d);
    }
  }
}

}  // namespace

void OnlineSoftmaxRow::absorb(float logit, std::span<const float> v_row) {
  assert(v_row.size() == acc.size());
  const simd::Ops& ops = simd::ops();
  const auto d = static_cast<Index>(acc.size());
  if (logit > m) {
    const float rescale = std::exp(m - logit);
    ops.scale_inplace(acc.data(), d, rescale);
    l *= rescale;
    m = logit;
  }
  const float w = std::exp(logit - m);
  l += w;
  ops.axpy(w, v_row.data(), acc.data(), d);
}

void OnlineSoftmaxRow::finalize(std::span<float> out_row) const {
  assert(out_row.size() == acc.size());
  if (l <= 0.0) {
    std::fill(out_row.begin(), out_row.end(), 0.0f);
    return;
  }
  const auto inv = static_cast<float>(1.0 / l);
  for (std::size_t t = 0; t < acc.size(); ++t) out_row[t] = acc[t] * inv;
}

void absorb_key_run(OnlineSoftmaxRow& st, const mk::KvView& kv, std::span<const float> qi,
                    float scale, Index lo, Index hi, std::vector<float>& logits) {
  absorb_run_row(simd::ops(), qi.data(), st.m, st.l, st.acc.data(),
                 static_cast<Index>(st.acc.size()), kv, scale, lo, hi, logits);
}

namespace mk {

void absorb_key_tile(const QBlock& b, const KvView& kv, float scale, Index lo,
                     const Index* hi, std::vector<float>& logits) {
  assert(b.rows >= 1 && b.rows <= kQRows);
  const simd::Ops& ops = simd::ops();
  const Index rows = b.rows, d = b.d;

  Index hi_min = hi[0];
  for (Index r = 1; r < rows; ++r) hi_min = std::min(hi_min, hi[r]);

  // Shared prefix [lo, hi_min): every row sees every key, so K/V rows are
  // loaded once per block via dotn/axpyn.
  const Index shared = std::max<Index>(0, hi_min - lo);
  if (shared > 0) {
    const auto need = static_cast<std::size_t>(shared * rows);
    if (logits.size() < need) logits.resize(need);
    float run_max[kQRows];
    for (Index r = 0; r < rows; ++r) run_max[r] = -std::numeric_limits<float>::infinity();
    float s[kQRows];
    for (Index j = lo; j < hi_min;) {
      const Index re = kv.run_end(j, hi_min);
      const float* krow = kv.k_row(j);
      for (; j < re; ++j, krow += d) {
        ops.dotn(b.q, rows, krow, d, s);
        const auto col = static_cast<std::size_t>(j - lo);
        for (Index r = 0; r < rows; ++r) {
          const float v = scale * s[r];
          logits[static_cast<std::size_t>(r) * static_cast<std::size_t>(shared) + col] = v;
          run_max[r] = std::max(run_max[r], v);
        }
      }
    }
    for (Index r = 0; r < rows; ++r) {
      if (run_max[r] > *b.m[r]) {
        const float rescale = std::exp(*b.m[r] - run_max[r]);
        ops.scale_inplace(b.acc[r], d, rescale);
        *b.l[r] *= rescale;
        *b.m[r] = run_max[r];
      }
    }
    float w[kQRows];
    for (Index j = lo; j < hi_min;) {
      const Index re = kv.run_end(j, hi_min);
      const float* vrow = kv.v_row(j);
      for (; j < re; ++j, vrow += d) {
        const auto col = static_cast<std::size_t>(j - lo);
        for (Index r = 0; r < rows; ++r) {
          w[r] = std::exp(
              logits[static_cast<std::size_t>(r) * static_cast<std::size_t>(shared) + col] -
              *b.m[r]);
          *b.l[r] += w[r];
        }
        ops.axpyn(w, rows, vrow, b.acc, d);
      }
    }
  }

  // Ragged tails: rows whose causal limit extends past the shared prefix
  // finish through the single-row path (one extra rescale per tail run).
  const Index tail_lo = std::max(lo, hi_min);
  for (Index r = 0; r < rows; ++r) {
    if (hi[r] > tail_lo) {
      absorb_run_row(ops, b.q[r], *b.m[r], *b.l[r], b.acc[r], d, kv, scale, tail_lo, hi[r],
                     logits);
    }
  }
}

void logits_rows(const AttentionInput& in, const Index* q_rows, Index rows, float* const* out) {
  assert(rows >= 1 && rows <= kQRows);
  const simd::Ops& ops = simd::ops();
  const Index sq = in.sq(), sk = in.sk(), d = in.head_dim();
  const float scale = 1.0f / std::sqrt(static_cast<float>(d));

  // Order rows by ascending causal limit so key j is scored against exactly
  // the suffix of rows whose limit reaches it: early keys are shared by the
  // whole block, late keys by fewer rows.
  Index ord[kQRows];
  for (Index r = 0; r < rows; ++r) ord[r] = r;
  for (Index r = 1; r < rows; ++r) {  // insertion sort over <= kQRows entries
    const Index o = ord[r];
    Index t = r;
    while (t > 0 && q_rows[ord[t - 1]] > q_rows[o]) {
      ord[t] = ord[t - 1];
      --t;
    }
    ord[t] = o;
  }

  Index j = 0;
  for (Index g = 0; g < rows; ++g) {
    const Index lim = causal_limit(q_rows[ord[g]], sq, sk);
    const Index nact = rows - g;
    const float* qp[kQRows];
    for (Index t = 0; t < nact; ++t) {
      qp[t] = in.q.row(q_rows[ord[g + t]]).data();
    }
    float s[kQRows];
    for (; j <= lim; ++j) {
      ops.dotn(qp, nact, in.k.row(j).data(), d, s);
      for (Index t = 0; t < nact; ++t) {
        out[ord[g + t]][j] = scale * s[t];
      }
    }
  }
  for (Index r = 0; r < rows; ++r) {
    const Index lim = causal_limit(q_rows[r], sq, sk);
    for (Index t = std::max<Index>(0, lim + 1); t < sk; ++t) {
      out[r][t] = -std::numeric_limits<float>::infinity();
    }
  }
}

}  // namespace mk
}  // namespace sattn
