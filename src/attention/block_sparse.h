// Block-granular sparse attention — the layout the paper's GPU kernel
// actually executes (Section 4.3: "an efficient adaptive structured sparse
// attention kernel by modifying FlashAttention").
//
// GPU kernels cannot skip individual cells; they skip whole Bq x Bk tiles.
// BlockSparseLayout rounds a StructuredMask UP to block granularity: a tile
// is active iff any of its cells is masked-in. The block kernel then visits
// only active tiles with the same online-softmax update as the dense flash
// kernel. Rounding up preserves (is a superset of) the mask's coverage, so
// CRA can only improve; the cost is the rounding overhead measured by
// `rounding_overhead()` — an explicit ablation between the row-run kernel
// (sparse_flash_attention) and hardware-shaped block execution.
#pragma once

#include <vector>

#include "attention/attention_method.h"
#include "attention/masks.h"
#include "attention/microkernel.h"

namespace sattn {

class BlockSparseLayout {
 public:
  // Builds the active-tile set from a structured mask. block must be > 0.
  static BlockSparseLayout from_mask(const StructuredMask& mask, Index block = 64);

  Index sq() const { return sq_; }
  Index sk() const { return sk_; }
  Index block() const { return block_; }
  Index n_qblocks() const { return n_qblocks_; }
  Index n_kblocks() const { return n_kblocks_; }

  // Active key-block indices (ascending) for a query block.
  const std::vector<Index>& active_kblocks(Index qb) const {
    assert(qb >= 0 && qb < n_qblocks_);
    return active_[static_cast<std::size_t>(qb)];
  }

  // Fraction of causal cells covered by active tiles (>= mask density).
  double density() const;

  // Cells added by block rounding, as a fraction of causal cells:
  // density() - exact mask density.
  double rounding_overhead(const StructuredMask& mask) const;

  // Total number of active tiles.
  Index active_tiles() const;

 private:
  Index sq_ = 0, sk_ = 0, block_ = 64;
  Index n_qblocks_ = 0, n_kblocks_ = 0;
  std::vector<std::vector<Index>> active_;  // per query block
};

// Runs attention over exactly the active tiles (causally clipped). The
// softmax of each row covers every causal cell inside an active tile, i.e.
// the block-rounded superset of the original mask.
void block_sparse_attention(const AttentionInput& in, const BlockSparseLayout& layout,
                            Matrix& out);

// View form: q is sq contiguous rows of kv.d floats, keys/values come from
// the (flat or paged) view, so the block kernel can execute straight out of
// a KVCache's page table. The tensor overload forwards here with
// mk::KvView::of(in) — bit-identical by construction.
void block_sparse_attention(const float* q, Index sq, const mk::KvView& kv, Index sk,
                            const BlockSparseLayout& layout, Matrix& out);

}  // namespace sattn
