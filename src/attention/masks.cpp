#include "attention/masks.h"

#include <algorithm>
#include <cmath>

namespace sattn {
namespace {

// Sorts runs by lo and merges overlapping/adjacent ones.
std::vector<ColumnRun> normalize_runs(std::vector<ColumnRun> runs) {
  std::erase_if(runs, [](const ColumnRun& r) { return r.hi <= r.lo; });
  std::sort(runs.begin(), runs.end(),
            [](const ColumnRun& a, const ColumnRun& b) { return a.lo < b.lo; });
  std::vector<ColumnRun> out;
  for (const ColumnRun& r : runs) {
    if (!out.empty() && r.lo <= out.back().hi) {
      out.back().hi = std::max(out.back().hi, r.hi);
    } else {
      out.push_back(r);
    }
  }
  return out;
}

bool runs_contain(const std::vector<ColumnRun>& runs, Index j) {
  // Few runs per row in practice; linear scan with early exit.
  for (const ColumnRun& r : runs) {
    if (j < r.lo) return false;
    if (j < r.hi) return true;
  }
  return false;
}

}  // namespace

void StructuredMask::set_stripe_columns(std::vector<Index> cols) {
  std::sort(cols.begin(), cols.end());
  cols.erase(std::unique(cols.begin(), cols.end()), cols.end());
  std::erase_if(cols, [this](Index c) { return c < 0 || c >= sk_; });
  stripe_cols_ = std::move(cols);
  stripe_runs_.clear();
  for (Index c : stripe_cols_) {
    if (!stripe_runs_.empty() && stripe_runs_.back().hi == c) {
      ++stripe_runs_.back().hi;
    } else {
      stripe_runs_.push_back({c, c + 1});
    }
  }
}

void StructuredMask::add_block(Block b) {
  b.q_lo = std::clamp<Index>(b.q_lo, 0, sq_);
  b.q_hi = std::clamp<Index>(b.q_hi, 0, sq_);
  b.k_lo = std::clamp<Index>(b.k_lo, 0, sk_);
  b.k_hi = std::clamp<Index>(b.k_hi, 0, sk_);
  if (b.q_lo < b.q_hi && b.k_lo < b.k_hi) blocks_.push_back(b);
}

void StructuredMask::add_diagonal_band(DiagonalBand band) {
  if (band.width <= 0 || band.offset < 0) return;
  bands_.push_back(band);
  // Merge bands whose offset ranges [offset, offset + width) overlap.
  std::sort(bands_.begin(), bands_.end(),
            [](const DiagonalBand& a, const DiagonalBand& b) { return a.offset < b.offset; });
  std::vector<DiagonalBand> merged;
  for (const DiagonalBand& b : bands_) {
    if (!merged.empty() && b.offset <= merged.back().offset + merged.back().width) {
      const Index hi = std::max(merged.back().offset + merged.back().width, b.offset + b.width);
      merged.back().width = hi - merged.back().offset;
    } else {
      merged.push_back(b);
    }
  }
  bands_ = std::move(merged);
}

std::vector<ColumnRun> StructuredMask::band_runs_for_row(Index i) const {
  const Index lim = causal_limit(i, sq_, sk_);
  std::vector<ColumnRun> runs;
  if (lim < 0) return runs;
  if (window_ > 0) {
    runs.push_back({std::max<Index>(0, lim - window_ + 1), lim + 1});
  }
  for (const DiagonalBand& b : bands_) {
    const Index hi = std::min(lim + 1, lim - b.offset + 1);
    const Index lo = std::max<Index>(0, lim - b.offset - b.width + 1);
    if (hi > lo) runs.push_back({lo, hi});
  }
  return normalize_runs(std::move(runs));
}

bool StructuredMask::contains(Index i, Index j) const {
  if (i < 0 || i >= sq_ || j < 0 || j >= sk_) return false;
  const Index lim = causal_limit(i, sq_, sk_);
  if (j > lim) return false;
  if (runs_contain(band_runs_for_row(i), j)) return true;
  if (std::binary_search(stripe_cols_.begin(), stripe_cols_.end(), j)) return true;
  for (const Block& b : blocks_) {
    if (i >= b.q_lo && i < b.q_hi && j >= b.k_lo && j < b.k_hi) return true;
  }
  return false;
}

double StructuredMask::density() const {
  const double denom = causal_pairs(sq_, sk_);
  if (denom <= 0.0) return 0.0;
  double kept = 0.0;
  for (Index i = 0; i < sq_; ++i) {
    const Index lim = causal_limit(i, sq_, sk_);
    if (lim < 0) continue;
    const std::vector<ColumnRun> bands = band_runs_for_row(i);
    Index row = 0;
    for (const ColumnRun& r : bands) row += r.width();
    // Stripes not already inside a band.
    for (const ColumnRun& run : stripe_runs_) {
      const Index hi = std::min(run.hi, lim + 1);
      for (Index j = run.lo; j < hi; ++j) {
        if (!runs_contain(bands, j)) ++row;
      }
    }
    // Blocks: cells not covered by bands or stripes.
    for (const Block& b : blocks_) {
      if (i < b.q_lo || i >= b.q_hi) continue;
      const Index hi = std::min(b.k_hi, lim + 1);
      for (Index j = b.k_lo; j < hi; ++j) {
        if (runs_contain(bands, j)) continue;
        if (std::binary_search(stripe_cols_.begin(), stripe_cols_.end(), j)) continue;
        ++row;
      }
    }
    kept += static_cast<double>(row);
  }
  return kept / denom;
}

Matrix StructuredMask::to_dense() const {
  Matrix m(sq_, sk_);
  for (Index i = 0; i < sq_; ++i)
    for (Index j = 0; j < sk_; ++j) m(i, j) = contains(i, j) ? 1.0f : 0.0f;
  return m;
}

Index window_width_from_ratio(Index sk, double window_ratio) {
  const auto w = static_cast<Index>(std::ceil(window_ratio * static_cast<double>(sk)));
  return std::clamp<Index>(w, 1, sk);
}

StructuredMask make_window_mask(Index sq, Index sk, double window_ratio) {
  StructuredMask m(sq, sk);
  m.set_window(window_width_from_ratio(sk, window_ratio));
  return m;
}

StructuredMask make_streaming_mask(Index sq, Index sk, Index sinks, Index window) {
  StructuredMask m(sq, sk);
  m.set_window(std::clamp<Index>(window, 1, sk));
  std::vector<Index> cols;
  for (Index c = 0; c < std::min(sinks, sk); ++c) cols.push_back(c);
  m.set_stripe_columns(std::move(cols));
  return m;
}

}  // namespace sattn
