#include "attention/attention_method.h"

#include "obs/trace.h"

namespace sattn {

AttentionResult AttentionMethod::run(const AttentionInput& in) const {
  if (!obs::enabled()) return run_impl(in);

  obs::ScopedSpan span("method/" + name());
  AttentionResult r = run_impl(in);

  // Shared accounting: every method reports the causal score entries it
  // evaluated (final pass + planning overhead), so Table-2 comparisons get
  // uniform work counters for free.
  const double pairs = causal_pairs(in.sq(), in.sk());
  SATTN_COUNTER_ADD("attn.score_evals", r.density * pairs);
  SATTN_COUNTER_ADD("attn.overhead_evals", r.overhead_density * pairs);
  return r;
}

}  // namespace sattn
