#include "attention/attention_method.h"

#include "obs/metrics.h"
#include "obs/trace.h"

namespace sattn {

AttentionResult AttentionMethod::run(const AttentionInput& in) const {
  if (!obs::enabled()) return run_impl(in);

  const std::string method = name();
  obs::ScopedSpan span("method/" + method);
  const double t0_us = obs::Collector::global().now_us();
  AttentionResult r = run_impl(in);
  const double elapsed_us = obs::Collector::global().now_us() - t0_us;

  // Shared accounting: every method reports the causal score entries it
  // evaluated (final pass + planning overhead), so Table-2 comparisons get
  // uniform work counters for free. The histograms feed the run report's
  // per-method latency/density distributions (io/run_report.h).
  const double pairs = causal_pairs(in.sq(), in.sk());
  SATTN_COUNTER_ADD("attn.score_evals", r.density * pairs);
  SATTN_COUNTER_ADD("attn.overhead_evals", r.overhead_density * pairs);
  SATTN_HISTOGRAM("method.latency_us." + method, elapsed_us);
  SATTN_HISTOGRAM("method.density." + method, r.density);
  return r;
}

}  // namespace sattn
