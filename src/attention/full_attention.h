// Reference causal attention: O = softmax(Q K^T / sqrt(d)) V, Eq. (1).
//
// This is the gold baseline ("Full Attention" in Table 2) and the numeric
// reference every kernel is tested against. It is written for clarity, with
// double accumulation in the softmax normalizer, and O(Sq * Sk) time with
// O(Sk) scratch (one score row at a time) so it stays usable at the longest
// sequence lengths the tests exercise.
#pragma once

#include "attention/attention_method.h"
#include "core/tensor.h"

namespace sattn {

// Computes causal attention output into `out` (resized to [Sq x d]).
void full_attention(const AttentionInput& in, Matrix& out);

// Full (row-softmaxed, causal) attention score matrix P in [0,1]^{Sq x Sk}.
// Quadratic memory — only call at test/analysis scales.
Matrix full_attention_scores(const AttentionInput& in);

// Unnormalized causal logits row for query i: q_i . k_j / sqrt(d) for
// j <= causal_limit(i); entries beyond the limit are set to -inf.
void logits_row(const AttentionInput& in, Index i, std::span<float> row);

class FullAttention final : public AttentionMethod {
 public:
  std::string name() const override { return "FullAttention"; }

 protected:
  AttentionResult run_impl(const AttentionInput& in) const override;
};

}  // namespace sattn
