#include "attention/full_attention.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <limits>
#include <vector>

#include "attention/microkernel.h"
#include "core/numerics.h"
#include "core/thread_pool.h"
#include "obs/accounting.h"
#include "obs/trace.h"

namespace sattn {

void logits_row(const AttentionInput& in, Index i, std::span<float> row) {
  const Index sk = in.sk();
  assert(row.size() == static_cast<std::size_t>(sk));
  const float scale = 1.0f / std::sqrt(static_cast<float>(in.head_dim()));
  const Index lim = causal_limit(i, in.sq(), sk);
  const auto qi = in.q.row(i);
  for (Index j = 0; j <= lim; ++j) row[static_cast<std::size_t>(j)] = scale * dot(qi, in.k.row(j));
  for (Index j = lim + 1; j < sk; ++j)
    row[static_cast<std::size_t>(j)] = -std::numeric_limits<float>::infinity();
}

void full_attention(const AttentionInput& in, Matrix& out) {
  const Index sq = in.sq(), sk = in.sk(), d = in.head_dim();
  assert(in.k.rows() == in.v.rows() && in.k.cols() == d && in.v.cols() == d);
  SATTN_SPAN("kernel/full");
  out.resize(sq, d);
  // Measured trip counts, tallied by the pool workers and charged once on
  // the calling thread (where the AcctScope/RequestContext attribution
  // thread-locals live).
  std::atomic<double> evals_total{0.0};
  // Register-blocked over groups of mk::kQRows query rows: the logits pass
  // shares each K row across the group (mk::logits_rows) and the PV pass
  // shares each V row (simd::axpyn). Row i's causal prefix is i + sk - sq,
  // so within a group the prefixes ascend with r.
  const Index n_groups = (sq + mk::kQRows - 1) / mk::kQRows;
  parallel_for(n_groups, [&](Index g) {
    const simd::Ops& ops = simd::ops();
    const Index i0 = g * mk::kQRows;
    const Index nr = std::min<Index>(mk::kQRows, sq - i0);
    std::vector<float> buf(static_cast<std::size_t>(nr * sk));
    Index q_rows[mk::kQRows];
    float* rows[mk::kQRows];
    double group_evals = 0.0;
    for (Index r = 0; r < nr; ++r) {
      q_rows[r] = i0 + r;
      rows[r] = buf.data() + static_cast<std::size_t>(r * sk);
    }
    mk::logits_rows(in, q_rows, nr, rows);
    for (Index r = 0; r < nr; ++r) {
      const Index lim = causal_limit(i0 + r, sq, sk);
      softmax_prefix_inplace(std::span<float>(rows[r], static_cast<std::size_t>(sk)), lim + 1);
      group_evals += static_cast<double>(lim + 1);
    }
    // PV: for key j, accumulate w[r] * v_j into every row whose causal
    // prefix reaches j (rows r0..nr-1 where r0 is the first row with
    // lim >= j; prefixes ascend with r, so that set is a suffix).
    float* orows[mk::kQRows];
    for (Index r = 0; r < nr; ++r) orows[r] = out.row(i0 + r).data();
    float w[mk::kQRows];
    Index j = 0;
    for (Index r0 = 0; r0 < nr; ++r0) {
      const Index lim = causal_limit(i0 + r0, sq, sk);
      const Index nact = nr - r0;
      for (; j <= lim; ++j) {
        bool any = false;
        for (Index t = 0; t < nact; ++t) {
          w[t] = rows[r0 + t][j];
          any |= (w[t] != 0.0f);
        }
        if (any) ops.axpyn(w, nact, in.v.row(j).data(), orows + r0, d);
      }
    }
    evals_total.fetch_add(group_evals, std::memory_order_relaxed);
  });
  // Score traffic: the logits pass materializes the whole [sq x sk] buffer
  // (one write pass) and the softmax/PV loop reads the causal prefix back.
  const double score_bytes =
      obs::kAcctBytesPerElement *
      (static_cast<double>(sq) * static_cast<double>(sk) + evals_total.load());
  obs::charge_attention_kernel("full", sq, sk, d, evals_total.load(), score_bytes);
}

Matrix full_attention_scores(const AttentionInput& in) {
  const Index sq = in.sq(), sk = in.sk();
  Matrix p(sq, sk);
  parallel_for(sq, [&](Index i) {
    auto row = p.row(i);
    logits_row(in, i, row);
    softmax_prefix_inplace(row, causal_limit(i, sq, sk) + 1);
  });
  return p;
}

AttentionResult FullAttention::run_impl(const AttentionInput& in) const {
  AttentionResult r;
  full_attention(in, r.out);
  r.density = 1.0;
  return r;
}

}  // namespace sattn
