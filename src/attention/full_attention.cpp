#include "attention/full_attention.h"

#include <atomic>
#include <cmath>
#include <limits>
#include <vector>

#include "core/numerics.h"
#include "core/thread_pool.h"
#include "obs/accounting.h"
#include "obs/trace.h"

namespace sattn {

void logits_row(const AttentionInput& in, Index i, std::span<float> row) {
  const Index sk = in.sk();
  assert(row.size() == static_cast<std::size_t>(sk));
  const float scale = 1.0f / std::sqrt(static_cast<float>(in.head_dim()));
  const Index lim = causal_limit(i, in.sq(), sk);
  const auto qi = in.q.row(i);
  for (Index j = 0; j <= lim; ++j) row[static_cast<std::size_t>(j)] = scale * dot(qi, in.k.row(j));
  for (Index j = lim + 1; j < sk; ++j)
    row[static_cast<std::size_t>(j)] = -std::numeric_limits<float>::infinity();
}

void full_attention(const AttentionInput& in, Matrix& out) {
  const Index sq = in.sq(), sk = in.sk(), d = in.head_dim();
  assert(in.k.rows() == in.v.rows() && in.k.cols() == d && in.v.cols() == d);
  SATTN_SPAN("kernel/full");
  out.resize(sq, d);
  // Measured trip counts, tallied by the pool workers and charged once on
  // the calling thread (where the AcctScope/RequestContext attribution
  // thread-locals live).
  std::atomic<double> evals_total{0.0};
  parallel_for(sq, [&](Index i) {
    std::vector<float> row(static_cast<std::size_t>(sk));
    logits_row(in, i, row);
    const Index lim = causal_limit(i, sq, sk);
    softmax_prefix_inplace(row, lim + 1);
    auto oi = out.row(i);
    for (Index j = 0; j <= lim; ++j) {
      const float p = row[static_cast<std::size_t>(j)];
      if (p != 0.0f) axpy(p, in.v.row(j), oi);
    }
    evals_total.fetch_add(static_cast<double>(lim + 1), std::memory_order_relaxed);
  });
  // Score traffic: logits_row materializes the whole [sq x sk] buffer (one
  // write pass) and the softmax/PV loop reads the causal prefix back.
  const double score_bytes =
      obs::kAcctBytesPerElement *
      (static_cast<double>(sq) * static_cast<double>(sk) + evals_total.load());
  obs::charge_attention_kernel("full", sq, sk, d, evals_total.load(), score_bytes);
}

Matrix full_attention_scores(const AttentionInput& in) {
  const Index sq = in.sq(), sk = in.sk();
  Matrix p(sq, sk);
  parallel_for(sq, [&](Index i) {
    auto row = p.row(i);
    logits_row(in, i, row);
    softmax_prefix_inplace(row, causal_limit(i, sq, sk) + 1);
  });
  return p;
}

AttentionResult FullAttention::run_impl(const AttentionInput& in) const {
  AttentionResult r;
  full_attention(in, r.out);
  r.density = 1.0;
  return r;
}

}  // namespace sattn
