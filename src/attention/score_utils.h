// Analysis helpers over attention score matrices.
//
// These back the paper's empirical-foundation measurements (Section 3.2,
// Fig 2, Tables 5/6). They are written to stream one score row at a time so
// sparsity statistics can be computed at sequence lengths where the full
// [Sq x Sk] matrix would not fit in memory.
#pragma once

#include <functional>
#include <vector>

#include "core/tensor.h"

namespace sattn {

// Calls visit(i, row) with the causal-softmaxed score row for each query i
// in `rows` (entries past the causal limit are zero). The row buffer is
// reused between calls.
void for_each_score_row(const AttentionInput& in, std::span<const Index> rows,
                        const std::function<void(Index, std::span<const float>)>& visit);

// Column-accumulated attention mass over the given query rows:
// colsum[j] = sum_{i in rows} P[i, j]. This is the statistic Stage-2 of
// SampleAttention filters on.
std::vector<float> column_score_sum(const AttentionInput& in, std::span<const Index> rows);

// Evenly spaced row indices: floor(k / ratio)-strided sampling with at least
// one row; mirrors the paper's stride sampling (r_row = l / Sq).
std::vector<Index> stride_rows(Index sq, double row_ratio);

// All rows 0..sq-1.
std::vector<Index> all_rows(Index sq);

}  // namespace sattn
