// Common interface implemented by every attention algorithm in the library:
// the exact baselines (full / flash), SampleAttention, and the four
// approximate baselines from the paper's evaluation (BigBird, StreamingLLM,
// HyperAttention, Hash-Sparse).
//
// All algorithms are causal prefill attention: query i may attend key j iff
// j <= i + (Sk - Sq). Sparse methods compute softmax over the keys they keep
// (as a real kernel does), not a post-hoc masked renormalization; the
// theory-side masked quantities (CRA, SD) live in src/metrics.
#pragma once

#include <string>

#include "core/tensor.h"

namespace sattn {

// Causal limit: largest key index (inclusive) visible to query row i.
inline Index causal_limit(Index i, Index sq, Index sk) { return i + (sk - sq); }

// Number of (i, j) pairs in the causal region — the denominator for density.
inline double causal_pairs(Index sq, Index sk) {
  // sum_i (causal_limit + 1) = sum_i (i + sk - sq + 1)
  const double off = static_cast<double>(sk - sq + 1);
  return static_cast<double>(sq) * off + 0.5 * static_cast<double>(sq) * static_cast<double>(sq - 1);
}

struct AttentionResult {
  Matrix out;  // [Sq x d]

  // Fraction of causal score entries the method actually computed in its
  // final attention pass (1.0 for exact methods). Drives the cost model.
  double density = 1.0;

  // Extra work done before the sparse pass, expressed as an equivalent
  // fraction of full causal attention (SampleAttention's Stage-1 sampling;
  // HyperAttention's hashing). Reported separately so Fig 5(b)'s
  // sampling-overhead breakdown can be regenerated.
  double overhead_density = 0.0;
};

class AttentionMethod {
 public:
  virtual ~AttentionMethod() = default;
  virtual std::string name() const = 0;

  // Runs the method. Non-virtual wrapper: when tracing is enabled
  // (obs/trace.h) it opens a "method/<name>" span and charges the shared
  // attention counters from the result's densities, so every method —
  // including all Table-2 baselines — is observable without per-method
  // instrumentation.
  AttentionResult run(const AttentionInput& in) const;

 protected:
  // The actual algorithm, implemented by each method.
  virtual AttentionResult run_impl(const AttentionInput& in) const = 0;
};

}  // namespace sattn
