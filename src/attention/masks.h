// Structured sparse attention masks (Eq. 5 of the paper).
//
// The paper reformulates mask discovery over the raw {0,1}^{Sq x Sk} grid as
// the union of two hardware-efficient primitives:
//
//   M_hat := M_window(w)  ∪  M_stripe(I_KV)
//
// where w is a local-window width (a ratio of the sequence length) and I_KV
// is a per-head set of key columns ("column stripes"). StructuredMask stores
// exactly that decomposition plus an optional set of extra rectangular
// blocks, which is enough to also express the BigBird baseline (window +
// global columns + random blocks) and StreamingLLM (sink columns + window).
//
// Everything is implicitly intersected with the causal region.
#pragma once

#include <utility>
#include <vector>

#include "attention/attention_method.h"
#include "core/tensor.h"

namespace sattn {

// Half-open run of key columns [lo, hi).
struct ColumnRun {
  Index lo = 0;
  Index hi = 0;
  Index width() const { return hi - lo; }
  friend bool operator==(const ColumnRun&, const ColumnRun&) = default;
};

// Rectangular block of (query, key) pairs, half-open on both axes.
struct Block {
  Index q_lo = 0, q_hi = 0;
  Index k_lo = 0, k_hi = 0;
  friend bool operator==(const Block&, const Block&) = default;
};

// Band parallel to the diagonal: query i attends keys in
// (lim - offset - width, lim - offset], lim = causal_limit(i). offset = 0
// with width w is exactly the local window. Non-zero offsets express the
// "additional diagonal structures" the paper's Appendix A.6 observes in
// low-sparsity heads and leaves as future work.
struct DiagonalBand {
  Index offset = 0;
  Index width = 0;
  friend bool operator==(const DiagonalBand&, const DiagonalBand&) = default;
};

class StructuredMask {
 public:
  explicit StructuredMask(Index sq = 0, Index sk = 0) : sq_(sq), sk_(sk) {}

  Index sq() const { return sq_; }
  Index sk() const { return sk_; }

  // Local window: query i attends keys in (lim - window, lim] where
  // lim = causal_limit(i). window == 0 means no window component.
  void set_window(Index window) { window_ = std::max<Index>(0, window); }
  Index window() const { return window_; }

  // Column stripes. Indices are deduped and sorted; out-of-range ignored.
  void set_stripe_columns(std::vector<Index> cols);
  const std::vector<Index>& stripe_columns() const { return stripe_cols_; }

  // Stripes compressed into maximal contiguous runs (kernel-friendly).
  const std::vector<ColumnRun>& stripe_runs() const { return stripe_runs_; }

  // Extra rectangular blocks (BigBird's random blocks). Clipped to range.
  void add_block(Block b);
  const std::vector<Block>& blocks() const { return blocks_; }

  // Extra diagonal bands (offset > 0; the offset-0 band is the window).
  // Bands are kept sorted by offset; overlapping bands are merged.
  void add_diagonal_band(DiagonalBand band);
  const std::vector<DiagonalBand>& diagonal_bands() const { return bands_; }

  // Key intervals covered by the window plus all diagonal bands for query
  // row i, clipped to [0, lim], sorted ascending and disjoint.
  std::vector<ColumnRun> band_runs_for_row(Index i) const;

  // Membership test, including the causal constraint.
  bool contains(Index i, Index j) const;

  // Fraction of causal (i, j) pairs covered by the mask, computed exactly
  // from the structure in O(stripes + blocks) per row.
  double density() const;

  // Dense 0/1 materialization for tests and visualization (quadratic!).
  Matrix to_dense() const;

 private:
  Index sq_ = 0;
  Index sk_ = 0;
  Index window_ = 0;
  std::vector<Index> stripe_cols_;
  std::vector<ColumnRun> stripe_runs_;
  std::vector<Block> blocks_;
  std::vector<DiagonalBand> bands_;
};

// Convenience constructors used by SampleAttention and the baselines.

// Window-only mask with width = ceil(ratio * sk), clamped to [1, sk].
StructuredMask make_window_mask(Index sq, Index sk, double window_ratio);

// StreamingLLM: `sinks` initial columns + fixed window of `window` keys.
StructuredMask make_streaming_mask(Index sq, Index sk, Index sinks, Index window);

// Window width in keys for a ratio, matching the paper's ceil(r_w% * Sk).
Index window_width_from_ratio(Index sk, double window_ratio);

}  // namespace sattn
