// Adaptive structured sparse attention kernel (Section 4.3).
//
// This is the CPU analogue of the paper's modified-FlashAttention kernel:
// exactly the same online-softmax update as flash_attention.cpp, but per
// query row it visits only the key runs admitted by a StructuredMask —
// the local window interval plus the run-compressed column stripes (plus any
// extra blocks, for BigBird). Work and memory traffic are therefore
// proportional to the mask density instead of Sk, which is where the
// paper's wall-clock speedup comes from.
#pragma once

#include <functional>
#include <string>

#include "attention/attention_method.h"
#include "attention/masks.h"
#include "attention/microkernel.h"
#include "core/tensor.h"

namespace sattn {

// out is resized to [Sq x d]. The mask's (sq, sk) must match the input.
// Softmax is computed over exactly the masked-in keys of each row; a row
// whose mask is empty (cannot happen with window >= 1) would produce zeros.
void sparse_flash_attention(const AttentionInput& in, const StructuredMask& mask, Matrix& out);

// View form: q is sq contiguous rows of kv.d floats, keys/values come from
// the (flat or paged) view — this is how the ragged sweep runs the sparse
// route straight out of a KVCache's page table (runtime/batch.h). The
// tensor overload above forwards here with mk::KvView::of(in), so both are
// bit-identical by construction.
void sparse_flash_attention(const float* q, Index sq, const mk::KvView& kv, Index sk,
                            const StructuredMask& mask, Matrix& out);

// Exact number of (query, key) score evaluations the kernel performs for
// this mask — used by tests (vs mask.density) and by the cost model.
double sparse_flash_work(const StructuredMask& mask);

// AttentionMethod adapter around a fixed mask builder. Used by the window /
// streaming / BigBird baselines; SampleAttention has its own method class
// because its mask is content-dependent.
class MaskedAttention final : public AttentionMethod {
 public:
  using MaskBuilder = std::function<StructuredMask(const AttentionInput&)>;
  MaskedAttention(std::string name, MaskBuilder builder)
      : name_(std::move(name)), builder_(std::move(builder)) {}

  std::string name() const override { return name_; }

 protected:
  AttentionResult run_impl(const AttentionInput& in) const override;

 private:
  std::string name_;
  MaskBuilder builder_;
};

}  // namespace sattn
