#include "attention/flash_attention.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <vector>

#include "core/thread_pool.h"
#include "obs/accounting.h"
#include "obs/trace.h"

namespace sattn {

void flash_attention(const AttentionInput& in, Matrix& out, const FlashConfig& cfg) {
  const Index sq = in.sq(), sk = in.sk(), d = in.head_dim();
  assert(cfg.tile_q > 0 && cfg.tile_k > 0);
  SATTN_SPAN("kernel/flash");
  out.resize(sq, d);
  // Measured score-eval tally: accumulated per q-tile in a plain local and
  // folded into one atomic add per tile, then charged on the calling thread
  // after the parallel loop (see obs/accounting.h).
  std::atomic<double> evals_total{0.0};

  const Index n_qtiles = (sq + cfg.tile_q - 1) / cfg.tile_q;
  parallel_for(n_qtiles, [&](Index qt) {
    const Index q_lo = qt * cfg.tile_q;
    const Index q_hi = std::min(sq, q_lo + cfg.tile_q);
    const Index rows = q_hi - q_lo;

    // Per-tile state: running max / normalizer / accumulator per query row.
    std::vector<float> m(static_cast<std::size_t>(rows), -std::numeric_limits<float>::infinity());
    std::vector<double> l(static_cast<std::size_t>(rows), 0.0);
    Matrix acc(rows, d);
    std::vector<float> logits;
    const float scale = 1.0f / std::sqrt(static_cast<float>(d));

    // The last key any row of this tile may see (causal).
    const Index tile_k_max = causal_limit(q_hi - 1, sq, sk);
    double tile_evals = 0.0;
    for (Index k_lo = 0; k_lo <= tile_k_max; k_lo += cfg.tile_k) {
      const Index k_hi = std::min(tile_k_max + 1, k_lo + cfg.tile_k);
      // Register-blocked inner loop: groups of mk::kQRows query rows share
      // each K/V row of the tile (one dotn/axpyn per key for the group).
      for (Index r0 = 0; r0 < rows; r0 += mk::kQRows) {
        mk::QBlock b;
        b.d = d;
        Index his[mk::kQRows];
        const Index r1 = std::min(rows, r0 + mk::kQRows);
        for (Index r = r0; r < r1; ++r) {
          const Index i = q_lo + r;
          const Index lim = causal_limit(i, sq, sk);
          if (k_lo > lim) continue;  // entire tile masked for this row
          const Index jn = std::min(k_hi, lim + 1);
          const auto rr = static_cast<std::size_t>(r);
          b.q[b.rows] = in.q.row(i).data();
          b.m[b.rows] = &m[rr];
          b.l[b.rows] = &l[rr];
          b.acc[b.rows] = acc.row(r).data();
          his[b.rows] = jn;
          ++b.rows;
          tile_evals += static_cast<double>(jn - k_lo);
        }
        if (b.rows > 0) mk::absorb_key_tile(b, in, scale, k_lo, his, logits);
      }
    }
    for (Index r = 0; r < rows; ++r) {
      auto orow = out.row(q_lo + r);
      const double denom = l[static_cast<std::size_t>(r)];
      if (denom <= 0.0) {
        std::fill(orow.begin(), orow.end(), 0.0f);
        continue;
      }
      const auto inv = static_cast<float>(1.0 / denom);
      auto arow = acc.row(r);
      for (Index t = 0; t < d; ++t) orow[static_cast<std::size_t>(t)] = arow[static_cast<std::size_t>(t)] * inv;
    }
    evals_total.fetch_add(tile_evals, std::memory_order_relaxed);
  });
  // No score traffic: tile logits never leave the tile-local buffer (the
  // point of the flash formulation).
  obs::charge_attention_kernel("flash", sq, sk, d, evals_total.load());
}

AttentionResult FlashAttention::run_impl(const AttentionInput& in) const {
  AttentionResult r;
  flash_attention(in, r.out, cfg_);
  r.density = 1.0;
  return r;
}

}  // namespace sattn
