#include "attention/flash_attention.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <vector>

#include "core/thread_pool.h"
#include "obs/accounting.h"
#include "obs/trace.h"

namespace sattn {

void absorb_key_run(OnlineSoftmaxRow& st, const AttentionInput& in, std::span<const float> qi,
                    float scale, Index lo, Index hi, std::vector<float>& logits) {
  if (hi <= lo) return;
  const auto n = static_cast<std::size_t>(hi - lo);
  if (logits.size() < n) logits.resize(n);
  float run_max = -std::numeric_limits<float>::infinity();
  for (Index j = lo; j < hi; ++j) {
    const float s = scale * dot(qi, in.k.row(j));
    logits[static_cast<std::size_t>(j - lo)] = s;
    run_max = std::max(run_max, s);
  }
  if (run_max > st.m) {
    const float rescale = std::exp(st.m - run_max);
    for (float& a : st.acc) a *= rescale;
    st.l *= rescale;
    st.m = run_max;
  }
  for (Index j = lo; j < hi; ++j) {
    const float w = std::exp(logits[static_cast<std::size_t>(j - lo)] - st.m);
    st.l += w;
    axpy(w, in.v.row(j), std::span<float>(st.acc));
  }
}

void OnlineSoftmaxRow::absorb(float logit, std::span<const float> v_row) {
  assert(v_row.size() == acc.size());
  if (logit > m) {
    const float rescale = std::exp(m - logit);
    for (float& a : acc) a *= rescale;
    l *= rescale;
    m = logit;
  }
  const float w = std::exp(logit - m);
  l += w;
  for (std::size_t t = 0; t < acc.size(); ++t) acc[t] += w * v_row[t];
}

void OnlineSoftmaxRow::finalize(std::span<float> out_row) const {
  assert(out_row.size() == acc.size());
  if (l <= 0.0) {
    std::fill(out_row.begin(), out_row.end(), 0.0f);
    return;
  }
  const auto inv = static_cast<float>(1.0 / l);
  for (std::size_t t = 0; t < acc.size(); ++t) out_row[t] = acc[t] * inv;
}

void flash_attention(const AttentionInput& in, Matrix& out, const FlashConfig& cfg) {
  const Index sq = in.sq(), sk = in.sk(), d = in.head_dim();
  assert(cfg.tile_q > 0 && cfg.tile_k > 0);
  SATTN_SPAN("kernel/flash");
  out.resize(sq, d);
  // Measured score-eval tally: accumulated per q-tile in a plain local and
  // folded into one atomic add per tile, then charged on the calling thread
  // after the parallel loop (see obs/accounting.h).
  std::atomic<double> evals_total{0.0};

  const Index n_qtiles = (sq + cfg.tile_q - 1) / cfg.tile_q;
  parallel_for(n_qtiles, [&](Index qt) {
    const Index q_lo = qt * cfg.tile_q;
    const Index q_hi = std::min(sq, q_lo + cfg.tile_q);
    const Index rows = q_hi - q_lo;

    // Per-tile state: running max / normalizer / accumulator per query row.
    std::vector<float> m(static_cast<std::size_t>(rows), -std::numeric_limits<float>::infinity());
    std::vector<double> l(static_cast<std::size_t>(rows), 0.0);
    Matrix acc(rows, d);
    std::vector<float> logits(static_cast<std::size_t>(cfg.tile_k));
    const float scale = 1.0f / std::sqrt(static_cast<float>(d));

    // The last key any row of this tile may see (causal).
    const Index tile_k_max = causal_limit(q_hi - 1, sq, sk);
    double tile_evals = 0.0;
    for (Index k_lo = 0; k_lo <= tile_k_max; k_lo += cfg.tile_k) {
      const Index k_hi = std::min(tile_k_max + 1, k_lo + cfg.tile_k);
      for (Index r = 0; r < rows; ++r) {
        const Index i = q_lo + r;
        const Index lim = causal_limit(i, sq, sk);
        if (k_lo > lim) continue;  // entire tile masked for this row
        const Index jn = std::min(k_hi, lim + 1);
        tile_evals += static_cast<double>(jn - k_lo);
        const auto qi = in.q.row(i);
        float tile_max = -std::numeric_limits<float>::infinity();
        for (Index j = k_lo; j < jn; ++j) {
          const float s = scale * dot(qi, in.k.row(j));
          logits[static_cast<std::size_t>(j - k_lo)] = s;
          tile_max = std::max(tile_max, s);
        }
        const std::size_t rr = static_cast<std::size_t>(r);
        auto arow = acc.row(r);
        if (tile_max > m[rr]) {
          const float rescale = std::exp(m[rr] - tile_max);
          for (float& a : arow) a *= rescale;
          l[rr] *= rescale;
          m[rr] = tile_max;
        }
        for (Index j = k_lo; j < jn; ++j) {
          const float w = std::exp(logits[static_cast<std::size_t>(j - k_lo)] - m[rr]);
          l[rr] += w;
          axpy(w, in.v.row(j), arow);
        }
      }
    }
    for (Index r = 0; r < rows; ++r) {
      auto orow = out.row(q_lo + r);
      const double denom = l[static_cast<std::size_t>(r)];
      if (denom <= 0.0) {
        std::fill(orow.begin(), orow.end(), 0.0f);
        continue;
      }
      const auto inv = static_cast<float>(1.0 / denom);
      auto arow = acc.row(r);
      for (Index t = 0; t < d; ++t) orow[static_cast<std::size_t>(t)] = arow[static_cast<std::size_t>(t)] * inv;
    }
    evals_total.fetch_add(tile_evals, std::memory_order_relaxed);
  });
  // No score traffic: tile logits never leave the tile-local buffer (the
  // point of the flash formulation).
  obs::charge_attention_kernel("flash", sq, sk, d, evals_total.load());
}

AttentionResult FlashAttention::run_impl(const AttentionInput& in) const {
  AttentionResult r;
  flash_attention(in, r.out, cfg_);
  r.density = 1.0;
  return r;
}

}  // namespace sattn
