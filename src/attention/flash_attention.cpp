#include "attention/flash_attention.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <vector>

#include "core/thread_pool.h"
#include "obs/accounting.h"
#include "obs/trace.h"

namespace sattn {

double flash_rows(const float* q, Index rows, const mk::KvView& kv, Index k_hi, Index causal_off,
                  float* out, Index out_stride, const FlashConfig& cfg) {
  assert(cfg.tile_q > 0 && cfg.tile_k > 0);
  const Index d = kv.d;
  const float scale = 1.0f / std::sqrt(static_cast<float>(d));
  double evals = 0.0;
  std::vector<float> logits;
  for (Index t_lo = 0; t_lo < rows; t_lo += cfg.tile_q) {
    const Index t_hi = std::min(rows, t_lo + cfg.tile_q);
    const Index t_rows = t_hi - t_lo;

    // Per-tile state: running max / normalizer / accumulator per query row.
    std::vector<float> m(static_cast<std::size_t>(t_rows),
                         -std::numeric_limits<float>::infinity());
    std::vector<double> l(static_cast<std::size_t>(t_rows), 0.0);
    Matrix acc(t_rows, d);

    // The last key any row of this tile may see (causal).
    const Index tile_k_max = std::min(k_hi - 1, (t_hi - 1) + causal_off);
    for (Index k_lo = 0; k_lo <= tile_k_max; k_lo += cfg.tile_k) {
      const Index kt_hi = std::min(tile_k_max + 1, k_lo + cfg.tile_k);
      // Register-blocked inner loop: groups of mk::kQRows query rows share
      // each K/V row of the tile (one dotn/axpyn per key for the group).
      for (Index r0 = t_lo; r0 < t_hi; r0 += mk::kQRows) {
        mk::QBlock b;
        b.d = d;
        Index his[mk::kQRows];
        const Index r1 = std::min(t_hi, r0 + mk::kQRows);
        for (Index r = r0; r < r1; ++r) {
          const Index vis = std::min(k_hi, r + causal_off + 1);
          if (k_lo >= vis) continue;  // entire tile masked for this row
          const Index jn = std::min(kt_hi, vis);
          const auto rr = static_cast<std::size_t>(r - t_lo);
          b.q[b.rows] = q + static_cast<std::size_t>(r) * static_cast<std::size_t>(d);
          b.m[b.rows] = &m[rr];
          b.l[b.rows] = &l[rr];
          b.acc[b.rows] = acc.row(r - t_lo).data();
          his[b.rows] = jn;
          ++b.rows;
          evals += static_cast<double>(jn - k_lo);
        }
        if (b.rows > 0) mk::absorb_key_tile(b, kv, scale, k_lo, his, logits);
      }
    }
    for (Index r = 0; r < t_rows; ++r) {
      float* orow = out + static_cast<std::size_t>(t_lo + r) * static_cast<std::size_t>(out_stride);
      const double denom = l[static_cast<std::size_t>(r)];
      if (denom <= 0.0) {
        std::fill(orow, orow + d, 0.0f);
        continue;
      }
      const auto inv = static_cast<float>(1.0 / denom);
      const auto arow = acc.row(r);
      for (Index t = 0; t < d; ++t) orow[t] = arow[static_cast<std::size_t>(t)] * inv;
    }
  }
  return evals;
}

void flash_attention(const AttentionInput& in, Matrix& out, const FlashConfig& cfg) {
  const Index sq = in.sq(), sk = in.sk(), d = in.head_dim();
  assert(cfg.tile_q > 0 && cfg.tile_k > 0);
  SATTN_SPAN("kernel/flash");
  out.resize(sq, d);
  const mk::KvView kv = mk::KvView::of(in);
  const Index off = sk - sq;  // causal_limit(i, sq, sk) == i + off
  // Measured score-eval tally: accumulated per q-tile in a plain local and
  // folded into one atomic add per tile, then charged on the calling thread
  // after the parallel loop (see obs/accounting.h).
  std::atomic<double> evals_total{0.0};

  const Index n_qtiles = (sq + cfg.tile_q - 1) / cfg.tile_q;
  parallel_for(n_qtiles, [&](Index qt) {
    const Index q_lo = qt * cfg.tile_q;
    const Index q_hi = std::min(sq, q_lo + cfg.tile_q);
    const double tile_evals = flash_rows(in.q.row(q_lo).data(), q_hi - q_lo, kv, sk, q_lo + off,
                                         out.row(q_lo).data(), d, cfg);
    evals_total.fetch_add(tile_evals, std::memory_order_relaxed);
  });
  // No score traffic: tile logits never leave the tile-local buffer (the
  // point of the flash formulation).
  obs::charge_attention_kernel("flash", sq, sk, d, evals_total.load());
}

AttentionResult FlashAttention::run_impl(const AttentionInput& in) const {
  AttentionResult r;
  flash_attention(in, r.out, cfg_);
  r.density = 1.0;
  return r;
}

}  // namespace sattn
