// Serving-queue simulator: what SampleAttention's prefill speedup means for
// a stream of long-context requests on one device.
//
// TTFT in production is queueing + prefill; because prefill time is
// quadratic in prompt length, one 256K request parked in front of the queue
// dominates everyone's TTFT. The simulator plays an arrival trace through a
// FCFS (optionally chunk-preemptive round-robin) single-device queue whose
// per-request prefill latency comes from the calibrated A100 cost model,
// for either a FlashAttention2 engine or a SampleAttention engine with
// measured densities. The serving bench uses it to extend the paper's
// Table 4 / Fig 1 story from single requests to queues.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "perf/cost_model.h"
#include "sample_attention/sample_attention.h"

namespace sattn {

struct ServingRequest {
  std::string id;
  Index prompt_tokens = 0;
  double arrival_seconds = 0.0;
};

enum class EngineKind { kSdpa, kFlashAttention, kSampleAttention };

// Latency model of one serving engine.
struct Engine {
  ModelConfig model = chatglm2_6b();
  GpuSpec gpu = a100_single();
  EngineKind kind = EngineKind::kFlashAttention;

  // SampleAttention inputs, measured on the substrate (see bench_fig5):
  // kept/window densities at `density_measured_at` tokens and the Stage-1
  // overhead fraction.
  double kept_density = 0.25;
  double overhead_density = 0.05;
  Index density_measured_at = 4096;
  double window_ratio = 0.08;

  // Prefill seconds for one request of the given prompt length.
  double prefill_seconds(Index prompt_tokens) const;
};

struct CompletedRequest {
  ServingRequest request;
  double start_seconds = 0.0;    // when prefill began
  double finish_seconds = 0.0;   // TTFT instant
  double ttft() const { return finish_seconds - request.arrival_seconds; }
  double queueing() const { return start_seconds - request.arrival_seconds; }
};

struct ServingSummary {
  double mean_ttft = 0.0;
  double max_ttft = 0.0;
  double mean_queueing = 0.0;
  double makespan = 0.0;  // finish of the last request
};

// FCFS single-device queue. If chunk_quantum_tokens > 0, prefill runs in
// chunk-sized quanta with round-robin between queued requests (bounds the
// head-of-line blocking a huge request causes).
std::vector<CompletedRequest> simulate_queue(std::span<const ServingRequest> requests,
                                             const Engine& engine,
                                             Index chunk_quantum_tokens = 0);

ServingSummary summarize(std::span<const CompletedRequest> completed);

// A reproducible arrival trace: `count` requests with lengths log-uniform in
// [min_tokens, max_tokens] and exponential inter-arrival times of the given
// mean.
std::vector<ServingRequest> synthetic_trace(Index count, Index min_tokens, Index max_tokens,
                                            double mean_interarrival_seconds,
                                            std::uint64_t seed = 0x7e1ull);

}  // namespace sattn
