// Serving-queue simulator: what SampleAttention's prefill speedup means for
// a stream of long-context requests on one device.
//
// TTFT in production is queueing + prefill; because prefill time is
// quadratic in prompt length, one 256K request parked in front of the queue
// dominates everyone's TTFT. The simulator plays an arrival trace through a
// FCFS (optionally chunk-preemptive round-robin) single-device queue whose
// per-request prefill latency comes from the calibrated A100 cost model,
// for either a FlashAttention2 engine or a SampleAttention engine with
// measured densities. The serving bench uses it to extend the paper's
// Table 4 / Fig 1 story from single requests to queues.
//
// simulate_queue_slo adds the production guardrails (docs/ROBUSTNESS.md):
// admission control, per-request TTFT deadlines with shedding, retry with
// exponential backoff for injected transient failures, and SLO-aware
// graceful degradation — under overload the SampleAttention engine's
// density budget is lowered per the cost model (lower alpha / window
// budget) to keep p99 TTFT inside the target instead of letting the queue
// blow through it.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "core/status.h"
#include "perf/cost_model.h"
#include "sample_attention/sample_attention.h"

namespace sattn {

// A span of prompt content identified by a stable key. Two requests whose
// prompts start with the same segment sequence produce bit-identical Q/K/V
// rows for those tokens (the live engine derives synthetic content from the
// segment key + absolute position, not the request id), which is what makes
// the paged KV prefix cache (runtime/kv_page.h) able to share their prefill
// across requests — e.g. a fleet of conversations reusing one system prompt.
struct ContentSegment {
  std::string key;   // content identity ("sys", "conv/7", ...)
  Index tokens = 0;  // length of the segment in prompt tokens
};

struct ServingRequest {
  std::string id;
  Index prompt_tokens = 0;
  double arrival_seconds = 0.0;
  // Optional content layout. When non-empty, segment tokens must sum to
  // <= prompt_tokens (the remainder is request-private content); when empty
  // the whole prompt is private to the request (the pre-paging behavior,
  // bit-identical to it).
  std::vector<ContentSegment> segments;

  ServingRequest() = default;
  ServingRequest(std::string id_, Index tokens, double arrival,
                 std::vector<ContentSegment> segs = {})
      : id(std::move(id_)),
        prompt_tokens(tokens),
        arrival_seconds(arrival),
        segments(std::move(segs)) {}
};

enum class EngineKind { kSdpa, kFlashAttention, kSampleAttention };

// Latency model of one serving engine.
struct Engine {
  ModelConfig model = chatglm2_6b();
  GpuSpec gpu = a100_single();
  EngineKind kind = EngineKind::kFlashAttention;

  // SampleAttention inputs, measured on the substrate (see bench_fig5):
  // kept/window densities at `density_measured_at` tokens and the Stage-1
  // overhead fraction.
  double kept_density = 0.25;
  double overhead_density = 0.05;
  Index density_measured_at = 4096;
  double window_ratio = 0.08;

  // When set, replaces the analytic cost model: prefill_seconds returns
  // cost_override(prompt_tokens, density_scale) directly. bench_serving
  // --engine calibrates one from measured kernel time so the simulator's
  // predictions and the real engine's measurements share a cost substrate
  // (docs/SERVING.md).
  std::function<double(Index prompt_tokens, double density_scale)> cost_override;

  // Prefill seconds for one request of the given prompt length.
  // `density_scale` models graceful degradation: the SampleAttention
  // engine's kept/overhead densities are multiplied by it (a lower alpha
  // and window budget per the cost model); exact engines ignore it.
  double prefill_seconds(Index prompt_tokens, double density_scale = 1.0) const;
};

struct CompletedRequest {
  ServingRequest request;
  double start_seconds = 0.0;    // when prefill began
  double finish_seconds = 0.0;   // TTFT instant
  int degrade_level = 0;         // ladder level served at (0 = full quality)
  int attempts = 1;              // 1 + transient-failure retries
  // TTFT attribution (the three sum to ttft()):
  //   compute — service time that produced the final output,
  //   guard   — guardrail escalation time: lost retry attempts, stall
  //             slowdown excess, and retry-backoff gates,
  //   queue   — everything else (waiting for the device).
  double queue_seconds = 0.0;
  double compute_seconds = 0.0;
  double guard_seconds = 0.0;
  double ttft() const { return finish_seconds - request.arrival_seconds; }
  double queueing() const { return start_seconds - request.arrival_seconds; }
};

struct ServingSummary {
  double mean_ttft = 0.0;
  double max_ttft = 0.0;
  double p50_ttft = 0.0;
  double p99_ttft = 0.0;
  double mean_queueing = 0.0;
  double makespan = 0.0;  // finish of the last request
};

// FCFS single-device queue. If chunk_quantum_tokens > 0, prefill runs in
// chunk-sized quanta with round-robin between queued requests (bounds the
// head-of-line blocking a huge request causes). Quanta are billed at the
// *progressive* prefix cost — chunk i of a long request costs
// prefix_cost(i+1) - prefix_cost(i), matching real chunked prefill where
// early chunks attend short prefixes — so a request arriving mid-stream is
// not overcharged by a freshly started long request (the quanta telescope:
// total service time is exactly prefill_seconds(prompt)).
//
// Per-request observability: each completed request carries its
// queue/compute/guard TTFT breakdown, and when collection is enabled the
// simulator emits `request.<run_label>/<id>.{queue_s,compute_s,guard_s,
// ttft_s}` gauges (no label prefix when run_label is empty) and tags the
// `sched.ttft_seconds` histogram with request-id exemplars, so report
// tails are traceable to specific requests.
std::vector<CompletedRequest> simulate_queue(std::span<const ServingRequest> requests,
                                             const Engine& engine,
                                             Index chunk_quantum_tokens = 0,
                                             const std::string& run_label = {});

// ---- SLO-aware serving ----

struct SloOptions {
  // Per-request hard TTFT deadline; a request whose projected or actual
  // TTFT exceeds it is shed. 0 disables deadlines.
  double deadline_seconds = 0.0;

  // Target TTFT the degrader steers toward: before service starts, the
  // degrade ladder is walked until the projected TTFT fits (or the ladder
  // is exhausted). 0 disables degradation steering.
  double slo_ttft_seconds = 0.0;

  // Admission control: arrivals beyond this many waiting requests are shed
  // at the door. 0 = unlimited.
  Index max_queue_depth = 0;

  // Arrivals longer than this are shed at the door (the serving-simulator
  // "oversized arrival" fault class). 0 = unlimited.
  Index max_prompt_tokens = 0;

  // Injected transient faults, deterministic in `seed`: each service
  // attempt fails with probability fault_rate (the work is lost and the
  // request retries after backoff doubling per attempt, up to max_retries);
  // each service slice stalls with probability stall_rate, running
  // stall_factor x slower.
  double fault_rate = 0.0;
  double stall_rate = 0.0;
  double stall_factor = 4.0;
  int max_retries = 2;
  double retry_backoff_seconds = 1.0;
  std::uint64_t seed = 0x510ull;

  // Graceful-degradation ladder: density multipliers applied to the engine
  // (level 0 must be 1.0 = full quality). Only the SampleAttention engine
  // can actually trade quality for time; for exact engines the ladder is a
  // no-op and overload resolves by shedding.
  std::vector<double> degrade_density_scale = {1.0, 0.6, 0.35};

  // Round-robin chunk quantum, as in simulate_queue. 0 = FCFS.
  Index chunk_quantum_tokens = 0;

  // Label prefixing the per-request gauges (`request.<run_label>/<id>.*`)
  // so several simulations in one process do not overwrite each other.
  std::string run_label;
};

struct ShedRequest {
  ServingRequest request;
  // "admission" | "oversized" | "deadline" | "retries_exhausted" from the
  // simulator and the live engine; the engine's lifecycle hardening adds
  // "kv_budget" (solo KV demand exceeds the whole memory budget) and
  // "watchdog" (measured service time blew past the runaway multiple) —
  // see runtime/engine.h.
  std::string reason;
  double shed_seconds = 0.0;
};

struct SloServingResult {
  std::vector<CompletedRequest> completed;
  std::vector<ShedRequest> shed;
  Index degraded = 0;   // completed requests served below full quality
  Index retries = 0;    // transient-failure retries performed
  Index stalls = 0;     // stalled service slices
  std::vector<Index> served_per_level;  // completed count per ladder level
};

StatusOr<SloServingResult> simulate_queue_slo(std::span<const ServingRequest> requests,
                                              const Engine& engine, const SloOptions& opts);

ServingSummary summarize(std::span<const CompletedRequest> completed);

// A reproducible arrival trace: `count` requests with lengths log-uniform in
// [min_tokens, max_tokens] and exponential inter-arrival times of the given
// mean. Invalid parameters are kInvalidArgument.
StatusOr<std::vector<ServingRequest>> synthetic_trace(Index count, Index min_tokens,
                                                      Index max_tokens,
                                                      double mean_interarrival_seconds,
                                                      std::uint64_t seed = 0x7e1ull);

}  // namespace sattn
