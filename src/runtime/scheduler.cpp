#include "runtime/scheduler.h"

#include <algorithm>
#include <cmath>
#include <deque>

#include "core/rng.h"
#include "obs/trace.h"

namespace sattn {

double Engine::prefill_seconds(Index prompt_tokens) const {
  const double linear = linear_parts_seconds(model, prompt_tokens, gpu);
  switch (kind) {
    case EngineKind::kSdpa:
      return sdpa_seconds(model, prompt_tokens, gpu) + linear;
    case EngineKind::kFlashAttention:
      return flash_attention_seconds(model, prompt_tokens, gpu) + linear;
    case EngineKind::kSampleAttention: {
      const double wd_measured = window_band_density(density_measured_at, window_ratio);
      const double stripes = std::max(0.0, kept_density - wd_measured);
      const double wd = window_band_density(prompt_tokens, window_ratio);
      const double kept =
          wd + extrapolate_kept_fraction(stripes, density_measured_at, prompt_tokens);
      return sample_attention_seconds(model, prompt_tokens, gpu, kept, overhead_density, wd)
                 .total_seconds +
             linear;
    }
  }
  return linear;
}

std::vector<CompletedRequest> simulate_queue(std::span<const ServingRequest> requests,
                                             const Engine& engine, Index chunk_quantum_tokens) {
  SATTN_SPAN("runtime/scheduler");
  std::vector<ServingRequest> sorted(requests.begin(), requests.end());
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const ServingRequest& a, const ServingRequest& b) {
                     return a.arrival_seconds < b.arrival_seconds;
                   });

  struct InFlight {
    ServingRequest req;
    double remaining = 0.0;  // prefill seconds left
    double start = -1.0;
  };

  std::vector<CompletedRequest> done;
  std::deque<InFlight> queue;
  std::size_t next = 0;
  double now = 0.0;

  const auto admit_until = [&](double t) {
    while (next < sorted.size() && sorted[next].arrival_seconds <= t) {
      queue.push_back({sorted[next], engine.prefill_seconds(sorted[next].prompt_tokens), -1.0});
      ++next;
      SATTN_COUNTER_ADD("sched.requests_enqueued", 1);
      SATTN_COUNTER_MAX("sched.queue_depth_peak", queue.size());
    }
  };

  while (next < sorted.size() || !queue.empty()) {
    if (queue.empty()) {
      now = std::max(now, sorted[next].arrival_seconds);
      admit_until(now);
      continue;
    }
    InFlight job = queue.front();
    queue.pop_front();
    if (job.start < 0.0) job.start = now;

    double slice = job.remaining;
    if (chunk_quantum_tokens > 0) {
      // A chunk quantum's duration scales with the request's own prefill
      // cost per token (quadratic requests get proportionally long quanta
      // per chunk, which is how chunked prefill behaves in practice).
      const double per_token =
          job.remaining > 0.0 && job.req.prompt_tokens > 0
              ? engine.prefill_seconds(job.req.prompt_tokens) /
                    static_cast<double>(job.req.prompt_tokens)
              : 0.0;
      slice = std::min(job.remaining,
                       per_token * static_cast<double>(chunk_quantum_tokens));
      slice = std::max(slice, 1e-9);
    }
    now += slice;
    job.remaining -= slice;
    admit_until(now);
    if (job.remaining <= 1e-12) {
      done.push_back({job.req, job.start, now});
      SATTN_COUNTER_ADD("sched.requests_completed", 1);
    } else {
      queue.push_back(job);  // round-robin
      SATTN_COUNTER_ADD("sched.preemptions", 1);
    }
  }
  return done;
}

ServingSummary summarize(std::span<const CompletedRequest> completed) {
  ServingSummary s;
  if (completed.empty()) return s;
  for (const CompletedRequest& c : completed) {
    s.mean_ttft += c.ttft();
    s.max_ttft = std::max(s.max_ttft, c.ttft());
    s.mean_queueing += c.queueing();
    s.makespan = std::max(s.makespan, c.finish_seconds);
  }
  s.mean_ttft /= static_cast<double>(completed.size());
  s.mean_queueing /= static_cast<double>(completed.size());
  return s;
}

std::vector<ServingRequest> synthetic_trace(Index count, Index min_tokens, Index max_tokens,
                                            double mean_interarrival_seconds,
                                            std::uint64_t seed) {
  assert(min_tokens > 0 && max_tokens >= min_tokens && count > 0);
  Rng rng(seed);
  std::vector<ServingRequest> trace;
  double t = 0.0;
  const double lo = std::log(static_cast<double>(min_tokens));
  const double hi = std::log(static_cast<double>(max_tokens));
  for (Index r = 0; r < count; ++r) {
    ServingRequest req;
    req.id = "req-" + std::to_string(r);
    req.prompt_tokens = static_cast<Index>(std::llround(std::exp(rng.uniform(lo, hi))));
    // Exponential inter-arrivals.
    t += -mean_interarrival_seconds * std::log(std::max(1e-12, rng.uniform()));
    req.arrival_seconds = t;
    trace.push_back(std::move(req));
  }
  return trace;
}

}  // namespace sattn
