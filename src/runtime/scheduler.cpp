#include "runtime/scheduler.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <limits>

#include "core/rng.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace sattn {

double Engine::prefill_seconds(Index prompt_tokens, double density_scale) const {
  if (prompt_tokens <= 0) return 0.0;
  if (cost_override) return cost_override(prompt_tokens, density_scale);
  const double linear = linear_parts_seconds(model, prompt_tokens, gpu);
  switch (kind) {
    case EngineKind::kSdpa:
      return sdpa_seconds(model, prompt_tokens, gpu) + linear;
    case EngineKind::kFlashAttention:
      return flash_attention_seconds(model, prompt_tokens, gpu) + linear;
    case EngineKind::kSampleAttention: {
      const double wd_measured = window_band_density(density_measured_at, window_ratio);
      const double stripes = std::max(0.0, kept_density - wd_measured);
      const double wd = window_band_density(prompt_tokens, window_ratio) * density_scale;
      const double kept =
          wd + extrapolate_kept_fraction(stripes, density_measured_at, prompt_tokens) *
                   density_scale;
      return sample_attention_seconds(model, prompt_tokens, gpu, kept,
                                      overhead_density * density_scale, wd)
                 .total_seconds +
             linear;
    }
  }
  return linear;
}

namespace {

// Cumulative cost of prefilling the first `tokens` tokens of a request: the
// cost of a prompt of that length. Billing quantum i at
// prefix(i+1) - prefix(i) telescopes to the exact full prefill time while
// charging early chunks their true (short-prefix) cost.
double prefix_cost(const Engine& engine, Index tokens, double density_scale) {
  if (tokens <= 0) return 0.0;
  return engine.prefill_seconds(tokens, density_scale);
}

// Gauge key for one request: `request.<label>/<id>.` (no label segment when
// the label is empty).
std::string request_key(const std::string& run_label, const std::string& id) {
  return run_label.empty() ? id : run_label + "/" + id;
}

// Publishes one completed request's TTFT attribution and tags the TTFT
// histogram with the request id, so report tails point at real requests.
void emit_request_metrics(const std::string& run_label, const CompletedRequest& c) {
  if (!obs::enabled()) return;
  const std::string key = request_key(run_label, c.request.id);
  auto& reg = obs::MetricsRegistry::global();
  const std::string prefix = "request." + key + ".";
  reg.gauge(prefix + "queue_s").set(c.queue_seconds);
  reg.gauge(prefix + "compute_s").set(c.compute_seconds);
  reg.gauge(prefix + "guard_s").set(c.guard_seconds);
  reg.gauge(prefix + "ttft_s").set(c.ttft());
  SATTN_HISTOGRAM_EX("sched.ttft_seconds", c.ttft(), key);
}

}  // namespace

std::vector<CompletedRequest> simulate_queue(std::span<const ServingRequest> requests,
                                             const Engine& engine, Index chunk_quantum_tokens,
                                             const std::string& run_label) {
  SATTN_SPAN("runtime/scheduler");
  std::vector<ServingRequest> sorted(requests.begin(), requests.end());
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const ServingRequest& a, const ServingRequest& b) {
                     return a.arrival_seconds < b.arrival_seconds;
                   });

  struct InFlight {
    ServingRequest req;
    Index tokens_done = 0;
    double cost_done = 0.0;  // prefix_cost at tokens_done (cached)
    double start = -1.0;
    double compute = 0.0;  // service time consumed so far
  };

  std::vector<CompletedRequest> done;
  std::deque<InFlight> queue;
  std::size_t next = 0;
  double now = 0.0;

  const auto admit_until = [&](double t) {
    while (next < sorted.size() && sorted[next].arrival_seconds <= t) {
      queue.push_back({sorted[next], 0, 0.0, -1.0});
      ++next;
      SATTN_COUNTER_ADD("sched.requests_enqueued", 1);
      SATTN_COUNTER_MAX("sched.queue_depth_peak", queue.size());
      SATTN_SERIES("sched.queue_depth", t, queue.size());
    }
  };

  while (next < sorted.size() || !queue.empty()) {
    if (queue.empty()) {
      now = std::max(now, sorted[next].arrival_seconds);
      admit_until(now);
      continue;
    }
    InFlight job = queue.front();
    queue.pop_front();
    if (job.start < 0.0) job.start = now;

    bool finished;
    double slice;
    if (chunk_quantum_tokens > 0 && job.req.prompt_tokens > 0) {
      const Index target = std::min(job.req.prompt_tokens, job.tokens_done + chunk_quantum_tokens);
      const double target_cost = prefix_cost(engine, target, 1.0);
      slice = std::max(0.0, target_cost - job.cost_done);
      job.tokens_done = target;
      job.cost_done = target_cost;
      finished = job.tokens_done >= job.req.prompt_tokens;
    } else {
      slice = prefix_cost(engine, job.req.prompt_tokens, 1.0);
      finished = true;
    }
    now += slice;
    job.compute += slice;
    admit_until(now);
    if (finished) {
      SATTN_SERIES("sched.queue_depth", now, queue.size());
      CompletedRequest c{job.req, job.start, now, 0, 1};
      c.compute_seconds = job.compute;
      c.guard_seconds = 0.0;
      c.queue_seconds = c.ttft() - c.compute_seconds;
      emit_request_metrics(run_label, c);
      done.push_back(std::move(c));
      SATTN_COUNTER_ADD("sched.requests_completed", 1);
    } else {
      queue.push_back(job);  // round-robin
      SATTN_COUNTER_ADD("sched.preemptions", 1);
    }
  }
  return done;
}

StatusOr<SloServingResult> simulate_queue_slo(std::span<const ServingRequest> requests,
                                              const Engine& engine, const SloOptions& opts) {
  SATTN_CHECK(opts.deadline_seconds >= 0.0 && opts.slo_ttft_seconds >= 0.0, kInvalidArgument,
              "deadline/SLO must be >= 0, got deadline=", opts.deadline_seconds,
              " slo=", opts.slo_ttft_seconds);
  SATTN_CHECK(opts.fault_rate >= 0.0 && opts.fault_rate <= 1.0, kInvalidArgument,
              "fault_rate must be in [0,1], got ", opts.fault_rate);
  SATTN_CHECK(opts.stall_rate >= 0.0 && opts.stall_rate <= 1.0, kInvalidArgument,
              "stall_rate must be in [0,1], got ", opts.stall_rate);
  SATTN_CHECK(opts.stall_factor >= 1.0, kInvalidArgument, "stall_factor must be >= 1, got ",
              opts.stall_factor);
  SATTN_CHECK(opts.max_retries >= 0 && opts.retry_backoff_seconds >= 0.0, kInvalidArgument,
              "retry settings must be non-negative");
  SATTN_CHECK(opts.max_queue_depth >= 0 && opts.max_prompt_tokens >= 0 &&
                  opts.chunk_quantum_tokens >= 0,
              kInvalidArgument, "queue/prompt/quantum limits must be >= 0");
  SATTN_CHECK(!opts.degrade_density_scale.empty() && opts.degrade_density_scale[0] == 1.0,
              kInvalidArgument, "degrade ladder must start at 1.0 (full quality)");
  for (double s : opts.degrade_density_scale) {
    SATTN_CHECK(s > 0.0 && s <= 1.0, kInvalidArgument, "degrade scale ", s, " not in (0,1]");
  }

  SATTN_SPAN("runtime/scheduler_slo");
  std::vector<ServingRequest> sorted(requests.begin(), requests.end());
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const ServingRequest& a, const ServingRequest& b) {
                     return a.arrival_seconds < b.arrival_seconds;
                   });

  struct InFlight {
    ServingRequest req;
    Index tokens_done = 0;
    double cost_done = 0.0;
    double start = -1.0;          // first instant of service, across attempts
    double available_at = 0.0;    // backoff gate after a transient failure
    int level = 0;                // degrade ladder level (fixed at first service)
    int attempts = 1;
    double compute = 0.0;  // useful service time of the current attempt
    double guard = 0.0;    // lost attempts + stall excess + backoff gates
  };

  const int levels = static_cast<int>(opts.degrade_density_scale.size());
  const auto scale_of = [&](int level) {
    return opts.degrade_density_scale[static_cast<std::size_t>(level)];
  };

  SloServingResult result;
  result.served_per_level.assign(static_cast<std::size_t>(levels), 0);
  Rng rng(opts.seed);
  std::deque<InFlight> queue;
  std::size_t next = 0;
  double now = 0.0;

  const auto shed = [&](ServingRequest req, const char* reason, double t) {
    result.shed.push_back({std::move(req), reason, t});
    SATTN_COUNTER_ADD("sched.requests_shed", 1);
  };

  const auto admit_until = [&](double t) {
    while (next < sorted.size() && sorted[next].arrival_seconds <= t) {
      ServingRequest req = sorted[next];
      ++next;
      if (opts.max_prompt_tokens > 0 && req.prompt_tokens > opts.max_prompt_tokens) {
        SATTN_COUNTER_ADD("sched.oversized_rejects", 1);
        shed(std::move(req), "oversized", req.arrival_seconds);
        continue;
      }
      if (opts.max_queue_depth > 0 &&
          static_cast<Index>(queue.size()) >= opts.max_queue_depth) {
        SATTN_COUNTER_ADD("sched.admission_rejects", 1);
        shed(std::move(req), "admission", req.arrival_seconds);
        continue;
      }
      queue.push_back({std::move(req), 0, 0.0, -1.0, 0.0, 0, 1});
      SATTN_COUNTER_ADD("sched.requests_enqueued", 1);
      SATTN_COUNTER_MAX("sched.queue_depth_peak", queue.size());
      SATTN_SERIES("sched.queue_depth", t, queue.size());
    }
  };

  while (next < sorted.size() || !queue.empty()) {
    if (queue.empty()) {
      now = std::max(now, sorted[next].arrival_seconds);
      admit_until(now);
      continue;
    }
    // First queued job already past its backoff gate, in queue order.
    std::size_t pick = queue.size();
    for (std::size_t i = 0; i < queue.size(); ++i) {
      if (queue[i].available_at <= now) {
        pick = i;
        break;
      }
    }
    if (pick == queue.size()) {
      // Everyone is backing off; jump to the earliest gate or arrival.
      double wake = std::numeric_limits<double>::infinity();
      for (const InFlight& j : queue) wake = std::min(wake, j.available_at);
      if (next < sorted.size()) wake = std::min(wake, sorted[next].arrival_seconds);
      now = std::max(now, wake);
      admit_until(now);
      continue;
    }
    InFlight job = queue[pick];
    queue.erase(queue.begin() + static_cast<std::ptrdiff_t>(pick));

    if (job.start < 0.0) {
      // Service is starting: steer the degrade ladder against the SLO and
      // shed what cannot make the hard deadline even fully degraded.
      job.start = now;
      const double waited = now - job.req.arrival_seconds;
      const double target = opts.slo_ttft_seconds > 0.0   ? opts.slo_ttft_seconds
                            : opts.deadline_seconds > 0.0 ? opts.deadline_seconds
                                                          : std::numeric_limits<double>::infinity();
      while (job.level + 1 < levels) {
        const double cur = engine.prefill_seconds(job.req.prompt_tokens, scale_of(job.level));
        if (waited + cur <= target) break;
        // Take the next rung only if it actually buys time — for exact
        // engines the ladder is a no-op and must not be reported as
        // degradation.
        if (engine.prefill_seconds(job.req.prompt_tokens, scale_of(job.level + 1)) >= cur) break;
        ++job.level;
      }
      if (opts.deadline_seconds > 0.0 &&
          waited + engine.prefill_seconds(job.req.prompt_tokens, scale_of(job.level)) >
              opts.deadline_seconds) {
        SATTN_COUNTER_ADD("sched.deadline_sheds", 1);
        shed(std::move(job.req), "deadline", now);
        continue;
      }
    }

    const double scale = scale_of(job.level);
    const Index prev_tokens = job.tokens_done;
    bool finished;
    double slice;
    if (opts.chunk_quantum_tokens > 0 && job.req.prompt_tokens > 0) {
      const Index target_tokens =
          std::min(job.req.prompt_tokens, job.tokens_done + opts.chunk_quantum_tokens);
      const double target_cost = prefix_cost(engine, target_tokens, scale);
      slice = std::max(0.0, target_cost - job.cost_done);
      job.tokens_done = target_tokens;
      job.cost_done = target_cost;
      finished = job.tokens_done >= job.req.prompt_tokens;
    } else {
      slice = prefix_cost(engine, job.req.prompt_tokens, scale);
      finished = true;
    }
    const double base_slice = slice;
    if (opts.stall_rate > 0.0 && rng.uniform() < opts.stall_rate) {
      slice *= opts.stall_factor;
      job.guard += slice - base_slice;  // stall excess is guardrail time
      ++result.stalls;
      SATTN_COUNTER_ADD("sched.chunk_stalls", 1);
    }
    now += slice;
    job.compute += base_slice;
    admit_until(now);

    if (!finished) {
      // Reactive mid-stream escalation: a measured slice (stall, earlier
      // retry) can reveal that the first-service projection was optimistic.
      // When the remaining work at the current level can no longer meet the
      // target, take the next rung — and re-bill the chunk that was in
      // flight when the ladder fired: it was planned under the abandoned
      // density budget and is redone at the new level, so its time is
      // guardrail overhead, not service compute. Billing it as compute
      // would break queue + compute + guard == ttft the moment measured
      // times replace modeled ones (the redone chunk's compute would be
      // counted twice).
      const double slo_target = opts.slo_ttft_seconds > 0.0   ? opts.slo_ttft_seconds
                                : opts.deadline_seconds > 0.0 ? opts.deadline_seconds
                                                              : 0.0;
      if (slo_target > 0.0 && job.level + 1 < levels) {
        const double remaining =
            prefix_cost(engine, job.req.prompt_tokens, scale) - job.cost_done;
        if ((now - job.req.arrival_seconds) + remaining > slo_target &&
            engine.prefill_seconds(job.req.prompt_tokens, scale_of(job.level + 1)) <
                engine.prefill_seconds(job.req.prompt_tokens, scale)) {
          ++job.level;
          job.compute -= base_slice;
          job.guard += base_slice;
          job.tokens_done = prev_tokens;
          job.cost_done = prefix_cost(engine, prev_tokens, scale_of(job.level));
          SATTN_COUNTER_ADD("sched.midstream_escalations", 1);
        }
      }
      queue.push_back(job);  // round-robin
      SATTN_COUNTER_ADD("sched.preemptions", 1);
      continue;
    }
    if (opts.fault_rate > 0.0 && rng.uniform() < opts.fault_rate) {
      // Transient failure: the attempt's work is lost.
      if (job.attempts > opts.max_retries) {
        SATTN_COUNTER_ADD("sched.retry_exhausted_sheds", 1);
        shed(std::move(job.req), "retries_exhausted", now);
        continue;
      }
      ++result.retries;
      SATTN_COUNTER_ADD("sched.request_retries", 1);
      const double backoff =
          opts.retry_backoff_seconds * static_cast<double>(1 << (job.attempts - 1));
      job.available_at = now + backoff;
      // The whole attempt's useful time is lost, and the backoff gate is
      // guardrail-imposed waiting.
      job.guard += job.compute + backoff;
      job.compute = 0.0;
      ++job.attempts;
      job.tokens_done = 0;
      job.cost_done = 0.0;
      queue.push_back(job);
      continue;
    }
    const double ttft = now - job.req.arrival_seconds;
    if (opts.deadline_seconds > 0.0 && ttft > opts.deadline_seconds) {
      // Finished late (stalls/retries ate the margin): counts as a
      // deadline violation, not a serve.
      SATTN_COUNTER_ADD("sched.deadline_sheds", 1);
      shed(std::move(job.req), "deadline", now);
      continue;
    }
    if (job.level > 0) {
      ++result.degraded;
      SATTN_COUNTER_ADD("sched.requests_degraded", 1);
    }
    ++result.served_per_level[static_cast<std::size_t>(job.level)];
    SATTN_SERIES("sched.queue_depth", now, queue.size());
    CompletedRequest c{std::move(job.req), job.start, now, job.level, job.attempts};
    c.compute_seconds = job.compute;
    c.guard_seconds = job.guard;
    c.queue_seconds = c.ttft() - c.compute_seconds - c.guard_seconds;
    emit_request_metrics(opts.run_label, c);
    result.completed.push_back(std::move(c));
    SATTN_COUNTER_ADD("sched.requests_completed", 1);
  }
  return result;
}

ServingSummary summarize(std::span<const CompletedRequest> completed) {
  ServingSummary s;
  if (completed.empty()) return s;
  std::vector<double> ttfts;
  ttfts.reserve(completed.size());
  for (const CompletedRequest& c : completed) {
    ttfts.push_back(c.ttft());
    s.mean_ttft += c.ttft();
    s.max_ttft = std::max(s.max_ttft, c.ttft());
    s.mean_queueing += c.queueing();
    s.makespan = std::max(s.makespan, c.finish_seconds);
  }
  s.mean_ttft /= static_cast<double>(completed.size());
  s.mean_queueing /= static_cast<double>(completed.size());
  std::sort(ttfts.begin(), ttfts.end());
  s.p50_ttft = obs::percentile_nearest_rank(ttfts, 0.50);
  s.p99_ttft = obs::percentile_nearest_rank(ttfts, 0.99);
  return s;
}

StatusOr<std::vector<ServingRequest>> synthetic_trace(Index count, Index min_tokens,
                                                      Index max_tokens,
                                                      double mean_interarrival_seconds,
                                                      std::uint64_t seed) {
  SATTN_CHECK(count > 0, kInvalidArgument, "trace count must be > 0, got ", count);
  SATTN_CHECK(min_tokens > 0 && max_tokens >= min_tokens, kInvalidArgument,
              "token range invalid: [", min_tokens, ", ", max_tokens, "]");
  SATTN_CHECK(mean_interarrival_seconds >= 0.0, kInvalidArgument,
              "mean inter-arrival must be >= 0, got ", mean_interarrival_seconds);
  Rng rng(seed);
  std::vector<ServingRequest> trace;
  double t = 0.0;
  const double lo = std::log(static_cast<double>(min_tokens));
  const double hi = std::log(static_cast<double>(max_tokens));
  for (Index r = 0; r < count; ++r) {
    ServingRequest req;
    req.id = "req-" + std::to_string(r);
    req.prompt_tokens = static_cast<Index>(std::llround(std::exp(rng.uniform(lo, hi))));
    // Exponential inter-arrivals.
    t += -mean_interarrival_seconds * std::log(std::max(1e-12, rng.uniform()));
    req.arrival_seconds = t;
    trace.push_back(std::move(req));
  }
  return trace;
}

}  // namespace sattn
