// Ragged-sequence batched attention: the kernel API under continuous
// batching (docs/SERVING.md).
//
// A serving iteration holds a live batch of requests in different phases —
// one is prefilling rows [512, 768) of a 4K prompt, another is decoding its
// 37th token, a third just arrived. Their (Q, K, V) extents all differ, so
// the batch is *ragged*: RaggedBatchView is a list of per-request views
// (query span, mk::KvView over keys/values, causal limit), and
// ragged_attention_sweep services all of them in one parallel pass —
// sequences run concurrently on the pool, while each sequence's tiles go
// through the same mk::absorb_key_tile register blocks as the
// single-request kernels. Per-request obs attribution is preserved: each
// sequence executes under its own obs::RequestContext and charges its own
// acct.* FLOP/byte tallies, and the sweep returns each sequence's measured
// wall time so the engine (runtime/engine.h) can bill TTFT compute
// per batch element.
//
// Three routes cover the repo's kernel lineup:
//   * kDense       — exact attention via flash_rows over raw spans
//                    (zero-copy; serves dense prefill chunks and decode
//                    steps straight out of a KVCache's flat storage);
//   * kSparse      — sparse_flash_attention over a planned StructuredMask
//                    (SampleAttention's Stage-2 under chunked prefill);
//   * kBlockSparse — block_sparse_attention over a BlockSparseLayout.
// The sparse routes take tensor-shaped inputs because mask planning already
// materialized them; the dense route needs none of that.
//
// Parity contract (pinned in tests/engine_test.cpp): for every route, the
// batched output is bit-identical to running the per-request kernel on each
// sequence alone. The sweep introduces no new arithmetic — only scheduling.
//
// form_step is the deterministic batch-formation policy the engine uses:
// a pure function from a snapshot of live requests to the step's work list,
// so tests can pin its behavior without threads.
#pragma once

#include <string>
#include <vector>

#include "attention/block_sparse.h"
#include "attention/flash_attention.h"
#include "attention/microkernel.h"
#include "attention/sparse_flash_attention.h"
#include "core/tensor.h"
#include "obs/audit.h"

namespace sattn {

enum class SeqRoute { kDense, kSparse, kBlockSparse };

// One sequence's attention work for this iteration. Non-owning throughout:
// every pointer aliases caller-owned storage that must outlive the sweep.
struct RaggedSeq {
  std::string request_id;  // obs attribution; empty skips the RequestContext
  // Optional per-sequence span label (a stable literal such as
  // "seq/prefill_chunk" or "seq/decode_step"). Opened inside the sequence's
  // RequestContext, so the Chrome exporter can give every request its own
  // lane of chunk/step spans. Null skips the span.
  const char* span_name = nullptr;
  SeqRoute route = SeqRoute::kDense;

  // kDense: flash sweep over raw spans. Row r of `q` attends keys
  // [0, min(k_hi, r + causal_off + 1)) of `kv`; normalized outputs land at
  // out + r*kv.d (contiguous).
  const float* q = nullptr;  // rows x kv.d, contiguous
  Index rows = 0;
  mk::KvView kv;
  Index k_hi = 0;
  Index causal_off = 0;
  float* out = nullptr;

  // kSparse / kBlockSparse: the structured kernels run either the tensor
  // form (`chunk` + mask/layout, as materialized by mask planning) or —
  // when `chunk` is null — the view form over the dense-route fields
  // (q/rows/kv/k_hi), which reads keys and values straight through a paged
  // KVCache view. `out_mat` receives the kernel output ([rows x d]).
  const AttentionInput* chunk = nullptr;
  const StructuredMask* mask = nullptr;
  const BlockSparseLayout* layout = nullptr;
  Matrix* out_mat = nullptr;

  // Shadow quality audit (obs/audit.h). When non-null and the sequence runs
  // the sparse route, the sweep scores the deployed `mask` against
  // ground-truth softmax rows for the auditor's sampled subset of this
  // chunk's rows, after the kernel timing window closes — audit wall time
  // lands in SeqCost.audit.seconds, never in SeqCost.seconds, so measured
  // compute stays honest and the engine can bill the audit to guard time.
  obs::QualityAuditor* auditor = nullptr;
  Index audit_q_lo = 0;          // absolute row of chunk-local row 0
  long long audit_layer = 0;     // scorecard attribution
  long long audit_head = 0;
  double audit_predicted = 1.0;  // planner's CRA claim (SamplePlan coverage)
};

struct RaggedBatchView {
  std::vector<RaggedSeq> seqs;
  FlashConfig flash;  // tiling for the dense route
};

// Measured per-sequence cost of one sweep. Wall times are disjoint per
// sequence (each sequence is a single work item), so the engine can sum
// them into per-request compute buckets without double counting.
struct SeqCost {
  double seconds = 0.0;
  double evals = 0.0;  // causal score evaluations (dense route; sparse
                       // routes charge acct.* internally and report 0 here)
  obs::AuditResult audit;  // shadow-audit outcome (rows = 0 when not audited)
};

// Runs every sequence of the batch, in parallel across the global pool.
// Returns costs indexed like batch.seqs.
std::vector<SeqCost> ragged_attention_sweep(const RaggedBatchView& batch);

// ---------------------------------------------------------------------------
// Deterministic batch formation.

// A request's scheduling state as the engine loop sees it at the top of an
// iteration.
struct SlotSnapshot {
  std::string id;
  Index admit_seq = 0;         // admission sequence number (engine-assigned)
  bool decoding = false;       // prefill complete, producing tokens
  Index prompt_tokens = 0;
  Index prefilled_tokens = 0;  // query rows already processed
};

struct StepItem {
  std::string id;
  bool decode = false;
  Index q_lo = 0, q_hi = 0;  // prefill rows this step; unused when decode
};

struct StepPlanConfig {
  Index max_batch = 8;       // live requests serviced per iteration
  Index chunk_tokens = 256;  // prefill rows per request per iteration
};

// Continuous-batching step formation: FCFS by admission order, up to
// max_batch slots per iteration; each decoding request contributes one
// token step, each prefilling request one chunk of at most chunk_tokens
// rows. Pure and deterministic — the result depends only on the snapshot
// contents, not on their order in `slots` (engine_test pins this).
std::vector<StepItem> form_step(std::vector<SlotSnapshot> slots, const StepPlanConfig& cfg);

}  // namespace sattn
