#include "runtime/decode.h"

#include <algorithm>
#include <cmath>

#include "core/numerics.h"
#include "obs/accounting.h"
#include "obs/trace.h"
#include "robust/validate.h"

namespace sattn {

Status decode_attention(std::span<const float> q_row, const KVCache& cache,
                        std::span<float> out_row, std::vector<float>* weights) {
  SATTN_SPAN("kernel/decode");
  const Index d = cache.head_dim();
  SATTN_CHECK(static_cast<Index>(q_row.size()) == d, kInvalidArgument, "decode q_row has ",
              q_row.size(), " entries, cache head_dim is ", d);
  SATTN_CHECK(static_cast<Index>(out_row.size()) == d, kInvalidArgument, "decode out_row has ",
              out_row.size(), " entries, cache head_dim is ", d);
  SATTN_CHECK(all_finite(q_row), kDataCorruption, "non-finite value in decode query row");
  SATTN_COUNTER_ADD("runtime.decode_tokens", 1);
  SATTN_COUNTER_ADD("kv_cache.rows_read", cache.size());
  std::fill(out_row.begin(), out_row.end(), 0.0f);
  const Index n = cache.size();
  if (n == 0) {
    if (weights != nullptr) weights->clear();
    return Status::Ok();
  }
  const float scale = 1.0f / std::sqrt(static_cast<float>(d));
  std::vector<float> logits(static_cast<std::size_t>(n));
  for (Index s = 0; s < n; ++s) logits[static_cast<std::size_t>(s)] = scale * dot(q_row, cache.k(s));
  softmax_inplace(logits);
  for (Index s = 0; s < n; ++s) {
    const float p = logits[static_cast<std::size_t>(s)];
    if (p != 0.0f) axpy(p, cache.v(s), out_row);
  }
  if (weights != nullptr) *weights = std::move(logits);
  // One decode step is a 1 x n attention row over the cache.
  obs::charge_attention_kernel("decode", /*sq=*/1, /*sk=*/n, d, static_cast<double>(n));
  return Status::Ok();
}

double audited_decode_retained_mass(std::span<const float> weights,
                                    std::span<const Index> stripe_columns, Index window_cols) {
  const Index n = static_cast<Index>(weights.size());
  if (n == 0) return 1.0;
  const Index win_lo = std::max<Index>(0, n - std::max<Index>(window_cols, 0));
  double mass = 0.0;
  for (Index c = win_lo; c < n; ++c) mass += static_cast<double>(weights[static_cast<std::size_t>(c)]);
  // Stripes inside the window are already counted; Index sets from
  // StructuredMask::stripe_columns() are deduped, but guard anyway so a
  // hand-built column list cannot overcount.
  Index prev = -1;
  for (const Index c : stripe_columns) {
    if (c >= 0 && c < win_lo && c != prev) {
      mass += static_cast<double>(weights[static_cast<std::size_t>(c)]);
    }
    prev = c;
  }
  obs::charge_attention_kernel("audit", /*sq=*/1, /*sk=*/n, /*head_dim=*/0,
                               static_cast<double>(n));
  return std::clamp(mass, 0.0, 1.0);
}

}  // namespace sattn
