#include "runtime/chunked_prefill.h"

#include <algorithm>
#include <memory>

#include "attention/flash_attention.h"
#include "obs/accounting.h"
#include "obs/trace.h"

namespace sattn {
namespace {

// Copies the chunk's queries and the key prefix [0, k_hi) into a standalone
// AttentionInput whose causal offset (sk - sq) reproduces the original
// causal structure for those rows.
AttentionInput make_chunk(const AttentionInput& in, Index q_lo, Index q_hi, Index k_hi) {
  const Index d = in.head_dim();
  AttentionInput chunk;
  chunk.q.resize(q_hi - q_lo, d);
  chunk.k.resize(k_hi, d);
  chunk.v.resize(k_hi, d);
  for (Index i = q_lo; i < q_hi; ++i) {
    auto src = in.q.row(i);
    auto dst = chunk.q.row(i - q_lo);
    std::copy(src.begin(), src.end(), dst.begin());
  }
  for (Index j = 0; j < k_hi; ++j) {
    auto ks = in.k.row(j);
    auto kd = chunk.k.row(j);
    std::copy(ks.begin(), ks.end(), kd.begin());
    auto vs = in.v.row(j);
    auto vd = chunk.v.row(j);
    std::copy(vs.begin(), vs.end(), vd.begin());
  }
  return chunk;
}

template <typename RunChunk>
StatusOr<ChunkedPrefillResult> run_chunked(const AttentionInput& in, Index chunk_size,
                                           KVCache* cache, const std::string& request_id,
                                           RunChunk run_chunk) {
  const Index sq = in.sq(), d = in.head_dim();
  SATTN_CHECK(in.sq() == in.sk(), kInvalidArgument,
              "chunked prefill expects a standard prefill shape, got Sq=", in.sq(),
              " Sk=", in.sk());
  SATTN_CHECK(chunk_size > 0, kInvalidArgument, "chunk_size must be > 0, got ", chunk_size);
  SATTN_CHECK(cache == nullptr || cache->head_dim() == d, kInvalidArgument,
              "cache head_dim ", cache == nullptr ? 0 : cache->head_dim(),
              " does not match input head_dim ", d);
  SATTN_SPAN("runtime/chunked_prefill");
  std::unique_ptr<obs::RequestContext> request;
  std::unique_ptr<obs::ScopedSpan> request_span;
  if (!request_id.empty() && obs::enabled()) {
    request = std::make_unique<obs::RequestContext>(request_id);
    request_span = std::make_unique<obs::ScopedSpan>("request/" + request_id);
  }
  ChunkedPrefillResult res;
  res.out.resize(sq, d);
  // Prefix cache: attach any published leading pages before computing —
  // their outputs come straight from the index, so the loop below starts
  // past them (a fully shared prompt computes nothing at all).
  if (cache != nullptr && cache->empty()) {
    res.prefix_hit_tokens = cache->try_attach_prefix(in, sq, &res.out);
  }
  double density_sum = 0.0;
  for (Index q_lo = res.prefix_hit_tokens; q_lo < sq; q_lo += chunk_size) {
    SATTN_SPAN("runtime/prefill_chunk");
    SATTN_COUNTER_ADD("runtime.prefill_chunks", 1);
    const Index q_hi = std::min(sq, q_lo + chunk_size);
    const AttentionInput chunk = make_chunk(in, q_lo, q_hi, q_hi);
    Matrix chunk_out;
    density_sum += run_chunk(chunk, chunk_out);
    for (Index i = q_lo; i < q_hi; ++i) {
      auto src = chunk_out.row(i - q_lo);
      auto dst = res.out.row(i);
      std::copy(src.begin(), src.end(), dst.begin());
    }
    if (cache != nullptr) {
      for (Index j = q_lo; j < q_hi; ++j) {
        SATTN_RETURN_IF_ERROR(cache->append(j, in.k.row(j), in.v.row(j)));
      }
    }
    ++res.chunks;
  }
  res.mean_density = res.chunks > 0 ? density_sum / res.chunks : 1.0;
  if (cache != nullptr) cache->publish_prefix(in, res.out);
  return res;
}

}  // namespace

StatusOr<ChunkedPrefillResult> chunked_flash_prefill(const AttentionInput& in, Index chunk_size,
                                                     KVCache* cache,
                                                     const std::string& request_id) {
  return run_chunked(in, chunk_size, cache, request_id,
                     [](const AttentionInput& chunk, Matrix& out) {
                       flash_attention(chunk, out);
                       return 1.0;
                     });
}

StatusOr<ChunkedPrefillResult> chunked_sample_prefill(const AttentionInput& in, Index chunk_size,
                                                      const SampleAttentionConfig& cfg,
                                                      KVCache* cache,
                                                      const std::string& request_id) {
  return run_chunked(in, chunk_size, cache, request_id,
                     [&cfg](const AttentionInput& chunk, Matrix& out) {
                       SamplePlan plan;
                       sample_attention(chunk, cfg, out, &plan);
                       return plan.density;
                     });
}

}  // namespace sattn
