#include "runtime/kv_page.h"

#include <cassert>
#include <cstring>

#include "obs/trace.h"

namespace sattn {

namespace {

bool is_pow2(Index v) { return v > 0 && (v & (v - 1)) == 0; }

Index log2_of(Index v) {
  Index s = 0;
  while ((Index{1} << s) < v) ++s;
  return s;
}

std::uint64_t fnv1a(std::uint64_t h, const void* data, std::size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    h ^= static_cast<std::uint64_t>(p[i]);
    h *= 0x100000001b3ull;
  }
  return h;
}

}  // namespace

KvPageArena::KvPageArena(Index head_dim, Index page_tokens)
    : d_(head_dim), page_tokens_(page_tokens) {
  assert(head_dim > 0);
  assert(is_pow2(page_tokens) && "page_tokens must be a power of two");
  shift_ = log2_of(page_tokens_);
}

KvPageArena::PageRef KvPageArena::alloc() {
  std::lock_guard lk(mu_);
  const std::size_t floats = static_cast<std::size_t>(page_tokens_) * static_cast<std::size_t>(d_);
  Index id;
  if (!free_.empty()) {
    id = free_.back();
    free_.pop_back();
  } else {
    id = static_cast<Index>(pages_.size());
    Page p;
    p.k = std::make_unique<float[]>(floats);
    p.v = std::make_unique<float[]>(floats);
    pages_.push_back(std::move(p));
  }
  Page& p = pages_[static_cast<std::size_t>(id)];
  assert(p.refs == 0 && !p.published);
  p.refs = 1;
  ++live_;
  ++allocs_;
  SATTN_COUNTER_ADD("kv_cache.pages_allocated", 1);
  return {id, p.k.get(), p.v.get()};
}

void KvPageArena::retain(Index page) {
  std::lock_guard lk(mu_);
  assert(page >= 0 && static_cast<std::size_t>(page) < pages_.size());
  Page& p = pages_[static_cast<std::size_t>(page)];
  assert(p.refs > 0 && "retain of a freed page");
  ++p.refs;
}

void KvPageArena::release(Index page) {
  std::lock_guard lk(mu_);
  assert(page >= 0 && static_cast<std::size_t>(page) < pages_.size());
  Page& p = pages_[static_cast<std::size_t>(page)];
  assert(p.refs > 0 && "double free of a KV page");
  if (--p.refs == 0) {
    assert(!p.published && "the prefix index's reference keeps published pages live");
    p.published = false;
    free_.push_back(page);
    --live_;
    ++frees_;
    SATTN_COUNTER_ADD("kv_cache.pages_freed", 1);
  }
}

int KvPageArena::refcount(Index page) const {
  std::lock_guard lk(mu_);
  assert(page >= 0 && static_cast<std::size_t>(page) < pages_.size());
  return pages_[static_cast<std::size_t>(page)].refs;
}

bool KvPageArena::is_published(Index page) const {
  std::lock_guard lk(mu_);
  assert(page >= 0 && static_cast<std::size_t>(page) < pages_.size());
  return pages_[static_cast<std::size_t>(page)].published;
}

int KvPageArena::owner_count(Index page) const {
  std::lock_guard lk(mu_);
  assert(page >= 0 && static_cast<std::size_t>(page) < pages_.size());
  const Page& p = pages_[static_cast<std::size_t>(page)];
  return p.refs - (p.published ? 1 : 0);
}

Index KvPageArena::pages_live() const {
  std::lock_guard lk(mu_);
  return live_;
}

long long KvPageArena::pages_allocated() const {
  std::lock_guard lk(mu_);
  return allocs_;
}

long long KvPageArena::pages_freed() const {
  std::lock_guard lk(mu_);
  return frees_;
}

double KvPageArena::bytes_live() const {
  std::lock_guard lk(mu_);
  return static_cast<double>(live_) * page_bytes();
}

bool KvPageArena::prefix_publish(std::uint64_t chain_hash, Index page, const float* out_rows) {
  const std::size_t floats = static_cast<std::size_t>(page_tokens_) * static_cast<std::size_t>(d_);
  std::lock_guard lk(mu_);
  assert(page >= 0 && static_cast<std::size_t>(page) < pages_.size());
  if (prefix_.count(chain_hash) != 0) return false;  // first publisher wins
  Page& p = pages_[static_cast<std::size_t>(page)];
  assert(p.refs > 0);
  assert(!p.published && "a page backs at most one prefix entry");
  p.published = true;
  ++p.refs;  // the index's hold
  PrefixEntry e;
  e.page = page;
  e.out_rows.assign(out_rows, out_rows + floats);
  prefix_.emplace(chain_hash, std::move(e));
  SATTN_COUNTER_ADD("kv_cache.prefix_published", 1);
  return true;
}

KvPageArena::PageRef KvPageArena::prefix_lookup(std::uint64_t chain_hash, const float* k_expect,
                                                const float* v_expect, float* out_rows) {
  const std::size_t floats = static_cast<std::size_t>(page_tokens_) * static_cast<std::size_t>(d_);
  std::lock_guard lk(mu_);
  const auto it = prefix_.find(chain_hash);
  if (it == prefix_.end()) {
    SATTN_COUNTER_ADD("kv_cache.prefix_misses", 1);
    return {};
  }
  Page& p = pages_[static_cast<std::size_t>(it->second.page)];
  // Collision safety: the stored K/V payload must be byte-identical to what
  // the caller is about to rely on.
  if (std::memcmp(p.k.get(), k_expect, floats * sizeof(float)) != 0 ||
      std::memcmp(p.v.get(), v_expect, floats * sizeof(float)) != 0) {
    SATTN_COUNTER_ADD("kv_cache.prefix_misses", 1);
    return {};
  }
  ++p.refs;  // caller's hold
  std::memcpy(out_rows, it->second.out_rows.data(), it->second.out_rows.size() * sizeof(float));
  SATTN_COUNTER_ADD("kv_cache.prefix_hits", 1);
  return {it->second.page, p.k.get(), p.v.get()};
}

Index KvPageArena::prefix_entries() const {
  std::lock_guard lk(mu_);
  return static_cast<Index>(prefix_.size());
}

double KvPageArena::prefix_index_bytes() const {
  std::lock_guard lk(mu_);
  double bytes = 0.0;
  for (const auto& [hash, e] : prefix_) {
    (void)hash;
    bytes += static_cast<double>(e.out_rows.size()) * sizeof(float);
    const Page& p = pages_[static_cast<std::size_t>(e.page)];
    if (p.refs - 1 == 0) bytes += page_bytes();  // index-only pages
  }
  return bytes;
}

std::uint64_t prefix_chain_hash(std::uint64_t prev, const AttentionInput& in, Index lo, Index hi) {
  const std::size_t row_bytes = static_cast<std::size_t>(in.head_dim()) * sizeof(float);
  std::uint64_t h = prev;
  for (Index r = lo; r < hi; ++r) h = fnv1a(h, in.q.row(r).data(), row_bytes);
  for (Index r = lo; r < hi; ++r) h = fnv1a(h, in.k.row(r).data(), row_bytes);
  for (Index r = lo; r < hi; ++r) h = fnv1a(h, in.v.row(r).data(), row_bytes);
  return h;
}

}  // namespace sattn
