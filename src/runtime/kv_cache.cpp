#include "runtime/kv_cache.h"

#include <algorithm>
#include <cstring>

#include "obs/trace.h"

namespace sattn {

KVCache::KVCache(Index head_dim, std::shared_ptr<KvPageArena> arena)
    : d_(head_dim), arena_(std::move(arena)) {
  assert(head_dim > 0);
  if (arena_ == nullptr) arena_ = std::make_shared<KvPageArena>(head_dim);
  assert(arena_->head_dim() == d_ && "cache head_dim must match its arena");
  shift_ = arena_->page_shift();
  mask_ = arena_->page_mask();
}

KVCache::~KVCache() { release_all_pages(); }

KVCache& KVCache::operator=(KVCache&& other) noexcept {
  if (this != &other) {
    release_all_pages();
    d_ = other.d_;
    shift_ = other.shift_;
    mask_ = other.mask_;
    arena_ = std::move(other.arena_);
    pages_ = std::move(other.pages_);
    k_ptrs_ = std::move(other.k_ptrs_);
    v_ptrs_ = std::move(other.v_ptrs_);
    shared_pages_ = other.shared_pages_;
    positions_ = std::move(other.positions_);
    other.shared_pages_ = 0;
  }
  return *this;
}

void KVCache::push_page(const KvPageArena::PageRef& ref) {
  pages_.push_back(ref.id);
  k_ptrs_.push_back(ref.k);
  v_ptrs_.push_back(ref.v);
}

void KVCache::release_all_pages() {
  if (arena_ == nullptr) return;  // moved-from
  for (const Index id : pages_) arena_->release(id);
  pages_.clear();
  k_ptrs_.clear();
  v_ptrs_.clear();
  shared_pages_ = 0;
}

double KVCache::bytes() const {
  const double page_bytes = arena_->page_bytes();
  double total = 0.0;
  for (std::size_t pi = 0; pi < pages_.size(); ++pi) {
    if (static_cast<Index>(pi) < shared_pages_) {
      const int owners = arena_->owner_count(pages_[pi]);
      total += page_bytes / static_cast<double>(std::max(owners, 1));
    } else {
      total += page_bytes;  // private page: sole owner by construction
    }
  }
  return total;
}

mk::KvView KVCache::view() const {
  mk::KvView v;
  v.d = d_;
  v.k_pages = k_ptrs_.data();
  v.v_pages = v_ptrs_.data();
  v.page_shift = shift_;
  v.page_mask = mask_;
  return v;
}

Status KVCache::append(Index pos, std::span<const float> k_row, std::span<const float> v_row) {
  SATTN_CHECK(static_cast<Index>(k_row.size()) == d_ && static_cast<Index>(v_row.size()) == d_,
              kInvalidArgument, "KV row dim mismatch: cache head_dim=", d_, ", k_row=",
              k_row.size(), ", v_row=", v_row.size());
  SATTN_CHECK(positions_.empty() || pos > positions_.back(), kFailedPrecondition,
              "KV append position ", pos, " breaks position monotonicity (last appended position ",
              positions_.empty() ? -1 : positions_.back(), ")");
  const Index slot = size();
  const Index pi = slot >> shift_;
  if (pi == static_cast<Index>(pages_.size())) push_page(arena_->alloc());
  assert(pi < static_cast<Index>(pages_.size()));
  assert(pi >= shared_pages_ && "appends must land after the shared prefix (shared pages are full)");
  const std::size_t off = static_cast<std::size_t>(slot & mask_) * static_cast<std::size_t>(d_);
  std::copy(k_row.begin(), k_row.end(), k_ptrs_[static_cast<std::size_t>(pi)] + off);
  std::copy(v_row.begin(), v_row.end(), v_ptrs_[static_cast<std::size_t>(pi)] + off);
  positions_.push_back(pos);
  SATTN_COUNTER_ADD("kv_cache.appended_rows", 1);
  return Status::Ok();
}

Status KVCache::append_prefill(const AttentionInput& in) {
  SATTN_CHECK(in.head_dim() == d_, kInvalidArgument, "prefill head_dim ", in.head_dim(),
              " does not match cache head_dim ", d_);
  SATTN_CHECK(in.k.rows() == in.v.rows(), kInvalidArgument, "prefill K has ", in.k.rows(),
              " rows but V has ", in.v.rows());
  // The attach/append lifecycle: the cache holds exactly positions
  // [0, size()) — an attached prefix or a previous partial fill — and this
  // call appends the remaining suffix.
  SATTN_CHECK(positions_.empty() || positions_.back() == size() - 1, kFailedPrecondition,
              "append_prefill needs a dense position prefix, cache ends at position ",
              positions_.empty() ? -1 : positions_.back(), " with ", size(), " slots");
  for (Index j = size(); j < in.sk(); ++j) {
    SATTN_RETURN_IF_ERROR(append(j, in.k.row(j), in.v.row(j)));
  }
  return Status::Ok();
}

Index KVCache::slot_of(Index pos) const {
  const auto it = std::lower_bound(positions_.begin(), positions_.end(), pos);
  if (it == positions_.end() || *it != pos) {
    SATTN_COUNTER_ADD("kv_cache.lookup_misses", 1);
    return -1;
  }
  SATTN_COUNTER_ADD("kv_cache.lookup_hits", 1);
  return static_cast<Index>(it - positions_.begin());
}

Status KVCache::keep_slots(std::span<const Index> sorted_slots) {
  // Validate the whole list before touching any storage so a rejected call
  // leaves the cache untouched.
  Index prev = -1;
  for (Index slot : sorted_slots) {
    SATTN_CHECK(slot > prev, kInvalidArgument, "keep_slots list not strictly ascending at slot ",
                slot, " after ", prev);
    SATTN_CHECK(slot < size(), kOutOfRange, "keep_slots slot ", slot,
                " out of range for cache of size ", size());
    prev = slot;
  }
  SATTN_COUNTER_ADD("kv_cache.evicted_rows",
                    size() - static_cast<Index>(sorted_slots.size()));
  // Copy-on-write compaction: survivors are rewritten into fresh private
  // pages, then every old page — shared prefix pages included — is
  // released. Whole pages go back to the arena's freelist; a shared image
  // other caches still reference is never written.
  std::vector<Index> old_pages = std::move(pages_);
  std::vector<float*> old_k = std::move(k_ptrs_);
  std::vector<float*> old_v = std::move(v_ptrs_);
  pages_.clear();
  k_ptrs_.clear();
  v_ptrs_.clear();
  shared_pages_ = 0;
  std::vector<Index> npos;
  npos.reserve(sorted_slots.size());
  const std::size_t row = static_cast<std::size_t>(d_);
  Index slot_out = 0;
  for (Index slot : sorted_slots) {
    const Index pi = slot_out >> shift_;
    if (pi == static_cast<Index>(pages_.size())) push_page(arena_->alloc());
    const std::size_t dst = static_cast<std::size_t>(slot_out & mask_) * row;
    const std::size_t spi = static_cast<std::size_t>(slot >> shift_);
    const std::size_t src = static_cast<std::size_t>(slot & mask_) * row;
    std::memcpy(k_ptrs_[static_cast<std::size_t>(pi)] + dst, old_k[spi] + src,
                row * sizeof(float));
    std::memcpy(v_ptrs_[static_cast<std::size_t>(pi)] + dst, old_v[spi] + src,
                row * sizeof(float));
    npos.push_back(positions_[static_cast<std::size_t>(slot)]);
    ++slot_out;
  }
  for (const Index id : old_pages) arena_->release(id);
  positions_ = std::move(npos);
  return Status::Ok();
}

Index KVCache::try_attach_prefix(const AttentionInput& in, Index max_tokens, Matrix* out) {
  assert(empty() && "prefix attach requires an empty cache");
  assert(in.head_dim() == d_);
  assert(out == nullptr || (out->rows() >= in.sq() && out->cols() == d_));
  const Index P = arena_->page_tokens();
  const Index limit = std::min(std::min(max_tokens, in.sk()), in.sq());
  std::uint64_t chain = kPrefixChainSeed;
  Index attached = 0;
  std::vector<float> k_expect(static_cast<std::size_t>(P) * static_cast<std::size_t>(d_));
  std::vector<float> v_expect(k_expect.size());
  std::vector<float> out_rows(k_expect.size());
  while (attached + P <= limit) {
    const Index lo = attached, hi = attached + P;
    chain = prefix_chain_hash(chain, in, lo, hi);
    const std::size_t row = static_cast<std::size_t>(d_) * sizeof(float);
    for (Index r = lo; r < hi; ++r) {
      std::memcpy(k_expect.data() + static_cast<std::size_t>(r - lo) * d_, in.k.row(r).data(), row);
      std::memcpy(v_expect.data() + static_cast<std::size_t>(r - lo) * d_, in.v.row(r).data(), row);
    }
    const KvPageArena::PageRef ref =
        arena_->prefix_lookup(chain, k_expect.data(), v_expect.data(), out_rows.data());
    if (ref.id < 0) break;
    push_page(ref);
    ++shared_pages_;
    if (out != nullptr) {
      for (Index r = lo; r < hi; ++r) {
        std::memcpy(out->row(r).data(), out_rows.data() + static_cast<std::size_t>(r - lo) * d_,
                    row);
      }
    }
    for (Index r = lo; r < hi; ++r) positions_.push_back(r);
    attached = hi;
  }
  if (attached > 0) SATTN_COUNTER_ADD("kv_cache.prefix_hit_tokens", attached);
  return attached;
}

Index KVCache::publish_prefix(const AttentionInput& in, const Matrix& out) {
  assert(in.head_dim() == d_ && out.cols() == d_);
  const Index P = arena_->page_tokens();
  // Only a dense position prefix is publishable: page p must hold exactly
  // tokens [p*P, (p+1)*P).
  Index dense = 0;
  while (dense < size() && positions_[static_cast<std::size_t>(dense)] == dense) ++dense;
  const Index full_pages = std::min(dense, std::min(in.sk(), out.rows())) >> shift_;
  std::uint64_t chain = kPrefixChainSeed;
  Index published = 0;
  for (Index pi = 0; pi < full_pages; ++pi) {
    const Index lo = pi * P, hi = lo + P;
    chain = prefix_chain_hash(chain, in, lo, hi);
    if (pi < shared_pages_) continue;  // attached pages are already published
    if (!arena_->prefix_publish(chain, pages_[static_cast<std::size_t>(pi)], out.row(lo).data())) {
      // Lost the publish race: another cache's image already backs this
      // chain (and therefore every longer chain). Our pages stay private
      // duplicates; later requests will hit the winner's image.
      break;
    }
    ++published;
    // Published pages are immutable and refcounted by the index; they now
    // count as this cache's shared prefix (appends land past them and
    // bytes() amortizes them across owners).
    assert(pi == shared_pages_);
    ++shared_pages_;
  }
  return published;
}

}  // namespace sattn
