#include "runtime/kv_cache.h"

#include <algorithm>

#include "obs/trace.h"

namespace sattn {

void KVCache::append(Index pos, std::span<const float> k_row, std::span<const float> v_row) {
  assert(static_cast<Index>(k_row.size()) == d_ && static_cast<Index>(v_row.size()) == d_);
  assert(positions_.empty() || pos > positions_.back());
  k_.insert(k_.end(), k_row.begin(), k_row.end());
  v_.insert(v_.end(), v_row.begin(), v_row.end());
  positions_.push_back(pos);
  SATTN_COUNTER_ADD("kv_cache.appended_rows", 1);
}

void KVCache::append_prefill(const AttentionInput& in) {
  assert(in.head_dim() == d_);
  for (Index j = 0; j < in.sk(); ++j) append(j, in.k.row(j), in.v.row(j));
}

Index KVCache::slot_of(Index pos) const {
  const auto it = std::lower_bound(positions_.begin(), positions_.end(), pos);
  if (it == positions_.end() || *it != pos) {
    SATTN_COUNTER_ADD("kv_cache.lookup_misses", 1);
    return -1;
  }
  SATTN_COUNTER_ADD("kv_cache.lookup_hits", 1);
  return static_cast<Index>(it - positions_.begin());
}

void KVCache::keep_slots(std::span<const Index> sorted_slots) {
  SATTN_COUNTER_ADD("kv_cache.evicted_rows",
                    size() - static_cast<Index>(sorted_slots.size()));
  std::vector<float> nk, nv;
  std::vector<Index> npos;
  nk.reserve(sorted_slots.size() * static_cast<std::size_t>(d_));
  nv.reserve(sorted_slots.size() * static_cast<std::size_t>(d_));
  npos.reserve(sorted_slots.size());
  Index prev = -1;
  for (Index slot : sorted_slots) {
    assert(slot > prev && slot < size());
    prev = slot;
    const auto kr = k(slot);
    const auto vr = v(slot);
    nk.insert(nk.end(), kr.begin(), kr.end());
    nv.insert(nv.end(), vr.begin(), vr.end());
    npos.push_back(positions_[static_cast<std::size_t>(slot)]);
  }
  k_ = std::move(nk);
  v_ = std::move(nv);
  positions_ = std::move(npos);
}

}  // namespace sattn
