#include "runtime/kv_cache.h"

#include <algorithm>

#include "obs/trace.h"

namespace sattn {

Status KVCache::append(Index pos, std::span<const float> k_row, std::span<const float> v_row) {
  SATTN_CHECK(static_cast<Index>(k_row.size()) == d_ && static_cast<Index>(v_row.size()) == d_,
              kInvalidArgument, "KV row dim mismatch: cache head_dim=", d_, ", k_row=",
              k_row.size(), ", v_row=", v_row.size());
  SATTN_CHECK(positions_.empty() || pos > positions_.back(), kFailedPrecondition,
              "KV append position ", pos, " breaks position monotonicity (last appended position ",
              positions_.empty() ? -1 : positions_.back(), ")");
  k_.insert(k_.end(), k_row.begin(), k_row.end());
  v_.insert(v_.end(), v_row.begin(), v_row.end());
  positions_.push_back(pos);
  SATTN_COUNTER_ADD("kv_cache.appended_rows", 1);
  return Status::Ok();
}

Status KVCache::append_prefill(const AttentionInput& in) {
  SATTN_CHECK(in.head_dim() == d_, kInvalidArgument, "prefill head_dim ", in.head_dim(),
              " does not match cache head_dim ", d_);
  SATTN_CHECK(in.k.rows() == in.v.rows(), kInvalidArgument, "prefill K has ", in.k.rows(),
              " rows but V has ", in.v.rows());
  for (Index j = 0; j < in.sk(); ++j) {
    SATTN_RETURN_IF_ERROR(append(j, in.k.row(j), in.v.row(j)));
  }
  return Status::Ok();
}

Index KVCache::slot_of(Index pos) const {
  const auto it = std::lower_bound(positions_.begin(), positions_.end(), pos);
  if (it == positions_.end() || *it != pos) {
    SATTN_COUNTER_ADD("kv_cache.lookup_misses", 1);
    return -1;
  }
  SATTN_COUNTER_ADD("kv_cache.lookup_hits", 1);
  return static_cast<Index>(it - positions_.begin());
}

Status KVCache::keep_slots(std::span<const Index> sorted_slots) {
  // Validate the whole list before touching any storage so a rejected call
  // leaves the cache untouched.
  Index prev = -1;
  for (Index slot : sorted_slots) {
    SATTN_CHECK(slot > prev, kInvalidArgument, "keep_slots list not strictly ascending at slot ",
                slot, " after ", prev);
    SATTN_CHECK(slot < size(), kOutOfRange, "keep_slots slot ", slot,
                " out of range for cache of size ", size());
    prev = slot;
  }
  SATTN_COUNTER_ADD("kv_cache.evicted_rows",
                    size() - static_cast<Index>(sorted_slots.size()));
  std::vector<float> nk, nv;
  std::vector<Index> npos;
  nk.reserve(sorted_slots.size() * static_cast<std::size_t>(d_));
  nv.reserve(sorted_slots.size() * static_cast<std::size_t>(d_));
  npos.reserve(sorted_slots.size());
  for (Index slot : sorted_slots) {
    const auto kr = k(slot);
    const auto vr = v(slot);
    nk.insert(nk.end(), kr.begin(), kr.end());
    nv.insert(nv.end(), vr.begin(), vr.end());
    npos.push_back(positions_[static_cast<std::size_t>(slot)]);
  }
  k_ = std::move(nk);
  v_ = std::move(nv);
  positions_ = std::move(npos);
  return Status::Ok();
}

}  // namespace sattn
