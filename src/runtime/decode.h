// Decode-phase attention: one new query against the KV cache.
//
// The paper leaves decode untouched (uncompressed cache, exact attention);
// these helpers provide that exact path plus the per-slot softmax weights
// that score-based eviction policies (H2O) need to observe.
#pragma once

#include <span>
#include <vector>

#include "core/status.h"
#include "runtime/kv_cache.h"

namespace sattn {

// Exact softmax attention of q_row over every cached slot. out_row must
// have cache.head_dim() entries (kInvalidArgument otherwise) and q_row must
// be finite (kDataCorruption — one corrupted decode token must not poison
// the output stream). If weights != nullptr it receives the per-slot
// attention probabilities (resized to cache.size()).
Status decode_attention(std::span<const float> q_row, const KVCache& cache,
                        std::span<float> out_row, std::vector<float>* weights = nullptr);

// Quality-audit helper (obs/audit.h): the retained softmax mass a decode
// row *would* keep under a window + stripes plan — the last `window_cols`
// cache slots plus every listed stripe column. Decode runs exact attention,
// so `weights` (from decode_attention) is already ground truth and the
// audit is a single pass over it: no extra kernel work. Used by the engine
// to extend the shadow audit into the decode phase, scoring the request's
// accepted plan structure against the weights the cache actually produced.
// Duplicate or out-of-range stripe columns are ignored; mass is clamped to
// [0, 1]. Charges the measured pass to acct.audit.*.
double audited_decode_retained_mass(std::span<const float> weights,
                                    std::span<const Index> stripe_columns, Index window_cols);

}  // namespace sattn
