// Decode-phase attention: one new query against the KV cache.
//
// The paper leaves decode untouched (uncompressed cache, exact attention);
// these helpers provide that exact path plus the per-slot softmax weights
// that score-based eviction policies (H2O) need to observe.
#pragma once

#include <span>
#include <vector>

#include "core/status.h"
#include "runtime/kv_cache.h"

namespace sattn {

// Exact softmax attention of q_row over every cached slot. out_row must
// have cache.head_dim() entries (kInvalidArgument otherwise) and q_row must
// be finite (kDataCorruption — one corrupted decode token must not poison
// the output stream). If weights != nullptr it receives the per-slot
// attention probabilities (resized to cache.size()).
Status decode_attention(std::span<const float> q_row, const KVCache& cache,
                        std::span<float> out_row, std::vector<float>* weights = nullptr);

}  // namespace sattn
