// KV-cache eviction policies for the decode phase.
//
// SampleAttention reduces prefill computation; these policies reduce decode
// memory — the two compose (Section 1: "orthogonal and can be combined with
// existing KV cache eviction approaches"). Implemented policies:
//
//   * H2OPolicy — Heavy-Hitter Oracle (Zhang et al., 2024): keep the tokens
//     with the largest accumulated attention scores plus the most recent
//     ones, evicting the rest once the cache exceeds its budget.
//   * SinkRecentPolicy — StreamingLLM-style: keep the first `sinks` tokens
//     and the most recent `recent` tokens unconditionally.
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "runtime/kv_cache.h"

namespace sattn {

class EvictionPolicy {
 public:
  virtual ~EvictionPolicy() = default;

  // Called after every decode step with the step's attention weights over
  // the current slots (same indexing as the cache).
  virtual void observe(const KVCache& cache, std::span<const float> weights) = 0;

  // Compacts the cache if it exceeds the policy's budget. Returns true if
  // anything was evicted.
  virtual bool enforce(KVCache& cache) = 0;
};

class H2OPolicy final : public EvictionPolicy {
 public:
  // budget: max slots kept after enforcement; recent: slots always kept
  // from the tail; the remainder goes to the heaviest hitters.
  H2OPolicy(Index budget, Index recent) : budget_(budget), recent_(recent) {
    assert(budget > 0 && recent >= 0 && recent < budget);
  }

  void observe(const KVCache& cache, std::span<const float> weights) override;
  bool enforce(KVCache& cache) override;

  // Accumulated score of the slot holding `pos`, or 0 if evicted.
  double accumulated_score(const KVCache& cache, Index pos) const;

 private:
  Index budget_;
  Index recent_;
  // Accumulated scores indexed by ORIGINAL POSITION (stable across
  // compactions); lazily grown.
  std::vector<double> score_by_pos_;
};

class SinkRecentPolicy final : public EvictionPolicy {
 public:
  SinkRecentPolicy(Index sinks, Index recent) : sinks_(sinks), recent_(recent) {
    assert(sinks >= 0 && recent > 0);
  }

  void observe(const KVCache&, std::span<const float>) override {}  // stateless
  bool enforce(KVCache& cache) override;

 private:
  Index sinks_;
  Index recent_;
};

// Policy selector for callers that wire eviction by configuration — the
// serving engine's memory-pressure rung (runtime/engine.h) picks one of
// these per decoding request.
enum class EvictionKind { kNone = 0, kSinkRecent, kH2O };

const char* eviction_kind_name(EvictionKind kind);

// Builds a policy that retains at most `keep_budget` slots with the
// `recent` most recent always kept (keep_budget > recent > 0): SinkRecent
// keeps the first keep_budget - recent positions as sinks, H2O fills the
// non-recent budget with the heaviest hitters it observed. kNone returns
// nullptr.
std::unique_ptr<EvictionPolicy> make_eviction_policy(EvictionKind kind, Index keep_budget,
                                                     Index recent);

// Plan-structure residency: compacts a freshly prefilled cache to the slots
// a decoding head will still read under an accepted structured plan — the
// plan's stripe columns plus the trailing `window` slots (the local band's
// reach at the decode row). Unlike the pressure rungs above this is driven
// by the Stage-2 mask, not by a byte budget: pages whose every token is
// outside the retained structure are freed back to the arena, so
// pages_live tracks the mask's retained fraction instead of the dense
// footprint (the engine's kv_sparse_residency mode). `stripe_columns` must
// be ascending original positions. Returns the number of slots dropped.
Index apply_mask_residency(KVCache& cache, std::span<const Index> stripe_columns, Index window);

}  // namespace sattn
