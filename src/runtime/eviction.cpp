#include "runtime/eviction.h"

#include <algorithm>

#include "core/numerics.h"
#include "obs/trace.h"

namespace sattn {

void H2OPolicy::observe(const KVCache& cache, std::span<const float> weights) {
  assert(static_cast<Index>(weights.size()) == cache.size());
  for (Index s = 0; s < cache.size(); ++s) {
    const Index pos = cache.position(s);
    if (static_cast<std::size_t>(pos) >= score_by_pos_.size()) {
      score_by_pos_.resize(static_cast<std::size_t>(pos) + 1, 0.0);
    }
    score_by_pos_[static_cast<std::size_t>(pos)] += weights[static_cast<std::size_t>(s)];
  }
}

bool H2OPolicy::enforce(KVCache& cache) {
  const Index n = cache.size();
  if (n <= budget_) return false;
  SATTN_SPAN("runtime/eviction");
  SATTN_COUNTER_ADD("kv_cache.eviction_passes", 1);
  const Index n_recent = std::min(recent_, n);
  const Index n_heavy = budget_ - n_recent;

  // Rank the non-recent slots by accumulated score.
  std::vector<float> scores(static_cast<std::size_t>(n - n_recent));
  for (Index s = 0; s < n - n_recent; ++s) {
    const Index pos = cache.position(s);
    scores[static_cast<std::size_t>(s)] =
        static_cast<std::size_t>(pos) < score_by_pos_.size()
            ? static_cast<float>(score_by_pos_[static_cast<std::size_t>(pos)])
            : 0.0f;
  }
  std::vector<Index> keep = topk_indices(scores, n_heavy);
  for (Index s = n - n_recent; s < n; ++s) keep.push_back(s);
  std::sort(keep.begin(), keep.end());
  SATTN_COUNTER_ADD("kv_cache.evicted_slots", static_cast<double>(n) -
                                                  static_cast<double>(keep.size()));
  // Slots are sorted, deduped and in-range by construction.
  const Status kept = cache.keep_slots(keep);
  assert(kept.ok());
  (void)kept;
  return true;
}

double H2OPolicy::accumulated_score(const KVCache& cache, Index pos) const {
  if (cache.slot_of(pos) < 0) return 0.0;
  return static_cast<std::size_t>(pos) < score_by_pos_.size()
             ? score_by_pos_[static_cast<std::size_t>(pos)]
             : 0.0;
}

bool SinkRecentPolicy::enforce(KVCache& cache) {
  const Index n = cache.size();
  if (n <= sinks_ + recent_) return false;
  SATTN_SPAN("runtime/eviction");
  SATTN_COUNTER_ADD("kv_cache.eviction_passes", 1);
  std::vector<Index> keep;
  for (Index s = 0; s < n; ++s) {
    if (cache.position(s) < sinks_ || s >= n - recent_) keep.push_back(s);
  }
  SATTN_COUNTER_ADD("kv_cache.evicted_slots", static_cast<double>(n) -
                                                  static_cast<double>(keep.size()));
  const Status kept = cache.keep_slots(keep);
  assert(kept.ok());
  (void)kept;
  return true;
}

Index apply_mask_residency(KVCache& cache, std::span<const Index> stripe_columns, Index window) {
  const Index n = cache.size();
  const Index tail_lo = std::max<Index>(0, n - std::max<Index>(0, window));
  std::vector<Index> keep;
  keep.reserve(static_cast<std::size_t>(std::min<Index>(
      n, static_cast<Index>(stripe_columns.size()) + (n - tail_lo))));
  for (Index s = 0; s < n; ++s) {
    if (s >= tail_lo ||
        std::binary_search(stripe_columns.begin(), stripe_columns.end(), cache.position(s))) {
      keep.push_back(s);
    }
  }
  const Index dropped = n - static_cast<Index>(keep.size());
  if (dropped <= 0) return 0;
  SATTN_SPAN("runtime/eviction");
  SATTN_COUNTER_ADD("kv_cache.eviction_passes", 1);
  SATTN_COUNTER_ADD("kv_cache.evicted_slots", static_cast<double>(dropped));
  const Status kept = cache.keep_slots(keep);
  assert(kept.ok());
  (void)kept;
  return dropped;
}

const char* eviction_kind_name(EvictionKind kind) {
  switch (kind) {
    case EvictionKind::kNone: return "none";
    case EvictionKind::kSinkRecent: return "sink_recent";
    case EvictionKind::kH2O: return "h2o";
  }
  return "unknown";
}

std::unique_ptr<EvictionPolicy> make_eviction_policy(EvictionKind kind, Index keep_budget,
                                                     Index recent) {
  assert(kind == EvictionKind::kNone || (recent > 0 && keep_budget > recent));
  switch (kind) {
    case EvictionKind::kNone: return nullptr;
    case EvictionKind::kSinkRecent:
      return std::make_unique<SinkRecentPolicy>(keep_budget - recent, recent);
    case EvictionKind::kH2O: return std::make_unique<H2OPolicy>(keep_budget, recent);
  }
  return nullptr;
}

}  // namespace sattn
