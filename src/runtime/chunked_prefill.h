// Chunked prefill along the sequence dimension — the memory-efficiency
// measure the paper's serving discussion (Appendix A.6 and Table 4 setup)
// relies on for >= 128K requests.
//
// Queries are processed in chunks of `chunk_size`; each chunk attends the
// key prefix that exists by its end, so the result is mathematically
// identical to one-shot causal attention while peak intermediate memory is
// O(chunk * prefix) instead of O(S^2)-shaped worst cases. Optionally fills
// a KVCache for the subsequent decode phase.
//
// Two variants: exact flash attention per chunk, and SampleAttention per
// chunk (each chunk plans its own mask against the current prefix — the
// natural way to run SampleAttention under chunked serving).
//
// Prefix cache: when a cache is supplied (and starts empty), the prefill
// first probes its arena's content-hash prefix index (runtime/kv_page.h)
// and attaches every matching leading page — those tokens' outputs are
// copied from the index and their chunks are never computed
// (ChunkedPrefillResult::prefix_hit_tokens) — and afterwards publishes the
// prompt's full pages so later identical-prefix prefills hit. A cache on a
// private arena makes both steps no-ops in effect (nothing to hit, nobody
// to share with).
//
// Malformed requests (non-square prefill, chunk_size <= 0, cache head_dim
// mismatch) return a checked Status instead of asserting.
#pragma once

#include <string>

#include "attention/attention_method.h"
#include "core/status.h"
#include "runtime/kv_cache.h"
#include "sample_attention/sample_attention.h"

namespace sattn {

struct ChunkedPrefillResult {
  Matrix out;          // [Sq x d], identical layout to one-shot attention
  Index chunks = 0;
  double mean_density = 1.0;  // mean kept density across chunks (sparse variant)
  Index prefix_hit_tokens = 0;  // leading tokens served from the prefix index
};

// Exact chunked prefill. If cache != nullptr, all K/V rows are appended.
// A non-empty `request_id` runs the prefill under an obs::RequestContext so
// per-chunk kernel charges are attributed to that request.
StatusOr<ChunkedPrefillResult> chunked_flash_prefill(const AttentionInput& in, Index chunk_size,
                                                     KVCache* cache = nullptr,
                                                     const std::string& request_id = {});

// Chunked SampleAttention prefill: Stage-1/2 run per chunk over the prefix.
StatusOr<ChunkedPrefillResult> chunked_sample_prefill(const AttentionInput& in, Index chunk_size,
                                                      const SampleAttentionConfig& cfg,
                                                      KVCache* cache = nullptr,
                                                      const std::string& request_id = {});

}  // namespace sattn
