#include "runtime/model_runner.h"

#include <algorithm>
#include <memory>

#include "obs/accounting.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "perf/latency_report.h"

namespace sattn {

StatusOr<PrefillReport> run_prefill(const ModelConfig& model, const ContentSpec& content,
                                    const AttentionMethod& method, const PrefillOptions& opts) {
  SATTN_CHECK(opts.heads_per_layer > 0, kInvalidArgument, "heads_per_layer must be > 0, got ",
              opts.heads_per_layer);
  SATTN_CHECK(opts.layer_stride > 0, kInvalidArgument, "layer_stride must be > 0, got ",
              opts.layer_stride);
  SATTN_CHECK(model.n_layers > 0 && model.n_heads > 0, kInvalidArgument,
              "model must have layers and heads, got ", model.n_layers, " layers / ",
              model.n_heads, " heads");
  SATTN_SPAN("runtime/model_prefill");
  PrefillReport report;
  report.method = method.name();

  // Optional per-request attribution: every kernel charge below lands on
  // this request, and the totals come back as request.<id>.* gauges.
  std::unique_ptr<obs::RequestContext> request;
  std::unique_ptr<obs::ScopedSpan> request_span;
  if (!opts.request_id.empty() && obs::enabled()) {
    request = std::make_unique<obs::RequestContext>(opts.request_id);
    request_span = std::make_unique<obs::ScopedSpan>("request/" + opts.request_id);
  }

  WallTimer timer;
  for (Index layer = 0; layer < model.n_layers; layer += opts.layer_stride) {
    double layer_density = 0.0;
    Index layer_heads = 0;
    for (Index t = 0; t < std::min(opts.heads_per_layer, model.n_heads); ++t) {
      // Spread the sampled heads across the head axis deterministically.
      const Index head = (t * model.n_heads) / std::min(opts.heads_per_layer, model.n_heads) +
                         layer % std::max<Index>(1, model.n_heads / opts.heads_per_layer);
      const Index h = std::min(head, model.n_heads - 1);
      const obs::AcctScope acct(layer, h);
      const AttentionInput in = generate_attention(model, content, layer, h);
      const AttentionResult res = method.run(in);
      layer_density += res.density;
      report.mean_overhead += res.overhead_density;
      ++layer_heads;
    }
    report.per_layer_density.push_back(layer_density / static_cast<double>(layer_heads));
    report.layers.push_back(layer);
    report.mean_density += layer_density;
    report.heads_run += layer_heads;
  }
  report.seconds = timer.seconds();
  if (request != nullptr) {
    const obs::ResourceUsage& used = request->usage();
    const std::string prefix = "request." + opts.request_id + ".";
    auto& reg = obs::MetricsRegistry::global();
    reg.gauge(prefix + "flops").set(used.flops);
    reg.gauge(prefix + "bytes").set(used.bytes);
    reg.gauge(prefix + "seconds").set(report.seconds);
  }
  SATTN_COUNTER_ADD("runtime.prefill_heads_run", report.heads_run);
  if (report.heads_run > 0) {
    report.mean_density /= static_cast<double>(report.heads_run);
    report.mean_overhead /= static_cast<double>(report.heads_run);
  }
  return report;
}

}  // namespace sattn
