#include "runtime/engine.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

#include "core/rng.h"
#include "obs/accounting.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "runtime/kv_cache.h"

namespace sattn {

namespace {

std::string request_key(const std::string& run_label, const std::string& id) {
  return run_label.empty() ? id : run_label + "/" + id;
}

void emit_completion_metrics(const std::string& run_label, const EngineCompletion& c) {
  if (!obs::enabled()) return;
  const std::string key = request_key(run_label, c.base.request.id);
  auto& reg = obs::MetricsRegistry::global();
  const std::string prefix = "request." + key + ".";
  reg.gauge(prefix + "queue_s").set(c.base.queue_seconds);
  reg.gauge(prefix + "compute_s").set(c.base.compute_seconds);
  reg.gauge(prefix + "guard_s").set(c.base.guard_seconds);
  reg.gauge(prefix + "ttft_s").set(c.base.ttft());
  if (c.decoded_tokens > 0) reg.gauge(prefix + "tpot_s").set(c.tpot_seconds);
  SATTN_HISTOGRAM_EX("sched.ttft_seconds", c.base.ttft(), key);
  if (c.decoded_tokens > 0) SATTN_HISTOGRAM("sched.tpot_seconds", c.tpot_seconds);
}

// Deterministic per-request tensor content: the engine measures kernel
// time, not model quality, so any finite well-scaled data works; hashing
// the request id into the stream keeps every request distinct and every
// run reproducible.
std::uint64_t mix_id(std::uint64_t seed, const std::string& id) {
  std::uint64_t h = seed ^ 0x9e3779b97f4a7c15ull;
  for (const char ch : id) {
    h ^= static_cast<std::uint64_t>(static_cast<unsigned char>(ch));
    h *= 0x100000001b3ull;
  }
  return h;
}

void fill_matrix(Matrix& m, Rng& rng) {
  for (Index r = 0; r < m.rows(); ++r) {
    for (float& x : m.row(r)) x = static_cast<float>(rng.uniform() * 2.0 - 1.0);
  }
}

double wall_seconds(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

}  // namespace

// One in-flight request. Owned exclusively by the loop thread after
// admission; submitters never see it.
struct ServingEngine::Live {
  ServingRequest req;  // arrival_seconds = measured submit instant
  Index admit_seq = 0;

  AttentionInput in;  // square prompt_tokens x prompt_tokens workload
  Matrix out;         // prefill attention output
  KVCache cache;
  Matrix dec_q;                // decode queries, one per generated token
  std::vector<float> dec_out;  // decode output scratch (head_dim)

  Index prefilled = 0;  // query rows whose output is final
  bool decoding = false;
  Index decoded = 0;

  // TTFT attribution, accumulated over measured slices.
  double compute_s = 0.0;
  double guard_s = 0.0;
  double start_s = -1.0;          // first service instant
  double finish_prefill_s = -1.0; // TTFT instant
  int level = 0;                  // degrade-ladder level
  int attempts = 1;               // 1 + faulted-chunk retries
  double available_at = 0.0;      // retry-backoff gate (engine seconds)
  double decode_total_s = 0.0;

  explicit Live(Index head_dim) : cache(head_dim) {}
};

std::vector<CompletedRequest> EngineResult::completions() const {
  std::vector<CompletedRequest> out;
  out.reserve(completed.size());
  for (const EngineCompletion& c : completed) out.push_back(c.base);
  return out;
}

ServingEngine::ServingEngine(EngineOptions opts) : opts_(std::move(opts)) {
  assert(opts_.head_dim > 0 && opts_.chunk_tokens > 0 && opts_.max_batch > 0);
  if (opts_.degrade_density_scale.empty()) opts_.degrade_density_scale = {1.0};
  result_.served_per_level.assign(opts_.degrade_density_scale.size(), 0);
}

ServingEngine::~ServingEngine() {
  if (started_ && !finished_) finish();
}

double ServingEngine::now() const { return wall_seconds(t0_); }

void ServingEngine::start() {
  assert(!started_);
  started_ = true;
  t0_ = std::chrono::steady_clock::now();
  loop_thread_ = std::thread([this] { loop(); });
}

void ServingEngine::submit(ServingRequest req) {
  req.arrival_seconds = now();
  {
    std::lock_guard lk(mu_);
    assert(!closed_);
    intake_.push_back(std::move(req));
  }
  cv_.notify_one();
}

void ServingEngine::close() {
  {
    std::lock_guard lk(mu_);
    closed_ = true;
  }
  cv_.notify_one();
}

EngineResult ServingEngine::finish() {
  if (!finished_) {
    close();
    if (loop_thread_.joinable()) loop_thread_.join();
    finished_ = true;
  }
  return result_;
}

EngineResult ServingEngine::run_trace(std::span<const ServingRequest> trace, double time_scale) {
  start();
  std::vector<ServingRequest> sorted(trace.begin(), trace.end());
  std::sort(sorted.begin(), sorted.end(), [](const ServingRequest& a, const ServingRequest& b) {
    return a.arrival_seconds < b.arrival_seconds;
  });
  std::thread submitter([&] {
    for (const ServingRequest& r : sorted) {
      const double due = r.arrival_seconds * time_scale;
      const double lead = due - now();
      if (lead > 0.0) std::this_thread::sleep_for(std::chrono::duration<double>(lead));
      submit(r);
    }
  });
  submitter.join();
  return finish();
}

void ServingEngine::loop() {
  SATTN_SPAN("engine/loop");
  FaultInjector injector(opts_.fault);
  const int levels = static_cast<int>(opts_.degrade_density_scale.size());
  const auto scale_of = [&](int level) {
    return opts_.degrade_density_scale[static_cast<std::size_t>(level)];
  };
  const double target_ttft = opts_.slo_ttft_seconds > 0.0   ? opts_.slo_ttft_seconds
                             : opts_.deadline_seconds > 0.0 ? opts_.deadline_seconds
                                                            : std::numeric_limits<double>::infinity();

  const auto shed = [&](std::unique_ptr<Live> lr, const char* reason) {
    SATTN_COUNTER_ADD("sched.requests_shed", 1);
    result_.shed.push_back({std::move(lr->req), reason, now()});
  };

  for (;;) {
    // --- Intake: wait if idle, then drain submissions under the lock. ---
    std::vector<ServingRequest> arrivals;
    bool closed;
    {
      std::unique_lock lk(mu_);
      if (live_.empty() && intake_.empty() && !closed_) {
        cv_.wait(lk, [&] { return closed_ || !intake_.empty(); });
      }
      arrivals.swap(intake_);
      closed = closed_;
    }

    // --- Admission. ---
    for (ServingRequest& req : arrivals) {
      auto lr = std::make_unique<Live>(opts_.head_dim);
      lr->req = std::move(req);
      if (opts_.max_prompt_tokens > 0 && lr->req.prompt_tokens > opts_.max_prompt_tokens) {
        SATTN_COUNTER_ADD("sched.oversized_rejects", 1);
        shed(std::move(lr), "oversized");
        continue;
      }
      if (lr->req.prompt_tokens <= 0 ||
          (opts_.max_queue_depth > 0 &&
           static_cast<Index>(live_.size()) >= opts_.max_queue_depth)) {
        SATTN_COUNTER_ADD("sched.admission_rejects", 1);
        shed(std::move(lr), "admission");
        continue;
      }
      lr->admit_seq = admit_seq_++;
      const Index s = lr->req.prompt_tokens, d = opts_.head_dim;
      Rng rng(mix_id(opts_.seed, lr->req.id));
      lr->in.q.resize(s, d);
      lr->in.k.resize(s, d);
      lr->in.v.resize(s, d);
      fill_matrix(lr->in.q, rng);
      fill_matrix(lr->in.k, rng);
      fill_matrix(lr->in.v, rng);
      lr->out.resize(s, d);
      if (opts_.decode_tokens > 0) {
        lr->dec_q.resize(opts_.decode_tokens, d);
        fill_matrix(lr->dec_q, rng);
        lr->dec_out.assign(static_cast<std::size_t>(d), 0.0f);
      }
      SATTN_COUNTER_ADD("sched.requests_enqueued", 1);
      live_.push_back(std::move(lr));
      result_.peak_live_batch = std::max(result_.peak_live_batch, static_cast<Index>(live_.size()));
    }

    if (live_.empty()) {
      if (closed) break;
      continue;
    }

    // --- First-service steering and deadline shedding. ---
    // Mirrors simulate_queue_slo: when service is about to start, walk the
    // degrade ladder until the projected TTFT fits the target (taking a
    // rung only when it actually buys time — for dense engines the ladder
    // is a no-op), then shed whatever cannot make the hard deadline even
    // fully degraded.
    const double t_steer = now();
    for (auto it = live_.begin(); it != live_.end();) {
      Live& lr = **it;
      if (lr.start_s >= 0.0) {
        ++it;
        continue;
      }
      const double waited = t_steer - lr.req.arrival_seconds;
      bool dead = opts_.deadline_seconds > 0.0 && waited > opts_.deadline_seconds;
      if (!dead && opts_.projected_prefill_seconds) {
        const auto& proj = opts_.projected_prefill_seconds;
        while (lr.level + 1 < levels) {
          const double cur = proj(lr.req.prompt_tokens, scale_of(lr.level));
          if (waited + cur <= target_ttft) break;
          if (proj(lr.req.prompt_tokens, scale_of(lr.level + 1)) >= cur) break;
          ++lr.level;
        }
        dead = opts_.deadline_seconds > 0.0 &&
               waited + proj(lr.req.prompt_tokens, scale_of(lr.level)) > opts_.deadline_seconds;
      }
      if (dead) {
        SATTN_COUNTER_ADD("sched.deadline_sheds", 1);
        shed(std::move(*it), "deadline");
        it = live_.erase(it);
      } else {
        ++it;
      }
    }
    if (live_.empty()) {
      if (closed) break;
      continue;
    }

    // --- Batch formation (runtime/batch.h), backoff gates respected. ---
    const double t_form = now();
    std::vector<SlotSnapshot> slots;
    double earliest_gate = std::numeric_limits<double>::infinity();
    for (const auto& lp : live_) {
      if (lp->available_at > t_form) {
        earliest_gate = std::min(earliest_gate, lp->available_at);
        continue;
      }
      slots.push_back({lp->req.id, lp->admit_seq, lp->decoding, lp->req.prompt_tokens,
                       lp->prefilled});
    }
    if (slots.empty()) {
      // Everyone is backing off: sleep to the earliest gate, but wake on
      // new arrivals.
      std::unique_lock lk(mu_);
      const double lead = earliest_gate - now();
      if (lead > 0.0 && intake_.empty()) {
        cv_.wait_for(lk, std::chrono::duration<double>(lead),
                     [&] { return !intake_.empty(); });
      }
      continue;
    }
    StepPlanConfig plan_cfg{opts_.max_batch, opts_.chunk_tokens};
    const std::vector<StepItem> step = form_step(std::move(slots), plan_cfg);
    if (step.empty()) continue;
    ++result_.iterations;
    SATTN_SERIES("sched.queue_depth", t_form, static_cast<double>(live_.size()));

    const auto find_live = [&](const std::string& id) -> Live* {
      for (const auto& lp : live_)
        if (lp->req.id == id) return lp.get();
      return nullptr;
    };

    // --- Per-item kernel planning; sample mode runs the measured
    // escalation ladder here (rejected attempts bill to guard). ---
    struct ItemState {
      Live* lr = nullptr;
      Index q_lo = 0, q_hi = 0;
      bool decode = false;
      double plan_s = 0.0;   // accepted attempt's planning time (compute)
      bool escalated = false;
      // Sparse-route storage (sample mode): kept alive through the sweep.
      std::unique_ptr<AttentionInput> chunk;
      std::unique_ptr<SamplePlan> plan;
      std::unique_ptr<Matrix> chunk_out;
    };
    std::vector<ItemState> items;
    items.reserve(step.size());
    RaggedBatchView batch;
    batch.flash = opts_.flash;
    for (const StepItem& si : step) {
      Live* lr = find_live(si.id);
      assert(lr != nullptr);
      ItemState st;
      st.lr = lr;
      st.decode = si.decode;
      st.q_lo = si.q_lo;
      st.q_hi = si.q_hi;
      RaggedSeq seq;
      seq.request_id = request_key(opts_.run_label, lr->req.id);
      const Index d = opts_.head_dim;
      if (si.decode) {
        seq.route = SeqRoute::kDense;
        seq.q = lr->dec_q.row(lr->decoded).data();
        seq.rows = 1;
        seq.kv = {lr->cache.k_data(), lr->cache.v_data(), d};
        seq.k_hi = lr->cache.size();
        seq.causal_off = seq.k_hi - 1;
        seq.out = lr->dec_out.data();
      } else if (opts_.mode == EngineMode::kDense) {
        // Zero-copy chunked prefill: queries [q_lo, q_hi) against the key
        // prefix [0, q_hi) of the request's own square input.
        seq.route = SeqRoute::kDense;
        seq.q = lr->in.q.row(si.q_lo).data();
        seq.rows = si.q_hi - si.q_lo;
        seq.kv = mk::KvView::of(lr->in);
        seq.k_hi = si.q_hi;
        seq.causal_off = si.q_lo;
        seq.out = lr->out.row(si.q_lo).data();
      } else {
        // SampleAttention chunk: materialize the chunk, run the measured
        // plan/validate/escalate ladder, then execute the accepted plan's
        // sparse kernel (or the dense fallback) inside the sweep.
        st.chunk = std::make_unique<AttentionInput>();
        st.chunk->q.resize(si.q_hi - si.q_lo, d);
        st.chunk->k.resize(si.q_hi, d);
        st.chunk->v.resize(si.q_hi, d);
        for (Index r = 0; r < si.q_hi - si.q_lo; ++r) {
          const auto src = lr->in.q.row(si.q_lo + r);
          std::copy(src.begin(), src.end(), st.chunk->q.row(r).begin());
        }
        for (Index r = 0; r < si.q_hi; ++r) {
          const auto ks = lr->in.k.row(r);
          const auto vs = lr->in.v.row(r);
          std::copy(ks.begin(), ks.end(), st.chunk->k.row(r).begin());
          std::copy(vs.begin(), vs.end(), st.chunk->v.row(r).begin());
        }

        // Degrade level -> planner budget: the ladder's density scale
        // multiplies the CRA threshold and window budget, the same knobs
        // the simulator's cost model scales.
        SampleAttentionConfig cfg = opts_.sample;
        const double ds = scale_of(lr->level);
        cfg.alpha = std::min(1.0, cfg.alpha * ds);
        cfg.window_ratio = cfg.window_ratio * ds;

        bool dense_fallback = false;
        Index resamples = 0, widens = 0;
        for (;;) {
          const double a0 = now();
          SamplePlan plan = plan_sample_attention(*st.chunk, cfg);
          if (opts_.guard.plan_hook) opts_.guard.plan_hook(plan);
          const Status ok = validate_sample_plan(plan, *st.chunk, cfg, opts_.guard);
          const double attempt_s = now() - a0;
          if (ok.ok()) {
            st.plan_s = attempt_s;
            st.plan = std::make_unique<SamplePlan>(std::move(plan));
            break;
          }
          // Rejected attempt: measured guardrail time, next rung.
          lr->guard_s += attempt_s;
          SATTN_COUNTER_ADD("engine.plan_rejects", 1);
          st.escalated = true;
          if (resamples < opts_.guard.max_resamples) {
            ++resamples;
            cfg.row_ratio *= opts_.guard.resample_factor;
          } else if (widens < opts_.guard.max_widens) {
            ++widens;
            cfg.window_ratio *= opts_.guard.widen_factor;
          } else {
            dense_fallback = true;  // exact rung, always valid
            break;
          }
        }
        if (dense_fallback || !st.plan) {
          SATTN_COUNTER_ADD("engine.dense_fallbacks", 1);
          seq.route = SeqRoute::kDense;
          seq.q = lr->in.q.row(si.q_lo).data();
          seq.rows = si.q_hi - si.q_lo;
          seq.kv = mk::KvView::of(lr->in);
          seq.k_hi = si.q_hi;
          seq.causal_off = si.q_lo;
          seq.out = lr->out.row(si.q_lo).data();
        } else {
          st.chunk_out = std::make_unique<Matrix>();
          seq.route = SeqRoute::kSparse;
          seq.chunk = st.chunk.get();
          seq.mask = &st.plan->mask;
          seq.out_mat = st.chunk_out.get();
        }
      }
      batch.seqs.push_back(std::move(seq));
      items.push_back(std::move(st));
    }

    // --- One ragged sweep services the whole step. ---
    const std::vector<SeqCost> costs = ragged_attention_sweep(batch);

    // --- Apply results: fault injection, attribution, phase transitions. ---
    const double t_done = now();
    std::vector<Live*> finished;
    for (std::size_t i = 0; i < items.size(); ++i) {
      ItemState& st = items[i];
      Live* lr = st.lr;
      const double kernel_s = costs[i].seconds;
      if (lr->start_s < 0.0) lr->start_s = t_done - kernel_s;

      if (!st.decode && injector.should_fire()) {
        // Transient chunk fault: the attempt's measured work (planning and
        // kernel) is lost guardrail time, and the backoff gate is
        // guardrail-imposed waiting — the chunk is redone after it.
        lr->guard_s += st.plan_s + kernel_s;
        if (lr->attempts > opts_.max_retries) {
          SATTN_COUNTER_ADD("sched.retry_exhausted_sheds", 1);
          for (auto it = live_.begin(); it != live_.end(); ++it) {
            if (it->get() == lr) {
              shed(std::move(*it), "retries_exhausted");
              live_.erase(it);
              break;
            }
          }
          continue;
        }
        ++result_.retries;
        SATTN_COUNTER_ADD("sched.request_retries", 1);
        const double backoff =
            opts_.retry_backoff_seconds * static_cast<double>(1 << (lr->attempts - 1));
        lr->available_at = t_done + backoff;
        lr->guard_s += backoff;
        ++lr->attempts;
        continue;
      }

      if (st.decode) {
        lr->decode_total_s += kernel_s;
        ++lr->decoded;
        continue;
      }

      // Successful prefill chunk.
      lr->compute_s += st.plan_s + kernel_s;
      if (st.chunk_out) {
        // Sparse route wrote chunk-local rows; fold them into the request
        // output.
        for (Index r = 0; r < st.q_hi - st.q_lo; ++r) {
          const auto src = st.chunk_out->row(r);
          std::copy(src.begin(), src.end(), lr->out.row(st.q_lo + r).begin());
        }
      }
      lr->prefilled = st.q_hi;
      if (lr->prefilled >= lr->req.prompt_tokens) {
        lr->finish_prefill_s = t_done;
        const double ttft = t_done - lr->req.arrival_seconds;
        if (opts_.deadline_seconds > 0.0 && ttft > opts_.deadline_seconds) {
          SATTN_COUNTER_ADD("sched.deadline_sheds", 1);
          for (auto it = live_.begin(); it != live_.end(); ++it) {
            if (it->get() == lr) {
              shed(std::move(*it), "deadline");
              live_.erase(it);
              break;
            }
          }
          continue;
        }
        if (opts_.decode_tokens > 0) {
          // Cache fill is service work on the request's critical path.
          const double c0 = now();
          const Status cs = lr->cache.append_prefill(lr->in);
          assert(cs.ok());
          (void)cs;
          lr->compute_s += now() - c0;
          lr->decoding = true;
        }
      }
    }

    // --- Completions. ---
    for (auto it = live_.begin(); it != live_.end();) {
      Live& lr = **it;
      const bool prefill_done = lr.finish_prefill_s >= 0.0;
      const bool decode_done = !lr.decoding || lr.decoded >= opts_.decode_tokens;
      if (!(prefill_done && decode_done)) {
        ++it;
        continue;
      }
      EngineCompletion c;
      c.base = CompletedRequest{std::move(lr.req), lr.start_s, lr.finish_prefill_s, lr.level,
                                lr.attempts};
      c.base.compute_seconds = lr.compute_s;
      c.base.guard_seconds = lr.guard_s;
      c.base.queue_seconds = c.base.ttft() - c.base.compute_seconds - c.base.guard_seconds;
      c.decoded_tokens = lr.decoded;
      c.tpot_seconds = lr.decoded > 0 ? lr.decode_total_s / static_cast<double>(lr.decoded) : 0.0;
      if (lr.level > 0) {
        ++result_.degraded;
        SATTN_COUNTER_ADD("sched.requests_degraded", 1);
      }
      ++result_.served_per_level[static_cast<std::size_t>(lr.level)];
      emit_completion_metrics(opts_.run_label, c);
      SATTN_COUNTER_ADD("sched.requests_completed", 1);
      result_.completed.push_back(std::move(c));
      it = live_.erase(it);
    }
  }
}

}  // namespace sattn
