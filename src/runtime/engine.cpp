#include "runtime/engine.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <unordered_set>

#include "core/rng.h"
#include "obs/accounting.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "runtime/decode.h"
#include "runtime/kv_cache.h"

namespace sattn {

namespace {

std::string request_key(const std::string& run_label, const std::string& id) {
  return run_label.empty() ? id : run_label + "/" + id;
}

// Per-request timeline: one `timeline.<run_label>/<id>` series whose values
// are obs::RequestPhase codes. The run report's timeline view and the Chrome
// request lanes are both derived from this shared coding.
void emit_timeline(const std::string& run_label, const std::string& id, double t,
                   obs::RequestPhase phase) {
  if (!obs::enabled()) return;
  obs::MetricsRegistry::global()
      .series("timeline." + request_key(run_label, id))
      .append(t, static_cast<double>(phase));
}

void emit_completion_metrics(const std::string& run_label, const EngineCompletion& c) {
  if (!obs::enabled()) return;
  const std::string key = request_key(run_label, c.base.request.id);
  auto& reg = obs::MetricsRegistry::global();
  const std::string prefix = "request." + key + ".";
  reg.gauge(prefix + "queue_s").set(c.base.queue_seconds);
  reg.gauge(prefix + "compute_s").set(c.base.compute_seconds);
  reg.gauge(prefix + "guard_s").set(c.base.guard_seconds);
  reg.gauge(prefix + "ttft_s").set(c.base.ttft());
  if (c.decoded_tokens > 0) reg.gauge(prefix + "tpot_s").set(c.tpot_seconds);
  SATTN_HISTOGRAM_EX("sched.ttft_seconds", c.base.ttft(), key);
  if (c.decoded_tokens > 0) SATTN_HISTOGRAM("sched.tpot_seconds", c.tpot_seconds);
}

// Deterministic per-request tensor content: the engine measures kernel
// time, not model quality, so any finite well-scaled data works; hashing
// the request id into the stream keeps every request distinct and every
// run reproducible.
std::uint64_t mix_id(std::uint64_t seed, const std::string& id) {
  std::uint64_t h = seed ^ 0x9e3779b97f4a7c15ull;
  for (const char ch : id) {
    h ^= static_cast<std::uint64_t>(static_cast<unsigned char>(ch));
    h *= 0x100000001b3ull;
  }
  return h;
}

void fill_matrix(Matrix& m, Rng& rng) {
  for (Index r = 0; r < m.rows(); ++r) {
    for (float& x : m.row(r)) x = static_cast<float>(rng.uniform() * 2.0 - 1.0);
  }
}

// Segment-keyed content (requests with ServingRequest::segments): row r of
// each stream depends only on (engine seed, segment key, absolute position
// r), so two requests whose prompts start with the same segment sequence
// produce bit-identical leading rows — the invariant the prefix cache's
// content-hash chain verifies before sharing pages. Tokens past the declared
// segments are keyed by the request id (private content). Segment-less
// requests keep the original sequential per-request fill, bit-identical to
// the pre-paging engine.
void fill_row(std::span<float> row, std::uint64_t key) {
  Rng rng(key);
  for (float& x : row) x = static_cast<float>(rng.uniform() * 2.0 - 1.0);
}

void fill_segmented(AttentionInput& in, const ServingRequest& req, std::uint64_t seed) {
  const Index s = in.sq();
  Index r = 0;
  const auto fill_rows = [&](std::uint64_t base, Index hi) {
    for (; r < hi; ++r) {
      std::uint64_t h = base ^ (0x9e3779b97f4a7c15ull * (static_cast<std::uint64_t>(r) + 1));
      h *= 0x100000001b3ull;
      fill_row(in.q.row(r), h ^ 0x51ull);
      fill_row(in.k.row(r), h ^ 0x4bull);
      fill_row(in.v.row(r), h ^ 0x56ull);
    }
  };
  for (const ContentSegment& seg : req.segments) {
    if (r >= s) break;
    fill_rows(mix_id(seed, "seg/" + seg.key), std::min(s, r + std::max<Index>(0, seg.tokens)));
  }
  fill_rows(mix_id(seed, "req/" + req.id), s);
}

double wall_seconds(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

}  // namespace

// One in-flight request. Owned exclusively by the loop thread after
// admission; submitters never see it.
struct ServingEngine::Live {
  ServingRequest req;  // arrival_seconds = measured submit instant
  Index admit_seq = 0;

  AttentionInput in;  // square prompt_tokens x prompt_tokens workload
  Matrix out;         // prefill attention output
  KVCache cache;
  Matrix dec_q;                // decode queries, one per generated token
  std::vector<float> dec_out;  // decode output scratch (head_dim)

  Index prefilled = 0;  // query rows whose output is final
  bool decoding = false;
  Index decoded = 0;
  Index prefix_hit = 0;  // prompt tokens attached from the prefix cache

  // TTFT attribution, accumulated over measured slices.
  double compute_s = 0.0;
  double guard_s = 0.0;
  double start_s = -1.0;          // first service instant
  double finish_prefill_s = -1.0; // TTFT instant
  int level = 0;                  // degrade-ladder level
  int attempts = 1;               // 1 + faulted-chunk retries
  double available_at = 0.0;      // retry-backoff gate (engine seconds)
  double decode_total_s = 0.0;

  // Lifecycle hardening.
  FaultInjector injector;  // per-request seeded: fault decisions depend only
                           // on (spec, id), never on batch interleaving
  bool active = true;      // KV-budget gate; false = waiting (backpressure)
  bool kv_waited = false;  // pressure wait counted once per request
  std::unique_ptr<EvictionPolicy> evict;  // pressure rung, decode phase

  // Decode-phase shadow audit (obs/audit.h): the last accepted plan's
  // structure, captured at prefill so sampled decode rows can score the
  // plan's window + stripes against the exact decode weights.
  std::vector<Index> audit_stripes;
  Index audit_window = 0;
  double audit_predicted = 1.0;
  bool audit_has_plan = false;
  // Sparse-residency eviction reuses the captured plan structure; set
  // whenever a plan was accepted, independent of the auditor.
  bool resid_has_plan = false;

  Live(Index head_dim, FaultSpec fault, std::shared_ptr<KvPageArena> arena)
      : cache(head_dim, std::move(arena)), injector(fault) {}
};

std::vector<CompletedRequest> EngineResult::completions() const {
  std::vector<CompletedRequest> out;
  out.reserve(completed.size());
  for (const EngineCompletion& c : completed) out.push_back(c.base);
  return out;
}

std::vector<std::pair<std::string, TerminalState>> EngineResult::outcomes() const {
  std::vector<std::pair<std::string, TerminalState>> out;
  out.reserve(completed.size() + shed.size() + cancelled.size());
  for (const EngineCompletion& c : completed)
    out.emplace_back(c.base.request.id, TerminalState::kCompleted);
  for (const ShedRequest& s : shed) out.emplace_back(s.request.id, TerminalState::kShed);
  for (const CancelledRequest& c : cancelled)
    out.emplace_back(c.base.request.id, TerminalState::kCancelled);
  return out;
}

ServingEngine::ServingEngine(EngineOptions opts) : opts_(std::move(opts)) {
  assert(opts_.head_dim > 0 && opts_.chunk_tokens > 0 && opts_.max_batch > 0);
  if (opts_.degrade_density_scale.empty()) opts_.degrade_density_scale = {1.0};
  result_.served_per_level.assign(opts_.degrade_density_scale.size(), 0);
  arena_ = opts_.kv_arena ? opts_.kv_arena
                          : std::make_shared<KvPageArena>(opts_.head_dim, opts_.kv_page_tokens);
  assert(arena_->head_dim() == opts_.head_dim);
}

ServingEngine::~ServingEngine() {
  if (started_ && !finished_) finish();
}

double ServingEngine::now() const { return wall_seconds(t0_); }

double ServingEngine::heartbeat_age_seconds() const {
  if (!started_) return 0.0;
  if (loop_waiting_.load(std::memory_order_relaxed)) return 0.0;
  return std::max(0.0, now() - heartbeat_s_.load(std::memory_order_relaxed));
}

void ServingEngine::tele_push(obs::TelemetryEventKind kind, const std::string& id, double t,
                              double value, std::uint32_t aux) {
  if (!tele_hub_) return;
  obs::TelemetryEvent ev;
  ev.t = t;
  ev.value = static_cast<float>(value);
  ev.aux = aux;
  ev.kind = kind;
  ev.set_id(id);
  tele_hub_->push(ev);
}

void ServingEngine::start() {
  assert(!started_);
  started_ = true;
  t0_ = std::chrono::steady_clock::now();
  // Dense mode is exact — there is no deployed mask to audit.
  if (opts_.audit.enabled && opts_.mode == EngineMode::kSampleAttention) {
    auditor_ = std::make_unique<obs::QualityAuditor>(opts_.audit);
  }
  if (opts_.telemetry.enabled) {
    tele_hub_ = std::make_unique<obs::TelemetryHub>(opts_.telemetry.ring_capacity);
    tele_pub_ = std::make_unique<obs::TelemetryPublisher>(
        opts_.telemetry, opts_.run_label, tele_hub_.get(), [this] {
          obs::EngineTelemetrySnapshot s;
          s.t = now();
          s.live = tele_live_.load(std::memory_order_relaxed);
          s.active = tele_active_.load(std::memory_order_relaxed);
          s.kv_bytes = tele_kv_bytes_.load(std::memory_order_relaxed);
          s.kv_budget_bytes = opts_.kv_budget_bytes;
          s.breaker_state = tele_breaker_.load(std::memory_order_relaxed);
          s.heartbeat_age_s = heartbeat_age_seconds();
          s.watchdog_stalls =
              static_cast<long long>(watchdog_stalls_.load(std::memory_order_relaxed));
          return s;
        });
  }
  loop_thread_ = std::thread([this] { loop(); });
  if (opts_.watchdog_stall_seconds > 0.0) {
    watchdog_thread_ = std::thread([this] { watchdog(); });
  }
  if (tele_pub_) tele_pub_->start();
}

Status ServingEngine::submit(ServingRequest req) {
  req.arrival_seconds = now();
  const double arrival = req.arrival_seconds;
  const std::string id = req.id;
  {
    std::lock_guard lk(mu_);
    SATTN_CHECK(!closed_, kFailedPrecondition,
                "submit() after close(): request '", req.id, "' rejected");
    intake_.push_back(std::move(req));
  }
  cv_.notify_one();
  // Submitter-thread telemetry: the event rides this thread's own SPSC ring.
  tele_push(obs::TelemetryEventKind::kSubmit, id, arrival);
  return Status::Ok();
}

void ServingEngine::cancel(const std::string& request_id) {
  {
    std::lock_guard lk(mu_);
    cancel_intake_.push_back(request_id);
  }
  cv_.notify_one();
}

void ServingEngine::close() {
  {
    std::lock_guard lk(mu_);
    closed_ = true;
  }
  cv_.notify_one();
}

EngineResult ServingEngine::finish(double drain_deadline_seconds) {
  if (!finished_) {
    if (started_ && drain_deadline_seconds >= 0.0) {
      drain_deadline_.store(now() + drain_deadline_seconds, std::memory_order_relaxed);
    }
    close();
    if (loop_thread_.joinable()) loop_thread_.join();
    watchdog_stop_.store(true, std::memory_order_relaxed);
    if (watchdog_thread_.joinable()) watchdog_thread_.join();
    result_.watchdog_stalls = watchdog_stalls_.load(std::memory_order_relaxed);
    // All audit producers are quiesced: snapshot the scorecard as audit.*
    // gauges so run reports collected after finish() carry it.
    if (auditor_) auditor_->publish();
    // All producers are quiesced; stop() runs one final flush tick so the
    // stream's last line reflects the complete run.
    if (tele_pub_) tele_pub_->stop();
    finished_ = true;
  }
  return result_;
}

EngineResult ServingEngine::run_trace(std::span<const ServingRequest> trace, double time_scale) {
  start();
  std::vector<ServingRequest> sorted(trace.begin(), trace.end());
  std::sort(sorted.begin(), sorted.end(), [](const ServingRequest& a, const ServingRequest& b) {
    return a.arrival_seconds < b.arrival_seconds;
  });
  std::thread submitter([&] {
    for (const ServingRequest& r : sorted) {
      const double due = r.arrival_seconds * time_scale;
      const double lead = due - now();
      if (lead > 0.0) std::this_thread::sleep_for(std::chrono::duration<double>(lead));
      const Status s = submit(r);
      assert(s.ok());  // run_trace closes only after the submitter joins
      (void)s;
    }
  });
  submitter.join();
  return finish();
}

// Watchdog thread: observes loop progress through heartbeat_/loop_waiting_
// atomics only. A loop that is neither idle-waiting nor bumping its
// heartbeat for watchdog_stall_seconds — a stuck kernel, a deadlocked step —
// raises engine.watchdog_stalls. One alert per stalled window (re-armed
// after each alert), so a long stall is counted, not spammed.
void ServingEngine::watchdog() {
  const double stall_s = opts_.watchdog_stall_seconds;
  const double poll_s = std::min(stall_s / 4.0, 0.01);
  double last_beat = heartbeat_s_.load(std::memory_order_relaxed);
  auto last_progress = std::chrono::steady_clock::now();
  while (!watchdog_stop_.load(std::memory_order_relaxed)) {
    std::this_thread::sleep_for(std::chrono::duration<double>(poll_s));
    const auto t = std::chrono::steady_clock::now();
    const double beat = heartbeat_s_.load(std::memory_order_relaxed);
    SATTN_GAUGE_SET("engine.heartbeat_age_s", heartbeat_age_seconds());
    if (beat != last_beat || loop_waiting_.load(std::memory_order_relaxed)) {
      last_beat = beat;
      last_progress = t;
      continue;
    }
    if (std::chrono::duration<double>(t - last_progress).count() >= stall_s) {
      watchdog_stalls_.fetch_add(1, std::memory_order_relaxed);
      SATTN_COUNTER_ADD("engine.watchdog_stalls", 1);
      last_progress = t;
    }
  }
}

void ServingEngine::loop() {
  SATTN_SPAN("engine/loop");
  const int levels = static_cast<int>(opts_.degrade_density_scale.size());
  const auto scale_of = [&](int level) {
    return opts_.degrade_density_scale[static_cast<std::size_t>(level)];
  };
  const double target_ttft = opts_.slo_ttft_seconds > 0.0   ? opts_.slo_ttft_seconds
                             : opts_.deadline_seconds > 0.0 ? opts_.deadline_seconds
                                                            : std::numeric_limits<double>::infinity();
  // Scorecard attribution for the shadow audit: requests hash to stable
  // pseudo-head buckets (obs/audit.h, AuditOptions::head_buckets).
  const auto audit_head_of = [&](const std::string& id) {
    const auto buckets =
        static_cast<std::uint64_t>(std::max<Index>(1, opts_.audit.head_buckets));
    return static_cast<long long>(mix_id(opts_.audit.seed, id) % buckets);
  };

  const auto shed = [&](std::unique_ptr<Live> lr, const char* reason) {
    const double t = now();
    SATTN_COUNTER_ADD("sched.requests_shed", 1);
    tele_push(obs::TelemetryEventKind::kShed, lr->req.id, t);
    emit_timeline(opts_.run_label, lr->req.id, t, obs::RequestPhase::kShed);
    result_.shed.push_back({std::move(lr->req), reason, t});
  };

  // Cancellation terminals. Both preserve the attribution identity
  // queue + compute + guard == ttft with finish = the cancel instant; a
  // backoff gate that had not fully elapsed is refunded from guard (it was
  // billed in full when the retry was scheduled).
  const auto cancel_unadmitted = [&](ServingRequest req, const char* reason) {
    const double t = now();
    tele_push(obs::TelemetryEventKind::kCancel, req.id, t);
    emit_timeline(opts_.run_label, req.id, t, obs::RequestPhase::kCancelled);
    CancelledRequest c;
    c.base = CompletedRequest{std::move(req), t, t, 0, 1};
    c.base.queue_seconds = c.base.ttft();  // never serviced: pure queueing
    c.reason = reason;
    SATTN_COUNTER_ADD("engine.requests_cancelled", 1);
    result_.cancelled.push_back(std::move(c));
  };
  const auto cancel_live = [&](std::unique_ptr<Live> lr, const char* reason) {
    const double t = now();
    tele_push(obs::TelemetryEventKind::kCancel, lr->req.id, t);
    emit_timeline(opts_.run_label, lr->req.id, t, obs::RequestPhase::kCancelled);
    double guard = lr->guard_s;
    if (lr->available_at > t) guard = std::max(0.0, guard - (lr->available_at - t));
    CancelledRequest c;
    c.base = CompletedRequest{std::move(lr->req), lr->start_s >= 0.0 ? lr->start_s : t, t,
                              lr->level, lr->attempts};
    c.base.compute_seconds = lr->compute_s;
    c.base.guard_seconds = guard;
    c.base.queue_seconds = c.base.ttft() - c.base.compute_seconds - c.base.guard_seconds;
    c.decoded_tokens = lr->decoded;
    c.reason = reason;
    SATTN_COUNTER_ADD("engine.requests_cancelled", 1);
    result_.cancelled.push_back(std::move(c));
  };

  // KV memory budget: projected bytes a request pins while live. A
  // prefilling request will need its whole prompt's K/V (2 streams, fp32 —
  // the acct.* byte convention); a decoding request holds exactly its
  // cache, which the eviction rung can shrink.
  const double kv_per_token = 2.0 * static_cast<double>(opts_.head_dim) *
                              obs::kAcctBytesPerElement;
  const auto kv_bytes_of = [&](const Live& lr) {
    if (lr.decoding) return lr.cache.bytes();
    // Prefilling: full-prompt demand, minus what already resides in the
    // cache as attached prefix pages — those are billed at the cache's
    // counted-once page share instead of the flat per-token projection.
    return lr.cache.bytes() +
           kv_per_token * static_cast<double>(std::max<Index>(0, lr.req.prompt_tokens - lr.cache.size()));
  };

  // Prefix-cache probe: attach leading shared pages from the arena's
  // content-hash index and copy their stored attention outputs — those rows
  // skip prefill compute entirely. Capped at prompt - 1 so even a
  // full-prefix hit leaves one row of real prefill (the request still flows
  // through form_step and the normal prefill-done transition). Called at
  // admission AND again when a budget-deferred waiter activates: the index
  // may have grown while it queued (an earlier sharer published).
  const auto probe_prefix = [&](Live& lr) {
    if (!opts_.kv_prefix_cache || lr.prefilled > 0 || !lr.cache.empty()) return;
    const Index hit =
        lr.cache.try_attach_prefix(lr.in, lr.req.prompt_tokens - 1, &lr.out);
    if (hit <= 0) return;
    lr.prefilled = hit;
    lr.prefix_hit = hit;
    ++result_.kv_prefix_hits;
    result_.kv_prefix_hit_tokens += hit;
    SATTN_COUNTER_ADD("engine.kv_prefix_hits", 1);
    SATTN_COUNTER_ADD("engine.kv_prefix_hit_tokens", static_cast<double>(hit));
  };

  // Cancel ids with no matching request yet: a cancel can race ahead of its
  // submit, so unmatched ids are remembered until they match (or the loop
  // exits). Ids for already-terminal requests simply never match again.
  std::unordered_set<std::string> pending_cancels;

  // Circuit breaker over sample-mode planning episodes.
  enum class Breaker { kClosed, kOpen, kHalfOpen };
  Breaker breaker = Breaker::kClosed;
  double breaker_open_until = 0.0;
  int consecutive_plan_faults = 0;

  for (;;) {
    heartbeat_s_.store(now(), std::memory_order_relaxed);

    // Drift-monitor pre-trip: a sustained quality alert (dense-fallback /
    // escalation / retained-KV drift) opens the breaker before the
    // consecutive-fault streak alone would. Independent of
    // breaker_fault_threshold — the alert is the trip condition.
    if (tele_pub_ && tele_pub_->consume_breaker_pretrip() && breaker != Breaker::kOpen) {
      ++result_.breaker_trips;
      SATTN_COUNTER_ADD("engine.breaker_trips", 1);
      SATTN_COUNTER_ADD("engine.breaker_pretrips", 1);
      breaker = Breaker::kOpen;
      breaker_open_until = now() + opts_.breaker_cooldown_seconds;
      SATTN_GAUGE_SET("engine.breaker_state", 1.0);
    }

    // --- Intake: wait if idle, then drain submissions under the lock. ---
    std::vector<ServingRequest> arrivals;
    std::vector<std::string> cancels;
    bool closed;
    {
      std::unique_lock lk(mu_);
      if (live_.empty() && intake_.empty() && cancel_intake_.empty() && !closed_) {
        loop_waiting_.store(true, std::memory_order_relaxed);
        cv_.wait(lk, [&] { return closed_ || !intake_.empty() || !cancel_intake_.empty(); });
        loop_waiting_.store(false, std::memory_order_relaxed);
      }
      arrivals.swap(intake_);
      cancels.swap(cancel_intake_);
      closed = closed_;
    }
    for (std::string& id : cancels) pending_cancels.insert(std::move(id));

    // --- Bounded drain: past the deadline, force-cancel everything. ---
    if (closed && now() >= drain_deadline_.load(std::memory_order_relaxed)) {
      for (ServingRequest& req : arrivals) cancel_unadmitted(std::move(req), "shutdown");
      for (auto& lp : live_) cancel_live(std::move(lp), "shutdown");
      live_.clear();
      break;
    }

    // --- Admission. ---
    for (ServingRequest& req : arrivals) {
      if (!pending_cancels.empty()) {
        const auto pc = pending_cancels.find(req.id);
        if (pc != pending_cancels.end()) {
          pending_cancels.erase(pc);
          cancel_unadmitted(std::move(req), "cancel");
          continue;
        }
      }
      auto lr = std::make_unique<Live>(opts_.head_dim, opts_.fault.for_request(req.id), arena_);
      lr->req = std::move(req);
      if (opts_.max_prompt_tokens > 0 && lr->req.prompt_tokens > opts_.max_prompt_tokens) {
        SATTN_COUNTER_ADD("sched.oversized_rejects", 1);
        shed(std::move(lr), "oversized");
        continue;
      }
      if (lr->req.prompt_tokens <= 0 ||
          (opts_.max_queue_depth > 0 &&
           static_cast<Index>(live_.size()) >= opts_.max_queue_depth)) {
        SATTN_COUNTER_ADD("sched.admission_rejects", 1);
        shed(std::move(lr), "admission");
        continue;
      }
      lr->admit_seq = admit_seq_++;
      lr->active = opts_.kv_budget_bytes <= 0.0;  // budget gate (activation below)
      const Index s = lr->req.prompt_tokens, d = opts_.head_dim;
      lr->in.q.resize(s, d);
      lr->in.k.resize(s, d);
      lr->in.v.resize(s, d);
      if (lr->req.segments.empty()) {
        // Sequential per-request fill — bit-identical to the pre-paging
        // engine, so segment-less runs reproduce exactly.
        Rng rng(mix_id(opts_.seed, lr->req.id));
        fill_matrix(lr->in.q, rng);
        fill_matrix(lr->in.k, rng);
        fill_matrix(lr->in.v, rng);
        if (opts_.decode_tokens > 0) {
          lr->dec_q.resize(opts_.decode_tokens, d);
          fill_matrix(lr->dec_q, rng);
        }
      } else {
        fill_segmented(lr->in, lr->req, opts_.seed);
        if (opts_.decode_tokens > 0) {
          lr->dec_q.resize(opts_.decode_tokens, d);
          Rng rng(mix_id(opts_.seed, "dec/" + lr->req.id));
          fill_matrix(lr->dec_q, rng);
        }
      }
      lr->out.resize(s, d);
      if (opts_.decode_tokens > 0) lr->dec_out.assign(static_cast<std::size_t>(d), 0.0f);

      probe_prefix(*lr);
      SATTN_COUNTER_ADD("sched.requests_enqueued", 1);
      live_.push_back(std::move(lr));
      result_.peak_live_batch = std::max(result_.peak_live_batch, static_cast<Index>(live_.size()));
      const Live& adm = *live_.back();
      const double t_adm = now();
      tele_push(obs::TelemetryEventKind::kAdmit, adm.req.id, t_adm);
      emit_timeline(opts_.run_label, adm.req.id, adm.req.arrival_seconds,
                    obs::RequestPhase::kSubmitted);
      emit_timeline(opts_.run_label, adm.req.id, t_adm, obs::RequestPhase::kAdmitted);
    }

    // --- Cancellation of in-flight requests (between chunks). ---
    if (!pending_cancels.empty()) {
      for (auto it = live_.begin(); it != live_.end();) {
        const auto pc = pending_cancels.find((*it)->req.id);
        if (pc != pending_cancels.end()) {
          pending_cancels.erase(pc);
          cancel_live(std::move(*it), "cancel");
          it = live_.erase(it);
        } else {
          ++it;
        }
      }
    }

    // --- KV budget: activation, backpressure, and the eviction rung. ---
    // Waiters activate FCFS when their projected bytes fit; before a waiter
    // blocks, the eviction rung compacts active decoding caches (retention
    // degrades before traffic sheds). Only a request whose solo demand
    // exceeds the whole budget sheds — so a finite trace cannot deadlock:
    // when no request is active the head waiter always fits.
    double active_kv_bytes = 0.0;
    for (const auto& lp : live_)
      if (lp->active) active_kv_bytes += kv_bytes_of(*lp);
    if (opts_.kv_budget_bytes > 0.0) {
      for (auto it = live_.begin(); it != live_.end();) {
        Live& lr = **it;
        if (lr.active) {
          ++it;
          continue;
        }
        const double need = kv_bytes_of(lr);
        if (active_kv_bytes + need > opts_.kv_budget_bytes &&
            opts_.kv_eviction != EvictionKind::kNone) {
          bool freed = false;
          for (auto& lp : live_) {
            if (lp->active && lp->decoding && lp->evict && lp->evict->enforce(lp->cache)) {
              freed = true;
            }
          }
          if (freed) {
            ++result_.kv_evictions;
            SATTN_COUNTER_ADD("engine.kv_evictions", 1);
            active_kv_bytes = 0.0;
            for (const auto& lp : live_)
              if (lp->active) active_kv_bytes += kv_bytes_of(*lp);
          }
        }
        if (active_kv_bytes + need <= opts_.kv_budget_bytes) {
          lr.active = true;
          // Requests that queued behind the budget re-probe the prefix
          // index: an earlier sharer may have published while they waited.
          // Attached shared pages bill at the counted-once share, so the
          // post-probe demand can only be <= the flat projection that
          // passed the fit test above.
          probe_prefix(lr);
          active_kv_bytes += kv_bytes_of(lr);
          ++it;
          continue;
        }
        if (need > opts_.kv_budget_bytes) {
          SATTN_COUNTER_ADD("engine.kv_budget_sheds", 1);
          shed(std::move(*it), "kv_budget");
          it = live_.erase(it);
          continue;
        }
        if (!lr.kv_waited) {
          lr.kv_waited = true;
          ++result_.kv_pressure_waits;
          SATTN_COUNTER_ADD("engine.kv_pressure_waits", 1);
        }
        break;  // FCFS: later arrivals must not jump the head waiter's budget
      }
    }
    result_.peak_kv_bytes = std::max(result_.peak_kv_bytes, active_kv_bytes);
    {
      // Arena-wide page residency (shared pages counted once by the arena).
      const Index pages_live = arena_->pages_live();
      result_.kv_pages_peak = std::max(result_.kv_pages_peak, pages_live);
      SATTN_GAUGE_SET("engine.kv_pages_live", static_cast<double>(pages_live));
    }

    // Telemetry snapshot channel: atomics only, read by the publisher.
    if (tele_hub_) {
      std::size_t active_n = 0;
      for (const auto& lp : live_)
        if (lp->active) ++active_n;
      tele_live_.store(live_.size(), std::memory_order_relaxed);
      tele_active_.store(active_n, std::memory_order_relaxed);
      tele_kv_bytes_.store(active_kv_bytes, std::memory_order_relaxed);
      tele_breaker_.store(static_cast<int>(breaker), std::memory_order_relaxed);
    }

    if (live_.empty()) {
      if (closed) break;
      continue;
    }

    // --- First-service steering, deadline shedding, runaway watchdog. ---
    // Mirrors simulate_queue_slo: when service is about to start, walk the
    // degrade ladder until the projected TTFT fits the target (taking a
    // rung only when it actually buys time — for dense engines the ladder
    // is a no-op), then shed whatever cannot make the hard deadline even
    // fully degraded. Started requests get the runaway check: a prefill
    // whose measured service time blew past watchdog_cost_multiple x its
    // projected cost is shed instead of parking the batch indefinitely.
    const double t_steer = now();
    for (auto it = live_.begin(); it != live_.end();) {
      Live& lr = **it;
      if (lr.start_s >= 0.0) {
        if (opts_.watchdog_cost_multiple > 0.0 && opts_.projected_prefill_seconds &&
            lr.finish_prefill_s < 0.0) {
          const double proj =
              opts_.projected_prefill_seconds(lr.req.prompt_tokens, scale_of(lr.level));
          if (proj > 0.0 && t_steer - lr.start_s > opts_.watchdog_cost_multiple * proj) {
            SATTN_COUNTER_ADD("engine.watchdog_sheds", 1);
            shed(std::move(*it), "watchdog");
            it = live_.erase(it);
            continue;
          }
        }
        ++it;
        continue;
      }
      const double waited = t_steer - lr.req.arrival_seconds;
      bool dead = opts_.deadline_seconds > 0.0 && waited > opts_.deadline_seconds;
      if (!dead && opts_.projected_prefill_seconds) {
        const auto& proj = opts_.projected_prefill_seconds;
        while (lr.level + 1 < levels) {
          const double cur = proj(lr.req.prompt_tokens, scale_of(lr.level));
          if (waited + cur <= target_ttft) break;
          if (proj(lr.req.prompt_tokens, scale_of(lr.level + 1)) >= cur) break;
          ++lr.level;
        }
        dead = opts_.deadline_seconds > 0.0 &&
               waited + proj(lr.req.prompt_tokens, scale_of(lr.level)) > opts_.deadline_seconds;
      }
      if (dead) {
        SATTN_COUNTER_ADD("sched.deadline_sheds", 1);
        shed(std::move(*it), "deadline");
        it = live_.erase(it);
      } else {
        ++it;
      }
    }
    if (live_.empty()) {
      if (closed) break;
      continue;
    }

    // --- Batch formation (runtime/batch.h): active slots only, backoff
    // gates respected. ---
    const double t_form = now();
    std::vector<SlotSnapshot> slots;
    double earliest_gate = std::numeric_limits<double>::infinity();
    for (const auto& lp : live_) {
      if (!lp->active) continue;  // KV backpressure: waiting, not serviceable
      if (lp->available_at > t_form) {
        earliest_gate = std::min(earliest_gate, lp->available_at);
        continue;
      }
      slots.push_back({lp->req.id, lp->admit_seq, lp->decoding, lp->req.prompt_tokens,
                       lp->prefilled});
    }
    if (slots.empty()) {
      // Everyone serviceable is backing off: sleep to the earliest gate
      // (clamped to the drain deadline), but wake on arrivals, cancels, or a
      // drain deadline armed after the sleep began — a bounded finish() must
      // not wait out a long backoff.
      std::unique_lock lk(mu_);
      const double dd0 = drain_deadline_.load(std::memory_order_relaxed);
      const double lead = std::min(earliest_gate, dd0) - now();
      if (lead > 0.0 && intake_.empty() && cancel_intake_.empty()) {
        loop_waiting_.store(true, std::memory_order_relaxed);
        cv_.wait_for(lk, std::chrono::duration<double>(lead), [&] {
          return !intake_.empty() || !cancel_intake_.empty() ||
                 drain_deadline_.load(std::memory_order_relaxed) != dd0;
        });
        loop_waiting_.store(false, std::memory_order_relaxed);
      }
      continue;
    }
    StepPlanConfig plan_cfg{opts_.max_batch, opts_.chunk_tokens};
    const std::vector<StepItem> step = form_step(std::move(slots), plan_cfg);
    if (step.empty()) continue;
    ++result_.iterations;
    SATTN_SERIES("sched.queue_depth", t_form, static_cast<double>(live_.size()));

    const auto find_live = [&](const std::string& id) -> Live* {
      for (const auto& lp : live_)
        if (lp->req.id == id) return lp.get();
      return nullptr;
    };

    // --- Per-item kernel planning; sample mode runs the measured
    // escalation ladder here (rejected attempts bill to guard). ---
    struct ItemState {
      Live* lr = nullptr;
      Index q_lo = 0, q_hi = 0;
      bool decode = false;
      double plan_s = 0.0;   // accepted attempt's planning time (compute)
      bool escalated = false;
      // Sparse-route storage (sample mode): kept alive through the sweep.
      std::unique_ptr<AttentionInput> chunk;
      std::unique_ptr<SamplePlan> plan;
      std::unique_ptr<Matrix> chunk_out;
    };
    std::vector<ItemState> items;
    items.reserve(step.size());
    RaggedBatchView batch;
    batch.flash = opts_.flash;
    for (StepItem si : step) {
      Live* lr = find_live(si.id);
      assert(lr != nullptr);
      // Scheduled-time prefix probe: a request starting its FIRST prefill
      // chunk looks the index up again here — requests admitted in the same
      // intake sweep (or queued behind the batch) see pages an earlier
      // sharer published after their admission-time probe missed. On a hit
      // the scheduled window shifts past the attached rows.
      if (!si.decode && si.q_lo == 0 && lr->prefilled == 0) {
        probe_prefix(*lr);
        if (lr->prefilled > 0) {
          const Index rows = si.q_hi - si.q_lo;
          si.q_lo = lr->prefilled;
          si.q_hi = std::min(lr->req.prompt_tokens, si.q_lo + rows);
        }
      }
      ItemState st;
      st.lr = lr;
      st.decode = si.decode;
      st.q_lo = si.q_lo;
      st.q_hi = si.q_hi;
      RaggedSeq seq;
      seq.request_id = request_key(opts_.run_label, lr->req.id);
      seq.span_name = si.decode ? "seq/decode_step" : "seq/prefill_chunk";
      const Index d = opts_.head_dim;
      if (si.decode) {
        seq.route = SeqRoute::kDense;
        seq.q = lr->dec_q.row(lr->decoded).data();
        seq.rows = 1;
        seq.kv = lr->cache.view();  // reads straight through the page table
        seq.k_hi = lr->cache.size();
        seq.causal_off = seq.k_hi - 1;
        seq.out = lr->dec_out.data();
      } else if (opts_.mode == EngineMode::kDense) {
        // Zero-copy chunked prefill: queries [q_lo, q_hi) against the key
        // prefix [0, q_hi) of the request's own square input.
        seq.route = SeqRoute::kDense;
        seq.q = lr->in.q.row(si.q_lo).data();
        seq.rows = si.q_hi - si.q_lo;
        seq.kv = mk::KvView::of(lr->in);
        seq.k_hi = si.q_hi;
        seq.causal_off = si.q_lo;
        seq.out = lr->out.row(si.q_lo).data();
      } else {
        // SampleAttention chunk: materialize the chunk, run the measured
        // plan/validate/escalate ladder, then execute the accepted plan's
        // sparse kernel (or the dense fallback) inside the sweep.
        st.chunk = std::make_unique<AttentionInput>();
        st.chunk->q.resize(si.q_hi - si.q_lo, d);
        st.chunk->k.resize(si.q_hi, d);
        st.chunk->v.resize(si.q_hi, d);
        for (Index r = 0; r < si.q_hi - si.q_lo; ++r) {
          const auto src = lr->in.q.row(si.q_lo + r);
          std::copy(src.begin(), src.end(), st.chunk->q.row(r).begin());
        }
        for (Index r = 0; r < si.q_hi; ++r) {
          const auto ks = lr->in.k.row(r);
          const auto vs = lr->in.v.row(r);
          std::copy(ks.begin(), ks.end(), st.chunk->k.row(r).begin());
          std::copy(vs.begin(), vs.end(), st.chunk->v.row(r).begin());
        }

        // Degrade level -> planner budget: the ladder's density scale
        // multiplies the CRA threshold and window budget, the same knobs
        // the simulator's cost model scales.
        SampleAttentionConfig cfg = opts_.sample;
        const double ds = scale_of(lr->level);
        cfg.alpha = std::min(1.0, cfg.alpha * ds);
        cfg.window_ratio = cfg.window_ratio * ds;

        bool dense_fallback = false;
        // Circuit breaker: while open, no guard time is burned on a planner
        // known to be faulting — the chunk short-circuits straight to the
        // dense rung. The first chunk after the cooldown probes half-open.
        if (breaker == Breaker::kOpen) {
          if (now() < breaker_open_until) {
            dense_fallback = true;
            SATTN_COUNTER_ADD("engine.breaker_short_circuits", 1);
          } else {
            breaker = Breaker::kHalfOpen;
            SATTN_GAUGE_SET("engine.breaker_state", 2.0);
          }
        }
        if (!dense_fallback) {
          Index resamples = 0, widens = 0;
          for (;;) {
            const double a0 = now();
            SamplePlan plan = plan_sample_attention(*st.chunk, cfg);
            if (opts_.guard.plan_hook) opts_.guard.plan_hook(plan);
            const Status ok = validate_sample_plan(plan, *st.chunk, cfg, opts_.guard);
            const double attempt_s = now() - a0;
            if (ok.ok()) {
              st.plan_s = attempt_s;
              st.plan = std::make_unique<SamplePlan>(std::move(plan));
              break;
            }
            // Rejected attempt: measured guardrail time, next rung.
            lr->guard_s += attempt_s;
            SATTN_COUNTER_ADD("engine.plan_rejects", 1);
            st.escalated = true;
            if (resamples < opts_.guard.max_resamples) {
              ++resamples;
              cfg.row_ratio *= opts_.guard.resample_factor;
            } else if (widens < opts_.guard.max_widens) {
              ++widens;
              cfg.window_ratio *= opts_.guard.widen_factor;
            } else {
              dense_fallback = true;  // exact rung, always valid
              break;
            }
          }
          // Breaker bookkeeping per planning episode: exhausting the whole
          // ladder is one consecutive plan fault; an accepted plan resets
          // the streak and closes a half-open breaker.
          if (opts_.breaker_fault_threshold > 0) {
            if (dense_fallback || !st.plan) {
              ++consecutive_plan_faults;
              if (breaker == Breaker::kHalfOpen ||
                  consecutive_plan_faults >= opts_.breaker_fault_threshold) {
                ++result_.breaker_trips;
                SATTN_COUNTER_ADD("engine.breaker_trips", 1);
                breaker = Breaker::kOpen;
                breaker_open_until = now() + opts_.breaker_cooldown_seconds;
                SATTN_GAUGE_SET("engine.breaker_state", 1.0);
              }
            } else {
              consecutive_plan_faults = 0;
              if (breaker == Breaker::kHalfOpen) {
                breaker = Breaker::kClosed;
                SATTN_COUNTER_ADD("engine.breaker_closes", 1);
                SATTN_GAUGE_SET("engine.breaker_state", 0.0);
              }
            }
          }
        }
        // One planning-episode telemetry event per chunk: retained-KV
        // fraction (mask density; 1.0 for the dense rung), escalation and
        // fallback bits feed the rolling drift monitors.
        {
          const bool fellback = dense_fallback || !st.plan;
          const double retained = fellback ? 1.0 : st.plan->density;
          const std::uint32_t aux =
              (st.escalated ? 1u : 0u) | (fellback ? 2u : 0u);
          tele_push(obs::TelemetryEventKind::kPlan, lr->req.id, now(), retained, aux);
        }
        if (dense_fallback || !st.plan) {
          SATTN_COUNTER_ADD("engine.dense_fallbacks", 1);
          seq.route = SeqRoute::kDense;
          seq.q = lr->in.q.row(si.q_lo).data();
          seq.rows = si.q_hi - si.q_lo;
          seq.kv = mk::KvView::of(lr->in);
          seq.k_hi = si.q_hi;
          seq.causal_off = si.q_lo;
          seq.out = lr->out.row(si.q_lo).data();
        } else {
          st.chunk_out = std::make_unique<Matrix>();
          seq.route = SeqRoute::kSparse;
          seq.chunk = st.chunk.get();
          seq.mask = &st.plan->mask;
          seq.out_mat = st.chunk_out.get();
          if (auditor_) {
            // Shadow audit of the accepted plan, run by the sweep after the
            // kernel's timing window. Serving requests are single-head
            // synthetic workloads, so the scorecard slot is a stable
            // pseudo-head hash(id) % head_buckets at layer 0.
            seq.auditor = auditor_.get();
            seq.audit_q_lo = si.q_lo;
            seq.audit_layer = 0;
            seq.audit_head = audit_head_of(lr->req.id);
            seq.audit_predicted = st.plan->filter.coverage;
          }
        }
      }
      batch.seqs.push_back(std::move(seq));
      items.push_back(std::move(st));
    }

    // --- One ragged sweep services the whole step. ---
    const std::vector<SeqCost> costs = ragged_attention_sweep(batch);

    // --- Apply results: fault injection, attribution, phase transitions. ---
    const double t_done = now();
    for (std::size_t i = 0; i < items.size(); ++i) {
      ItemState& st = items[i];
      Live* lr = st.lr;
      const double kernel_s = costs[i].seconds;
      if (lr->start_s < 0.0) lr->start_s = t_done - kernel_s;

      // Shadow-audit outcome (sparse chunks only; rows = 0 otherwise). The
      // audit's wall time is quality assurance, not service compute: it
      // bills to guard — keeping queue + compute + guard == ttft — even
      // when the chunk itself faults below. The measured chunk CRA feeds
      // the kAudit telemetry stream and the measured_cra_low monitor.
      const obs::AuditResult& audit = costs[i].audit;
      if (audit.rows > 0) {
        lr->guard_s += audit.seconds;
        tele_push(obs::TelemetryEventKind::kAudit, lr->req.id, t_done, audit.cra_min,
                  static_cast<std::uint32_t>(audit.rows));
      }

      if (!st.decode && lr->injector.should_fire()) {
        // Transient chunk fault: the attempt's measured work (planning and
        // kernel) is lost guardrail time, and the backoff gate is
        // guardrail-imposed waiting — the chunk is redone after it.
        lr->guard_s += st.plan_s + kernel_s;
        if (lr->attempts > opts_.max_retries) {
          SATTN_COUNTER_ADD("sched.retry_exhausted_sheds", 1);
          for (auto it = live_.begin(); it != live_.end(); ++it) {
            if (it->get() == lr) {
              shed(std::move(*it), "retries_exhausted");
              live_.erase(it);
              break;
            }
          }
          continue;
        }
        ++result_.retries;
        SATTN_COUNTER_ADD("sched.request_retries", 1);
        const double backoff =
            opts_.retry_backoff_seconds * static_cast<double>(1 << (lr->attempts - 1));
        lr->available_at = t_done + backoff;
        lr->guard_s += backoff;
        ++lr->attempts;
        continue;
      }

      if (st.decode) {
        lr->decode_total_s += kernel_s;
        // H2O's heavy-hitter scores observe this step's real attention
        // weights (runtime/decode.h) — only when the pressure rung is
        // armed, so the un-budgeted decode path stays untouched.
        if (lr->evict && opts_.kv_eviction == EvictionKind::kH2O) {
          std::vector<float> weights;
          std::vector<float> scratch(static_cast<std::size_t>(opts_.head_dim), 0.0f);
          const auto q = lr->dec_q.row(lr->decoded);
          const Status ws = decode_attention(q, lr->cache, scratch, &weights);
          if (ws.ok()) lr->evict->observe(lr->cache, weights);
        }
        // Decode-phase shadow audit: decode is exact, so its weights ARE the
        // ground-truth row — a sampled step scores the request's accepted
        // plan structure (window + stripes) against them for free. Absolute
        // row index prompt_tokens + decoded keeps selection deterministic
        // across the whole request lifetime. Decode audit time stays out of
        // guard (TTFT is already fixed at prefill-done) and out of
        // decode_total_s (TPOT stays honest); the auditor tracks it as
        // overhead_seconds.
        if (auditor_ && lr->audit_has_plan &&
            auditor_->selects_row(lr->req.id, lr->req.prompt_tokens + lr->decoded)) {
          const double a0 = now();
          std::vector<float> weights;
          std::vector<float> scratch(static_cast<std::size_t>(opts_.head_dim), 0.0f);
          const Status ws =
              decode_attention(lr->dec_q.row(lr->decoded), lr->cache, scratch, &weights);
          if (ws.ok()) {
            const double retained = audited_decode_retained_mass(
                weights, lr->audit_stripes, lr->audit_window);
            auditor_->record_decode(0, audit_head_of(lr->req.id), retained,
                                    lr->audit_predicted, now() - a0);
            tele_push(obs::TelemetryEventKind::kAudit, lr->req.id, t_done, retained, 1);
          }
        }
        ++lr->decoded;
        tele_push(obs::TelemetryEventKind::kDecodeStep, lr->req.id, t_done, kernel_s);
        emit_timeline(opts_.run_label, lr->req.id, t_done, obs::RequestPhase::kDecodeStep);
        continue;
      }

      // Successful prefill chunk.
      lr->compute_s += st.plan_s + kernel_s;
      tele_push(obs::TelemetryEventKind::kPrefillChunk, lr->req.id, t_done,
                st.plan_s + kernel_s, static_cast<std::uint32_t>(st.q_hi - st.q_lo));
      emit_timeline(opts_.run_label, lr->req.id, t_done, obs::RequestPhase::kPrefillChunk);
      if (st.chunk_out) {
        // Sparse route wrote chunk-local rows; fold them into the request
        // output.
        for (Index r = 0; r < st.q_hi - st.q_lo; ++r) {
          const auto src = st.chunk_out->row(r);
          std::copy(src.begin(), src.end(), lr->out.row(st.q_lo + r).begin());
        }
      }
      if ((auditor_ || opts_.kv_sparse_residency) && st.plan) {
        // Remember the accepted plan's structure: the decode-phase shadow
        // audit scores sampled rows against it, and sparse-residency
        // eviction keeps exactly its stripes + window at prefill-done.
        lr->audit_stripes = st.plan->mask.stripe_columns();
        lr->audit_window = st.plan->mask.window();
        lr->audit_predicted = st.plan->filter.coverage;
        lr->audit_has_plan = auditor_ != nullptr;
        lr->resid_has_plan = true;
      }
      lr->prefilled = st.q_hi;
      const double ttft_so_far = t_done - lr->req.arrival_seconds;
      if (opts_.deadline_seconds > 0.0 && ttft_so_far > opts_.deadline_seconds) {
        // Deadline enforcement between chunks: a request that blew its TTFT
        // deadline mid-prefill sheds now instead of burning the remaining
        // chunks' device time.
        SATTN_COUNTER_ADD("sched.deadline_sheds", 1);
        for (auto it = live_.begin(); it != live_.end(); ++it) {
          if (it->get() == lr) {
            shed(std::move(*it), "deadline");
            live_.erase(it);
            break;
          }
        }
        continue;
      }
      if (lr->prefilled >= lr->req.prompt_tokens) {
        // The cache is needed for decode, and (independently) to publish
        // this prompt's prefix pages for future requests to attach. It is
        // filled BEFORE the TTFT stamp: the fill (and the prefix publish's
        // hashing) bills to compute, so it must lie inside the TTFT wall
        // window or the queue residual could go negative.
        if (opts_.decode_tokens > 0 || opts_.kv_prefix_cache) {
          // Cache fill is service work on the request's critical path; it
          // appends only the suffix past any attached prefix pages.
          const double c0 = now();
          const Status cs = lr->cache.append_prefill(lr->in);
          assert(cs.ok());
          (void)cs;
          if (opts_.kv_prefix_cache) lr->cache.publish_prefix(lr->in, lr->out);
          lr->compute_s += now() - c0;
          // Sparse-residency eviction: with an accepted structured plan, no
          // decode row will read keys outside the plan's stripes + local
          // window — free the pages holding only such tokens, so page
          // residency tracks the mask's retained fraction.
          if (opts_.kv_sparse_residency && lr->resid_has_plan) {
            const Index dropped =
                apply_mask_residency(lr->cache, lr->audit_stripes, lr->audit_window);
            if (dropped > 0) {
              ++result_.kv_residency_evictions;
              SATTN_COUNTER_ADD("engine.kv_residency_evictions", 1);
            }
          }
          result_.kv_pages_resident += lr->cache.pages();
          result_.kv_pages_full += (lr->req.prompt_tokens + arena_->page_tokens() - 1) >>
                                   arena_->page_shift();
          if (opts_.decode_tokens > 0) {
            lr->decoding = true;
            if (opts_.kv_budget_bytes > 0.0) {
              lr->evict = make_eviction_policy(opts_.kv_eviction, opts_.kv_evict_keep,
                                               opts_.kv_evict_recent);
            }
          }
          // The prefill tensors are dead once the cache holds K/V: release
          // them so live memory tracks what the KV budget models.
          lr->in = AttentionInput{};
          lr->out = Matrix{};
        }
        const double t_fin = now();
        lr->finish_prefill_s = t_fin;
        tele_push(obs::TelemetryEventKind::kPrefillDone, lr->req.id, t_fin,
                  t_fin - lr->req.arrival_seconds);
        emit_timeline(opts_.run_label, lr->req.id, t_fin, obs::RequestPhase::kPrefillDone);
      }
    }

    // --- Completions. ---
    for (auto it = live_.begin(); it != live_.end();) {
      Live& lr = **it;
      const bool prefill_done = lr.finish_prefill_s >= 0.0;
      const bool decode_done = !lr.decoding || lr.decoded >= opts_.decode_tokens;
      if (!(prefill_done && decode_done)) {
        ++it;
        continue;
      }
      EngineCompletion c;
      c.base = CompletedRequest{std::move(lr.req), lr.start_s, lr.finish_prefill_s, lr.level,
                                lr.attempts};
      c.base.compute_seconds = lr.compute_s;
      c.base.guard_seconds = lr.guard_s;
      c.base.queue_seconds = c.base.ttft() - c.base.compute_seconds - c.base.guard_seconds;
      c.decoded_tokens = lr.decoded;
      c.tpot_seconds = lr.decoded > 0 ? lr.decode_total_s / static_cast<double>(lr.decoded) : 0.0;
      c.prefix_hit_tokens = lr.prefix_hit;
      if (lr.level > 0) {
        ++result_.degraded;
        SATTN_COUNTER_ADD("sched.requests_degraded", 1);
      }
      ++result_.served_per_level[static_cast<std::size_t>(lr.level)];
      emit_completion_metrics(opts_.run_label, c);
      SATTN_COUNTER_ADD("sched.requests_completed", 1);
      const double t_comp = now();
      tele_push(obs::TelemetryEventKind::kComplete, c.base.request.id, t_comp, c.tpot_seconds,
                static_cast<std::uint32_t>(c.decoded_tokens));
      emit_timeline(opts_.run_label, c.base.request.id, t_comp, obs::RequestPhase::kCompleted);
      result_.completed.push_back(std::move(c));
      it = live_.erase(it);
    }
  }
  // Loop exited: nothing left for the watchdog to monitor.
  loop_waiting_.store(true, std::memory_order_relaxed);
}

}  // namespace sattn
