// Model-level prefill runner: executes an attention method over the whole
// (layers x heads) grid of a model config on the substrate, aggregating
// density / overhead / wall-clock statistics. This is the closest the
// library gets to "replace the attention op inside the model": everything a
// serving integration would observe per request is collected here.
#pragma once

#include <string>
#include <vector>

#include "attention/attention_method.h"
#include "core/status.h"
#include "model/synthetic_model.h"

namespace sattn {

struct PrefillOptions {
  // Heads sampled per layer (running all 32 heads of all layers on CPU is
  // possible but slow; the sampled statistics converge quickly).
  Index heads_per_layer = 2;
  // If >0, run only every stride-th layer.
  Index layer_stride = 1;
  // When non-empty, the run executes under an obs::RequestContext with this
  // id: kernel charges are attributed to the request and
  // `request.<id>.flops/.bytes/.seconds` gauges are emitted.
  std::string request_id;
};

struct PrefillReport {
  std::string method;
  Index heads_run = 0;
  double seconds = 0.0;           // wall-clock across all heads run
  double mean_density = 0.0;      // kept fraction of causal score entries
  double mean_overhead = 0.0;     // planning overhead fraction
  std::vector<double> per_layer_density;  // indexed by layer (run layers only)
  std::vector<Index> layers;              // which layers were run
};

// Runs the method over the sampled (layer, head) grid. Malformed options or
// model configs are kInvalidArgument rather than an assert.
StatusOr<PrefillReport> run_prefill(const ModelConfig& model, const ContentSpec& content,
                                    const AttentionMethod& method,
                                    const PrefillOptions& opts = {});

}  // namespace sattn
