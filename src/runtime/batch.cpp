#include "runtime/batch.h"

#include <algorithm>
#include <cassert>
#include <chrono>

#include "core/thread_pool.h"
#include "obs/accounting.h"
#include "obs/trace.h"

namespace sattn {

namespace {

double run_seq(const RaggedSeq& s, const FlashConfig& flash) {
  switch (s.route) {
    case SeqRoute::kDense: {
      assert(s.q && s.out && (s.kv.paged() || (s.kv.k && s.kv.v)));
      const double evals = flash_rows(s.q, s.rows, s.kv, s.k_hi, s.causal_off, s.out, s.kv.d, flash);
      obs::charge_attention_kernel("flash", s.rows, s.k_hi, s.kv.d, evals);
      return evals;
    }
    // The structured routes take either the tensor form (chunk) mask
    // planning materialized, or the view form (q + kv + k_hi) that reads
    // straight through a KVCache's page table.
    case SeqRoute::kSparse:
      assert(s.mask && s.out_mat);
      if (s.chunk != nullptr) {
        sparse_flash_attention(*s.chunk, *s.mask, *s.out_mat);
      } else {
        assert(s.q && (s.kv.paged() || (s.kv.k && s.kv.v)));
        sparse_flash_attention(s.q, s.rows, s.kv, s.k_hi, *s.mask, *s.out_mat);
      }
      return 0.0;
    case SeqRoute::kBlockSparse:
      assert(s.layout && s.out_mat);
      if (s.chunk != nullptr) {
        block_sparse_attention(*s.chunk, *s.layout, *s.out_mat);
      } else {
        assert(s.q && (s.kv.paged() || (s.kv.k && s.kv.v)));
        block_sparse_attention(s.q, s.rows, s.kv, s.k_hi, *s.layout, *s.out_mat);
      }
      return 0.0;
  }
  return 0.0;
}

}  // namespace

std::vector<SeqCost> ragged_attention_sweep(const RaggedBatchView& batch) {
  SATTN_SPAN("kernel/ragged_sweep");
  std::vector<SeqCost> costs(batch.seqs.size());
  // One work item per sequence: per-sequence wall clocks stay disjoint, and
  // the structured kernels' internal parallel_for runs inline on the worker
  // (ThreadPool::parallel_for is re-entrant), so sequence-level parallelism
  // is the only parallelism and the measured seconds are honest compute.
  parallel_for(static_cast<Index>(batch.seqs.size()), [&](Index si) {
    const RaggedSeq& s = batch.seqs[static_cast<std::size_t>(si)];
    SeqCost& cost = costs[static_cast<std::size_t>(si)];
    const auto t0 = std::chrono::steady_clock::now();
    if (s.request_id.empty()) {
      cost.evals = run_seq(s, batch.flash);
    } else {
      obs::RequestContext ctx(s.request_id);
      if (s.span_name != nullptr) {
        obs::ScopedSpan span(s.span_name);
        cost.evals = run_seq(s, batch.flash);
      } else {
        cost.evals = run_seq(s, batch.flash);
      }
    }
    cost.seconds = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
    // Shadow quality audit, outside the kernel timing window: re-enters the
    // request context so the audit's acct.* charges attribute correctly.
    if (s.auditor != nullptr && s.route == SeqRoute::kSparse && s.chunk != nullptr &&
        s.mask != nullptr) {
      const auto run_audit = [&] {
        return s.auditor->audit_chunk(s.request_id, *s.chunk, *s.mask, s.audit_q_lo,
                                      s.audit_layer, s.audit_head, s.audit_predicted);
      };
      if (s.request_id.empty()) {
        cost.audit = run_audit();
      } else {
        obs::RequestContext ctx(s.request_id);
        cost.audit = run_audit();
      }
    }
  });
  return costs;
}

std::vector<StepItem> form_step(std::vector<SlotSnapshot> slots, const StepPlanConfig& cfg) {
  assert(cfg.max_batch > 0 && cfg.chunk_tokens > 0);
  // Admission order is a total order (the engine assigns admit_seq from a
  // counter), so this sort makes the plan independent of snapshot order.
  std::sort(slots.begin(), slots.end(),
            [](const SlotSnapshot& a, const SlotSnapshot& b) { return a.admit_seq < b.admit_seq; });
  std::vector<StepItem> plan;
  for (const SlotSnapshot& s : slots) {
    if (static_cast<Index>(plan.size()) >= cfg.max_batch) break;
    StepItem item;
    item.id = s.id;
    if (s.decoding) {
      item.decode = true;
    } else {
      if (s.prefilled_tokens >= s.prompt_tokens) continue;  // nothing left this phase
      item.q_lo = s.prefilled_tokens;
      item.q_hi = std::min(s.prompt_tokens, s.prefilled_tokens + cfg.chunk_tokens);
    }
    plan.push_back(std::move(item));
  }
  return plan;
}

}  // namespace sattn
