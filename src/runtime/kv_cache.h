// Per-head KV cache for the decode phase, backed by paged storage.
//
// The paper evaluates SampleAttention at the prefill stage "while
// maintaining an uncompressed KV cache in the decode phase", and notes the
// method is orthogonal to KV-eviction work (H2O, StreamingLLM, FastGen).
// This cache is the substrate for demonstrating that composition: prefill
// fills it, decode reads it, and an EvictionPolicy (eviction.h) may compact
// it under a memory budget.
//
// Storage is a page table over a KvPageArena (runtime/kv_page.h): logical
// slot j lives in page j >> page_shift at row j & page_mask. Pages at the
// front of the table may be SHARED prefix pages attached from the arena's
// content-hash index (immutable, refcounted); appends only ever write the
// private tail page, and keep_slots rewrites survivors into fresh private
// pages — releasing whole shared/old pages back to the arena is what makes
// eviction page-granular and divergence copy-on-write. Kernels read the
// table zero-copy through view() (a paged mk::KvView), bit-identical to
// flat storage.
//
// Mutations take data-dependent input (positions, row payloads, slot lists)
// and return a checked sattn::Status instead of asserting: a non-monotone
// append or a malformed slot list is rejected with the cache unchanged,
// in release builds too (docs/ROBUSTNESS.md). Slot accessors stay
// assert-guarded — they are hot-path reads with caller-proven indices.
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "attention/microkernel.h"
#include "core/status.h"
#include "core/tensor.h"
#include "runtime/kv_page.h"

namespace sattn {

class KVCache {
 public:
  // With no arena the cache creates a private one — existing call sites
  // keep working and pay only page-granular bookkeeping. Caches that should
  // share prefix pages must be constructed over the same arena.
  explicit KVCache(Index head_dim, std::shared_ptr<KvPageArena> arena = nullptr);
  ~KVCache();

  KVCache(const KVCache&) = delete;
  KVCache& operator=(const KVCache&) = delete;
  KVCache(KVCache&&) noexcept = default;  // source is left empty (vectors moved out)
  KVCache& operator=(KVCache&& other) noexcept;

  Index size() const { return static_cast<Index>(positions_.size()); }
  Index head_dim() const { return d_; }
  bool empty() const { return positions_.empty(); }

  const std::shared_ptr<KvPageArena>& arena() const { return arena_; }

  // Payload bytes currently held, page-granular and counted once under
  // sharing: each of this cache's pages contributes page_bytes() divided by
  // the number of caches holding it (the prefix index's own hold is
  // excluded from that denominator). Summing bytes() across all caches of
  // an arena therefore counts every shared page exactly once — the quantity
  // the serving engine's KV budget meters and eviction reclaims. Position
  // metadata is excluded: the budget models device KV capacity, not host
  // bookkeeping.
  double bytes() const;

  // Pages currently mapped by this cache's page table.
  Index pages() const { return static_cast<Index>(pages_.size()); }
  // Leading pages attached from the prefix index (immutable, shared).
  Index shared_pages() const { return shared_pages_; }

  // Appends one key/value row for the token at original position `pos`.
  // Positions must be strictly increasing (kFailedPrecondition) and the rows
  // must have head_dim entries (kInvalidArgument); on error nothing is
  // appended.
  Status append(Index pos, std::span<const float> k_row, std::span<const float> v_row);

  // Bulk-appends positions [lo, in.sk()) from a prefill input, where lo is
  // the current size — so a cache holding an attached prefix appends only
  // the suffix it actually computed. The cache must currently hold exactly
  // positions [0, size()) (true for the attach/append lifecycle; after
  // eviction the append positions would collide and the call is rejected).
  Status append_prefill(const AttentionInput& in);

  std::span<const float> k(Index slot) const {
    assert(slot >= 0 && slot < size());
    return {k_ptrs_[static_cast<std::size_t>(slot >> shift_)] +
                static_cast<std::size_t>(slot & mask_) * d_,
            static_cast<std::size_t>(d_)};
  }
  std::span<const float> v(Index slot) const {
    assert(slot >= 0 && slot < size());
    return {v_ptrs_[static_cast<std::size_t>(slot >> shift_)] +
                static_cast<std::size_t>(slot & mask_) * d_,
            static_cast<std::size_t>(d_)};
  }

  // Zero-copy paged view over the table: slot j of the view is slot j of
  // the cache. This is what routes decode and the ragged-sweep kernels
  // through the page table (attention/microkernel.h). Valid until the next
  // mutation of this cache.
  mk::KvView view() const;

  // Original token position held in a slot (eviction makes slots sparse in
  // position space).
  Index position(Index slot) const {
    assert(slot >= 0 && slot < size());
    return positions_[static_cast<std::size_t>(slot)];
  }

  // Slot currently holding the given original position, or -1.
  Index slot_of(Index pos) const;

  // Compacts the cache to exactly the given slots. The list must be strictly
  // ascending and in-range (kInvalidArgument otherwise; cache unchanged).
  // Everything else is discarded. Survivors are rewritten into fresh
  // private pages and every old page — shared prefix pages included — is
  // released to the arena, so eviction frees whole pages (and divergence
  // from a shared prefix is a page copy, never a write to the shared
  // image).
  Status keep_slots(std::span<const Index> sorted_slots);

  // ---- Prefix sharing (runtime/kv_page.h) -------------------------------

  // Probes the arena's prefix index with the chain hashes of `in`'s leading
  // full pages and attaches every hit: the shared pages join the page
  // table, their stored attention outputs are copied into the matching rows
  // of `out` (when non-null; must be [in.sq() x head_dim]). The cache must
  // be empty. Attachment stops at the first miss and never exceeds
  // max_tokens (rounded down to a page boundary). Returns the number of
  // tokens attached — the prefill compute the caller can skip.
  Index try_attach_prefix(const AttentionInput& in, Index max_tokens, Matrix* out);

  // Publishes the leading full pages of this cache (which must hold
  // positions [0, size()) built from `in`, with `out` the computed
  // attention outputs) to the arena's prefix index, making them immutable
  // and shareable. Pages already published (e.g. attached ones) are
  // skipped. Returns the number of pages newly published.
  Index publish_prefix(const AttentionInput& in, const Matrix& out);

 private:
  void push_page(const KvPageArena::PageRef& ref);
  void release_all_pages();

  Index d_ = 0;
  Index shift_ = 0;
  Index mask_ = 0;
  std::shared_ptr<KvPageArena> arena_;
  std::vector<Index> pages_;   // arena page ids, in slot order
  std::vector<float*> k_ptrs_; // per-page row bases (arena-stable)
  std::vector<float*> v_ptrs_;
  Index shared_pages_ = 0;     // leading immutable pages from the index
  std::vector<Index> positions_;
};

}  // namespace sattn
