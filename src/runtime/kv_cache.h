// Per-head KV cache for the decode phase.
//
// The paper evaluates SampleAttention at the prefill stage "while
// maintaining an uncompressed KV cache in the decode phase", and notes the
// method is orthogonal to KV-eviction work (H2O, StreamingLLM, FastGen).
// This cache is the substrate for demonstrating that composition: prefill
// fills it, decode reads it, and an EvictionPolicy (eviction.h) may compact
// it under a memory budget.
//
// Mutations take data-dependent input (positions, row payloads, slot lists)
// and return a checked sattn::Status instead of asserting: a non-monotone
// append or a malformed slot list is rejected with the cache unchanged,
// in release builds too (docs/ROBUSTNESS.md). Slot accessors stay
// assert-guarded — they are hot-path reads with caller-proven indices.
#pragma once

#include <span>
#include <vector>

#include "core/status.h"
#include "core/tensor.h"

namespace sattn {

class KVCache {
 public:
  explicit KVCache(Index head_dim) : d_(head_dim) { assert(head_dim > 0); }

  Index size() const { return static_cast<Index>(positions_.size()); }
  Index head_dim() const { return d_; }
  bool empty() const { return positions_.empty(); }

  // Payload bytes currently held (K + V streams, fp32 substrate) — the
  // quantity the serving engine's KV memory budget meters and eviction
  // policies reclaim. Position metadata is excluded: the budget models
  // device KV capacity, not host bookkeeping.
  double bytes() const {
    return 2.0 * static_cast<double>(size()) * static_cast<double>(d_) * sizeof(float);
  }

  // Appends one key/value row for the token at original position `pos`.
  // Positions must be strictly increasing (kFailedPrecondition) and the rows
  // must have head_dim entries (kInvalidArgument); on error nothing is
  // appended.
  Status append(Index pos, std::span<const float> k_row, std::span<const float> v_row);

  // Bulk-appends positions [0, in.sk()) from a prefill input. The cache must
  // be empty or end before position 0's predecessor — in practice: empty.
  Status append_prefill(const AttentionInput& in);

  std::span<const float> k(Index slot) const {
    assert(slot >= 0 && slot < size());
    return {k_.data() + static_cast<std::size_t>(slot * d_), static_cast<std::size_t>(d_)};
  }
  std::span<const float> v(Index slot) const {
    assert(slot >= 0 && slot < size());
    return {v_.data() + static_cast<std::size_t>(slot * d_), static_cast<std::size_t>(d_)};
  }

  // Flat contiguous storage (size() * head_dim() floats, row per slot).
  // This is what lets decode route through the batched kernels: an
  // mk::KvView over {k_data(), v_data()} reads the cache with zero copies.
  const float* k_data() const { return k_.data(); }
  const float* v_data() const { return v_.data(); }

  // Original token position held in a slot (eviction makes slots sparse in
  // position space).
  Index position(Index slot) const {
    assert(slot >= 0 && slot < size());
    return positions_[static_cast<std::size_t>(slot)];
  }

  // Slot currently holding the given original position, or -1.
  Index slot_of(Index pos) const;

  // Compacts the cache to exactly the given slots. The list must be strictly
  // ascending and in-range (kInvalidArgument otherwise; cache unchanged).
  // Everything else is discarded.
  Status keep_slots(std::span<const Index> sorted_slots);

 private:
  Index d_ = 0;
  std::vector<float> k_;
  std::vector<float> v_;
  std::vector<Index> positions_;
};

}  // namespace sattn
