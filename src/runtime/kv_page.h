// Global KV page arena: fixed-size pages, refcounts, and the prefix index.
//
// vLLM-style paged KV storage (PagedAttention; ROADMAP item 1): instead of
// one contiguous K/V slab per request, every KVCache maps its logical slots
// onto fixed-size pages drawn from a shared arena. Pages are refcounted, so
// requests with a common prompt prefix share the same physical pages, and
// the content-hash prefix index turns that sharing into skipped prefill
// compute: a published page chain carries the cold run's attention outputs,
// so a warm request attaches the pages, copies the outputs, and starts
// prefill past the shared region.
//
// Sharing rules (docs/ARCHITECTURE.md, "Paged KV & prefix cache"):
//   * A page becomes IMMUTABLE when it is published to the prefix index;
//     published pages are always full. Caches never write shared pages —
//     appends only ever touch the private tail page, and compaction
//     (KVCache::keep_slots) rewrites surviving rows into fresh private
//     pages, releasing the shared ones. That rewrite IS the copy-on-write:
//     divergence after a shared prefix costs one page copy, never a lock on
//     the readers of the shared image.
//   * The chain hash for page p covers the Q, K and V row bytes of tokens
//     [p*P, (p+1)*P) chained with page p-1's hash, so a hit certifies the
//     whole prefix, not one block. K/V are additionally verified by memcmp
//     against the stored page on lookup; Q (which only influences the
//     stored outputs) is trusted to the 64-bit chain hash.
//
// Thread safety: all arena mutations (alloc/retain/release/publish/lookup)
// take the arena mutex. Page payload pointers are stable for the arena's
// lifetime (deque storage, pages never move), so readers hold raw row
// pointers across sweeps without touching the arena; an immutable page's
// payload is never written again, so those reads are race-free by
// construction.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "core/status.h"
#include "core/tensor.h"

namespace sattn {

class KvPageArena {
 public:
  static constexpr Index kDefaultPageTokens = 64;

  // page_tokens must be a power of two (slot -> page is a shift/mask on the
  // kernels' read path).
  explicit KvPageArena(Index head_dim, Index page_tokens = kDefaultPageTokens);

  Index head_dim() const { return d_; }
  Index page_tokens() const { return page_tokens_; }
  Index page_shift() const { return shift_; }
  Index page_mask() const { return page_tokens_ - 1; }

  // K + V payload bytes of one page (the fp32 substrate, matching the
  // acct.* byte convention).
  double page_bytes() const {
    return 2.0 * static_cast<double>(page_tokens_) * static_cast<double>(d_) * sizeof(float);
  }

  // A page handle plus its payload row bases (page_tokens x head_dim floats
  // each). The pointers stay valid until the arena dies; they must only be
  // written while the page is private (refcount 1, not published).
  struct PageRef {
    Index id = -1;
    float* k = nullptr;
    float* v = nullptr;
  };

  // Allocates a private page (refcount 1), reusing the freelist when
  // possible.
  PageRef alloc();

  void retain(Index page);
  // Drops one reference; a page reaching zero returns to the freelist.
  void release(Index page);

  int refcount(Index page) const;
  bool is_published(Index page) const;
  // References held by caches (total refcount minus the prefix index's
  // hold) — the denominator for counted-once byte accounting.
  int owner_count(Index page) const;

  Index pages_live() const;          // pages currently referenced
  long long pages_allocated() const; // cumulative allocations
  long long pages_freed() const;     // cumulative returns to the freelist
  double bytes_live() const;         // pages_live() * page_bytes()

  // ---- Prefix index ----------------------------------------------------

  // Publishes `page` as the immutable shared image for `chain_hash`,
  // storing a copy of the cold run's attention output rows (page_tokens x
  // head_dim floats). The index retains the page. First publisher wins:
  // returns false (and changes nothing) when the hash is already present.
  bool prefix_publish(std::uint64_t chain_hash, Index page, const float* out_rows);

  // Probes the index. On a hit the stored K/V payload is verified against
  // the expected rows (page_tokens x head_dim floats each; memcmp), the
  // page is retained FOR THE CALLER, the stored output rows are copied to
  // `out_rows`, and the page's payload ref is returned. Returns id -1 on a
  // miss or a verification failure.
  PageRef prefix_lookup(std::uint64_t chain_hash, const float* k_expect, const float* v_expect,
                        float* out_rows);

  Index prefix_entries() const;
  // Bytes held exclusively by the index: the stored output-row copies plus
  // the payload of published pages no cache currently owns. Together with
  // the counted-once KVCache::bytes() shares, this makes
  // sum(cache bytes) + prefix_index_bytes() == bytes_live() + output copies.
  double prefix_index_bytes() const;

 private:
  struct Page {
    std::unique_ptr<float[]> k;
    std::unique_ptr<float[]> v;
    int refs = 0;
    bool published = false;
  };
  struct PrefixEntry {
    Index page = -1;
    std::vector<float> out_rows;
  };

  Index d_ = 0;
  Index page_tokens_ = 0;
  Index shift_ = 0;

  mutable std::mutex mu_;
  std::deque<Page> pages_;  // deque: payload addresses stable under growth
  std::vector<Index> free_;
  Index live_ = 0;
  long long allocs_ = 0;
  long long frees_ = 0;
  std::unordered_map<std::uint64_t, PrefixEntry> prefix_;
};

// FNV-1a chain hash over the Q, K and V row bytes of tokens [lo, hi) of a
// prefill input, chained with `prev` (seed the chain with
// kPrefixChainSeed). Identical declared content yields identical chains,
// which is what makes cross-request prefix hits sound.
inline constexpr std::uint64_t kPrefixChainSeed = 0xcbf29ce484222325ull;
std::uint64_t prefix_chain_hash(std::uint64_t prev, const AttentionInput& in, Index lo, Index hi);

}  // namespace sattn
