// Real continuous-batching serving engine: the measured counterpart of the
// queue simulator in runtime/scheduler.h (docs/SERVING.md).
//
// Where simulate_queue_slo plays an arrival trace against *modeled* prefill
// cost, ServingEngine runs the actual kernels: submitters hand it
// ServingRequests from any thread, an engine loop thread admits them,
// forms a continuous batch each iteration (runtime/batch.h), interleaves
// one chunked-prefill step or one decode step per live request through a
// single ragged_attention_sweep, and measures what the simulator predicts —
// per-request TTFT split into queue/compute/guard, TPOT over decode steps,
// and the same admission / deadline / degrade-ladder / retry policies from
// the SLO simulator applied to *measured* kernel time.
//
// Attribution contract (pinned by engine_test): for every completed
// request, queue + compute + guard == ttft, where compute is the sum of
// the request's measured kernel slices (planning + accepted execution),
// guard is measured guardrail overhead (rejected plan attempts on the
// escalation ladder, lost faulted chunks, retry-backoff gates), and queue
// is the remaining wall time — genuinely waiting on the device, because
// each request occupies at most one sequence of any sweep and its slices
// are disjoint in wall time.
//
// Threading model: submit()/cancel()/close() are thread-safe producers onto
// a mutex-guarded intake queue; the single loop thread owns all request
// state, so no request field is ever touched concurrently; kernel
// parallelism lives inside the sweep (pool workers, one sequence each).
// finish() closes the intake, joins the loop (optionally bounded by a drain
// deadline that force-cancels stragglers), and returns the results. An
// optional watchdog thread observes loop progress through atomics only.
//
// Lifecycle hardening (docs/ROBUSTNESS.md, "Lifecycle, overload & chaos"):
// every submitted request reaches EXACTLY ONE terminal state — completed,
// shed (with reason), or cancelled — and completed + cancelled records both
// satisfy queue + compute + guard == ttft. The chaos harness
// (tests/chaos_engine_test.cpp, bench_serving --chaos) drives seeded fault
// storms, overload bursts, deadline storms, and mid-stream cancellations
// against these invariants.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "attention/flash_attention.h"
#include "obs/audit.h"
#include "obs/telemetry.h"
#include "robust/fault_injection.h"
#include "runtime/batch.h"
#include "runtime/eviction.h"
#include "runtime/kv_page.h"
#include "runtime/scheduler.h"
#include "sample_attention/guarded.h"
#include "sample_attention/sample_attention.h"

namespace sattn {

enum class EngineMode { kDense, kSampleAttention };

struct EngineOptions {
  EngineMode mode = EngineMode::kDense;
  Index head_dim = 64;

  // Batch formation (runtime/batch.h).
  Index chunk_tokens = 256;
  Index max_batch = 8;

  // Tokens decoded per request after prefill before it completes. TPOT is
  // the mean measured decode-step time. 0 skips decode.
  Index decode_tokens = 8;

  // Policies, mirroring SloOptions (measured instead of modeled).
  Index max_queue_depth = 0;      // shed "admission" beyond this many waiting
  Index max_prompt_tokens = 0;    // shed "oversized" above this
  double deadline_seconds = 0.0;  // hard TTFT deadline; 0 disables
  double slo_ttft_seconds = 0.0;  // degrade-steering target; 0 disables
  std::vector<double> degrade_density_scale = {1.0, 0.6, 0.35};
  int max_retries = 2;
  double retry_backoff_seconds = 0.05;

  // Chunk-level transient faults (deterministic in fault.seed): a firing
  // chunk's measured time is billed to guard and the chunk is redone.
  FaultSpec fault;

  // kSampleAttention: per-chunk planning config and the guard policy whose
  // escalation ladder (resample -> widen -> dense) runs on measured time.
  SampleAttentionConfig sample;
  GuardConfig guard;

  FlashConfig flash;

  // Projected full-quality prefill seconds for a prompt at a density scale,
  // calibrated by the caller from measured samples (bench_serving fits one
  // from warmup chunks). Drives SLO degrade steering and deadline shedding
  // at first service; null disables projection-based steering.
  std::function<double(Index prompt_tokens, double density_scale)> projected_prefill_seconds;

  // Seed for the synthetic per-request Q/K/V content.
  std::uint64_t seed = 0x5e1ull;

  // Prefix for request.<run_label>/<id>.* gauges.
  std::string run_label = "engine";

  // ---- Lifecycle hardening ----

  // KV memory budget: cap on the projected live KV bytes across *active*
  // requests — prompt_tokens x head_dim x 2 streams x 4 bytes while a
  // request prefills (it will need its full KV), the actual KVCache::bytes()
  // once it decodes (eviction shrinks it). Admitted requests beyond the
  // budget wait un-started (backpressure; their wait bills to queue); before
  // a waiter sheds, the eviction rung compacts decoding caches to free
  // bytes. Only a request whose SOLO demand exceeds the whole budget is shed
  // ("kv_budget") — everything else eventually activates, so a finite trace
  // cannot deadlock. 0 disables the budget.
  double kv_budget_bytes = 0.0;

  // Eviction-under-pressure rung: the policy enforced on active decoding
  // caches when a waiter cannot fit (runtime/eviction.h). Retention degrades
  // before traffic sheds. H2O additionally observes per-step attention
  // weights (decode_attention) so its heavy-hitter scores are real.
  EvictionKind kv_eviction = EvictionKind::kSinkRecent;
  Index kv_evict_keep = 96;    // max slots a pressured cache retains
  Index kv_evict_recent = 64;  // tail slots always retained

  // ---- Paged KV & prefix cache (runtime/kv_page.h) ----

  // Shared page arena. Null: the engine creates its own private arena sized
  // by kv_page_tokens. Passing one in lets several engine runs share a
  // prefix index — a warm run reuses pages published by an earlier cold run
  // (bench_serving --prefix measures exactly this).
  std::shared_ptr<KvPageArena> kv_arena;
  Index kv_page_tokens = KvPageArena::kDefaultPageTokens;  // power of two

  // Prefix cache: at admission the engine probes the arena's content-hash
  // index with the request's synthetic prompt content and attaches any
  // matching shared pages — those tokens skip prefill compute entirely
  // (counters engine.kv_prefix_hits / engine.kv_prefix_hit_tokens), cutting
  // TTFT; at prefill completion the request's full pages are published for
  // future requests. Sharing requires overlapping ServingRequest::segments.
  bool kv_prefix_cache = true;

  // Sparse-residency eviction (sample mode): when a request finishes
  // prefill with an accepted structured plan, drop the KV pages no head
  // will touch again — keep the plan's stripe columns plus the local-window
  // tail — so pages_live tracks the mask's retained fraction instead of the
  // dense footprint. Uses the same keep_slots COW machinery as the
  // pressure-driven eviction rungs, but triggered by plan structure rather
  // than memory pressure.
  bool kv_sparse_residency = false;

  // Watchdog: with watchdog_stall_seconds > 0 a monitor thread alerts
  // (engine.watchdog_stalls) when the loop makes no progress for that long
  // while not idle-waiting — a stuck kernel or a deadlocked step. With
  // watchdog_cost_multiple > 0 and projected_prefill_seconds set, the loop
  // sheds a prefilling request ("watchdog") whose service wall time exceeds
  // multiple x projected cost — a runaway request cannot park the batch.
  double watchdog_stall_seconds = 0.0;
  double watchdog_cost_multiple = 0.0;

  // Circuit breaker (sample mode): after this many CONSECUTIVE chunk
  // plannings that exhausted the escalation ladder to dense fallback, the
  // breaker opens and planning is short-circuited straight to dense for
  // breaker_cooldown_seconds (no guard time burned on a faulting planner);
  // the first post-cooldown chunk probes half-open, and a planning success
  // closes the breaker. 0 disables.
  int breaker_fault_threshold = 0;
  double breaker_cooldown_seconds = 0.05;

  // ---- Live telemetry plane (obs/telemetry.h) ----
  //
  // With telemetry.enabled the engine owns a TelemetryHub (lock-free
  // per-thread event rings fed by submit() and the loop) and a
  // TelemetryPublisher thread that drains it every interval, maintains
  // rolling TTFT/TPOT/retained-KV windows and EWMA rates, evaluates the
  // quality-drift monitors (alert.* counters, optional breaker pre-trip via
  // telemetry.drift.pretrip_breaker), and emits an NDJSON stream plus a
  // Prometheus-style exposition file. Disabled: no hub, no thread, every
  // emission site is one pointer test.
  obs::TelemetryOptions telemetry;

  // ---- Online quality audit (obs/audit.h) ----
  //
  // With audit.enabled in sample mode, the engine owns a QualityAuditor
  // that shadow-samples a deterministic fraction of query rows: sparse
  // prefill chunks are scored in the sweep (ground-truth softmax rows vs
  // the deployed mask), and decode rows are scored for free from
  // decode_attention's exact weights against the request's accepted plan
  // structure. Audit wall time bills to *guard* (it is measured quality
  // assurance, not service compute), so queue + compute + guard == ttft
  // still holds; measured chunk CRA feeds the telemetry kAudit stream and
  // the measured_cra_low drift monitor. Ignored in dense mode (the dense
  // path is exact — there is nothing to audit).
  obs::AuditOptions audit;
};

// One finished request. `base` reuses the simulator's completion record so
// summarize() and the request gauges work unchanged; all its times are
// measured seconds relative to engine start.
struct EngineCompletion {
  CompletedRequest base;
  Index decoded_tokens = 0;
  double tpot_seconds = 0.0;    // mean measured decode-step seconds
  Index prefix_hit_tokens = 0;  // prompt tokens served from the prefix cache
};

// A request that reached the kCancelled terminal state: explicitly via
// cancel(), or force-cancelled by a bounded drain. The base record carries
// the same queue/compute/guard attribution as a completion, with
// finish_seconds = the cancellation instant (so queue + compute + guard ==
// ttft still holds: compute/guard are the measured slices spent before the
// cancel, queue the residual; an unserved portion of a retry-backoff gate
// is refunded from guard).
struct CancelledRequest {
  CompletedRequest base;
  Index decoded_tokens = 0;
  std::string reason;  // "cancel" | "shutdown"
};

// The three terminal states of the request lifecycle. Exactly one per
// submitted request — the chaos harness's core invariant.
enum class TerminalState { kCompleted, kShed, kCancelled };

struct EngineResult {
  std::vector<EngineCompletion> completed;
  std::vector<ShedRequest> shed;
  std::vector<CancelledRequest> cancelled;
  Index degraded = 0;  // completed below full quality
  Index retries = 0;   // faulted chunks retried
  std::vector<Index> served_per_level;
  Index iterations = 0;      // engine loop iterations that ran a sweep
  Index peak_live_batch = 0; // max requests in flight at once

  // Lifecycle-hardening telemetry (mirrored by engine.* counters).
  Index kv_evictions = 0;       // eviction-rung passes that freed bytes
  Index kv_pressure_waits = 0;  // requests that waited on the KV budget
  double peak_kv_bytes = 0.0;   // max projected live KV bytes observed
  Index watchdog_stalls = 0;    // stall alerts from the watchdog thread
  Index breaker_trips = 0;      // closed -> open transitions

  // Paged-KV telemetry (mirrored by engine.kv_* counters).
  Index kv_prefix_hits = 0;        // requests that attached >= 1 shared page
  Index kv_prefix_hit_tokens = 0;  // prompt tokens skipped via the prefix cache
  Index kv_pages_peak = 0;         // max arena pages_live observed by the loop
  Index kv_residency_evictions = 0;  // sparse-residency page drops performed
  // Page-residency ratio inputs, summed over finished prefills: pages the
  // cache actually holds once residency eviction ran, vs. the dense
  // ceil(prompt / page_tokens) footprint. resident/full ~= the mask's
  // retained fraction in sparse-residency runs, ~= 1 otherwise.
  Index kv_pages_resident = 0;
  Index kv_pages_full = 0;

  std::vector<CompletedRequest> completions() const;  // bases, for summarize()

  // (request id, terminal state) over completed + shed + cancelled. The
  // chaos invariant: this lists every submitted id exactly once.
  std::vector<std::pair<std::string, TerminalState>> outcomes() const;
};

class ServingEngine {
 public:
  explicit ServingEngine(EngineOptions opts);
  ~ServingEngine();

  // Spawns the engine loop thread (and the watchdog thread when armed).
  // Call once.
  void start();

  // Thread-safe: enqueue a request for admission. The request's
  // arrival_seconds is ignored; arrival is measured at the submit() call.
  // kFailedPrecondition after close() — the request is NOT enqueued and
  // reaches no terminal state.
  Status submit(ServingRequest req);

  // Thread-safe, idempotent: ask the loop to cancel a request. A matched
  // in-flight or queued request reaches the kCancelled terminal state at
  // the next loop iteration (in-flight work already dispatched to the sweep
  // finishes first — cancellation is between-chunks, never mid-kernel). An
  // id that never matches anything is remembered until finish and then
  // dropped: cancelling an already-terminal or unknown request is a no-op.
  void cancel(const std::string& request_id);

  // Thread-safe: no further submissions; the loop drains and exits.
  void close();

  // close() + join + results. Idempotent — every call after the first
  // returns the same result. drain_deadline_seconds >= 0 bounds the drain:
  // requests still in flight that long after the call are force-cancelled
  // (reason "shutdown"); negative (default) drains fully.
  EngineResult finish(double drain_deadline_seconds = -1.0);

  // Convenience: replay a trace (arrival_seconds * time_scale = real
  // seconds between submits) on a submitter thread, then finish().
  EngineResult run_trace(std::span<const ServingRequest> trace, double time_scale = 1.0);

  // Seconds since the loop's last heartbeat: 0 while the loop is idle-
  // waiting (or before start()), the stall age while it is mid-iteration.
  // Thread-safe (atomics only); published as the `engine.heartbeat_age_s`
  // gauge by the watchdog and the telemetry publisher, so stall detection
  // is externally observable instead of a private watchdog channel.
  double heartbeat_age_seconds() const;

  // Live telemetry publisher (null unless EngineOptions::telemetry.enabled
  // and start() was called). Valid until destruction; tests read
  // last_line()/alerts() through it.
  obs::TelemetryPublisher* telemetry_publisher() const { return tele_pub_.get(); }

  // Online quality auditor (null unless EngineOptions::audit.enabled in
  // sample mode). Valid until destruction; tests read head_stats()/totals()
  // through it. finish() publishes its scorecard as `audit.*` gauges.
  const obs::QualityAuditor* auditor() const { return auditor_.get(); }

  // The page arena backing every live KVCache (never null after
  // construction). Expose it to share the prefix index across engine runs:
  // pass it as EngineOptions::kv_arena of a later engine.
  const std::shared_ptr<KvPageArena>& kv_arena() const { return arena_; }

 private:
  struct Live;  // one in-flight request (engine.cpp)

  void loop();
  void watchdog();
  double now() const;  // seconds since start()

  EngineOptions opts_;

  std::mutex mu_;
  std::condition_variable cv_;
  std::vector<ServingRequest> intake_;
  std::vector<std::string> cancel_intake_;
  bool closed_ = false;

  std::thread loop_thread_;
  bool started_ = false;
  bool finished_ = false;
  std::chrono::steady_clock::time_point t0_;

  // Engine-seconds instant after which the loop force-cancels all in-flight
  // work (bounded drain). +inf = drain fully.
  std::atomic<double> drain_deadline_{std::numeric_limits<double>::infinity()};

  // Watchdog channel: the loop stamps heartbeat_s_ (engine seconds) every
  // iteration and flags loop_waiting_ around its idle/backoff waits; the
  // watchdog thread and heartbeat_age_seconds() read both and detect a
  // silent, non-waiting loop. Atomics only — the watchdog never touches
  // request state (TSan-clean by construction).
  std::atomic<double> heartbeat_s_{0.0};
  std::atomic<bool> loop_waiting_{false};
  std::atomic<bool> watchdog_stop_{false};
  std::atomic<Index> watchdog_stalls_{0};
  std::thread watchdog_thread_;

  // Telemetry plane (null when opts_.telemetry.enabled is false). The loop
  // and submit() push events into the hub; the publisher thread reads only
  // the hub and the tele_* atomics below, never request state.
  void tele_push(obs::TelemetryEventKind kind, const std::string& id, double t,
                 double value = 0.0, std::uint32_t aux = 0);
  std::unique_ptr<obs::TelemetryHub> tele_hub_;
  std::unique_ptr<obs::TelemetryPublisher> tele_pub_;
  std::atomic<std::size_t> tele_live_{0};
  std::atomic<std::size_t> tele_active_{0};
  std::atomic<double> tele_kv_bytes_{0.0};
  std::atomic<int> tele_breaker_{0};

  // Shadow quality auditor (null when disabled or in dense mode). Audit
  // calls run on sweep workers and the loop thread; the auditor locks its
  // own accumulation state internally.
  std::unique_ptr<obs::QualityAuditor> auditor_;

  // Page arena backing all live KV caches (and the prefix index). Declared
  // before live_ so caches release their pages before the arena dies.
  std::shared_ptr<KvPageArena> arena_;

  // Loop-thread-owned state.
  std::vector<std::unique_ptr<Live>> live_;
  Index admit_seq_ = 0;
  EngineResult result_;
};

}  // namespace sattn
