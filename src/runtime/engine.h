// Real continuous-batching serving engine: the measured counterpart of the
// queue simulator in runtime/scheduler.h (docs/SERVING.md).
//
// Where simulate_queue_slo plays an arrival trace against *modeled* prefill
// cost, ServingEngine runs the actual kernels: submitters hand it
// ServingRequests from any thread, an engine loop thread admits them,
// forms a continuous batch each iteration (runtime/batch.h), interleaves
// one chunked-prefill step or one decode step per live request through a
// single ragged_attention_sweep, and measures what the simulator predicts —
// per-request TTFT split into queue/compute/guard, TPOT over decode steps,
// and the same admission / deadline / degrade-ladder / retry policies from
// the SLO simulator applied to *measured* kernel time.
//
// Attribution contract (pinned by engine_test): for every completed
// request, queue + compute + guard == ttft, where compute is the sum of
// the request's measured kernel slices (planning + accepted execution),
// guard is measured guardrail overhead (rejected plan attempts on the
// escalation ladder, lost faulted chunks, retry-backoff gates), and queue
// is the remaining wall time — genuinely waiting on the device, because
// each request occupies at most one sequence of any sweep and its slices
// are disjoint in wall time.
//
// Threading model: submit()/close() are thread-safe producers onto a
// mutex-guarded intake queue; the single loop thread owns all request
// state, so no request field is ever touched concurrently; kernel
// parallelism lives inside the sweep (pool workers, one sequence each).
// finish() closes the intake, joins the loop, and returns the results.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "attention/flash_attention.h"
#include "robust/fault_injection.h"
#include "runtime/batch.h"
#include "runtime/scheduler.h"
#include "sample_attention/guarded.h"
#include "sample_attention/sample_attention.h"

namespace sattn {

enum class EngineMode { kDense, kSampleAttention };

struct EngineOptions {
  EngineMode mode = EngineMode::kDense;
  Index head_dim = 64;

  // Batch formation (runtime/batch.h).
  Index chunk_tokens = 256;
  Index max_batch = 8;

  // Tokens decoded per request after prefill before it completes. TPOT is
  // the mean measured decode-step time. 0 skips decode.
  Index decode_tokens = 8;

  // Policies, mirroring SloOptions (measured instead of modeled).
  Index max_queue_depth = 0;      // shed "admission" beyond this many waiting
  Index max_prompt_tokens = 0;    // shed "oversized" above this
  double deadline_seconds = 0.0;  // hard TTFT deadline; 0 disables
  double slo_ttft_seconds = 0.0;  // degrade-steering target; 0 disables
  std::vector<double> degrade_density_scale = {1.0, 0.6, 0.35};
  int max_retries = 2;
  double retry_backoff_seconds = 0.05;

  // Chunk-level transient faults (deterministic in fault.seed): a firing
  // chunk's measured time is billed to guard and the chunk is redone.
  FaultSpec fault;

  // kSampleAttention: per-chunk planning config and the guard policy whose
  // escalation ladder (resample -> widen -> dense) runs on measured time.
  SampleAttentionConfig sample;
  GuardConfig guard;

  FlashConfig flash;

  // Projected full-quality prefill seconds for a prompt at a density scale,
  // calibrated by the caller from measured samples (bench_serving fits one
  // from warmup chunks). Drives SLO degrade steering and deadline shedding
  // at first service; null disables projection-based steering.
  std::function<double(Index prompt_tokens, double density_scale)> projected_prefill_seconds;

  // Seed for the synthetic per-request Q/K/V content.
  std::uint64_t seed = 0x5e1ull;

  // Prefix for request.<run_label>/<id>.* gauges.
  std::string run_label = "engine";
};

// One finished request. `base` reuses the simulator's completion record so
// summarize() and the request gauges work unchanged; all its times are
// measured seconds relative to engine start.
struct EngineCompletion {
  CompletedRequest base;
  Index decoded_tokens = 0;
  double tpot_seconds = 0.0;  // mean measured decode-step seconds
};

struct EngineResult {
  std::vector<EngineCompletion> completed;
  std::vector<ShedRequest> shed;
  Index degraded = 0;  // completed below full quality
  Index retries = 0;   // faulted chunks retried
  std::vector<Index> served_per_level;
  Index iterations = 0;      // engine loop iterations that ran a sweep
  Index peak_live_batch = 0; // max requests in flight at once

  std::vector<CompletedRequest> completions() const;  // bases, for summarize()
};

class ServingEngine {
 public:
  explicit ServingEngine(EngineOptions opts);
  ~ServingEngine();

  // Spawns the engine loop thread. Call once.
  void start();

  // Thread-safe: enqueue a request for admission. The request's
  // arrival_seconds is ignored; arrival is measured at the submit() call.
  void submit(ServingRequest req);

  // Thread-safe: no further submissions; the loop drains and exits.
  void close();

  // close() + join + results. Idempotent.
  EngineResult finish();

  // Convenience: replay a trace (arrival_seconds * time_scale = real
  // seconds between submits) on a submitter thread, then finish().
  EngineResult run_trace(std::span<const ServingRequest> trace, double time_scale = 1.0);

 private:
  struct Live;  // one in-flight request (engine.cpp)

  void loop();
  double now() const;  // seconds since start()

  EngineOptions opts_;

  std::mutex mu_;
  std::condition_variable cv_;
  std::vector<ServingRequest> intake_;
  bool closed_ = false;

  std::thread loop_thread_;
  bool started_ = false;
  bool finished_ = false;
  std::chrono::steady_clock::time_point t0_;

  // Loop-thread-owned state.
  std::vector<std::unique_ptr<Live>> live_;
  Index admit_seq_ = 0;
  EngineResult result_;
};

}  // namespace sattn
