// Umbrella header: the library's public API in one include.
//
//   #include "sattn.h"
//
// Fine-grained headers remain available for faster builds; this is the
// convenience entry point used by downstream applications and the examples.
#pragma once

// Core substrate.
#include "core/numerics.h"   // IWYU pragma: export
#include "core/rng.h"        // IWYU pragma: export
#include "core/status.h"     // IWYU pragma: export
#include "core/tensor.h"     // IWYU pragma: export
#include "core/thread_pool.h"  // IWYU pragma: export

// Attention kernels and masks.
#include "attention/attention_method.h"       // IWYU pragma: export
#include "attention/block_sparse.h"           // IWYU pragma: export
#include "attention/flash_attention.h"        // IWYU pragma: export
#include "attention/full_attention.h"         // IWYU pragma: export
#include "attention/masks.h"                  // IWYU pragma: export
#include "attention/score_utils.h"            // IWYU pragma: export
#include "attention/sparse_flash_attention.h" // IWYU pragma: export

// SampleAttention.
#include "sample_attention/adaptive.h"          // IWYU pragma: export
#include "sample_attention/filtering.h"         // IWYU pragma: export
#include "sample_attention/guarded.h"           // IWYU pragma: export
#include "sample_attention/layer_plan.h"        // IWYU pragma: export
#include "sample_attention/sample_attention.h"  // IWYU pragma: export
#include "sample_attention/sampling.h"          // IWYU pragma: export
#include "sample_attention/tuner.h"             // IWYU pragma: export

// Baselines.
#include "baselines/bigbird.h"          // IWYU pragma: export
#include "baselines/hash_sparse.h"      // IWYU pragma: export
#include "baselines/hyper_attention.h"  // IWYU pragma: export
#include "baselines/streaming_llm.h"    // IWYU pragma: export

// Model substrate, metrics, tasks.
#include "metrics/cra.h"                 // IWYU pragma: export
#include "metrics/recovery.h"            // IWYU pragma: export
#include "metrics/sparsity.h"            // IWYU pragma: export
#include "model/attention_structure.h"   // IWYU pragma: export
#include "model/rope.h"                  // IWYU pragma: export
#include "model/synthetic_model.h"       // IWYU pragma: export
#include "model/workload.h"              // IWYU pragma: export
#include "tasks/babilong.h"              // IWYU pragma: export
#include "tasks/longbench.h"             // IWYU pragma: export
#include "tasks/needle.h"                // IWYU pragma: export
#include "tasks/scoring.h"               // IWYU pragma: export

// Runtime, perf, I/O.
#include "io/config_io.h"           // IWYU pragma: export
#include "io/heatmap.h"             // IWYU pragma: export
#include "io/report.h"              // IWYU pragma: export
#include "perf/cost_model.h"        // IWYU pragma: export
#include "perf/latency_report.h"    // IWYU pragma: export
#include "runtime/chunked_prefill.h"  // IWYU pragma: export
#include "runtime/decode.h"           // IWYU pragma: export
#include "runtime/eviction.h"         // IWYU pragma: export
#include "runtime/kv_cache.h"         // IWYU pragma: export
#include "runtime/model_runner.h"     // IWYU pragma: export
#include "runtime/scheduler.h"        // IWYU pragma: export

// Robustness: validation and fault injection (docs/ROBUSTNESS.md).
#include "robust/fault_injection.h"  // IWYU pragma: export
#include "robust/validate.h"         // IWYU pragma: export
