#include "baselines/bigbird.h"

#include <algorithm>
#include <cmath>

#include "attention/sparse_flash_attention.h"
#include "core/rng.h"

namespace sattn {

StructuredMask make_bigbird_mask(Index sq, Index sk, const BigBirdConfig& cfg) {
  StructuredMask mask(sq, sk);
  mask.set_window(window_width_from_ratio(sk, cfg.window_ratio));

  // Global columns: half at the start of the sequence, half evenly spaced.
  const Index g = std::max<Index>(
      1, static_cast<Index>(std::ceil(cfg.global_ratio * static_cast<double>(sk))));
  std::vector<Index> cols;
  const Index head = g / 2;
  for (Index c = 0; c < std::min(head, sk); ++c) cols.push_back(c);
  const Index spread = g - head;
  for (Index t = 0; t < spread; ++t) {
    cols.push_back(std::min<Index>(sk - 1, (2 * t + 1) * sk / (2 * std::max<Index>(1, spread))));
  }
  mask.set_stripe_columns(std::move(cols));

  // Random blocks: for each query block, a few random key blocks at or below
  // the diagonal. Deterministic in (seed, sq, sk).
  Rng rng(cfg.seed ^ (static_cast<std::uint64_t>(sq) << 20) ^ static_cast<std::uint64_t>(sk));
  const Index bs = std::max<Index>(
      8, cfg.block_size * sk / std::max<Index>(1, cfg.reference_length));
  const Index n_qblocks = (sq + bs - 1) / bs;
  for (Index qb = 0; qb < n_qblocks; ++qb) {
    const Index q_lo = qb * bs;
    const Index max_kblock = causal_limit(q_lo, sq, sk) / bs;  // blocks fully usable
    if (max_kblock < 0) continue;
    const Index n_pick = std::min<Index>(cfg.random_blocks_per_row_block, max_kblock + 1);
    const auto picks = rng.sample_without_replacement(max_kblock + 1, n_pick);
    for (Index kb : picks) {
      mask.add_block({q_lo, std::min(sq, q_lo + bs), kb * bs, std::min(sk, (kb + 1) * bs)});
    }
  }
  return mask;
}

AttentionResult BigBird::run_impl(const AttentionInput& in) const {
  const StructuredMask mask = make_bigbird_mask(in.sq(), in.sk(), cfg_);
  AttentionResult r;
  sparse_flash_attention(in, mask, r.out);
  r.density = mask.density();
  return r;
}

}  // namespace sattn
