#include "baselines/streaming_llm.h"

#include "attention/sparse_flash_attention.h"

namespace sattn {

AttentionResult StreamingLLM::run_impl(const AttentionInput& in) const {
  const Index window = window_width_from_ratio(in.sk(), cfg_.window_ratio);
  const StructuredMask mask = make_streaming_mask(in.sq(), in.sk(), cfg_.sink_tokens, window);
  AttentionResult r;
  sparse_flash_attention(in, mask, r.out);
  r.density = mask.density();
  return r;
}

}  // namespace sattn
