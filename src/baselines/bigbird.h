// BigBird baseline (Zaheer et al., 2020), as configured in the paper's
// Section 5.2: local window (8% of Sk, matching SampleAttention's window for
// a fair comparison), global tokens totalling 8% of Sk, plus random blocks.
// The mask is *static given the sequence length* — content-oblivious — which
// is exactly why it degrades on retrieval-heavy tasks ("Synthetic Task" in
// Table 2) while remaining decent on diffuse ones.
//
// Globals are split between the sequence start (where sinks live) and
// evenly-spaced anchors; random blocks are sampled per (head, length) from a
// deterministic seed.
#pragma once

#include "attention/attention_method.h"
#include "attention/masks.h"

namespace sattn {

struct BigBirdConfig {
  double window_ratio = 0.08;
  double global_ratio = 0.08;
  // Random-block edge length: 64 at the reference 4K length (the original
  // BigBird setting), scaled proportionally for other sequence lengths so
  // the block area stays a constant fraction of the grid.
  Index block_size = 64;
  Index reference_length = 4096;
  Index random_blocks_per_row_block = 2;
  std::uint64_t seed = 0x1b1dull;
};

StructuredMask make_bigbird_mask(Index sq, Index sk, const BigBirdConfig& cfg);

class BigBird final : public AttentionMethod {
 public:
  explicit BigBird(BigBirdConfig cfg = {}) : cfg_(cfg) {}
  std::string name() const override { return "BigBird"; }

 protected:
  AttentionResult run_impl(const AttentionInput& in) const override;

 private:
  BigBirdConfig cfg_;
};

}  // namespace sattn
