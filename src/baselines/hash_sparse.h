// Hash-Sparse baseline (Pagliardini et al., 2023: "Faster causal attention
// over large sequences through sparse flash attention"), as configured in
// the paper's Section 5.2 with 16 hash buckets.
//
// Queries and keys are partitioned into buckets by a spherical-LSH style
// hash (argmax over random projections); a query attends only the causal
// keys in its own bucket, plus its own diagonal position as a fallback so
// no row is empty. With B buckets the expected density is ~1/B, the source
// of both its speed and — since the hash is content-random with respect to
// attention mass — its severe accuracy loss in Table 2.
#pragma once

#include "attention/attention_method.h"
#include "core/tensor.h"

namespace sattn {

struct HashSparseConfig {
  Index num_buckets = 16;
  std::uint64_t seed = 0xcafeull;
};

class HashSparse final : public AttentionMethod {
 public:
  explicit HashSparse(HashSparseConfig cfg = {}) : cfg_(cfg) {}
  std::string name() const override { return "Hash-Sparse"; }

 protected:
  AttentionResult run_impl(const AttentionInput& in) const override;

 private:
  HashSparseConfig cfg_;
};

}  // namespace sattn
