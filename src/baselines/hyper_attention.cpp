#include "baselines/hyper_attention.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <vector>

#include "attention/flash_attention.h"
#include "core/rng.h"
#include "core/simd.h"
#include "core/thread_pool.h"
#include "obs/accounting.h"

namespace sattn {
namespace {

// SimHash codes for each row of m under `bits` shared random hyperplanes.
// Register-blocked: four hyperplanes at a time share one pass over the row
// (simd::dotn with the row as the common stream).
std::vector<std::uint32_t> simhash_codes(const Matrix& m, Index bits, Rng rng) {
  const Index d = m.cols();
  Matrix planes(bits, d);
  rng.fill_normal(planes);
  std::vector<std::uint32_t> codes(static_cast<std::size_t>(m.rows()), 0u);
  const simd::Ops& ops = simd::ops();
  for (Index r = 0; r < m.rows(); ++r) {
    std::uint32_t code = 0;
    for (Index b0 = 0; b0 < bits; b0 += simd::kMaxRows) {
      const Index nr = std::min<Index>(simd::kMaxRows, bits - b0);
      const float* rows[simd::kMaxRows];
      for (Index t = 0; t < nr; ++t) rows[t] = planes.row(b0 + t).data();
      float s[simd::kMaxRows];
      ops.dotn(rows, nr, m.row(r).data(), d, s);
      for (Index t = 0; t < nr; ++t) {
        if (s[t] > 0.0f) code |= (1u << (b0 + t));
      }
    }
    codes[static_cast<std::size_t>(r)] = code;
  }
  return codes;
}

}  // namespace

AttentionResult HyperAttention::run_impl(const AttentionInput& in) const {
  const Index sq = in.sq(), sk = in.sk(), d = in.head_dim();
  AttentionResult res;
  res.out.resize(sq, d);

  Index bucket_cap = cfg_.bucket_size;
  Index n_sampled = cfg_.sampled_columns;
  if (cfg_.scale_with_length) {
    const double frac_bucket =
        static_cast<double>(cfg_.bucket_size) / static_cast<double>(cfg_.reference_length);
    const double frac_cols =
        static_cast<double>(cfg_.sampled_columns) / static_cast<double>(cfg_.reference_length);
    bucket_cap = std::max<Index>(48, static_cast<Index>(frac_bucket * static_cast<double>(sk)));
    n_sampled = std::max<Index>(24, static_cast<Index>(frac_cols * static_cast<double>(sk)));
  }

  Rng rng(cfg_.seed);
  // Hash keys and queries with the SAME hyperplanes (same forked stream) so
  // collisions reflect angular proximity between q_i and k_j.
  const std::vector<std::uint32_t> k_codes = simhash_codes(in.k, cfg_.hash_bits, rng.fork(1));
  const std::vector<std::uint32_t> q_codes = simhash_codes(in.q, cfg_.hash_bits, rng.fork(1));

  // Bucket -> ascending key indices.
  const std::size_t n_buckets = std::size_t{1} << cfg_.hash_bits;
  std::vector<std::vector<Index>> buckets(n_buckets);
  for (Index j = 0; j < sk; ++j) buckets[k_codes[static_cast<std::size_t>(j)]].push_back(j);

  // Shared uniformly-sampled columns (residual estimator), ascending.
  Rng col_rng = rng.fork(2);
  std::vector<Index> sampled =
      col_rng.sample_without_replacement(sk, std::min(n_sampled, sk));
  std::sort(sampled.begin(), sampled.end());

  const float scale = 1.0f / std::sqrt(static_cast<float>(d));
  std::atomic<long long> evals_total{0};
  parallel_for(sq, [&](Index i) {
    const Index lim = causal_limit(i, sq, sk);
    auto orow = res.out.row(i);
    if (lim < 0) {
      std::fill(orow.begin(), orow.end(), 0.0f);
      return;
    }
    // Gather the selected key set: same-bucket tail + sampled columns + diag.
    std::vector<Index> sel;
    const auto& bucket = buckets[q_codes[static_cast<std::size_t>(i)]];
    const auto bend = std::upper_bound(bucket.begin(), bucket.end(), lim);
    const Index avail = static_cast<Index>(bend - bucket.begin());
    const Index take = std::min(avail, bucket_cap);
    sel.assign(bend - take, bend);
    for (Index j : sampled) {
      if (j > lim) break;
      sel.push_back(j);
    }
    sel.push_back(lim);
    std::sort(sel.begin(), sel.end());
    sel.erase(std::unique(sel.begin(), sel.end()), sel.end());

    OnlineSoftmaxRow st(d);
    const auto qi = in.q.row(i);
    for (Index j : sel) st.absorb(scale * dot(qi, in.k.row(j)), in.v.row(j));
    st.finalize(orow);
    evals_total.fetch_add(static_cast<long long>(sel.size()), std::memory_order_relaxed);
  });

  // Selection metadata: one bucket id per q/k row plus the sampled-column
  // list each row consults.
  obs::charge_attention_kernel("hyper", sq, sk, d,
                               static_cast<double>(evals_total.load()),
                               /*score_bytes=*/0.0,
                               /*meta_bytes=*/4.0 * static_cast<double>(sq + sk) +
                                   8.0 * static_cast<double>(sampled.size()));
  res.density = static_cast<double>(evals_total.load()) / causal_pairs(sq, sk);
  // Hashing cost: one `hash_bits x d` projection pass over Q and K, vs the
  // ~2 * Sk * d flops of a full attention row — expressed as a fraction of
  // full attention work.
  res.overhead_density = static_cast<double>(cfg_.hash_bits) *
                         static_cast<double>(sq + sk) / (2.0 * causal_pairs(sq, sk));
  return res;
}

}  // namespace sattn
