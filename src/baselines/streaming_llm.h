// StreamingLLM baseline (Xiao et al., 2023), prefill variant used in the
// paper's Table 2: a handful of initial "attention sink" tokens plus a local
// window (the paper assigns it the same 8% window ratio as SampleAttention).
// Because everything between the sinks and the window is dropped regardless
// of content, needles buried mid-context are unrecoverable — the mechanism
// behind its collapse on the Synthetic / Needle tasks.
#pragma once

#include "attention/attention_method.h"
#include "attention/masks.h"

namespace sattn {

struct StreamingLLMConfig {
  Index sink_tokens = 4;
  double window_ratio = 0.08;
};

class StreamingLLM final : public AttentionMethod {
 public:
  explicit StreamingLLM(StreamingLLMConfig cfg = {}) : cfg_(cfg) {}
  std::string name() const override { return "StreamingLLM"; }

 protected:
  AttentionResult run_impl(const AttentionInput& in) const override;

 private:
  StreamingLLMConfig cfg_;
};

}  // namespace sattn
