#include "baselines/hash_sparse.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <vector>

#include "attention/flash_attention.h"
#include "core/rng.h"
#include "core/simd.h"
#include "core/thread_pool.h"
#include "obs/accounting.h"

namespace sattn {
namespace {

// Dominant direction of the key matrix (one power-iteration pass on K^T K).
// Real q/k embeddings are strongly anisotropic — a shared component carries
// much of every inner product — and an untrained content hash is blind to
// the model's attention geometry. Projecting the dominant direction out
// before hashing reproduces that blindness: buckets reflect residual
// content, not attention mass (which is why Hash-Sparse is the weakest
// baseline in the paper's Table 2).
std::vector<float> dominant_direction(const Matrix& k, Rng& rng) {
  const Index d = k.cols();
  std::vector<float> v(static_cast<std::size_t>(d));
  for (float& x : v) x = static_cast<float>(rng.normal());
  std::vector<float> next(static_cast<std::size_t>(d));
  for (int iter = 0; iter < 8; ++iter) {
    std::fill(next.begin(), next.end(), 0.0f);
    for (Index r = 0; r < k.rows(); ++r) {
      const float proj = dot(k.row(r), v);
      axpy(proj, k.row(r), next);
    }
    double norm2 = 0.0;
    for (float x : next) norm2 += static_cast<double>(x) * x;
    const double inv = norm2 > 0.0 ? 1.0 / std::sqrt(norm2) : 0.0;
    for (std::size_t t = 0; t < next.size(); ++t) v[t] = static_cast<float>(next[t] * inv);
  }
  return v;
}

// Spherical-LSH bucket per row after removing the dominant-key component:
// argmax_j <row - (row.u)u, dir_j> over num_buckets random directions
// (shared between Q and K). The projection loop is register-blocked: four
// direction rows at a time share one pass over the residual row
// (simd::dotn with the row as the common stream).
std::vector<Index> bucket_assignment(const Matrix& m, const Matrix& directions,
                                     std::span<const float> remove_dir) {
  std::vector<Index> out(static_cast<std::size_t>(m.rows()));
  std::vector<float> row(static_cast<std::size_t>(m.cols()));
  const Index d = m.cols(), nb = directions.rows();
  const simd::Ops& ops = simd::ops();
  for (Index r = 0; r < m.rows(); ++r) {
    auto src = m.row(r);
    const float proj = dot(src, remove_dir);
    for (std::size_t t = 0; t < row.size(); ++t) row[t] = src[t] - proj * remove_dir[t];
    Index best = 0;
    float best_v = -std::numeric_limits<float>::infinity();
    for (Index b0 = 0; b0 < nb; b0 += simd::kMaxRows) {
      const Index nr = std::min<Index>(simd::kMaxRows, nb - b0);
      const float* dirs[simd::kMaxRows];
      for (Index t = 0; t < nr; ++t) dirs[t] = directions.row(b0 + t).data();
      float v[simd::kMaxRows];
      ops.dotn(dirs, nr, row.data(), d, v);
      for (Index t = 0; t < nr; ++t) {
        if (v[t] > best_v) {
          best_v = v[t];
          best = b0 + t;
        }
      }
    }
    out[static_cast<std::size_t>(r)] = best;
  }
  return out;
}

}  // namespace

AttentionResult HashSparse::run_impl(const AttentionInput& in) const {
  const Index sq = in.sq(), sk = in.sk(), d = in.head_dim();
  AttentionResult res;
  res.out.resize(sq, d);

  Rng rng(cfg_.seed);
  Matrix directions(cfg_.num_buckets, d);
  rng.fill_normal(directions);
  const std::vector<float> dom = dominant_direction(in.k, rng);
  const std::vector<Index> q_bucket = bucket_assignment(in.q, directions, dom);
  const std::vector<Index> k_bucket = bucket_assignment(in.k, directions, dom);

  std::vector<std::vector<Index>> buckets(static_cast<std::size_t>(cfg_.num_buckets));
  for (Index j = 0; j < sk; ++j) buckets[static_cast<std::size_t>(k_bucket[static_cast<std::size_t>(j)])].push_back(j);

  const float scale = 1.0f / std::sqrt(static_cast<float>(d));
  std::atomic<long long> evals_total{0};
  parallel_for(sq, [&](Index i) {
    const Index lim = causal_limit(i, sq, sk);
    auto orow = res.out.row(i);
    if (lim < 0) {
      std::fill(orow.begin(), orow.end(), 0.0f);
      return;
    }
    OnlineSoftmaxRow st(d);
    const auto qi = in.q.row(i);
    long long evals = 0;
    const auto& bucket = buckets[static_cast<std::size_t>(q_bucket[static_cast<std::size_t>(i)])];
    bool saw_diag = false;
    for (Index j : bucket) {
      if (j > lim) break;
      st.absorb(scale * dot(qi, in.k.row(j)), in.v.row(j));
      saw_diag |= (j == lim);
      ++evals;
    }
    if (!saw_diag) {
      st.absorb(scale * dot(qi, in.k.row(lim)), in.v.row(lim));
      ++evals;
    }
    st.finalize(orow);
    evals_total.fetch_add(evals, std::memory_order_relaxed);
  });

  // Selection metadata: one bucket id per q/k row.
  obs::charge_attention_kernel("hash", sq, sk, d, static_cast<double>(evals_total.load()),
                               /*score_bytes=*/0.0,
                               /*meta_bytes=*/4.0 * static_cast<double>(sq + sk));
  res.density = static_cast<double>(evals_total.load()) / causal_pairs(sq, sk);
  res.overhead_density = static_cast<double>(cfg_.num_buckets) *
                         static_cast<double>(sq + sk) / (2.0 * causal_pairs(sq, sk));
  return res;
}

}  // namespace sattn
