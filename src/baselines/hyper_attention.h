// HyperAttention baseline (Han et al., 2024), causal prefill variant as
// configured in the paper's Section 5.2 (bucket size 256, 256 sampled
// columns).
//
// The algorithm identifies large score entries with sortLSH: queries and
// keys are hashed with shared random hyperplanes (SimHash), and a query
// attends the keys that land in the same hash bucket — the LSH guarantee is
// that high inner-product pairs collide with elevated probability. To that
// it adds a set of uniformly sampled key columns (the "sampled columns"
// estimator of the residual) and the diagonal. Bucket membership depends on
// random projections, not attention mass, so mid-context needles are found
// only when the hash happens to collide — visible in Table 2 as large,
// task-dependent accuracy drops.
#pragma once

#include "attention/attention_method.h"
#include "core/tensor.h"

namespace sattn {

struct HyperAttentionConfig {
  Index bucket_size = 256;       // max keys a query attends within its bucket
  Index sampled_columns = 256;   // uniformly sampled key columns
  Index hash_bits = 7;           // 2^7 = 128 buckets
  // The paper configures 256/256 at 64K-class lengths (~0.4% of keys). When
  // scale_with_length is set (the default), bucket_size and sampled_columns
  // are reinterpreted as that fraction of Sk (floored at 16/8), so runs at
  // scaled-down sequence lengths keep the baseline's relative capacity
  // instead of quietly approaching dense attention.
  bool scale_with_length = true;
  Index reference_length = 65536;
  std::uint64_t seed = 0x4152ull;
};

class HyperAttention final : public AttentionMethod {
 public:
  explicit HyperAttention(HyperAttentionConfig cfg = {}) : cfg_(cfg) {}
  std::string name() const override { return "HyperAttention"; }

 protected:
  AttentionResult run_impl(const AttentionInput& in) const override;

 private:
  HyperAttentionConfig cfg_;
};

}  // namespace sattn
