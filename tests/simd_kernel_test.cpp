// SIMD micro-kernel parity and dispatch tests (core/simd.h,
// attention/microkernel.h).
//
// The scalar table reproduces the pre-SIMD loops bit-for-bit; the AVX2 table
// accumulates dots in double like the scalar one, so the two backends agree
// to well under the 1e-5 the attention tests rely on. The suite compares
// them in one process via ScopedForceScalar: on hosts without AVX2 (or with
// SATTN_FORCE_SCALAR set) both sides resolve to the scalar table and every
// parity check degenerates to an exact self-comparison, which keeps the
// suite meaningful under sanitizers and on non-x86 builds.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <vector>

#include "attention/block_sparse.h"
#include "attention/flash_attention.h"
#include "attention/full_attention.h"
#include "attention/masks.h"
#include "attention/score_utils.h"
#include "attention/sparse_flash_attention.h"
#include "core/rng.h"
#include "core/simd.h"

namespace sattn {
namespace {

constexpr float kTol = 1e-5f;

// The ISSUE's size sweep: odd, sub-vector, exact multiples of the 8-lane
// vector width, the bench head dim, and a large size with a ragged tail.
const Index kSizes[] = {1, 3, 8, 64, 96, 128, 257};

AttentionInput random_input(Index sq, Index sk, Index d, std::uint64_t seed) {
  AttentionInput in;
  in.q.resize(sq, d);
  in.k.resize(sk, d);
  in.v.resize(sk, d);
  Rng rng(seed);
  rng.fill_normal(in.q);
  rng.fill_normal(in.k);
  rng.fill_normal(in.v);
  return in;
}

std::vector<float> random_vec(Index n, std::uint64_t seed) {
  std::vector<float> v(static_cast<std::size_t>(n));
  Rng rng(seed);
  for (auto& x : v) x = static_cast<float>(rng.normal());
  return v;
}

void expect_matrices_near(const Matrix& a, const Matrix& b, float tol) {
  ASSERT_EQ(a.rows(), b.rows());
  ASSERT_EQ(a.cols(), b.cols());
  for (Index i = 0; i < a.rows(); ++i) {
    for (Index j = 0; j < a.cols(); ++j) {
      ASSERT_NEAR(a(i, j), b(i, j), tol) << "at (" << i << ", " << j << ")";
    }
  }
}

// ---- dispatch plumbing ------------------------------------------------------

TEST(SimdDispatch, ScalarTableIsAlwaysAvailable) {
  const simd::Ops& s = simd::scalar_ops();
  EXPECT_STREQ(s.name, "scalar");
  EXPECT_EQ(s.level, simd::Level::kScalar);
  EXPECT_NE(s.dot, nullptr);
  EXPECT_NE(s.dotn, nullptr);
  EXPECT_NE(s.axpy, nullptr);
  EXPECT_NE(s.axpyn, nullptr);
  EXPECT_NE(s.scale_inplace, nullptr);
}

TEST(SimdDispatch, ActiveLevelNameMatchesLevel) {
  EXPECT_STREQ(simd::active_level_name(), simd::level_name(simd::active_level()));
}

TEST(SimdDispatch, ScopedForceScalarSwapsAndRestores) {
  const char* before = simd::active_level_name();
  {
    simd::ScopedForceScalar guard;
    EXPECT_STREQ(simd::active_level_name(), "scalar");
    EXPECT_EQ(simd::active_level(), simd::Level::kScalar);
  }
  EXPECT_STREQ(simd::active_level_name(), before);
}

TEST(SimdDispatch, DispatchedOpsRespectsDetectedLevel) {
  // dispatched_ops() may be scalar even when AVX2 is detected (the
  // SATTN_FORCE_SCALAR override), but it must never exceed detection.
  EXPECT_LE(static_cast<int>(simd::dispatched_ops().level),
            static_cast<int>(simd::detected_level()));
}

// ---- primitive parity: scalar table vs dispatched table ---------------------

TEST(SimdPrimitives, DotMatchesScalarAcrossSizes) {
  const simd::Ops& s = simd::scalar_ops();
  const simd::Ops& v = simd::dispatched_ops();
  for (Index n : kSizes) {
    const auto a = random_vec(n, 100 + static_cast<std::uint64_t>(n));
    const auto b = random_vec(n, 200 + static_cast<std::uint64_t>(n));
    const float want = s.dot(a.data(), b.data(), n);
    const float got = v.dot(a.data(), b.data(), n);
    EXPECT_NEAR(got, want, kTol * std::max(1.0f, std::fabs(want))) << "n=" << n;
  }
}

TEST(SimdPrimitives, DotnMatchesPerRowDots) {
  const simd::Ops& s = simd::scalar_ops();
  const simd::Ops& v = simd::dispatched_ops();
  for (Index n : kSizes) {
    std::vector<std::vector<float>> qs;
    const float* qp[simd::kMaxRows];
    for (Index r = 0; r < simd::kMaxRows; ++r) {
      qs.push_back(random_vec(n, 300 + static_cast<std::uint64_t>(10 * n + r)));
      qp[r] = qs.back().data();
    }
    const auto k = random_vec(n, 400 + static_cast<std::uint64_t>(n));
    for (Index rows = 1; rows <= simd::kMaxRows; ++rows) {
      float got[simd::kMaxRows];
      v.dotn(qp, rows, k.data(), n, got);
      for (Index r = 0; r < rows; ++r) {
        const float want = s.dot(qp[r], k.data(), n);
        EXPECT_NEAR(got[r], want, kTol * std::max(1.0f, std::fabs(want)))
            << "n=" << n << " rows=" << rows << " r=" << r;
      }
    }
  }
}

TEST(SimdPrimitives, AxpyMatchesScalarAcrossSizes) {
  const simd::Ops& s = simd::scalar_ops();
  const simd::Ops& v = simd::dispatched_ops();
  for (Index n : kSizes) {
    const auto x = random_vec(n, 500 + static_cast<std::uint64_t>(n));
    auto want = random_vec(n, 600 + static_cast<std::uint64_t>(n));
    auto got = want;
    s.axpy(0.37f, x.data(), want.data(), n);
    v.axpy(0.37f, x.data(), got.data(), n);
    for (Index t = 0; t < n; ++t) {
      EXPECT_NEAR(got[static_cast<std::size_t>(t)], want[static_cast<std::size_t>(t)], kTol)
          << "n=" << n << " t=" << t;
    }
  }
}

TEST(SimdPrimitives, AxpynMatchesPerRowAxpy) {
  const simd::Ops& s = simd::scalar_ops();
  const simd::Ops& v = simd::dispatched_ops();
  for (Index n : kSizes) {
    const auto x = random_vec(n, 700 + static_cast<std::uint64_t>(n));
    const float w[simd::kMaxRows] = {0.1f, -1.5f, 0.0f, 2.25f};
    for (Index rows = 1; rows <= simd::kMaxRows; ++rows) {
      std::vector<std::vector<float>> want, got;
      float* wp[simd::kMaxRows];
      float* gp[simd::kMaxRows];
      for (Index r = 0; r < rows; ++r) {
        want.push_back(random_vec(n, 800 + static_cast<std::uint64_t>(10 * n + r)));
        got.push_back(want.back());
      }
      for (Index r = 0; r < rows; ++r) {
        wp[r] = want[static_cast<std::size_t>(r)].data();
        gp[r] = got[static_cast<std::size_t>(r)].data();
      }
      for (Index r = 0; r < rows; ++r) s.axpy(w[r], x.data(), wp[r], n);
      v.axpyn(w, rows, x.data(), gp, n);
      for (Index r = 0; r < rows; ++r) {
        for (Index t = 0; t < n; ++t) {
          EXPECT_NEAR(gp[r][t], wp[r][t], kTol) << "n=" << n << " rows=" << rows << " r=" << r;
        }
      }
    }
  }
}

TEST(SimdPrimitives, ScaleInplaceMatchesScalar) {
  const simd::Ops& s = simd::scalar_ops();
  const simd::Ops& v = simd::dispatched_ops();
  for (Index n : kSizes) {
    auto want = random_vec(n, 900 + static_cast<std::uint64_t>(n));
    auto got = want;
    s.scale_inplace(want.data(), n, 0.8125f);
    v.scale_inplace(got.data(), n, 0.8125f);
    for (Index t = 0; t < n; ++t) {
      EXPECT_NEAR(got[static_cast<std::size_t>(t)], want[static_cast<std::size_t>(t)], kTol);
    }
  }
}

// ---- kernel parity: dispatched backend vs forced-scalar backend -------------

template <typename Fn>
Matrix run_forced_scalar(const Fn& fn) {
  simd::ScopedForceScalar guard;
  Matrix out;
  fn(out);
  return out;
}

TEST(SimdKernelParity, FlashAttentionAcrossHeadDims) {
  for (Index d : kSizes) {
    const AttentionInput in = random_input(37, 37, d, 1000 + static_cast<std::uint64_t>(d));
    Matrix simd_out;
    flash_attention(in, simd_out);
    const Matrix scalar_out = run_forced_scalar([&](Matrix& o) { flash_attention(in, o); });
    expect_matrices_near(simd_out, scalar_out, kTol);
  }
}

TEST(SimdKernelParity, FullAttentionAcrossHeadDims) {
  for (Index d : kSizes) {
    const AttentionInput in = random_input(33, 49, d, 2000 + static_cast<std::uint64_t>(d));
    Matrix simd_out;
    full_attention(in, simd_out);
    const Matrix scalar_out = run_forced_scalar([&](Matrix& o) { full_attention(in, o); });
    expect_matrices_near(simd_out, scalar_out, kTol);
  }
}

TEST(SimdKernelParity, FlashAgreesWithFullAtRaggedSizes) {
  // Row counts that leave 1..3-row remainders for the 4-row register block.
  for (Index sq : {1, 2, 3, 5, 6, 7, 30, 31}) {
    const AttentionInput in =
        random_input(sq, sq + 11, 24, 3000 + static_cast<std::uint64_t>(sq));
    Matrix flash_out, full_out;
    flash_attention(in, flash_out);
    full_attention(in, full_out);
    expect_matrices_near(flash_out, full_out, 3e-5f);
  }
}

TEST(SimdKernelParity, SparseFlashWindowPlusStripes) {
  const AttentionInput in = random_input(61, 61, 32, 4000);
  StructuredMask mask(61, 61);
  mask.set_window(7);
  mask.set_stripe_columns({0, 1, 2, 17, 18, 40});
  Matrix simd_out;
  sparse_flash_attention(in, mask, simd_out);
  const Matrix scalar_out =
      run_forced_scalar([&](Matrix& o) { sparse_flash_attention(in, mask, o); });
  expect_matrices_near(simd_out, scalar_out, kTol);
}

TEST(SimdKernelParity, BlockSparseRaggedTiles) {
  const AttentionInput in = random_input(50, 50, 40, 5000);
  StructuredMask mask(50, 50);
  mask.set_window(9);
  mask.set_stripe_columns({0, 13, 14, 15, 33});
  // Block size 16 over 50 rows leaves a ragged 2-row tile at the bottom.
  const BlockSparseLayout layout = BlockSparseLayout::from_mask(mask, 16);
  Matrix simd_out;
  block_sparse_attention(in, layout, simd_out);
  const Matrix scalar_out =
      run_forced_scalar([&](Matrix& o) { block_sparse_attention(in, layout, o); });
  expect_matrices_near(simd_out, scalar_out, kTol);
}

TEST(SimdKernelParity, ScoreRowsMatchScalarInCallerOrder) {
  const AttentionInput in = random_input(29, 41, 16, 6000);
  const std::vector<Index> rows = {28, 0, 7, 7, 13, 1, 20};  // unsorted, duplicate
  auto collect = [&]() {
    std::vector<std::vector<float>> got;
    std::vector<Index> order;
    for_each_score_row(in, rows, [&](Index i, std::span<const float> p) {
      order.push_back(i);
      got.emplace_back(p.begin(), p.end());
    });
    EXPECT_EQ(order, rows);  // visit order is the caller's row order
    return got;
  };
  const auto simd_rows = collect();
  std::vector<std::vector<float>> scalar_rows;
  {
    simd::ScopedForceScalar guard;
    scalar_rows = collect();
  }
  ASSERT_EQ(simd_rows.size(), scalar_rows.size());
  for (std::size_t r = 0; r < simd_rows.size(); ++r) {
    ASSERT_EQ(simd_rows[r].size(), scalar_rows[r].size());
    for (std::size_t j = 0; j < simd_rows[r].size(); ++j) {
      ASSERT_NEAR(simd_rows[r][j], scalar_rows[r][j], kTol) << "row " << r << " col " << j;
    }
  }
}

// ---- masked-region robustness ----------------------------------------------

TEST(SimdKernelParity, NaNPoisonedMaskedKVNeverRead) {
  // Stripe-only mask: keys outside the stripes are dead columns the kernel
  // must never touch. Poison them with NaN and require finite outputs that
  // still match the forced-scalar run.
  const Index s = 45, d = 32;
  AttentionInput in = random_input(s, s, d, 7000);
  StructuredMask mask(s, s);
  mask.set_stripe_columns({3, 4, 5, 21, 22});
  const float nan = std::numeric_limits<float>::quiet_NaN();
  for (Index j = 0; j < s; ++j) {
    if (j == 3 || j == 4 || j == 5 || j == 21 || j == 22) continue;
    for (Index t = 0; t < d; ++t) {
      in.k(j, t) = nan;
      in.v(j, t) = nan;
    }
  }
  Matrix simd_out;
  sparse_flash_attention(in, mask, simd_out);
  const Matrix scalar_out =
      run_forced_scalar([&](Matrix& o) { sparse_flash_attention(in, mask, o); });
  for (Index i = 0; i < s; ++i) {
    for (Index t = 0; t < d; ++t) {
      ASSERT_TRUE(std::isfinite(simd_out(i, t))) << "NaN leaked at (" << i << ", " << t << ")";
    }
  }
  expect_matrices_near(simd_out, scalar_out, kTol);
}

TEST(SimdKernelParity, FullyMaskedRowsProduceZeroNotNaN) {
  // Rows below the first stripe column have every logit masked to -inf; the
  // online softmax must finalize them to exact zeros in both backends.
  const Index s = 20, d = 16;
  const AttentionInput in = random_input(s, s, d, 8000);
  StructuredMask mask(s, s);
  mask.set_stripe_columns({10});
  Matrix simd_out;
  sparse_flash_attention(in, mask, simd_out);
  const Matrix scalar_out =
      run_forced_scalar([&](Matrix& o) { sparse_flash_attention(in, mask, o); });
  for (Index i = 0; i < 10; ++i) {
    for (Index t = 0; t < d; ++t) {
      ASSERT_EQ(simd_out(i, t), 0.0f) << "row " << i;
      ASSERT_EQ(scalar_out(i, t), 0.0f) << "row " << i;
    }
  }
  expect_matrices_near(simd_out, scalar_out, kTol);
}

TEST(SimdKernelParity, NegativeCausalLimitRowsAreZero) {
  // sq > sk: leading queries have causal limit < 0 (no visible keys) and
  // must come back as zero rows from both the tiled and dense kernels.
  const AttentionInput in = random_input(6, 2, 8, 9000);
  Matrix flash_out, full_out;
  flash_attention(in, flash_out);
  full_attention(in, full_out);
  for (Index i = 0; i < 4; ++i) {
    for (Index t = 0; t < 8; ++t) {
      ASSERT_EQ(flash_out(i, t), 0.0f);
      ASSERT_EQ(full_out(i, t), 0.0f);
    }
  }
  expect_matrices_near(flash_out, full_out, kTol);
}

// ---- long-row accumulation drift (satellite: unified double normalizer) -----

TEST(SimdNumerics, LongRowAccumulationDriftAtS16K) {
  // S = 16384 keys funneled through the online-softmax chain (float max,
  // double normalizer, float accumulator). Compare against an all-double
  // two-pass softmax·V reference; drift must stay well under the 1e-5-scale
  // tolerances the rest of the suite runs at. This pins the double-l
  // contract of OnlineSoftmaxRow: with a float normalizer the error at this
  // length is an order of magnitude larger.
  const Index sq = 4, sk = 16384, d = 8;
  const AttentionInput in = random_input(sq, sk, d, 123);
  Matrix out;
  flash_attention(in, out);

  const float scale = 1.0f / std::sqrt(static_cast<float>(d));
  for (Index i = 0; i < sq; ++i) {
    const Index lim = causal_limit(i, sq, sk);
    double max_logit = -std::numeric_limits<double>::infinity();
    std::vector<double> logits(static_cast<std::size_t>(lim + 1));
    for (Index j = 0; j <= lim; ++j) {
      double s = 0.0;
      for (Index t = 0; t < d; ++t) {
        s += static_cast<double>(in.q(i, t)) * static_cast<double>(in.k(j, t));
      }
      s *= static_cast<double>(scale);
      logits[static_cast<std::size_t>(j)] = s;
      max_logit = std::max(max_logit, s);
    }
    double denom = 0.0;
    std::vector<double> ref(static_cast<std::size_t>(d), 0.0);
    for (Index j = 0; j <= lim; ++j) {
      const double w = std::exp(logits[static_cast<std::size_t>(j)] - max_logit);
      denom += w;
      for (Index t = 0; t < d; ++t) ref[static_cast<std::size_t>(t)] += w * in.v(j, t);
    }
    for (Index t = 0; t < d; ++t) {
      const double want = ref[static_cast<std::size_t>(t)] / denom;
      EXPECT_NEAR(static_cast<double>(out(i, t)), want, 1e-4) << "row " << i << " dim " << t;
    }
  }
}

}  // namespace
}  // namespace sattn
