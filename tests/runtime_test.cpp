// Tests for the runtime layer: KV cache, decode attention, eviction
// policies, chunked prefill, and the model-level prefill runner.
#include <gtest/gtest.h>

#include <cmath>

#include "attention/flash_attention.h"
#include "attention/full_attention.h"
#include "core/rng.h"
#include "model/workload.h"
#include "runtime/chunked_prefill.h"
#include "runtime/decode.h"
#include "runtime/eviction.h"
#include "runtime/kv_cache.h"
#include "runtime/model_runner.h"
#include "sample_attention/sample_attention.h"

namespace sattn {
namespace {

AttentionInput random_input(Index s, Index d, std::uint64_t seed) {
  AttentionInput in;
  in.q.resize(s, d);
  in.k.resize(s, d);
  in.v.resize(s, d);
  Rng rng(seed);
  rng.fill_normal(in.q);
  rng.fill_normal(in.k);
  rng.fill_normal(in.v);
  return in;
}

TEST(KvCache, AppendAndViews) {
  KVCache cache(4);
  std::vector<float> k = {1, 2, 3, 4}, v = {5, 6, 7, 8};
  ASSERT_TRUE(cache.append(0, k, v).ok());
  ASSERT_EQ(cache.size(), 1);
  EXPECT_FLOAT_EQ(cache.k(0)[2], 3.0f);
  EXPECT_FLOAT_EQ(cache.v(0)[0], 5.0f);
  EXPECT_EQ(cache.position(0), 0);
}

TEST(KvCache, AppendPrefillCopiesAllRows) {
  const AttentionInput in = random_input(16, 8, 1);
  KVCache cache(8);
  ASSERT_TRUE(cache.append_prefill(in).ok());
  ASSERT_EQ(cache.size(), 16);
  for (Index j = 0; j < 16; ++j) {
    EXPECT_FLOAT_EQ(cache.k(j)[0], in.k(j, 0));
    EXPECT_FLOAT_EQ(cache.v(j)[7], in.v(j, 7));
    EXPECT_EQ(cache.position(j), j);
  }
}

TEST(KvCache, KeepSlotsCompacts) {
  const AttentionInput in = random_input(8, 4, 2);
  KVCache cache(4);
  ASSERT_TRUE(cache.append_prefill(in).ok());
  std::vector<Index> keep = {0, 3, 7};
  ASSERT_TRUE(cache.keep_slots(keep).ok());
  ASSERT_EQ(cache.size(), 3);
  EXPECT_EQ(cache.position(1), 3);
  EXPECT_FLOAT_EQ(cache.k(2)[0], in.k(7, 0));
  EXPECT_EQ(cache.slot_of(3), 1);
  EXPECT_EQ(cache.slot_of(4), -1);
}

// Satellite regression (docs/ROBUSTNESS.md): violations of the cache's
// append contract are checked errors, not asserts, so they surface in
// release builds too (SATTN_CHECK never compiles out — this test runs
// identically under -DNDEBUG).
TEST(KvCache, AppendViolationsAreCheckedErrors) {
  KVCache cache(4);
  std::vector<float> k = {1, 2, 3, 4}, v = {5, 6, 7, 8};
  ASSERT_TRUE(cache.append(5, k, v).ok());

  // Non-monotone position: rejected, cache untouched.
  const Status backwards = cache.append(5, k, v);
  EXPECT_EQ(backwards.code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(backwards.message().find("monoton"), std::string::npos);
  EXPECT_EQ(cache.size(), 1);

  // Dimension mismatch: rejected, cache untouched.
  std::vector<float> short_row = {1, 2};
  const Status bad_k = cache.append(6, short_row, v);
  EXPECT_EQ(bad_k.code(), StatusCode::kInvalidArgument);
  const Status bad_v = cache.append(6, k, short_row);
  EXPECT_EQ(bad_v.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(cache.size(), 1);

  // The cache still works after rejected appends.
  ASSERT_TRUE(cache.append(6, k, v).ok());
  EXPECT_EQ(cache.size(), 2);
  EXPECT_EQ(cache.position(1), 6);
}

TEST(KvCache, KeepSlotsRejectsBadListsWithoutMutating) {
  const AttentionInput in = random_input(8, 4, 21);
  KVCache cache(4);
  ASSERT_TRUE(cache.append_prefill(in).ok());
  EXPECT_EQ(cache.keep_slots(std::vector<Index>{3, 1}).code(),
            StatusCode::kInvalidArgument);  // not ascending
  EXPECT_EQ(cache.keep_slots(std::vector<Index>{0, 99}).code(),
            StatusCode::kOutOfRange);
  EXPECT_EQ(cache.size(), 8);  // nothing was dropped by the failed calls
  for (Index j = 0; j < 8; ++j) EXPECT_FLOAT_EQ(cache.k(j)[0], in.k(j, 0));
}

TEST(KvCache, AppendPrefillRejectsMismatchedInput) {
  AttentionInput in = random_input(8, 4, 22);
  KVCache cache(8);  // head_dim 8 != input's 4
  EXPECT_EQ(cache.append_prefill(in).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(cache.size(), 0);
}

TEST(Decode, MatchesFullAttentionLastRow) {
  // Decoding position S-1 against the cache of positions 0..S-1 must equal
  // the last row of one-shot causal prefill.
  const AttentionInput in = random_input(32, 8, 3);
  Matrix exact;
  full_attention(in, exact);

  KVCache cache(8);
  ASSERT_TRUE(cache.append_prefill(in).ok());
  std::vector<float> out(8);
  ASSERT_TRUE(decode_attention(in.q.row(31), cache, out).ok());
  for (Index t = 0; t < 8; ++t) EXPECT_NEAR(out[static_cast<std::size_t>(t)], exact(31, t), 2e-5f);
}

TEST(Decode, WeightsSumToOne) {
  const AttentionInput in = random_input(16, 4, 4);
  KVCache cache(4);
  ASSERT_TRUE(cache.append_prefill(in).ok());
  std::vector<float> out(4), weights;
  ASSERT_TRUE(decode_attention(in.q.row(15), cache, out, &weights).ok());
  ASSERT_EQ(weights.size(), 16u);
  double s = 0.0;
  for (float w : weights) s += w;
  EXPECT_NEAR(s, 1.0, 1e-5);
}

TEST(Decode, EmptyCacheYieldsZeros) {
  KVCache cache(4);
  std::vector<float> q = {1, 2, 3, 4}, out(4, 9.0f);
  ASSERT_TRUE(decode_attention(q, cache, out).ok());
  for (float x : out) EXPECT_FLOAT_EQ(x, 0.0f);
}

TEST(H2O, KeepsHeavyHittersAndRecent) {
  const AttentionInput in = random_input(32, 4, 5);
  KVCache cache(4);
  ASSERT_TRUE(cache.append_prefill(in).ok());
  H2OPolicy policy(/*budget=*/8, /*recent=*/4);
  // Observe weights that make positions 2 and 10 heavy.
  std::vector<float> w(32, 0.001f);
  w[2] = 0.5f;
  w[10] = 0.4f;
  policy.observe(cache, w);
  EXPECT_TRUE(policy.enforce(cache));
  EXPECT_EQ(cache.size(), 8);
  EXPECT_GE(cache.slot_of(2), 0);
  EXPECT_GE(cache.slot_of(10), 0);
  // The 4 most recent positions survive.
  for (Index pos : {28, 29, 30, 31}) EXPECT_GE(cache.slot_of(pos), 0);
}

TEST(H2O, NoEvictionUnderBudget) {
  const AttentionInput in = random_input(8, 4, 6);
  KVCache cache(4);
  ASSERT_TRUE(cache.append_prefill(in).ok());
  H2OPolicy policy(16, 4);
  EXPECT_FALSE(policy.enforce(cache));
  EXPECT_EQ(cache.size(), 8);
}

TEST(H2O, ScoresAccumulateAcrossSteps) {
  const AttentionInput in = random_input(8, 4, 7);
  KVCache cache(4);
  ASSERT_TRUE(cache.append_prefill(in).ok());
  H2OPolicy policy(6, 2);
  std::vector<float> w(8, 0.125f);
  policy.observe(cache, w);
  policy.observe(cache, w);
  EXPECT_NEAR(policy.accumulated_score(cache, 3), 0.25, 1e-6);
}

TEST(SinkRecent, KeepsExactlySinksAndTail) {
  const AttentionInput in = random_input(32, 4, 8);
  KVCache cache(4);
  ASSERT_TRUE(cache.append_prefill(in).ok());
  SinkRecentPolicy policy(/*sinks=*/4, /*recent=*/8);
  EXPECT_TRUE(policy.enforce(cache));
  EXPECT_EQ(cache.size(), 12);
  EXPECT_GE(cache.slot_of(0), 0);
  EXPECT_GE(cache.slot_of(3), 0);
  EXPECT_EQ(cache.slot_of(10), -1);
  EXPECT_GE(cache.slot_of(31), 0);
}

TEST(ChunkedPrefill, ExactlyMatchesOneShot) {
  const AttentionInput in = random_input(50, 8, 9);
  Matrix one_shot;
  flash_attention(in, one_shot);
  for (Index chunk : {1, 7, 16, 50, 64}) {
    const ChunkedPrefillResult res = chunked_flash_prefill(in, chunk).value();
    EXPECT_LT(max_abs_diff(res.out, one_shot), 3e-5f) << "chunk=" << chunk;
  }
}

TEST(ChunkedPrefill, FillsCache) {
  const AttentionInput in = random_input(20, 4, 10);
  KVCache cache(4);
  ASSERT_TRUE(chunked_flash_prefill(in, 6, &cache).ok());
  ASSERT_EQ(cache.size(), 20);
  EXPECT_FLOAT_EQ(cache.k(13)[1], in.k(13, 1));
}

TEST(ChunkedPrefill, SampleVariantIsNearLossless) {
  const ModelConfig model = chatglm2_6b();
  const AttentionInput in = generate_attention(model, plain_prompt(11, 512), 8, 3);
  Matrix exact;
  full_attention(in, exact);
  const ChunkedPrefillResult res = chunked_sample_prefill(in, 128, SampleAttentionConfig{}).value();
  EXPECT_EQ(res.chunks, 4);
  EXPECT_LT(res.mean_density, 1.0);
  EXPECT_LT(mean_abs_diff(res.out, exact), 0.05f);
}

TEST(ChunkedPrefill, DecodeAfterChunkedPrefillIsExact) {
  const AttentionInput in = random_input(24, 8, 12);
  Matrix exact;
  full_attention(in, exact);
  KVCache cache(8);
  ASSERT_TRUE(chunked_flash_prefill(in, 8, &cache).ok());
  std::vector<float> out(8);
  ASSERT_TRUE(decode_attention(in.q.row(23), cache, out).ok());
  for (Index t = 0; t < 8; ++t) EXPECT_NEAR(out[static_cast<std::size_t>(t)], exact(23, t), 2e-5f);
}

TEST(ModelRunner, ReportsSaneAggregates) {
  const ModelConfig model = chatglm2_6b();
  const ContentSpec content = plain_prompt(13, 256);
  PrefillOptions opts;
  opts.heads_per_layer = 1;
  opts.layer_stride = 7;
  const PrefillReport full = run_prefill(model, content, FullAttention{}, opts).value();
  const PrefillReport sample = run_prefill(model, content, SampleAttention{}, opts).value();
  EXPECT_EQ(full.method, "FullAttention");
  EXPECT_EQ(full.heads_run, sample.heads_run);
  EXPECT_EQ(full.layers.size(), full.per_layer_density.size());
  EXPECT_NEAR(full.mean_density, 1.0, 1e-9);
  EXPECT_LT(sample.mean_density, 0.8);
  EXPECT_GT(sample.mean_overhead, 0.0);
  EXPECT_GT(sample.seconds, 0.0);
}

TEST(ModelRunner, LayerZeroDensityHigherForSample) {
  // Layer 0's weak structure means SampleAttention must keep more there —
  // the per-layer density profile should show it.
  const ModelConfig model = chatglm2_6b();
  const ContentSpec content = plain_prompt(14, 512);
  PrefillOptions opts;
  opts.heads_per_layer = 2;
  opts.layer_stride = 9;  // layers 0, 9, 18, 27
  const PrefillReport report = run_prefill(model, content, SampleAttention{}, opts).value();
  ASSERT_GE(report.per_layer_density.size(), 2u);
  EXPECT_GT(report.per_layer_density.front(), report.per_layer_density.back());
}

}  // namespace
}  // namespace sattn
