// Tests for the continuous-batching serving engine (runtime/engine.h) and
// the ragged-sequence batched kernel API (runtime/batch.h).
//
// The parity suite pins the batch contract: ragged_attention_sweep is pure
// scheduling — for every route the batched output is bit-identical to the
// per-request kernel run alone. The engine suite pins the serving
// contracts: thread-safe admission, deterministic batch formation, the
// measured TTFT attribution invariant across a live batch, and the
// degrade/retry guardrails firing on measured time.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstring>
#include <thread>
#include <vector>

#include "attention/block_sparse.h"
#include "attention/flash_attention.h"
#include "attention/sparse_flash_attention.h"
#include "core/rng.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "robust/fault_injection.h"
#include "runtime/batch.h"
#include "runtime/engine.h"
#include "runtime/kv_cache.h"
#include "sample_attention/sample_attention.h"

namespace sattn {
namespace {

AttentionInput random_input(Index sq, Index sk, Index d, std::uint64_t seed) {
  AttentionInput in;
  in.q.resize(sq, d);
  in.k.resize(sk, d);
  in.v.resize(sk, d);
  Rng rng(seed);
  rng.fill_normal(in.q);
  rng.fill_normal(in.k);
  rng.fill_normal(in.v);
  return in;
}

// Bit-identical comparison: the sweep must introduce no new arithmetic, so
// even the last ulp has to match the per-request kernel.
void expect_bit_identical(const Matrix& a, const Matrix& b, const char* what) {
  ASSERT_EQ(a.rows(), b.rows()) << what;
  ASSERT_EQ(a.cols(), b.cols()) << what;
  for (Index r = 0; r < a.rows(); ++r) {
    const auto ra = a.row(r);
    const auto rb = b.row(r);
    ASSERT_EQ(std::memcmp(ra.data(), rb.data(), ra.size() * sizeof(float)), 0)
        << what << " row " << r;
  }
}

// ---------------------------------------------------------------------------
// Ragged-batch kernel parity.

TEST(RaggedBatch, DenseRouteMatchesFlashAttentionBitExact) {
  const Index d = 32;
  const std::vector<Index> sizes = {64, 192, 256};
  std::vector<AttentionInput> ins;
  std::vector<Matrix> ref(sizes.size()), got(sizes.size());
  for (std::size_t i = 0; i < sizes.size(); ++i)
    ins.push_back(random_input(sizes[i], sizes[i], d, 100 + i));

  RaggedBatchView batch;
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    flash_attention(ins[i], ref[i]);
    got[i].resize(sizes[i], d);
    RaggedSeq seq;
    seq.route = SeqRoute::kDense;
    seq.q = ins[i].q.data();
    seq.rows = sizes[i];
    seq.kv = mk::KvView::of(ins[i]);
    seq.k_hi = sizes[i];
    seq.causal_off = 0;
    seq.out = got[i].data();
    batch.seqs.push_back(seq);
  }
  ragged_attention_sweep(batch);
  for (std::size_t i = 0; i < sizes.size(); ++i)
    expect_bit_identical(ref[i], got[i], "dense seq");
}

TEST(RaggedBatch, ChunkedPrefillMatchesFullFlashBitExact) {
  // Chunk boundaries on tile_q multiples reproduce the full kernel's tile
  // walk exactly, so chunked prefill through the sweep is bit-identical to
  // one-shot prefill.
  const Index s = 256, d = 32, chunk = 128;
  AttentionInput in = random_input(s, s, d, 7);
  Matrix ref;
  flash_attention(in, ref);

  Matrix got(s, d);
  for (Index q_lo = 0; q_lo < s; q_lo += chunk) {
    const Index q_hi = std::min(s, q_lo + chunk);
    RaggedBatchView batch;
    RaggedSeq seq;
    seq.route = SeqRoute::kDense;
    seq.q = in.q.row(q_lo).data();
    seq.rows = q_hi - q_lo;
    seq.kv = mk::KvView::of(in);
    seq.k_hi = q_hi;
    seq.causal_off = q_lo;
    seq.out = got.row(q_lo).data();
    batch.seqs.push_back(seq);
    ragged_attention_sweep(batch);
  }
  expect_bit_identical(ref, got, "chunked prefill");
}

TEST(RaggedBatch, SparseAndBlockRoutesMatchStructuredKernelsBitExact) {
  const Index s = 256, d = 32;
  AttentionInput in = random_input(s, s, d, 11);
  SampleAttentionConfig cfg;
  const SamplePlan plan = plan_sample_attention(in, cfg);
  const BlockSparseLayout layout = BlockSparseLayout::from_mask(plan.mask, 64);

  Matrix ref_sparse, ref_block;
  sparse_flash_attention(in, plan.mask, ref_sparse);
  block_sparse_attention(in, layout, ref_block);

  // Both structured routes plus a dense sequence in ONE batch: the
  // structured kernels' internal parallel_for must run inline on the pool
  // worker (re-entrant parallel_for) and still produce identical bits.
  AttentionInput dense_in = random_input(128, 128, d, 12);
  Matrix ref_dense;
  flash_attention(dense_in, ref_dense);

  Matrix got_sparse, got_block, got_dense(128, d);
  RaggedBatchView batch;
  {
    RaggedSeq seq;
    seq.route = SeqRoute::kSparse;
    seq.chunk = &in;
    seq.mask = &plan.mask;
    seq.out_mat = &got_sparse;
    batch.seqs.push_back(seq);
  }
  {
    RaggedSeq seq;
    seq.route = SeqRoute::kBlockSparse;
    seq.chunk = &in;
    seq.layout = &layout;
    seq.out_mat = &got_block;
    batch.seqs.push_back(seq);
  }
  {
    RaggedSeq seq;
    seq.route = SeqRoute::kDense;
    seq.q = dense_in.q.data();
    seq.rows = 128;
    seq.kv = mk::KvView::of(dense_in);
    seq.k_hi = 128;
    seq.causal_off = 0;
    seq.out = got_dense.data();
    batch.seqs.push_back(seq);
  }
  const std::vector<SeqCost> costs = ragged_attention_sweep(batch);
  ASSERT_EQ(costs.size(), 3u);
  for (const SeqCost& c : costs) EXPECT_GE(c.seconds, 0.0);

  expect_bit_identical(ref_sparse, got_sparse, "sparse seq");
  expect_bit_identical(ref_block, got_block, "block-sparse seq");
  expect_bit_identical(ref_dense, got_dense, "dense seq in mixed batch");
}

TEST(RaggedBatch, DecodeStepAgainstKvCacheMatchesDirectFlashRows) {
  const Index s = 128, d = 32;
  AttentionInput in = random_input(s, s, d, 21);
  KVCache cache(d);
  ASSERT_TRUE(cache.append_prefill(in).ok());
  Matrix q = random_input(1, 1, d, 22).q;

  std::vector<float> ref(d, 0.0f), got(d, 0.0f);
  const mk::KvView kv = cache.view();  // paged view over the cache's page table
  flash_rows(q.data(), 1, kv, cache.size(), cache.size() - 1, ref.data(), d);

  RaggedBatchView batch;
  RaggedSeq seq;
  seq.route = SeqRoute::kDense;
  seq.q = q.data();
  seq.rows = 1;
  seq.kv = kv;
  seq.k_hi = cache.size();
  seq.causal_off = cache.size() - 1;
  seq.out = got.data();
  batch.seqs.push_back(seq);
  ragged_attention_sweep(batch);
  ASSERT_EQ(std::memcmp(ref.data(), got.data(), d * sizeof(float)), 0);
}

// ---------------------------------------------------------------------------
// Deterministic batch formation.

TEST(FormStep, DeterministicAcrossSnapshotOrderings) {
  std::vector<SlotSnapshot> slots = {
      {"a", 0, false, 1000, 512},  // mid-prefill
      {"b", 1, true, 512, 512},    // decoding
      {"c", 2, false, 300, 0},     // fresh
      {"d", 3, false, 100, 100},   // prefilled, not yet decoding: skipped
      {"e", 4, false, 4096, 0},    // fresh, long
  };
  StepPlanConfig cfg;
  cfg.max_batch = 3;
  cfg.chunk_tokens = 256;
  const std::vector<StepItem> ref = form_step(slots, cfg);

  ASSERT_EQ(ref.size(), 3u);  // a, b, c — FCFS by admit_seq, capped at 3
  EXPECT_EQ(ref[0].id, "a");
  EXPECT_FALSE(ref[0].decode);
  EXPECT_EQ(ref[0].q_lo, 512);
  EXPECT_EQ(ref[0].q_hi, 768);
  EXPECT_EQ(ref[1].id, "b");
  EXPECT_TRUE(ref[1].decode);
  EXPECT_EQ(ref[2].id, "c");
  EXPECT_EQ(ref[2].q_lo, 0);
  EXPECT_EQ(ref[2].q_hi, 256);  // clipped below: 300-token prompt, next step

  // Any permutation of the snapshot yields the identical plan.
  std::sort(slots.begin(), slots.end(),
            [](const SlotSnapshot& a, const SlotSnapshot& b) { return a.id > b.id; });
  const std::vector<StepItem> rev = form_step(slots, cfg);
  ASSERT_EQ(rev.size(), ref.size());
  for (std::size_t i = 0; i < ref.size(); ++i) {
    EXPECT_EQ(rev[i].id, ref[i].id);
    EXPECT_EQ(rev[i].decode, ref[i].decode);
    EXPECT_EQ(rev[i].q_lo, ref[i].q_lo);
    EXPECT_EQ(rev[i].q_hi, ref[i].q_hi);
  }

  // The final chunk is clipped to the prompt end.
  std::vector<SlotSnapshot> tail = {{"c", 2, false, 300, 256}};
  const std::vector<StepItem> last = form_step(tail, cfg);
  ASSERT_EQ(last.size(), 1u);
  EXPECT_EQ(last[0].q_lo, 256);
  EXPECT_EQ(last[0].q_hi, 300);
}

// ---------------------------------------------------------------------------
// Serving engine.

// Obs fixture: metrics collection on and registries clean, restored after,
// so counter/gauge assertions are hermetic.
class EngineObs : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::Collector::global().reset();
    obs::MetricsRegistry::global().reset();
    ASSERT_TRUE(obs::set_enabled(true)) << "SATTN_TRACE=0 in the test environment";
  }
  void TearDown() override {
    obs::set_enabled(false);
    obs::Collector::global().reset();
    obs::MetricsRegistry::global().reset();
  }

  static double counter_value(const std::string& name) {
    for (const obs::CounterValue& cv : obs::Collector::global().counters())
      if (cv.name == name) return cv.value;
    return 0.0;
  }
};

EngineOptions small_engine() {
  EngineOptions opts;
  opts.mode = EngineMode::kDense;
  opts.head_dim = 32;
  opts.chunk_tokens = 64;
  opts.max_batch = 4;
  opts.decode_tokens = 2;
  opts.run_label = "t";
  return opts;
}

TEST(ServingEngineTest, ConcurrentAdmissionCompletesEveryRequest) {
  // Hammer submit() from several threads at once; every request must come
  // back exactly once (completed — no policies are armed). This is the
  // TSan target for the intake path (scripts/check_sanitizers.sh).
  ServingEngine engine(small_engine());
  engine.start();
  constexpr int kThreads = 4, kPerThread = 4;
  std::atomic<int> counter{0};
  std::vector<std::thread> submitters;
  for (int t = 0; t < kThreads; ++t) {
    submitters.emplace_back([&engine, &counter] {
      for (int i = 0; i < kPerThread; ++i) {
        const int n = counter.fetch_add(1);
        ASSERT_TRUE(engine.submit({"r" + std::to_string(n), 64 + 32 * (n % 3), 0.0}).ok());
      }
    });
  }
  for (std::thread& t : submitters) t.join();
  const EngineResult res = engine.finish();

  ASSERT_EQ(res.completed.size(), static_cast<std::size_t>(kThreads * kPerThread));
  EXPECT_TRUE(res.shed.empty());
  std::vector<std::string> ids;
  for (const EngineCompletion& c : res.completed) ids.push_back(c.base.request.id);
  std::sort(ids.begin(), ids.end());
  EXPECT_EQ(std::unique(ids.begin(), ids.end()), ids.end()) << "duplicate completion";
  EXPECT_GT(res.iterations, 0);
}

TEST_F(EngineObs, TtftAttributionHoldsAcrossLiveBatch) {
  // A burst of simultaneous arrivals forms a live batch; each request's
  // measured queue/compute/guard must partition its TTFT with a
  // non-negative queue residual (measured slices can never exceed the
  // request's wall time, because its slices are disjoint).
  EngineOptions opts = small_engine();
  std::vector<ServingRequest> trace;
  for (int i = 0; i < 6; ++i) trace.push_back({"b" + std::to_string(i), 128 + 64 * (i % 2), 0.0});
  ServingEngine engine(opts);
  const EngineResult res = engine.run_trace(trace);

  ASSERT_EQ(res.completed.size(), trace.size());
  EXPECT_GT(res.peak_live_batch, 1);
  const obs::MetricsSnapshot snap = obs::MetricsRegistry::global().snapshot();
  const auto gauge = [&](const std::string& name) {
    for (const auto& [n, v] : snap.gauges)
      if (n == name) return v;
    ADD_FAILURE() << "gauge not found: " << name;
    return 0.0;
  };
  for (const EngineCompletion& c : res.completed) {
    const CompletedRequest& b = c.base;
    EXPECT_NEAR(b.queue_seconds + b.compute_seconds + b.guard_seconds, b.ttft(), 1e-9)
        << b.request.id;
    EXPECT_GE(b.queue_seconds, -1e-6) << b.request.id;
    EXPECT_GT(b.compute_seconds, 0.0) << b.request.id;
    EXPECT_DOUBLE_EQ(b.guard_seconds, 0.0) << b.request.id;  // no guardrails armed
    EXPECT_GE(b.start_seconds, b.request.arrival_seconds - 1e-9) << b.request.id;
    EXPECT_EQ(c.decoded_tokens, opts.decode_tokens) << b.request.id;
    EXPECT_GT(c.tpot_seconds, 0.0) << b.request.id;
    // The per-request gauges mirror the completion record.
    const std::string base = "request.t/" + b.request.id + ".";
    EXPECT_NEAR(gauge(base + "ttft_s"), b.ttft(), 1e-12) << b.request.id;
    EXPECT_NEAR(gauge(base + "compute_s"), b.compute_seconds, 1e-12) << b.request.id;
  }
}

TEST(ServingEngineTest, DegradeLadderSteersAgainstProjectedSlo) {
  // The projection says full quality blows the SLO at every rung, so first
  // service walks the ladder to the bottom and the completion records it.
  EngineOptions opts = small_engine();
  opts.slo_ttft_seconds = 0.5;
  opts.projected_prefill_seconds = [](Index prompt_tokens, double density_scale) {
    return density_scale * static_cast<double>(prompt_tokens);  // 64 tokens -> 64 s
  };
  std::vector<ServingRequest> trace = {{"g0", 64, 0.0}, {"g1", 128, 0.0}};
  ServingEngine engine(opts);
  const EngineResult res = engine.run_trace(trace);

  ASSERT_EQ(res.completed.size(), 2u);
  EXPECT_EQ(res.degraded, 2);
  const int bottom = static_cast<int>(opts.degrade_density_scale.size()) - 1;
  for (const EngineCompletion& c : res.completed) EXPECT_EQ(c.base.degrade_level, bottom);
  ASSERT_EQ(res.served_per_level.size(), opts.degrade_density_scale.size());
  EXPECT_EQ(res.served_per_level[static_cast<std::size_t>(bottom)], 2);
}

TEST_F(EngineObs, FaultedChunksRetryWithBackoffBilledToGuard) {
  EngineOptions opts = small_engine();
  opts.decode_tokens = 0;
  opts.fault = {FaultClass::kTensorNaN, 1.0, 0x7ull, /*max_fires=*/2};
  opts.max_retries = 3;
  opts.retry_backoff_seconds = 0.005;
  ServingEngine engine(opts);
  std::vector<ServingRequest> trace = {{"f0", 128, 0.0}};
  const EngineResult res = engine.run_trace(trace);

  ASSERT_EQ(res.completed.size(), 1u);
  EXPECT_EQ(res.retries, 2);
  const CompletedRequest& c = res.completed[0].base;
  EXPECT_EQ(c.attempts, 3);
  // Two lost chunk attempts plus two backoff gates (5 ms + 10 ms).
  EXPECT_GE(c.guard_seconds, 0.015);
  EXPECT_NEAR(c.queue_seconds + c.compute_seconds + c.guard_seconds, c.ttft(), 1e-9);
  EXPECT_GE(c.queue_seconds, -1e-6);
  EXPECT_GE(counter_value("sched.request_retries"), 2.0);
}

TEST(ServingEngineTest, RetryExhaustionShedsTheRequest) {
  EngineOptions opts = small_engine();
  opts.decode_tokens = 0;
  opts.fault = {FaultClass::kTensorNaN, 1.0, 0x7ull, /*max_fires=*/-1};
  opts.max_retries = 1;
  opts.retry_backoff_seconds = 0.001;
  ServingEngine engine(opts);
  std::vector<ServingRequest> trace = {{"x0", 64, 0.0}};
  const EngineResult res = engine.run_trace(trace);

  EXPECT_TRUE(res.completed.empty());
  ASSERT_EQ(res.shed.size(), 1u);
  EXPECT_EQ(res.shed[0].reason, "retries_exhausted");
}

TEST(ServingEngineTest, AdmissionAndOversizedSheddingAtTheDoor) {
  EngineOptions opts = small_engine();
  opts.max_prompt_tokens = 256;
  opts.max_queue_depth = 2;
  ServingEngine engine(opts);
  engine.start();
  ASSERT_TRUE(engine.submit({"big", 4096, 0.0}).ok());  // oversized
  ASSERT_TRUE(engine.submit({"a", 64, 0.0}).ok());
  ASSERT_TRUE(engine.submit({"b", 64, 0.0}).ok());
  const EngineResult res = engine.finish();

  bool saw_oversized = false;
  for (const ShedRequest& s : res.shed) {
    if (s.request.id == "big") {
      saw_oversized = true;
      EXPECT_EQ(s.reason, "oversized");
    }
  }
  EXPECT_TRUE(saw_oversized);
  EXPECT_EQ(res.completed.size() + res.shed.size(), 3u);
}

TEST_F(EngineObs, SampleModeEscalationLadderFallsBackToDenseOnPlanFaults) {
  // Every plan the engine produces is corrupted (stripes emptied), so
  // validation rejects rung after rung — resample, widen — until the dense
  // fallback serves the chunk. Rejected attempts bill to guard.
  EngineOptions opts = small_engine();
  opts.mode = EngineMode::kSampleAttention;
  opts.chunk_tokens = 256;
  opts.decode_tokens = 0;
  auto injector = std::make_shared<FaultInjector>(
      FaultSpec{FaultClass::kPlanEmptyStripes, 1.0, 0x9ull, /*max_fires=*/-1});
  opts.guard.plan_hook = [injector](SamplePlan& plan) { injector->corrupt_plan(plan); };
  ServingEngine engine(opts);
  std::vector<ServingRequest> trace = {{"s0", 256, 0.0}};
  const EngineResult res = engine.run_trace(trace);

  ASSERT_EQ(res.completed.size(), 1u);
  const CompletedRequest& c = res.completed[0].base;
  EXPECT_GT(c.guard_seconds, 0.0);  // rejected plan attempts
  EXPECT_NEAR(c.queue_seconds + c.compute_seconds + c.guard_seconds, c.ttft(), 1e-9);
  EXPECT_GE(counter_value("engine.plan_rejects"), 2.0);
  EXPECT_GE(counter_value("engine.dense_fallbacks"), 1.0);
}

TEST(ServingEngineTest, SubmitAfterCloseIsRejectedWithoutATerminalState) {
  ServingEngine engine(small_engine());
  engine.start();
  ASSERT_TRUE(engine.submit({"early", 64, 0.0}).ok());
  engine.close();
  const Status late = engine.submit({"late", 64, 0.0});
  EXPECT_EQ(late.code(), StatusCode::kFailedPrecondition);
  const EngineResult res = engine.finish();

  // The rejected request was never enqueued: it appears in NO terminal list.
  ASSERT_EQ(res.outcomes().size(), 1u);
  EXPECT_EQ(res.outcomes()[0].first, "early");
  EXPECT_EQ(res.outcomes()[0].second, TerminalState::kCompleted);
}

TEST(ServingEngineTest, FinishIsIdempotentAndHandlesZeroRequests) {
  ServingEngine engine(small_engine());
  engine.start();
  const EngineResult first = engine.finish();
  EXPECT_TRUE(first.completed.empty());
  EXPECT_TRUE(first.shed.empty());
  EXPECT_TRUE(first.cancelled.empty());
  // Every later finish() — bounded or not — returns the same (empty) result
  // without touching the already-joined loop.
  const EngineResult again = engine.finish(/*drain_deadline_seconds=*/0.0);
  EXPECT_TRUE(again.completed.empty() && again.shed.empty() && again.cancelled.empty());
}

TEST(ServingEngineTest, WarmPrefixAttachSkipsPrefillComputeAndCutsTtft) {
  // Two engines share one page arena. The cold run publishes its prefill
  // pages into the prefix index; the warm run — same content segments —
  // attaches them at admission and skips the covered chunks entirely, so
  // its measured compute is a fraction of the cold run's.
  EngineOptions opts = small_engine();
  opts.chunk_tokens = 128;
  opts.decode_tokens = 2;
  opts.kv_arena = std::make_shared<KvPageArena>(opts.head_dim, opts.kv_page_tokens);
  const std::vector<ContentSegment> sys = {{"sys", 1024}};

  ServingEngine cold(opts);
  const std::vector<ServingRequest> cold_trace = {{"cold", 1024, 0.0, sys}};
  const EngineResult cres = cold.run_trace(cold_trace);
  ASSERT_EQ(cres.completed.size(), 1u);
  EXPECT_EQ(cres.kv_prefix_hits, 0);
  EXPECT_GT(opts.kv_arena->prefix_entries(), 0);

  ServingEngine warm(opts);
  const std::vector<ServingRequest> warm_trace = {{"warm", 1024, 0.0, sys}};
  const EngineResult wres = warm.run_trace(warm_trace);
  ASSERT_EQ(wres.completed.size(), 1u);
  EXPECT_EQ(wres.kv_prefix_hits, 1);
  // Attach is capped at prompt-1 so one real chunk still runs: 15 of the
  // 16 pages (960 of 1024 tokens) come from the index.
  EXPECT_EQ(wres.kv_prefix_hit_tokens, 960);
  EXPECT_EQ(wres.completed[0].prefix_hit_tokens, 960);
  // The warm run computed 64 of 1024 prefill tokens — even with timer
  // noise its measured compute slice must come in under the cold run's.
  EXPECT_LT(wres.completed[0].base.compute_seconds,
            cres.completed[0].base.compute_seconds);
  // The decode outputs must match: attached pages hold the same K/V the
  // cold run computed, and decode content is id-independent of the prompt.
  // (Different request ids → different decode queries, so compare the
  // prefill outputs instead: both requests share all 1024 prompt rows.)
  // TTFT attribution still partitions exactly.
  const CompletedRequest& w = wres.completed[0].base;
  EXPECT_NEAR(w.queue_seconds + w.compute_seconds + w.guard_seconds, w.ttft(), 1e-9);

  // After both engines are gone, only the index holds pages — shared bytes
  // were never double-counted and nothing leaked.
  EXPECT_EQ(opts.kv_arena->pages_live(), opts.kv_arena->prefix_entries());
  EXPECT_EQ(opts.kv_arena->pages_allocated() - opts.kv_arena->pages_freed(),
            opts.kv_arena->pages_live());
}

TEST(ServingEngineTest, SparseResidencyRetainsFewerPagesThanDense) {
  // Sample mode with kv_sparse_residency: after prefill the engine drops
  // whole pages no stripe or window slot touches, so the resident page
  // count lands below the dense full-page count and tracks the plan's
  // retained fraction.
  EngineOptions opts = small_engine();
  opts.mode = EngineMode::kSampleAttention;
  opts.chunk_tokens = 1024;
  opts.decode_tokens = 2;
  opts.kv_sparse_residency = true;
  opts.kv_prefix_cache = false;  // published pages would pin the index
  ServingEngine engine(opts);
  const std::vector<ServingRequest> trace = {{"sr0", 1024, 0.0}};
  const EngineResult res = engine.run_trace(trace);

  ASSERT_EQ(res.completed.size(), 1u);
  EXPECT_GT(res.kv_pages_full, 0);
  EXPECT_LT(res.kv_pages_resident, res.kv_pages_full);
  EXPECT_GT(res.kv_residency_evictions, 0);
  const double page_ratio = static_cast<double>(res.kv_pages_resident) /
                            static_cast<double>(res.kv_pages_full);
  EXPECT_GT(page_ratio, 0.0);
  EXPECT_LT(page_ratio, 1.0);
}

TEST(ServingEngineTest, SampleModeServesCleanPlansWithoutEscalation) {
  EngineOptions opts = small_engine();
  opts.mode = EngineMode::kSampleAttention;
  opts.chunk_tokens = 256;
  ServingEngine engine(opts);
  std::vector<ServingRequest> trace = {{"c0", 256, 0.0}};
  const EngineResult res = engine.run_trace(trace);

  ASSERT_EQ(res.completed.size(), 1u);
  const EngineCompletion& c = res.completed[0];
  EXPECT_GT(c.base.compute_seconds, 0.0);
  EXPECT_EQ(c.decoded_tokens, opts.decode_tokens);
}

}  // namespace
}  // namespace sattn
