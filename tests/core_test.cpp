// Unit tests for the core substrate: Matrix, Rng, ThreadPool.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <set>

#include "core/rng.h"
#include "core/tensor.h"
#include "core/thread_pool.h"

namespace sattn {
namespace {

TEST(Matrix, ConstructsWithFill) {
  Matrix m(3, 4, 2.5f);
  EXPECT_EQ(m.rows(), 3);
  EXPECT_EQ(m.cols(), 4);
  EXPECT_EQ(m.size(), 12);
  for (Index i = 0; i < 3; ++i)
    for (Index j = 0; j < 4; ++j) EXPECT_FLOAT_EQ(m(i, j), 2.5f);
}

TEST(Matrix, DefaultIsEmpty) {
  Matrix m;
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.rows(), 0);
  EXPECT_EQ(m.size(), 0);
}

TEST(Matrix, RowViewAliasesStorage) {
  Matrix m(2, 3);
  auto r1 = m.row(1);
  r1[2] = 7.0f;
  EXPECT_FLOAT_EQ(m(1, 2), 7.0f);
  EXPECT_EQ(m.row(0).size(), 3u);
}

TEST(Matrix, ResizeReplacesContents) {
  Matrix m(2, 2, 1.0f);
  m.resize(4, 5, -1.0f);
  EXPECT_EQ(m.rows(), 4);
  EXPECT_EQ(m.cols(), 5);
  EXPECT_FLOAT_EQ(m(3, 4), -1.0f);
}

TEST(Matrix, RowMajorLayout) {
  Matrix m(2, 3);
  for (Index i = 0; i < 2; ++i)
    for (Index j = 0; j < 3; ++j) m(i, j) = static_cast<float>(i * 3 + j);
  auto f = m.flat();
  for (std::size_t t = 0; t < 6; ++t) EXPECT_FLOAT_EQ(f[t], static_cast<float>(t));
}

TEST(Dot, MatchesManualComputation) {
  std::vector<float> a = {1.0f, 2.0f, 3.0f};
  std::vector<float> b = {4.0f, -5.0f, 6.0f};
  EXPECT_FLOAT_EQ(dot(a, b), 4.0f - 10.0f + 18.0f);
}

TEST(Axpy, AccumulatesScaled) {
  std::vector<float> x = {1.0f, 2.0f};
  std::vector<float> y = {10.0f, 20.0f};
  axpy(0.5f, x, y);
  EXPECT_FLOAT_EQ(y[0], 10.5f);
  EXPECT_FLOAT_EQ(y[1], 21.0f);
}

TEST(MatmulNT, SmallExample) {
  Matrix a(2, 2), b(3, 2), c(2, 3);
  a(0, 0) = 1; a(0, 1) = 2; a(1, 0) = 3; a(1, 1) = 4;
  for (Index j = 0; j < 3; ++j) { b(j, 0) = static_cast<float>(j); b(j, 1) = 1.0f; }
  matmul_nt(a, b, c);
  // c[i][j] = a_i . b_j
  EXPECT_FLOAT_EQ(c(0, 0), 2.0f);
  EXPECT_FLOAT_EQ(c(0, 2), 4.0f);
  EXPECT_FLOAT_EQ(c(1, 1), 7.0f);
}

TEST(MaxAbsDiff, DetectsLargestDeviation) {
  Matrix a(2, 2, 0.0f), b(2, 2, 0.0f);
  b(1, 0) = 0.25f;
  EXPECT_FLOAT_EQ(max_abs_diff(a, b), 0.25f);
  EXPECT_NEAR(mean_abs_diff(a, b), 0.0625f, 1e-7f);
}

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.next_u64() == b.next_u64());
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformIndexCoversRange) {
  Rng rng(9);
  std::set<Index> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.uniform_index(10));
  EXPECT_EQ(seen.size(), 10u);
  EXPECT_EQ(*seen.begin(), 0);
  EXPECT_EQ(*seen.rbegin(), 9);
}

TEST(Rng, NormalHasApproxUnitMoments) {
  Rng rng(11);
  double sum = 0.0, sum2 = 0.0;
  constexpr int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sum2 += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sum2 / n, 1.0, 0.05);
}

TEST(Rng, SampleWithoutReplacementIsDistinctAndInRange) {
  Rng rng(13);
  for (Index k : {0, 1, 5, 20}) {
    auto s = rng.sample_without_replacement(20, k);
    std::set<Index> uniq(s.begin(), s.end());
    EXPECT_EQ(static_cast<Index>(uniq.size()), k);
    for (Index v : s) {
      EXPECT_GE(v, 0);
      EXPECT_LT(v, 20);
    }
  }
}

TEST(Rng, ForkedStreamsAreIndependentAndDeterministic) {
  Rng base(99);
  Rng f1 = base.fork(1);
  Rng f2 = base.fork(2);
  Rng f1b = Rng(99).fork(1);
  EXPECT_EQ(f1.next_u64(), f1b.next_u64());
  EXPECT_NE(f1.next_u64(), f2.next_u64());
}

TEST(Rng, FillNormalScalesByStddev) {
  Rng rng(21);
  Matrix m(100, 100);
  rng.fill_normal(m, 2.0f);
  double sum2 = 0.0;
  for (float v : m.flat()) sum2 += static_cast<double>(v) * v;
  EXPECT_NEAR(sum2 / static_cast<double>(m.size()), 4.0, 0.2);
}

TEST(ThreadPool, ParallelForCoversAllIndices) {
  std::vector<std::atomic<int>> hits(257);
  parallel_for(257, [&](Index i) { hits[static_cast<std::size_t>(i)].fetch_add(1); });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ZeroIterationsIsNoop) {
  bool called = false;
  parallel_for(0, [&](Index) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPool, ExplicitPoolRuns) {
  ThreadPool pool(2);
  std::atomic<Index> sum{0};
  pool.parallel_for(100, [&](Index i) { sum.fetch_add(i); });
  EXPECT_EQ(sum.load(), 4950);
}

}  // namespace
}  // namespace sattn
