// Unit tests for softmax / top-k / searchsorted / prefix-sum primitives.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "core/numerics.h"

namespace sattn {
namespace {

TEST(Softmax, SumsToOne) {
  std::vector<float> x = {0.1f, 2.0f, -1.0f, 0.5f};
  softmax_inplace(x);
  double s = 0.0;
  for (float v : x) s += v;
  EXPECT_NEAR(s, 1.0, 1e-6);
}

TEST(Softmax, IsStableForLargeLogits) {
  std::vector<float> x = {1000.0f, 1000.0f, 999.0f};
  softmax_inplace(x);
  EXPECT_FALSE(std::isnan(x[0]));
  EXPECT_NEAR(x[0], x[1], 1e-6f);
  EXPECT_GT(x[0], x[2]);
}

TEST(Softmax, UniformLogitsGiveUniformProbs) {
  std::vector<float> x(10, 3.0f);
  softmax_inplace(x);
  for (float v : x) EXPECT_NEAR(v, 0.1f, 1e-6f);
}

TEST(Softmax, ReturnsLogSumExp) {
  std::vector<float> x = {0.0f, 0.0f};
  const double lse = softmax_inplace(x);
  EXPECT_NEAR(lse, std::log(2.0), 1e-6);
}

TEST(SoftmaxPrefix, ZeroesTail) {
  std::vector<float> x = {1.0f, 2.0f, 100.0f, 100.0f};
  softmax_prefix_inplace(x, 2);
  EXPECT_FLOAT_EQ(x[2], 0.0f);
  EXPECT_FLOAT_EQ(x[3], 0.0f);
  EXPECT_NEAR(x[0] + x[1], 1.0, 1e-6);
  EXPECT_GT(x[1], x[0]);
}

TEST(SoftmaxPrefix, EmptyPrefixIsAllZero) {
  std::vector<float> x = {1.0f, 2.0f};
  const double lse = softmax_prefix_inplace(x, 0);
  EXPECT_FLOAT_EQ(x[0], 0.0f);
  EXPECT_FLOAT_EQ(x[1], 0.0f);
  EXPECT_TRUE(std::isinf(lse));
}

TEST(TopK, ReturnsLargestInOrder) {
  std::vector<float> x = {0.5f, 3.0f, -1.0f, 2.0f, 2.5f};
  auto idx = topk_indices(x, 3);
  ASSERT_EQ(idx.size(), 3u);
  EXPECT_EQ(idx[0], 1);
  EXPECT_EQ(idx[1], 4);
  EXPECT_EQ(idx[2], 3);
}

TEST(TopK, ClampsK) {
  std::vector<float> x = {1.0f, 2.0f};
  EXPECT_EQ(topk_indices(x, 100).size(), 2u);
  EXPECT_TRUE(topk_indices(x, 0).empty());
}

TEST(TopK, TieBreaksByLowerIndex) {
  std::vector<float> x = {2.0f, 2.0f, 2.0f};
  auto idx = topk_indices(x, 2);
  EXPECT_EQ(idx[0], 0);
  EXPECT_EQ(idx[1], 1);
}

TEST(ArgsortDesc, SortsDescending) {
  std::vector<float> x = {1.0f, 5.0f, 3.0f};
  auto idx = argsort_desc(x);
  ASSERT_EQ(idx.size(), 3u);
  EXPECT_EQ(idx[0], 1);
  EXPECT_EQ(idx[1], 2);
  EXPECT_EQ(idx[2], 0);
}

TEST(PrefixSum, Accumulates) {
  std::vector<float> x = {1.0f, 2.0f, 3.0f};
  auto p = prefix_sum(x);
  EXPECT_DOUBLE_EQ(p[0], 1.0);
  EXPECT_DOUBLE_EQ(p[1], 3.0);
  EXPECT_DOUBLE_EQ(p[2], 6.0);
}

TEST(SearchSorted, FindsLowerBound) {
  std::vector<double> a = {0.1, 0.4, 0.7, 1.0};
  EXPECT_EQ(searchsorted(a, 0.05), 0);
  EXPECT_EQ(searchsorted(a, 0.4), 1);
  EXPECT_EQ(searchsorted(a, 0.5), 2);
  EXPECT_EQ(searchsorted(a, 2.0), 4);
}

TEST(Dsum, DoublePrecisionAccumulation) {
  std::vector<float> x(1000, 0.1f);
  EXPECT_NEAR(dsum(x), 100.0, 0.01);
}

// Property sweep: softmax output is a probability distribution for random
// logit vectors of varying sizes.
class SoftmaxProperty : public ::testing::TestWithParam<int> {};

TEST_P(SoftmaxProperty, ProducesDistribution) {
  const int n = GetParam();
  std::vector<float> x(static_cast<std::size_t>(n));
  unsigned seed = 12345u + static_cast<unsigned>(n);
  for (float& v : x) {
    seed = seed * 1664525u + 1013904223u;
    v = static_cast<float>(static_cast<double>(seed) / 4294967296.0 * 20.0 - 10.0);
  }
  softmax_inplace(x);
  double s = 0.0;
  for (float v : x) {
    EXPECT_GE(v, 0.0f);
    EXPECT_LE(v, 1.0f);
    s += v;
  }
  EXPECT_NEAR(s, 1.0, 1e-5);
}

INSTANTIATE_TEST_SUITE_P(Sizes, SoftmaxProperty, ::testing::Values(1, 2, 3, 17, 100, 1024, 4096));

}  // namespace
}  // namespace sattn
