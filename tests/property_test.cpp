// Library-wide property tests, parameterized over seeds and shapes:
// invariants that must hold for any input, not just hand-picked cases.
#include <gtest/gtest.h>

#include <cmath>

#include "attention/full_attention.h"
#include "attention/score_utils.h"
#include "attention/sparse_flash_attention.h"
#include "core/rng.h"
#include "metrics/cra.h"
#include "metrics/recovery.h"
#include "metrics/sparsity.h"
#include "model/workload.h"
#include "sample_attention/sample_attention.h"

namespace sattn {
namespace {

AttentionInput random_input(Index s, Index d, std::uint64_t seed) {
  AttentionInput in;
  in.q.resize(s, d);
  in.k.resize(s, d);
  in.v.resize(s, d);
  Rng rng(seed);
  rng.fill_normal(in.q);
  rng.fill_normal(in.k);
  rng.fill_normal(in.v);
  return in;
}

struct Shape {
  Index s;
  Index d;
};

class AttentionInvariants : public ::testing::TestWithParam<Shape> {};

// Attention output rows are convex combinations of value rows: each output
// coordinate lies within [min_j V_jt, max_j V_jt] over the causal prefix.
TEST_P(AttentionInvariants, OutputIsConvexCombinationOfValues) {
  const auto [s, d] = GetParam();
  AttentionInput in = random_input(s, d, 11);
  Matrix out;
  full_attention(in, out);
  for (Index i = 0; i < s; ++i) {
    for (Index t = 0; t < d; ++t) {
      float lo = in.v(0, t), hi = in.v(0, t);
      for (Index j = 1; j <= i; ++j) {
        lo = std::min(lo, in.v(j, t));
        hi = std::max(hi, in.v(j, t));
      }
      EXPECT_GE(out(i, t), lo - 1e-4f);
      EXPECT_LE(out(i, t), hi + 1e-4f);
    }
  }
}

// Permutation equivariance in V: scaling V scales O linearly.
TEST_P(AttentionInvariants, LinearInValues) {
  const auto [s, d] = GetParam();
  AttentionInput in = random_input(s, d, 12);
  Matrix out1;
  full_attention(in, out1);
  for (float& v : in.v.flat()) v *= 2.5f;
  Matrix out2;
  full_attention(in, out2);
  for (Index i = 0; i < s; ++i)
    for (Index t = 0; t < d; ++t) EXPECT_NEAR(out2(i, t), 2.5f * out1(i, t), 5e-4f);
}

// Softmax shift invariance: adding a constant vector to all keys shifts all
// logits of a row equally (through the query dot product)... only when the
// query is fixed; instead test: duplicating a key's logit scale by adding
// the same constant to every LOGIT leaves attention unchanged. We emulate
// by appending a shared direction to queries only — scores shift per-row
// uniformly, so P is invariant.
TEST_P(AttentionInvariants, RowUniformLogitShiftInvariance) {
  const auto [s, d] = GetParam();
  AttentionInput in = random_input(s, d, 13);
  // All keys get +c in a direction orthogonalized against nothing: adding
  // the SAME vector u to every key shifts row i's logits by q_i . u / sqrt(d)
  // — constant within the row => softmax unchanged.
  Matrix out1;
  full_attention(in, out1);
  Rng rng(99);
  std::vector<float> u(static_cast<std::size_t>(d));
  for (float& x : u) x = static_cast<float>(rng.normal());
  for (Index j = 0; j < s; ++j) {
    auto k = in.k.row(j);
    for (Index t = 0; t < d; ++t) k[static_cast<std::size_t>(t)] += u[static_cast<std::size_t>(t)];
  }
  Matrix out2;
  full_attention(in, out2);
  EXPECT_LT(max_abs_diff(out1, out2), 1e-3f);
}

INSTANTIATE_TEST_SUITE_P(Shapes, AttentionInvariants,
                         ::testing::Values(Shape{8, 4}, Shape{33, 8}, Shape{64, 16},
                                           Shape{100, 8}));

class PlanInvariants : public ::testing::TestWithParam<int> {};

// For any structured input: plan density in (0, 1], overhead ~ r_row,
// sparse output finite, CRA in [0, 1], SD in [0, 1).
TEST_P(PlanInvariants, PlanAndMetricsWellFormed) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  const ModelConfig model = chatglm2_6b();
  const Index s = 256 + static_cast<Index>(seed % 3) * 128;
  const Index layer = static_cast<Index>(seed % 28);
  const Index head = static_cast<Index>((seed * 13) % 32);
  const AttentionInput in = generate_attention(model, plain_prompt(seed, s), layer, head);

  SampleAttentionConfig cfg;
  Matrix out;
  SamplePlan plan;
  sample_attention(in, cfg, out, &plan);

  EXPECT_GT(plan.density, 0.0);
  EXPECT_LE(plan.density, 1.0);
  EXPECT_NEAR(plan.overhead_fraction, cfg.row_ratio, 0.06);
  for (float v : out.flat()) EXPECT_TRUE(std::isfinite(v));

  const auto rows = stride_rows(s, 0.1);
  const double c = cra(in, plan.mask, rows);
  EXPECT_GE(c, 0.0);
  EXPECT_LE(c, 1.0);

  const SparsityStats sd = sd_oracle(in, 0.95, rows);
  EXPECT_GE(sd.sd, 0.0);
  EXPECT_LT(sd.sd, 1.0);
}

// Theorem 2 regression: the structured mask's sparse output converges to the
// exact output as the window grows to cover everything.
TEST_P(PlanInvariants, StructuredMaskConvergesToExact) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  AttentionInput in = random_input(96, 8, seed + 500);
  Matrix exact;
  full_attention(in, exact);
  double prev_err = 1e30;
  for (Index w : {8, 32, 96}) {
    StructuredMask mask(96, 96);
    mask.set_window(w);
    Matrix out;
    sparse_flash_attention(in, mask, out);
    const double err = recovery_stats(out, exact).rel_l1;
    EXPECT_LE(err, prev_err + 1e-9);
    prev_err = err;
  }
  EXPECT_NEAR(prev_err, 0.0, 1e-5);
}

// Stage-1 statistic is exact at r_row = 1.
TEST_P(PlanInvariants, FullSamplingMatchesExactColumnSums) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  AttentionInput in = random_input(64, 8, seed + 900);
  const SampleStats st = sample_column_weights(in, 1.0);
  const auto exact_rows = all_rows(64);
  const auto exact = column_score_sum(in, exact_rows);
  ASSERT_EQ(st.column_weight.size(), exact.size());
  for (std::size_t j = 0; j < exact.size(); ++j) {
    EXPECT_NEAR(st.column_weight[j], exact[j], 1e-4f);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PlanInvariants, ::testing::Range(0, 8));

}  // namespace
}  // namespace sattn
