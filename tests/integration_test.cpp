// Cross-module integration tests: the full SampleAttention story end to end
// on the model substrate — plan quality vs the SD oracle, near-lossless
// task accuracy vs baselines, tuner-driven configuration, and the
// density -> cost-model pipeline the benches use.
#include <gtest/gtest.h>

#include "attention/full_attention.h"
#include "attention/score_utils.h"
#include "baselines/bigbird.h"
#include "baselines/streaming_llm.h"
#include "metrics/cra.h"
#include "metrics/recovery.h"
#include "metrics/sparsity.h"
#include "perf/cost_model.h"
#include "sample_attention/sample_attention.h"
#include "sample_attention/tuner.h"
#include "tasks/longbench.h"
#include "tasks/needle.h"

namespace sattn {
namespace {

TEST(Integration, PlannedDensityTracksOracleSparsity) {
  // SampleAttention's kept density should be within a small factor of the
  // oracle kept fraction (it cannot beat the oracle by much — the oracle is
  // per-row optimal; and it should not be wildly above it either).
  const ModelConfig model = chatglm2_6b();
  const AttentionInput in = generate_attention(model, plain_prompt(21, 1024), 8, 3);
  const auto rows = stride_rows(1024, 0.05);
  const SparsityStats oracle = sd_oracle(in, 0.95, rows);
  const SamplePlan plan = plan_sample_attention(in, SampleAttentionConfig{});
  EXPECT_LT(plan.density, 5.0 * oracle.kept_fraction + 0.10);
}

TEST(Integration, NearLosslessAcrossHeadKinds) {
  // On every kind of head, the output must stay close to full attention.
  const ModelConfig model = chatglm2_6b();
  const ContentSpec content = plain_prompt(22, 768);
  for (auto [layer, head] : {std::pair<Index, Index>{0, 0}, {8, 3}, {14, 9}, {27, 31}}) {
    const AttentionInput in = generate_attention(model, content, layer, head);
    Matrix exact, approx;
    full_attention(in, exact);
    sample_attention(in, SampleAttentionConfig{}, approx);
    const double err = recovery_stats(approx, exact).rel_l1;
    EXPECT_LT(err, 0.12) << "layer " << layer << " head " << head;
  }
}

TEST(Integration, SampleAttentionBeatsStreamingOnSynthetic) {
  const ModelConfig model = chatglm2_6b();
  LongBenchConfig cfg;
  cfg.lengths = {384};
  cfg.instances_per_family_per_length = 2;
  const auto synthetic = make_longbench_family("synthetic", cfg);
  EvalOptions opts;
  const double sample = evaluate_suite(model, SampleAttention{}, synthetic, opts);
  const double streaming = evaluate_suite(model, StreamingLLM{}, synthetic, opts);
  const double full = evaluate_suite(model, FullAttention{}, synthetic, opts);
  EXPECT_GE(sample, 0.99 * full);
  EXPECT_LT(streaming, 0.6 * std::max(full, 0.01));
}

TEST(Integration, TunedConfigIsNearLosslessOnHeldOutTask) {
  const ModelConfig model = chatglm2_6b();
  const auto requests = profiling_set(256, 512, 4);
  const auto inputs = profiling_inputs(model, requests, 8, 3);
  TunerOptions opts;
  opts.alphas = {0.80, 0.95};
  opts.row_ratios = {0.05};
  opts.window_ratios = {0.08};
  const TunerReport report = tune_hyperparameters(inputs, opts);

  const TaskInstance needle = make_needle_instance(384, 0.45, 77);
  const double full = evaluate_instance(model, FullAttention{}, needle);
  const double tuned = evaluate_instance(model, SampleAttention{report.best}, needle);
  EXPECT_GE(tuned, 0.99 * full);
}

TEST(Integration, DensityFeedsCostModelSpeedup) {
  // The whole Fig 5 pipeline: measure density on the substrate, feed the
  // cost model, expect a speedup over FlashAttention2 at long lengths.
  const ModelConfig model = chatglm2_6b();
  const Index s_measured = 2048;
  const AttentionInput in = generate_attention(model, plain_prompt(23, s_measured), 8, 3);
  const SamplePlan plan = plan_sample_attention(in, SampleAttentionConfig{});

  const GpuSpec gpu = a100_single();
  const Index s_target = 96 * 1024;
  const double kept = extrapolate_kept_fraction(plan.density, s_measured, s_target);
  const double flash = flash_attention_seconds(model, s_target, gpu);
  const SampleAttentionCost c =
      sample_attention_seconds(model, s_target, gpu, kept, plan.overhead_fraction);
  const double speedup = flash / c.total_seconds;
  EXPECT_GT(speedup, 1.3) << "kept=" << kept;
  EXPECT_LT(speedup, 12.0);
}

TEST(Integration, CraImprovesWithAlphaOnRealPlans) {
  const ModelConfig model = chatglm2_6b();
  const AttentionInput in = generate_attention(model, plain_prompt(24, 768), 12, 5);
  const auto rows = stride_rows(768, 0.08);
  double prev = -1.0;
  for (double alpha : {0.80, 0.95}) {
    SampleAttentionConfig cfg;
    cfg.alpha = alpha;
    const SamplePlan plan = plan_sample_attention(in, cfg);
    const double c = cra(in, plan.mask, rows);
    EXPECT_GE(c, prev - 0.02) << "alpha=" << alpha;
    prev = c;
  }
}

TEST(Integration, BigBirdDensityComparableButLessAccurate) {
  // At similar density, content-aware selection (SampleAttention) must be
  // more accurate than static selection (BigBird) on structured content.
  const ModelConfig model = chatglm2_6b();
  const AttentionInput in = generate_attention(model, plain_prompt(25, 768), 8, 3);
  Matrix exact;
  full_attention(in, exact);

  const AttentionResult sample = SampleAttention{}.run(in);
  const AttentionResult bigbird = BigBird{}.run(in);
  const double err_sample = recovery_stats(sample.out, exact).rel_l1;
  const double err_bigbird = recovery_stats(bigbird.out, exact).rel_l1;
  EXPECT_LT(err_sample, err_bigbird);
}

TEST(Integration, BothModelPresetsWorkEndToEnd) {
  for (const ModelConfig& model : {chatglm2_6b(), internlm2_7b()}) {
    const AttentionInput in = generate_attention(model, plain_prompt(26, 512), 8, 3);
    Matrix exact, approx;
    full_attention(in, exact);
    SamplePlan plan;
    sample_attention(in, SampleAttentionConfig{}, approx, &plan);
    EXPECT_LT(recovery_stats(approx, exact).rel_l1, 0.1) << model.name;
    EXPECT_LT(plan.density, 0.8) << model.name;
  }
}

}  // namespace
}  // namespace sattn
