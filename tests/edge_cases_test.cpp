// Edge cases and stress inputs across the whole API surface: degenerate
// shapes, decode-like Sq=1 inputs, extreme hyperparameters, and adversarial
// numeric inputs (huge logits, identical keys). The library's contract is:
// no NaNs/Infs out for finite inputs, and graceful behavior at boundaries.
#include <gtest/gtest.h>

#include <cmath>

#include "attention/block_sparse.h"
#include "attention/flash_attention.h"
#include "attention/full_attention.h"
#include "attention/sparse_flash_attention.h"
#include "baselines/bigbird.h"
#include "baselines/hash_sparse.h"
#include "baselines/hyper_attention.h"
#include "baselines/streaming_llm.h"
#include "core/rng.h"
#include "model/workload.h"
#include "sample_attention/sample_attention.h"

namespace sattn {
namespace {

AttentionInput random_input(Index sq, Index sk, Index d, std::uint64_t seed) {
  AttentionInput in;
  in.q.resize(sq, d);
  in.k.resize(sk, d);
  in.v.resize(sk, d);
  Rng rng(seed);
  rng.fill_normal(in.q);
  rng.fill_normal(in.k);
  rng.fill_normal(in.v);
  return in;
}

void expect_all_finite(const Matrix& m, const char* what) {
  for (float v : m.flat()) ASSERT_TRUE(std::isfinite(v)) << what;
}

TEST(EdgeCases, DecodeShapeSqOne) {
  // Sq=1 against a long prefix — the decode shape — through every method.
  AttentionInput in = random_input(1, 128, 16, 1);
  const FullAttention full;
  const FlashAttention flash;
  const SampleAttention sample;
  const BigBird bigbird;
  const StreamingLLM streaming;
  const HyperAttention hyper;
  const HashSparse hash;
  for (const AttentionMethod* m : std::initializer_list<const AttentionMethod*>{
           &full, &flash, &sample, &bigbird, &streaming, &hyper, &hash}) {
    const AttentionResult res = m->run(in);
    ASSERT_EQ(res.out.rows(), 1) << m->name();
    expect_all_finite(res.out, m->name().c_str());
  }
}

TEST(EdgeCases, SequenceLengthOne) {
  AttentionInput in = random_input(1, 1, 8, 2);
  Matrix out;
  sample_attention(in, SampleAttentionConfig{}, out);
  for (Index t = 0; t < 8; ++t) EXPECT_FLOAT_EQ(out(0, t), in.v(0, t));
}

TEST(EdgeCases, SequenceLengthTwoAllMethods) {
  AttentionInput in = random_input(2, 2, 4, 3);
  for (double alpha : {0.5, 0.95, 1.0}) {
    SampleAttentionConfig cfg;
    cfg.alpha = alpha;
    Matrix out;
    sample_attention(in, cfg, out);
    expect_all_finite(out, "tiny sample attention");
  }
}

TEST(EdgeCases, HugeLogitsDoNotOverflow) {
  AttentionInput in = random_input(16, 16, 8, 4);
  for (float& v : in.q.flat()) v *= 1000.0f;
  for (float& v : in.k.flat()) v *= 1000.0f;
  Matrix dense, flash_out;
  full_attention(in, dense);
  flash_attention(in, flash_out);
  expect_all_finite(dense, "full with huge logits");
  expect_all_finite(flash_out, "flash with huge logits");
  EXPECT_LT(max_abs_diff(dense, flash_out), 1e-3f);
}

TEST(EdgeCases, IdenticalKeysEverywhere) {
  // All keys identical: uniform attention; sparse methods renormalize over
  // their subset, producing the same (uniform) value average.
  AttentionInput in;
  in.q.resize(32, 8, 1.0f);
  in.k.resize(32, 8, 1.0f);
  in.v.resize(32, 8);
  Rng rng(5);
  rng.fill_normal(in.v);
  Matrix out;
  sample_attention(in, SampleAttentionConfig{}, out);
  expect_all_finite(out, "identical keys");
}

TEST(EdgeCases, ZeroValuesGiveZeroOutput) {
  AttentionInput in = random_input(16, 16, 4, 6);
  in.v.fill(0.0f);
  Matrix out;
  full_attention(in, out);
  for (float v : out.flat()) EXPECT_FLOAT_EQ(v, 0.0f);
}

TEST(EdgeCases, AlphaOneKeepsMask) {
  const ModelConfig model = chatglm2_6b();
  const AttentionInput in = generate_attention(model, plain_prompt(7, 256), 8, 3);
  SampleAttentionConfig cfg;
  cfg.alpha = 1.0;
  SamplePlan plan;
  Matrix out;
  sample_attention(in, cfg, out, &plan);
  // alpha=1 demands full residual coverage: the filter keeps every column
  // with mass (= the final bucket).
  EXPECT_GT(plan.filter.kv_ratio, 0.9);
  expect_all_finite(out, "alpha=1");
}

TEST(EdgeCases, RowRatioOneIsExactSampling) {
  const ModelConfig model = chatglm2_6b();
  const AttentionInput in = generate_attention(model, plain_prompt(8, 128), 8, 3);
  SampleAttentionConfig cfg;
  cfg.row_ratio = 1.0;
  SamplePlan plan;
  Matrix out;
  sample_attention(in, cfg, out, &plan);
  EXPECT_EQ(static_cast<Index>(plan.stage1.sampled_rows.size()), 128);
  EXPECT_NEAR(plan.overhead_fraction, 1.0, 0.02);
}

TEST(EdgeCases, TinyWindowRatioClampsToOne) {
  const AttentionInput in = random_input(64, 64, 4, 9);
  SampleAttentionConfig cfg;
  cfg.window_ratio = 1e-9;
  SamplePlan plan;
  Matrix out;
  sample_attention(in, cfg, out, &plan);
  EXPECT_EQ(plan.mask.window(), 1);  // always at least the diagonal
  expect_all_finite(out, "tiny window");
}

TEST(EdgeCases, CrossLengthSparsePlansRejected) {
  // plan_sample_attention supports sq == sk (prefill); masks for sq != sk
  // must still behave via the kernel (used by chunked prefill).
  AttentionInput in = random_input(8, 24, 4, 10);
  StructuredMask mask(8, 24);
  mask.set_window(4);
  mask.set_stripe_columns({0, 5});
  Matrix out;
  sparse_flash_attention(in, mask, out);
  expect_all_finite(out, "cross-length sparse");
}

TEST(EdgeCases, BlockLayoutOnEmptyMask) {
  StructuredMask m(64, 64);  // nothing set
  const BlockSparseLayout layout = BlockSparseLayout::from_mask(m, 16);
  EXPECT_EQ(layout.active_tiles(), 0);
  EXPECT_DOUBLE_EQ(layout.density(), 0.0);
}

TEST(EdgeCases, BaselinesAtMinimumLength) {
  AttentionInput in = random_input(4, 4, 8, 11);
  for (const AttentionMethod* m :
       std::initializer_list<const AttentionMethod*>{new BigBird(), new StreamingLLM(),
                                                     new HyperAttention(), new HashSparse()}) {
    const AttentionResult res = m->run(in);
    expect_all_finite(res.out, m->name().c_str());
    delete m;
  }
}

TEST(EdgeCases, NonPowerOfTwoEverything) {
  AttentionInput in = random_input(97, 97, 24, 12);
  Matrix dense, flash_out, sparse;
  full_attention(in, dense);
  flash_attention(in, flash_out, {17, 13});
  EXPECT_LT(max_abs_diff(dense, flash_out), 3e-5f);
  StructuredMask mask(97, 97);
  mask.set_window(11);
  mask.set_stripe_columns({0, 13, 14, 96});
  sparse_flash_attention(in, mask, sparse);
  expect_all_finite(sparse, "odd sizes");
}

}  // namespace
}  // namespace sattn
