// Tests for the offline hyperparameter tuner.
#include <gtest/gtest.h>

#include "model/workload.h"
#include "sample_attention/tuner.h"

namespace sattn {
namespace {

std::vector<AttentionInput> small_profiling_inputs() {
  const ModelConfig model = chatglm2_6b();
  const auto requests = profiling_set(192, 384, 3);
  return profiling_inputs(model, requests, 8, 3);
}

TEST(Tuner, EvaluatesFullGrid) {
  const auto inputs = small_profiling_inputs();
  TunerOptions opts;
  opts.alphas = {0.9, 0.95};
  opts.row_ratios = {0.05};
  opts.window_ratios = {0.08};
  const TunerReport report = tune_hyperparameters(inputs, opts);
  EXPECT_EQ(report.entries.size(), 2u);
}

TEST(Tuner, PicksCheapestFeasible) {
  const auto inputs = small_profiling_inputs();
  TunerOptions opts;
  opts.alphas = {0.80, 0.95};
  opts.row_ratios = {0.05};
  opts.window_ratios = {0.08};
  opts.max_rel_l1 = 0.5;  // everything feasible
  const TunerReport report = tune_hyperparameters(inputs, opts);
  ASSERT_TRUE(report.found_feasible);
  // Lower alpha keeps fewer KVs => cheaper => should win when all feasible.
  EXPECT_DOUBLE_EQ(report.best.alpha, 0.80);
}

TEST(Tuner, InfeasibleFallsBackToMostAccurate) {
  const auto inputs = small_profiling_inputs();
  TunerOptions opts;
  opts.alphas = {0.80, 0.98};
  opts.row_ratios = {0.05};
  opts.window_ratios = {0.08};
  opts.max_rel_l1 = 0.0;  // nothing feasible
  const TunerReport report = tune_hyperparameters(inputs, opts);
  EXPECT_FALSE(report.found_feasible);
  double best_err = 1e30;
  for (const TunerEntry& e : report.entries) best_err = std::min(best_err, e.worst_rel_l1);
  bool matches = false;
  for (const TunerEntry& e : report.entries) {
    if (e.cfg.alpha == report.best.alpha && e.cfg.row_ratio == report.best.row_ratio &&
        e.cfg.window_ratio == report.best.window_ratio) {
      matches = e.worst_rel_l1 == best_err;
    }
  }
  EXPECT_TRUE(matches);
}

TEST(Tuner, CostIncreasesWithAlpha) {
  const auto inputs = small_profiling_inputs();
  TunerOptions opts;
  opts.alphas = {0.80, 0.98};
  opts.row_ratios = {0.05};
  opts.window_ratios = {0.08};
  const TunerReport report = tune_hyperparameters(inputs, opts);
  ASSERT_EQ(report.entries.size(), 2u);
  EXPECT_LE(report.entries[0].mean_cost, report.entries[1].mean_cost + 1e-9);
}

TEST(Tuner, DefaultGridMirrorsPaperTable3) {
  const TunerOptions opts;
  EXPECT_EQ(opts.alphas.size(), 4u);   // 0.80 / 0.90 / 0.95 / 0.98
  EXPECT_EQ(opts.row_ratios.size(), 3u);   // 2% / 5% / 10%
  EXPECT_EQ(opts.window_ratios.size(), 2u);  // 4% / 8%
}

TEST(Tuner, EmptyRequestSetDoesNotCrash) {
  TunerOptions opts;
  opts.alphas = {0.95};
  opts.row_ratios = {0.05};
  opts.window_ratios = {0.08};
  const TunerReport report = tune_hyperparameters({}, opts);
  EXPECT_EQ(report.entries.size(), 1u);
}

}  // namespace
}  // namespace sattn
