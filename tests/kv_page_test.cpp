// Tests for the paged KV arena (runtime/kv_page.h) and the paged KVCache
// (runtime/kv_cache.h): refcount/freelist correctness, page-granular
// eviction, copy-on-write divergence after a shared prefix, counted-once
// byte accounting, the content-hash prefix index, and — the load-bearing
// contract — bit-identical kernel reads through the page table for all
// three ragged-sweep routes plus decode.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <thread>
#include <vector>

#include "attention/block_sparse.h"
#include "attention/flash_attention.h"
#include "attention/sparse_flash_attention.h"
#include "core/rng.h"
#include "runtime/chunked_prefill.h"
#include "runtime/eviction.h"
#include "runtime/kv_cache.h"
#include "runtime/kv_page.h"
#include "sample_attention/sample_attention.h"

namespace sattn {
namespace {

AttentionInput random_input(Index sq, Index sk, Index d, std::uint64_t seed) {
  AttentionInput in;
  in.q.resize(sq, d);
  in.k.resize(sk, d);
  in.v.resize(sk, d);
  Rng rng(seed);
  rng.fill_normal(in.q);
  rng.fill_normal(in.k);
  rng.fill_normal(in.v);
  return in;
}

void expect_bit_identical(const Matrix& a, const Matrix& b, const char* what) {
  ASSERT_EQ(a.rows(), b.rows()) << what;
  ASSERT_EQ(a.cols(), b.cols()) << what;
  for (Index r = 0; r < a.rows(); ++r) {
    ASSERT_EQ(std::memcmp(a.row(r).data(), b.row(r).data(), a.row(r).size() * sizeof(float)), 0)
        << what << " row " << r;
  }
}

// ---------------------------------------------------------------------------
// Arena mechanics.

TEST(KvPageArena, AllocReleaseRefcountAndFreelistReuse) {
  KvPageArena arena(/*head_dim=*/16, /*page_tokens=*/64);
  EXPECT_EQ(arena.page_tokens(), 64);
  EXPECT_EQ(arena.page_mask(), 63);
  EXPECT_EQ(1 << arena.page_shift(), 64);

  const auto a = arena.alloc();
  const auto b = arena.alloc();
  ASSERT_GE(a.id, 0);
  ASSERT_GE(b.id, 0);
  ASSERT_NE(a.id, b.id);
  ASSERT_NE(a.k, nullptr);
  ASSERT_NE(a.v, nullptr);
  EXPECT_EQ(arena.pages_live(), 2);
  EXPECT_EQ(arena.pages_allocated(), 2);
  EXPECT_EQ(arena.refcount(a.id), 1);

  arena.retain(a.id);
  EXPECT_EQ(arena.refcount(a.id), 2);
  arena.release(a.id);
  EXPECT_EQ(arena.refcount(a.id), 1);
  EXPECT_EQ(arena.pages_live(), 2) << "still referenced";

  arena.release(a.id);
  EXPECT_EQ(arena.pages_live(), 1);
  EXPECT_EQ(arena.pages_freed(), 1);

  // The freed page comes back off the freelist, not a fresh allocation.
  const auto c = arena.alloc();
  EXPECT_EQ(c.id, a.id);
  EXPECT_EQ(arena.pages_live(), 2);
  arena.release(c.id);
  arena.release(b.id);
  EXPECT_EQ(arena.pages_live(), 0);
  EXPECT_EQ(arena.bytes_live(), 0.0);
  EXPECT_EQ(arena.pages_allocated() - arena.pages_freed(), 0);
}

TEST(KvPageArena, PageBytesMatchesAcctConvention) {
  KvPageArena arena(/*head_dim=*/32, /*page_tokens=*/64);
  // K + V, fp32: 2 * 64 * 32 * 4.
  EXPECT_DOUBLE_EQ(arena.page_bytes(), 2.0 * 64 * 32 * 4);
}

TEST(KvPageArena, ConcurrentAllocReleaseIsClean) {
  // Exercised under TSan by scripts/check_sanitizers.sh: concurrent
  // alloc/retain/release churn must not race or double-free.
  KvPageArena arena(/*head_dim=*/8, /*page_tokens=*/16);
  constexpr int kThreads = 4, kIters = 500;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&arena] {
      std::vector<Index> mine;
      for (int i = 0; i < kIters; ++i) {
        const auto ref = arena.alloc();
        // Private page: writing the payload is allowed and must not race
        // with other threads' pages.
        ref.k[0] = 1.0f;
        ref.v[0] = 2.0f;
        mine.push_back(ref.id);
        if (mine.size() > 8) {
          arena.release(mine.front());
          mine.erase(mine.begin());
        }
      }
      for (const Index id : mine) arena.release(id);
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(arena.pages_live(), 0);
  EXPECT_EQ(arena.pages_allocated() - arena.pages_freed(), 0);
}

// ---------------------------------------------------------------------------
// Paged cache: reads, page math, eviction at page granularity.

TEST(PagedKvCache, ReadsThroughPageTableMatchAppendedRows) {
  const Index d = 16;
  auto arena = std::make_shared<KvPageArena>(d, /*page_tokens=*/64);
  const AttentionInput in = random_input(200, 200, d, 0xa1ull);
  KVCache cache(d, arena);
  ASSERT_TRUE(cache.append_prefill(in).ok());
  ASSERT_EQ(cache.size(), 200);
  // 200 tokens over 64-token pages -> 4 pages, last one partial.
  EXPECT_EQ(cache.pages(), 4);
  EXPECT_EQ(arena->pages_live(), 4);
  for (Index j = 0; j < 200; ++j) {
    ASSERT_EQ(std::memcmp(cache.k(j).data(), in.k.row(j).data(), d * sizeof(float)), 0) << j;
    ASSERT_EQ(std::memcmp(cache.v(j).data(), in.v.row(j).data(), d * sizeof(float)), 0) << j;
  }
  const mk::KvView view = cache.view();
  ASSERT_TRUE(view.paged());
  for (Index j = 0; j < 200; ++j) {
    ASSERT_EQ(view.k_row(j), cache.k(j).data());
    ASSERT_EQ(view.v_row(j), cache.v(j).data());
  }
}

TEST(PagedKvCache, KeepSlotsRewritesSurvivorsAndFreesWholePages) {
  const Index d = 16;
  auto arena = std::make_shared<KvPageArena>(d, /*page_tokens=*/64);
  const AttentionInput in = random_input(256, 256, d, 0xb2ull);
  KVCache cache(d, arena);
  ASSERT_TRUE(cache.append_prefill(in).ok());
  ASSERT_EQ(cache.pages(), 4);

  // Keep the first 8 sinks and the last 56 recents: 64 survivors fit one
  // page, so three whole pages go back to the freelist.
  std::vector<Index> keep;
  for (Index s = 0; s < 8; ++s) keep.push_back(s);
  for (Index s = 200; s < 256; ++s) keep.push_back(s);
  ASSERT_TRUE(cache.keep_slots(keep).ok());
  ASSERT_EQ(cache.size(), 64);
  EXPECT_EQ(cache.pages(), 1);
  EXPECT_EQ(arena->pages_live(), 1);

  for (Index s = 0; s < 64; ++s) {
    const Index pos = cache.position(s);
    EXPECT_EQ(pos, keep[static_cast<std::size_t>(s)]);
    ASSERT_EQ(std::memcmp(cache.k(s).data(), in.k.row(pos).data(), d * sizeof(float)), 0);
    ASSERT_EQ(std::memcmp(cache.v(s).data(), in.v.row(pos).data(), d * sizeof(float)), 0);
  }
}

TEST(PagedKvCache, MaskResidencyKeepsStripesAndWindow) {
  const Index d = 16;
  auto arena = std::make_shared<KvPageArena>(d, /*page_tokens=*/64);
  const AttentionInput in = random_input(256, 256, d, 0xc3ull);
  KVCache cache(d, arena);
  ASSERT_TRUE(cache.append_prefill(in).ok());

  const std::vector<Index> stripes = {0, 1, 17, 130};
  const Index dropped = apply_mask_residency(cache, stripes, /*window=*/64);
  EXPECT_EQ(dropped, 256 - 64 - 4);
  ASSERT_EQ(cache.size(), 68);
  // Stripe tokens then the tail window, in position order.
  EXPECT_EQ(cache.position(0), 0);
  EXPECT_EQ(cache.position(2), 17);
  EXPECT_EQ(cache.position(3), 130);
  EXPECT_EQ(cache.position(4), 192);
  EXPECT_EQ(cache.position(67), 255);
  // 68 survivors -> 2 pages instead of 4: residency is page-granular.
  EXPECT_EQ(cache.pages(), 2);
  EXPECT_EQ(arena->pages_live(), 2);
  // A second pass with the same structure is a no-op (slots already kept).
  EXPECT_EQ(apply_mask_residency(cache, stripes, /*window=*/68), 0);
}

// ---------------------------------------------------------------------------
// Kernel parity: every route reads the page table bit-identically to flat
// storage.

TEST(PagedKvCache, AllSweepRoutesBitIdenticalThroughPageTable) {
  const Index s = 256, d = 32;
  const AttentionInput in = random_input(s, s, d, 0xd4ull);
  auto arena = std::make_shared<KvPageArena>(d, /*page_tokens=*/64);
  KVCache cache(d, arena);
  ASSERT_TRUE(cache.append_prefill(in).ok());
  const mk::KvView paged = cache.view();
  ASSERT_TRUE(paged.paged());

  // Dense route: flash_rows over the paged view vs the flat tensor view.
  {
    Matrix ref(s, d), got(s, d);
    flash_rows(in.q.data(), s, mk::KvView::of(in), s, 0, ref.data(), d);
    flash_rows(in.q.data(), s, paged, s, 0, got.data(), d);
    expect_bit_identical(ref, got, "dense route");
  }

  // Sparse route: the view-form kernel over the page table vs the tensor
  // form over flat storage.
  SampleAttentionConfig cfg;
  const SamplePlan plan = plan_sample_attention(in, cfg);
  {
    Matrix ref, got;
    sparse_flash_attention(in, plan.mask, ref);
    sparse_flash_attention(in.q.data(), s, paged, s, plan.mask, got);
    expect_bit_identical(ref, got, "sparse route");
  }

  // Block-sparse route.
  {
    const BlockSparseLayout layout = BlockSparseLayout::from_mask(plan.mask, 64);
    Matrix ref, got;
    block_sparse_attention(in, layout, ref);
    block_sparse_attention(in.q.data(), s, paged, s, layout, got);
    expect_bit_identical(ref, got, "block-sparse route");
  }

  // Decode: a single query row against the full cache.
  {
    const Matrix q = random_input(1, 1, d, 0xd5ull).q;
    std::vector<float> ref(static_cast<std::size_t>(d)), got(ref.size());
    flash_rows(q.data(), 1, mk::KvView::of(in), s, s - 1, ref.data(), d);
    flash_rows(q.data(), 1, paged, s, s - 1, got.data(), d);
    ASSERT_EQ(std::memcmp(ref.data(), got.data(), ref.size() * sizeof(float)), 0);
  }
}

// ---------------------------------------------------------------------------
// Prefix index: publish, attach, COW divergence, counted-once bytes.

TEST(PrefixCache, ChunkedPrefillWarmRunHitsAndIsBitIdentical) {
  const Index s = 256, d = 16, chunk = 64;
  const AttentionInput in = random_input(s, s, d, 0xe5ull);
  auto arena = std::make_shared<KvPageArena>(d, /*page_tokens=*/64);

  // Cold run computes everything and publishes the prompt's pages.
  KVCache cold(d, arena);
  const auto cold_res = chunked_flash_prefill(in, chunk, &cold);
  ASSERT_TRUE(cold_res.ok());
  EXPECT_EQ(cold_res->prefix_hit_tokens, 0);
  EXPECT_EQ(cold_res->chunks, 4);
  EXPECT_EQ(arena->prefix_entries(), 4);
  EXPECT_EQ(cold.shared_pages(), 4) << "publisher's pages become shared";

  // Warm run over the identical prompt: every page hits, zero chunks
  // compute, outputs are bit-identical, and the K/V pages are physically
  // shared (same arena page ids).
  KVCache warm(d, arena);
  const auto warm_res = chunked_flash_prefill(in, chunk, &warm);
  ASSERT_TRUE(warm_res.ok());
  EXPECT_EQ(warm_res->prefix_hit_tokens, s);
  EXPECT_EQ(warm_res->chunks, 0);
  expect_bit_identical(cold_res->out, warm_res->out, "warm prefill output");
  ASSERT_EQ(warm.size(), s);
  EXPECT_EQ(warm.shared_pages(), 4);
  for (Index j = 0; j < s; ++j) {
    ASSERT_EQ(warm.k(j).data(), cold.k(j).data()) << "page not shared at slot " << j;
  }
  // No new payload pages were materialized for the warm run.
  EXPECT_EQ(arena->pages_live(), 4);

  // A prompt sharing only the first two pages attaches exactly those.
  AttentionInput half = random_input(s, s, d, 0xe6ull);
  for (Index r = 0; r < 128; ++r) {
    std::copy(in.q.row(r).begin(), in.q.row(r).end(), half.q.row(r).begin());
    std::copy(in.k.row(r).begin(), in.k.row(r).end(), half.k.row(r).begin());
    std::copy(in.v.row(r).begin(), in.v.row(r).end(), half.v.row(r).begin());
  }
  KVCache part(d, arena);
  const auto part_res = chunked_flash_prefill(half, chunk, &part);
  ASSERT_TRUE(part_res.ok());
  EXPECT_EQ(part_res->prefix_hit_tokens, 128);
  EXPECT_EQ(part_res->chunks, 2);
  // And its shared rows are bit-identical to a from-scratch reference.
  Matrix ref;
  flash_attention(half, ref);
  expect_bit_identical(ref, part_res->out, "partial-hit output");
}

TEST(PrefixCache, CowDivergenceAfterSharedPrefixLeavesPublisherIntact) {
  const Index s = 128, d = 16;
  const AttentionInput in = random_input(s, s, d, 0xf7ull);
  auto arena = std::make_shared<KvPageArena>(d, /*page_tokens=*/64);

  KVCache cold(d, arena);
  ASSERT_TRUE(chunked_flash_prefill(in, 64, &cold).ok());
  KVCache warm(d, arena);
  ASSERT_TRUE(chunked_flash_prefill(in, 64, &warm).ok());
  ASSERT_EQ(warm.shared_pages(), 2);
  const float cold_first = cold.k(0)[0];

  // Divergence: the warm cache compacts (the engine's eviction rung). The
  // rewrite lands in fresh private pages; the shared images the publisher
  // (and the index) hold are untouched.
  std::vector<Index> keep;
  for (Index j = 32; j < 96; ++j) keep.push_back(j);
  ASSERT_TRUE(warm.keep_slots(keep).ok());
  EXPECT_EQ(warm.shared_pages(), 0);
  ASSERT_EQ(warm.size(), 64);
  for (Index j = 0; j < 64; ++j) {
    ASSERT_EQ(std::memcmp(warm.k(j).data(), in.k.row(j + 32).data(), d * sizeof(float)), 0);
    ASSERT_NE(warm.k(j).data(), cold.k(j + 32).data()) << "must be a private copy";
  }
  EXPECT_EQ(cold.k(0)[0], cold_first);
  EXPECT_EQ(cold.shared_pages(), 2);

  // A third request still hits the intact published chain.
  KVCache again(d, arena);
  Matrix out(s, d);
  EXPECT_EQ(again.try_attach_prefix(in, s, &out), s);
}

TEST(PrefixCache, BytesCountedOnceAcrossSharers) {
  const Index s = 128, d = 16;
  const AttentionInput in = random_input(s, s, d, 0x1a8ull);
  auto arena = std::make_shared<KvPageArena>(d, /*page_tokens=*/64);
  const double page_bytes = arena->page_bytes();

  KVCache a(d, arena);
  ASSERT_TRUE(chunked_flash_prefill(in, 64, &a).ok());
  // Sole owner (the index's hold is excluded): full price for 2 pages.
  EXPECT_DOUBLE_EQ(a.bytes(), 2.0 * page_bytes);

  KVCache b(d, arena);
  ASSERT_TRUE(chunked_flash_prefill(in, 64, &b).ok());
  // Two owners: each cache bills half, the sum counts every page once.
  EXPECT_DOUBLE_EQ(a.bytes(), page_bytes);
  EXPECT_DOUBLE_EQ(b.bytes(), page_bytes);
  EXPECT_DOUBLE_EQ(a.bytes() + b.bytes(), arena->bytes_live());

  // Partial last page still bills a whole page: accounting is page-granular.
  KVCache c(d, arena);
  const AttentionInput odd = random_input(65, 65, d, 0x1a9ull);
  ASSERT_TRUE(c.append_prefill(odd).ok());
  EXPECT_DOUBLE_EQ(c.bytes(), 2.0 * page_bytes);
}

TEST(PrefixCache, ReleaseOnDestructionLeavesOnlyIndexHeldPages) {
  const Index s = 192, d = 16;
  const AttentionInput in = random_input(s, s, d, 0x2b9ull);
  auto arena = std::make_shared<KvPageArena>(d, /*page_tokens=*/64);
  {
    KVCache a(d, arena);
    ASSERT_TRUE(chunked_flash_prefill(in, 64, &a).ok());
    KVCache b(d, arena);
    ASSERT_TRUE(chunked_flash_prefill(in, 64, &b).ok());
    EXPECT_EQ(arena->pages_live(), 3);
  }
  // Caches died; the published images stay resident for future requests —
  // exactly one page per index entry, nothing else.
  EXPECT_EQ(arena->pages_live(), arena->prefix_entries());
  EXPECT_EQ(arena->prefix_entries(), 3);
  EXPECT_EQ(arena->pages_allocated() - arena->pages_freed(), arena->pages_live());
  EXPECT_GT(arena->prefix_index_bytes(), 0.0);

  // And they are still attachable.
  KVCache late(d, arena);
  Matrix out(s, d);
  EXPECT_EQ(late.try_attach_prefix(in, s, &out), s);
}

TEST(PrefixCache, LookupRejectsHashCollisionWithDifferentPayload) {
  // A chain-hash hit whose stored K/V bytes do not match the request's
  // content must be rejected (memcmp verification), not silently attached.
  const Index d = 8;
  auto arena = std::make_shared<KvPageArena>(d, /*page_tokens=*/16);
  const AttentionInput in = random_input(16, 16, d, 0x3c1ull);
  KVCache pub(d, arena);
  ASSERT_TRUE(pub.append_prefill(in).ok());
  Matrix out(16, d);
  Rng rng(0x3c2ull);
  for (Index r = 0; r < 16; ++r)
    for (float& x : out.row(r)) x = static_cast<float>(rng.uniform());
  ASSERT_EQ(pub.publish_prefix(in, out), 1);

  // Forge the same chain hash but different K payload via direct lookup.
  const std::uint64_t chain = prefix_chain_hash(kPrefixChainSeed, in, 0, 16);
  std::vector<float> k_wrong(16 * d, 0.5f), v_ok(16 * d), out_rows(16 * d);
  for (Index r = 0; r < 16; ++r)
    std::memcpy(v_ok.data() + static_cast<std::size_t>(r) * d, in.v.row(r).data(),
                static_cast<std::size_t>(d) * sizeof(float));
  EXPECT_LT(arena->prefix_lookup(chain, k_wrong.data(), v_ok.data(), out_rows.data()).id, 0);
}

}  // namespace
}  // namespace sattn
