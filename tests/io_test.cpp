// Tests for the I/O layer: heatmap downsampling/rendering and CSV/JSON
// report writing.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "io/heatmap.h"
#include "io/report.h"
#include "model/workload.h"

namespace sattn {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  std::ostringstream ss;
  ss << f.rdbuf();
  return ss.str();
}

TEST(Heatmap, ScoreDownsampleIsCausal) {
  const ModelConfig model = chatglm2_6b();
  const AttentionInput in = generate_attention(model, plain_prompt(1, 256), 8, 3);
  HeatmapOptions opts;
  opts.cells = 16;
  const Matrix hm = downsample_scores(in, opts);
  ASSERT_EQ(hm.rows(), 16);
  ASSERT_EQ(hm.cols(), 16);
  // Strictly above-diagonal tiles carry no mass.
  for (Index r = 0; r < 16; ++r) {
    for (Index c = r + 2; c < 16; ++c) EXPECT_FLOAT_EQ(hm(r, c), 0.0f);
  }
  // The diagonal tiles do.
  double diag = 0.0;
  for (Index r = 0; r < 16; ++r) diag += hm(r, r);
  EXPECT_GT(diag, 0.0);
}

TEST(Heatmap, WindowAndSinkShowUp) {
  const ModelConfig model = chatglm2_6b();
  const AttentionInput in = generate_attention(model, plain_prompt(2, 512), 12, 5);
  HeatmapOptions opts;
  opts.cells = 16;
  const Matrix hm = downsample_scores(in, opts);
  // Column 0 (sinks) must hold visible mass deep into the sequence.
  EXPECT_GT(hm(12, 0), 0.0f);
}

TEST(Heatmap, MaskDownsampleReflectsStructure) {
  StructuredMask mask(256, 256);
  mask.set_window(16);
  mask.set_stripe_columns({64, 65, 66, 67});
  HeatmapOptions opts;
  opts.cells = 16;
  const Matrix hm = downsample_mask(mask, opts);
  // The stripe column tile (64/256 * 16 = tile 4) is populated for late rows.
  EXPECT_GT(hm(15, 4), 0.0f);
  // A mid-tile far from diagonal, stripes and sinks is empty.
  EXPECT_FLOAT_EQ(hm(15, 8), 0.0f);
}

TEST(Heatmap, AsciiRenderHasExpectedShape) {
  Matrix m(4, 6, 0.0f);
  m(1, 2) = 1.0f;
  const std::string art = render_ascii(m, 1.0);
  // 4 lines of 6 chars.
  EXPECT_EQ(art.size(), 4u * 7u);
  EXPECT_EQ(art[0], ' ');
  EXPECT_EQ(art[1 * 7 + 2], '@');  // the hot cell renders at max ramp level
}

TEST(Heatmap, AsciiAllZeroIsBlank) {
  Matrix m(2, 2, 0.0f);
  const std::string art = render_ascii(m);
  for (char c : art) EXPECT_TRUE(c == ' ' || c == '\n');
}

TEST(Heatmap, PgmRoundTripHeader) {
  Matrix m(3, 5, 0.5f);
  const std::string path = "/tmp/sattn_heatmap_test.pgm";
  ASSERT_TRUE(write_pgm(m, path));
  const std::string content = slurp(path);
  EXPECT_EQ(content.rfind("P5\n5 3\n255\n", 0), 0u);
  EXPECT_EQ(content.size(), std::string("P5\n5 3\n255\n").size() + 15u);
  std::remove(path.c_str());
}

TEST(Csv, EscapesSpecials) {
  CsvWriter csv({"a", "b"});
  csv.add_row({"plain", "with,comma"});
  csv.add_row({"has \"quote\"", "multi\nline"});
  const std::string s = csv.to_string();
  EXPECT_NE(s.find("\"with,comma\""), std::string::npos);
  EXPECT_NE(s.find("\"has \"\"quote\"\"\""), std::string::npos);
  EXPECT_EQ(csv.rows(), 2u);
}

TEST(Csv, WritesFile) {
  CsvWriter csv({"x"});
  csv.add_row({"1"});
  const std::string path = "/tmp/sattn_csv_test.csv";
  ASSERT_TRUE(csv.write(path));
  EXPECT_EQ(slurp(path), "x\n1\n");
  std::remove(path.c_str());
}

TEST(Json, EmitsNumbersAndStrings) {
  JsonReport r;
  r.set("speedup", 2.25);
  r.set("method", "SampleAttention \"v1\"");
  const std::string s = r.to_string();
  EXPECT_NE(s.find("\"speedup\": 2.25"), std::string::npos);
  EXPECT_NE(s.find("\\\"v1\\\""), std::string::npos);
  EXPECT_EQ(s.front(), '{');
}

}  // namespace
}  // namespace sattn
