// Tests for the observability layer (obs/trace.h, obs/summary.h,
// io/trace_export.h): span nesting, counter aggregation under ThreadPool
// concurrency, Chrome-trace JSON validity, and disabled-mode no-op
// behaviour.
#include <gtest/gtest.h>

#include <cctype>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/thread_pool.h"
#include "io/trace_export.h"
#include "model/workload.h"
#include "obs/metrics.h"
#include "obs/summary.h"
#include "obs/trace.h"
#include "sample_attention/sample_attention.h"

namespace sattn {
namespace {

using obs::Collector;
using obs::CounterValue;
using obs::ScopedSpan;
using obs::SpanRecord;
using obs::SpanStat;

// Each test starts from a clean, enabled collector and leaves tracing off.
class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Collector::global().reset();
    ASSERT_TRUE(obs::set_enabled(true)) << "SATTN_TRACE=0 in the test environment";
  }
  void TearDown() override {
    obs::set_enabled(false);
    Collector::global().reset();
  }
};

// ---------------------------------------------------------------------------
// Minimal recursive-descent JSON validator, enough to assert the Chrome
// trace output is well-formed (objects, arrays, strings with escapes,
// numbers, literals).
class JsonValidator {
 public:
  explicit JsonValidator(const std::string& text) : s_(text) {}

  bool valid() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == s_.size();
  }

 private:
  bool value() {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }
  bool object() {
    if (!consume('{')) return false;
    skip_ws();
    if (consume('}')) return true;
    while (true) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (!consume(':')) return false;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (consume('}')) return true;
      if (!consume(',')) return false;
    }
  }
  bool array() {
    if (!consume('[')) return false;
    skip_ws();
    if (consume(']')) return true;
    while (true) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (consume(']')) return true;
      if (!consume(',')) return false;
    }
  }
  bool string() {
    if (!consume('"')) return false;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      if (s_[pos_] == '\\') {
        ++pos_;
        if (pos_ >= s_.size()) return false;
      }
      ++pos_;
    }
    return consume('"');
  }
  bool number() {
    const std::size_t start = pos_;
    if (pos_ < s_.size() && (s_[pos_] == '-' || s_[pos_] == '+')) ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) || s_[pos_] == '.' ||
            s_[pos_] == 'e' || s_[pos_] == 'E' || s_[pos_] == '-' || s_[pos_] == '+')) {
      ++pos_;
    }
    return pos_ > start;
  }
  bool literal(const char* lit) {
    const std::size_t n = std::string(lit).size();
    if (s_.compare(pos_, n, lit) != 0) return false;
    pos_ += n;
    return true;
  }
  bool consume(char c) {
    if (pos_ < s_.size() && s_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }
  void skip_ws() {
    while (pos_ < s_.size() && std::isspace(static_cast<unsigned char>(s_[pos_]))) ++pos_;
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

double counter_value(const std::vector<CounterValue>& counters, const std::string& name) {
  for (const CounterValue& c : counters) {
    if (c.name == name) return c.value;
  }
  return -1.0;
}

// ---------------------------------------------------------------------------

TEST_F(ObsTest, ScopedSpansRecordOnDestruction) {
  {
    ScopedSpan outer("outer");
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  const auto spans = Collector::global().spans();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].name, "outer");
  EXPECT_GT(spans[0].dur_us, 0.0);
}

TEST_F(ObsTest, SpanNestingReconstructsPaths) {
  {
    ScopedSpan outer("outer");
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    {
      ScopedSpan mid("mid");
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      ScopedSpan inner("inner");
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    {
      ScopedSpan mid2("mid");  // second instance of the same child
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  const auto spans = Collector::global().spans();
  ASSERT_EQ(spans.size(), 4u);

  const std::vector<SpanStat> stats = obs::summarize_spans(spans);
  ASSERT_EQ(stats.size(), 3u);  // outer, outer>mid (x2), outer>mid>inner
  EXPECT_EQ(stats[0].path, "outer");
  EXPECT_EQ(stats[0].depth, 0);
  EXPECT_EQ(stats[0].count, 1u);
  EXPECT_EQ(stats[1].path, "outer > mid");
  EXPECT_EQ(stats[1].depth, 1);
  EXPECT_EQ(stats[1].count, 2u);
  EXPECT_EQ(stats[2].path, "outer > mid > inner");
  EXPECT_EQ(stats[2].depth, 2);

  // A child's total cannot exceed its parent's.
  EXPECT_LE(stats[1].total_us, stats[0].total_us);
  EXPECT_LE(stats[2].total_us, stats[1].total_us);
  // Mean/percentiles are consistent with total.
  EXPECT_NEAR(stats[1].mean_us, stats[1].total_us / 2.0, 1e-9);
  EXPECT_LE(stats[1].p50_us, stats[1].p99_us);
}

TEST_F(ObsTest, SiblingSpansDoNotNest) {
  {
    ScopedSpan a("a");
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  {
    ScopedSpan b("b");
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  const std::vector<SpanStat> stats = obs::summarize_spans(Collector::global().spans());
  ASSERT_EQ(stats.size(), 2u);
  EXPECT_EQ(stats[0].depth, 0);
  EXPECT_EQ(stats[1].depth, 0);
}

TEST_F(ObsTest, TotalSecondsSumsByLeafName) {
  {
    ScopedSpan a("x");
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  {
    ScopedSpan b("x");
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  const auto spans = Collector::global().spans();
  EXPECT_EQ(obs::span_count(spans, "x"), 2u);
  EXPECT_GT(obs::total_seconds(spans, "x"), 0.0);
  EXPECT_EQ(obs::span_count(spans, "y"), 0u);
  EXPECT_EQ(obs::total_seconds(spans, "y"), 0.0);
}

TEST_F(ObsTest, SpansFromWorkerThreadsCarryDistinctTids) {
  ThreadPool pool(3);
  pool.parallel_for(64, [](Index) {
    ScopedSpan s("worker_span");
    std::this_thread::sleep_for(std::chrono::microseconds(10));
  });
  const auto spans = Collector::global().spans();
  EXPECT_EQ(spans.size(), 64u);
  for (const SpanRecord& r : spans) EXPECT_EQ(r.name, "worker_span");
}

TEST_F(ObsTest, CounterAggregationIsRaceFreeAcrossWorkers) {
  ThreadPool pool(4);
  pool.parallel_for(10000, [](Index i) {
    SATTN_COUNTER_ADD("obs_test.adds", 1);
    SATTN_COUNTER_ADD("obs_test.weighted", static_cast<double>(i % 2));
  });
  const auto counters = Collector::global().counters();
  EXPECT_DOUBLE_EQ(counter_value(counters, "obs_test.adds"), 10000.0);
  EXPECT_DOUBLE_EQ(counter_value(counters, "obs_test.weighted"), 5000.0);
}

TEST_F(ObsTest, CounterMaxKeepsRunningMaximum) {
  ThreadPool pool(4);
  pool.parallel_for(1000, [](Index i) { SATTN_COUNTER_MAX("obs_test.peak", i); });
  EXPECT_DOUBLE_EQ(Collector::global().counter("obs_test.peak").value(), 999.0);
  // Lower values never decrease it.
  SATTN_COUNTER_MAX("obs_test.peak", 5);
  EXPECT_DOUBLE_EQ(Collector::global().counter("obs_test.peak").value(), 999.0);
}

TEST_F(ObsTest, DisabledModeRecordsNothing) {
  obs::set_enabled(false);
  {
    ScopedSpan s("ghost");
    SATTN_COUNTER_ADD("obs_test.ghost", 1);
  }
  EXPECT_TRUE(Collector::global().spans().empty());
  const auto counters = Collector::global().counters();
  EXPECT_EQ(counter_value(counters, "obs_test.ghost"), -1.0);
}

TEST_F(ObsTest, SpanOpenedWhileEnabledClosesCleanlyAfterDisable) {
  auto span = std::make_unique<ScopedSpan>("toggle");
  obs::set_enabled(false);
  span.reset();  // must still pop its stack entry without crashing
  obs::set_enabled(true);
  const auto spans = Collector::global().spans();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].name, "toggle");
}

TEST_F(ObsTest, ResetClearsSpansAndZeroesCounters) {
  {
    ScopedSpan s("gone");
  }
  SATTN_COUNTER_ADD("obs_test.reset_me", 7);
  Collector::global().reset();
  EXPECT_TRUE(Collector::global().spans().empty());
  EXPECT_DOUBLE_EQ(Collector::global().counter("obs_test.reset_me").value(), 0.0);
}

TEST_F(ObsTest, ChromeTraceJsonIsParsable) {
  {
    ScopedSpan outer("outer \"quoted\" name\n");  // exercises escaping
    ScopedSpan inner("inner");
    SATTN_COUNTER_ADD("obs_test.count", 3);
  }
  const std::string json =
      chrome_trace_json(Collector::global().spans(), Collector::global().counters());
  JsonValidator v(json);
  EXPECT_TRUE(v.valid()) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"C\""), std::string::npos);
  EXPECT_NE(json.find("obs_test.count"), std::string::npos);
}

TEST_F(ObsTest, ChromeTraceJsonValidWhenEmpty) {
  const std::string json = chrome_trace_json({}, {});
  JsonValidator v(json);
  EXPECT_TRUE(v.valid()) << json;
}

TEST_F(ObsTest, WriteChromeTraceRoundTrips) {
  {
    ScopedSpan s("file_span");
  }
  const std::string path = ::testing::TempDir() + "/obs_test_trace.json";
  ASSERT_TRUE(write_chrome_trace(path));
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::string content;
  char buf[4096];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) content.append(buf, n);
  std::fclose(f);
  JsonValidator v(content);
  EXPECT_TRUE(v.valid());
  EXPECT_NE(content.find("file_span"), std::string::npos);
}

TEST_F(ObsTest, RenderSummaryMentionsSpansAndCounters) {
  {
    ScopedSpan s("visible_span");
  }
  SATTN_COUNTER_ADD("obs_test.visible_counter", 42);
  const std::string text = obs::render_summary(Collector::global().spans(),
                                               Collector::global().counters());
  EXPECT_NE(text.find("visible_span"), std::string::npos);
  EXPECT_NE(text.find("obs_test.visible_counter"), std::string::npos);
}

TEST_F(ObsTest, InstrumentedLibraryEmitsExpectedSpanNames) {
  // End-to-end: running the SampleAttention pipeline under tracing produces
  // the stage spans and counters docs/OBSERVABILITY.md promises.
  const ModelConfig model = chatglm2_6b();
  const AttentionInput in = generate_attention(model, plain_prompt(7, 512), 8, 3);
  const SampleAttention method;
  const AttentionResult res = method.run(in);
  EXPECT_GT(res.density, 0.0);

  const auto spans = Collector::global().spans();
  EXPECT_EQ(obs::span_count(spans, "method/SampleAttention(a=0.95)"), 1u);
  EXPECT_GE(obs::span_count(spans, "sattn/stage1_sampling"), 1u);
  EXPECT_GE(obs::span_count(spans, "sattn/stage2_filtering"), 1u);
  EXPECT_GE(obs::span_count(spans, "kernel/sparse_flash"), 1u);
  const auto counters = Collector::global().counters();
  EXPECT_GT(counter_value(counters, "sattn.sampled_rows"), 0.0);
  EXPECT_GT(counter_value(counters, "sattn.retained_kv_columns"), 0.0);
}

TEST_F(ObsTest, UnbalancedEndSpanIsDefensivelyIgnored) {
  Collector::global().end_span();  // no matching begin: must not crash
  EXPECT_TRUE(Collector::global().spans().empty());
}

// ---------------------------------------------------------------------------
// MetricsRegistry edge cases (obs/metrics.h): the aggregation corners the
// telemetry plane leans on — empty/singleton percentiles, series decimation
// bounds, and snapshot consistency under concurrent writers.

class MetricsEdgeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Collector::global().reset();
    obs::MetricsRegistry::global().reset();
    ASSERT_TRUE(obs::set_enabled(true)) << "SATTN_TRACE=0 in the test environment";
  }
  void TearDown() override {
    obs::set_enabled(false);
    Collector::global().reset();
    obs::MetricsRegistry::global().reset();
  }
};

TEST_F(MetricsEdgeTest, EmptyHistogramStatsAreAllZero) {
  const obs::HistogramStats s =
      obs::MetricsRegistry::global().histogram("edge.empty").stats();
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.sum, 0.0);
  EXPECT_EQ(s.min, 0.0);
  EXPECT_EQ(s.max, 0.0);
  EXPECT_EQ(s.p50, 0.0);
  EXPECT_EQ(s.p90, 0.0);
  EXPECT_EQ(s.p99, 0.0);
  EXPECT_TRUE(s.max_exemplar.empty());
}

TEST_F(MetricsEdgeTest, SingleSampleHistogramEveryPercentileIsTheSample) {
  obs::Histogram& h = obs::MetricsRegistry::global().histogram("edge.single");
  h.observe(0.125, "req-tail");
  const obs::HistogramStats s = h.stats();
  EXPECT_EQ(s.count, 1u);
  // The log-bucket midpoint is clamped to the exact observed [min, max], so
  // a singleton distribution reports the sample itself at every quantile.
  EXPECT_DOUBLE_EQ(s.p50, 0.125);
  EXPECT_DOUBLE_EQ(s.p90, 0.125);
  EXPECT_DOUBLE_EQ(s.p99, 0.125);
  EXPECT_DOUBLE_EQ(s.min, 0.125);
  EXPECT_DOUBLE_EQ(s.max, 0.125);
  EXPECT_EQ(s.max_exemplar, "req-tail");
  EXPECT_EQ(s.p99_exemplar, "req-tail");
}

TEST_F(MetricsEdgeTest, HistogramValuesAtOrBelowFloorShareTheLowestBucket) {
  obs::Histogram& h = obs::MetricsRegistry::global().histogram("edge.floor");
  h.observe(0.0);
  h.observe(-1.0);
  h.observe(obs::Histogram::kFloor);
  const obs::HistogramStats s = h.stats();
  EXPECT_EQ(s.count, 3u);
  EXPECT_DOUBLE_EQ(s.min, -1.0);
  // Percentiles clamp to the observed range even for sub-floor values.
  EXPECT_LE(s.p99, s.max);
  EXPECT_GE(s.p50, s.min);
}

TEST_F(MetricsEdgeTest, SeriesDecimationBoundsSizeAndKeepsFullTimeRange) {
  obs::Series& series = obs::MetricsRegistry::global().series("edge.decimate");
  constexpr std::size_t kAppends = 40000;  // ~20x capacity: stride doubles ~5x
  for (std::size_t i = 0; i < kAppends; ++i) {
    series.append(static_cast<double>(i), static_cast<double>(i) * 2.0);
  }
  const auto samples = series.samples();
  ASSERT_FALSE(samples.empty());
  EXPECT_LE(samples.size(), obs::Series::kDefaultCapacity);
  // Decimation keeps a uniform sketch of the WHOLE run, not just its head:
  // timestamps stay sorted, start near 0, and reach near the end.
  EXPECT_DOUBLE_EQ(samples.front().first, 0.0);
  EXPECT_GT(samples.back().first, static_cast<double>(kAppends) * 0.9);
  for (std::size_t i = 1; i < samples.size(); ++i) {
    EXPECT_LT(samples[i - 1].first, samples[i].first);
  }
  // Values ride along untouched.
  for (const auto& [t, v] : samples) EXPECT_DOUBLE_EQ(v, t * 2.0);
}

TEST_F(MetricsEdgeTest, SeriesResetRestoresStrideOne) {
  obs::Series series(/*capacity=*/8);
  for (int i = 0; i < 100; ++i) series.append(i, i);
  series.reset();
  for (int i = 0; i < 4; ++i) series.append(i, i);
  const auto samples = series.samples();
  // After reset the series keeps every append again (stride back to 1).
  ASSERT_EQ(samples.size(), 4u);
  for (int i = 0; i < 4; ++i) EXPECT_DOUBLE_EQ(samples[static_cast<std::size_t>(i)].first, i);
}

TEST_F(MetricsEdgeTest, SnapshotUnderConcurrentWritersSeesConsistentMetrics) {
  // The TSan target: gauge/histogram/series writers race a snapshotting
  // reader. The snapshot must stay well-formed throughout (no torn names,
  // monotonic histogram counts) and complete without data races.
  auto& reg = obs::MetricsRegistry::global();
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int w = 0; w < 3; ++w) {
    writers.emplace_back([&reg, &stop, w] {
      const std::string gauge = "edge.concurrent.g" + std::to_string(w);
      const std::string histo = "edge.concurrent.h" + std::to_string(w);
      const std::string series = "edge.concurrent.s" + std::to_string(w);
      double i = 0.0;
      do {  // at least one write each, even if stop wins the thread-start race
        reg.gauge(gauge).set(i);
        reg.histogram(histo).observe(i + 0.5);
        reg.series(series).append(i, i);
        i += 1.0;
      } while (!stop.load(std::memory_order_relaxed));
    });
  }
  for (int round = 0; round < 50; ++round) {
    const obs::MetricsSnapshot snap = reg.snapshot();
    // Snapshots taken mid-write stay well-formed: names sorted, no tears.
    for (std::size_t i = 1; i < snap.gauges.size(); ++i) {
      EXPECT_LT(snap.gauges[i - 1].first, snap.gauges[i].first);
    }
    for (std::size_t i = 1; i < snap.histograms.size(); ++i) {
      EXPECT_LT(snap.histograms[i - 1].first, snap.histograms[i].first);
    }
  }
  stop.store(true);
  for (auto& t : writers) t.join();
  // Registered names survive in the registry (reset clears contents, not
  // registration), so count only this test's metrics.
  const obs::MetricsSnapshot final_snap = reg.snapshot();
  std::size_t gauges = 0, histos = 0, series_n = 0;
  for (const auto& [name, v] : final_snap.gauges)
    if (name.rfind("edge.concurrent.g", 0) == 0) ++gauges;
  for (const auto& [name, stats] : final_snap.histograms) {
    if (name.rfind("edge.concurrent.h", 0) == 0) {
      ++histos;
      EXPECT_GE(stats.count, 1u) << name;
    }
  }
  for (const auto& [name, samples] : final_snap.series) {
    if (name.rfind("edge.concurrent.s", 0) == 0) {
      ++series_n;
      EXPECT_FALSE(samples.empty()) << name;
    }
  }
  EXPECT_EQ(gauges, 3u);
  EXPECT_EQ(histos, 3u);
  EXPECT_EQ(series_n, 3u);
}

}  // namespace
}  // namespace sattn
